// Time-stepping example: 2-D heat equation, Crank-Nicolson, on an
// Ny x Nx grid with Dirichlet boundaries. Every step solves
//
//     (I + l/2 A) u^{n+1} = (I - l/2 A) u^n,       l = kappa dt / h^2,
//
// with the SAME block tridiagonal matrix (N = Ny blocks of size M = Nx) —
// the sequential right-hand-side arrival pattern the accelerated solver
// exists for. The example drives the rank-level SPMD API directly:
// factor once, then each rank assembles its rows of the explicit
// right-hand side and calls solve, step after step.
//
// Validation: columns of the state are an ensemble of initial conditions;
// two of them are pure Laplacian eigenmodes whose Crank-Nicolson decay
// factor is known in closed form, so the final amplitudes are checked
// against the analytic value.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "src/btds/block_tridiag.hpp"
#include "src/btds/partition.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/ard.hpp"
#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/mpsim/collectives.hpp"
#include "src/mpsim/engine.hpp"

namespace {

using namespace ardbt;
using la::index_t;
using la::Matrix;

/// 5-point Laplacian stencil matrix scaled by `s`, shifted by `shift` * I:
/// block row i couples grid line i to its neighbours.
btds::BlockTridiag stencil_matrix(index_t ny, index_t nx, double shift, double s) {
  btds::BlockTridiag t(ny, nx);
  for (index_t i = 0; i < ny; ++i) {
    Matrix& d = t.diag(i);
    for (index_t r = 0; r < nx; ++r) {
      d(r, r) = shift + 4.0 * s;
      if (r > 0) d(r, r - 1) = -s;
      if (r + 1 < nx) d(r, r + 1) = -s;
    }
    if (i > 0) {
      for (index_t r = 0; r < nx; ++r) t.lower(i)(r, r) = -s;
    }
    if (i + 1 < ny) {
      for (index_t r = 0; r < nx; ++r) t.upper(i)(r, r) = -s;
    }
  }
  return t;
}

/// Laplacian eigenvalue of mode (p, q) on the (nx, ny) Dirichlet grid.
double mode_eigenvalue(index_t p, index_t q, index_t nx, index_t ny) {
  const double pi = std::numbers::pi;
  return 4.0 - 2.0 * std::cos(pi * static_cast<double>(p) / static_cast<double>(nx + 1)) -
         2.0 * std::cos(pi * static_cast<double>(q) / static_cast<double>(ny + 1));
}

/// Fill column `col` of `u` with the (p, q) eigenmode.
void set_mode(Matrix& u, index_t col, index_t p, index_t q, index_t nx, index_t ny) {
  const double pi = std::numbers::pi;
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      u(j * nx + i, col) =
          std::sin(pi * static_cast<double>(p) * static_cast<double>(i + 1) /
                   static_cast<double>(nx + 1)) *
          std::sin(pi * static_cast<double>(q) * static_cast<double>(j + 1) /
                   static_cast<double>(ny + 1));
    }
  }
}

}  // namespace

int main() {
  const index_t nx = 32;  // block size M
  const index_t ny = 64;  // block rows N
  const double lambda = 0.4;  // kappa dt / h^2
  const int steps = 50;
  const int p_ranks = 4;

  // Implicit and explicit Crank-Nicolson operators.
  const btds::BlockTridiag implicit = stencil_matrix(ny, nx, 1.0, lambda / 2.0);
  const btds::BlockTridiag explicit_op = stencil_matrix(ny, nx, 1.0, -lambda / 2.0);

  // Ensemble of initial conditions: two pure modes plus a hot corner.
  const index_t r = 3;
  Matrix u(ny * nx, r);
  set_mode(u, 0, 1, 1, nx, ny);
  set_mode(u, 1, 3, 2, nx, ny);
  u(5 * nx + 5, 2) = 1.0;

  Matrix u_next(ny * nx, r);
  Matrix rhs(ny * nx, r);
  const btds::RowPartition part(ny, p_ranks);
  double factor_vtime = 0.0;
  double step_vtime_sum = 0.0;

  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();
  mpsim::run(p_ranks, [&](mpsim::Comm& comm) {
    const double t0 = comm.vtime();
    const auto f = core::ArdFactorization::factor(comm, implicit, part);
    mpsim::barrier(comm);
    if (comm.rank() == 0) factor_vtime = comm.vtime() - t0;

    const index_t lo = part.begin(comm.rank());
    const index_t hi = part.end(comm.rank());
    for (int step = 0; step < steps; ++step) {
      const double t1 = comm.vtime();
      // Assemble this rank's rows of rhs = explicit_op * u.
      for (index_t i = lo; i < hi; ++i) {
        la::MatrixView out = btds::block_row(rhs, i, nx);
        la::gemm(1.0, explicit_op.diag(i).view(), btds::block_row(std::as_const(u), i, nx), 0.0,
                 out);
        if (i > 0) {
          la::gemm(1.0, explicit_op.lower(i).view(),
                   btds::block_row(std::as_const(u), i - 1, nx), 1.0, out);
        }
        if (i + 1 < ny) {
          la::gemm(1.0, explicit_op.upper(i).view(),
                   btds::block_row(std::as_const(u), i + 1, nx), 1.0, out);
        }
      }
      f.solve(comm, rhs, u_next);
      mpsim::barrier(comm);  // u_next complete before anyone reads it
      if (comm.rank() == 0) {
        step_vtime_sum += comm.vtime() - t1;
        std::swap(u, u_next);  // shapes identical; pointer-level swap
      }
      mpsim::barrier(comm);  // swap visible to all ranks
    }
  }, engine);

  // Analytic check: mode (p,q) decays by g^steps with the CN factor
  // g = (1 - l/2 mu) / (1 + l/2 mu).
  std::printf("2-D heat, Crank-Nicolson: %lldx%lld grid, %d steps, P=%d\n",
              static_cast<long long>(nx), static_cast<long long>(ny), steps, p_ranks);
  std::printf("factor once: %.3g modeled s; mean per step: %.3g modeled s (%.1fx cheaper)\n",
              factor_vtime, step_vtime_sum / steps, factor_vtime * steps / step_vtime_sum);

  const struct {
    index_t col, p, q;
  } modes[] = {{0, 1, 1}, {1, 3, 2}};
  for (const auto& mode : modes) {
    const double mu = mode_eigenvalue(mode.p, mode.q, nx, ny);
    const double g = (1.0 - 0.5 * lambda * mu) / (1.0 + 0.5 * lambda * mu);
    const double expected = std::pow(g, steps);
    // Measure the remaining amplitude by projecting on the initial mode.
    Matrix mode_vec(ny * nx, 1);
    set_mode(mode_vec, 0, mode.p, mode.q, nx, ny);
    double num = 0.0;
    double den = 0.0;
    for (index_t i = 0; i < ny * nx; ++i) {
      num += u(i, mode.col) * mode_vec(i, 0);
      den += mode_vec(i, 0) * mode_vec(i, 0);
    }
    const double measured = num / den;
    std::printf("mode (%lld,%lld): amplitude %.6e, analytic %.6e, rel.err %.2e\n",
                static_cast<long long>(mode.p), static_cast<long long>(mode.q), measured,
                expected, std::abs(measured - expected) / std::abs(expected));
  }

  // The hot-corner column must stay bounded and keep decaying.
  double mx = 0.0;
  for (index_t i = 0; i < ny * nx; ++i) mx = std::max(mx, std::abs(u(i, 2)));
  std::printf("hot-corner column max after %d steps: %.3e (started at 1.0)\n", steps, mx);
  return 0;
}
