// Krylov example: time-dependent coefficients handled with ONE frozen
// ARD factorization as a PCG preconditioner.
//
// The operator of an implicit diffusion step, I + dt*L(kappa(t)), changes
// every step as the conductivity field kappa(t) drifts. Refactoring each
// step costs O(M^3 N/P); instead we factor the t = 0 operator once and
// solve each step's SPD system by preconditioned CG — every iteration is
// a halo-exchange apply plus one O(M^2 R) ARD solve, and while the
// coefficients stay near the frozen ones PCG needs only a handful of
// iterations. When drift accumulates, ArdFactorization::update refreshes
// the preconditioner and the iteration count drops back.
//
// Everything runs on the fully distributed path: no rank ever holds a
// global matrix or vector.

#include <cmath>
#include <cstdio>

#include "src/btds/distributed.hpp"
#include "src/btds/partition.hpp"
#include "src/core/krylov.hpp"
#include "src/mpsim/collectives.hpp"
#include "src/mpsim/engine.hpp"

namespace {

using namespace ardbt;
using la::index_t;
using la::Matrix;

/// Assemble this rank's rows of I + dt * L(kappa): an SPD diffusion
/// operator whose conductivity varies in space and time.
void assemble_local(btds::LocalBlockTridiag& sys, index_t n, index_t m, double dt, double t) {
  const auto kappa = [&](index_t i) {
    return 1.0 + 0.4 * std::sin(0.17 * static_cast<double>(i) + 2.0 * t);
  };
  for (index_t i = sys.lo(); i < sys.hi(); ++i) {
    Matrix& d = sys.diag(i);
    d.fill(0.0);
    const double k = kappa(i);
    for (index_t s = 0; s < m; ++s) {
      d(s, s) = 1.0 + dt * 4.0 * k;
      if (s > 0) d(s, s - 1) = -dt * k;
      if (s + 1 < m) d(s, s + 1) = -dt * k;
    }
    // Symmetric off-diagonal blocks use the edge-averaged conductivity so
    // the global operator stays SPD.
    if (i > 0) {
      const double ke = 0.5 * (kappa(i) + kappa(i - 1));
      sys.lower(i).fill(0.0);
      for (index_t s = 0; s < m; ++s) sys.lower(i)(s, s) = -dt * ke;
    }
    if (i + 1 < n) {
      const double ke = 0.5 * (kappa(i) + kappa(i + 1));
      sys.upper(i).fill(0.0);
      for (index_t s = 0; s < m; ++s) sys.upper(i)(s, s) = -dt * ke;
    }
  }
}

}  // namespace

int main() {
  const index_t n = 128, m = 8;
  const double dt = 0.2;
  const int steps = 30;
  const int refresh_every = 10;  // update the preconditioner periodically
  const int p_ranks = 4;

  const btds::RowPartition part(n, p_ranks);
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();

  int total_iters = 0;
  int max_iters_step = 0;
  int factors = 0;
  double worst_residual = 0.0;

  mpsim::run(p_ranks, [&](mpsim::Comm& comm) {
    btds::LocalBlockTridiag frozen(n, m, part, comm.rank());
    btds::LocalBlockTridiag current(n, m, part, comm.rank());
    assemble_local(frozen, n, m, dt, /*t=*/0.0);
    auto precond = core::ArdFactorization::factor(comm, frozen, part);
    int local_factors = 1;

    // Initial condition: a bump owned by whichever rank holds row n/2.
    const index_t nloc = part.count(comm.rank());
    Matrix u(nloc * m, 1);
    const index_t mid = n / 2;
    if (mid >= part.begin(comm.rank()) && mid < part.end(comm.rank())) {
      u((mid - part.begin(comm.rank())) * m + m / 2, 0) = 1.0;
    }

    Matrix x = u;
    for (int step = 0; step < steps; ++step) {
      const double t = dt * (step + 1);
      assemble_local(current, n, m, dt, t);
      if (step > 0 && step % refresh_every == 0) {
        assemble_local(frozen, n, m, dt, t);
        precond.update(comm, frozen, /*rows_changed=*/true);
        ++local_factors;
      }
      const core::KrylovResult res =
          core::pcg(comm, current, part, &precond, u, x, /*max_iters=*/50, /*tol=*/1e-10);
      const double final_res =
          btds::relative_residual_distributed(comm, current, x, u, part);
      if (comm.rank() == 0) {
        total_iters += res.iterations;
        max_iters_step = std::max(max_iters_step, res.iterations);
        worst_residual = std::max(worst_residual, final_res);
      }
      u = x;  // next step's right-hand side
      mpsim::barrier(comm);
    }
    if (comm.rank() == 0) factors = local_factors;
  }, engine);

  std::printf("frozen-preconditioner PCG stepping: N=%lld M=%lld, %d steps, P=%d\n",
              static_cast<long long>(n), static_cast<long long>(m), steps, p_ranks);
  std::printf("factorizations: %d (vs %d for refactor-every-step)\n", factors, steps);
  std::printf("PCG iterations: %.1f mean, %d max per step\n",
              static_cast<double>(total_iters) / steps, max_iters_step);
  std::printf("worst per-step relative residual: %.2e (tol 1e-10)\n", worst_residual);
  return 0;
}
