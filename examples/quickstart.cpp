// Quickstart: build a block tridiagonal system, factor it once with
// accelerated recursive doubling (ARD) on a few simulated ranks, solve two
// right-hand-side batches, and verify the residuals.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/solver.hpp"

int main() {
  using namespace ardbt;

  // A 2-D Poisson problem in line-solve form: N block rows (grid lines) of
  // block size M (points per line).
  const la::index_t n = 256;
  const la::index_t m = 16;
  const btds::BlockTridiag sys = btds::make_problem(btds::ProblemKind::kPoisson2D, n, m);

  // Two batches of right-hand sides sharing the matrix — the pattern the
  // accelerated algorithm exists for.
  const la::Matrix b1 = btds::make_rhs(n, m, /*num_rhs=*/8, /*seed=*/1);
  const la::Matrix b2 = btds::make_rhs(n, m, /*num_rhs=*/32, /*seed=*/2);

  // Factor once, solve both batches, on 4 simulated ranks. Timings use the
  // deterministic virtual clock with an IPDPS-2014-era cluster profile;
  // threads_per_rank adds intra-rank workers for the wide-panel kernels
  // (bit-identical results at any worker count).
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();
  engine.threads_per_rank = 2;

  core::Session session(core::Method::kArd, sys, /*nranks=*/4, {.engine = engine});
  session.factor();
  const la::Matrix x1 = session.solve(b1);
  const la::Matrix x2 = session.solve(b2);

  std::printf("ARD quickstart: N=%lld block rows, M=%lld, P=4\n", static_cast<long long>(n),
              static_cast<long long>(m));
  std::printf("  factor       : %.3g modeled seconds, %.2f MiB factored state\n",
              session.factor_vtime(), static_cast<double>(session.storage_bytes()) / (1 << 20));
  std::printf("  solve R=8    : %.3g modeled seconds, residual %.2e\n",
              session.solve_vtimes()[0], btds::relative_residual(sys, x1, b1));
  std::printf("  solve R=32   : %.3g modeled seconds, residual %.2e\n",
              session.solve_vtimes()[1], btds::relative_residual(sys, x2, b2));

  // The one-call driver is available when a single solve is all you need:
  const core::DriverResult once =
      core::solve(core::Method::kArd, sys, b1, /*nranks=*/4, {.engine = engine});
  std::printf("  one-call API : residual %.2e\n", btds::relative_residual(sys, once.x, b1));
  return 0;
}
