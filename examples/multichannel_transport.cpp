// Batched-right-hand-side example: steady-state multigroup diffusion.
//
// A 1-D slab is discretized into N cells; within each cell, M energy
// groups are coupled by a scattering matrix, giving one block tridiagonal
// system (diffusion couples neighbouring cells, scattering couples groups
// inside the diagonal blocks). R independent source configurations —
// "channels", e.g. candidate source placements in a design study — share
// the matrix, which is exactly the multi-RHS workload of the paper:
// factor once with ARD, solve all channels in one batched pass.
//
// Validation: flux positivity for positive sources (the matrix is an
// M-matrix), source-superposition linearity, and per-channel residuals.

#include <cmath>
#include <cstdio>

#include "src/btds/block_tridiag.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/solver.hpp"
#include "src/la/blas1.hpp"

namespace {

using namespace ardbt;
using la::index_t;
using la::Matrix;

/// Assemble the multigroup diffusion operator: per cell,
///   -D_g (flux_{i-1} - 2 flux_i + flux_{i+1})/h^2 + Sigma_r flux
///     - sum_{g' != g} S_{g g'} flux_{g'} = q,
/// with group-dependent diffusion coefficients and downscattering.
btds::BlockTridiag assemble(index_t cells, index_t groups, double h) {
  btds::BlockTridiag t(cells, groups);
  for (index_t i = 0; i < cells; ++i) {
    Matrix& d = t.diag(i);
    for (index_t g = 0; g < groups; ++g) {
      const double diff = 1.0 + 0.5 * static_cast<double>(g);  // D_g
      const double removal = 0.3 + 0.1 * static_cast<double>(g);
      d(g, g) = 2.0 * diff / (h * h) + removal;
      // Downscattering from faster groups (strictly lower triangle).
      for (index_t gp = 0; gp < g; ++gp) d(g, gp) = -0.05 / static_cast<double>(g - gp + 1);
    }
    if (i > 0) {
      for (index_t g = 0; g < groups; ++g) {
        t.lower(i)(g, g) = -(1.0 + 0.5 * static_cast<double>(g)) / (h * h);
      }
    }
    if (i + 1 < cells) {
      for (index_t g = 0; g < groups; ++g) {
        t.upper(i)(g, g) = -(1.0 + 0.5 * static_cast<double>(g)) / (h * h);
      }
    }
  }
  return t;
}

}  // namespace

int main() {
  const index_t cells = 512;
  const index_t groups = 8;
  const index_t channels = 64;
  const double h = 1.0 / static_cast<double>(cells);
  const int p_ranks = 4;

  const btds::BlockTridiag sys = assemble(cells, groups, h);

  // Channel c: a localized source in group 0 centred at a channel-specific
  // position (a design sweep over source placement).
  Matrix q(cells * groups, channels);
  for (index_t c = 0; c < channels; ++c) {
    const index_t centre = (c + 1) * cells / (channels + 1);
    for (index_t i = 0; i < cells; ++i) {
      const double dx = static_cast<double>(i) - static_cast<double>(centre);
      q(i * groups + 0, c) = std::exp(-dx * dx / 50.0);
    }
  }

  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();

  // Factor once; the session keeps the factored state so the superposition
  // check below reuses it instead of refactoring.
  core::Session session(core::Method::kArd, sys, p_ranks, {.engine = engine});
  session.factor();
  const Matrix x = session.solve(q);
  std::printf("multigroup diffusion: %lld cells x %lld groups, %lld channels, P=%d\n",
              static_cast<long long>(cells), static_cast<long long>(groups),
              static_cast<long long>(channels), p_ranks);
  std::printf("factor %.3g modeled s + batched solve %.3g modeled s; residual %.2e\n",
              session.factor_vtime(), session.solve_vtimes()[0],
              btds::relative_residual(sys, x, q));

  // Physics checks: positive flux everywhere, and superposition — solving
  // the sum of channels 0 and 1 equals the sum of their solutions.
  double min_flux = 1e300;
  for (index_t i = 0; i < x.rows(); ++i) {
    for (index_t c = 0; c < channels; ++c) min_flux = std::min(min_flux, x(i, c));
  }
  std::printf("minimum flux over all channels: %.3e (must be >= 0 for an M-matrix)\n", min_flux);

  Matrix q_sum(cells * groups, 1);
  for (index_t i = 0; i < q_sum.rows(); ++i) q_sum(i, 0) = q(i, 0) + q(i, 1);
  const Matrix x_sum = session.solve(q_sum);  // reuses the factorization
  double superposition_err = 0.0;
  for (index_t i = 0; i < x_sum.rows(); ++i) {
    superposition_err =
        std::max(superposition_err, std::abs(x_sum(i, 0) - x(i, 0) - x(i, 1)));
  }
  std::printf("superposition error (channel 0 + 1): %.2e\n", superposition_err);

  // Per-channel summary for a few channels: peak flux and its location.
  for (index_t c : {index_t{0}, channels / 2, channels - 1}) {
    double peak = 0.0;
    index_t at = 0;
    for (index_t i = 0; i < cells; ++i) {
      if (x(i * groups, c) > peak) {
        peak = x(i * groups, c);
        at = i;
      }
    }
    std::printf("channel %3lld: group-0 peak %.4g at cell %lld\n", static_cast<long long>(c),
                peak, static_cast<long long>(at));
  }
  return 0;
}
