// Periodic-domain example: multispecies advection-diffusion-reaction on a
// ring, stepped implicitly with one PERIODIC block tridiagonal
// factorization reused for every step (core/periodic.hpp — the Woodbury
// corner correction on top of ARD).
//
// N cells around the ring, M chemical species per cell. Species advect
// and diffuse along the ring (periodic wrap = the corner blocks) and
// convert into each other through a reaction matrix with zero column sums
// (mass moves between species, never appears or disappears). The implicit
// operator I + dt*L then has the property 1^T L = 0, so the total mass
//   sum_cells sum_species u
// is conserved EXACTLY by every implicit Euler step — the example checks
// this to machine precision over 200 steps, and checks that the pulse's
// centre of mass advects at the prescribed velocity.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "src/btds/block_tridiag.hpp"
#include "src/btds/partition.hpp"
#include "src/core/periodic.hpp"
#include "src/mpsim/collectives.hpp"
#include "src/mpsim/engine.hpp"

namespace {

using namespace ardbt;
using la::index_t;
using la::Matrix;

}  // namespace

int main() {
  const index_t cells = 96;    // N
  const index_t species = 4;   // M
  const double velocity = 1.0;
  const double diffusion = 0.02;
  const double dt = 0.01;
  const double h = 1.0 / static_cast<double>(cells);
  const int steps = 200;
  const int p_ranks = 4;

  // Flux coefficients (upwind advection + central diffusion), conservative:
  //   L u |_i = (a_W u_{i-1} + a_P u_i + a_E u_{i+1}) / h
  const double c_west = -velocity / h - diffusion / (h * h);
  const double c_east = -diffusion / (h * h);
  const double c_diag = velocity / h + 2.0 * diffusion / (h * h);

  // Reaction matrix with zero column sums: a cycle s -> s+1 at rate k.
  const double k_react = 2.0;
  Matrix reaction(species, species);
  for (index_t s = 0; s < species; ++s) {
    reaction(s, s) += k_react;                       // loss from s
    reaction((s + 1) % species, s) -= k_react;       // gain in s+1
  }

  // Implicit operator I + dt * (transport x I_species + I_cells x reaction).
  btds::BlockTridiag sys(cells, species);
  Matrix corner_lower(species, species);  // row 0 <- row N-1 (west wrap)
  Matrix corner_upper(species, species);  // row N-1 <- row 0 (east wrap)
  for (index_t i = 0; i < cells; ++i) {
    Matrix& d = sys.diag(i);
    for (index_t s = 0; s < species; ++s) {
      d(s, s) += 1.0 + dt * c_diag;
      for (index_t s2 = 0; s2 < species; ++s2) d(s, s2) += dt * reaction(s, s2);
    }
    if (i > 0) {
      for (index_t s = 0; s < species; ++s) sys.lower(i)(s, s) = dt * c_west;
    }
    if (i + 1 < cells) {
      for (index_t s = 0; s < species; ++s) sys.upper(i)(s, s) = dt * c_east;
    }
  }
  for (index_t s = 0; s < species; ++s) {
    corner_lower(s, s) = dt * c_west;  // cell 0's west neighbour is cell N-1
    corner_upper(s, s) = dt * c_east;  // cell N-1's east neighbour is cell 0
  }

  // Initial condition: a Gaussian pulse of species 0 centred at x = 0.25.
  Matrix u(cells * species, 1);
  for (index_t i = 0; i < cells; ++i) {
    const double x = (static_cast<double>(i) + 0.5) * h;
    u(i * species + 0, 0) = std::exp(-std::pow((x - 0.25) / 0.05, 2.0));
  }
  const auto total_mass = [&] {
    double s = 0.0;
    for (index_t i = 0; i < cells * species; ++i) s += u(i, 0);
    return s;
  };
  const double mass0 = total_mass();

  Matrix u_next(cells * species, 1);
  const btds::RowPartition part(cells, p_ranks);
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();
  double factor_vtime = 0.0;
  double solve_vtime = 0.0;

  mpsim::run(p_ranks, [&](mpsim::Comm& comm) {
    const double t0 = comm.vtime();
    const auto f =
        core::PeriodicArdFactorization::factor(comm, sys, corner_lower, corner_upper, part);
    mpsim::barrier(comm);
    if (comm.rank() == 0) factor_vtime = comm.vtime() - t0;
    for (int step = 0; step < steps; ++step) {
      const double t1 = comm.vtime();
      f.solve(comm, u, u_next);
      mpsim::barrier(comm);
      if (comm.rank() == 0) {
        solve_vtime += comm.vtime() - t1;
        std::swap(u, u_next);
      }
      mpsim::barrier(comm);
    }
  });

  // Diagnostics: exact mass conservation and centre-of-mass advection.
  const double mass_err = std::abs(total_mass() - mass0) / mass0;

  // Circular centre of mass over all species.
  double cx = 0.0;
  double sx = 0.0;
  for (index_t i = 0; i < cells; ++i) {
    const double angle = 2.0 * std::numbers::pi * (static_cast<double>(i) + 0.5) * h;
    double cell_mass = 0.0;
    for (index_t s = 0; s < species; ++s) cell_mass += u(i * species + s, 0);
    cx += cell_mass * std::cos(angle);
    sx += cell_mass * std::sin(angle);
  }
  double com = std::atan2(sx, cx) / (2.0 * std::numbers::pi);
  if (com < 0.0) com += 1.0;
  const double expected_com = std::fmod(0.25 + velocity * dt * steps, 1.0);

  std::printf("ring advection-diffusion-reaction: %lld cells x %lld species, %d steps, P=%d\n",
              static_cast<long long>(cells), static_cast<long long>(species), steps, p_ranks);
  std::printf("periodic factor: %.3g modeled s; total stepping: %.3g modeled s\n", factor_vtime,
              solve_vtime);
  std::printf("mass conservation error after %d steps: %.3e (must be ~1e-15)\n", steps,
              mass_err);
  std::printf("centre of mass: %.4f (advection predicts %.4f, diffusion-flattened)\n", com,
              expected_com);

  // Species cycle: after many reaction times, mass spreads over species.
  double per_species[8] = {};
  for (index_t i = 0; i < cells; ++i) {
    for (index_t s = 0; s < species; ++s) per_species[s] += u(i * species + s, 0);
  }
  std::printf("species mass split:");
  for (index_t s = 0; s < species; ++s) std::printf(" %.3f", per_species[s] / mass0);
  std::printf("  (reaction cycle equilibrates toward 1/%lld each)\n",
              static_cast<long long>(species));
  return 0;
}
