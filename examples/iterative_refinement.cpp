// Iterative-method example: a block tridiagonal factorization as a
// preconditioner, generating one new right-hand side per iteration.
//
// The operator is T + eps * u v^T — block tridiagonal transport plus a
// low-rank long-range coupling (e.g. an integral term), which is NOT
// tridiagonal. Preconditioned Richardson iteration
//
//     x_{k+1} = x_k + T^{-1} (b - (T + eps u v^T) x_k)
//
// converges geometrically at rate ~ ||eps T^{-1} u v^T||, and every
// iteration needs one solve with the SAME T — the sequential right-hand-
// side pattern that makes ARD's factor-once/solve-many split pay off.
//
// Validation: geometric residual decay, and the final answer checked
// against a dense solve of the full (non-tridiagonal) operator.

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/btds/generators.hpp"
#include "src/btds/partition.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/ard.hpp"
#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/lu.hpp"
#include "src/la/random.hpp"
#include "src/mpsim/collectives.hpp"
#include "src/mpsim/engine.hpp"

namespace {

using namespace ardbt;
using la::index_t;
using la::Matrix;

}  // namespace

int main() {
  const index_t n = 128;
  const index_t m = 8;
  const double eps = 0.05;
  const int p_ranks = 4;
  const int max_iters = 40;

  const btds::BlockTridiag t = btds::make_problem(btds::ProblemKind::kConvectionDiffusion, n, m);
  la::Rng rng = la::make_rng(2024);
  const Matrix u_vec = la::random_uniform(n * m, 1, rng);
  const Matrix v_vec = la::random_uniform(n * m, 1, rng);
  const Matrix b = btds::make_rhs(n, m, 1);

  // Full operator applied to x: T x + eps * u (v^T x).
  const auto apply_full = [&](const Matrix& x) {
    Matrix y = btds::apply(t, x);
    double vtx = 0.0;
    for (index_t i = 0; i < x.rows(); ++i) vtx += v_vec(i, 0) * x(i, 0);
    for (index_t i = 0; i < y.rows(); ++i) y(i, 0) += eps * u_vec(i, 0) * vtx;
    return y;
  };

  Matrix x(n * m, 1);
  Matrix solve_out(n * m, 1);
  Matrix r_global(n * m, 1);
  std::vector<double> residual_norms;
  const btds::RowPartition part(n, p_ranks);
  double factor_vtime = 0.0;
  double solve_vtime_sum = 0.0;
  int iters_done = 0;

  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();
  mpsim::run(p_ranks, [&](mpsim::Comm& comm) {
    const double t0 = comm.vtime();
    const auto f = core::ArdFactorization::factor(comm, t, part);
    mpsim::barrier(comm);
    if (comm.rank() == 0) factor_vtime = comm.vtime() - t0;

    for (int k = 0; k < max_iters; ++k) {
      // Rank 0 forms the global residual (cheap, O(N M)); a production
      // code would keep this distributed too.
      if (comm.rank() == 0) {
        r_global = apply_full(x);
        la::matrix_scal(-1.0, r_global.view());
        la::matrix_axpy(1.0, b.view(), r_global.view());
        residual_norms.push_back(la::norm_fro(r_global.view()));
      }
      mpsim::barrier(comm);
      if (residual_norms.back() < 1e-12) break;

      const double t1 = comm.vtime();
      f.solve(comm, r_global, solve_out);
      mpsim::barrier(comm);
      if (comm.rank() == 0) {
        solve_vtime_sum += comm.vtime() - t1;
        la::matrix_axpy(1.0, solve_out.view(), x.view());
        ++iters_done;
      }
      mpsim::barrier(comm);
    }
  }, engine);

  std::printf("preconditioned Richardson on T + eps*u*v^T (N=%lld, M=%lld, eps=%.2g, P=%d)\n",
              static_cast<long long>(n), static_cast<long long>(m), eps, p_ranks);
  std::printf("factor once: %.3g modeled s; %d iterations, mean solve %.3g modeled s\n",
              factor_vtime, iters_done, solve_vtime_sum / iters_done);
  std::printf("iter   ||r||\n");
  for (std::size_t k = 0; k < residual_norms.size(); k += 5) {
    std::printf("%4zu   %.3e\n", k, residual_norms[k]);
  }
  std::printf("final  %.3e\n", residual_norms.back());
  const double rate = std::pow(residual_norms.back() / residual_norms.front(),
                               1.0 / static_cast<double>(iters_done));
  std::printf("mean contraction per iteration: %.3f\n", rate);

  // Cross-check against a dense solve of the full operator.
  Matrix dense(n * m, n * m);
  for (index_t i = 0; i < n; ++i) {
    la::copy(t.diag(i).view(), dense.block(i * m, i * m, m, m));
    if (i > 0) la::copy(t.lower(i).view(), dense.block(i * m, (i - 1) * m, m, m));
    if (i + 1 < n) la::copy(t.upper(i).view(), dense.block(i * m, (i + 1) * m, m, m));
  }
  for (index_t i = 0; i < n * m; ++i) {
    for (index_t j = 0; j < n * m; ++j) dense(i, j) += eps * u_vec(i, 0) * v_vec(j, 0);
  }
  const la::LuFactors lu = la::lu_factor(std::move(dense));
  const Matrix x_ref = la::lu_solve(lu, b.view());
  double err = 0.0;
  for (index_t i = 0; i < n * m; ++i) err = std::max(err, std::abs(x(i, 0) - x_ref(i, 0)));
  std::printf("max difference vs dense solve of the full operator: %.2e\n", err);
  return 0;
}
