#!/usr/bin/env python3
"""Sanitizer gate for the service/resilience layer.

Configures and builds dedicated build trees with -DARDBT_ASAN=ON
(address + undefined) and -DARDBT_UBSAN=ON (undefined only), builds just
the service-layer test binaries, and runs them. The retry/containment
machinery moves Sessions, Leases and panels across failure paths — the
exact territory where a use-after-invalidate or a dangling Lease would
hide; the sanitizers make those latent instead of lurking.

The build trees live under the main build directory (passed as argv) and
are reused across runs, so only the first invocation pays a full
configure + compile.

Usage: check_sanitizers.py <source-dir> <build-dir> <mode>
  mode: asan | ubsan
"""

import subprocess
import sys
from pathlib import Path

TARGETS = ["test_service", "test_resilience"]
MODES = {"asan": "ARDBT_ASAN", "ubsan": "ARDBT_UBSAN"}


def fail(msg):
    print(f"check_sanitizers: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd, **kw):
    proc = subprocess.run(cmd, capture_output=True, text=True, **kw)
    if proc.returncode != 0:
        fail(f"{' '.join(str(c) for c in cmd)} exited {proc.returncode}:\n"
             f"{proc.stdout[-4000:]}\n{proc.stderr[-4000:]}")
    return proc


def main():
    if len(sys.argv) != 4 or sys.argv[3] not in MODES:
        fail("usage: check_sanitizers.py <source-dir> <build-dir> asan|ubsan")
    source = Path(sys.argv[1]).resolve()
    mode = sys.argv[3]
    tree = Path(sys.argv[2]).resolve() / f"sanitize-{mode}"

    run(["cmake", "-B", str(tree), "-S", str(source),
         f"-D{MODES[mode]}=ON", "-DCMAKE_BUILD_TYPE=RelWithDebInfo"])
    run(["cmake", "--build", str(tree), "-j", "--target"] + TARGETS)
    for target in TARGETS:
        binary = tree / "tests" / target
        if not binary.exists():
            fail(f"{binary} not built")
        proc = run([str(binary)])
        tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
        print(f"check_sanitizers: {mode} {target}: {tail}")
    print(f"check_sanitizers: PASS ({mode})")


if __name__ == "__main__":
    main()
