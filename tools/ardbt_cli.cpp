// ardbt — command-line driver for the solver library.
//
// Runs any solver on a generated problem and reports timing, work and
// accuracy. Examples:
//
//   ardbt --method ard --kind poisson2d --n 2048 --m 16 --p 8 --r 64
//   ardbt --method rd-per-rhs --n 512 --m 8 --r 32 --timing measured
//   ardbt --method ard --n 512 --m 8 --p 4 --r 32 --trace ard.trace.json --json run.json
//   ardbt --list
//
// Flags (all optional):
//   --method  ard | rd | rd-per-rhs | transfer-rd | pcr     [ard]
//   --kind    diagdom | poisson2d | convdiff | toeplitz | illcond [diagdom]
//   --n / --m / --p / --r   problem shape                   [1024/8/4/16]
//   --seed    generator seed                                [42]
//   --timing  charged (deterministic virtual clock) | measured [charged]
//   --threads worker threads per rank for the solve kernels [1]
//   --overlap pipeline scan communication behind compute (ard only) [off]
//   --chunk   RHS columns per solve panel, 0 = all of R (ard only)  [0]
//   --lanes   intra-rank lanes of the two-level scan (ard only)     [1]
//   --refine  extra iterative-refinement steps (ard only)   [0]
//   --load-sys PATH   solve a system saved with save_block_tridiag
//                     (overrides --kind/--n/--m)
//   --save-sys PATH   save the generated system
//   --save-x PATH     save the solution (binary; .csv suffix -> CSV)
//   --trace PATH      write a Chrome/Perfetto trace of the run: one track
//                     per simulated rank with send/recv/wait/compute and
//                     phase spans on the virtual clock (docs/OBSERVABILITY.md)
//   --json PATH       write the machine-readable run report
//                     (schema ardbt.run_report v2: timing, attribution
//                     with critical path, cost-model verdicts, metrics)
//   --metrics         print a deterministic metrics/percentile snapshot to
//                     stdout (virtual-clock values only; no trace file)
//   --live-out PATH   stream live telemetry as JSONL while the run executes:
//                     structured log records (ardbt.log v1) and periodic
//                     metric snapshots (ardbt.metrics_snapshot v1) on the
//                     virtual clock; bit-stable under charged timing
//   --live-period S   virtual seconds between metric snapshots (default 0
//                     = one per engine run)
//   --postmortem PATH write an ardbt.postmortem v1 bundle (recent recorder
//                     events, metric snapshot, fault counters, ladder log)
//                     when the solve fails or breakdown is detected
//   --on-breakdown M  failfast | refine | fallback — what the driver does
//                     when a breakdown or recoverable fault is detected
//                     (docs/ROBUSTNESS.md)
//   --fault KIND      inject one deterministic fault: delay | dup | flip |
//                     straggle | crash (repeatable; targets derived from
//                     the flag's position so runs replay exactly)
//   --plant-pivot I   overwrite diagonal block I with an (near-)singular
//                     pivot before solving (see --plant-eps)
//   --plant-eps E     smallest pivot magnitude planted by --plant-pivot
//                     (default 0 = exactly singular)
//   --serve           run the solver-as-a-service scenario instead of one
//                     solve: a FactorCache + batching Server replays a
//                     deterministic client load on the virtual clock and
//                     prints latency/throughput/cache statistics
//                     (docs/SERVICE.md). Reuses --kind/--n/--m/--p/--seed/
//                     --threads (serve defaults N to 96); ignores --r.
//   --arrival MODE    serve load shape: closed (think-time population) |
//                     open (fixed-rate arrivals)                  [closed]
//   --requests K      serve: total requests to issue              [1024]
//   --tenants T       serve: tenants sharing the server           [4]
//   --clients C       serve: closed-loop client population        [32]
//   --window S        serve: batching window, virtual seconds     [2e-3]
//   --max-batch B     serve: columns per panel solve cap          [32]
//   --pool K          serve: distinct systems in the workload     [4]
//   --hot H           serve: hot-set size (90% of traffic)        [2]
//   --think S         serve: closed-loop mean think time          [2e-3]
//   --rate R          serve: open-loop arrival rate, req/s        [50e3]
//   --quota Q         serve: per-tenant queued-column quota (0=off) [0]
//   --budget-mb MB    serve: FactorCache byte budget (0=unlimited)  [0]
//   --list    print available methods/kinds/flags and exit
//   --help    same as --list

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/btds/generators.hpp"
#include "src/btds/io.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/flops.hpp"
#include "src/core/refine.hpp"
#include "src/core/solver.hpp"
#include "src/fault/plan.hpp"
#include "src/fault/status.hpp"
#include "src/mpsim/obs_bridge.hpp"
#include "src/obs/attribution.hpp"
#include "src/obs/chrome_trace.hpp"
#include "src/obs/cost_model.hpp"
#include "src/obs/live/telemetry.hpp"
#include "src/obs/live/watchdog.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/run_report.hpp"
#include "src/service/factor_cache.hpp"
#include "src/service/loadgen.hpp"
#include "src/service/server.hpp"

namespace {

using namespace ardbt;

constexpr const char* kKnownFlags[] = {
    "--method", "--kind",     "--n",        "--m",      "--p",     "--r",
    "--overlap", "--chunk",   "--lanes",
    "--seed",   "--timing",   "--threads",  "--refine", "--load-sys", "--save-sys",
    "--save-x", "--trace",    "--json",     "--metrics", "--list",  "--help",
    "--on-breakdown", "--fault", "--plant-pivot", "--plant-eps",
    "--live-out", "--live-period", "--postmortem",
    "--serve",  "--arrival",  "--requests", "--tenants", "--clients", "--window",
    "--max-batch", "--pool",  "--hot",      "--think",  "--rate",  "--quota",
    "--budget-mb",
    "--deadline", "--retries", "--hedge", "--hedge-delay", "--retry-budget", "--shed-queue",
    "--shed-backlog", "--breaker", "--breaker-cooldown", "--max-resubmits",
};

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "ardbt: %s (try --list)\n", message.c_str());
  std::exit(2);
}

/// Malformed flag *values* (garbage/zero/negative numbers) exit through
/// the same structured `ardbt: error: [code]` channel as solver failures,
/// with exit 1, so scripted callers parse one error grammar.
[[noreturn]] void die_invalid(const std::string& message) {
  std::fprintf(stderr, "ardbt: error: [%s] %s\n",
               std::string(fault::to_string(fault::ErrorCode::kInvalidArgument)).c_str(),
               message.c_str());
  std::exit(1);
}

/// Strict decimal parse of an integer flag value in [min_value, max_value]:
/// the whole token must be a number — "8x", "", "1e3" and out-of-range
/// values are all rejected (std::atoi would silently return 0 or garbage).
long long parse_int(const std::string& flag, const std::string& text, long long min_value,
                    long long max_value = std::numeric_limits<long long>::max()) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    die_invalid(flag + " expects an integer, got '" + text + "'");
  }
  if (v < min_value || v > max_value) {
    die_invalid(flag + " must be at least " + std::to_string(min_value) + ", got '" + text +
                "'");
  }
  return v;
}

/// Strict parse of a non-negative double flag value.
double parse_double(const std::string& flag, const std::string& text, double min_value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    die_invalid(flag + " expects a number, got '" + text + "'");
  }
  if (!(v >= min_value)) {
    die_invalid(flag + " must be at least " + std::to_string(min_value) + ", got '" + text +
                "'");
  }
  return v;
}

/// Classic dynamic-programming edit distance, for flag suggestions.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, sub});
      diag = up;
    }
  }
  return row[b.size()];
}

[[noreturn]] void die_unknown_flag(const std::string& flag) {
  const char* best = nullptr;
  std::size_t best_dist = flag.size();  // suggest only when reasonably close
  for (const char* candidate : kKnownFlags) {
    const std::size_t d = edit_distance(flag, candidate);
    if (d < best_dist) {
      best_dist = d;
      best = candidate;
    }
  }
  std::string message = "unknown flag '" + flag + "'";
  if (best != nullptr && best_dist <= 3) {
    message += "; did you mean '" + std::string(best) + "'?";
  }
  die(message);
}

void print_usage() {
  std::printf("usage: ardbt [flags]\n\n");
  std::printf("methods: ard rd rd-per-rhs transfer-rd pcr\n");
  std::printf("kinds  :");
  for (btds::ProblemKind k : btds::kAllProblemKinds) {
    std::printf(" %s", std::string(btds::to_string(k)).c_str());
  }
  std::printf("\n\nflags:\n");
  std::printf("  --method NAME    solver (default ard)\n");
  std::printf("  --kind NAME      generated problem kind (default diagdom)\n");
  std::printf("  --n/--m/--p/--r  problem shape: block rows / block size /\n");
  std::printf("                   ranks / right-hand sides (1024/8/4/16)\n");
  std::printf("  --seed S         generator seed (42)\n");
  std::printf("  --timing MODE    charged (deterministic) | measured\n");
  std::printf("  --threads T      worker threads per rank for the solve kernels\n");
  std::printf("                   (default 1; results are bit-identical for any T)\n");
  std::printf("  --overlap        pipeline scan communication behind compute (ard):\n");
  std::printf("                   round-interleaved fwd/bwd scans and RHS-panel\n");
  std::printf("                   software pipelining; solutions bit-identical\n");
  std::printf("                   on/off, only virtual waits shrink\n");
  std::printf("  --chunk C        RHS columns per solve panel (0 = all of R);\n");
  std::printf("                   with --overlap, panel k+1's local reduction\n");
  std::printf("                   hides panel k's in-flight scan rounds\n");
  std::printf("  --lanes L        two-level hierarchical scan: L intra-rank lanes\n");
  std::printf("                   reduce the segment in parallel before the\n");
  std::printf("                   cross-rank scan (default 1 = flat;\n");
  std::printf("                   docs/PARALLELISM.md)\n");
  std::printf("  --refine K       iterative-refinement steps (ard only)\n");
  std::printf("  --load-sys PATH  solve a saved system (overrides --kind/--n/--m)\n");
  std::printf("  --save-sys PATH  save the generated system\n");
  std::printf("  --save-x PATH    save the solution (.csv suffix -> CSV)\n");
  std::printf("  --trace PATH     write a Chrome/Perfetto trace (one track per\n");
  std::printf("                   rank, virtual clock; see docs/OBSERVABILITY.md)\n");
  std::printf("  --json PATH      write the ardbt.run_report v2 JSON report\n");
  std::printf("                   (timing, critical-path attribution, cost-model\n");
  std::printf("                   verdicts, metrics with p50/p90/p99 latencies)\n");
  std::printf("  --metrics        print a deterministic metrics snapshot to stdout\n");
  std::printf("                   (virtual-clock values only, bit-identical across\n");
  std::printf("                   runs and --threads in charged timing)\n");
  std::printf("  --live-out PATH  stream live telemetry JSONL (structured log +\n");
  std::printf("                   metric snapshots on the virtual clock)\n");
  std::printf("  --live-period S  virtual seconds between snapshots (0 = per run)\n");
  std::printf("  --postmortem P   write an ardbt.postmortem bundle on failure or\n");
  std::printf("                   breakdown (recorder tail, metrics, fault log)\n");
  std::printf("  --on-breakdown M failfast | refine | fallback (default failfast)\n");
  std::printf("  --fault KIND     inject delay | dup | flip | straggle | crash\n");
  std::printf("                   (repeatable, deterministic; docs/ROBUSTNESS.md)\n");
  std::printf("  --plant-pivot I  plant a singular pivot in diagonal block I\n");
  std::printf("  --plant-eps E    planted pivot magnitude (default 0 = singular)\n");
  std::printf("  --serve          run the multi-tenant service scenario: a\n");
  std::printf("                   FactorCache + batching Server replays a\n");
  std::printf("                   deterministic client load on the virtual clock\n");
  std::printf("                   and prints latency/throughput/cache stats\n");
  std::printf("                   (docs/SERVICE.md; serve defaults N to 96)\n");
  std::printf("  --arrival MODE   serve load: closed | open (default closed)\n");
  std::printf("  --requests K     serve: total requests (1024)\n");
  std::printf("  --tenants T      serve: tenants sharing the server (4)\n");
  std::printf("  --clients C      serve: closed-loop population (32)\n");
  std::printf("  --window S       serve: batching window in virtual s (2e-3)\n");
  std::printf("  --max-batch B    serve: columns per panel solve cap (32)\n");
  std::printf("  --pool K         serve: distinct systems (4)\n");
  std::printf("  --hot H          serve: hot-set size, 90%% of traffic (2)\n");
  std::printf("  --think S        serve: closed-loop mean think time (2e-3)\n");
  std::printf("  --rate R         serve: open-loop arrival rate req/s (50e3)\n");
  std::printf("  --quota Q        serve: per-tenant queue quota, 0 = off (0)\n");
  std::printf("  --budget-mb MB   serve: cache byte budget, 0 = unlimited (0)\n");
  std::printf("  --deadline S     serve: mean request deadline, 0 = none (0);\n");
  std::printf("                   infeasible deadlines are rejected at admission,\n");
  std::printf("                   expired ones cancelled at batch start\n");
  std::printf("  --retries K      serve: service-level retries of a batch that\n");
  std::printf("                   failed with a transient fault status (0)\n");
  std::printf("  --hedge          serve: take the first retry as a hedged attempt\n");
  std::printf("  --hedge-delay S  serve: explicit hedge delay (default: half the EWMA\n");
  std::printf("                   service estimate; a cold server does not hedge)\n");
  std::printf("  --retry-budget R serve: retry tokens accrued per admitted column\n");
  std::printf("                   per tenant, capped at a burst of 4 (0.1)\n");
  std::printf("  --shed-queue N   serve: shed admissions at N queued cols, 0 = off\n");
  std::printf("  --shed-backlog S serve: shed when executor backlog exceeds S (0)\n");
  std::printf("  --breaker K      serve: trip a tenant breaker after K consecutive\n");
  std::printf("                   failures, 0 = off (0)\n");
  std::printf("  --breaker-cooldown S  serve: open breaker half-opens after S (0.1)\n");
  std::printf("  --max-resubmits K serve: closed-loop clients give up a request\n");
  std::printf("                   after K consecutive rejections, 0 = never (0)\n");
  std::printf("                   (--fault also applies to --serve: the plan is\n");
  std::printf("                   injected into every cached session's engine)\n");
  std::printf("  --list / --help  this message\n");
}

core::Method parse_method(const std::string& s) {
  if (s == "ard") return core::Method::kArd;
  if (s == "rd") return core::Method::kRdBatched;
  if (s == "rd-per-rhs") return core::Method::kRdPerRhs;
  if (s == "transfer-rd") return core::Method::kTransferRd;
  if (s == "pcr") return core::Method::kPcr;
  die("unknown method '" + s + "'");
}

btds::ProblemKind parse_kind(const std::string& s) {
  for (btds::ProblemKind kind : btds::kAllProblemKinds) {
    if (s == btds::to_string(kind)) return kind;
  }
  die("unknown problem kind '" + s + "'");
}

obs::Json fault_event_json(const fault::FaultEvent& e) {
  obs::Json j = obs::Json::object();
  j.set("kind", std::string(fault::to_string(e.kind)));
  j.set("rank", e.rank);
  j.set("peer", e.peer);
  j.set("tag", e.tag);
  j.set("seq", static_cast<std::int64_t>(e.seq));
  j.set("vtime_s", e.vtime);
  return j;
}

obs::Json outcome_json(const core::SolveOutcome& o) {
  obs::Json j = obs::Json::object();
  j.set("phase", o.phase);
  j.set("action", o.action);
  j.set("status", std::string(fault::to_string(o.status.code())));
  if (!o.status.is_ok()) j.set("error", o.status.message());
  j.set("retries", o.retries);
  j.set("refine_steps", o.refine_steps);
  if (o.residual >= 0.0) j.set("residual", o.residual);
  if (o.pivot_growth > 0.0) j.set("pivot_growth", o.pivot_growth);
  if (!o.detail.empty()) j.set("detail", o.detail);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  core::Method method = core::Method::kArd;
  btds::ProblemKind kind = btds::ProblemKind::kDiagDominant;
  la::index_t n = 1024, m = 8, r = 16;
  int p = 4;
  std::uint64_t seed = 42;
  int refine_steps = 0;
  std::string load_sys, save_sys, save_x, trace_path, json_path;
  std::string live_out, postmortem_path;
  double live_period = 0.0;
  bool print_metrics = false;
  std::vector<std::string> fault_kinds;
  la::index_t plant_pivot = -1;
  double plant_eps = 0.0;
  bool serve = false;
  bool n_explicit = false;
  service::LoadOptions load;
  load.requests = 1024;
  load.clients = 32;
  load.pool = 4;
  double serve_window_s = 2e-3;
  la::index_t serve_max_batch = 32;
  int serve_quota = 0;
  double serve_budget_mb = 0.0;
  service::ResilienceOptions resilience;
  core::ArdOptions ard_opts;
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value after " + flag);
      return argv[++i];
    };
    if (flag == "--list" || flag == "--help") {
      print_usage();
      return 0;
    } else if (flag == "--method") {
      method = parse_method(next());
    } else if (flag == "--kind") {
      kind = parse_kind(next());
    } else if (flag == "--n") {
      n = static_cast<la::index_t>(parse_int(flag, next(), 1));
      n_explicit = true;
    } else if (flag == "--m") {
      m = static_cast<la::index_t>(parse_int(flag, next(), 1));
    } else if (flag == "--p") {
      p = static_cast<int>(parse_int(flag, next(), 1, std::numeric_limits<int>::max()));
    } else if (flag == "--r") {
      r = static_cast<la::index_t>(parse_int(flag, next(), 1));
    } else if (flag == "--overlap") {
      ard_opts.pipeline.overlap = true;
    } else if (flag == "--chunk") {
      ard_opts.pipeline.chunk_cols = static_cast<la::index_t>(parse_int(flag, next(), 0));
    } else if (flag == "--lanes") {
      ard_opts.pipeline.lanes = static_cast<int>(parse_int(flag, next(), 1, 1 << 16));
    } else if (flag == "--seed") {
      seed = static_cast<std::uint64_t>(parse_int(flag, next(), 0));
    } else if (flag == "--refine") {
      refine_steps =
          static_cast<int>(parse_int(flag, next(), 0, std::numeric_limits<int>::max()));
    } else if (flag == "--load-sys") {
      load_sys = next();
    } else if (flag == "--save-sys") {
      save_sys = next();
    } else if (flag == "--save-x") {
      save_x = next();
    } else if (flag == "--trace") {
      trace_path = next();
    } else if (flag == "--json") {
      json_path = next();
    } else if (flag == "--metrics") {
      print_metrics = true;
    } else if (flag == "--live-out") {
      live_out = next();
    } else if (flag == "--live-period") {
      live_period = parse_double(flag, next(), 0.0);
    } else if (flag == "--postmortem") {
      postmortem_path = next();
    } else if (flag == "--threads") {
      engine.threads_per_rank =
          static_cast<int>(parse_int(flag, next(), 1, std::numeric_limits<int>::max()));
    } else if (flag == "--on-breakdown") {
      const std::string v = next();
      const auto policy = fault::parse_breakdown_policy(v);
      if (!policy) die("unknown breakdown policy '" + v + "'");
      engine.on_breakdown = *policy;
    } else if (flag == "--fault") {
      fault_kinds.push_back(next());
    } else if (flag == "--plant-pivot") {
      plant_pivot = static_cast<la::index_t>(parse_int(flag, next(), 0));
    } else if (flag == "--plant-eps") {
      plant_eps = parse_double(flag, next(), 0.0);
    } else if (flag == "--timing") {
      const std::string v = next();
      if (v == "charged") {
        engine.timing = mpsim::TimingMode::ChargedFlops;
      } else if (v == "measured") {
        engine.timing = mpsim::TimingMode::MeasuredCpu;
      } else {
        die("unknown timing mode '" + v + "'");
      }
    } else if (flag == "--serve") {
      serve = true;
    } else if (flag == "--arrival") {
      const std::string v = next();
      if (v == "closed") {
        load.arrival = service::Arrival::kClosed;
      } else if (v == "open") {
        load.arrival = service::Arrival::kOpen;
      } else {
        die("unknown arrival mode '" + v + "' (closed|open)");
      }
    } else if (flag == "--requests") {
      load.requests = static_cast<int>(parse_int(flag, next(), 1, 1 << 24));
    } else if (flag == "--tenants") {
      load.tenants = static_cast<int>(parse_int(flag, next(), 1, 1 << 16));
    } else if (flag == "--clients") {
      load.clients = static_cast<int>(parse_int(flag, next(), 1, 1 << 20));
    } else if (flag == "--window") {
      serve_window_s = parse_double(flag, next(), 0.0);
    } else if (flag == "--max-batch") {
      serve_max_batch = static_cast<la::index_t>(parse_int(flag, next(), 1));
    } else if (flag == "--pool") {
      load.pool = static_cast<int>(parse_int(flag, next(), 1, 1 << 16));
    } else if (flag == "--hot") {
      load.hot = static_cast<int>(parse_int(flag, next(), 1, 1 << 16));
    } else if (flag == "--think") {
      load.think_s = parse_double(flag, next(), 0.0);
    } else if (flag == "--rate") {
      load.rate_rps = parse_double(flag, next(), 1.0);
    } else if (flag == "--quota") {
      serve_quota = static_cast<int>(parse_int(flag, next(), 0, 1 << 24));
    } else if (flag == "--budget-mb") {
      serve_budget_mb = parse_double(flag, next(), 0.0);
    } else if (flag == "--deadline") {
      load.deadline_s = parse_double(flag, next(), 0.0);
    } else if (flag == "--retries") {
      resilience.max_retries = static_cast<int>(parse_int(flag, next(), 0, 1 << 16));
    } else if (flag == "--hedge") {
      resilience.hedge = true;
    } else if (flag == "--hedge-delay") {
      resilience.hedge_delay_s = parse_double(flag, next(), 0.0);
    } else if (flag == "--retry-budget") {
      resilience.retry_budget_ratio = parse_double(flag, next(), 0.0);
      // Ratio 0 means "no retry budget at all": also drop the initial
      // burst, so every retry is denied rather than the first four.
      if (resilience.retry_budget_ratio == 0.0) resilience.retry_budget_burst = 0.0;
    } else if (flag == "--shed-queue") {
      resilience.shed_queue_cols = static_cast<int>(parse_int(flag, next(), 0, 1 << 24));
    } else if (flag == "--shed-backlog") {
      resilience.shed_backlog_s = parse_double(flag, next(), 0.0);
    } else if (flag == "--breaker") {
      resilience.breaker_failures = static_cast<int>(parse_int(flag, next(), 0, 1 << 16));
    } else if (flag == "--breaker-cooldown") {
      resilience.breaker_cooldown_s = parse_double(flag, next(), 0.0);
    } else if (flag == "--max-resubmits") {
      load.max_resubmits = static_cast<int>(parse_int(flag, next(), 0, 1 << 24));
    } else {
      die_unknown_flag(flag);
    }
  }

  if (serve) {
    // Solver-as-a-service scenario: no single system to generate — the
    // load generator builds a pool of `--pool` systems from
    // --kind/--n/--m/--seed and replays a deterministic client mix against
    // the FactorCache + batching Server (docs/SERVICE.md). Everything
    // below runs on the virtual clock, so the summary is bit-identical
    // across reruns and --threads values under charged timing.
    if (load.hot > load.pool) die("--hot must not exceed --pool");
    load.kind = kind;
    load.num_blocks = n_explicit ? n : 96;  // the one-shot default 1024 is
                                            // oversized for a pooled load
    load.block_size = m;
    load.seed = seed;
    if (load.num_blocks < p) die("need N >= P");

    // --fault pass-through: the same deterministic schedule grammar as the
    // one-shot path, with the ordinals spread out (stride 7) so the k-th
    // fault lands deeper into the serve run's send stream. Each spec is
    // one-shot — its `fired` state persists across every engine run of
    // every cached session sharing the plan — so `--fault flip --fault
    // crash` injects exactly two fault events into the whole scenario,
    // replayed identically on every rerun.
    fault::FaultPlan serve_plan;
    for (std::size_t k = 0; k < fault_kinds.size(); ++k) {
      const std::string& fk = fault_kinds[k];
      const int rank = static_cast<int>((1 + k) % static_cast<std::size_t>(p));
      const std::uint64_t nth = 2 + 7 * k;
      if (fk == "delay") {
        serve_plan.delay_message(rank, nth, 5e-3);
      } else if (fk == "dup") {
        serve_plan.duplicate_message(rank, nth);
      } else if (fk == "flip") {
        serve_plan.flip_bit(rank, nth, 17 * (k + 1));
      } else if (fk == "straggle") {
        serve_plan.straggle(rank, nth, 5e-3);
      } else if (fk == "crash") {
        serve_plan.crash_before_send(rank, nth);
      } else {
        die("unknown fault kind '" + fk + "' (delay|dup|flip|straggle|crash)");
      }
    }
    if (!serve_plan.empty()) {
      engine.fault_plan = &serve_plan;
      engine.recv_timeout_wall = 10.0;  // hang detector (wall seconds)
    }

    service::FactorCache::Options copts;
    copts.method = method;
    copts.nranks = p;
    copts.byte_budget = static_cast<std::size_t>(serve_budget_mb * 1e6);
    copts.session.engine = engine;
    service::FactorCache cache(copts);

    service::ServerOptions sopts;
    sopts.window_s = serve_window_s;
    sopts.max_batch_cols = serve_max_batch;
    sopts.tenant_queue_quota = serve_quota;
    sopts.resilience = resilience;
    service::Server server(cache, sopts);

    // Shed-storm / breaker-trip watchdogs run over the load's admission
    // counters; sinks are null here, so only the alert count surfaces (in
    // the resilience summary line below).
    obs::live::Watchdogs dogs({}, nullptr, nullptr, nullptr);
    const service::LoadResult lr = service::run_load(server, load, nullptr, &dogs);
    const service::FactorCache::Stats& cs = cache.stats();
    const service::ServerStats& ss = server.stats();
    std::printf("ardbt: serve method=%s kind=%s N=%lld M=%lld P=%d arrival=%s\n",
                std::string(core::to_string(method)).c_str(),
                std::string(btds::to_string(kind)).c_str(),
                static_cast<long long>(load.num_blocks),
                static_cast<long long>(load.block_size), p,
                load.arrival == service::Arrival::kClosed ? "closed" : "open");
    std::printf("  load        : %d tenants, %d clients, pool %d (hot %d), window %.4g s\n",
                load.tenants, load.clients, load.pool, load.hot, serve_window_s);
    std::printf("  requests    : issued %llu, rejected %llu, completed %llu\n",
                static_cast<unsigned long long>(lr.issued),
                static_cast<unsigned long long>(lr.rejected),
                static_cast<unsigned long long>(lr.completed));
    std::printf("  latency     : p50 %.6g s, p99 %.6g s, mean %.6g s (virtual)\n", lr.p50_s,
                lr.p99_s, lr.mean_s);
    std::printf("  throughput  : %.6g req/s over %.6g s makespan (virtual)\n",
                lr.throughput_rps, lr.makespan_s);
    std::printf("  batching    : %llu batches, mean %.4g cols, executor busy %.6g s\n",
                static_cast<unsigned long long>(lr.batches), lr.mean_batch_cols, ss.busy_s);
    std::printf("  cache       : hit rate %.4f (%llu/%llu), entries %zu, resident %.3f MB, "
                "evictions %llu\n",
                cs.hit_rate(), static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.lookups), cache.size(),
                static_cast<double>(cache.resident_bytes()) / 1e6,
                static_cast<unsigned long long>(cs.evictions));
    std::printf("  outcomes    : done %llu (degraded %llu), failed %llu, "
                "deadline-exceeded %llu, gave-up %llu\n",
                static_cast<unsigned long long>(lr.done),
                static_cast<unsigned long long>(lr.degraded),
                static_cast<unsigned long long>(lr.failed),
                static_cast<unsigned long long>(lr.deadline_exceeded),
                static_cast<unsigned long long>(lr.gave_up));
    std::printf("  rejections  : quota %llu, shed %llu, breaker %llu, infeasible %llu, "
                "cancelled %llu\n",
                static_cast<unsigned long long>(lr.quota_rejected),
                static_cast<unsigned long long>(lr.shed),
                static_cast<unsigned long long>(lr.breaker_rejected),
                static_cast<unsigned long long>(lr.deadline_infeasible),
                static_cast<unsigned long long>(lr.deadline_cancelled));
    std::printf("  resilience  : retries %llu (hedged %llu, denied %llu), breaker trips %llu, "
                "invalidations %llu, alerts %zu\n",
                static_cast<unsigned long long>(lr.retries),
                static_cast<unsigned long long>(lr.hedges),
                static_cast<unsigned long long>(lr.retries_denied),
                static_cast<unsigned long long>(lr.breaker_trips),
                static_cast<unsigned long long>(lr.invalidations), dogs.alerts_raised());
    std::printf("  goodput     : %.6g req/s (done / makespan)\n", lr.goodput_rps);
    // Exactly-one-typed-terminal-state ledger: every admitted request ends
    // in done | failed | deadline-exceeded; every rejection has a class.
    // tools/check_chaos.py asserts this line verbatim.
    const bool balanced =
        lr.completed == lr.issued &&
        lr.done + lr.failed + lr.deadline_exceeded == lr.completed &&
        lr.quota_rejected + lr.shed + lr.breaker_rejected + lr.deadline_infeasible == lr.rejected;
    std::printf("  accounting  : %s\n", balanced ? "BALANCED" : "UNBALANCED");
    for (const auto& [tenant, completed] : lr.tenant_completed) {
      // A tenant whose every request failed has no latency samples.
      const auto p99_it = lr.tenant_p99_s.find(tenant);
      std::printf("  tenant %-5d: completed %llu, p99 %.6g s\n", tenant,
                  static_cast<unsigned long long>(completed),
                  p99_it != lr.tenant_p99_s.end() ? p99_it->second : 0.0);
    }
    return 0;
  }
  if (n < p) die("need N >= P");

  btds::BlockTridiag sys;
  if (!load_sys.empty()) {
    sys = btds::load_block_tridiag(load_sys);
    n = sys.num_blocks();
    m = sys.block_size();
    if (n < p) die("loaded system too small for --p");
  } else {
    sys = btds::make_problem(kind, n, m, seed);
  }
  if (plant_pivot >= 0) {
    if (plant_pivot >= n) die("--plant-pivot block row out of range");
    btds::plant_singular_pivot(sys, plant_pivot, plant_eps);
  }
  if (!save_sys.empty()) btds::save_block_tridiag(save_sys, sys);
  const la::Matrix b = btds::make_rhs(n, m, r, seed + 1);

  // Deterministic fault schedule: the k-th --fault targets rank (1+k) mod P
  // on that rank's (2+k)-th send, so a given command line replays exactly.
  fault::FaultPlan plan;
  for (std::size_t k = 0; k < fault_kinds.size(); ++k) {
    const std::string& fk = fault_kinds[k];
    const int rank = static_cast<int>((1 + k) % static_cast<std::size_t>(p));
    const std::uint64_t nth = 2 + k;
    if (fk == "delay") {
      plan.delay_message(rank, nth, 5e-3);
    } else if (fk == "dup") {
      plan.duplicate_message(rank, nth);
    } else if (fk == "flip") {
      plan.flip_bit(rank, nth, 17 * (k + 1));
    } else if (fk == "straggle") {
      plan.straggle(rank, nth, 5e-3);
    } else if (fk == "crash") {
      plan.crash_before_send(rank, nth);
    } else {
      die("unknown fault kind '" + fk + "' (delay|dup|flip|straggle|crash)");
    }
  }
  if (!plan.empty()) {
    engine.fault_plan = &plan;
    engine.recv_timeout_wall = 10.0;  // hang detector (wall seconds)
    engine.virtual_deadline = 2e-3;   // flags the injected 5e-3 s delay
  }

  // Event tracing powers --trace (the timeline itself), --json (per-phase
  // byte counters, message-size histogram, critical-path attribution) and
  // --metrics (latency percentiles).
  obs::Tracer tracer;
  if (!trace_path.empty() || !json_path.empty() || print_metrics) engine.tracer = &tracer;

  // Structured warnings: one JSON record per line on stderr (ardbt.log v1
  // records without the header line), replacing the old ad-hoc
  // "ardbt: warning:" prints. Errors keep the `ardbt: error: [code]`
  // grammar scripted callers parse.
  obs::live::StderrSink warn_sink;
  obs::live::Log warn_log(&warn_sink, {.min_level = obs::live::LogLevel::kWarn,
                                       .max_per_site = 16,
                                       .header = false});

  // Live telemetry: one JSONL stream (--live-out) shared by the
  // structured log and the snapshot cadence, plus the bounded flight
  // recorder and the online watchdogs. --postmortem alone also arms the
  // recorder (records go to an in-memory sink).
  obs::MetricsRegistry live_metrics;
  std::unique_ptr<obs::live::LiveTelemetry> live;
  if (!live_out.empty() || !postmortem_path.empty()) {
    obs::live::LiveTelemetry::Options lopts;
    lopts.live_path = live_out;
    lopts.snapshot.period_s = live_period;
    lopts.postmortem_path = postmortem_path;
    live = std::make_unique<obs::live::LiveTelemetry>(std::move(lopts), &live_metrics);
  }
  const auto close_live = [&] {
    if (!live) return;
    live->close();
    if (!live_out.empty()) {
      std::printf("  live        : streamed to %s (%llu log records, %llu snapshots)\n",
                  live_out.c_str(),
                  static_cast<unsigned long long>(live->log().records_written()),
                  static_cast<unsigned long long>(live->snapshotter().snapshots_written()));
    }
  };

  std::unique_ptr<core::Session> session;
  core::DriverResult res;
  core::RefineResult refined;
  bool degraded = false;
  double pivot_growth = 0.0;
  fault::Status solve_status = fault::Status::ok();
  try {
    if (refine_steps > 0 && method == core::Method::kArd) {
      // The manual-refinement path runs the engine directly; attach the
      // recorder so anomaly taps still land, Session hooks don't apply.
      if (live) engine.recorder = &live->recorder();
      res.x.resize(b.rows(), b.cols());
      const btds::RowPartition part(n, p);
      res.report = mpsim::run(
          p,
          [&](mpsim::Comm& comm) {
            mpsim::barrier(comm);
            const double t0 = comm.vtime();
            auto factor_span = comm.trace_scope(obs::SpanKind::kPhase, "driver.factor");
            const auto f = core::ArdFactorization::factor(comm, sys, part, ard_opts);
            mpsim::barrier(comm);
            factor_span.close();
            if (comm.rank() == 0) res.factor_vtime = comm.vtime() - t0;
            const double t1 = comm.vtime();
            auto solve_span = comm.trace_scope(obs::SpanKind::kPhase, "driver.solve");
            const auto rr = core::solve_refined(comm, f, sys, part, b, res.x, refine_steps, 0.0);
            mpsim::barrier(comm);
            solve_span.close();
            if (comm.rank() == 0) {
              res.solve_vtime = comm.vtime() - t1;
              refined = rr;
            }
          },
          engine);
    } else {
      session = std::make_unique<core::Session>(
          method, sys, p, core::SessionConfig{.ard = ard_opts, .engine = engine});
      if (live) session->set_telemetry(live->handle());
      session->factor();
      res.x = session->solve(b);
      res.report = session->report();
      res.factor_vtime = session->factor_vtime();
      res.solve_vtime = session->solve_vtimes().back();
      res.outcomes = session->outcomes();
      degraded = session->degraded();
      pivot_growth = session->pivot_growth();
    }
  } catch (const fault::SolveError& e) {
    solve_status = e.status();
  }
  const bool failed = !solve_status.is_ok();

  const double residual = failed ? -1.0 : btds::relative_residual(sys, res.x, b);
  const auto totals = res.report.totals();
  std::printf("ardbt: method=%s kind=%s N=%lld M=%lld P=%d R=%lld\n",
              std::string(core::to_string(method)).c_str(),
              std::string(btds::to_string(kind)).c_str(), static_cast<long long>(n),
              static_cast<long long>(m), p, static_cast<long long>(r));
  if (!failed) {
    std::printf("  factor time : %.4g s (virtual)\n", res.factor_vtime);
    std::printf("  solve time  : %.4g s (virtual)\n", res.solve_vtime);
    std::printf("  wall time   : %.4g s (host, %d oversubscribed threads)\n",
                res.report.wall_seconds, p);
    std::printf("  flops       : %.4g total, %.4g msgs, %.4g MB sent\n", totals.flops_charged,
                static_cast<double>(totals.msgs_sent),
                static_cast<double>(totals.bytes_sent) / 1e6);
    std::printf("  residual    : %.3e\n", residual);
    if (refine_steps > 0 && !refined.residual_norms.empty()) {
      std::printf("  refinement  : %d steps, ||r|| %.3e -> %.3e\n", refined.steps,
                  refined.residual_norms.front(), refined.residual_norms.back());
    }
    std::printf("  model       : rd-per-rhs/ard speedup at this shape = %.3g\n",
                core::flops::predicted_speedup(n, m, r, p));
  }
  bool eventful = !plan.empty() || failed || degraded;
  for (const auto& o : res.outcomes) {
    if (o.action != "ok" || o.retries > 0) eventful = true;
  }
  if (eventful) {
    std::string actions;
    for (const auto& o : res.outcomes) {
      if (!actions.empty()) actions += ",";
      actions += o.phase + ":" + o.action;
      if (o.retries > 0) actions += "+retry" + std::to_string(o.retries);
    }
    std::printf("  robustness  : policy=%s injected=%zu detected=%zu growth=%.3g%s%s%s\n",
                std::string(fault::to_string(engine.on_breakdown)).c_str(),
                plan.injected().size(), plan.detected().size(), pivot_growth,
                degraded ? " degraded" : "", actions.empty() ? "" : " actions=",
                actions.c_str());
  }
  if (failed) {
    std::fprintf(stderr, "ardbt: error: [%s] %s\n",
                 std::string(fault::to_string(solve_status.code())).c_str(),
                 solve_status.message().c_str());
  }
  if (!failed && !save_x.empty()) {
    if (save_x.size() > 4 && save_x.substr(save_x.size() - 4) == ".csv") {
      btds::save_matrix_csv(save_x, res.x);
    } else {
      btds::save_matrix(save_x, res.x);
    }
    std::printf("  solution    : saved to %s\n", save_x.c_str());
  }

  if (!trace_path.empty()) {
    obs::write_chrome_trace(trace_path, tracer);
    std::printf("  trace       : saved to %s (chrome://tracing, ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  if (!json_path.empty() || print_metrics) {
    obs::MetricsRegistry metrics;
    mpsim::export_metrics(res.report, metrics);
    mpsim::export_metrics(tracer, metrics);
    if (session) session->export_latency_metrics(metrics);

    // Attribution: dependency graph + critical path over the traced run.
    const obs::Attribution attr = obs::analyze(tracer);

    // Cost-model oracle, seeded with the simulator's own constants and
    // calibrated on the factor phase when the method has one. Phases
    // whose measured/predicted ratio drifts past the threshold get a
    // structured warning — the formulas count the per-rank critical path,
    // so a clean run sits near ratio 1.
    obs::CostModel::Constants constants;
    constants.seconds_per_flop = 1.0 / engine.cost.flop_rate;
    constants.alpha = engine.cost.alpha;
    constants.beta = engine.cost.beta;
    obs::CostModel oracle(constants);
    std::vector<obs::CostVerdict> verdicts;
    if (!failed) {
      if (method == core::Method::kArd) {
        oracle.calibrate(core::flops::ard_factor_terms(n, m, p), res.factor_vtime);
        verdicts.push_back(
            oracle.judge("factor", core::flops::ard_factor_terms(n, m, p), res.factor_vtime));
        verdicts.push_back(
            oracle.judge("solve", core::flops::ard_solve_terms(n, m, r, p), res.solve_vtime));
      } else if (method == core::Method::kRdBatched) {
        verdicts.push_back(
            oracle.judge("solve", core::flops::rd_batched_terms(n, m, r, p), res.solve_vtime));
      } else if (method == core::Method::kRdPerRhs) {
        verdicts.push_back(
            oracle.judge("solve", core::flops::rd_per_rhs_terms(n, m, r, p), res.solve_vtime));
      }
      for (const auto& v : verdicts) {
        if (v.flagged) {
          obs::Json fields = obs::Json::object();
          fields.set("phase", v.phase);
          fields.set("ratio", v.ratio);
          fields.set("threshold", oracle.threshold());
          warn_log.warn("cli.cost_model",
                        "phase '" + v.phase + "' measured/predicted ratio outside threshold",
                        res.report.max_virtual_time(), std::move(fields));
        }
      }
      if (live) live->watchdogs().check_cost(verdicts, res.report.max_virtual_time());
    }

    // A nonzero drop count means the bounded per-rank rings overwrote
    // events: any attribution over this trace is partial (complete=false).
    std::uint64_t trace_dropped = 0;
    for (int tr = 0; tr < tracer.nranks(); ++tr) trace_dropped += tracer.rank(tr).dropped();
    if (trace_dropped > 0) {
      obs::Json fields = obs::Json::object();
      fields.set("dropped_events", trace_dropped);
      warn_log.warn("cli.trace_drop",
                    std::to_string(trace_dropped) +
                        " trace event(s) dropped by bounded rings; attribution is partial",
                    res.report.max_virtual_time(), std::move(fields));
      if (live) live->watchdogs().check_trace_drops(trace_dropped, res.report.max_virtual_time());
    }

    if (print_metrics) {
      // Everything between the sentinels is virtual-clock or count data:
      // bit-identical across repeated runs and --threads values under
      // charged timing (tools/check_trace.py asserts this).
      obs::Json snapshot = obs::Json::object();
      snapshot.set("metrics", obs::deterministic_metrics(metrics.to_json()));
      snapshot.set("attribution", obs::to_json(attr));
      snapshot.set("cost_model", oracle.to_json(verdicts));
      std::printf("--- metrics (deterministic) ---\n%s\n--- end metrics ---\n",
                  snapshot.dump(1).c_str());
    }
    if (json_path.empty()) {
      close_live();
      return failed ? 1 : 0;
    }

    obs::RunReportBuilder report("ardbt_cli");
    report.config("method", std::string(core::to_string(method)))
        .config("kind", std::string(btds::to_string(kind)))
        .config("n", static_cast<std::int64_t>(n))
        .config("m", static_cast<std::int64_t>(m))
        .config("p", p)
        .config("r", static_cast<std::int64_t>(r))
        .config("seed", seed)
        .config("timing",
                engine.timing == mpsim::TimingMode::ChargedFlops ? "charged" : "measured")
        .config("threads", engine.threads_per_rank)
        .config("overlap", ard_opts.pipeline.overlap)
        .config("chunk", static_cast<std::int64_t>(ard_opts.pipeline.chunk_cols))
        .config("lanes", ard_opts.pipeline.lanes)
        .config("refine", refine_steps)
        .config("on_breakdown", std::string(fault::to_string(engine.on_breakdown)));
    obs::Json timing = obs::Json::object();
    timing.set("factor_vtime_s", res.factor_vtime);
    timing.set("solve_vtime_s", res.solve_vtime);
    timing.set("wall_s", res.report.wall_seconds);
    timing.set("max_virtual_time_s", res.report.max_virtual_time());
    report.set_section("timing", std::move(timing));
    obs::Json accuracy = obs::Json::object();
    accuracy.set("relative_residual", residual);
    report.set_section("accuracy", std::move(accuracy));
    report.set_section("totals", mpsim::to_json(totals));
    {
      obs::Json ranks = obs::Json::array();
      for (const auto& s : res.report.ranks) ranks.push(mpsim::to_json(s));
      report.set_section("ranks", std::move(ranks));
    }
    report.set_section("metrics", metrics.to_json());
    report.set_section("attribution", obs::to_json(attr));
    report.set_section("cost_model", oracle.to_json(verdicts));
    {
      // Robustness: policy, per-phase outcomes, and the full fault log —
      // every injected fault plus every detection/recovery action.
      obs::Json robustness = obs::Json::object();
      robustness.set("policy", std::string(fault::to_string(engine.on_breakdown)));
      robustness.set("ok", !failed);
      if (failed) {
        robustness.set("error_code", std::string(fault::to_string(solve_status.code())));
        robustness.set("error", solve_status.message());
      }
      robustness.set("degraded", degraded);
      robustness.set("pivot_growth", pivot_growth);
      obs::Json outcomes = obs::Json::array();
      for (const auto& o : res.outcomes) outcomes.push(outcome_json(o));
      robustness.set("outcomes", std::move(outcomes));
      obs::Json injected = obs::Json::array();
      for (const auto& e : plan.injected()) injected.push(fault_event_json(e));
      robustness.set("faults_injected", std::move(injected));
      obs::Json detected = obs::Json::array();
      for (const auto& e : plan.detected()) detected.push(fault_event_json(e));
      robustness.set("faults_detected", std::move(detected));
      report.set_section("robustness", std::move(robustness));
    }
    report.write(json_path);
    std::printf("  report      : saved to %s (schema %s v%d)\n", json_path.c_str(),
                obs::kRunReportSchema, obs::kRunReportVersion);
  }
  close_live();
  return failed ? 1 : 0;
}
