// ardbt — command-line driver for the solver library.
//
// Runs any solver on a generated problem and reports timing, work and
// accuracy. Examples:
//
//   ardbt --method ard --kind poisson2d --n 2048 --m 16 --p 8 --r 64
//   ardbt --method rd-per-rhs --n 512 --m 8 --r 32 --timing measured
//   ardbt --list
//
// Flags (all optional):
//   --method  ard | rd | rd-per-rhs | transfer-rd | pcr     [ard]
//   --kind    diagdom | poisson2d | convdiff | toeplitz | illcond [diagdom]
//   --n / --m / --p / --r   problem shape                   [1024/8/4/16]
//   --seed    generator seed                                [42]
//   --timing  charged (deterministic virtual clock) | measured [charged]
//   --refine  extra iterative-refinement steps (ard only)   [0]
//   --load-sys PATH   solve a system saved with save_block_tridiag
//                     (overrides --kind/--n/--m)
//   --save-sys PATH   save the generated system
//   --save-x PATH     save the solution (binary; .csv suffix -> CSV)
//   --list    print available methods/kinds and exit

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/btds/generators.hpp"
#include "src/btds/io.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/flops.hpp"
#include "src/core/refine.hpp"
#include "src/core/solver.hpp"

namespace {

using namespace ardbt;

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "ardbt: %s (try --list)\n", message.c_str());
  std::exit(2);
}

core::Method parse_method(const std::string& s) {
  if (s == "ard") return core::Method::kArd;
  if (s == "rd") return core::Method::kRdBatched;
  if (s == "rd-per-rhs") return core::Method::kRdPerRhs;
  if (s == "transfer-rd") return core::Method::kTransferRd;
  if (s == "pcr") return core::Method::kPcr;
  die("unknown method '" + s + "'");
}

btds::ProblemKind parse_kind(const std::string& s) {
  for (btds::ProblemKind kind : btds::kAllProblemKinds) {
    if (s == btds::to_string(kind)) return kind;
  }
  die("unknown problem kind '" + s + "'");
}

}  // namespace

int main(int argc, char** argv) {
  core::Method method = core::Method::kArd;
  btds::ProblemKind kind = btds::ProblemKind::kDiagDominant;
  la::index_t n = 1024, m = 8, r = 16;
  int p = 4;
  std::uint64_t seed = 42;
  int refine_steps = 0;
  std::string load_sys, save_sys, save_x;
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value after " + flag);
      return argv[++i];
    };
    if (flag == "--list") {
      std::printf("methods: ard rd rd-per-rhs transfer-rd pcr\nkinds  :");
      for (btds::ProblemKind k : btds::kAllProblemKinds) {
        std::printf(" %s", std::string(btds::to_string(k)).c_str());
      }
      std::printf("\n");
      return 0;
    } else if (flag == "--method") {
      method = parse_method(next());
    } else if (flag == "--kind") {
      kind = parse_kind(next());
    } else if (flag == "--n") {
      n = std::atoll(next().c_str());
    } else if (flag == "--m") {
      m = std::atoll(next().c_str());
    } else if (flag == "--p") {
      p = std::atoi(next().c_str());
    } else if (flag == "--r") {
      r = std::atoll(next().c_str());
    } else if (flag == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--refine") {
      refine_steps = std::atoi(next().c_str());
    } else if (flag == "--load-sys") {
      load_sys = next();
    } else if (flag == "--save-sys") {
      save_sys = next();
    } else if (flag == "--save-x") {
      save_x = next();
    } else if (flag == "--timing") {
      const std::string v = next();
      if (v == "charged") {
        engine.timing = mpsim::TimingMode::ChargedFlops;
      } else if (v == "measured") {
        engine.timing = mpsim::TimingMode::MeasuredCpu;
      } else {
        die("unknown timing mode '" + v + "'");
      }
    } else {
      die("unknown flag '" + flag + "'");
    }
  }
  if (n < 1 || m < 1 || r < 1 || p < 1) die("shape values must be positive");
  if (n < p) die("need N >= P");

  btds::BlockTridiag sys;
  if (!load_sys.empty()) {
    sys = btds::load_block_tridiag(load_sys);
    n = sys.num_blocks();
    m = sys.block_size();
    if (n < p) die("loaded system too small for --p");
  } else {
    sys = btds::make_problem(kind, n, m, seed);
  }
  if (!save_sys.empty()) btds::save_block_tridiag(save_sys, sys);
  const la::Matrix b = btds::make_rhs(n, m, r, seed + 1);

  core::DriverResult res;
  core::RefineResult refined;
  if (refine_steps > 0 && method == core::Method::kArd) {
    res.x.resize(b.rows(), b.cols());
    const btds::RowPartition part(n, p);
    res.report = mpsim::run(
        p,
        [&](mpsim::Comm& comm) {
          mpsim::barrier(comm);
          const double t0 = comm.vtime();
          const auto f = core::ArdFactorization::factor(comm, sys, part);
          mpsim::barrier(comm);
          if (comm.rank() == 0) res.factor_vtime = comm.vtime() - t0;
          const double t1 = comm.vtime();
          const auto rr = core::solve_refined(comm, f, sys, part, b, res.x, refine_steps, 0.0);
          mpsim::barrier(comm);
          if (comm.rank() == 0) {
            res.solve_vtime = comm.vtime() - t1;
            refined = rr;
          }
        },
        engine);
  } else {
    res = core::solve(method, sys, b, p, {}, engine);
  }

  const auto totals = res.report.totals();
  std::printf("ardbt: method=%s kind=%s N=%lld M=%lld P=%d R=%lld\n",
              std::string(core::to_string(method)).c_str(),
              std::string(btds::to_string(kind)).c_str(), static_cast<long long>(n),
              static_cast<long long>(m), p, static_cast<long long>(r));
  std::printf("  factor time : %.4g s (virtual)\n", res.factor_vtime);
  std::printf("  solve time  : %.4g s (virtual)\n", res.solve_vtime);
  std::printf("  wall time   : %.4g s (host, %d oversubscribed threads)\n",
              res.report.wall_seconds, p);
  std::printf("  flops       : %.4g total, %.4g msgs, %.4g MB sent\n", totals.flops_charged,
              static_cast<double>(totals.msgs_sent),
              static_cast<double>(totals.bytes_sent) / 1e6);
  std::printf("  residual    : %.3e\n", btds::relative_residual(sys, res.x, b));
  if (refine_steps > 0 && !refined.residual_norms.empty()) {
    std::printf("  refinement  : %d steps, ||r|| %.3e -> %.3e\n", refined.steps,
                refined.residual_norms.front(), refined.residual_norms.back());
  }
  std::printf("  model       : rd-per-rhs/ard speedup at this shape = %.3g\n",
              core::flops::predicted_speedup(n, m, r, p));
  if (!save_x.empty()) {
    if (save_x.size() > 4 && save_x.substr(save_x.size() - 4) == ".csv") {
      btds::save_matrix_csv(save_x, res.x);
    } else {
      btds::save_matrix(save_x, res.x);
    }
    std::printf("  solution    : saved to %s\n", save_x.c_str());
  }
  return 0;
}
