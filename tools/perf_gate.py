#!/usr/bin/env python3
"""Perf regression gate over ardbt bench reports.

Compares the timing columns (headers ending in "[s]") of a fresh bench run
against a baseline, row by row (rows are matched on the first column, e.g.
the block size M). A cell regresses when fresh/baseline exceeds the
threshold; cells under the noise floor on both sides are skipped, and the
configs of the two reports must agree (so a smoke run is never judged
against a full-mode baseline). Wall timings are noisy, so a failing
comparison against a live binary is retried with fresh runs before the
gate reports a regression.

Inputs may be single ardbt.run_report documents (v1 or v2, pretty-printed
or compact) or ardbt.bench_history JSONL files, in which case the latest
entry is used.

Modes:
  perf_gate.py --baseline FILE --fresh FILE
      compare two existing reports (no retries possible)
  perf_gate.py --baseline FILE --binary BIN [--smoke]
      run BIN fresh (with --json; plus --smoke when given) and compare
      against the committed baseline; retries on failure
  perf_gate.py --binary BIN [--smoke]
      A/B: run BIN twice, second run judged against the first — proves the
      build is not wildly unstable and exercises the full gate path
  perf_gate.py --self-test --binary BIN [--smoke]
      prove the gate works: a run must pass against itself and must FAIL
      against a synthetically 2x-slower copy of itself

Exit codes: 0 pass, 1 regression detected, 2 usage error, 3 malformed or
incompatible input.

Examples:
  perf_gate.py --binary build/bench/bench_abl_smallblock --smoke
  perf_gate.py --baseline BENCH_smallblock.json \
      --binary build/bench/bench_abl_smallblock     # same-host full run
"""

import argparse
import copy
import json
import subprocess
import sys
import tempfile
from pathlib import Path

RUN_REPORT_SCHEMA = "ardbt.run_report"
HISTORY_SCHEMA = "ardbt.bench_history"
# Config keys that may differ between baseline and fresh without making
# the comparison meaningless.
CONFIG_IGNORE = {"threads"}


def fail(code, msg):
    print(f"perf_gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(code)


def load_report(path):
    """Load a run_report document or the latest entry of a JSONL history."""
    text = Path(path).read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):
        if doc.get("schema") != RUN_REPORT_SCHEMA:
            fail(3, f"{path}: schema {doc.get('schema')!r} != {RUN_REPORT_SCHEMA!r}")
        return doc
    entries = []
    saw_header = False
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            fail(3, f"{path}:{lineno}: neither a JSON document nor a JSONL history line")
        if obj.get("schema") == HISTORY_SCHEMA:
            saw_header = True
        elif obj.get("schema") == RUN_REPORT_SCHEMA:
            entries.append(obj)
    if not saw_header:
        fail(3, f"{path}: missing {HISTORY_SCHEMA!r} header line")
    if not entries:
        fail(3, f"{path}: history has no run entries")
    # A history stream must be version-homogeneous: a baseline silently
    # drawn from a stream mixing old- and new-schema records could compare
    # columns with different meanings. Refuse loudly; the fix is to
    # regenerate the stale datapoints (see EXPERIMENTS.md).
    # key=repr: legacy records may lack "version" entirely, and None is not
    # orderable against ints — the guard must still refuse, not traceback.
    versions = sorted({entry.get("version") for entry in entries}, key=repr)
    if len(versions) > 1:
        fail(3, f"{path}: mixed run_report versions {versions} in one history stream "
                "(regenerate the stale entries instead of comparing across schemas)")
    return entries[-1]


def timing_columns(row):
    return [col for col in row if col.endswith("[s]")]


def row_key(row):
    """Rows are matched on their first column (insertion order)."""
    first = next(iter(row), None)
    return (first, row.get(first)) if first else (None, None)


def compare(baseline, fresh, threshold, min_seconds):
    """Return (failures, cells_checked); failures is a list of strings."""
    if baseline.get("tool") != fresh.get("tool"):
        fail(3, f"tool mismatch: baseline {baseline.get('tool')!r} vs fresh {fresh.get('tool')!r}")
    bconf, fconf = baseline.get("config", {}), fresh.get("config", {})
    for key in sorted(set(bconf) & set(fconf) - CONFIG_IGNORE):
        if bconf[key] != fconf[key]:
            fail(3, f"config mismatch on {key!r}: baseline {bconf[key]!r} vs fresh "
                    f"{fconf[key]!r} (refusing to compare different shapes)")

    btables = baseline.get("tables", {})
    ftables = fresh.get("tables", {})
    failures, checked = [], 0
    for name, brows in btables.items():
        if name not in ftables:
            failures.append(f"table {name!r} missing from fresh report")
            continue
        fresh_by_key = {row_key(r): r for r in ftables[name]}
        for brow in brows:
            key = row_key(brow)
            frow = fresh_by_key.get(key)
            if frow is None:
                failures.append(f"{name}: row {key[0]}={key[1]} missing from fresh report")
                continue
            for col in timing_columns(brow):
                if col not in frow:
                    failures.append(f"{name} {key[0]}={key[1]}: column {col!r} missing")
                    continue
                try:
                    b, f = float(brow[col]), float(frow[col])
                except (TypeError, ValueError):
                    failures.append(f"{name} {key[0]}={key[1]} {col}: non-numeric cell")
                    continue
                if b < min_seconds and f < min_seconds:
                    continue  # both under the noise floor
                checked += 1
                ratio = f / b if b > 0 else float("inf")
                # Inclusive: a genuine 2x slowdown must fail a 2x gate.
                if ratio >= threshold:
                    failures.append(
                        f"{name} {key[0]}={key[1]} {col}: {b:.3e}s -> {f:.3e}s "
                        f"({ratio:.2f}x > {threshold:g}x)")
    return failures, checked


def run_binary(binary, smoke, out_path):
    cmd = [binary, "--json", out_path] + (["--smoke"] if smoke else [])
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(3, f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    return load_report(out_path)


def inflate(report, factor):
    """Synthetic regression: multiply every timing cell by `factor`."""
    doc = copy.deepcopy(report)
    for rows in doc.get("tables", {}).values():
        for row in rows:
            for col in timing_columns(row):
                row[col] = f"{float(row[col]) * factor:.6e}"
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", help="baseline report or history file")
    ap.add_argument("--fresh", help="fresh report file (instead of --binary)")
    ap.add_argument("--binary", help="bench binary to produce the fresh run")
    ap.add_argument("--smoke", action="store_true", help="pass --smoke to the binary")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="fail when fresh/baseline exceeds this (default 2.0)")
    ap.add_argument("--min-seconds", type=float, default=1e-5,
                    help="skip cells under this on both sides (default 1e-5)")
    ap.add_argument("--retries", type=int, default=2,
                    help="extra fresh runs before trusting a failure (default 2)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate passes a run against itself and fails a 2x copy")
    args = ap.parse_args()

    if args.self_test:
        if not args.binary:
            fail(2, "--self-test needs --binary")
        with tempfile.TemporaryDirectory() as tmp:
            base = run_binary(args.binary, args.smoke, str(Path(tmp) / "base.json"))
        failures, checked = compare(base, base, args.threshold, args.min_seconds)
        if failures:
            fail(1, "self-compare should pass but found:\n  " + "\n  ".join(failures))
        if checked == 0:
            fail(3, "self-compare checked no timing cells (noise floor too high?)")
        slow = inflate(base, 2.0)
        failures, _ = compare(base, slow, args.threshold, args.min_seconds)
        if not failures:
            fail(1, "gate did not flag a synthetic 2x slowdown")
        # Mixed-version history fixture: a stream holding both an old- and a
        # current-schema record must be refused (exit 3), never silently
        # compared.
        with tempfile.TemporaryDirectory() as tmp:
            fresh_path = Path(tmp) / "fresh.json"
            fresh_path.write_text(json.dumps(base))
            old = copy.deepcopy(base)
            old["version"] = 1
            mixed_path = Path(tmp) / "mixed_history.json"
            mixed_path.write_text("\n".join([
                json.dumps({"schema": HISTORY_SCHEMA, "version": 1}),
                json.dumps(old),
                json.dumps(base),
            ]) + "\n")
            proc = subprocess.run(
                [sys.executable, __file__, "--baseline", str(mixed_path),
                 "--fresh", str(fresh_path)],
                capture_output=True, text=True)
            if proc.returncode != 3 or "mixed run_report versions" not in proc.stderr:
                fail(1, f"mixed-version history fixture not refused "
                        f"(exit {proc.returncode}): {proc.stderr.strip()}")
            # Legacy records may lack "version" entirely; the refusal must
            # still be the clean exit-3 diagnostic (None vs int used to
            # raise TypeError inside sorted() and traceback instead).
            unversioned = copy.deepcopy(base)
            unversioned.pop("version", None)
            legacy_path = Path(tmp) / "legacy_history.json"
            legacy_path.write_text("\n".join([
                json.dumps({"schema": HISTORY_SCHEMA, "version": 1}),
                json.dumps(unversioned),
                json.dumps(base),
            ]) + "\n")
            proc = subprocess.run(
                [sys.executable, __file__, "--baseline", str(legacy_path),
                 "--fresh", str(fresh_path)],
                capture_output=True, text=True)
            if proc.returncode != 3 or "mixed run_report versions" not in proc.stderr:
                fail(1, f"versionless legacy-record fixture not refused cleanly "
                        f"(exit {proc.returncode}): {proc.stderr.strip()}")
        print(f"perf_gate: self-test ok ({checked} cells; 2x fixture raised "
              f"{len(failures)} failure(s), e.g. {failures[0]}; "
              "mixed-version history refused)")
        print("perf_gate: PASS")
        return

    if args.fresh and args.binary:
        fail(2, "give either --fresh or --binary, not both")
    if not args.fresh and not args.binary:
        fail(2, "need --fresh FILE or --binary BIN")
    if args.fresh and not args.baseline:
        fail(2, "--fresh needs --baseline")

    with tempfile.TemporaryDirectory() as tmp:
        if args.baseline:
            baseline = load_report(args.baseline)
        else:
            baseline = run_binary(args.binary, args.smoke, str(Path(tmp) / "ab_base.json"))
            print("perf_gate: no --baseline; A/B mode (first run is the baseline)")
        attempts = 1 + (args.retries if args.binary else 0)
        failures, checked = [], 0
        for attempt in range(attempts):
            if args.fresh:
                fresh = load_report(args.fresh)
            else:
                fresh = run_binary(args.binary, args.smoke,
                                   str(Path(tmp) / f"fresh{attempt}.json"))
            failures, checked = compare(baseline, fresh, args.threshold, args.min_seconds)
            if not failures:
                break
            if attempt + 1 < attempts:
                print(f"perf_gate: attempt {attempt + 1} failed ({len(failures)} cell(s)); "
                      "retrying with a fresh run")
    if checked == 0 and not failures:
        fail(3, "no timing cells compared (empty tables or all under the noise floor)")
    if failures:
        fail(1, f"{len(failures)} regression(s):\n  " + "\n  ".join(failures))
    print(f"perf_gate: PASS ({checked} timing cells within {args.threshold:g}x)")


if __name__ == "__main__":
    main()
