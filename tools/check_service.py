#!/usr/bin/env python3
"""Gate for the solver-as-a-service layer (docs/SERVICE.md).

Runs the service load generator (bench_service --smoke --json) and the CLI
--serve scenario, then validates:

* report schema: an ardbt.run_report v2 document whose config carries the
  service shape (and deliberately NO thread count — the virtual clock
  makes threads irrelevant to the results, and the perf gate compares
  configs literally);
* replay: the bench's built-in re-run check (replay_identical) passed, and
  the whole JSON document is byte-identical across two fresh runs and
  across --threads 1 / --threads 3;
* curves: the closed-loop table sweeps >= 3 batching windows, every row
  completed all requests, and the cache hit rate clears 90% under the
  default tenant mix;
* fairness: the tenants table serves every tenant equally under the
  round-robin batch policy;
* eviction: the half-budget row holds fewer entries than the unlimited
  row, actually evicts, and still answers (nonzero p99);
* metrics: the embedded registry snapshot is filtered to the
  deterministic set (no wall/cpu/panel names);
* CLI: `ardbt --serve` prints a byte-identical summary across reruns and
  thread counts;
* history: when a committed BENCH_service.json is given, it is a valid
  ardbt.bench_history v1 stream of run_report v2 entries with a matching
  smoke/full config shape.

Usage: check_service.py /path/to/bench_service /path/to/ardbt [BENCH_service.json]
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

NONDETERMINISTIC = ("wall", "cpu", "panel")
MIN_WINDOWS = 3
MIN_HIT_RATE = 0.9


def fail(msg):
    print(f"check_service: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd, expect_code=0):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != expect_code:
        fail(f"{' '.join(cmd)} exited {proc.returncode} (wanted {expect_code}):\n"
             f"{proc.stdout}\n{proc.stderr}")
    return proc


def bench_report(bench, tmp, name, threads):
    path = Path(tmp) / name
    run([bench, "--smoke", "--threads", str(threads), "--json", str(path)])
    return path.read_bytes()


def check_report(data):
    doc = json.loads(data.decode())
    if doc.get("schema") != "ardbt.run_report" or doc.get("version") != 2:
        fail(f"report header wrong: {doc.get('schema')!r} v{doc.get('version')!r}")
    config = doc.get("config", {})
    for key in ("n", "m", "p", "requests", "clients", "tenants", "pool", "hot",
                "max_batch", "mode"):
        if key not in config:
            fail(f"config missing '{key}'")
    if "threads" in config:
        fail("config must not record a thread count (results are thread-invariant "
             "and perf_gate compares configs literally)")
    if doc.get("replay_identical") is not True:
        fail("bench-internal replay check did not pass")

    tables = doc.get("tables", {})
    for name in ("closed_loop", "open_loop", "tenants", "eviction"):
        if name not in tables:
            fail(f"missing table '{name}'")

    for loop in ("closed_loop", "open_loop"):
        rows = tables[loop]
        if len(rows) < MIN_WINDOWS:
            fail(f"{loop}: only {len(rows)} window settings (need >= {MIN_WINDOWS})")
        windows = [float(r["window"]) for r in rows]
        if sorted(windows) != windows or len(set(windows)) != len(windows):
            fail(f"{loop}: window column not strictly increasing: {windows}")
        for r in rows:
            for col in ("completed", "batches", "mean_cols", "hit_rate",
                        "p50[s]", "p99[s]", "thr[rps]"):
                if col not in r:
                    fail(f"{loop}: row missing column '{col}'")
            if int(r["completed"]) != int(config["requests"]):
                fail(f"{loop}: window {r['window']} completed {r['completed']} of "
                     f"{config['requests']} requests")
            if float(r["hit_rate"]) <= MIN_HIT_RATE:
                fail(f"{loop}: window {r['window']} hit rate {r['hit_rate']} <= "
                     f"{MIN_HIT_RATE} under the default tenant mix")
            if float(r["p99[s]"]) < float(r["p50[s]"]):
                fail(f"{loop}: window {r['window']} has p99 < p50")

    completed = {int(r["completed"]) for r in tables["tenants"]}
    if len(tables["tenants"]) != int(config["tenants"]) or len(completed) != 1:
        fail(f"tenants table not fair: {tables['tenants']}")

    ev = {r["budget"]: r for r in tables["eviction"]}
    if set(ev) != {"unlimited", "half"}:
        fail(f"eviction table rows {sorted(ev)} != ['half', 'unlimited']")
    if int(ev["half"]["entries"]) >= int(ev["unlimited"]["entries"]):
        fail("half-budget cache does not hold fewer entries than unlimited")
    if int(ev["half"]["evictions"]) == 0:
        fail("half-budget run never evicted")
    if float(ev["half"]["p99[s]"]) <= 0.0:
        fail("half-budget run reports no latency — did it serve at all?")

    metrics = doc.get("metrics", {})
    if not metrics:
        fail("report has no metrics section")
    for section in metrics.values():
        for name in section:
            if any(tag in name for tag in NONDETERMINISTIC):
                fail(f"nondeterministic metric '{name}' in report")
    if not any("service.latency" in name for section in metrics.values()
               for name in section):
        fail("metrics section has no service.latency histograms")
    print(f"check_service: report ok ({len(tables['closed_loop'])} closed-loop "
          f"windows, {len(tables['tenants'])} tenants)")


def check_bench_bit_stability(bench, tmp):
    first = bench_report(bench, tmp, "svc1.json", threads=1)
    again = bench_report(bench, tmp, "svc2.json", threads=1)
    if first != again:
        fail("bench report differs between two identical runs")
    threaded = bench_report(bench, tmp, "svc3.json", threads=3)
    if first != threaded:
        fail("bench report differs between --threads 1 and --threads 3")
    print(f"check_service: bench report bit-stable across runs and thread counts "
          f"({len(first)} bytes)")
    return first


def serve_stdout(cli, threads):
    proc = run([cli, "--serve", "--requests", "256", "--clients", "16",
                "--n", "48", "--m", "4", "--pool", "2", "--hot", "1",
                "--threads", str(threads)])
    return proc.stdout


def check_cli_serve(cli):
    first = serve_stdout(cli, threads=1)
    if "ardbt: serve" not in first or "hit rate" not in first:
        fail(f"--serve summary missing expected lines:\n{first}")
    if first != serve_stdout(cli, threads=1):
        fail("--serve output differs between two identical runs")
    if first != serve_stdout(cli, threads=3):
        fail("--serve output differs between --threads 1 and --threads 3")
    # Unknown serve values keep the structured error grammar.
    proc = run([cli, "--serve", "--arrival", "sideways"], expect_code=2)
    if "unknown arrival mode" not in proc.stderr:
        fail(f"bad --arrival lost its diagnostic:\n{proc.stderr}")
    proc = run([cli, "--serve", "--requests", "0"], expect_code=1)
    if "ardbt: error: [invalid-argument]" not in proc.stderr:
        fail(f"bad --requests lost the structured error grammar:\n{proc.stderr}")
    print("check_service: cli --serve summary bit-stable across runs and "
          "thread counts")


def check_history(path):
    lines = [l for l in Path(path).read_text().splitlines() if l.strip()]
    if not lines:
        fail(f"{path} is empty")
    header = json.loads(lines[0])
    if header.get("schema") != "ardbt.bench_history" or header.get("version") != 1:
        fail(f"{path}: bad history header {header}")
    entries = [json.loads(l) for l in lines[1:]]
    if not entries:
        fail(f"{path}: history has no run entries")
    for i, entry in enumerate(entries, 2):
        doc = entry.get("report", entry)
        if doc.get("schema") != "ardbt.run_report" or doc.get("version") != 2:
            fail(f"{path}:{i}: entry is not a run_report v2")
        if "threads" in doc.get("config", {}):
            fail(f"{path}:{i}: history entry records a thread count")
        check_report(json.dumps(doc).encode())
    print(f"check_service: history ok ({len(entries)} run(s) in {path})")


def main():
    if len(sys.argv) < 3:
        fail("usage: check_service.py /path/to/bench_service /path/to/ardbt "
             "[BENCH_service.json]")
    bench, cli = sys.argv[1], sys.argv[2]
    with tempfile.TemporaryDirectory() as tmp:
        data = check_bench_bit_stability(bench, tmp)
        check_report(data)
        check_cli_serve(cli)
    if len(sys.argv) > 3 and Path(sys.argv[3]).exists():
        check_history(sys.argv[3])
    print("check_service: PASS")


if __name__ == "__main__":
    main()
