#!/usr/bin/env python3
"""Chaos gate for the service resilience layer (docs/ROBUSTNESS.md).

Sweeps fault plans x overload shapes x retry/deadline/breaker configs
through `ardbt --serve` and asserts, for every scenario:

* the process exits 0 within a wall-clock timeout (no hang, no crash —
  failures must be contained, not fatal);
* the summary prints the typed-terminal-state ledger and it balances:
  every issued request ends in exactly one of done / failed /
  deadline-exceeded, and every rejection carries exactly one admission
  class (the `accounting : BALANCED` line the CLI computes);
* stdout is byte-identical across a rerun and across --threads 1 / 3 —
  retries, hedges, sheds, breaker trips and cancellations are all
  deterministic functions of the virtual clock;
* scenario-specific signals fired (retries under injected faults, sheds
  under overload, rejections under tight deadlines), so the sweep cannot
  silently degenerate into a fault-free walk.

Usage: check_chaos.py /path/to/ardbt
"""

import re
import subprocess
import sys

TIMEOUT_S = 180  # generous hang detector; each scenario runs ~1 s

BASE = ["--serve", "--n", "32", "--m", "4", "--requests", "192",
        "--clients", "12", "--tenants", "3", "--pool", "2", "--hot", "1"]

# name, extra flags, dict of summary-count lower bounds (key regex -> min).
SCENARIOS = [
    ("clean-baseline", [], {}),
    ("retry-crash", ["--fault", "crash", "--retries", "2"],
     {r"retries (\d+)": 1}),
    ("retry-flip", ["--fault", "flip", "--retries", "2"],
     {r"retries (\d+)": 1}),
    # The explicit delay keeps the hedge armed even on a cold server (no
    # EWMA service estimate yet, so auto-delay would sit the first batch out).
    ("hedged-retry", ["--fault", "crash", "--fault", "flip", "--retries", "2",
                      "--hedge", "--hedge-delay", "2e-4"],
     {r"hedged (\d+)": 1}),
    ("no-retry-contains", ["--fault", "crash"],
     {r"failed (\d+)": 1}),
    ("denied-budget", ["--fault", "crash", "--retries", "2",
                       "--retry-budget", "0", "--max-resubmits", "2"],
     {r"denied (\d+)": 1}),
    ("deadline-pressure", ["--deadline", "3e-3", "--max-resubmits", "3"], {}),
    ("shed-queue", ["--shed-queue", "4", "--think", "1e-5",
                    "--max-resubmits", "2"],
     {r"shed (\d+)": 1}),
    # Closed-loop load self-throttles, so the backlog signal needs the
    # open-loop overload shape to go positive (arrivals ignore completions).
    ("shed-backlog", ["--arrival", "open", "--rate", "5e6",
                      "--shed-backlog", "1e-4"],
     {r"shed (\d+)": 1, r"alerts (\d+)": 1}),
    ("quota-and-shed", ["--quota", "2", "--shed-queue", "8", "--think", "1e-5",
                        "--max-resubmits", "2"], {}),
    ("breaker-under-faults", ["--fault", "crash", "--fault", "crash",
                              "--breaker", "2", "--max-resubmits", "3"], {}),
    ("kitchen-sink", ["--fault", "crash", "--fault", "flip", "--fault", "delay",
                      "--retries", "2", "--hedge", "--deadline", "5e-3",
                      "--shed-queue", "24", "--breaker", "4",
                      "--max-resubmits", "3"], {}),
]


def fail(msg):
    print(f"check_chaos: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def serve(cli, name, flags, threads):
    cmd = [cli] + BASE + flags + ["--threads", str(threads)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=TIMEOUT_S)
    except subprocess.TimeoutExpired:
        fail(f"{name}: hung for {TIMEOUT_S}s: {' '.join(cmd)}")
    if proc.returncode != 0:
        fail(f"{name}: exited {proc.returncode}:\n{proc.stdout}\n{proc.stderr}")
    return proc.stdout


def check_ledger(name, out):
    for line in ("outcomes", "rejections", "resilience", "goodput",
                 "accounting"):
        if f"  {line}" not in out:
            fail(f"{name}: summary missing '{line}' line:\n{out}")
    if "accounting  : BALANCED" not in out:
        fail(f"{name}: terminal-state ledger does not balance:\n{out}")
    # Requests must actually terminate: done + failed + deadline-exceeded
    # + gave-up covers every logical request the closed loop issued.
    m = re.search(r"issued (\d+), rejected (\d+), completed (\d+)", out)
    if not m:
        fail(f"{name}: no requests line:\n{out}")
    issued, _, completed = (int(g) for g in m.groups())
    if issued != completed:
        fail(f"{name}: issued {issued} != completed {completed}")
    if issued == 0:
        fail(f"{name}: nothing was admitted — scenario degenerate:\n{out}")


def check_signals(name, out, signals):
    for pattern, minimum in signals.items():
        m = re.search(pattern, out)
        if not m:
            fail(f"{name}: expected /{pattern}/ in summary:\n{out}")
        if int(m.group(1)) < minimum:
            fail(f"{name}: /{pattern}/ = {m.group(1)} < {minimum} — the "
                 f"scenario did not exercise its fault path:\n{out}")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_chaos.py /path/to/ardbt")
    cli = sys.argv[1]
    for name, flags, signals in SCENARIOS:
        first = serve(cli, name, flags, threads=1)
        check_ledger(name, first)
        check_signals(name, first, signals)
        if first != serve(cli, name, flags, threads=1):
            fail(f"{name}: stdout differs between two identical runs")
        if first != serve(cli, name, flags, threads=3):
            fail(f"{name}: stdout differs between --threads 1 and --threads 3")
        print(f"check_chaos: {name} ok (deterministic, balanced)")
    print(f"check_chaos: PASS ({len(SCENARIOS)} scenarios)")


if __name__ == "__main__":
    main()
