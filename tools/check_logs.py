#!/usr/bin/env python3
"""Smoke check for the live-telemetry stream (ardbt.log v1 + metric
snapshots).

Runs the ardbt CLI on a tiny problem with --live-out, then validates the
stream:

* JSONL: every line parses as a standalone JSON object;
* exactly one schema header per stream kind (ardbt.log v1 and
  ardbt.metrics_snapshot v1), each before the first record of its kind;
* log records carry monotone sequence numbers, a known level, a site, a
  message, and an object fields payload; virtual timestamps only;
* snapshot records carry monotone sequence numbers and a metrics object
  filtered to the deterministic set (no wall/cpu/panel names);
* the whole stream is bit-identical across two identical runs and across
  --threads 1 / --threads 3 (the virtual clock is the only clock in it);
* a breakdown run with --postmortem writes an ardbt.postmortem v1 bundle
  with the recorder/metrics/extra sections.

Usage: check_logs.py /path/to/ardbt [P]
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

LEVELS = {"debug", "info", "warn", "error"}
NONDETERMINISTIC = ("wall", "cpu", "panel")


def fail(msg):
    print(f"check_logs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_cli(cli, args, expect_code=0):
    cmd = [cli] + args
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != expect_code:
        fail(f"{' '.join(cmd)} exited {proc.returncode} (wanted {expect_code}):\n{proc.stderr}")
    return proc


def live_stream(cli, tmp, name, threads):
    path = str(Path(tmp) / name)
    run_cli(cli, ["--method", "ard", "--n", "64", "--m", "4", "--p", "4",
                  "--r", "8", "--threads", str(threads), "--live-out", path])
    return Path(path).read_bytes()


def check_stream(data):
    lines = data.decode().splitlines()
    if not lines:
        fail("live stream is empty")
    headers = {}           # schema -> version
    seen_records = set()   # record types seen so far
    seqs = {}              # record type -> last sequence number
    n_log = n_snap = 0
    for i, line in enumerate(lines, 1):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"line {i} is not valid JSON ({e}): {line[:120]}")
        if not isinstance(doc, dict):
            fail(f"line {i} is not an object")
        if "schema" in doc:
            schema = doc["schema"]
            if schema in headers:
                fail(f"line {i}: duplicate header for schema '{schema}'")
            if doc.get("version") != 1:
                fail(f"line {i}: schema '{schema}' version {doc.get('version')} != 1")
            kind = "log" if schema == "ardbt.log" else (
                "snapshot" if schema == "ardbt.metrics_snapshot" else None)
            if kind is None:
                fail(f"line {i}: unknown schema '{schema}'")
            if kind in seen_records:
                fail(f"line {i}: header for '{schema}' after its first record")
            headers[schema] = doc["version"]
            continue
        kind = doc.get("type")
        if kind not in ("log", "snapshot"):
            fail(f"line {i}: record type {kind!r} not 'log'/'snapshot'")
        seen_records.add(kind)
        expected_header = "ardbt.log" if kind == "log" else "ardbt.metrics_snapshot"
        if expected_header not in headers:
            fail(f"line {i}: '{kind}' record before its schema header")
        n = doc.get("n")
        if not isinstance(n, int) or (kind in seqs and n <= seqs[kind]):
            fail(f"line {i}: sequence number {n!r} not monotone for '{kind}'")
        seqs[kind] = n
        if not isinstance(doc.get("t_s"), (int, float)):
            fail(f"line {i}: t_s {doc.get('t_s')!r} is not a number")
        if kind == "log":
            n_log += 1
            if doc.get("level") not in LEVELS:
                fail(f"line {i}: unknown level {doc.get('level')!r}")
            if not isinstance(doc.get("site"), str) or not doc["site"]:
                fail(f"line {i}: missing site")
            if not isinstance(doc.get("msg"), str):
                fail(f"line {i}: missing msg")
            if "fields" in doc and not isinstance(doc["fields"], dict):
                fail(f"line {i}: fields is not an object")
        else:
            n_snap += 1
            metrics = doc.get("metrics")
            if not isinstance(metrics, dict):
                fail(f"line {i}: snapshot missing metrics object")
            for section in metrics.values():
                for name in section:
                    if any(tag in name for tag in NONDETERMINISTIC):
                        fail(f"line {i}: nondeterministic metric '{name}' in snapshot")
    if n_log == 0:
        fail("stream has no log records")
    if n_snap == 0:
        fail("stream has no snapshot records")
    print(f"check_logs: stream ok ({n_log} log records, {n_snap} snapshots, "
          f"{len(headers)} headers)")


def check_bit_stability(cli, tmp):
    first = live_stream(cli, tmp, "live1.jsonl", threads=1)
    again = live_stream(cli, tmp, "live2.jsonl", threads=1)
    if first != again:
        fail("live stream differs between two identical runs")
    threaded = live_stream(cli, tmp, "live3.jsonl", threads=3)
    if first != threaded:
        fail("live stream differs between --threads 1 and --threads 3")
    print(f"check_logs: stream bit-stable across runs and thread counts "
          f"({len(first)} bytes)")
    return first


def check_postmortem(cli, tmp):
    pm_path = str(Path(tmp) / "postmortem.json")
    proc = run_cli(cli, ["--method", "ard", "--n", "64", "--m", "4", "--p", "4",
                         "--r", "4", "--plant-pivot", "0", "--plant-eps", "1e-30",
                         "--on-breakdown", "failfast", "--postmortem", pm_path],
                   expect_code=1)
    if "ardbt: error: [breakdown]" not in proc.stderr:
        fail(f"breakdown run lost the structured stderr line:\n{proc.stderr}")
    if not Path(pm_path).exists():
        fail("breakdown run wrote no postmortem bundle")
    doc = json.loads(Path(pm_path).read_text())
    if doc.get("schema") != "ardbt.postmortem" or doc.get("version") != 1:
        fail(f"postmortem header wrong: {doc.get('schema')!r} v{doc.get('version')!r}")
    for key in ("reason", "phase", "message", "t_s", "recorder", "metrics", "extra"):
        if key not in doc:
            fail(f"postmortem missing '{key}'")
    if doc["reason"] != "breakdown":
        fail(f"postmortem reason {doc['reason']!r} != 'breakdown'")
    if doc["recorder"].get("enabled") is not True:
        fail("postmortem recorder section not from an enabled recorder")
    if not doc["recorder"].get("events"):
        fail("postmortem recorder section has no events")
    print(f"check_logs: postmortem ok (phase={doc['phase']}, "
          f"{len(doc['recorder']['events'])} recorder events)")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_logs.py /path/to/ardbt [P]")
    cli = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        data = check_bit_stability(cli, tmp)
        check_stream(data)
        check_postmortem(cli, tmp)
    print("check_logs: PASS")


if __name__ == "__main__":
    main()
