#!/usr/bin/env python3
"""Determinism gate for the intra-rank thread pool and the scan pipeline.

Runs the ardbt CLI twice on the same problem — once with --threads 1 and
once with --threads 3 — and checks the contract that par::Pool promises:

* the saved solution files are byte-identical (static chunking fixes the
  per-element floating-point evaluation order, so the pool size must not
  change a single bit);
* the run reports agree on residual, charged flops, and phase virtual
  times (flop charges stay on the rank thread, so the modeled clock is
  independent of the worker count);
* the v2 attribution and cost_model sections are identical — the
  critical path, per-rank breakdowns, phase percentiles, and oracle
  verdicts are all derived from the virtual clock, so the worker count
  must not perturb a single value.

Then repeats the solution check along the latency-hiding pipeline axis
(docs/PARALLELISM.md): --overlap with a small --chunk must keep the
solution byte-identical to the batch scheduler, at both thread counts —
the pipeline reorders the schedule, never the arithmetic on any one
value's dependency chain.

Usage: check_determinism.py /path/to/ardbt
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg):
    print(f"check_determinism: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_once(cli, tmp, threads, overlap=False, chunk=0, tag=""):
    x_path = Path(tmp) / f"x{threads}{tag}.bin"
    report_path = Path(tmp) / f"report{threads}{tag}.json"
    cmd = [cli, "--method", "ard", "--kind", "poisson2d", "--n", "96",
           "--m", "6", "--p", "3", "--r", "17", "--threads", str(threads),
           "--save-x", str(x_path), "--json", str(report_path)]
    if overlap:
        cmd += ["--overlap"]
    if chunk:
        cmd += ["--chunk", str(chunk)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    return x_path.read_bytes(), json.loads(report_path.read_text())


def main():
    if len(sys.argv) != 2:
        fail("usage: check_determinism.py /path/to/ardbt")
    cli = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        x1, report1 = run_once(cli, tmp, threads=1)
        x3, report3 = run_once(cli, tmp, threads=3)
        pipelined = {
            (threads, chunk): run_once(cli, tmp, threads=threads, overlap=True,
                                       chunk=chunk, tag=f"o{chunk}")[0]
            for threads in (1, 3) for chunk in (5,)
        }

    if x1 != x3:
        fail(f"solutions differ between --threads 1 and --threads 3 "
             f"({len(x1)} vs {len(x3)} bytes)")
    print(f"check_determinism: solutions byte-identical ({len(x1)} bytes)")

    # Pipeline axis: overlap + chunked panels must not move a single bit,
    # whatever the worker count.
    for (threads, chunk), xb in sorted(pipelined.items()):
        if xb != x1:
            fail(f"solution differs with --overlap --chunk {chunk} "
                 f"--threads {threads} (pipeline broke bit-identity)")
    print("check_determinism: solutions byte-identical with --overlap --chunk 5 "
          "at --threads 1 and 3")

    # cpu_seconds / wall_s are measured and vary run to run; everything the
    # virtual-time model produces must be exactly equal.
    deterministic = [
        ("accuracy", "relative_residual"),
        ("totals", "flops_charged"),
        ("totals", "msgs_sent"),
        ("totals", "bytes_sent"),
        ("timing", "factor_vtime_s"),
        ("timing", "solve_vtime_s"),
    ]
    for section, key in deterministic:
        v1 = report1.get(section, {}).get(key)
        v3 = report3.get(section, {}).get(key)
        if v1 is None or v1 != v3:
            fail(f"report {section}.{key} differs: "
                 f"--threads 1 -> {v1!r}, --threads 3 -> {v3!r}")
    if report1.get("config", {}).get("threads") == report3.get("config", {}).get("threads"):
        fail("report config.threads does not record the flag")
    print("check_determinism: residual/flops/vtimes equal across thread counts")

    # The whole attribution and cost-model sections live on the virtual
    # clock: compare them structurally, not key by key.
    for section in ("attribution", "cost_model"):
        s1, s3 = report1.get(section), report3.get(section)
        if s1 is None:
            fail(f"report missing '{section}' section")
        if s1 != s3:
            fail(f"report '{section}' differs between --threads 1 and --threads 3")
    print("check_determinism: attribution/cost_model identical across thread counts")
    print("check_determinism: PASS")


if __name__ == "__main__":
    main()
