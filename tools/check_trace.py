#!/usr/bin/env python3
"""Smoke check for the observability exporters.

Runs the ardbt CLI on a tiny problem with --trace, --json and --metrics,
then validates the outputs:

* the trace file is Chrome trace-event JSON with one named track per
  simulated rank, the expected event categories, and consistent
  send->wait dependency edges (every consumed seq matches a send);
* the run report carries the ardbt.run_report v2 schema header, the
  timing/totals/metrics sections the plotting scripts rely on, and the
  v2 attribution (critical path partitioning the makespan, per-rank
  breakdowns summing to it, per-phase percentiles ordered) and
  cost_model sections;
* the --metrics snapshot is bit-identical across two runs.

Usage: check_trace.py /path/to/ardbt [P]
"""

import json
import math
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, nranks):
    doc = json.loads(Path(path).read_text())
    events = doc["traceEvents"]
    if doc.get("otherData", {}).get("clock") != "virtual":
        fail("otherData.clock != 'virtual'")

    track_names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    expected = {r: f"rank {r}" for r in range(nranks)}
    if track_names != expected:
        fail(f"thread_name metadata {track_names} != {expected}")

    tids_with_events = {e["tid"] for e in events if e.get("ph") in ("X", "i")}
    if tids_with_events != set(range(nranks)):
        fail(f"ranks with events {sorted(tids_with_events)} != 0..{nranks - 1}")

    cats = {e.get("cat") for e in events if e.get("ph") in ("X", "i")}
    for needed in ("send", "recv", "wait", "compute", "phase"):
        if needed not in cats:
            fail(f"missing event category '{needed}' (got {sorted(cats)})")

    phases = {e["name"] for e in events if e.get("cat") == "phase"}
    for needed in ("driver.factor", "driver.solve"):
        if needed not in phases:
            fail(f"missing phase span '{needed}' (got {sorted(phases)})")

    for e in events:
        if e.get("ph") == "X" and e["dur"] < 0:
            fail(f"negative duration in event {e}")

    # Dependency edges: every wait/recv that names a message seq must have
    # a matching send on the peer's track with the same seq, addressed
    # back at the consumer's rank.
    sends = {(e["tid"], e["args"]["peer"], e["args"]["seq"])
             for e in events
             if e.get("cat") == "send" and "seq" in e.get("args", {})}
    if not sends:
        fail("no send events carry a seq (dependency edges missing)")
    consumed = 0
    for e in events:
        if e.get("cat") in ("wait", "recv") and "seq" in e.get("args", {}):
            edge = (e["args"]["peer"], e["tid"], e["args"]["seq"])
            if edge not in sends:
                fail(f"unmatched dependency edge {edge} in event {e}")
            consumed += 1
    if consumed == 0:
        fail("no wait/recv events carry a seq (dependency edges missing)")
    print(f"check_trace: trace ok ({len(events)} events, {nranks} tracks, "
          f"{len(phases)} phase names, {len(sends)} send edges, "
          f"{consumed} consumed)")


def check_report(path, nranks):
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != "ardbt.run_report":
        fail(f"report schema {doc.get('schema')!r} != 'ardbt.run_report'")
    if doc.get("version") != 2:
        fail(f"report version {doc.get('version')!r} != 2")
    for section in ("config", "timing", "totals", "ranks", "metrics",
                    "attribution", "cost_model"):
        if section not in doc:
            fail(f"report missing section '{section}'")
    timing = doc["timing"]
    for key in ("factor_vtime_s", "solve_vtime_s", "wall_s"):
        if key not in timing:
            fail(f"report timing missing '{key}'")
    if timing["factor_vtime_s"] <= 0 or timing["solve_vtime_s"] <= 0:
        fail(f"non-positive phase vtimes: {timing}")
    if len(doc["ranks"]) != nranks:
        fail(f"report has {len(doc['ranks'])} ranks, expected {nranks}")
    counters = doc["metrics"].get("counters", {})
    if counters.get("trace.events_recorded", 0) <= 0:
        fail("metrics missing trace.events_recorded > 0")
    check_attribution(doc["attribution"], nranks)
    check_cost_model(doc["cost_model"])
    print(f"check_trace: report ok (tool={doc['tool']}, "
          f"{len(doc['ranks'])} ranks)")


def check_attribution(attr, nranks):
    if attr.get("nranks") != nranks:
        fail(f"attribution nranks {attr.get('nranks')} != {nranks}")
    makespan = attr.get("makespan_s", 0.0)
    if makespan <= 0:
        fail(f"attribution makespan_s {makespan} not positive")
    tol = 1e-9 * max(1.0, makespan)
    ranks = attr.get("ranks", [])
    if len(ranks) != nranks:
        fail(f"attribution has {len(ranks)} rank breakdowns, expected {nranks}")
    for r, rb in enumerate(ranks):
        total = rb["compute_s"] + rb["send_s"] + rb["wait_s"] + rb["idle_s"]
        if any(rb[k] < -tol for k in ("compute_s", "send_s", "wait_s", "idle_s")):
            fail(f"rank {r} breakdown has a negative component: {rb}")
        if not math.isclose(total, makespan, rel_tol=1e-6, abs_tol=tol):
            fail(f"rank {r} breakdown sums to {total}, makespan is {makespan}")
    cp = attr.get("critical_path", {})
    length = cp.get("length_s", 0.0)
    if not (0.0 < length <= makespan * (1.0 + 1e-9)):
        fail(f"critical path length {length} outside (0, makespan={makespan}]")
    parts = (cp.get("compute_s", 0.0) + cp.get("send_s", 0.0) +
             cp.get("comm_s", 0.0) + cp.get("wait_s", 0.0) +
             cp.get("unattributed_s", 0.0))
    if not math.isclose(parts, length, rel_tol=1e-6, abs_tol=tol):
        fail(f"critical path components sum to {parts}, length is {length}")
    if cp.get("hops", 0) < 0:
        fail(f"negative hop count in critical path: {cp}")
    phases = attr.get("phases", {})
    for needed in ("driver.factor", "driver.solve"):
        if needed not in phases:
            fail(f"attribution missing phase '{needed}' (got {sorted(phases)})")
    for name, st in phases.items():
        if not (0.0 <= st["p50_s"] <= st["p99_s"] <= st["max_s"] * (1.0 + 1e-9)):
            fail(f"phase '{name}' percentiles out of order: {st}")
        if st["count"] <= 0 or st["total_s"] < 0:
            fail(f"phase '{name}' has degenerate stats: {st}")


def check_cost_model(cm):
    for key in ("constants", "threshold", "phases"):
        if key not in cm:
            fail(f"cost_model missing '{key}'")
    if not cm["phases"]:
        fail("cost_model judged no phases")
    for verdict in cm["phases"]:
        for key in ("phase", "measured_s", "predicted_s", "ratio", "flagged"):
            if key not in verdict:
                fail(f"cost_model verdict missing '{key}': {verdict}")
        if verdict["predicted_s"] <= 0:
            fail(f"cost_model predicted non-positive time: {verdict}")


def metrics_snapshot(cli, nranks, threads):
    cmd = [cli, "--method", "ard", "--n", "64", "--m", "4", "--p", str(nranks),
           "--r", "4", "--threads", str(threads), "--metrics"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    begin = "--- metrics (deterministic) ---"
    end = "--- end metrics ---"
    out = proc.stdout
    if begin not in out or end not in out:
        fail(f"--metrics output missing sentinels:\n{out}")
    return out.split(begin, 1)[1].split(end, 1)[0]


def check_metrics_determinism(cli, nranks):
    first = metrics_snapshot(cli, nranks, threads=1)
    again = metrics_snapshot(cli, nranks, threads=1)
    if first != again:
        fail("--metrics snapshot differs between two identical runs")
    threaded = metrics_snapshot(cli, nranks, threads=3)
    if first != threaded:
        fail("--metrics snapshot differs between --threads 1 and --threads 3")
    print(f"check_trace: metrics snapshot deterministic "
          f"({len(first.splitlines())} lines, stable across runs and threads)")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_trace.py /path/to/ardbt [P]")
    cli = sys.argv[1]
    nranks = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = str(Path(tmp) / "trace.json")
        report_path = str(Path(tmp) / "report.json")
        cmd = [cli, "--method", "ard", "--n", "64", "--m", "4", "--p", str(nranks),
               "--r", "4", "--trace", trace_path, "--json", report_path]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
        check_trace(trace_path, nranks)
        check_report(report_path, nranks)
    check_metrics_determinism(cli, nranks)
    print("check_trace: PASS")


if __name__ == "__main__":
    main()
