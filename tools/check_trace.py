#!/usr/bin/env python3
"""Smoke check for the observability exporters.

Runs the ardbt CLI on a tiny problem with --trace and --json, then
validates both outputs:

* the trace file is Chrome trace-event JSON with one named track per
  simulated rank and the expected event categories;
* the run report carries the ardbt.run_report schema header and the
  timing/totals/metrics sections the plotting scripts rely on.

Usage: check_trace.py /path/to/ardbt [P]
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, nranks):
    doc = json.loads(Path(path).read_text())
    events = doc["traceEvents"]
    if doc.get("otherData", {}).get("clock") != "virtual":
        fail("otherData.clock != 'virtual'")

    track_names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    expected = {r: f"rank {r}" for r in range(nranks)}
    if track_names != expected:
        fail(f"thread_name metadata {track_names} != {expected}")

    tids_with_events = {e["tid"] for e in events if e.get("ph") in ("X", "i")}
    if tids_with_events != set(range(nranks)):
        fail(f"ranks with events {sorted(tids_with_events)} != 0..{nranks - 1}")

    cats = {e.get("cat") for e in events if e.get("ph") in ("X", "i")}
    for needed in ("send", "recv", "wait", "compute", "phase"):
        if needed not in cats:
            fail(f"missing event category '{needed}' (got {sorted(cats)})")

    phases = {e["name"] for e in events if e.get("cat") == "phase"}
    for needed in ("driver.factor", "driver.solve"):
        if needed not in phases:
            fail(f"missing phase span '{needed}' (got {sorted(phases)})")

    for e in events:
        if e.get("ph") == "X" and e["dur"] < 0:
            fail(f"negative duration in event {e}")
    print(f"check_trace: trace ok ({len(events)} events, {nranks} tracks, "
          f"{len(phases)} phase names)")


def check_report(path, nranks):
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != "ardbt.run_report":
        fail(f"report schema {doc.get('schema')!r} != 'ardbt.run_report'")
    if doc.get("version") != 1:
        fail(f"report version {doc.get('version')!r} != 1")
    for section in ("config", "timing", "totals", "ranks", "metrics"):
        if section not in doc:
            fail(f"report missing section '{section}'")
    timing = doc["timing"]
    for key in ("factor_vtime_s", "solve_vtime_s", "wall_s"):
        if key not in timing:
            fail(f"report timing missing '{key}'")
    if timing["factor_vtime_s"] <= 0 or timing["solve_vtime_s"] <= 0:
        fail(f"non-positive phase vtimes: {timing}")
    if len(doc["ranks"]) != nranks:
        fail(f"report has {len(doc['ranks'])} ranks, expected {nranks}")
    counters = doc["metrics"].get("counters", {})
    if counters.get("trace.events_recorded", 0) <= 0:
        fail("metrics missing trace.events_recorded > 0")
    print(f"check_trace: report ok (tool={doc['tool']}, "
          f"{len(doc['ranks'])} ranks)")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_trace.py /path/to/ardbt [P]")
    cli = sys.argv[1]
    nranks = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = str(Path(tmp) / "trace.json")
        report_path = str(Path(tmp) / "report.json")
        cmd = [cli, "--method", "ard", "--n", "64", "--m", "4", "--p", str(nranks),
               "--r", "4", "--trace", trace_path, "--json", report_path]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
        check_trace(trace_path, nranks)
        check_report(report_path, nranks)
    print("check_trace: PASS")


if __name__ == "__main__":
    main()
