#!/usr/bin/env python3
"""Robustness gate for the fault-injection harness (docs/ROBUSTNESS.md).

Drives the ardbt CLI through a matrix of injected faults and planted
numerical breakdowns, under every --on-breakdown policy, and checks the
contract of the degradation ladder:

* no run ever crashes (exit code is 0 or 1 — never a signal) or hangs
  (each subprocess gets a hard wall-clock timeout);
* a failed run reports a structured error ("ardbt: error: [code] ...")
  on stderr, not a raw abort;
* every recovered run reaches a residual at or below 1e-10;
* under --on-breakdown fallback every scenario recovers (exit 0), and
  the --json run report lists each injected fault in
  sections.robustness.faults_injected;
* a failfast breakdown with --postmortem leaves an ardbt.postmortem v1
  bundle behind (incident forensics survive the aborted run).

Usage: check_faults.py /path/to/ardbt
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

SHAPE = ["--n", "64", "--m", "4", "--p", "4", "--r", "8"]
RESIDUAL_TOL = 1e-10
TIMEOUT_S = 120  # generous hang detector; normal runs take well under 1 s

FAULTS = ["delay", "dup", "flip", "straggle", "crash"]
POLICIES = ["failfast", "refine", "fallback"]
# Destructive injections abort a failfast run; everything else recovers.
EXPECT_FAIL = {("flip", "failfast"), ("crash", "failfast")}


def fail(msg):
    print(f"check_faults: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cli, extra, report_path):
    cmd = [cli, *SHAPE, "--json", str(report_path), *extra]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=TIMEOUT_S)
    except subprocess.TimeoutExpired:
        fail(f"{' '.join(cmd)} hung for {TIMEOUT_S}s")
    if proc.returncode not in (0, 1):
        fail(f"{' '.join(cmd)} exited {proc.returncode} "
             f"(crash, not a structured error):\n{proc.stderr}")
    return proc


def robustness(report_path):
    doc = json.loads(Path(report_path).read_text())
    sections = doc.get("sections", doc)
    if "robustness" not in sections:
        fail(f"{report_path} has no robustness section")
    return sections


def check_case(cli, tmp, scenario, extra, policy, expect_fail, n_injected):
    report_path = Path(tmp) / "report.json"
    proc = run(cli, [*extra, "--on-breakdown", policy], report_path)
    label = f"{scenario} / --on-breakdown {policy}"
    sections = robustness(report_path)
    rob = sections["robustness"]

    if expect_fail:
        if proc.returncode != 1:
            fail(f"{label}: expected a reported failure, got exit 0")
        if "ardbt: error: [" not in proc.stderr:
            fail(f"{label}: exit 1 without a structured error line:"
                 f"\n{proc.stderr}")
        if rob["ok"]:
            fail(f"{label}: run report claims ok despite the failure")
        return

    if proc.returncode != 0:
        fail(f"{label}: expected recovery, got exit {proc.returncode}:"
             f"\n{proc.stderr}")
    residual = sections["accuracy"]["relative_residual"]
    if not residual <= RESIDUAL_TOL:
        fail(f"{label}: recovered residual {residual} > {RESIDUAL_TOL}")
    if len(rob["faults_injected"]) != n_injected:
        fail(f"{label}: report lists {len(rob['faults_injected'])} injected "
             f"faults, expected {n_injected}")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_faults.py /path/to/ardbt")
    cli = sys.argv[1]
    cases = 0

    with tempfile.TemporaryDirectory() as tmp:
        # Injected communication faults, one kind at a time.
        for kind in FAULTS:
            for policy in POLICIES:
                check_case(cli, tmp, f"--fault {kind}", ["--fault", kind],
                           policy, (kind, policy) in EXPECT_FAIL, 1)
                cases += 1

        # Planted numerical breakdowns: exactly singular and near-singular.
        for eps, name in [("0", "singular"), ("1e-13", "near-singular")]:
            plant = ["--plant-pivot", "0", "--plant-eps", eps]
            for policy in POLICIES:
                check_case(cli, tmp, f"{name} pivot", plant, policy,
                           policy == "failfast", 0)
                cases += 1

        # A failfast breakdown must still dump the postmortem bundle on
        # the way out, with the structured stderr error intact.
        pm_path = Path(tmp) / "postmortem.json"
        proc = run(cli, ["--plant-pivot", "0", "--plant-eps", "1e-30",
                         "--on-breakdown", "failfast",
                         "--postmortem", str(pm_path)],
                   Path(tmp) / "report.json")
        if proc.returncode != 1 or "ardbt: error: [" not in proc.stderr:
            fail("postmortem scenario: breakdown lost its structured error:"
                 f"\n{proc.stderr}")
        if not pm_path.exists():
            fail("postmortem scenario: no bundle written on breakdown")
        pm = json.loads(pm_path.read_text())
        if pm.get("schema") != "ardbt.postmortem" or pm.get("reason") != "breakdown":
            fail(f"postmortem scenario: malformed bundle header: "
                 f"{pm.get('schema')!r} / {pm.get('reason')!r}")
        cases += 1

        # The acceptance combo: singular pivot + corrupted message under
        # fallback must still recover to an accurate solution.
        check_case(cli, tmp, "singular pivot + flip",
                   ["--plant-pivot", "0", "--fault", "flip"], "fallback",
                   False, 1)
        cases += 1

        # Malformed flag values: garbage / zero / negative numbers must
        # exit 1 with the structured invalid-argument error, never parse
        # silently to 0 (the old atoi behavior) or crash.
        for scenario, argv in [
            ("garbage --n", ["--n", "12x"]),
            ("zero --m", ["--m", "0"]),
            ("negative --p", ["--p", "-4"]),
            ("garbage --threads", ["--threads", "many"]),
            ("garbage --plant-eps", ["--plant-eps", "tiny"]),
        ]:
            cmd = [cli, *argv]
            try:
                proc = subprocess.run(cmd, capture_output=True, text=True,
                                      timeout=TIMEOUT_S)
            except subprocess.TimeoutExpired:
                fail(f"{' '.join(cmd)} hung for {TIMEOUT_S}s")
            if proc.returncode != 1:
                fail(f"{scenario}: expected exit 1, got {proc.returncode}:"
                     f"\n{proc.stderr}")
            if "ardbt: error: [invalid-argument]" not in proc.stderr:
                fail(f"{scenario}: missing structured invalid-argument error:"
                     f"\n{proc.stderr}")
            cases += 1

    print(f"check_faults: OK ({cases} scenarios)")


if __name__ == "__main__":
    main()
