file(REMOVE_RECURSE
  "CMakeFiles/ardbt_cli.dir/ardbt_cli.cpp.o"
  "CMakeFiles/ardbt_cli.dir/ardbt_cli.cpp.o.d"
  "ardbt"
  "ardbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ardbt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
