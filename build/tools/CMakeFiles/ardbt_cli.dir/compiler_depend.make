# Empty compiler generated dependencies file for ardbt_cli.
# This may be replaced when dependencies are built.
