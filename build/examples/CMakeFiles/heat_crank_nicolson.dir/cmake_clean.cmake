file(REMOVE_RECURSE
  "CMakeFiles/heat_crank_nicolson.dir/heat_crank_nicolson.cpp.o"
  "CMakeFiles/heat_crank_nicolson.dir/heat_crank_nicolson.cpp.o.d"
  "heat_crank_nicolson"
  "heat_crank_nicolson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_crank_nicolson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
