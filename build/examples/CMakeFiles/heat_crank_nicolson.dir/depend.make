# Empty dependencies file for heat_crank_nicolson.
# This may be replaced when dependencies are built.
