file(REMOVE_RECURSE
  "CMakeFiles/frozen_preconditioner_pcg.dir/frozen_preconditioner_pcg.cpp.o"
  "CMakeFiles/frozen_preconditioner_pcg.dir/frozen_preconditioner_pcg.cpp.o.d"
  "frozen_preconditioner_pcg"
  "frozen_preconditioner_pcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frozen_preconditioner_pcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
