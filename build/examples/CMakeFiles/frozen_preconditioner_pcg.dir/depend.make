# Empty dependencies file for frozen_preconditioner_pcg.
# This may be replaced when dependencies are built.
