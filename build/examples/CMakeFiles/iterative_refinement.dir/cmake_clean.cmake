file(REMOVE_RECURSE
  "CMakeFiles/iterative_refinement.dir/iterative_refinement.cpp.o"
  "CMakeFiles/iterative_refinement.dir/iterative_refinement.cpp.o.d"
  "iterative_refinement"
  "iterative_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
