# Empty compiler generated dependencies file for iterative_refinement.
# This may be replaced when dependencies are built.
