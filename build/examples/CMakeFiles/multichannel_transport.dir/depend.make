# Empty dependencies file for multichannel_transport.
# This may be replaced when dependencies are built.
