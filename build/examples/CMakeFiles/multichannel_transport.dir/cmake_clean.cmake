file(REMOVE_RECURSE
  "CMakeFiles/multichannel_transport.dir/multichannel_transport.cpp.o"
  "CMakeFiles/multichannel_transport.dir/multichannel_transport.cpp.o.d"
  "multichannel_transport"
  "multichannel_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multichannel_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
