file(REMOVE_RECURSE
  "CMakeFiles/la.dir/blas1.cpp.o"
  "CMakeFiles/la.dir/blas1.cpp.o.d"
  "CMakeFiles/la.dir/cholesky.cpp.o"
  "CMakeFiles/la.dir/cholesky.cpp.o.d"
  "CMakeFiles/la.dir/gemm.cpp.o"
  "CMakeFiles/la.dir/gemm.cpp.o.d"
  "CMakeFiles/la.dir/gemv.cpp.o"
  "CMakeFiles/la.dir/gemv.cpp.o.d"
  "CMakeFiles/la.dir/lu.cpp.o"
  "CMakeFiles/la.dir/lu.cpp.o.d"
  "CMakeFiles/la.dir/matrix.cpp.o"
  "CMakeFiles/la.dir/matrix.cpp.o.d"
  "CMakeFiles/la.dir/qr.cpp.o"
  "CMakeFiles/la.dir/qr.cpp.o.d"
  "CMakeFiles/la.dir/random.cpp.o"
  "CMakeFiles/la.dir/random.cpp.o.d"
  "libla.a"
  "libla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
