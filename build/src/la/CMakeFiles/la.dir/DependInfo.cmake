
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/blas1.cpp" "src/la/CMakeFiles/la.dir/blas1.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/blas1.cpp.o.d"
  "/root/repo/src/la/cholesky.cpp" "src/la/CMakeFiles/la.dir/cholesky.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/cholesky.cpp.o.d"
  "/root/repo/src/la/gemm.cpp" "src/la/CMakeFiles/la.dir/gemm.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/gemm.cpp.o.d"
  "/root/repo/src/la/gemv.cpp" "src/la/CMakeFiles/la.dir/gemv.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/gemv.cpp.o.d"
  "/root/repo/src/la/lu.cpp" "src/la/CMakeFiles/la.dir/lu.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/lu.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "src/la/CMakeFiles/la.dir/matrix.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/matrix.cpp.o.d"
  "/root/repo/src/la/qr.cpp" "src/la/CMakeFiles/la.dir/qr.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/qr.cpp.o.d"
  "/root/repo/src/la/random.cpp" "src/la/CMakeFiles/la.dir/random.cpp.o" "gcc" "src/la/CMakeFiles/la.dir/random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
