# Empty dependencies file for mpsim.
# This may be replaced when dependencies are built.
