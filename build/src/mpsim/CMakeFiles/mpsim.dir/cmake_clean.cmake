file(REMOVE_RECURSE
  "CMakeFiles/mpsim.dir/collectives.cpp.o"
  "CMakeFiles/mpsim.dir/collectives.cpp.o.d"
  "CMakeFiles/mpsim.dir/comm.cpp.o"
  "CMakeFiles/mpsim.dir/comm.cpp.o.d"
  "CMakeFiles/mpsim.dir/engine.cpp.o"
  "CMakeFiles/mpsim.dir/engine.cpp.o.d"
  "libmpsim.a"
  "libmpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
