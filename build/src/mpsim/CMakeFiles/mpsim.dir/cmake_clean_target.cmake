file(REMOVE_RECURSE
  "libmpsim.a"
)
