file(REMOVE_RECURSE
  "CMakeFiles/ard.dir/ard.cpp.o"
  "CMakeFiles/ard.dir/ard.cpp.o.d"
  "CMakeFiles/ard.dir/krylov.cpp.o"
  "CMakeFiles/ard.dir/krylov.cpp.o.d"
  "CMakeFiles/ard.dir/pcr.cpp.o"
  "CMakeFiles/ard.dir/pcr.cpp.o.d"
  "CMakeFiles/ard.dir/perfmodel.cpp.o"
  "CMakeFiles/ard.dir/perfmodel.cpp.o.d"
  "CMakeFiles/ard.dir/periodic.cpp.o"
  "CMakeFiles/ard.dir/periodic.cpp.o.d"
  "CMakeFiles/ard.dir/rd.cpp.o"
  "CMakeFiles/ard.dir/rd.cpp.o.d"
  "CMakeFiles/ard.dir/refine.cpp.o"
  "CMakeFiles/ard.dir/refine.cpp.o.d"
  "CMakeFiles/ard.dir/shooting.cpp.o"
  "CMakeFiles/ard.dir/shooting.cpp.o.d"
  "CMakeFiles/ard.dir/solver.cpp.o"
  "CMakeFiles/ard.dir/solver.cpp.o.d"
  "CMakeFiles/ard.dir/transfer.cpp.o"
  "CMakeFiles/ard.dir/transfer.cpp.o.d"
  "CMakeFiles/ard.dir/transfer_rd.cpp.o"
  "CMakeFiles/ard.dir/transfer_rd.cpp.o.d"
  "CMakeFiles/ard.dir/twoport.cpp.o"
  "CMakeFiles/ard.dir/twoport.cpp.o.d"
  "libard.a"
  "libard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
