
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ard.cpp" "src/core/CMakeFiles/ard.dir/ard.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/ard.cpp.o.d"
  "/root/repo/src/core/krylov.cpp" "src/core/CMakeFiles/ard.dir/krylov.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/krylov.cpp.o.d"
  "/root/repo/src/core/pcr.cpp" "src/core/CMakeFiles/ard.dir/pcr.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/pcr.cpp.o.d"
  "/root/repo/src/core/perfmodel.cpp" "src/core/CMakeFiles/ard.dir/perfmodel.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/perfmodel.cpp.o.d"
  "/root/repo/src/core/periodic.cpp" "src/core/CMakeFiles/ard.dir/periodic.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/periodic.cpp.o.d"
  "/root/repo/src/core/rd.cpp" "src/core/CMakeFiles/ard.dir/rd.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/rd.cpp.o.d"
  "/root/repo/src/core/refine.cpp" "src/core/CMakeFiles/ard.dir/refine.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/refine.cpp.o.d"
  "/root/repo/src/core/shooting.cpp" "src/core/CMakeFiles/ard.dir/shooting.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/shooting.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/ard.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/solver.cpp.o.d"
  "/root/repo/src/core/transfer.cpp" "src/core/CMakeFiles/ard.dir/transfer.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/transfer.cpp.o.d"
  "/root/repo/src/core/transfer_rd.cpp" "src/core/CMakeFiles/ard.dir/transfer_rd.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/transfer_rd.cpp.o.d"
  "/root/repo/src/core/twoport.cpp" "src/core/CMakeFiles/ard.dir/twoport.cpp.o" "gcc" "src/core/CMakeFiles/ard.dir/twoport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/la.dir/DependInfo.cmake"
  "/root/repo/build/src/btds/CMakeFiles/btds.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/mpsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
