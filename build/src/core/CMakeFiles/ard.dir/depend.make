# Empty dependencies file for ard.
# This may be replaced when dependencies are built.
