file(REMOVE_RECURSE
  "libard.a"
)
