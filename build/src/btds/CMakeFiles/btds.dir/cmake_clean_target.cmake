file(REMOVE_RECURSE
  "libbtds.a"
)
