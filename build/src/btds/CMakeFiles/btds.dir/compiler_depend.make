# Empty compiler generated dependencies file for btds.
# This may be replaced when dependencies are built.
