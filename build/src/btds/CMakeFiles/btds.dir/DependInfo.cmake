
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btds/cyclic_reduction.cpp" "src/btds/CMakeFiles/btds.dir/cyclic_reduction.cpp.o" "gcc" "src/btds/CMakeFiles/btds.dir/cyclic_reduction.cpp.o.d"
  "/root/repo/src/btds/distributed.cpp" "src/btds/CMakeFiles/btds.dir/distributed.cpp.o" "gcc" "src/btds/CMakeFiles/btds.dir/distributed.cpp.o.d"
  "/root/repo/src/btds/generators.cpp" "src/btds/CMakeFiles/btds.dir/generators.cpp.o" "gcc" "src/btds/CMakeFiles/btds.dir/generators.cpp.o.d"
  "/root/repo/src/btds/halo.cpp" "src/btds/CMakeFiles/btds.dir/halo.cpp.o" "gcc" "src/btds/CMakeFiles/btds.dir/halo.cpp.o.d"
  "/root/repo/src/btds/io.cpp" "src/btds/CMakeFiles/btds.dir/io.cpp.o" "gcc" "src/btds/CMakeFiles/btds.dir/io.cpp.o.d"
  "/root/repo/src/btds/reblock.cpp" "src/btds/CMakeFiles/btds.dir/reblock.cpp.o" "gcc" "src/btds/CMakeFiles/btds.dir/reblock.cpp.o.d"
  "/root/repo/src/btds/spmv.cpp" "src/btds/CMakeFiles/btds.dir/spmv.cpp.o" "gcc" "src/btds/CMakeFiles/btds.dir/spmv.cpp.o.d"
  "/root/repo/src/btds/thomas.cpp" "src/btds/CMakeFiles/btds.dir/thomas.cpp.o" "gcc" "src/btds/CMakeFiles/btds.dir/thomas.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/la.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/mpsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
