file(REMOVE_RECURSE
  "CMakeFiles/btds.dir/cyclic_reduction.cpp.o"
  "CMakeFiles/btds.dir/cyclic_reduction.cpp.o.d"
  "CMakeFiles/btds.dir/distributed.cpp.o"
  "CMakeFiles/btds.dir/distributed.cpp.o.d"
  "CMakeFiles/btds.dir/generators.cpp.o"
  "CMakeFiles/btds.dir/generators.cpp.o.d"
  "CMakeFiles/btds.dir/halo.cpp.o"
  "CMakeFiles/btds.dir/halo.cpp.o.d"
  "CMakeFiles/btds.dir/io.cpp.o"
  "CMakeFiles/btds.dir/io.cpp.o.d"
  "CMakeFiles/btds.dir/reblock.cpp.o"
  "CMakeFiles/btds.dir/reblock.cpp.o.d"
  "CMakeFiles/btds.dir/spmv.cpp.o"
  "CMakeFiles/btds.dir/spmv.cpp.o.d"
  "CMakeFiles/btds.dir/thomas.cpp.o"
  "CMakeFiles/btds.dir/thomas.cpp.o.d"
  "libbtds.a"
  "libbtds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
