# Empty compiler generated dependencies file for test_reblock.
# This may be replaced when dependencies are built.
