file(REMOVE_RECURSE
  "CMakeFiles/test_reblock.dir/test_reblock.cpp.o"
  "CMakeFiles/test_reblock.dir/test_reblock.cpp.o.d"
  "test_reblock"
  "test_reblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
