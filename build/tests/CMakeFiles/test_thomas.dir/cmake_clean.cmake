file(REMOVE_RECURSE
  "CMakeFiles/test_thomas.dir/test_thomas.cpp.o"
  "CMakeFiles/test_thomas.dir/test_thomas.cpp.o.d"
  "test_thomas"
  "test_thomas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thomas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
