# Empty dependencies file for test_thomas.
# This may be replaced when dependencies are built.
