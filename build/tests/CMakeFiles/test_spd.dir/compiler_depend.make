# Empty compiler generated dependencies file for test_spd.
# This may be replaced when dependencies are built.
