file(REMOVE_RECURSE
  "CMakeFiles/test_spd.dir/test_spd.cpp.o"
  "CMakeFiles/test_spd.dir/test_spd.cpp.o.d"
  "test_spd"
  "test_spd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
