file(REMOVE_RECURSE
  "CMakeFiles/test_solver_driver.dir/test_solver_driver.cpp.o"
  "CMakeFiles/test_solver_driver.dir/test_solver_driver.cpp.o.d"
  "test_solver_driver"
  "test_solver_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
