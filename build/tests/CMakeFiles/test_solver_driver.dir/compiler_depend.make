# Empty compiler generated dependencies file for test_solver_driver.
# This may be replaced when dependencies are built.
