file(REMOVE_RECURSE
  "CMakeFiles/test_ard.dir/test_ard.cpp.o"
  "CMakeFiles/test_ard.dir/test_ard.cpp.o.d"
  "test_ard"
  "test_ard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
