# Empty dependencies file for test_ard.
# This may be replaced when dependencies are built.
