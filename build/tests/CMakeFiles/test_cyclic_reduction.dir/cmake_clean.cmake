file(REMOVE_RECURSE
  "CMakeFiles/test_cyclic_reduction.dir/test_cyclic_reduction.cpp.o"
  "CMakeFiles/test_cyclic_reduction.dir/test_cyclic_reduction.cpp.o.d"
  "test_cyclic_reduction"
  "test_cyclic_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cyclic_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
