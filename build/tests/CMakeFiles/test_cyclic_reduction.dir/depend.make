# Empty dependencies file for test_cyclic_reduction.
# This may be replaced when dependencies are built.
