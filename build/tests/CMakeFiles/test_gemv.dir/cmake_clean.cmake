file(REMOVE_RECURSE
  "CMakeFiles/test_gemv.dir/test_gemv.cpp.o"
  "CMakeFiles/test_gemv.dir/test_gemv.cpp.o.d"
  "test_gemv"
  "test_gemv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
