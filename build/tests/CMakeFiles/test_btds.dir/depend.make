# Empty dependencies file for test_btds.
# This may be replaced when dependencies are built.
