file(REMOVE_RECURSE
  "CMakeFiles/test_btds.dir/test_btds.cpp.o"
  "CMakeFiles/test_btds.dir/test_btds.cpp.o.d"
  "test_btds"
  "test_btds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_btds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
