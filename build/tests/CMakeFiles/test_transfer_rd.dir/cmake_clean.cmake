file(REMOVE_RECURSE
  "CMakeFiles/test_transfer_rd.dir/test_transfer_rd.cpp.o"
  "CMakeFiles/test_transfer_rd.dir/test_transfer_rd.cpp.o.d"
  "test_transfer_rd"
  "test_transfer_rd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transfer_rd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
