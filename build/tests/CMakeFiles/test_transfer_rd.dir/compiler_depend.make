# Empty compiler generated dependencies file for test_transfer_rd.
# This may be replaced when dependencies are built.
