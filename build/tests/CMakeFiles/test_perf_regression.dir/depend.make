# Empty dependencies file for test_perf_regression.
# This may be replaced when dependencies are built.
