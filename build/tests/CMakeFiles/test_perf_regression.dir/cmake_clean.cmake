file(REMOVE_RECURSE
  "CMakeFiles/test_perf_regression.dir/test_perf_regression.cpp.o"
  "CMakeFiles/test_perf_regression.dir/test_perf_regression.cpp.o.d"
  "test_perf_regression"
  "test_perf_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
