# Empty dependencies file for test_twoport.
# This may be replaced when dependencies are built.
