file(REMOVE_RECURSE
  "CMakeFiles/test_twoport.dir/test_twoport.cpp.o"
  "CMakeFiles/test_twoport.dir/test_twoport.cpp.o.d"
  "test_twoport"
  "test_twoport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twoport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
