file(REMOVE_RECURSE
  "CMakeFiles/test_mpsim_stress.dir/test_mpsim_stress.cpp.o"
  "CMakeFiles/test_mpsim_stress.dir/test_mpsim_stress.cpp.o.d"
  "test_mpsim_stress"
  "test_mpsim_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpsim_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
