# Empty dependencies file for test_mpsim_stress.
# This may be replaced when dependencies are built.
