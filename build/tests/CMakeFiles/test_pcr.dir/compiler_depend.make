# Empty compiler generated dependencies file for test_pcr.
# This may be replaced when dependencies are built.
