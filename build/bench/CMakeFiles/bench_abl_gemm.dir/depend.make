# Empty dependencies file for bench_abl_gemm.
# This may be replaced when dependencies are built.
