file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_gemm.dir/bench_abl_gemm.cpp.o"
  "CMakeFiles/bench_abl_gemm.dir/bench_abl_gemm.cpp.o.d"
  "bench_abl_gemm"
  "bench_abl_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
