# Empty dependencies file for bench_t4_memory.
# This may be replaced when dependencies are built.
