# Empty dependencies file for bench_f3_scaling_N.
# This may be replaced when dependencies are built.
