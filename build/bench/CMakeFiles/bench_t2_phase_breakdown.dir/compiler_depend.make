# Empty compiler generated dependencies file for bench_t2_phase_breakdown.
# This may be replaced when dependencies are built.
