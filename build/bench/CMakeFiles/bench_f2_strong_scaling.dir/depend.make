# Empty dependencies file for bench_f2_strong_scaling.
# This may be replaced when dependencies are built.
