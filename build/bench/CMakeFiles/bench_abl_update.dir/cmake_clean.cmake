file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_update.dir/bench_abl_update.cpp.o"
  "CMakeFiles/bench_abl_update.dir/bench_abl_update.cpp.o.d"
  "bench_abl_update"
  "bench_abl_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
