# Empty compiler generated dependencies file for bench_abl_update.
# This may be replaced when dependencies are built.
