# Empty compiler generated dependencies file for bench_f6_rd_vs_pcr.
# This may be replaced when dependencies are built.
