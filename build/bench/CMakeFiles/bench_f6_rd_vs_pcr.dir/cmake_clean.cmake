file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_rd_vs_pcr.dir/bench_f6_rd_vs_pcr.cpp.o"
  "CMakeFiles/bench_f6_rd_vs_pcr.dir/bench_f6_rd_vs_pcr.cpp.o.d"
  "bench_f6_rd_vs_pcr"
  "bench_f6_rd_vs_pcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_rd_vs_pcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
