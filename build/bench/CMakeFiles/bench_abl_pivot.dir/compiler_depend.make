# Empty compiler generated dependencies file for bench_abl_pivot.
# This may be replaced when dependencies are built.
