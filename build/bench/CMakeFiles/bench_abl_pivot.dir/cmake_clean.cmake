file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_pivot.dir/bench_abl_pivot.cpp.o"
  "CMakeFiles/bench_abl_pivot.dir/bench_abl_pivot.cpp.o.d"
  "bench_abl_pivot"
  "bench_abl_pivot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_pivot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
