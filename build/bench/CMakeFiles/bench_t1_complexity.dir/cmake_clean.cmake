file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_complexity.dir/bench_t1_complexity.cpp.o"
  "CMakeFiles/bench_t1_complexity.dir/bench_t1_complexity.cpp.o.d"
  "bench_t1_complexity"
  "bench_t1_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
