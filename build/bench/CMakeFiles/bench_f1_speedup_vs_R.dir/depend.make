# Empty dependencies file for bench_f1_speedup_vs_R.
# This may be replaced when dependencies are built.
