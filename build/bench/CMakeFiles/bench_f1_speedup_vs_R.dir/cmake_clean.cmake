file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_speedup_vs_R.dir/bench_f1_speedup_vs_R.cpp.o"
  "CMakeFiles/bench_f1_speedup_vs_R.dir/bench_f1_speedup_vs_R.cpp.o.d"
  "bench_f1_speedup_vs_R"
  "bench_f1_speedup_vs_R.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_speedup_vs_R.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
