# Empty compiler generated dependencies file for bench_f4_scaling_M.
# This may be replaced when dependencies are built.
