file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_scaling_M.dir/bench_f4_scaling_M.cpp.o"
  "CMakeFiles/bench_f4_scaling_M.dir/bench_f4_scaling_M.cpp.o.d"
  "bench_f4_scaling_M"
  "bench_f4_scaling_M.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_scaling_M.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
