# Empty dependencies file for bench_abl_scaling.
# This may be replaced when dependencies are built.
