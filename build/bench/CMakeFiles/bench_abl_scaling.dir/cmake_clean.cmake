file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_scaling.dir/bench_abl_scaling.cpp.o"
  "CMakeFiles/bench_abl_scaling.dir/bench_abl_scaling.cpp.o.d"
  "bench_abl_scaling"
  "bench_abl_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
