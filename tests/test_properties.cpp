// Numerical-property tests: the inequalities the stability arguments of
// DESIGN.md / docs/ALGORITHMS.md rest on, checked directly on generated
// systems rather than assumed.

#include <gtest/gtest.h>

#include <cmath>

#include "src/btds/generators.hpp"
#include "src/btds/thomas.hpp"
#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/lu.hpp"

namespace ardbt {
namespace {

using btds::BlockTridiag;
using btds::make_problem;
using btds::ProblemKind;
using la::index_t;
using la::Matrix;

/// Compute the block-LU pivots U_i by the sequential recurrence.
std::vector<Matrix> pivots(const BlockTridiag& t) {
  const index_t n = t.num_blocks();
  std::vector<Matrix> u;
  u.push_back(t.diag(0));
  for (index_t i = 1; i < n; ++i) {
    const la::LuFactors lu = la::lu_factor(u.back().view());
    const Matrix g = la::lu_solve(lu, t.upper(i - 1).view());
    Matrix next = t.diag(i);
    la::gemm(-1.0, t.lower(i).view(), g.view(), 1.0, next.view());
    u.push_back(std::move(next));
  }
  return u;
}

/// The couplings Phi_i = A_i U_{i-1}^{-1} and G_i = U_i^{-1} C_i must be
/// contractions (infinity norm < 1) for diagonally dominant systems —
/// the backbone of the two-port conditioning argument.
TEST(Properties, BlockLuCouplingsAreContractions) {
  for (ProblemKind kind : {ProblemKind::kDiagDominant, ProblemKind::kPoisson2D,
                           ProblemKind::kToeplitz}) {
    const BlockTridiag t = make_problem(kind, 24, 4);
    const auto u = pivots(t);
    for (index_t i = 1; i < 24; ++i) {
      const la::LuFactors prev = la::lu_factor(u[static_cast<std::size_t>(i - 1)].view());
      const Matrix phi = la::right_divide(t.lower(i).view(), prev);
      EXPECT_LT(la::norm_inf(phi.view()), 1.0) << btds::to_string(kind) << " Phi_" << i;
    }
    for (index_t i = 0; i + 1 < 24; ++i) {
      const la::LuFactors cur = la::lu_factor(u[static_cast<std::size_t>(i)].view());
      const Matrix g = la::lu_solve(cur, t.upper(i).view());
      EXPECT_LT(la::norm_inf(g.view()), 1.0) << btds::to_string(kind) << " G_" << i;
    }
  }
}

/// Pivots inherit conditioning: kappa(U_i) stays bounded (no growth with
/// i) for dominant systems — block Thomas without inter-block pivoting is
/// safe exactly because of this.
TEST(Properties, PivotConditionStaysBounded) {
  const BlockTridiag t = make_problem(ProblemKind::kPoisson2D, 64, 4);
  const auto u = pivots(t);
  double worst = 0.0;
  for (const Matrix& ui : u) worst = std::max(worst, la::condition_inf(ui.view()));
  EXPECT_LT(worst, 100.0);
}

/// The interface matrix of a two-port merge, K = I - (P_R a)(S_L c), is a
/// small perturbation of the identity: ||K - I||_inf < 1 on dominant
/// systems, making every merge well-conditioned.
TEST(Properties, TwoPortInterfacePerturbationIsSmall) {
  const BlockTridiag t = make_problem(ProblemKind::kDiagDominant, 16, 3);
  // Dense two-ports of [0..7] and [8..15].
  const index_t m = 3;
  const auto corner_blocks = [&](index_t l, index_t h) {
    const index_t len = h - l + 1;
    Matrix dense(len * m, len * m);
    for (index_t k = 0; k < len; ++k) {
      la::copy(t.diag(l + k).view(), dense.block(k * m, k * m, m, m));
      if (k > 0) la::copy(t.lower(l + k).view(), dense.block(k * m, (k - 1) * m, m, m));
      if (k + 1 < len) la::copy(t.upper(l + k).view(), dense.block(k * m, (k + 1) * m, m, m));
    }
    const Matrix inv = la::inverse(dense.view());
    return std::pair{la::to_matrix(inv.block(0, 0, m, m)),                    // P
                     la::to_matrix(inv.block((len - 1) * m, (len - 1) * m, m, m))};  // S
  };
  const auto [p_left, s_left] = corner_blocks(0, 7);
  const auto [p_right, s_right] = corner_blocks(8, 15);

  // K - I = -(P_R A_8)(S_L C_7).
  const Matrix pa = la::matmul(p_right.view(), t.lower(8).view());
  const Matrix sc = la::matmul(s_left.view(), t.upper(7).view());
  const Matrix prod = la::matmul(pa.view(), sc.view());
  EXPECT_LT(la::norm_inf(prod.view()), 1.0);
}

/// Corner blocks of a dominant segment's inverse decay with segment
/// length: the "forgetting" that makes long two-ports nearly decoupled
/// (Q, R -> 0) and the whole formulation immune to N.
TEST(Properties, TwoPortCrossCouplingDecaysWithLength) {
  const index_t m = 2;
  const auto cross_norm = [&](index_t len) {
    const BlockTridiag t = make_problem(ProblemKind::kDiagDominant, len, m, /*seed=*/7);
    Matrix dense(len * m, len * m);
    for (index_t k = 0; k < len; ++k) {
      la::copy(t.diag(k).view(), dense.block(k * m, k * m, m, m));
      if (k > 0) la::copy(t.lower(k).view(), dense.block(k * m, (k - 1) * m, m, m));
      if (k + 1 < len) la::copy(t.upper(k).view(), dense.block(k * m, (k + 1) * m, m, m));
    }
    const Matrix inv = la::inverse(dense.view());
    return la::norm_inf(la::to_matrix(inv.block(0, (len - 1) * m, m, m)).view());  // Q corner
  };
  const double q4 = cross_norm(4);
  const double q8 = cross_norm(8);
  const double q16 = cross_norm(16);
  EXPECT_LT(q8, q4);
  EXPECT_LT(q16, q8);
  EXPECT_LT(q16, 1e-4);  // geometric decay has long since kicked in
}

/// Transfer matrices of dominant systems really do have spectral radius
/// > 1 — the root cause of the shooting instability. Checked via the
/// growth of repeated application to a random vector.
TEST(Properties, TransferMatricesHaveGrowingModes) {
  const BlockTridiag t = make_problem(ProblemKind::kPoisson2D, 4, 1);
  // Scalar Poisson: x_{i+1} = 4 x_i - x_{i-1}; companion matrix [[4,-1],[1,0]].
  Matrix s{{4.0, -1.0}, {1.0, 0.0}};
  Matrix v{{1.0}, {1.0}};
  double prev = la::norm_fro(v.view());
  double growth = 0.0;
  for (int k = 0; k < 20; ++k) {
    Matrix next(2, 1);
    la::gemm(1.0, s.view(), v.view(), 0.0, next.view());
    growth = la::norm_fro(next.view()) / prev;
    prev = la::norm_fro(next.view());
    v = std::move(next);
    v.scale(1.0 / prev);  // normalize to avoid overflow
    prev = 1.0;
  }
  EXPECT_NEAR(growth, 2.0 + std::sqrt(3.0), 1e-6);  // dominant root of z^2 = 4z - 1
}

}  // namespace
}  // namespace ardbt
