#include "src/btds/halo.hpp"

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/refine.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::btds {
namespace {

using la::index_t;
using la::Matrix;

TEST(Halo, ExchangeDeliversNeighbourRows) {
  const index_t n = 10, m = 2, r = 3;
  const Matrix global = make_rhs(n, m, r);
  for (int p : {1, 2, 3, 5}) {
    const RowPartition part(n, p);
    mpsim::run(p, [&](mpsim::Comm& comm) {
      const index_t lo = part.begin(comm.rank());
      const index_t hi = part.end(comm.rank());
      const Matrix local = la::to_matrix(global.block(lo * m, 0, (hi - lo) * m, r));
      const Halo halo = exchange_halo(comm, local, m, part);
      if (lo == 0) {
        EXPECT_FALSE(halo.below.has_value());
      } else {
        ASSERT_TRUE(halo.below.has_value());
        EXPECT_TRUE(*halo.below == la::to_matrix(global.block((lo - 1) * m, 0, m, r)));
      }
      if (hi == n) {
        EXPECT_FALSE(halo.above.has_value());
      } else {
        ASSERT_TRUE(halo.above.has_value());
        EXPECT_TRUE(*halo.above == la::to_matrix(global.block(hi * m, 0, m, r)));
      }
    });
  }
}

TEST(Halo, DistributedApplyMatchesSharedApply) {
  const index_t n = 17, m = 3, r = 2;
  const BlockTridiag sys = make_problem(ProblemKind::kConvectionDiffusion, n, m);
  const Matrix x = make_rhs(n, m, r);
  const Matrix expected = apply(sys, x);
  for (int p : {1, 2, 4}) {
    const RowPartition part(n, p);
    mpsim::run(p, [&](mpsim::Comm& comm) {
      const auto local_sys = LocalBlockTridiag::from_shared(sys, part, comm.rank());
      const index_t lo = part.begin(comm.rank());
      const index_t nloc = part.count(comm.rank());
      const Matrix x_local = la::to_matrix(x.block(lo * m, 0, nloc * m, r));
      const Matrix b_local = apply_distributed(comm, local_sys, x_local, part);
      for (index_t i = 0; i < nloc * m; ++i) {
        for (index_t j = 0; j < r; ++j) {
          EXPECT_NEAR(b_local(i, j), expected(lo * m + i, j), 1e-13) << "P=" << p;
        }
      }
    });
  }
}

TEST(Halo, DistributedResidualMatchesSharedResidual) {
  const index_t n = 12, m = 2, r = 2;
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const Matrix x = make_rhs(n, m, r, /*seed=*/3);
  const Matrix b = make_rhs(n, m, r, /*seed=*/4);
  const double expected = relative_residual(sys, x, b);
  const RowPartition part(n, 3);
  mpsim::run(3, [&](mpsim::Comm& comm) {
    const auto local_sys = LocalBlockTridiag::from_shared(sys, part, comm.rank());
    const index_t lo = part.begin(comm.rank());
    const index_t nloc = part.count(comm.rank());
    const Matrix x_local = la::to_matrix(x.block(lo * m, 0, nloc * m, r));
    const Matrix b_local = la::to_matrix(b.block(lo * m, 0, nloc * m, r));
    const double measured = relative_residual_distributed(comm, local_sys, x_local, b_local, part);
    EXPECT_NEAR(measured, expected, 1e-12 * expected + 1e-15);
  });
}

TEST(Halo, FullyDistributedRefinementConverges) {
  // End-to-end message-passing-only pipeline: scatter, factor, refined
  // solve with halo-based residuals, distributed residual check.
  const index_t n = 36, m = 4, r = 2;
  const int p = 4;
  const BlockTridiag global = make_problem(ProblemKind::kIllConditioned, n, m);
  const Matrix b = make_rhs(n, m, r);
  const RowPartition part(n, p);
  mpsim::run(p, [&](mpsim::Comm& comm) {
    const bool root = comm.rank() == 0;
    const auto local_sys =
        LocalBlockTridiag::scatter(comm, root ? &global : nullptr, n, m, part, 0);
    const Matrix b_local = scatter_rows(comm, root ? &b : nullptr, m, part, 0);
    const auto f = core::ArdFactorization::factor(comm, local_sys, part);
    Matrix x_local;
    const auto rr = core::solve_refined_local(comm, f, local_sys, part, b_local, x_local,
                                              /*max_steps=*/2);
    EXPECT_GE(rr.residual_norms.size(), 1u);
    const double res = relative_residual_distributed(comm, local_sys, x_local, b_local, part);
    EXPECT_LT(res, 1e-13);
  });
}

}  // namespace
}  // namespace ardbt::btds
