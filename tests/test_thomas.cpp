#include "src/btds/thomas.hpp"

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"

namespace ardbt::btds {
namespace {

TEST(Thomas, MatchesDenseLuOnSmallSystem) {
  const BlockTridiag t = make_problem(ProblemKind::kDiagDominant, 5, 3);
  const Matrix b = make_rhs(5, 3, 2);
  const Matrix x = thomas_solve(t, b);

  // Dense reference.
  Matrix dense(t.dim(), t.dim());
  for (index_t i = 0; i < 5; ++i) {
    la::copy(t.diag(i).view(), dense.block(i * 3, i * 3, 3, 3));
    if (i > 0) la::copy(t.lower(i).view(), dense.block(i * 3, (i - 1) * 3, 3, 3));
    if (i + 1 < 5) la::copy(t.upper(i).view(), dense.block(i * 3, (i + 1) * 3, 3, 3));
  }
  const la::LuFactors f = la::lu_factor(dense.view());
  ASSERT_TRUE(f.ok());
  const Matrix x_ref = la::lu_solve(f, b.view());
  for (index_t i = 0; i < x.rows(); ++i) {
    for (index_t j = 0; j < x.cols(); ++j) EXPECT_NEAR(x(i, j), x_ref(i, j), 1e-10);
  }
}

TEST(Thomas, SmallResidualAcrossKindsAndSizes) {
  for (ProblemKind kind : kAllProblemKinds) {
    for (index_t n : {1, 2, 3, 17, 64}) {
      for (index_t m : {1, 4}) {
        const BlockTridiag t = make_problem(kind, n, m);
        const Matrix b = make_rhs(n, m, 3);
        const Matrix x = thomas_solve(t, b);
        const double tol = kind == ProblemKind::kIllConditioned ? 1e-8 : 1e-11;
        EXPECT_LT(relative_residual(t, x, b), tol)
            << to_string(kind) << " N=" << n << " M=" << m;
      }
    }
  }
}

TEST(Thomas, FactorOnceSolvesManyRhs) {
  const BlockTridiag t = make_problem(ProblemKind::kPoisson2D, 12, 2);
  const ThomasFactorization f = ThomasFactorization::factor(t);
  EXPECT_EQ(f.num_blocks(), 12);
  EXPECT_EQ(f.block_size(), 2);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Matrix b = make_rhs(12, 2, 4, seed);
    const Matrix x = f.solve(b);
    EXPECT_LT(relative_residual(t, x, b), 1e-12);
  }
}

TEST(Thomas, SingleBlockRowIsPlainLuSolve) {
  BlockTridiag t(1, 2);
  t.diag(0) = Matrix{{2.0, 0.0}, {0.0, 4.0}};
  Matrix b(2, 1);
  b(0, 0) = 2.0;
  b(1, 0) = 8.0;
  const Matrix x = thomas_solve(t, b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-14);
}

TEST(Thomas, ThrowsOnSingularPivot) {
  BlockTridiag t(2, 1);
  t.diag(0)(0, 0) = 0.0;  // singular first pivot
  t.diag(1)(0, 0) = 1.0;
  t.upper(0)(0, 0) = 1.0;
  t.lower(1)(0, 0) = 1.0;
  EXPECT_THROW(ThomasFactorization::factor(t), std::runtime_error);
}

TEST(Thomas, FlopFormulasScale) {
  EXPECT_GT(ThomasFactorization::factor_flops(10, 4), 0.0);
  EXPECT_NEAR(ThomasFactorization::factor_flops(20, 4) / ThomasFactorization::factor_flops(10, 4),
              2.0, 1e-9);
  EXPECT_NEAR(ThomasFactorization::solve_flops(10, 4, 8) / ThomasFactorization::solve_flops(10, 4, 4),
              2.0, 1e-9);
}

TEST(Thomas, StorageBytesPositive) {
  const BlockTridiag t = make_problem(ProblemKind::kDiagDominant, 6, 3);
  const ThomasFactorization f = ThomasFactorization::factor(t);
  EXPECT_GT(f.storage_bytes(), 0u);
}

}  // namespace
}  // namespace ardbt::btds
