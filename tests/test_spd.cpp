// The SPD (Cholesky-pivot) fast path of block Thomas and ARD.

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/btds/thomas.hpp"
#include "src/core/ard.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt {
namespace {

using btds::BlockTridiag;
using btds::make_rhs;
using btds::PivotKind;
using la::index_t;
using la::Matrix;

/// The Poisson line operator is SPD (symmetric, A_{i+1} = C_i^T = -I,
/// strictly dominant diagonal).
BlockTridiag spd_problem(index_t n, index_t m) {
  return btds::make_problem(btds::ProblemKind::kPoisson2D, n, m);
}

TEST(SpdPivot, ThomasCholeskyMatchesLu) {
  const BlockTridiag sys = spd_problem(20, 4);
  const Matrix b = make_rhs(20, 4, 3);
  const Matrix x_lu = btds::ThomasFactorization::factor(sys, PivotKind::kLu).solve(b);
  const Matrix x_ch = btds::ThomasFactorization::factor(sys, PivotKind::kCholesky).solve(b);
  for (index_t i = 0; i < b.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) EXPECT_NEAR(x_ch(i, j), x_lu(i, j), 1e-11);
  }
}

TEST(SpdPivot, ThomasCholeskyRejectsNonSpd) {
  // Convection (drift != 0) breaks symmetry; the pivots stay invertible
  // (dominant) but are not SPD... the first asymmetric pivot may still be
  // positive, so use an indefinite diagonal instead.
  BlockTridiag sys(2, 2);
  sys.diag(0) = Matrix{{1.0, 2.0}, {2.0, 1.0}};  // indefinite
  sys.diag(1) = Matrix::identity(2);
  sys.upper(0) = Matrix::identity(2);
  sys.lower(1) = Matrix::identity(2);
  EXPECT_THROW(btds::ThomasFactorization::factor(sys, PivotKind::kCholesky), std::runtime_error);
}

TEST(SpdPivot, ArdWithCholeskyPivots) {
  const BlockTridiag sys = spd_problem(48, 4);
  const Matrix b = make_rhs(48, 4, 4);
  Matrix x(b.rows(), b.cols());
  const btds::RowPartition part(48, 4);
  core::ArdOptions opts;
  opts.pivot = PivotKind::kCholesky;
  mpsim::run(4, [&](mpsim::Comm& comm) {
    const auto f = core::ArdFactorization::factor(comm, sys, part, opts);
    f.solve(comm, b, x);
  });
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-12);
}

TEST(SpdPivot, ArdCholeskyMatchesLuBitForBitInShape) {
  const BlockTridiag sys = spd_problem(24, 3);
  const Matrix b = make_rhs(24, 3, 2);
  Matrix x_lu(b.rows(), b.cols());
  Matrix x_ch(b.rows(), b.cols());
  const btds::RowPartition part(24, 3);
  mpsim::run(3, [&](mpsim::Comm& comm) {
    const auto f1 = core::ArdFactorization::factor(comm, sys, part);
    f1.solve(comm, b, x_lu);
    core::ArdOptions opts;
    opts.pivot = PivotKind::kCholesky;
    const auto f2 = core::ArdFactorization::factor(comm, sys, part, opts);
    f2.solve(comm, b, x_ch);
  });
  for (index_t i = 0; i < b.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) EXPECT_NEAR(x_ch(i, j), x_lu(i, j), 1e-10);
  }
}

TEST(SpdPivot, UpdateKeepsPivotKind) {
  BlockTridiag sys = spd_problem(16, 2);
  const Matrix b = make_rhs(16, 2, 1);
  Matrix x(b.rows(), b.cols());
  const btds::RowPartition part(16, 2);
  core::ArdOptions opts;
  opts.pivot = PivotKind::kCholesky;
  mpsim::run(2, [&](mpsim::Comm& comm) {
    auto f = core::ArdFactorization::factor(comm, sys, part, opts);
    mpsim::barrier(comm);
    if (comm.rank() == 0) {
      for (index_t i = 0; i < 16; ++i) {
        for (index_t d = 0; d < 2; ++d) sys.diag(i)(d, d) += 1.0;  // stays SPD
      }
    }
    mpsim::barrier(comm);
    f.update(comm, sys, /*rows_changed=*/true);
    f.solve(comm, b, x);
  });
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-12);
}

}  // namespace
}  // namespace ardbt
