// Cross-module integration tests: full application-style flows exercising
// generators + distribution + factorization + repeated solves + refinement
// together, with physics-level validation where possible.

#include <gtest/gtest.h>

#include <cmath>

#include "src/btds/cyclic_reduction.hpp"
#include "src/btds/distributed.hpp"
#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/btds/thomas.hpp"
#include "src/core/pcr.hpp"
#include "src/core/refine.hpp"
#include "src/core/solver.hpp"
#include "src/la/gemm.hpp"
#include "src/mpsim/collectives.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt {
namespace {

using btds::BlockTridiag;
using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;
using la::index_t;
using la::Matrix;

/// Every solver in the library must agree with every other on the same
/// well-conditioned system (to a tolerance reflecting its tier).
TEST(Integration, AllSolversAgree) {
  const index_t n = 24, m = 3, r = 2;
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const Matrix b = make_rhs(n, m, r);
  const Matrix x_ref = btds::thomas_solve(sys, b);

  const auto check = [&](const Matrix& x, double tol, const char* name) {
    double mx = 0.0;
    for (index_t i = 0; i < x.rows(); ++i) {
      for (index_t j = 0; j < r; ++j) mx = std::max(mx, std::abs(x(i, j) - x_ref(i, j)));
    }
    EXPECT_LT(mx, tol) << name;
  };
  check(btds::cyclic_reduction_solve(sys, b), 1e-10, "cyclic reduction");
  check(core::solve(core::Method::kArd, sys, b, 3).x, 1e-10, "ard");
  check(core::solve(core::Method::kRdBatched, sys, b, 3).x, 1e-10, "rd");
  check(core::solve(core::Method::kPcr, sys, b, 3).x, 1e-10, "pcr");
  check(core::solve(core::Method::kTransferRd, sys, b, 3).x, 1e-7, "transfer rd");
}

/// Implicit Euler heat stepping with factor-reuse: the total heat of a
/// Dirichlet problem must decay monotonically, and each step's residual
/// must be at machine precision.
TEST(Integration, ImplicitEulerHeatStepping) {
  const index_t n = 32, m = 8;
  const double lambda = 0.5;
  const int steps = 20;
  const int p = 4;

  // (I + lambda A) u_next = u.
  BlockTridiag implicit(n, m);
  for (index_t i = 0; i < n; ++i) {
    for (index_t rr = 0; rr < m; ++rr) {
      implicit.diag(i)(rr, rr) = 1.0 + 4.0 * lambda;
      if (rr > 0) implicit.diag(i)(rr, rr - 1) = -lambda;
      if (rr + 1 < m) implicit.diag(i)(rr, rr + 1) = -lambda;
      if (i > 0) implicit.lower(i)(rr, rr) = -lambda;
      if (i + 1 < n) implicit.upper(i)(rr, rr) = -lambda;
    }
  }

  Matrix u(n * m, 1);
  u(n / 2 * m + m / 2, 0) = 1.0;  // hot spot
  Matrix u_next(n * m, 1);
  std::vector<double> heat;
  const btds::RowPartition part(n, p);

  mpsim::run(p, [&](mpsim::Comm& comm) {
    const auto f = core::ArdFactorization::factor(comm, implicit, part);
    for (int step = 0; step < steps; ++step) {
      f.solve(comm, u, u_next);
      mpsim::barrier(comm);
      if (comm.rank() == 0) {
        EXPECT_LT(btds::relative_residual(implicit, u_next, u), 1e-13) << "step " << step;
        double total = 0.0;
        for (index_t i = 0; i < n * m; ++i) total += u_next(i, 0);
        heat.push_back(total);
        std::swap(u, u_next);
      }
      mpsim::barrier(comm);
    }
  });

  ASSERT_EQ(heat.size(), static_cast<std::size_t>(steps));
  for (std::size_t s = 1; s < heat.size(); ++s) {
    EXPECT_LT(heat[s], heat[s - 1]) << "heat must decay (Dirichlet)";
    EXPECT_GT(heat[s], 0.0);
  }
}

/// Distributed path + refinement together, on the ill-conditioned dial.
TEST(Integration, DistributedSolveWithRefinement) {
  const index_t n = 48, m = 4, r = 3;
  const int p = 4;
  const BlockTridiag global = make_problem(ProblemKind::kIllConditioned, n, m);
  const Matrix b = make_rhs(n, m, r);
  Matrix x(b.rows(), b.cols());
  const btds::RowPartition part(n, p);

  mpsim::run(p, [&](mpsim::Comm& comm) {
    const auto local = btds::LocalBlockTridiag::scatter(
        comm, comm.rank() == 0 ? &global : nullptr, n, m, part, 0);
    const auto f = core::ArdFactorization::factor(comm, local, part);
    // Refinement needs the operator for residuals; the shared `global` is
    // available in-process. (A pure-MPI code would apply the operator
    // from local rows + halo exchange.)
    core::solve_refined(comm, f, global, part, b, x, /*max_steps=*/2);
  });
  EXPECT_LT(btds::relative_residual(global, x, b), 1e-13);
}

/// Two independent factorizations of different systems coexist in one
/// engine run (tag streams must not interfere).
TEST(Integration, TwoFactorizationsCoexist) {
  const index_t n = 20, m = 2;
  const BlockTridiag sys_a = make_problem(ProblemKind::kDiagDominant, n, m, /*seed=*/1);
  const BlockTridiag sys_b = make_problem(ProblemKind::kToeplitz, n, m, /*seed=*/2);
  const Matrix rhs = make_rhs(n, m, 2);
  Matrix xa(rhs.rows(), rhs.cols());
  Matrix xb(rhs.rows(), rhs.cols());
  const btds::RowPartition part(n, 3);

  mpsim::run(3, [&](mpsim::Comm& comm) {
    const auto fa = core::ArdFactorization::factor(comm, sys_a, part);
    const auto fb = core::ArdFactorization::factor(comm, sys_b, part);
    // Interleave solves.
    fa.solve(comm, rhs, xa);
    fb.solve(comm, rhs, xb);
    fa.solve(comm, rhs, xa);
  });
  EXPECT_LT(btds::relative_residual(sys_a, xa, rhs), 1e-11);
  EXPECT_LT(btds::relative_residual(sys_b, xb, rhs), 1e-11);
}

/// PCR and ARD factorization objects used side by side on the same system.
TEST(Integration, PcrAndArdSideBySide) {
  const index_t n = 30, m = 3;
  const BlockTridiag sys = make_problem(ProblemKind::kConvectionDiffusion, n, m);
  const Matrix b = make_rhs(n, m, 4);
  Matrix x_ard(b.rows(), b.cols());
  Matrix x_pcr(b.rows(), b.cols());
  const btds::RowPartition part(n, 2);
  mpsim::run(2, [&](mpsim::Comm& comm) {
    const auto fa = core::ArdFactorization::factor(comm, sys, part);
    const auto fp = core::PcrFactorization::factor(comm, sys, part);
    fa.solve(comm, b, x_ard);
    fp.solve(comm, b, x_pcr);
  });
  for (index_t i = 0; i < b.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) EXPECT_NEAR(x_ard(i, j), x_pcr(i, j), 1e-10);
  }
}

}  // namespace
}  // namespace ardbt
