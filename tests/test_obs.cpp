// Tests for the ardbt::obs subsystem: JSON builder determinism, span
// RAII/nesting, ring-buffer overflow, Chrome-trace export (golden),
// charged-flops trace determinism across runs, runtime kill switch, the
// metrics registry, and RankStats::accumulate semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/btds/generators.hpp"
#include "src/core/solver.hpp"
#include "src/mpsim/engine.hpp"
#include "src/mpsim/obs_bridge.hpp"
#include "src/mpsim/stats.hpp"
#include "src/obs/chrome_trace.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/run_report.hpp"
#include "src/obs/trace.hpp"

namespace {

using namespace ardbt;

// ---------------------------------------------------------------- Json

TEST(Json, PreservesInsertionOrderAndEscapes) {
  obs::Json j = obs::Json::object();
  j.set("zeta", 1);
  j.set("alpha", "line\n\"quoted\"");
  j.set("flag", true);
  j.set("nothing", obs::Json());
  EXPECT_EQ(j.dump(),
            R"({"zeta":1,"alpha":"line\n\"quoted\"","flag":true,"nothing":null})");
}

TEST(Json, NumbersRoundTripShortest) {
  obs::Json a = obs::Json::array();
  a.push(0.1);
  a.push(1.0);
  a.push(obs::Json(std::int64_t{-7}));
  a.push(obs::Json(std::uint64_t{18446744073709551615ull}));
  a.push(1.0 / 0.0);  // non-finite -> null
  EXPECT_EQ(a.dump(), "[0.1,1,-7,18446744073709551615,null]");
}

TEST(Json, IndentedDump) {
  obs::Json j = obs::Json::object();
  j.set("k", obs::Json::array().push(1).push(2));
  EXPECT_EQ(j.dump(1), "{\n \"k\": [\n  1,\n  2\n ]\n}");
}

// --------------------------------------------------------------- Trace

// Deterministic clock for driving RankTrace/SpanScope without an engine.
struct FakeClock {
  double t = 0.0;
  static obs::TimeSample now(void* ctx) {
    const double t = static_cast<FakeClock*>(ctx)->t;
    return {t, t};
  }
};

TEST(Trace, SpanNestingAndRaii) {
  obs::Tracer tracer;
  tracer.prepare(1);
  obs::RankTrace& rt = tracer.rank(0);
  FakeClock clock;

  {
    obs::SpanScope outer(&rt, obs::SpanKind::kPhase, "outer", &FakeClock::now, &clock);
    clock.t = 1.0;
    {
      obs::SpanScope inner(&rt, obs::SpanKind::kPhase, "inner", &FakeClock::now, &clock);
      clock.t = 2.0;
    }  // inner closes here
    clock.t = 3.0;
  }  // outer closes here

  const auto events = rt.events();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded when they END, so inner lands first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_DOUBLE_EQ(events[0].vtime_begin, 1.0);
  EXPECT_DOUBLE_EQ(events[0].vtime_end, 2.0);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_DOUBLE_EQ(events[1].vtime_begin, 0.0);
  EXPECT_DOUBLE_EQ(events[1].vtime_end, 3.0);
}

TEST(Trace, SpanScopeMoveAndEarlyClose) {
  obs::Tracer tracer;
  tracer.prepare(1);
  obs::RankTrace& rt = tracer.rank(0);
  FakeClock clock;

  obs::SpanScope a(&rt, obs::SpanKind::kPhase, "moved", &FakeClock::now, &clock);
  obs::SpanScope b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move) — testing the moved-from state
  EXPECT_TRUE(b.active());
  clock.t = 5.0;
  b.close();
  b.close();  // idempotent
  EXPECT_FALSE(b.active());

  const auto events = rt.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "moved");
  EXPECT_DOUBLE_EQ(events[0].vtime_end, 5.0);
}

TEST(Trace, AdjacentComputeCoalesces) {
  obs::Tracer tracer;
  tracer.prepare(1);
  obs::RankTrace& rt = tracer.rank(0);

  rt.add_compute({0.0, 0.0}, {1.0, 0.0}, 100.0);
  rt.add_compute({1.0, 0.0}, {2.0, 0.0}, 50.0);   // adjacent -> merges
  rt.add_compute({5.0, 0.0}, {6.0, 0.0}, 25.0);   // gap -> new event

  const auto events = rt.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].vtime_begin, 0.0);
  EXPECT_DOUBLE_EQ(events[0].vtime_end, 2.0);
  EXPECT_DOUBLE_EQ(events[0].value, 150.0);
  EXPECT_DOUBLE_EQ(events[1].value, 25.0);
}

TEST(Trace, RingDropsOldest) {
  obs::Tracer tracer({.ring_capacity = 4});
  tracer.prepare(1);
  obs::RankTrace& rt = tracer.rank(0);
  for (int i = 0; i < 10; ++i) {
    rt.instant(obs::SpanKind::kMark, "mark", {static_cast<double>(i), 0.0}, -1, 0);
  }
  const auto events = rt.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(rt.dropped(), 6u);
  EXPECT_EQ(rt.total_recorded(), 10u);
  // Oldest-first: the surviving events are marks 6..9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].vtime_begin, 6.0 + i);
  }
}

TEST(Trace, SentBytesTalliedByPhase) {
  obs::Tracer tracer;
  tracer.prepare(1);
  obs::RankTrace& rt = tracer.rank(0);
  FakeClock clock;

  rt.tally_sent(100);  // before any phase opens
  {
    obs::SpanScope s(&rt, obs::SpanKind::kPhase, "factor", &FakeClock::now, &clock);
    rt.tally_sent(64);
    rt.tally_sent(64);
  }
  const auto& by_phase = rt.bytes_by_phase();
  ASSERT_EQ(by_phase.count("factor"), 1u);
  EXPECT_EQ(by_phase.at("factor"), 128u);
  ASSERT_EQ(by_phase.count("(no phase)"), 1u);
  EXPECT_EQ(by_phase.at("(no phase)"), 100u);
  // 64 = 2^6 -> bucket 6 twice; 100 -> bucket 7.
  EXPECT_EQ(rt.message_size_log2()[6], 2u);
  EXPECT_EQ(rt.message_size_log2()[7], 1u);
}

// -------------------------------------------------- Chrome trace export

TEST(ChromeTrace, GoldenSmallTrace) {
  obs::Tracer tracer;
  tracer.prepare(1);
  obs::RankTrace& rt = tracer.rank(0);
  rt.complete(obs::SpanKind::kSend, "send", {0.0, 0.0}, {1e-6, 0.0}, /*peer=*/1,
              /*bytes=*/64);
  rt.instant(obs::SpanKind::kRecv, "recv", {2e-6, 0.0}, /*peer=*/1, /*bytes=*/32);

  const std::string expected =
      R"({"traceEvents":[)"
      R"x({"name":"process_name","ph":"M","pid":0,"args":{"name":"ardbt mpsim (virtual clock)"}},)x"
      R"({"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}},)"
      R"({"name":"send","cat":"send","ph":"X","ts":0,"dur":1,"pid":0,"tid":0,)"
      R"("args":{"peer":1,"bytes":64,"wall_begin_s":0,"wall_end_s":0}},)"
      R"({"name":"recv","cat":"recv","ph":"i","ts":2,"s":"t","pid":0,"tid":0,)"
      R"("args":{"peer":1,"bytes":32,"wall_begin_s":0,"wall_end_s":0}})"
      R"(],"displayTimeUnit":"ms","otherData":{"clock":"virtual","dropped_events":0}})";
  EXPECT_EQ(obs::chrome_trace_json(tracer).dump(), expected);
}

// --------------------------------------------- Engine-level integration

core::DriverResult traced_solve(obs::Tracer* tracer) {
  const la::index_t n = 64;
  const la::index_t m = 4;
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  const auto b = btds::make_rhs(n, m, 4);
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.tracer = tracer;
  return core::solve(core::Method::kArd, sys, b, /*nranks=*/4, {.engine = engine});
}

TEST(TraceEngine, ChargedFlopsStreamsAreDeterministic) {
  obs::Tracer t1;
  obs::Tracer t2;
  traced_solve(&t1);
  traced_solve(&t2);

  ASSERT_EQ(t1.nranks(), 4);
  ASSERT_EQ(t2.nranks(), 4);
  for (int r = 0; r < 4; ++r) {
    const auto e1 = t1.rank(r).events();
    const auto e2 = t2.rank(r).events();
    ASSERT_FALSE(e1.empty());
    ASSERT_EQ(e1.size(), e2.size()) << "rank " << r;
    for (std::size_t i = 0; i < e1.size(); ++i) {
      EXPECT_STREQ(e1[i].name, e2[i].name);
      EXPECT_EQ(e1[i].kind, e2[i].kind);
      EXPECT_DOUBLE_EQ(e1[i].vtime_begin, e2[i].vtime_begin);
      EXPECT_DOUBLE_EQ(e1[i].vtime_end, e2[i].vtime_end);
      EXPECT_EQ(e1[i].bytes, e2[i].bytes);
      EXPECT_EQ(e1[i].peer, e2[i].peer);
      EXPECT_EQ(e1[i].depth, e2[i].depth);
    }
  }
}

TEST(TraceEngine, PhaseSpansCoverDriverPhases) {
  obs::Tracer tracer;
  const auto res = traced_solve(&tracer);
  bool saw_factor = false;
  bool saw_solve = false;
  for (const auto& e : tracer.rank(0).events()) {
    if (std::string(e.name) == "driver.factor") {
      saw_factor = true;
      EXPECT_NEAR(e.vtime_end - e.vtime_begin, res.factor_vtime, 1e-12);
    }
    if (std::string(e.name) == "driver.solve") saw_solve = true;
  }
  EXPECT_TRUE(saw_factor);
  EXPECT_TRUE(saw_solve);
}

TEST(TraceEngine, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  tracer.set_enabled(false);
  traced_solve(&tracer);
  EXPECT_EQ(tracer.nranks(), 0);  // never prepared, zero events
}

// ------------------------------------------------------------- Metrics

TEST(Metrics, RegistrySnapshot) {
  obs::MetricsRegistry reg;
  reg.counter("b.count").add(2.0);
  reg.counter("a.count").add(std::uint64_t{3});
  reg.gauge("g.level").set(0.5);
  reg.histogram("h.sizes").observe(64.0);
  reg.histogram("h.sizes").observe(100.0);

  const obs::Json snapshot = reg.to_json();
  // Keys sorted; histogram keeps only non-empty buckets.
  EXPECT_EQ(snapshot.dump(),
            R"({"counters":{"a.count":3,"b.count":2},"gauges":{"g.level":0.5},)"
            R"("histograms":{"h.sizes":{"count":2,"sum":164,)"
            R"("log2_buckets":{"6":1,"7":1}}}})");
}

// ------------------------------------------------- LatencyHistogram

TEST(Metrics, LatencyZeroAndNegativeSamplesLandInZeroBucket) {
  obs::LatencyHistogram h;
  h.observe(0.0);
  h.observe(-1.5);  // negative duration: caller bug, must not poison stats
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.zero_count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(Metrics, LatencySubBucketTinyValueClampsToMinExp) {
  obs::LatencyHistogram h;
  h.observe(1e-300);  // far below 2^kMinExp
  ASSERT_EQ(h.nonzero_buckets().size(), 1u);
  EXPECT_EQ(h.nonzero_buckets()[0].first, obs::LatencyHistogram::kMinExp);
  // The bucket's upper bound (2^-64) overshoots, so the percentile is
  // capped at the exact maximum.
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 1e-300);
}

TEST(Metrics, LatencyOverflowClampsToMaxExp) {
  obs::LatencyHistogram h;
  h.observe(1e300);
  h.observe(std::numeric_limits<double>::infinity());
  ASSERT_EQ(h.nonzero_buckets().size(), 1u);
  EXPECT_EQ(h.nonzero_buckets()[0].first, obs::LatencyHistogram::kMaxExp);
  EXPECT_EQ(h.nonzero_buckets()[0].second, 2u);
  // Percentiles report the bucket bound 2^64, not the (infinite) max.
  EXPECT_DOUBLE_EQ(h.percentile(0.50), std::ldexp(1.0, obs::LatencyHistogram::kMaxExp));
}

TEST(Metrics, LatencyNanIgnoredAndEmptyReportsZero) {
  obs::LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 0.0);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(Metrics, LatencyNearestRankPercentiles) {
  obs::LatencyHistogram h;
  // One sample per bucket: (1,2], (2,4], (4,8], (8,16].
  for (double x : {1.5, 3.0, 6.0, 12.0}) h.observe(x);
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 4.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 8.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.00), 12.0);  // bound 16 capped at max
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);    // q clamps to rank 1
}

TEST(Metrics, LatencyExactPowerOfTwoLandsInLowerBucket) {
  obs::LatencyHistogram h;
  h.observe(4.0);  // bucket e counts 2^(e-1) < x <= 2^e, so 4 -> e = 2
  ASSERT_EQ(h.nonzero_buckets().size(), 1u);
  EXPECT_EQ(h.nonzero_buckets()[0].first, 2);
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 4.0);
}

TEST(Metrics, LatencyMixedZeroAndPositiveToJson) {
  obs::LatencyHistogram h;
  h.observe(0.0);
  h.observe(1.0);
  EXPECT_EQ(h.to_json().dump(),
            R"({"count":2,"sum":1,"min":0,"max":1,"p50":0,"p90":1,"p99":1,)"
            R"("log2_buckets":{"zero":1,"0":1}})");
}

TEST(Metrics, TracerExportsMessageHistogram) {
  obs::Tracer tracer;
  tracer.prepare(2);
  tracer.rank(0).tally_sent(64);
  tracer.rank(1).tally_sent(64);
  obs::MetricsRegistry reg;
  mpsim::export_metrics(tracer, reg);
  EXPECT_EQ(reg.histogram("mpsim.message_size_bytes").total_count(), 2u);
  EXPECT_EQ(reg.counter("trace.events_recorded").value(), 0.0);
}

// ---------------------------------------------------------- Run report

TEST(RunReport, BuilderEmitsSchemaHeaderFirst) {
  obs::RunReportBuilder builder("test_tool");
  builder.config("n", 64);
  obs::Json timing = obs::Json::object();
  timing.set("wall_s", 1.5);
  builder.set_section("timing", std::move(timing));

  const obs::Json doc = builder.build();
  ASSERT_TRUE(doc.is_object());
  const auto& items = doc.items();
  ASSERT_GE(items.size(), 5u);
  EXPECT_EQ(items[0].first, "schema");
  EXPECT_EQ(items[1].first, "version");
  EXPECT_EQ(items[2].first, "tool");
  EXPECT_EQ(doc.dump(),
            R"({"schema":"ardbt.run_report","version":2,"tool":"test_tool",)"
            R"("config":{"n":64},"timing":{"wall_s":1.5}})");
}

// ----------------------------------------------------------- RankStats

TEST(RankStats, AccumulateSumsCountersAndMaxesClocks) {
  mpsim::RankStats a;
  a.msgs_sent = 3;
  a.bytes_sent = 300;
  a.flops_charged = 10.0;
  a.virtual_time = 2.0;
  a.virtual_wait = 1.0;
  mpsim::RankStats b;
  b.msgs_sent = 4;
  b.bytes_sent = 100;
  b.flops_charged = 5.0;
  b.virtual_time = 3.0;
  b.virtual_wait = 0.5;

  a.accumulate(b);
  EXPECT_EQ(a.msgs_sent, 7u);
  EXPECT_EQ(a.bytes_sent, 400u);
  EXPECT_DOUBLE_EQ(a.flops_charged, 15.0);
  EXPECT_DOUBLE_EQ(a.virtual_time, 3.0);  // max, not sum
  EXPECT_DOUBLE_EQ(a.virtual_wait, 1.0);
  EXPECT_DOUBLE_EQ(a.wait_fraction(), 1.0 / 3.0);
}

TEST(RankStats, WaitFractionIsZeroOnFreshStats) {
  mpsim::RankStats s;
  EXPECT_DOUBLE_EQ(s.wait_fraction(), 0.0);
  s.virtual_time = 2.0;
  s.virtual_wait = 0.5;
  EXPECT_DOUBLE_EQ(s.wait_fraction(), 0.25);
}

}  // namespace
