#include "src/mpsim/collectives.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "src/mpsim/engine.hpp"

namespace ardbt::mpsim {
namespace {

/// All collective tests sweep the rank count, including non-powers of two.
class Collectives : public ::testing::TestWithParam<int> {};

TEST_P(Collectives, BarrierCompletes) {
  const int p = GetParam();
  std::atomic<int> entered{0};
  run(p, [&](Comm& comm) {
    entered.fetch_add(1);
    barrier(comm);
    // After the barrier, every rank must have entered.
    EXPECT_EQ(entered.load(), comm.size());
  });
}

TEST_P(Collectives, BcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    run(p, [&](Comm& comm) {
      std::vector<double> data(4, comm.rank() == root ? 3.25 : -1.0);
      bcast(comm, data, root);
      for (double v : data) EXPECT_EQ(v, 3.25) << "root=" << root << " rank=" << comm.rank();
    });
  }
}

TEST_P(Collectives, ReduceSumsToRoot) {
  const int p = GetParam();
  const int root = p - 1;
  run(p, [&](Comm& comm) {
    std::vector<double> data{static_cast<double>(comm.rank()), 1.0};
    reduce_sum(comm, data, root);
    if (comm.rank() == root) {
      EXPECT_EQ(data[0], p * (p - 1) / 2.0);
      EXPECT_EQ(data[1], static_cast<double>(p));
    }
  });
}

TEST_P(Collectives, AllreduceSumOnAllRanks) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    std::vector<double> data{1.0, static_cast<double>(comm.rank())};
    allreduce_sum(comm, data);
    EXPECT_EQ(data[0], static_cast<double>(p));
    EXPECT_EQ(data[1], p * (p - 1) / 2.0);
  });
}

TEST_P(Collectives, AllreduceMax) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    std::vector<double> data{static_cast<double>(comm.rank()), -static_cast<double>(comm.rank())};
    allreduce_max(comm, data);
    EXPECT_EQ(data[0], static_cast<double>(p - 1));
    EXPECT_EQ(data[1], 0.0);
  });
}

TEST_P(Collectives, GatherInRankOrder) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank()) + 0.5};
    std::vector<double> out(static_cast<std::size_t>(p));
    gather(comm, mine, out, /*root=*/0);
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], r + 0.5);
    }
  });
}

TEST_P(Collectives, GathervVariableCounts) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    // Rank r contributes r+1 copies of r.
    const std::vector<double> mine(static_cast<std::size_t>(comm.rank()) + 1,
                                   static_cast<double>(comm.rank()));
    std::vector<std::int64_t> counts(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) counts[static_cast<std::size_t>(r)] = r + 1;
    const std::size_t total = static_cast<std::size_t>(p) * (p + 1) / 2;
    std::vector<double> out(total);
    gatherv(comm, mine, counts, out, /*root=*/0);
    if (comm.rank() == 0) {
      std::size_t idx = 0;
      for (int r = 0; r < p; ++r) {
        for (int c = 0; c <= r; ++c) EXPECT_EQ(out[idx++], static_cast<double>(r));
      }
    }
  });
}

TEST_P(Collectives, AllgatherEveryRankSeesAll) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank() * 10),
                                   static_cast<double>(comm.rank() * 10 + 1)};
    std::vector<double> out(static_cast<std::size_t>(2 * p));
    allgather(comm, mine, out);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(out[static_cast<std::size_t>(2 * r)], r * 10.0);
      EXPECT_EQ(out[static_cast<std::size_t>(2 * r + 1)], r * 10.0 + 1.0);
    }
  });
}

TEST_P(Collectives, ExscanSumMatchesFormula) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank() + 1)};
    const std::vector<double> result = exscan_sum(comm, mine);
    // Exclusive prefix of 1, 2, ..., P at rank r is r(r+1)/2.
    EXPECT_EQ(result[0], comm.rank() * (comm.rank() + 1) / 2.0);
  });
}

TEST_P(Collectives, InclusiveScanSumMatchesFormula) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank() + 1)};
    const std::vector<double> result = scan_sum(comm, mine);
    // Inclusive prefix of 1, 2, ..., P at rank r is (r+1)(r+2)/2.
    EXPECT_EQ(result[0], (comm.rank() + 1) * (comm.rank() + 2) / 2.0);
  });
}

TEST_P(Collectives, GenericInclusiveScanStringConcat) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    using S = std::string;
    const S mine(1, static_cast<char>('a' + comm.rank()));
    auto op = [](const S& left, const S& right) { return left + right; };
    auto ser = [](const S& s) {
      std::vector<std::byte> bytes(s.size());
      std::memcpy(bytes.data(), s.data(), s.size());
      return bytes;
    };
    auto des = [](std::span<const std::byte> bytes) {
      return S(reinterpret_cast<const char*>(bytes.data()), bytes.size());
    };
    const S result = scan(comm, mine, op, ser, des);
    S expect;
    for (int rr = 0; rr <= comm.rank(); ++rr) expect += static_cast<char>('a' + rr);
    EXPECT_EQ(result, expect);
  });
}

TEST_P(Collectives, ExscanNonCommutativeStringConcat) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    using S = std::string;
    S mine(1, static_cast<char>('a' + comm.rank()));
    auto op = [](const S& left, const S& right) { return left + right; };
    auto ser = [](const S& s) {
      std::vector<std::byte> bytes(s.size());
      std::memcpy(bytes.data(), s.data(), s.size());
      return bytes;
    };
    auto des = [](std::span<const std::byte> bytes) {
      return S(reinterpret_cast<const char*>(bytes.data()), bytes.size());
    };
    auto result = exscan(comm, std::move(mine), op, ser, des);
    if (comm.rank() == 0) {
      EXPECT_FALSE(result.has_value());
    } else {
      S expect;
      for (int r = 0; r < comm.rank(); ++r) expect += static_cast<char>('a' + r);
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(*result, expect) << "rank " << comm.rank();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, Collectives, ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13),
                         [](const auto& info) { return "P" + std::to_string(info.param); });

TEST(Comm, SendrecvExchangesPairwise) {
  run(2, [](Comm& comm) {
    const double mine[2] = {static_cast<double>(comm.rank()), 42.0};
    double theirs[2] = {};
    comm.sendrecv(1 - comm.rank(), /*tag=*/5, std::span<const double>(mine, 2),
                  std::span<double>(theirs, 2));
    EXPECT_EQ(theirs[0], static_cast<double>(1 - comm.rank()));
    EXPECT_EQ(theirs[1], 42.0);
  });
}

TEST(ExscanSchedule, RoundCountIsCeilLog2) {
  EXPECT_TRUE(exscan_schedule(0, 1).empty());
  EXPECT_EQ(exscan_schedule(0, 2).size(), 1u);
  EXPECT_EQ(exscan_schedule(0, 8).size(), 3u);
  // Non-power-of-two: some partners fall outside and are skipped.
  EXPECT_LE(exscan_schedule(4, 5).size(), 3u);
}

TEST(ExscanSchedule, PartnersAreSymmetric) {
  const int size = 13;
  // If rank a lists partner b at round k (counting per mask), b must list a.
  for (int mask = 1, round = 0; mask < size; mask <<= 1, ++round) {
    for (int a = 0; a < size; ++a) {
      const int b = a ^ mask;
      if (b >= size) continue;
      const auto sched_a = exscan_schedule(a, size);
      const auto sched_b = exscan_schedule(b, size);
      const bool a_has_b = std::any_of(sched_a.begin(), sched_a.end(),
                                       [&](const ScanStep& s) { return s.partner == b; });
      const bool b_has_a = std::any_of(sched_b.begin(), sched_b.end(),
                                       [&](const ScanStep& s) { return s.partner == a; });
      EXPECT_EQ(a_has_b, b_has_a);
      EXPECT_TRUE(a_has_b);
    }
  }
}

}  // namespace
}  // namespace ardbt::mpsim
