#include "src/btds/distributed.hpp"

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/ard.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::btds {
namespace {

using la::index_t;
using la::Matrix;

TEST(Distributed, ScatterDeliversExactSlices) {
  const index_t n = 13, m = 3;
  const BlockTridiag global = make_problem(ProblemKind::kDiagDominant, n, m);
  for (int p : {1, 2, 4, 5}) {
    const RowPartition part(n, p);
    for (int root = 0; root < p; ++root) {
      mpsim::run(p, [&](mpsim::Comm& comm) {
        const BlockTridiag* src = comm.rank() == root ? &global : nullptr;
        const LocalBlockTridiag local =
            LocalBlockTridiag::scatter(comm, src, n, m, part, root);
        EXPECT_EQ(local.local_rows(), part.count(comm.rank()));
        for (index_t i = local.lo(); i < local.hi(); ++i) {
          EXPECT_TRUE(local.diag(i) == global.diag(i));
          if (i > 0) {
            EXPECT_TRUE(local.lower(i) == global.lower(i));
          }
          if (i + 1 < n) {
            EXPECT_TRUE(local.upper(i) == global.upper(i));
          }
        }
      });
    }
  }
}

TEST(Distributed, FromSharedMatchesScatter) {
  const index_t n = 9, m = 2;
  const BlockTridiag global = make_problem(ProblemKind::kToeplitz, n, m);
  const RowPartition part(n, 3);
  mpsim::run(3, [&](mpsim::Comm& comm) {
    const BlockTridiag* src = comm.rank() == 0 ? &global : nullptr;
    const LocalBlockTridiag a = LocalBlockTridiag::scatter(comm, src, n, m, part, 0);
    const LocalBlockTridiag b = LocalBlockTridiag::from_shared(global, part, comm.rank());
    for (index_t i = a.lo(); i < a.hi(); ++i) {
      EXPECT_TRUE(a.diag(i) == b.diag(i));
    }
  });
}

TEST(Distributed, ScatterGatherRowsRoundTrip) {
  const index_t n = 11, m = 2, r = 3;
  const Matrix global = make_rhs(n, m, r);
  for (int p : {1, 3, 4}) {
    const RowPartition part(n, p);
    Matrix regathered;
    mpsim::run(p, [&](mpsim::Comm& comm) {
      const Matrix* src = comm.rank() == 0 ? &global : nullptr;
      const Matrix local = scatter_rows(comm, src, m, part, 0);
      EXPECT_EQ(local.rows(), part.count(comm.rank()) * m);
      EXPECT_EQ(local.cols(), r);
      gather_rows(comm, local, comm.rank() == 0 ? &regathered : nullptr, m, part, 0);
    });
    EXPECT_TRUE(regathered == global);
  }
}

TEST(Distributed, ArdFullyDistributedMatchesSharedPath) {
  // End-to-end message-passing-only data flow: scatter system and RHS,
  // factor from local storage, solve on local slices, gather the result.
  const index_t n = 40, m = 4, r = 5;
  const BlockTridiag global = make_problem(ProblemKind::kPoisson2D, n, m);
  const Matrix b = make_rhs(n, m, r);
  const Matrix x_shared = [&] {
    Matrix x(b.rows(), b.cols());
    const RowPartition part(n, 4);
    mpsim::run(4, [&](mpsim::Comm& comm) {
      const auto f = core::ArdFactorization::factor(comm, global, part);
      f.solve(comm, b, x);
    });
    return x;
  }();

  Matrix x_dist;
  const RowPartition part(n, 4);
  mpsim::run(4, [&](mpsim::Comm& comm) {
    const bool is_root = comm.rank() == 0;
    const LocalBlockTridiag local_sys =
        LocalBlockTridiag::scatter(comm, is_root ? &global : nullptr, n, m, part, 0);
    const Matrix local_b = scatter_rows(comm, is_root ? &b : nullptr, m, part, 0);
    const auto f = core::ArdFactorization::factor(comm, local_sys, part);
    const Matrix local_x = f.solve_local(comm, local_b);
    gather_rows(comm, local_x, is_root ? &x_dist : nullptr, m, part, 0);
  });

  ASSERT_EQ(x_dist.rows(), x_shared.rows());
  for (index_t i = 0; i < x_dist.rows(); ++i) {
    for (index_t j = 0; j < r; ++j) {
      EXPECT_NEAR(x_dist(i, j), x_shared(i, j), 1e-13);
    }
  }
  EXPECT_LT(relative_residual(global, x_dist, b), 1e-12);
}

TEST(Distributed, LocalAssemblyWithoutAnyGlobalObject) {
  // The scalable path: every rank assembles only its rows (here: the
  // Poisson stencil), no rank ever holds the global matrix.
  const index_t n = 24, m = 3, r = 2;
  const RowPartition part(n, 3);
  const Matrix b = make_rhs(n, m, r);
  Matrix x(b.rows(), b.cols());
  mpsim::run(3, [&](mpsim::Comm& comm) {
    LocalBlockTridiag local(n, m, part, comm.rank());
    for (index_t i = local.lo(); i < local.hi(); ++i) {
      for (index_t rr = 0; rr < m; ++rr) {
        local.diag(i)(rr, rr) = 4.0;
        if (rr > 0) local.diag(i)(rr, rr - 1) = -1.0;
        if (rr + 1 < m) local.diag(i)(rr, rr + 1) = -1.0;
        if (i > 0) local.lower(i)(rr, rr) = -1.0;
        if (i + 1 < n) local.upper(i)(rr, rr) = -1.0;
      }
    }
    const auto f = core::ArdFactorization::factor(comm, local, part);
    f.solve(comm, b, x);
  });
  const BlockTridiag reference = make_problem(ProblemKind::kPoisson2D, n, m);
  EXPECT_LT(relative_residual(reference, x, b), 1e-12);
}

}  // namespace
}  // namespace ardbt::btds
