#include "src/btds/reblock.hpp"

#include <gtest/gtest.h>

#include "src/btds/spmv.hpp"
#include "src/core/solver.hpp"
#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/lu.hpp"
#include "src/la/random.hpp"

namespace ardbt::btds {
namespace {

using la::index_t;
using la::Matrix;

/// Random diagonally dominant banded matrix.
BandedMatrix random_banded(index_t dim, index_t q, std::uint64_t seed) {
  BandedMatrix banded(dim, q);
  la::Rng rng = la::make_rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (index_t i = 0; i < dim; ++i) {
    double off = 0.0;
    for (index_t j = std::max<index_t>(0, i - q); j <= std::min(dim - 1, i + q); ++j) {
      if (j == i) continue;
      banded.at(i, j) = dist(rng);
      off += std::abs(banded.at(i, j));
    }
    banded.at(i, i) = 2.0 * off + 1.0;
  }
  return banded;
}

Matrix to_dense(const BandedMatrix& banded) {
  Matrix dense(banded.dim, banded.dim);
  for (index_t i = 0; i < banded.dim; ++i) {
    for (index_t j = 0; j < banded.dim; ++j) dense(i, j) = banded.at(i, j);
  }
  return dense;
}

TEST(Reblock, BandAccessors) {
  BandedMatrix banded(5, 2);
  banded.at(0, 2) = 3.0;
  banded.at(4, 2) = -1.0;
  EXPECT_EQ(banded.at(0, 2), 3.0);
  EXPECT_EQ(banded.at(4, 2), -1.0);
  // Outside the band: only the const accessor is defined there.
  EXPECT_EQ(std::as_const(banded).at(0, 4), 0.0);
}

TEST(Reblock, BlockedOperatorMatchesDense) {
  for (index_t dim : {6, 7, 11}) {  // exact multiple, remainder cases
    const index_t q = 3;
    const BandedMatrix banded = random_banded(dim, q, 5);
    const BlockTridiag t = reblock_banded(banded);
    EXPECT_EQ(t.block_size(), q);
    EXPECT_EQ(t.num_blocks(), (dim + q - 1) / q);

    // Apply both forms to the same padded vector and compare.
    la::Rng rng = la::make_rng(6);
    const Matrix x_scalar = la::random_uniform(dim, 2, rng);
    Matrix x_padded(t.dim(), 2);
    la::copy(x_scalar.view(), x_padded.block(0, 0, dim, 2));

    const Matrix b_blocked = apply(t, x_padded);
    const Matrix b_dense = la::matmul(to_dense(banded).view(), x_scalar.view());
    for (index_t i = 0; i < dim; ++i) {
      for (index_t j = 0; j < 2; ++j) {
        EXPECT_NEAR(b_blocked(i, j), b_dense(i, j), 1e-12) << "dim=" << dim;
      }
    }
  }
}

TEST(Reblock, PentadiagonalSolveViaArd) {
  // Half-bandwidth 2 (pentadiagonal), solved through the block machinery.
  const index_t dim = 50, q = 2;
  const BandedMatrix banded = random_banded(dim, q, 11);
  const BlockTridiag t = reblock_banded(banded);

  la::Rng rng = la::make_rng(12);
  const Matrix b_scalar = la::random_uniform(dim, 3, rng);
  const Matrix b = reblock_rhs(banded, b_scalar);
  const Matrix x_blocked = core::solve(core::Method::kArd, t, b, 4).x;
  const Matrix x = unblock_solution(banded, x_blocked);

  // Residual against the dense assembly.
  Matrix res = la::matmul(to_dense(banded).view(), x.view());
  la::matrix_axpy(-1.0, b_scalar.view(), res.view());
  EXPECT_LT(la::norm_fro(res.view()), 1e-10 * la::norm_fro(b_scalar.view()));
}

TEST(Reblock, WideBandHeptadiagonal) {
  const index_t dim = 41, q = 3;  // heptadiagonal, padded (41 -> 42)
  const BandedMatrix banded = random_banded(dim, q, 17);
  const BlockTridiag t = reblock_banded(banded);
  la::Rng rng = la::make_rng(18);
  const Matrix b_resized = la::random_uniform(dim, 2, rng);
  const Matrix b = reblock_rhs(banded, b_resized);
  const Matrix x_blocked = core::solve(core::Method::kArd, t, b, 3).x;
  const Matrix x = unblock_solution(banded, x_blocked);

  const la::LuFactors lu = la::lu_factor(to_dense(banded).view());
  const Matrix x_ref = la::lu_solve(lu, b_resized.view());
  for (index_t i = 0; i < dim; ++i) {
    for (index_t j = 0; j < 2; ++j) EXPECT_NEAR(x(i, j), x_ref(i, j), 1e-9);
  }
}

TEST(Reblock, TridiagonalRoundTripsAsBlocksizeOne) {
  const index_t dim = 9, q = 1;
  const BandedMatrix banded = random_banded(dim, q, 23);
  const BlockTridiag t = reblock_banded(banded);
  EXPECT_EQ(t.block_size(), 1);
  EXPECT_EQ(t.num_blocks(), 9);
  EXPECT_EQ(t.diag(4)(0, 0), banded.at(4, 4));
  EXPECT_EQ(t.lower(4)(0, 0), banded.at(4, 3));
  EXPECT_EQ(t.upper(4)(0, 0), banded.at(4, 5));
}

}  // namespace
}  // namespace ardbt::btds
