// Performance-shape regression tests. The charged-flops virtual clock is
// fully deterministic (flop counts + alpha-beta charges, no wall time),
// so the headline performance *ratios* can be pinned with real bounds —
// a regression here means someone changed the algorithm's complexity, not
// that the CI machine was slow.

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/core/flops.hpp"
#include "src/core/solver.hpp"

namespace ardbt::core {
namespace {

using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;
using la::index_t;

mpsim::EngineOptions deterministic_engine() {
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();
  return engine;
}

TEST(PerfRegression, ArdSpeedupOverPerRhsAtR256) {
  const index_t n = 512, m = 16, r = 256;
  const int p = 4;
  const auto sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const auto b = make_rhs(n, m, r);
  const auto engine = deterministic_engine();

  const auto ard = solve(Method::kArd, sys, b, p, {.engine = engine});
  const double t_ard = ard.factor_vtime + ard.solve_vtime;
  // RD-per-RHS via the exact identity R * (factor + solve(R=1)).
  const auto b1 = make_rhs(n, m, 1);
  const auto one = solve(Method::kArd, sys, b1, p, {.engine = engine});
  const double t_rd = static_cast<double>(r) * (one.factor_vtime + one.solve_vtime);

  const double speedup = t_rd / t_ard;
  // F1 pins this at ~27.5 on this shape; allow slack for model changes
  // but catch complexity regressions.
  EXPECT_GT(speedup, 15.0);
  EXPECT_LT(speedup, 60.0);
}

TEST(PerfRegression, SolvePhaseIsMuchCheaperThanFactor) {
  const index_t n = 1024, m = 32;
  const auto sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const auto b = make_rhs(n, m, 1);
  const auto res = solve(Method::kArd, sys, b, 4, {.engine = deterministic_engine()});
  // factor/solve(R=1) ~ 1.8 M ~ 57 at M=32; catch order-of-magnitude breaks.
  EXPECT_GT(res.factor_vtime / res.solve_vtime, 20.0);
  EXPECT_LT(res.factor_vtime / res.solve_vtime, 200.0);
}

TEST(PerfRegression, StrongScalingReachesConfiguredFloor) {
  const index_t n = 2048, m = 16, r = 64;
  const auto sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const auto b = make_rhs(n, m, r);
  const auto engine = deterministic_engine();
  const auto t_p2 = solve(Method::kArd, sys, b, 2, {.engine = engine});
  const auto t_p32 = solve(Method::kArd, sys, b, 32, {.engine = engine});
  const double speedup =
      (t_p2.factor_vtime + t_p2.solve_vtime) / (t_p32.factor_vtime + t_p32.solve_vtime);
  // 16x more ranks must buy at least 6x once past the serial specialization.
  EXPECT_GT(speedup, 6.0);
}

TEST(PerfRegression, PcrPaysTheLogNFactor) {
  const index_t n = 4096, m = 8, r = 16;
  const int p = 8;
  const auto sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const auto b = make_rhs(n, m, r);
  const auto engine = deterministic_engine();
  const auto ard = solve(Method::kArd, sys, b, p, {.engine = engine});
  const auto pcr = solve(Method::kPcr, sys, b, p, {.engine = engine});
  const double ratio = (pcr.factor_vtime + pcr.solve_vtime) /
                       (ard.factor_vtime + ard.solve_vtime);
  EXPECT_GT(ratio, 2.0);  // log2(4096) = 12 levels vs a constant
}

TEST(PerfRegression, VirtualTimesAreExactlyReproducible) {
  const auto sys = make_problem(ProblemKind::kToeplitz, 128, 8);
  const auto b = make_rhs(128, 8, 8);
  const auto engine = deterministic_engine();
  const auto r1 = solve(Method::kArd, sys, b, 4, {.engine = engine});
  const auto r2 = solve(Method::kArd, sys, b, 4, {.engine = engine});
  EXPECT_DOUBLE_EQ(r1.factor_vtime, r2.factor_vtime);
  EXPECT_DOUBLE_EQ(r1.solve_vtime, r2.solve_vtime);
}

}  // namespace
}  // namespace ardbt::core
