#include "src/la/matrix.hpp"

#include <gtest/gtest.h>

namespace ardbt::la {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  const Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructionZeroInitializes) {
  const Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(2, 0), 5.0);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix eye = Matrix::identity(3);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) EXPECT_EQ(eye(i, j), i == j ? 1.0 : 0.0);
  }
  const double d[] = {2.0, -3.0};
  const Matrix diag = Matrix::diagonal(std::span<const double>(d, 2));
  EXPECT_EQ(diag(0, 0), 2.0);
  EXPECT_EQ(diag(1, 1), -3.0);
  EXPECT_EQ(diag(0, 1), 0.0);
}

TEST(Matrix, ElementWrite) {
  Matrix m(2, 2);
  m(1, 0) = 7.5;
  EXPECT_EQ(m(1, 0), 7.5);
}

TEST(Matrix, FillScaleResize) {
  Matrix m(2, 3);
  m.fill(2.0);
  m.scale(-1.5);
  EXPECT_EQ(m(1, 2), -3.0);
  m.resize(4, 1);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 1);
  EXPECT_EQ(m(3, 0), 0.0);
}

TEST(Matrix, Equality) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{1.0, 2.0}};
  const Matrix c{{1.0, 3.0}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Matrix, ViewReadsAndWritesThroughToStorage) {
  Matrix m(3, 3);
  MatrixView v = m.view();
  v(1, 1) = 9.0;
  EXPECT_EQ(m(1, 1), 9.0);
  const ConstMatrixView cv = m.view();
  EXPECT_EQ(cv(1, 1), 9.0);
}

TEST(Matrix, BlockViewHasCorrectStride) {
  Matrix m(4, 4);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) m(i, j) = static_cast<double>(10 * i + j);
  }
  const ConstMatrixView blk = m.block(1, 2, 2, 2);
  EXPECT_EQ(blk.rows(), 2);
  EXPECT_EQ(blk.cols(), 2);
  EXPECT_EQ(blk.ld(), 4);
  EXPECT_FALSE(blk.contiguous());
  EXPECT_EQ(blk(0, 0), 12.0);
  EXPECT_EQ(blk(1, 1), 23.0);
}

TEST(Matrix, CopyHandlesStridedViews) {
  Matrix src(4, 4);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) src(i, j) = static_cast<double>(i + j);
  }
  Matrix dst(2, 2);
  copy(src.block(2, 1, 2, 2), dst.view());
  EXPECT_EQ(dst(0, 0), 3.0);
  EXPECT_EQ(dst(1, 1), 5.0);
}

TEST(Matrix, ToMatrixDeepCopies) {
  Matrix src{{1.0, 2.0}, {3.0, 4.0}};
  Matrix copy_m = to_matrix(src.block(0, 0, 2, 1));
  src(0, 0) = 99.0;
  EXPECT_EQ(copy_m(0, 0), 1.0);
  EXPECT_EQ(copy_m.cols(), 1);
}

TEST(Matrix, Transposed) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = transposed(a.view());
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t(0, 0), 1.0);
}

TEST(Matrix, RowSpan) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  auto row = m.view().row(1);
  EXPECT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], 3.0);
  row[1] = 8.0;
  EXPECT_EQ(m(1, 1), 8.0);
}

}  // namespace
}  // namespace ardbt::la
