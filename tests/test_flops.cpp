#include "src/core/flops.hpp"

#include <gtest/gtest.h>

#include "src/core/perfmodel.hpp"

namespace ardbt::core {
namespace {

TEST(Flops, Log2Rounds) {
  EXPECT_EQ(flops::log2_rounds(1), 0.0);
  EXPECT_EQ(flops::log2_rounds(2), 1.0);
  EXPECT_EQ(flops::log2_rounds(3), 2.0);
  EXPECT_EQ(flops::log2_rounds(8), 3.0);
  EXPECT_EQ(flops::log2_rounds(1024), 10.0);
}

TEST(Flops, RowsPerRank) {
  EXPECT_EQ(flops::rows_per_rank(100, 4), 25.0);
  EXPECT_EQ(flops::rows_per_rank(100, 3), 34.0);
}

TEST(Flops, FactorScalesCubicInM) {
  const double f8 = flops::ard_factor(1024, 8, 1);
  const double f16 = flops::ard_factor(1024, 16, 1);
  EXPECT_NEAR(f16 / f8, 8.0, 0.01);
}

TEST(Flops, SolveScalesLinearlyInR) {
  const double r16 = flops::ard_solve(1024, 8, 16, 4);
  const double r32 = flops::ard_solve(1024, 8, 32, 4);
  EXPECT_NEAR(r32 / r16, 2.0, 0.01);
}

TEST(Flops, SolveIsCheaperThanFactorByOrderM) {
  // ard_solve(R=1) / ard_factor ~ 12/(21 M): the per-RHS phase is ~M times
  // cheaper, which is what the O(R) speedup cashes in.
  const double ratio = flops::ard_solve(4096, 32, 1, 16) / flops::ard_factor(4096, 32, 16);
  EXPECT_LT(ratio, 0.1);
}

TEST(Flops, PredictedSpeedupGrowsThenSaturates) {
  const la::index_t n = 2048, m = 32;
  const int p = 16;
  double prev = 0.0;
  for (la::index_t r : {1, 2, 8, 32, 128, 512}) {
    const double s = flops::predicted_speedup(n, m, r, p);
    EXPECT_GT(s, prev);
    prev = s;
  }
  // Near-linear at small R...
  EXPECT_GT(flops::predicted_speedup(n, m, 8, p), 5.0);
  // ...but bounded by the factor/solve cost ratio at huge R.
  const double cap = flops::ard_factor(n, m, p) / flops::ard_solve(n, m, 1, p) + 1.0;
  EXPECT_LT(flops::predicted_speedup(n, m, 100000, p), cap + 1.0);
}

TEST(Flops, CommCountsGrowWithLogP) {
  EXPECT_EQ(flops::ard_factor_messages(1), 0.0);
  EXPECT_GT(flops::ard_factor_messages(16), flops::ard_factor_messages(4));
  EXPECT_GT(flops::ard_solve_bytes(8, 64, 16), flops::ard_solve_bytes(8, 64, 2));
  EXPECT_EQ(flops::ard_solve_bytes(8, 64, 1), 0.0);
}

TEST(PerfModel, StrongScalingShapeFallsThenFlattens) {
  const PerfModel model(mpsim::CostModel::cluster2014());
  const double t1 = model.rd_batched_seconds(8192, 16, 256, 1);
  const double t16 = model.rd_batched_seconds(8192, 16, 256, 16);
  const double t1024 = model.rd_batched_seconds(8192, 16, 256, 1024);
  EXPECT_GT(t1 / t16, 8.0);       // near-linear early speedup
  EXPECT_LT(t16 / t1024, 64.0);   // sublinear by P = 1024 (log P floor)
  EXPECT_LT(t1024, t16);
}

TEST(PerfModel, ArdBeatsPerRhsByRoughlyR) {
  const PerfModel model(mpsim::CostModel::cluster2014());
  const double per = model.rd_per_rhs_seconds(2048, 32, 128, 64);
  const double ard = model.ard_factor_seconds(2048, 32, 64) +
                     model.ard_solve_seconds(2048, 32, 128, 64);
  const double speedup = per / ard;
  EXPECT_GT(speedup, 20.0);
  EXPECT_LT(speedup, 128.0);
}

TEST(PerfModel, ThomasBeatsRdAtPEqualsOne) {
  const PerfModel model(mpsim::CostModel::cluster2014());
  EXPECT_LT(model.thomas_seconds(2048, 16, 64), model.rd_batched_seconds(2048, 16, 64, 1));
}

TEST(PerfModel, CalibrationReturnsPlausibleRate) {
  const mpsim::CostModel calibrated = PerfModel::calibrate(mpsim::CostModel{}, 16);
  EXPECT_GT(calibrated.flop_rate, 1e7);   // anything slower is broken
  EXPECT_LT(calibrated.flop_rate, 1e13);  // anything faster is a bug
}

}  // namespace
}  // namespace ardbt::core
