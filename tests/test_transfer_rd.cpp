#include "src/core/transfer_rd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/solver.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::core {
namespace {

using btds::BlockTridiag;
using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;
using la::Matrix;

double transfer_residual(const BlockTridiag& sys, const Matrix& b, int p, bool rescale = true) {
  const Matrix x = solve(Method::kTransferRd, sys, b, p, ArdOptions{.rescale = rescale}).x;
  return btds::relative_residual(sys, x, b);
}

TEST(TransferRd, AccurateForSmallN) {
  for (ProblemKind kind : {ProblemKind::kDiagDominant, ProblemKind::kPoisson2D,
                           ProblemKind::kToeplitz}) {
    for (int p : {1, 2, 3, 4}) {
      const BlockTridiag sys = make_problem(kind, 8, 3);
      const Matrix b = make_rhs(8, 3, 2);
      EXPECT_LT(transfer_residual(sys, b, p), 1e-10) << btds::to_string(kind) << " P=" << p;
    }
  }
}

TEST(TransferRd, ScalarBlocksStayAccurateAtLargeN) {
  // With M = 1 there is a single growing mode, no intra-block spread, so
  // the pair representation does not degrade — the classical reason
  // scalar recursive doubling is a textbook algorithm.
  const BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, 2048, 1);
  const Matrix b = make_rhs(2048, 1, 2);
  EXPECT_LT(transfer_residual(sys, b, 4), 1e-10);
}

TEST(TransferRd, BlockSpreadDegradesAccuracyWithN) {
  // The documented instability (DESIGN.md 1.2): error grows geometrically
  // in N for block systems with spread block spectra. This test pins the
  // qualitative behaviour: fine at N=8, degraded by several orders at
  // N=32, useless by N=40.
  const auto residual_at = [&](la::index_t n) {
    const BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, n, 3);
    const Matrix b = make_rhs(n, 3, 1);
    return transfer_residual(sys, b, 2);
  };
  const double r8 = residual_at(8);
  const double r32 = residual_at(32);
  EXPECT_LT(r8, 1e-12);
  EXPECT_GT(r32, r8 * 1e3);  // at least three orders lost
}

TEST(TransferRd, MatchesArdWhereStable) {
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, 12, 2);
  const Matrix b = make_rhs(12, 2, 3);
  const Matrix x_ard = solve(Method::kArd, sys, b, 3).x;
  const Matrix x_trd = solve(Method::kTransferRd, sys, b, 3).x;
  for (la::index_t i = 0; i < b.rows(); ++i) {
    for (la::index_t j = 0; j < b.cols(); ++j) EXPECT_NEAR(x_trd(i, j), x_ard(i, j), 1e-8);
  }
}

TEST(TransferRd, RescalingKeepsPrefixesFinite) {
  // Scalar Poisson transfer matrices have spectral radius ~3.7; without
  // rescaling the prefix overflows around N ~ 540 (1e308 ~ 3.7^540) and
  // the solve dies; with rescaling it stays accurate.
  const BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, 1200, 1);
  const Matrix b = make_rhs(1200, 1, 1);
  EXPECT_LT(transfer_residual(sys, b, 2, /*rescale=*/true), 1e-10);

  bool failed = false;
  try {
    const double r = transfer_residual(sys, b, 2, /*rescale=*/false);
    failed = !(r < 1e-6) || !std::isfinite(r);
  } catch (const std::runtime_error&) {
    failed = true;  // singular pivot from overflowed prefix
  }
  EXPECT_TRUE(failed) << "expected the unscaled prefix to overflow";
}

}  // namespace
}  // namespace ardbt::core
