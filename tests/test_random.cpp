#include "src/la/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/lu.hpp"

namespace ardbt::la {
namespace {

TEST(Random, DeterministicForSameSeedAndStream) {
  Rng a = make_rng(42, 3);
  Rng b = make_rng(42, 3);
  const Matrix ma = random_uniform(4, 4, a);
  const Matrix mb = random_uniform(4, 4, b);
  EXPECT_TRUE(ma == mb);
}

TEST(Random, DifferentStreamsDiffer) {
  Rng a = make_rng(42, 0);
  Rng b = make_rng(42, 1);
  const Matrix ma = random_uniform(4, 4, a);
  const Matrix mb = random_uniform(4, 4, b);
  EXPECT_FALSE(ma == mb);
}

TEST(Random, UniformRespectsBounds) {
  Rng rng = make_rng(7);
  const Matrix m = random_uniform(20, 20, rng, -0.25, 0.75);
  for (index_t i = 0; i < m.rows(); ++i) {
    for (index_t j = 0; j < m.cols(); ++j) {
      EXPECT_GE(m(i, j), -0.25);
      EXPECT_LT(m(i, j), 0.75);
    }
  }
}

TEST(Random, DiagDominantIsStrictlyDominant) {
  Rng rng = make_rng(11);
  const Matrix m = random_diag_dominant(10, rng, 1.5);
  for (index_t i = 0; i < 10; ++i) {
    double off = 0.0;
    for (index_t j = 0; j < 10; ++j) {
      if (j != i) off += std::abs(m(i, j));
    }
    EXPECT_GT(std::abs(m(i, i)), off) << "row " << i;
  }
}

TEST(Random, OrthogonalishHasUnitColumnsAndIsWellConditioned) {
  Rng rng = make_rng(13);
  const Matrix q = random_orthogonalish(8, rng);
  // Q^T Q ~ I.
  const Matrix qt = transposed(q.view());
  Matrix prod = matmul(qt.view(), q.view());
  matrix_axpy(-1.0, Matrix::identity(8).view(), prod.view());
  EXPECT_LT(norm_fro(prod.view()), 1e-10);
  EXPECT_LT(condition_inf(q.view()), 50.0);
}

}  // namespace
}  // namespace ardbt::la
