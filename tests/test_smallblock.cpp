#include "src/la/smallblock/smallblock.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/btds/thomas.hpp"
#include "src/core/solver.hpp"
#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/lu.hpp"
#include "src/la/random.hpp"
#include "src/la/workspace.hpp"
#include "src/par/pool.hpp"

namespace ardbt::la {
namespace {

/// Every dispatched block size, plus non-dispatchable controls.
constexpr index_t kDispatched[] = {2, 4, 8, 16, 32};

/// Restore the global microkernel switch no matter how a test exits.
class DisabledGuard {
 public:
  DisabledGuard() { smallblock::set_enabled(false); }
  ~DisabledGuard() { smallblock::set_enabled(true); }
};

TEST(SmallBlock, DispatchTable) {
  for (index_t m : kDispatched) EXPECT_TRUE(smallblock::dispatchable(m)) << m;
  for (index_t m : {1, 3, 5, 6, 7, 9, 15, 17, 31, 33, 64}) {
    EXPECT_FALSE(smallblock::dispatchable(m)) << m;
  }
}

/// The determinism contract: the fixed-M kernel, the generic gemm, and
/// the naive triple loop share the same per-element operation order, so
/// their results are bit-identical (max abs diff exactly zero).
TEST(SmallBlock, GemmBitIdenticalToGenericAndNaive) {
  for (index_t m : kDispatched) {
    for (index_t r : {index_t{1}, index_t{3}, m, index_t{2} * m + 1}) {
      Rng rng = make_rng(11, static_cast<std::uint64_t>(m * 1000 + r));
      const Matrix a = random_uniform(m, m, rng);
      const Matrix b = random_uniform(m, r, rng);
      const Matrix c0 = random_uniform(m, r, rng);
      for (const double beta : {0.0, 1.0, -0.25}) {
        Matrix c_fixed = c0;
        smallblock::gemm_fixed(m, 1.7, a.view(), b.view(), beta, c_fixed.view());

        Matrix c_generic = c0;
        {
          DisabledGuard off;
          gemm(1.7, a.view(), b.view(), beta, c_generic.view());
        }
        Matrix c_dispatch = c0;
        gemm(1.7, a.view(), b.view(), beta, c_dispatch.view());

        Matrix c_naive = c0;
        gemm_naive(1.7, a.view(), b.view(), beta, c_naive.view());

        // Bit-identity holds against the generic kernel (same saxpy
        // order); the naive dot-product order only agrees to rounding.
        EXPECT_TRUE(c_fixed == c_generic) << "m=" << m << " r=" << r << " beta=" << beta;
        EXPECT_TRUE(c_fixed == c_dispatch) << "m=" << m << " r=" << r << " beta=" << beta;
        double naive_diff = 0.0;
        for (index_t i = 0; i < m; ++i) {
          for (index_t j = 0; j < r; ++j) {
            naive_diff = std::max(naive_diff, std::abs(c_fixed(i, j) - c_naive(i, j)));
          }
        }
        EXPECT_LT(naive_diff, 1e-12 * static_cast<double>(m))
            << "m=" << m << " r=" << r << " beta=" << beta;
      }
    }
  }
}

TEST(SmallBlock, LuFactorAndSolveBitIdentical) {
  for (index_t m : kDispatched) {
    Rng rng = make_rng(12, static_cast<std::uint64_t>(m));
    const Matrix a = random_diag_dominant(m, rng);
    const Matrix b = random_uniform(m, 5, rng);

    LuFactors f_fixed = lu_factor(a.view());  // dispatches to the microkernel
    LuFactors f_generic;
    {
      DisabledGuard off;
      f_generic = lu_factor(a.view());
    }
    EXPECT_TRUE(f_fixed.lu == f_generic.lu) << m;
    EXPECT_EQ(f_fixed.piv, f_generic.piv) << m;
    EXPECT_EQ(f_fixed.info, f_generic.info) << m;
    EXPECT_EQ(f_fixed.min_pivot_abs, f_generic.min_pivot_abs) << m;
    EXPECT_EQ(f_fixed.max_pivot_abs, f_generic.max_pivot_abs) << m;
    EXPECT_EQ(f_fixed.growth, f_generic.growth) << m;

    Matrix x_fixed = b;
    lu_solve_inplace(f_fixed, x_fixed.view());
    Matrix x_generic = b;
    {
      DisabledGuard off;
      lu_solve_inplace(f_generic, x_generic.view());
    }
    EXPECT_TRUE(x_fixed == x_generic) << m;
  }
}

/// Zero pivots must complete with identical LAPACK-style info/diagnostics
/// on both paths (the `if (x == 0.0) continue` skips are part of the
/// contract).
TEST(SmallBlock, SingularFactorDiagnosticsMatch) {
  for (index_t m : {index_t{2}, index_t{4}}) {
    Matrix a(m, m);  // all zero -> every pivot singular
    LuFactors f_fixed = lu_factor(a.view());
    LuFactors f_generic;
    {
      DisabledGuard off;
      f_generic = lu_factor(a.view());
    }
    EXPECT_FALSE(f_fixed.ok());
    EXPECT_EQ(f_fixed.info, f_generic.info) << m;
    EXPECT_TRUE(f_fixed.lu == f_generic.lu) << m;
  }
}

TEST(SmallBlock, BatchedEntryPointsMatchPerItemCalls) {
  for (index_t m : {index_t{4}, index_t{6}}) {  // one dispatched, one fallback
    Rng rng = make_rng(13, static_cast<std::uint64_t>(m));
    const index_t count = 7;
    std::vector<Matrix> as, bs, cs_batched, cs_ref;
    for (index_t i = 0; i < count; ++i) {
      as.push_back(random_diag_dominant(m, rng));
      bs.push_back(random_uniform(m, 3, rng));
      cs_batched.push_back(random_uniform(m, 3, rng));
      cs_ref.push_back(cs_batched.back());
    }

    std::vector<smallblock::GemmItem> items;
    for (index_t i = 0; i < count; ++i) {
      items.push_back({as[static_cast<std::size_t>(i)].view(),
                       bs[static_cast<std::size_t>(i)].view(),
                       cs_batched[static_cast<std::size_t>(i)].view()});
    }
    smallblock::batched_gemm(m, -1.0, items, 1.0);
    {
      DisabledGuard off;
      for (index_t i = 0; i < count; ++i) {
        gemm(-1.0, as[static_cast<std::size_t>(i)].view(),
             bs[static_cast<std::size_t>(i)].view(), 1.0,
             cs_ref[static_cast<std::size_t>(i)].view());
      }
    }
    for (index_t i = 0; i < count; ++i) {
      EXPECT_TRUE(cs_batched[static_cast<std::size_t>(i)] == cs_ref[static_cast<std::size_t>(i)])
          << "m=" << m << " i=" << i;
    }

    std::vector<ConstMatrixView> views;
    for (const Matrix& a : as) views.push_back(a.view());
    std::vector<LuFactors> lus;
    smallblock::batched_lu_factor(m, views, lus);
    ASSERT_EQ(lus.size(), static_cast<std::size_t>(count));

    std::vector<Matrix> xs_batched, xs_ref;
    for (index_t i = 0; i < count; ++i) {
      xs_batched.push_back(bs[static_cast<std::size_t>(i)]);
      xs_ref.push_back(bs[static_cast<std::size_t>(i)]);
    }
    std::vector<smallblock::LuSolveItem> solves;
    for (index_t i = 0; i < count; ++i) {
      solves.push_back(
          {&lus[static_cast<std::size_t>(i)], xs_batched[static_cast<std::size_t>(i)].view()});
    }
    smallblock::batched_lu_solve(m, solves);
    {
      DisabledGuard off;
      for (index_t i = 0; i < count; ++i) {
        LuFactors ref = lu_factor(as[static_cast<std::size_t>(i)].view());
        EXPECT_TRUE(ref.lu == lus[static_cast<std::size_t>(i)].lu) << "m=" << m << " i=" << i;
        lu_solve_inplace(ref, xs_ref[static_cast<std::size_t>(i)].view());
      }
    }
    for (index_t i = 0; i < count; ++i) {
      EXPECT_TRUE(xs_batched[static_cast<std::size_t>(i)] == xs_ref[static_cast<std::size_t>(i)])
          << "m=" << m << " i=" << i;
    }
  }
}

/// Thomas solve must be bit-identical with the microkernel sweep on and
/// off, with an arena and without, and for any pool size.
TEST(SmallBlock, ThomasSolveBitIdenticalAcrossPaths) {
  for (index_t m : {index_t{4}, index_t{8}}) {
    const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, 12, m);
    const la::Matrix b = btds::make_rhs(12, m, 6, 3);
    const auto f = btds::ThomasFactorization::factor(sys);

    const Matrix x_fixed = f.solve(b);
    Matrix x_generic;
    {
      DisabledGuard off;
      x_generic = f.solve(b);
    }
    EXPECT_TRUE(x_fixed == x_generic) << m;

    Workspace ws;
    const Matrix x_ws = f.solve(b, nullptr, &ws);
    EXPECT_TRUE(x_fixed == x_ws) << m;

    par::Pool pool(8);  // more lanes than the 6 RHS columns
    const Matrix x_pool = f.solve(b, &pool);
    EXPECT_TRUE(x_fixed == x_pool) << m;
  }
}

// --- degenerate shapes ------------------------------------------------

TEST(SmallBlock, ScalarBlocksSolveCorrectly) {  // M=1 never dispatches
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, 16, 1);
  const la::Matrix b = btds::make_rhs(16, 1, 3, 5);
  const Matrix x = btds::thomas_solve(sys, b);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-12);

  core::Session session(core::Method::kArd, sys, 4);
  const Matrix x_ard = session.solve(b);
  EXPECT_LT(btds::relative_residual(sys, x_ard, b), 1e-10);
}

TEST(SmallBlock, SingleRhsColumn) {  // R=1 panels
  const auto sys = btds::make_problem(btds::ProblemKind::kPoisson2D, 9, 4);
  const la::Matrix b = btds::make_rhs(9, 4, 1, 7);
  const auto f = btds::ThomasFactorization::factor(sys);
  const Matrix x = f.solve(b);
  Matrix x_generic;
  {
    DisabledGuard off;
    x_generic = f.solve(b);
  }
  EXPECT_TRUE(x == x_generic);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-12);
}

TEST(SmallBlock, PoolRangeSmallerThanThreads) {
  par::Pool pool(8);
  std::vector<int> hits(3, 0);
  pool.parallel_for(
      0, 3, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) hits[static_cast<std::size_t>(i)]++;
      },
      "test.small_range");
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(SmallBlock, EmptyParallelForRange) {
  par::Pool pool(4);
  bool called = false;
  pool.parallel_for(0, 0, [&](std::int64_t, std::int64_t) { called = true; }, "test.empty");
  EXPECT_FALSE(called);
}

// --- workspace arena --------------------------------------------------

TEST(SmallBlock, WorkspaceRecyclesSlabs) {
  Workspace ws;
  Matrix a = ws.acquire(8, 8);
  EXPECT_EQ(a.rows(), 8);
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 8; ++j) EXPECT_EQ(a(i, j), 0.0);  // acquire zero-fills
  }
  a(0, 0) = 42.0;
  ws.release(std::move(a));
  EXPECT_EQ(ws.stats().slab_allocs, 1u);
  EXPECT_EQ(ws.pooled_buffers(), 1u);

  // Same shape -> the pooled slab is reused, zeroed again.
  Matrix b = ws.acquire(8, 8);
  EXPECT_EQ(b(0, 0), 0.0);
  EXPECT_EQ(ws.stats().slab_allocs, 1u);
  // A smaller request also fits the pooled capacity.
  ws.release(std::move(b));
  Matrix c = ws.acquire(4, 4);
  EXPECT_EQ(ws.stats().slab_allocs, 1u);
  ws.release(std::move(c));
  // A larger one does not.
  Matrix d = ws.acquire(16, 16);
  EXPECT_EQ(ws.stats().slab_allocs, 2u);
  ws.release(std::move(d));
  EXPECT_EQ(ws.stats().acquires, 4u);
  EXPECT_EQ(ws.stats().releases, 4u);
  EXPECT_GT(ws.stats().high_water_bytes, 0u);
}

TEST(SmallBlock, NullWorkspaceHelpersFallBackToPlainMatrices) {
  Matrix a = ws_acquire(nullptr, 3, 4);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  ws_release(nullptr, std::move(a));  // must be a safe no-op
}

}  // namespace
}  // namespace ardbt::la
