#include "src/core/scan.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/ops_affine.hpp"
#include "src/la/gemm.hpp"
#include "src/la/random.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::core {
namespace {

using la::index_t;
using la::Matrix;

/// Reference: sequential affine recurrence v_i = F_i v_{i-1} + g_i over
/// all elements, returning v at every position.
std::vector<Matrix> reference_affine(const std::vector<Matrix>& f, const std::vector<Matrix>& g) {
  std::vector<Matrix> v(f.size());
  Matrix prev(g[0].rows(), g[0].cols());  // v_{-1} = 0
  for (std::size_t i = 0; i < f.size(); ++i) {
    v[i] = g[i];
    la::gemm(1.0, f[i].view(), prev.view(), 1.0, v[i].view());
    prev = v[i];
  }
  return v;
}

/// Sweep the cached affine scan over rank counts and directions: factor
/// once, replay with two different RHS widths, compare the incoming
/// prefix vectors against the sequential recurrence.
class CachedAffine : public ::testing::TestWithParam<std::tuple<int, ScanDirection>> {};

TEST_P(CachedAffine, MatchesSequentialRecurrence) {
  const auto [p, dir] = GetParam();
  const index_t m = 3;
  const index_t elems_per_rank = 4;
  const index_t total = p * elems_per_rank;

  // Global element data, contraction-scaled to keep things tame.
  std::vector<Matrix> f_elems, g_elems_r2, g_elems_r5;
  la::Rng rng = la::make_rng(77);
  for (index_t i = 0; i < total; ++i) {
    Matrix f = la::random_uniform(m, m, rng, -0.4, 0.4);
    f_elems.push_back(std::move(f));
    g_elems_r2.push_back(la::random_uniform(m, 2, rng));
    g_elems_r5.push_back(la::random_uniform(m, 5, rng));
  }

  // The scan is over SEQUENCE positions; for a backward scan the element
  // order within the recurrence runs from the last rank to the first.
  auto seq_rank = [&](int rank) {
    return dir == ScanDirection::kForward ? rank : p - 1 - rank;
  };

  // seg matrix for sequence position s: product of its elements (later
  // element leftmost).
  auto seg_matrix = [&](int s) {
    Matrix seg = Matrix::identity(m);
    for (index_t k = 0; k < elems_per_rank; ++k) {
      const Matrix& f = f_elems[static_cast<std::size_t>(s * elems_per_rank + k)];
      Matrix next(m, m);
      la::gemm(1.0, f.view(), seg.view(), 0.0, next.view());
      seg = std::move(next);
    }
    return seg;
  };
  auto seg_vector = [&](int s, const std::vector<Matrix>& g_elems) {
    Matrix v(m, g_elems[0].cols());
    for (index_t k = 0; k < elems_per_rank; ++k) {
      const std::size_t idx = static_cast<std::size_t>(s * elems_per_rank + k);
      Matrix next = g_elems[idx];
      la::gemm(1.0, f_elems[idx].view(), v.view(), 1.0, next.view());
      v = std::move(next);
    }
    return v;
  };

  const std::vector<Matrix> ref2 = reference_affine(f_elems, g_elems_r2);
  const std::vector<Matrix> ref5 = reference_affine(f_elems, g_elems_r5);

  mpsim::run(p, [&](mpsim::Comm& comm) {
    const int s = seq_rank(comm.rank());
    const auto scan = CachedScan<AffineOp>::factor(comm, dir, AffineOp::Context{m},
                                                   seg_matrix(s), /*tag=*/11);
    for (const auto* gset : {&g_elems_r2, &g_elems_r5}) {
      const auto& ref = gset == &g_elems_r2 ? ref2 : ref5;
      const auto incoming = scan.solve(comm, seg_vector(s, *gset), /*tag=*/12);
      if (s == 0) {
        EXPECT_FALSE(incoming.has_value());
      } else {
        ASSERT_TRUE(incoming.has_value());
        // Incoming equals v at the last element of the previous segment.
        const Matrix& expect = ref[static_cast<std::size_t>(s * elems_per_rank - 1)];
        for (index_t i = 0; i < m; ++i) {
          for (index_t j = 0; j < expect.cols(); ++j) {
            EXPECT_NEAR((*incoming)(i, j), expect(i, j), 1e-11)
                << "rank " << comm.rank() << " seq " << s;
          }
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CachedAffine,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values(ScanDirection::kForward, ScanDirection::kBackward)),
    [](const auto& info) {
      return std::string("P") + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == ScanDirection::kForward ? "_fwd" : "_bwd");
    });

TEST(CachedAffine, IncomingMatIsPrefixProduct) {
  const index_t m = 2;
  mpsim::run(3, [&](mpsim::Comm& comm) {
    // Segment matrix of rank r is diag(r + 2).
    Matrix seg = Matrix::identity(m);
    seg.scale(static_cast<double>(comm.rank() + 2));
    const auto scan = CachedScan<AffineOp>::factor(comm, ScanDirection::kForward,
                                                   AffineOp::Context{m}, std::move(seg), 21);
    if (comm.rank() == 0) {
      EXPECT_FALSE(scan.has_incoming());
    } else {
      double expect = 1.0;
      for (int r = 0; r < comm.rank(); ++r) expect *= static_cast<double>(r + 2);
      EXPECT_TRUE(scan.has_incoming());
      EXPECT_NEAR(scan.incoming_mat()(0, 0), expect, 1e-12);
      EXPECT_NEAR(scan.incoming_mat()(1, 0), 0.0, 1e-12);
    }
  });
}

}  // namespace
}  // namespace ardbt::core
