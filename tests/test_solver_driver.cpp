#include "src/core/solver.hpp"

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/flops.hpp"

namespace ardbt::core {
namespace {

using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;

TEST(Driver, MethodNames) {
  EXPECT_EQ(to_string(Method::kRdBatched), "rd");
  EXPECT_EQ(to_string(Method::kRdPerRhs), "rd-per-rhs");
  EXPECT_EQ(to_string(Method::kArd), "ard");
  EXPECT_EQ(to_string(Method::kTransferRd), "transfer-rd");
  EXPECT_EQ(to_string(Method::kPcr), "pcr");
}

TEST(Driver, AllMethodsSolve) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 16, 3);
  const auto b = make_rhs(16, 3, 2);
  for (Method method : {Method::kRdBatched, Method::kRdPerRhs, Method::kArd,
                        Method::kTransferRd, Method::kPcr}) {
    const DriverResult res = solve(method, sys, b, 4);
    EXPECT_LT(btds::relative_residual(sys, res.x, b), 1e-9) << to_string(method);
    EXPECT_GE(res.solve_vtime, 0.0);
  }
}

TEST(Driver, ArdReportsBothPhases) {
  const auto sys = make_problem(ProblemKind::kPoisson2D, 32, 4);
  const auto b = make_rhs(32, 4, 8);
  const DriverResult res = solve(Method::kArd, sys, b, 4);
  EXPECT_GT(res.factor_vtime, 0.0);
  EXPECT_GT(res.solve_vtime, 0.0);
}

TEST(Driver, ChargedFlopsModeGivesDeterministicVirtualTime) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 16, 2);
  const auto b = make_rhs(16, 2, 2);
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  const DriverResult a = solve(Method::kArd, sys, b, 4, {}, engine);
  const DriverResult c = solve(Method::kArd, sys, b, 4, {}, engine);
  EXPECT_DOUBLE_EQ(a.report.max_virtual_time(), c.report.max_virtual_time());
  EXPECT_GT(a.report.max_virtual_time(), 0.0);
}

TEST(Driver, SessionSolvesEveryBatch) {
  const auto sys = make_problem(ProblemKind::kConvectionDiffusion, 20, 3);
  const auto b1 = make_rhs(20, 3, 1, 1);
  const auto b2 = make_rhs(20, 3, 6, 2);
  const auto b3 = make_rhs(20, 3, 2, 3);
  const SessionResult session = ard_session(sys, {&b1, &b2, &b3}, 3);
  ASSERT_EQ(session.x.size(), 3u);
  ASSERT_EQ(session.solve_vtimes.size(), 3u);
  EXPECT_LT(btds::relative_residual(sys, session.x[0], b1), 1e-10);
  EXPECT_LT(btds::relative_residual(sys, session.x[1], b2), 1e-10);
  EXPECT_LT(btds::relative_residual(sys, session.x[2], b3), 1e-10);
  EXPECT_GT(session.factor_vtime, 0.0);
  EXPECT_GT(session.storage_bytes, 0u);
}

TEST(Driver, SessionRejectsNullBatch) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 8, 2);
  EXPECT_THROW(ard_session(sys, {nullptr}, 2), fault::InvalidArgumentError);
  try {
    ard_session(sys, {nullptr}, 2);
    FAIL() << "null batch must throw";
  } catch (const fault::SolveError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kInvalidArgument);
  }
}

TEST(Driver, PerRhsChargesMoreFlopsThanArd) {
  // The heart of the paper: per-RHS recursive doubling re-does the
  // factor-phase flops for every right-hand side.
  const auto sys = make_problem(ProblemKind::kDiagDominant, 32, 4);
  const auto b = make_rhs(32, 4, 8);
  const DriverResult per = solve(Method::kRdPerRhs, sys, b, 4);
  const DriverResult ard = solve(Method::kArd, sys, b, 4);
  const double per_flops = per.report.totals().flops_charged;
  const double ard_flops = ard.report.totals().flops_charged;
  EXPECT_GT(per_flops, 3.0 * ard_flops);
}

}  // namespace
}  // namespace ardbt::core
