#include "src/mpsim/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace ardbt::mpsim {
namespace {

TEST(Engine, RunsAllRanks) {
  std::atomic<int> count{0};
  const RunReport report = run(5, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 5);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 5);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 5);
  EXPECT_EQ(report.ranks.size(), 5u);
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(Engine, RejectsNonPositiveRankCount) {
  EXPECT_THROW(run(0, [](Comm&) {}), std::invalid_argument);
}

TEST(Engine, PointToPointDeliversPayload) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const double data[] = {1.5, 2.5, 3.5};
      comm.send(1, /*tag=*/7, std::span<const double>(data, 3));
    } else {
      std::vector<double> buf(3);
      comm.recv_into(0, 7, std::span<double>(buf));
      EXPECT_EQ(buf[0], 1.5);
      EXPECT_EQ(buf[2], 3.5);
    }
  });
}

TEST(Engine, TypedValueRoundTrip) {
  run(2, [](Comm& comm) {
    struct Payload {
      int a;
      double b;
    };
    if (comm.rank() == 0) {
      comm.send_value(1, 1, Payload{42, 2.5});
    } else {
      const auto p = comm.recv_value<Payload>(0, 1);
      EXPECT_EQ(p.a, 42);
      EXPECT_EQ(p.b, 2.5);
    }
  });
}

TEST(Engine, FifoOrderPerSourceAndTag) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send_value(1, 3, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(comm.recv_value<int>(0, 3), i);
    }
  });
}

TEST(Engine, TagsMatchIndependently) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, /*tag=*/1, 100);
      comm.send_value(1, /*tag=*/2, 200);
    } else {
      // Receive in the opposite order of sending: tag matching must pick
      // the right message regardless of queue position.
      EXPECT_EQ(comm.recv_value<int>(0, 2), 200);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 100);
    }
  });
}

TEST(Engine, SelfSendWorks) {
  run(1, [](Comm& comm) {
    comm.send_value(0, 5, 3.25);
    EXPECT_EQ(comm.recv_value<double>(0, 5), 3.25);
  });
}

TEST(Engine, ExceptionPropagatesAndUnblocksPeers) {
  EXPECT_THROW(run(3,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       throw std::runtime_error("rank 0 boom");
                     }
                     // Ranks 1, 2 block forever waiting for a message that
                     // never comes; the abort must wake them.
                     (void)comm.recv_bytes((comm.rank() + 1) % 3, 9);
                   }),
               std::runtime_error);
}

TEST(Engine, StatsCountMessagesAndBytes) {
  const RunReport report = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const double data[16] = {};
      comm.send(1, 1, std::span<const double>(data, 16));
    } else {
      std::vector<double> buf(16);
      comm.recv_into(0, 1, std::span<double>(buf));
    }
  });
  EXPECT_EQ(report.ranks[0].msgs_sent, 1u);
  EXPECT_EQ(report.ranks[0].bytes_sent, 16u * 8u);
  EXPECT_EQ(report.ranks[1].msgs_received, 1u);
  EXPECT_EQ(report.ranks[1].bytes_received, 16u * 8u);
}

TEST(Engine, ChargedFlopsModeIsDeterministic) {
  EngineOptions options;
  options.timing = TimingMode::ChargedFlops;
  options.cost.flop_rate = 1e9;
  options.cost.alpha = 1e-6;
  options.cost.beta = 1e-9;

  auto body = [](Comm& comm) {
    comm.charge_flops(2e9);  // 2 virtual seconds of compute
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 1);
    } else {
      (void)comm.recv_value<int>(0, 1);
    }
  };
  const RunReport r1 = run(2, body, options);
  const RunReport r2 = run(2, body, options);
  EXPECT_DOUBLE_EQ(r1.ranks[0].virtual_time, r2.ranks[0].virtual_time);
  EXPECT_DOUBLE_EQ(r1.ranks[1].virtual_time, r2.ranks[1].virtual_time);
  // Rank 0: 2 s compute + alpha send overhead.
  EXPECT_NEAR(r1.ranks[0].virtual_time, 2.0 + 1e-6, 1e-12);
  // Rank 1: its own 2 s dominate the message availability (2 s + alpha +
  // 4 bytes * beta), so no wait is added beyond its own clock.
  EXPECT_NEAR(r1.ranks[1].virtual_time, 2.0 + 1e-6 + 4e-9, 1e-9);
}

TEST(Engine, VirtualWaitChargedWhenReceiverIsEarly) {
  EngineOptions options;
  options.timing = TimingMode::ChargedFlops;
  options.cost.flop_rate = 1e9;
  options.cost.alpha = 0.5;  // exaggerated latency
  options.cost.beta = 0.0;

  const RunReport report = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.charge_flops(1e9);  // sender works 1 virtual second first
      comm.send_value(1, 1, 1);
    } else {
      (void)comm.recv_value<int>(0, 1);  // receiver posts at t = 0
    }
  }, options);
  // Message available at 1.0 + 0.5; receiver waited that long.
  EXPECT_NEAR(report.ranks[1].virtual_time, 1.5, 1e-9);
  EXPECT_NEAR(report.ranks[1].virtual_wait, 1.5, 1e-9);
}

TEST(Engine, MeasuredCpuModeAccumulatesCpuSeconds) {
  const RunReport report = run(1, [](Comm& comm) {
    // Busy-loop in chunks until the thread CPU clock registers progress;
    // some kernels tick it as coarsely as 10 ms.
    volatile double sink = 0.0;
    for (int chunk = 0; chunk < 100 && comm.vtime() == 0.0; ++chunk) {
      for (int i = 0; i < 4000000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
      comm.sync_compute();
    }
    EXPECT_GT(comm.vtime(), 0.0);
  });
  EXPECT_GT(report.ranks[0].cpu_seconds, 0.0);
  EXPECT_NEAR(report.ranks[0].virtual_time, report.ranks[0].cpu_seconds, 1e-6);
}

TEST(Engine, TotalsAggregate) {
  const RunReport report = run(3, [](Comm& comm) {
    comm.charge_flops(100.0);
    if (comm.rank() > 0) comm.send_value(0, 1, comm.rank());
    if (comm.rank() == 0) {
      (void)comm.recv_value<int>(1, 1);
      (void)comm.recv_value<int>(2, 1);
    }
  });
  const RankStats totals = report.totals();
  EXPECT_EQ(totals.msgs_sent, 2u);
  EXPECT_EQ(totals.msgs_received, 2u);
  EXPECT_DOUBLE_EQ(totals.flops_charged, 300.0);
  EXPECT_EQ(report.max_virtual_time(),
            std::max({report.ranks[0].virtual_time, report.ranks[1].virtual_time,
                      report.ranks[2].virtual_time}));
}

TEST(CostModel, MessageTimeAndProfiles) {
  CostModel m;
  m.alpha = 1e-6;
  m.beta = 1e-9;
  EXPECT_DOUBLE_EQ(m.message_time(1000), 1e-6 + 1e-6);
  EXPECT_GT(CostModel::cluster2014().flop_rate, 0.0);
  EXPECT_GT(CostModel::slow_ethernet().alpha, CostModel::cluster2014().alpha);
  EXPECT_EQ(CostModel::free_comm().alpha, 0.0);
}

}  // namespace
}  // namespace ardbt::mpsim
