// Tests for the latency-hiding scan pipeline (docs/PARALLELISM.md,
// "Latency-hiding pipeline"): the bit-identity contract of overlap /
// chunked RHS panels across thread counts, the hierarchical-lanes local
// reduction, the attribution-visible effect of overlap on a comm-bound
// run, and the dynamic-tag registry the pipeline's concurrent scans lean
// on (regression: tag uniqueness used to be a comment, not a check).

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/ard.hpp"
#include "src/core/solver.hpp"
#include "src/fault/status.hpp"
#include "src/mpsim/comm.hpp"
#include "src/mpsim/engine.hpp"
#include "src/obs/attribution.hpp"
#include "src/obs/trace.hpp"

namespace ardbt {
namespace {

using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;
using la::index_t;

mpsim::EngineOptions charged_engine(int threads = 1) {
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();
  engine.threads_per_rank = threads;
  return engine;
}

// 0.0 iff the two matrices agree bit-for-bit (same shape, all cells ==).
double max_abs_diff(const la::Matrix& a, const la::Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double d = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      d = std::max(d, std::abs(a(i, j) - b(i, j)));
  return d;
}

la::Matrix pipeline_solve(const btds::BlockTridiag& sys, const la::Matrix& b, int p,
                          bool overlap, index_t chunk, int lanes, int threads) {
  core::ArdOptions opts;
  opts.pipeline.overlap = overlap;
  opts.pipeline.chunk_cols = chunk;
  opts.pipeline.lanes = lanes;
  return core::solve(core::Method::kArd, sys, b, p,
                     {.ard = opts, .engine = charged_engine(threads)})
      .x;
}

// Tentpole contract: overlap and panel chunking never change a single
// bit of the solution, for any thread count and any chunk size — the
// merge reorder touches independent operand pairs only and lane-parallel
// Thomas solves have column-independent FP sequences.
TEST(Pipeline, BitIdentityAcrossOverlapChunkThreads) {
  const index_t n = 96, m = 4, r = 6;
  const int p = 4;
  const auto sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const auto b = make_rhs(n, m, r);

  const la::Matrix base = pipeline_solve(sys, b, p, false, 0, 1, 1);
  EXPECT_LT(btds::relative_residual(sys, base, b), 1e-12);

  for (const bool overlap : {false, true})
    for (const int threads : {1, 3})
      for (const index_t chunk : {index_t{1}, index_t{0}, r}) {
        const la::Matrix x = pipeline_solve(sys, b, p, overlap, chunk, 1, threads);
        EXPECT_EQ(max_abs_diff(base, x), 0.0)
            << "overlap=" << overlap << " threads=" << threads << " chunk=" << chunk;
      }

  // Serial specialization (P=1) takes the same panel path and must agree too.
  const la::Matrix s_base = pipeline_solve(sys, b, 1, false, 0, 1, 1);
  const la::Matrix s_pipe = pipeline_solve(sys, b, 1, true, 2, 1, 1);
  EXPECT_EQ(max_abs_diff(s_base, s_pipe), 0.0);
}

// Hierarchical lanes re-associate the local reduction, so they are only
// numerically equivalent to the flat path — but for a FIXED lane count
// the solution must be bit-identical across overlap, chunking, and
// thread counts (lane bounds are pure in (nloc, lanes)).
TEST(Pipeline, HierarchicalLanesResidualAndFixedLaneBitIdentity) {
  const index_t n = 96, m = 4, r = 6;
  const int p = 4, lanes = 3;
  const auto sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const auto b = make_rhs(n, m, r);

  const la::Matrix base = pipeline_solve(sys, b, p, false, 0, lanes, 1);
  EXPECT_LT(btds::relative_residual(sys, base, b), 1e-12);

  for (const bool overlap : {false, true})
    for (const int threads : {1, 3})
      for (const index_t chunk : {index_t{1}, index_t{0}, r}) {
        const la::Matrix x = pipeline_solve(sys, b, p, overlap, chunk, lanes, threads);
        EXPECT_EQ(max_abs_diff(base, x), 0.0)
            << "overlap=" << overlap << " threads=" << threads << " chunk=" << chunk;
      }
}

// Regression (uneven partitions): solve_local used to dispatch on the
// rank-local hierarchical() flag, so with lanes > 1 and P <= N < 2P the
// single-row ranks replayed the cross-rank scans with the fixed
// kFwdSolve/kBwdSolve tags while multi-row ranks used dynamic panel tags
// — each side waited on a tag its partner never sent and solve() hung.
// The dispatch is options-only now: the mixed fleet must complete, solve
// accurately, and stay bit-identical across the other pipeline knobs.
TEST(Pipeline, UnevenPartitionWithLanesDoesNotDeadlock) {
  const index_t n = 5, m = 3, r = 4;
  const int p = 4;  // rows split {2,1,1,1}: only rank 0 builds lanes
  const auto sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const auto b = make_rhs(n, m, r);

  const la::Matrix base = pipeline_solve(sys, b, p, false, 0, 2, 1);
  EXPECT_LT(btds::relative_residual(sys, base, b), 1e-12);

  for (const bool overlap : {false, true})
    for (const index_t chunk : {index_t{0}, index_t{2}}) {
      const la::Matrix x = pipeline_solve(sys, b, p, overlap, chunk, 2, 1);
      EXPECT_EQ(max_abs_diff(base, x), 0.0) << "overlap=" << overlap << " chunk=" << chunk;
    }
}

struct OverlapRun {
  obs::Attribution attr;
  double solve_vtime = 0.0;
};

OverlapRun comm_bound_run(bool overlap) {
  const index_t n = 64, m = 8, r = 32;
  const int p = 8;
  const auto sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const auto b = make_rhs(n, m, r);

  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  // Bandwidth-bound model: the beta * bytes term dominates, so chunked
  // panels have something worth hiding behind panel compute.
  engine.cost = {.alpha = 2e-6, .beta = 2e-8, .flop_rate = 2e9, .name = "comm_bound"};
  obs::Tracer tracer;
  engine.tracer = &tracer;

  core::ArdOptions opts;
  opts.pipeline.overlap = overlap;
  opts.pipeline.chunk_cols = 8;
  const auto res = core::solve(core::Method::kArd, sys, b, p, {.ard = opts, .engine = engine});
  EXPECT_LT(btds::relative_residual(sys, res.x, b), 1e-12);
  return {obs::analyze(tracer), res.solve_vtime};
}

// Overlap must be visible to the attribution layer: on a comm-bound run
// the critical path's blocked time (wait + in-flight comm) strictly
// shrinks, and the solve makespan with it. Compute on the path does not
// grow — overlap hides waits, it does not add work.
TEST(Pipeline, AttributionBlockedTimeShrinksWithOverlap) {
  const OverlapRun off = comm_bound_run(false);
  const OverlapRun on = comm_bound_run(true);

  EXPECT_LT(on.solve_vtime, off.solve_vtime);
  EXPECT_LT(on.attr.makespan_s, off.attr.makespan_s);
  const double blocked_off = off.attr.critical_path.wait_s + off.attr.critical_path.comm_s;
  const double blocked_on = on.attr.critical_path.wait_s + on.attr.critical_path.comm_s;
  EXPECT_LT(blocked_on, blocked_off);
}

// Regression (tag registry): CachedScan used to document tag uniqueness
// in a comment only; a colliding tag silently cross-matched messages.
// Claiming a tag that is already in flight must now raise the typed
// error on every rank, before anything is posted.
TEST(TagAllocator, CollisionRaisesTypedError) {
  const index_t n = 16, m = 2;
  const int p = 2;
  const auto sys = make_problem(ProblemKind::kDiagDominant, n, m);
  std::atomic<int> caught{0};
  std::atomic<int> missed{0};

  mpsim::run(
      p,
      [&](mpsim::Comm& comm) {
        mpsim::TagGuard hold(comm, core::ard_tags::kFwdFactor);
        try {
          (void)core::ArdFactorization::factor(comm, sys, btds::RowPartition(n, p));
          ++missed;
        } catch (const fault::TagCollisionError& e) {
          if (e.code() == fault::ErrorCode::kTagCollision &&
              e.tag() == core::ard_tags::kFwdFactor)
            ++caught;
        }
      },
      charged_engine());

  EXPECT_EQ(caught.load(), p);
  EXPECT_EQ(missed.load(), 0);
}

// next_tag() hands out tags from the dynamic range and never one that is
// currently held, so concurrent panel replays get distinct wire tags.
TEST(TagAllocator, NextTagSkipsHeldTags) {
  mpsim::run(
      1,
      [&](mpsim::Comm& comm) {
        const int t0 = comm.next_tag();
        if (t0 < mpsim::Comm::kDynamicTagBase)
          throw std::logic_error("next_tag below the dynamic range");
        if (comm.next_tag() != t0)
          throw std::logic_error("next_tag claimed the tag it suggested");
        mpsim::TagGuard g0(comm, t0);
        const int t1 = comm.next_tag();
        if (t1 == t0) throw std::logic_error("next_tag returned a held tag");
        bool collided = false;
        try {
          comm.register_tag(t0);
        } catch (const fault::TagCollisionError&) {
          collided = true;
        }
        if (!collided) throw std::logic_error("re-registering a held tag did not throw");
        {
          mpsim::TagGuard g1(comm, t1);
          mpsim::TagGuard moved = std::move(g1);  // RAII handoff keeps the claim
          if (comm.next_tag() == t1) throw std::logic_error("moved guard dropped its tag");
        }
        if (comm.next_tag() != t1)
          throw std::logic_error("destroyed guard did not release its tag");
      },
      charged_engine());
}

}  // namespace
}  // namespace ardbt
