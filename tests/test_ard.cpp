#include "src/core/ard.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/btds/thomas.hpp"
#include "src/core/flops.hpp"
#include "src/core/rd.hpp"
#include "src/core/solver.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::core {
namespace {

using btds::BlockTridiag;
using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;
using la::Matrix;

/// Run ARD end to end on `nranks` simulated ranks and return X.
Matrix ard_driver(const BlockTridiag& sys, const Matrix& b, int nranks,
                  const ArdOptions& opts = {}) {
  return solve(Method::kArd, sys, b, nranks, opts).x;
}

TEST(Ard, SolvesTinySystemOnOneRank) {
  const BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, 4, 2);
  const Matrix b = make_rhs(4, 2, 1);
  const Matrix x = ard_driver(sys, b, 1);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-12);
}

TEST(Ard, MatchesThomasOnPoisson) {
  const BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, 32, 4);
  const Matrix b = make_rhs(32, 4, 3);
  const Matrix x_ard = ard_driver(sys, b, 4);
  const Matrix x_thomas = btds::thomas_solve(sys, b);
  for (la::index_t i = 0; i < x_ard.rows(); ++i) {
    for (la::index_t j = 0; j < x_ard.cols(); ++j) {
      EXPECT_NEAR(x_ard(i, j), x_thomas(i, j), 1e-9) << "(" << i << "," << j << ")";
    }
  }
}

/// Property sweep: every generator, several shapes, rank counts (including
/// non-powers of two), and RHS widths must produce small residuals.
class ArdSweep : public ::testing::TestWithParam<
                     std::tuple<ProblemKind, /*N=*/la::index_t, /*M=*/la::index_t,
                                /*P=*/int, /*R=*/la::index_t>> {};

TEST_P(ArdSweep, ResidualIsSmall) {
  const auto [kind, n, m, p, r] = GetParam();
  if (n < p) GTEST_SKIP() << "partition requires N >= P";
  const BlockTridiag sys = make_problem(kind, n, m);
  const Matrix b = make_rhs(n, m, r);
  const Matrix x = ard_driver(sys, b, p);
  const double tol = kind == ProblemKind::kIllConditioned ? 1e-6 : 1e-9;
  EXPECT_LT(btds::relative_residual(sys, x, b), tol)
      << to_string(kind) << " N=" << n << " M=" << m << " P=" << p << " R=" << r;
}

std::string sweep_name(const ::testing::TestParamInfo<ArdSweep::ParamType>& info) {
  const auto kind = std::get<0>(info.param);
  return std::string(btds::to_string(kind)) + "_N" + std::to_string(std::get<1>(info.param)) +
         "_M" + std::to_string(std::get<2>(info.param)) + "_P" +
         std::to_string(std::get<3>(info.param)) + "_R" +
         std::to_string(std::get<4>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ArdSweep,
    ::testing::Combine(::testing::ValuesIn(btds::kAllProblemKinds),
                       ::testing::Values<la::index_t>(1, 2, 5, 16, 33),
                       ::testing::Values<la::index_t>(1, 3, 8),
                       ::testing::Values(1, 2, 3, 4, 7), ::testing::Values<la::index_t>(1, 4)),
    sweep_name);

TEST(Ard, LargeNStaysAccurate) {
  // The shooting formulation would have lost all accuracy long before
  // N = 1024 (see test_shooting); the ratio formulation must not.
  const BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, 1024, 3);
  const Matrix b = make_rhs(1024, 3, 2);
  const Matrix x = ard_driver(sys, b, 4);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-10);
}

TEST(Ard, FactorReusedAcrossBatchesGivesSameAnswers) {
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, 24, 3);
  const Matrix b1 = make_rhs(24, 3, 2, /*seed=*/1);
  const Matrix b2 = make_rhs(24, 3, 5, /*seed=*/2);
  const auto session = ard_session(sys, {&b1, &b2}, 3);
  ASSERT_EQ(session.x.size(), 2u);
  EXPECT_LT(btds::relative_residual(sys, session.x[0], b1), 1e-10);
  EXPECT_LT(btds::relative_residual(sys, session.x[1], b2), 1e-10);
  EXPECT_GT(session.storage_bytes, 0u);
}

TEST(Ard, RdBatchedAndPerRhsAgreeWithArd) {
  const BlockTridiag sys = make_problem(ProblemKind::kToeplitz, 20, 3);
  const Matrix b = make_rhs(20, 3, 3);
  const Matrix x_ard = solve(Method::kArd, sys, b, 2).x;
  const Matrix x_rd = solve(Method::kRdBatched, sys, b, 2).x;
  const Matrix x_per = solve(Method::kRdPerRhs, sys, b, 2).x;
  for (la::index_t i = 0; i < b.rows(); ++i) {
    for (la::index_t j = 0; j < b.cols(); ++j) {
      EXPECT_NEAR(x_rd(i, j), x_ard(i, j), 1e-10);
      EXPECT_NEAR(x_per(i, j), x_ard(i, j), 1e-10);
    }
  }
}

TEST(Ard, SolutionIndependentOfRankCount) {
  const BlockTridiag sys = make_problem(ProblemKind::kConvectionDiffusion, 40, 3);
  const Matrix b = make_rhs(40, 3, 2);
  const Matrix x1 = ard_driver(sys, b, 1);
  for (int p : {2, 4, 5, 8}) {
    const Matrix x_p = ard_driver(sys, b, p);
    for (la::index_t i = 0; i < b.rows(); ++i) {
      for (la::index_t j = 0; j < b.cols(); ++j) {
        EXPECT_NEAR(x_p(i, j), x1(i, j), 1e-8) << "P=" << p;
      }
    }
  }
}

TEST(Ard, ThrowsWhenMoreRanksThanRows) {
  const BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, 2, 2);
  const Matrix b = make_rhs(2, 2, 1);
  EXPECT_THROW(ard_driver(sys, b, 3), std::runtime_error);
}

TEST(Ard, FlopCounterMatchesAnalyticFormulaWithinFactor) {
  const la::index_t n = 64, m = 8, r = 16;
  const int p = 4;
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const Matrix b = make_rhs(n, m, r);
  const auto res = solve(Method::kArd, sys, b, p);
  const double measured = res.report.totals().flops_charged;
  const double predicted = static_cast<double>(p) * (flops::ard_factor(n, m, p) / 1.0 +
                                                     flops::ard_solve(n, m, r, p));
  // The analytic count is a per-rank critical path; totals over ranks land
  // within a modest factor.
  EXPECT_GT(measured, 0.2 * predicted);
  EXPECT_LT(measured, 2.0 * predicted);
}

}  // namespace
}  // namespace ardbt::core
