#include "src/la/lu.hpp"

#include <gtest/gtest.h>

#include "src/fault/status.hpp"

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/random.hpp"

namespace ardbt::la {
namespace {

Matrix residual_of_solve(const Matrix& a, const Matrix& x, const Matrix& b) {
  Matrix r = to_matrix(b.view());
  gemm(-1.0, a.view(), x.view(), 1.0, r.view());
  return r;
}

TEST(Lu, SolvesKnown2x2) {
  const Matrix a{{4.0, 3.0}, {6.0, 3.0}};
  const Matrix b{{10.0}, {12.0}};
  const LuFactors f = lu_factor(a.view());
  ASSERT_TRUE(f.ok());
  const Matrix x = lu_solve(f, b.view());
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
}

TEST(Lu, RandomRoundTripMultiRhs) {
  Rng rng = make_rng(3);
  for (index_t n : {1, 2, 3, 7, 16, 33}) {
    const Matrix a = random_diag_dominant(n, rng);
    const Matrix b = random_uniform(n, 5, rng);
    const LuFactors f = lu_factor(a.view());
    ASSERT_TRUE(f.ok()) << "n=" << n;
    const Matrix x = lu_solve(f, b.view());
    EXPECT_LT(norm_fro(residual_of_solve(a, x, b).view()), 1e-10 * norm_fro(b.view()))
        << "n=" << n;
  }
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const LuFactors f = lu_factor(a.view());
  ASSERT_TRUE(f.ok());
  const Matrix b{{2.0}, {3.0}};
  const Matrix x = lu_solve(f, b.view());
  EXPECT_NEAR(x(0, 0), 3.0, 1e-14);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-14);
}

TEST(Lu, SingularMatrixReportsInfo) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const LuFactors f = lu_factor(a.view());
  EXPECT_FALSE(f.ok());
  EXPECT_GT(f.info, 0);
}

TEST(Lu, InfoIdentifiesFirstZeroPivotColumn) {
  // Rank-1 3x3: elimination zeroes out from column 1 on.
  const Matrix a{{1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}, {3.0, 6.0, 9.0}};
  const LuFactors f = lu_factor(a.view());
  EXPECT_EQ(f.info, 2);  // 1-based column of the first zero pivot
}

TEST(Lu, TransposedSolveMatchesExplicitTranspose) {
  Rng rng = make_rng(11);
  for (index_t n : {1, 2, 5, 12, 31}) {
    const Matrix a = random_diag_dominant(n, rng);
    const Matrix b = random_uniform(n, 3, rng);
    const LuFactors f = lu_factor(a.view());
    ASSERT_TRUE(f.ok());

    Matrix x = to_matrix(b.view());
    lu_solve_transposed_inplace(f, x.view());

    // Reference: factor A^T separately.
    const Matrix at = transposed(a.view());
    const LuFactors ft = lu_factor(at.view());
    const Matrix x_ref = lu_solve(ft, b.view());
    matrix_axpy(-1.0, x_ref.view(), x.view());
    EXPECT_LT(norm_fro(x.view()), 1e-10 * norm_fro(x_ref.view()) + 1e-13) << "n=" << n;
  }
}

TEST(Lu, RightDivideSolvesXAEqualsB) {
  Rng rng = make_rng(17);
  for (index_t rows : {1, 3, 8}) {
    const Matrix a = random_diag_dominant(6, rng);
    const Matrix b = random_uniform(rows, 6, rng);
    const LuFactors f = lu_factor(a.view());
    const Matrix x = right_divide(b.view(), f);
    // Check X A == B.
    Matrix r = matmul(x.view(), a.view());
    matrix_axpy(-1.0, b.view(), r.view());
    EXPECT_LT(norm_fro(r.view()), 1e-10 * norm_fro(b.view()));
  }
}

TEST(Lu, InverseTimesMatrixIsIdentity) {
  Rng rng = make_rng(23);
  const Matrix a = random_diag_dominant(9, rng);
  const Matrix inv = inverse(a.view());
  Matrix prod = matmul(inv.view(), a.view());
  matrix_axpy(-1.0, Matrix::identity(9).view(), prod.view());
  EXPECT_LT(norm_fro(prod.view()), 1e-11);
}

TEST(Lu, ConditionOfIdentityIsOne) {
  EXPECT_NEAR(condition_inf(Matrix::identity(5).view()), 1.0, 1e-12);
}

TEST(Lu, ConditionOfSingularIsInf) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_TRUE(std::isinf(condition_inf(a.view())));
}

// Regression: these checks used to be asserts, absent from the default
// -DNDEBUG build — they must throw in release mode.
TEST(Lu, MismatchedShapesThrow) {
  EXPECT_THROW(lu_factor(Matrix(3, 4).view()), fault::ShapeMismatchError);

  const Matrix a{{4.0, 3.0}, {6.0, 3.0}};
  const LuFactors f = lu_factor(a.view());
  Matrix b(3, 1);  // rows 3 != 2
  EXPECT_THROW(lu_solve_inplace(f, b.view()), fault::ShapeMismatchError);
  EXPECT_THROW(lu_solve(f, b.view()), fault::ShapeMismatchError);
  Matrix c(1, 3);  // right_divide: cols 3 != 2
  EXPECT_THROW(right_divide(c.view(), f), fault::ShapeMismatchError);
}

TEST(Lu, SolveSpanOverloadMatchesMatrixOverload) {
  Rng rng = make_rng(29);
  const Matrix a = random_diag_dominant(7, rng);
  const Matrix b = random_uniform(7, 1, rng);
  const LuFactors f = lu_factor(a.view());
  const Matrix x_mat = lu_solve(f, b.view());

  std::vector<double> v(7);
  for (index_t i = 0; i < 7; ++i) v[static_cast<std::size_t>(i)] = b(i, 0);
  lu_solve_inplace(f, std::span<double>(v));
  for (index_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(v[static_cast<std::size_t>(i)], x_mat(i, 0), 1e-12);
  }
}

}  // namespace
}  // namespace ardbt::la
