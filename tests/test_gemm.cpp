#include "src/la/gemm.hpp"

#include <gtest/gtest.h>

#include "src/fault/status.hpp"

#include <tuple>

#include "src/la/blas1.hpp"
#include "src/la/random.hpp"

namespace ardbt::la {
namespace {

double max_diff(const Matrix& a, const Matrix& b) {
  double d = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) d = std::max(d, std::abs(a(i, j) - b(i, j)));
  }
  return d;
}

TEST(Gemm, TinyKnownProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = matmul(a.view(), b.view());
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

/// The blocked kernel must agree with the reference triple loop on shapes
/// that hit both the small-problem fast path and the tiled loop.
class GemmShapes : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng = make_rng(5, static_cast<std::uint64_t>(m * 10000 + n * 100 + k));
  const Matrix a = random_uniform(m, k, rng);
  const Matrix b = random_uniform(k, n, rng);
  Matrix c_fast = random_uniform(m, n, rng);
  Matrix c_ref = c_fast;
  gemm(1.3, a.view(), b.view(), -0.7, c_fast.view());
  gemm_naive(1.3, a.view(), b.view(), -0.7, c_ref.view());
  EXPECT_LT(max_diff(c_fast, c_ref), 1e-11 * static_cast<double>(k)) << m << "x" << n << "x" << k;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(std::tuple<index_t, index_t, index_t>{1, 1, 1},
                                           std::tuple<index_t, index_t, index_t>{2, 3, 4},
                                           std::tuple<index_t, index_t, index_t>{16, 16, 16},
                                           std::tuple<index_t, index_t, index_t>{65, 33, 129},
                                           std::tuple<index_t, index_t, index_t>{70, 300, 140},
                                           std::tuple<index_t, index_t, index_t>{128, 1, 128},
                                           std::tuple<index_t, index_t, index_t>{1, 257, 64}));

TEST(Gemm, BetaZeroOverwritesGarbage) {
  const Matrix a = Matrix::identity(2);
  const Matrix b{{1.0, 2.0}, {3.0, 4.0}};
  Matrix c(2, 2);
  c.fill(std::numeric_limits<double>::quiet_NaN());
  gemm(1.0, a.view(), b.view(), 0.0, c.view());
  EXPECT_EQ(c(1, 0), 3.0);
}

TEST(Gemm, AlphaZeroOnlyScalesC) {
  const Matrix a{{1.0}};
  const Matrix b{{1.0}};
  Matrix c{{4.0}};
  gemm(0.0, a.view(), b.view(), 0.5, c.view());
  EXPECT_EQ(c(0, 0), 2.0);
}

TEST(Gemm, AccumulatesWithBetaOne) {
  const Matrix a = Matrix::identity(2);
  const Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  Matrix c{{1.0, 0.0}, {0.0, 1.0}};
  gemm(2.0, a.view(), b.view(), 1.0, c.view());
  EXPECT_EQ(c(0, 0), 3.0);
  EXPECT_EQ(c(0, 1), 2.0);
}

TEST(Gemm, WorksOnStridedSubBlocks) {
  Rng rng = make_rng(9);
  Matrix big_a = random_uniform(6, 6, rng);
  Matrix big_b = random_uniform(6, 6, rng);
  Matrix big_c(6, 6);

  gemm(1.0, big_a.block(1, 1, 3, 2), big_b.block(0, 2, 2, 4), 0.0, big_c.block(2, 1, 3, 4));

  Matrix a_copy = to_matrix(big_a.block(1, 1, 3, 2));
  Matrix b_copy = to_matrix(big_b.block(0, 2, 2, 4));
  const Matrix ref = matmul(a_copy.view(), b_copy.view());
  EXPECT_LT(max_diff(to_matrix(big_c.block(2, 1, 3, 4)), ref), 1e-13);
  // Untouched elements stay zero.
  EXPECT_EQ(big_c(0, 0), 0.0);
  EXPECT_EQ(big_c(5, 5), 0.0);
}

TEST(Gemm, FlopFormula) {
  EXPECT_EQ(gemm_flops(2, 3, 4), 48.0);
  EXPECT_EQ(gemm_flops(1, 1, 1), 2.0);
}

// Regression: these used to be bare asserts, compiled out under the
// default -DNDEBUG build — the checks must throw in release mode too.
TEST(Gemm, MismatchedShapesThrow) {
  Matrix a(3, 4);
  Matrix b(5, 2);  // inner dimension 4 != 5
  Matrix c(3, 2);
  EXPECT_THROW(gemm(1.0, a.view(), b.view(), 0.0, c.view()), fault::ShapeMismatchError);

  Matrix b_ok(4, 2);
  Matrix c_bad(2, 2);  // output rows 2 != 3
  EXPECT_THROW(gemm(1.0, a.view(), b_ok.view(), 0.0, c_bad.view()), fault::ShapeMismatchError);
  Matrix c_bad2(3, 3);  // output cols 3 != 2
  EXPECT_THROW(gemm_naive(1.0, a.view(), b_ok.view(), 0.0, c_bad2.view()),
               fault::ShapeMismatchError);
}

}  // namespace
}  // namespace ardbt::la
