// Tests for the live-telemetry layer (src/obs/live): structured log
// format and rate limiting, flight-recorder retention edges, snapshot
// cadence, the online watchdogs, postmortem bundles, and the acceptance
// soak — a long chained-solve session whose telemetry memory stays
// bounded while solutions and vtimes remain bit-identical to an
// uninstrumented run.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/btds/generators.hpp"
#include "src/core/solver.hpp"
#include "src/fault/status.hpp"
#include "src/mpsim/engine.hpp"
#include "src/obs/live/log.hpp"
#include "src/obs/live/postmortem.hpp"
#include "src/obs/live/recorder.hpp"
#include "src/obs/live/sink.hpp"
#include "src/obs/live/snapshot.hpp"
#include "src/obs/live/telemetry.hpp"
#include "src/obs/live/watchdog.hpp"
#include "src/obs/metrics.hpp"

namespace {

using namespace ardbt;
using namespace ardbt::obs::live;

// ------------------------------------------------------------------ Log

TEST(Log, HeaderThenRecordsWithMonotoneSequence) {
  MemorySink sink;
  Log log(&sink);
  EXPECT_TRUE(log.info("test.site", "first", 0.25));
  EXPECT_TRUE(log.warn("test.site", "second"));
  ASSERT_EQ(sink.lines().size(), 3u);
  EXPECT_EQ(sink.lines()[0], R"({"schema":"ardbt.log","version":1})");
  EXPECT_NE(sink.lines()[1].find(R"("type":"log","n":0)"), std::string::npos);
  EXPECT_NE(sink.lines()[1].find(R"("t_s":0.25)"), std::string::npos);
  EXPECT_NE(sink.lines()[1].find(R"("level":"info")"), std::string::npos);
  EXPECT_NE(sink.lines()[1].find(R"("site":"test.site")"), std::string::npos);
  EXPECT_NE(sink.lines()[2].find(R"("n":1)"), std::string::npos);
  // t_s < 0 omits the timestamp entirely rather than writing a fake one.
  EXPECT_EQ(sink.lines()[2].find("t_s"), std::string::npos);
}

TEST(Log, MinLevelFiltersAndFieldsSerialize) {
  MemorySink sink;
  Log log(&sink, {.min_level = LogLevel::kWarn});
  EXPECT_FALSE(log.info("s", "dropped"));
  obs::Json fields = obs::Json::object();
  fields.set("ratio", 2.5);
  fields.set("phase", "factor");
  EXPECT_TRUE(log.error("s", "kept", 1.0, std::move(fields)));
  ASSERT_EQ(sink.lines().size(), 2u);  // header + error record
  EXPECT_NE(sink.lines()[1].find(R"("fields":{)"), std::string::npos);
  EXPECT_NE(sink.lines()[1].find(R"("ratio":2.5)"), std::string::npos);
  EXPECT_EQ(log.records_written(), 1u);
}

TEST(Log, RateLimitSuppressesThenSummarizes) {
  MemorySink sink;
  Log log(&sink, {.max_per_site = 2, .header = false});
  for (int i = 0; i < 5; ++i) log.info("flood.site", "spam", 0.0);
  log.info("calm.site", "fine", 0.0);
  EXPECT_EQ(log.records_written(), 3u);
  EXPECT_EQ(log.records_suppressed(), 3u);

  log.flush_suppressed();
  ASSERT_EQ(sink.lines().size(), 4u);  // 3 records + 1 summary
  const std::string& summary = sink.lines().back();
  EXPECT_NE(summary.find(R"("site":"log.suppressed")"), std::string::npos);
  EXPECT_NE(summary.find(R"("count":3)"), std::string::npos);
  EXPECT_NE(summary.find("flood.site"), std::string::npos);

  // Idempotent: a second flush (and close) adds nothing.
  log.flush_suppressed();
  log.close();
  EXPECT_EQ(sink.lines().size(), 4u);
}

TEST(Log, RateLimitIsPerSiteAndLevel) {
  MemorySink sink;
  Log log(&sink, {.max_per_site = 1, .header = false});
  EXPECT_TRUE(log.info("s", "a"));
  EXPECT_FALSE(log.info("s", "b"));   // same (site, level): suppressed
  EXPECT_TRUE(log.warn("s", "c"));    // same site, different level: fresh budget
}

// --------------------------------------------------------- FlightRecorder

TEST(Recorder, RingKeepsNewestOldestFirst) {
  FlightRecorder rec({.capacity = 3});
  rec.prepare(1);
  RecorderChannel* ch = rec.channel(0);
  ASSERT_NE(ch, nullptr);
  for (int i = 0; i < 5; ++i) ch->record_mark("m", static_cast<double>(i), i);
  const auto events = ch->events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events.front().vtime, 2.0);
  EXPECT_DOUBLE_EQ(events.back().vtime, 4.0);
  EXPECT_EQ(ch->total_recorded(), 5u);
  EXPECT_EQ(ch->dropped(), 2u);
}

TEST(Recorder, CapacityZeroCountsButStoresNothing) {
  FlightRecorder rec({.capacity = 0});
  rec.prepare(1);
  RecorderChannel* ch = rec.channel(0);
  ASSERT_NE(ch, nullptr);
  for (int i = 0; i < 10; ++i) ch->record_mark("m", static_cast<double>(i));
  EXPECT_TRUE(ch->events().empty());
  EXPECT_EQ(ch->dropped(), 10u);
  rec.note_anomaly("edge", 10.0, "anomaly over an empty ring must not crash");
  ASSERT_EQ(rec.anomalies().size(), 1u);
  EXPECT_TRUE(rec.anomalies()[0].tail.empty());
  EXPECT_FALSE(rec.to_json().dump().empty());
}

TEST(Recorder, CapacityOneKeepsExactlyTheLastEvent) {
  FlightRecorder rec({.capacity = 1});
  rec.prepare(2);
  for (int i = 0; i < 4; ++i) rec.channel(1)->record_mark("m", static_cast<double>(i));
  const auto events = rec.channel(1)->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].vtime, 3.0);
  EXPECT_EQ(events[0].channel, 1);
}

TEST(Recorder, AnomalyBurstEvictsOldest) {
  FlightRecorder rec({.capacity = 8, .tail_keep = 4, .max_anomalies = 3});
  rec.prepare(1);
  for (int i = 0; i < 10; ++i) {
    rec.driver().record_mark("tick", static_cast<double>(i));
    rec.note_anomaly("burst", static_cast<double>(i), "detail " + std::to_string(i));
  }
  EXPECT_EQ(rec.anomalies_noted(), 10u);
  ASSERT_EQ(rec.anomalies().size(), 3u);  // oldest 7 evicted
  EXPECT_EQ(rec.anomalies().front().detail, "detail 7");
  EXPECT_EQ(rec.anomalies().back().detail, "detail 9");
  EXPECT_LE(rec.anomalies().back().tail.size(), 4u);
}

TEST(Recorder, HeadSamplingKeepsFirstSpansPerPhase) {
  FlightRecorder rec({.capacity = 4, .head_per_phase = 2, .max_head_phases = 2});
  rec.prepare(1);
  for (int i = 0; i < 5; ++i) rec.driver().record_span("phase.a", static_cast<double>(i), 0.5);
  rec.driver().record_span("phase.b", 10.0, 0.5);
  rec.driver().record_span("phase.c", 11.0, 0.5);  // over max_head_phases: untracked
  const auto& head = rec.head_samples();
  ASSERT_EQ(head.count("phase.a"), 1u);
  EXPECT_EQ(head.at("phase.a").size(), 2u);  // first 2 of 5
  EXPECT_EQ(head.count("phase.b"), 1u);
  EXPECT_EQ(head.count("phase.c"), 0u);
}

TEST(Recorder, DisabledHandsOutNullChannelsAndIgnoresEverything) {
  FlightRecorder rec;
  rec.set_enabled(false);
  rec.prepare(2);
  EXPECT_EQ(rec.channel(0), nullptr);
  rec.driver().record_mark("m", 1.0);
  rec.note_anomaly("kind", 1.0);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.anomalies_noted(), 0u);
}

TEST(Recorder, MaxResidentEventsBoundsMemory) {
  const RecorderOptions opts{.capacity = 16,
                             .head_per_phase = 2,
                             .max_head_phases = 4,
                             .tail_keep = 8,
                             .max_anomalies = 2};
  FlightRecorder rec(opts);
  rec.prepare(3);
  // ranks+driver rings, head samples, anomaly tails (metadata is not an
  // event, so each anomaly holds exactly tail_keep events).
  const std::size_t bound = (3 + 1) * 16 + 4 * 2 + 2 * 8;
  EXPECT_EQ(rec.max_resident_events(), bound);
}

TEST(Recorder, RecentMergesChannelsByTime) {
  FlightRecorder rec({.capacity = 8});
  rec.prepare(2);
  rec.channel(0)->record_mark("a", 1.0);
  rec.channel(1)->record_mark("b", 0.5);
  rec.driver().record_mark("c", 2.0);
  const auto recent = rec.recent(10);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_DOUBLE_EQ(recent[0].vtime, 0.5);
  EXPECT_DOUBLE_EQ(recent[2].vtime, 2.0);
}

// ------------------------------------------------------------ Snapshotter

TEST(Snapshot, CadenceEmitsOncePerCrossingWithoutBacklog) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(std::uint64_t{1});
  MemorySink sink;
  Snapshotter snap(&sink, &registry, {.period_s = 1.0});
  EXPECT_TRUE(snap.tick(0.5));    // first tick: baseline snapshot
  EXPECT_FALSE(snap.tick(0.75));  // before the next boundary
  EXPECT_TRUE(snap.tick(1.25));   // crossed 1.0
  EXPECT_FALSE(snap.tick(1.5));   // same period
  EXPECT_TRUE(snap.tick(7.0));    // idle gap: ONE snapshot, no backlog
  EXPECT_FALSE(snap.tick(7.5));
  EXPECT_EQ(snap.snapshots_written(), 3u);
  ASSERT_EQ(sink.lines().size(), 4u);  // header + 3 snapshots
  EXPECT_EQ(sink.lines()[0], R"({"schema":"ardbt.metrics_snapshot","version":1})");
  EXPECT_NE(sink.lines()[1].find(R"("type":"snapshot","n":0)"), std::string::npos);
  EXPECT_NE(sink.lines()[1].find(R"("metrics":)"), std::string::npos);
}

TEST(Snapshot, FiltersNondeterministicMetrics) {
  obs::MetricsRegistry registry;
  registry.gauge("mpsim.max_virtual_time_s").set(1.0);
  registry.gauge("report.wall_s").set(0.123);
  MemorySink sink;
  Snapshotter snap(&sink, &registry, {});
  snap.force(1.0);
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_NE(sink.lines()[1].find("max_virtual_time_s"), std::string::npos);
  EXPECT_EQ(sink.lines()[1].find("wall_s"), std::string::npos);
}

// -------------------------------------------------------------- Watchdogs

TEST(Watchdog, StragglerNeedsBothRatioAndFloor) {
  MemorySink sink;
  Log log(&sink, {.header = false});
  obs::MetricsRegistry registry;
  FlightRecorder rec;
  rec.prepare(1);
  Watchdogs dogs({}, &log, &registry, &rec);

  // Rank 2 waits 60% of the run; fleet median is ~2%.
  std::vector<RankSample> samples = {
      {0, 1.0, 0.02, 0}, {1, 1.0, 0.02, 0}, {2, 1.0, 0.6, 0}, {3, 1.0, 0.03, 0}};
  EXPECT_EQ(dogs.check_ranks(samples, 1.0), 1u);
  ASSERT_EQ(dogs.alerts().size(), 1u);
  EXPECT_EQ(dogs.alerts()[0].kind, fault::AlertKind::kStraggler);
  EXPECT_EQ(registry.to_json().dump().find("watchdog.deadline"), std::string::npos);
  EXPECT_EQ(rec.anomalies_noted(), 1u);
  EXPECT_NE(sink.lines()[0].find(R"("site":"watchdog.straggler")"), std::string::npos);

  // Uniformly tiny waits: big ratios but below the absolute floor.
  std::vector<RankSample> tiny = {{0, 1.0, 0.001, 0}, {1, 1.0, 0.01, 0}, {2, 1.0, 0.002, 0}};
  EXPECT_EQ(dogs.check_ranks(tiny, 2.0), 0u);
}

TEST(Watchdog, DeadlineMissesAggregateToOneAlert) {
  Watchdogs dogs({}, nullptr, nullptr, nullptr);  // all sinks optional
  std::vector<RankSample> samples = {{0, 1.0, 0.0, 2}, {1, 1.0, 0.0, 1}};
  EXPECT_EQ(dogs.check_ranks(samples, 1.0), 1u);
  ASSERT_EQ(dogs.alerts().size(), 1u);
  EXPECT_EQ(dogs.alerts()[0].kind, fault::AlertKind::kDeadlineMiss);
  EXPECT_NE(dogs.alerts()[0].message.find("3"), std::string::npos);
}

TEST(Watchdog, ArenaPressureAndSteadyStateGrowth) {
  obs::MetricsRegistry registry;
  Watchdogs dogs({.arena_fraction = 0.9}, nullptr, &registry, nullptr);
  EXPECT_EQ(dogs.check_arena("factor", 50, 100, 1.0), 0u);
  EXPECT_EQ(dogs.check_arena("factor", 95, 100, 1.0), 1u);
  EXPECT_EQ(dogs.check_arena("factor", 95, 0, 1.0), 0u);  // no budget: silent
  EXPECT_EQ(dogs.check_arena_growth("solve", 0, 2.0), 0u);
  EXPECT_EQ(dogs.check_arena_growth("solve", 3, 2.0), 1u);
  const std::string metrics = registry.to_json().dump();
  EXPECT_NE(metrics.find(R"("watchdog.alerts":2)"), std::string::npos);
  EXPECT_NE(metrics.find(R"("watchdog.arena-pressure":2)"), std::string::npos);
}

TEST(Watchdog, CostDriftAndTraceDrops) {
  Watchdogs dogs({}, nullptr, nullptr, nullptr);
  std::vector<obs::CostVerdict> verdicts(2);
  verdicts[0].phase = "driver.factor";
  verdicts[0].flagged = false;
  verdicts[1].phase = "driver.solve";
  verdicts[1].flagged = true;
  verdicts[1].ratio = 3.0;
  EXPECT_EQ(dogs.check_cost(verdicts, 1.0), 1u);
  EXPECT_EQ(dogs.check_trace_drops(0, 1.0), 0u);
  EXPECT_EQ(dogs.check_trace_drops(7, 1.0), 1u);
  EXPECT_EQ(dogs.alerts_raised(), 2u);
  EXPECT_EQ(dogs.alerts()[1].kind, fault::AlertKind::kTraceDrop);
}

// -------------------------------------------------------------- Postmortem

TEST(Postmortem, BundleCarriesAllSections) {
  FlightRecorder rec;
  rec.prepare(1);
  rec.driver().record_span("driver.factor", 1.0, 1.0);
  rec.note_anomaly("breakdown", 1.0, "pivot");
  obs::MetricsRegistry registry;
  registry.counter("mpsim.msgs_sent").add(std::uint64_t{4});
  registry.gauge("report.wall_s").set(0.5);  // must be filtered out
  obs::Json extra = obs::Json::object();
  extra.set("method", "ard");

  const obs::Json doc = build_postmortem({"breakdown", "driver.factor", "pivot blew up", 1.0},
                                         &rec, &registry, std::move(extra));
  const std::string s = doc.dump();
  EXPECT_NE(s.find(R"("schema":"ardbt.postmortem","version":1)"), std::string::npos);
  EXPECT_NE(s.find(R"("reason":"breakdown")"), std::string::npos);
  EXPECT_NE(s.find(R"("anomalies")"), std::string::npos);
  EXPECT_NE(s.find(R"("method":"ard")"), std::string::npos);
  EXPECT_NE(s.find("msgs_sent"), std::string::npos);
  EXPECT_EQ(s.find("wall_s"), std::string::npos);

  // Null contributors: sections omitted, never null.
  const obs::Json bare = build_postmortem({"error", "solve", "m", 0.0}, nullptr, nullptr);
  EXPECT_EQ(bare.dump().find("recorder"), std::string::npos);
  EXPECT_EQ(bare.dump().find("null"), std::string::npos);
}

// --------------------------------------------------- Session integration

mpsim::EngineOptions charged_engine() {
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  return engine;
}

TEST(SessionTelemetry, PostmortemFileWrittenOnPlantedBreakdown) {
  const la::index_t n = 32;
  const la::index_t m = 4;
  auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  btds::plant_singular_pivot(sys, 0, 1e-30);

  const std::string path = testing::TempDir() + "/ardbt_test_postmortem.json";
  std::remove(path.c_str());

  obs::MetricsRegistry registry;
  LiveTelemetry live({.postmortem_path = path}, &registry);
  // charged_engine()'s default on_breakdown policy is kFailFast.
  core::Session session(core::Method::kArd, sys, 4, {}, charged_engine());
  session.set_telemetry(live.handle());
  EXPECT_THROW(session.factor(), fault::BreakdownError);

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "no postmortem bundle at " << path;
  char buf[512];
  const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[got] = '\0';
  // The bundle is pretty-printed; match values, not exact key spacing.
  const std::string head(buf);
  EXPECT_NE(head.find("ardbt.postmortem"), std::string::npos);
  EXPECT_NE(head.find("\"reason\""), std::string::npos);
  EXPECT_NE(head.find("breakdown"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SessionTelemetry, LadderOutcomesBecomeLogRecords) {
  const la::index_t n = 32;
  const la::index_t m = 4;
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  const auto b = btds::make_rhs(n, m, 2);

  obs::MetricsRegistry registry;
  LiveTelemetry live({}, &registry);  // in-memory sink
  core::Session session(core::Method::kArd, sys, 4, {}, charged_engine());
  session.set_telemetry(live.handle());
  session.factor();
  (void)session.solve(b);
  live.close();

  const auto* lines = live.memory_lines();
  ASSERT_NE(lines, nullptr);
  bool saw_factor = false;
  bool saw_solve = false;
  for (const std::string& line : *lines) {
    saw_factor = saw_factor || line.find(R"("site":"session.factor")") != std::string::npos;
    saw_solve = saw_solve || line.find(R"("site":"session.solve")") != std::string::npos;
  }
  EXPECT_TRUE(saw_factor);
  EXPECT_TRUE(saw_solve);
}

// The acceptance soak: a long chained-solve service workload with the
// full chain enabled holds telemetry memory bounded, and both solutions
// and modeled vtimes are bit-identical to an uninstrumented session and
// to one with the recorder attached but disabled.
TEST(SessionTelemetry, ChainedSoakStaysBoundedAndBitIdentical) {
  const la::index_t n = 32;
  const la::index_t m = 4;
  const int kSolves = 120;
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  const auto b = btds::make_rhs(n, m, 2);

  // Plain session: the reference bits.
  core::Session plain(core::Method::kArd, sys, 4, {}, charged_engine());
  plain.factor();
  std::vector<la::Matrix> ref;
  for (int i = 0; i < kSolves; ++i) ref.push_back(plain.solve(b));

  // Recorder attached but disabled: the zero-cost configuration.
  FlightRecorder off;
  off.set_enabled(false);
  core::Session disabled(core::Method::kArd, sys, 4, {}, charged_engine());
  Telemetry off_handle;
  off_handle.recorder = &off;
  disabled.set_telemetry(off_handle);
  disabled.factor();

  // Full chain, tiny rings so the soak exercises wraparound constantly.
  obs::MetricsRegistry registry;
  LiveTelemetry::Options live_opts;
  live_opts.recorder = {.capacity = 32, .tail_keep = 8, .max_anomalies = 4};
  live_opts.snapshot.period_s = 1e-5;
  LiveTelemetry live(std::move(live_opts), &registry);
  core::Session instrumented(core::Method::kArd, sys, 4, {}, charged_engine());
  instrumented.set_telemetry(live.handle());
  instrumented.factor();

  const std::size_t bound = live.recorder().max_resident_events();
  for (int i = 0; i < kSolves; ++i) {
    const la::Matrix x_off = disabled.solve(b);
    const la::Matrix x_on = instrumented.solve(b);
    for (la::index_t r = 0; r < x_on.rows(); ++r) {
      for (la::index_t c = 0; c < x_on.cols(); ++c) {
        ASSERT_EQ(x_on(r, c), ref[i](r, c)) << "instrumented bits diverged at solve " << i;
        ASSERT_EQ(x_off(r, c), ref[i](r, c)) << "disabled bits diverged at solve " << i;
      }
    }
    // Bounded memory: resident events never exceed the configured cap.
    ASSERT_LE(live.recorder().recent(bound + 1).size(), bound);
  }

  // Modeled times are bit-identical too: telemetry never touches vclock.
  ASSERT_EQ(instrumented.solve_vtimes().size(), plain.solve_vtimes().size());
  for (std::size_t i = 0; i < plain.solve_vtimes().size(); ++i) {
    EXPECT_EQ(instrumented.solve_vtimes()[i], plain.solve_vtimes()[i]);
    EXPECT_EQ(disabled.solve_vtimes()[i], plain.solve_vtimes()[i]);
  }

  // The recorder ran hot the whole soak (events recorded, rings wrapped)
  // yet the stream stayed bounded and snapshots kept flowing.
  EXPECT_GT(live.recorder().total_recorded(), static_cast<std::uint64_t>(kSolves));
  EXPECT_GT(live.snapshotter().snapshots_written(), 0u);
  EXPECT_EQ(disabled.telemetry().recorder->total_recorded(), 0u);
}

}  // namespace
