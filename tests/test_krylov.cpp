#include "src/core/krylov.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::core {
namespace {

using btds::BlockTridiag;
using btds::LocalBlockTridiag;
using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;
using la::index_t;
using la::Matrix;

/// SPD test operator (Poisson line form).
BlockTridiag spd(index_t n, index_t m) {
  return make_problem(ProblemKind::kPoisson2D, n, m);
}

TEST(Pcg, ExactPreconditionerConvergesInOneIteration) {
  const index_t n = 32, m = 4, r = 3;
  const BlockTridiag sys = spd(n, m);
  const Matrix b = make_rhs(n, m, r);
  const btds::RowPartition part(n, 4);
  mpsim::run(4, [&](mpsim::Comm& comm) {
    const auto local = LocalBlockTridiag::from_shared(sys, part, comm.rank());
    const auto f = ArdFactorization::factor(comm, local, part);
    const index_t lo = part.begin(comm.rank());
    const Matrix b_local = la::to_matrix(b.block(lo * m, 0, part.count(comm.rank()) * m, r));
    Matrix x_local;
    const KrylovResult res = pcg(comm, local, part, &f, b_local, x_local, 10, 1e-12);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.iterations, 1);
    EXPECT_LT(btds::relative_residual_distributed(comm, local, x_local, b_local, part), 1e-12);
  });
}

TEST(Pcg, UnpreconditionedCgConverges) {
  const index_t n = 24, m = 2, r = 2;
  const BlockTridiag sys = spd(n, m);
  const Matrix b = make_rhs(n, m, r);
  const btds::RowPartition part(n, 3);
  mpsim::run(3, [&](mpsim::Comm& comm) {
    const auto local = LocalBlockTridiag::from_shared(sys, part, comm.rank());
    const index_t lo = part.begin(comm.rank());
    const Matrix b_local = la::to_matrix(b.block(lo * m, 0, part.count(comm.rank()) * m, r));
    Matrix x_local;
    const KrylovResult res = pcg(comm, local, part, nullptr, b_local, x_local, 500, 1e-10);
    EXPECT_TRUE(res.converged) << "final residual " << res.residual_norms.back();
    EXPECT_LT(btds::relative_residual_distributed(comm, local, x_local, b_local, part), 1e-9);
  });
}

TEST(Pcg, FrozenCoefficientPreconditionerBeatsPlainCg) {
  // Operator: Poisson with a gentle coefficient perturbation. Preconditioner:
  // the unperturbed Poisson matrix (factored once).
  const index_t n = 64, m = 4, r = 1;
  const BlockTridiag frozen = spd(n, m);
  BlockTridiag op = spd(n, m);
  for (index_t i = 0; i < n; ++i) {
    for (index_t d = 0; d < m; ++d) {
      op.diag(i)(d, d) += 0.3 * std::sin(0.7 * static_cast<double>(i));  // stays SPD
    }
  }
  const Matrix b = make_rhs(n, m, r);
  const btds::RowPartition part(n, 4);
  int iters_pcg = 0;
  int iters_cg = 0;
  mpsim::run(4, [&](mpsim::Comm& comm) {
    const auto local_op = LocalBlockTridiag::from_shared(op, part, comm.rank());
    const auto local_frozen = LocalBlockTridiag::from_shared(frozen, part, comm.rank());
    const auto f = ArdFactorization::factor(comm, local_frozen, part);
    const index_t lo = part.begin(comm.rank());
    const Matrix b_local = la::to_matrix(b.block(lo * m, 0, part.count(comm.rank()) * m, r));

    Matrix x1, x2;
    const KrylovResult with_pre = pcg(comm, local_op, part, &f, b_local, x1, 300, 1e-10);
    const KrylovResult without = pcg(comm, local_op, part, nullptr, b_local, x2, 300, 1e-10);
    EXPECT_TRUE(with_pre.converged);
    EXPECT_TRUE(without.converged);
    if (comm.rank() == 0) {
      iters_pcg = with_pre.iterations;
      iters_cg = without.iterations;
    }
  });
  EXPECT_LT(iters_pcg, iters_cg);
  EXPECT_LE(iters_pcg, 15);
}

TEST(Pcg, MultiColumnBatchConvergesTogether) {
  const index_t n = 20, m = 3, r = 5;
  const BlockTridiag sys = spd(n, m);
  const Matrix b = make_rhs(n, m, r);
  const btds::RowPartition part(n, 2);
  mpsim::run(2, [&](mpsim::Comm& comm) {
    const auto local = LocalBlockTridiag::from_shared(sys, part, comm.rank());
    const auto f = ArdFactorization::factor(comm, local, part);
    const index_t lo = part.begin(comm.rank());
    const Matrix b_local = la::to_matrix(b.block(lo * m, 0, part.count(comm.rank()) * m, r));
    Matrix x_local;
    const KrylovResult res = pcg(comm, local, part, &f, b_local, x_local, 10, 1e-11);
    EXPECT_TRUE(res.converged);
  });
}

TEST(Pcg, ResidualHistoryIsMonitored) {
  const index_t n = 16, m = 2;
  const BlockTridiag sys = spd(n, m);
  const Matrix b = make_rhs(n, m, 1);
  const btds::RowPartition part(n, 2);
  mpsim::run(2, [&](mpsim::Comm& comm) {
    const auto local = LocalBlockTridiag::from_shared(sys, part, comm.rank());
    const index_t lo = part.begin(comm.rank());
    const Matrix b_local = la::to_matrix(b.block(lo * m, 0, part.count(comm.rank()) * m, 1));
    Matrix x_local;
    const KrylovResult res = pcg(comm, local, part, nullptr, b_local, x_local, 200, 1e-10);
    ASSERT_GE(res.residual_norms.size(), 2u);
    EXPECT_LT(res.residual_norms.back(), res.residual_norms.front());
  });
}

TEST(Bicgstab, ConvergesOnNonsymmetricOperator) {
  const index_t n = 32, m = 3, r = 2;
  const BlockTridiag sys = make_problem(ProblemKind::kConvectionDiffusion, n, m);
  const Matrix b = make_rhs(n, m, r);
  const btds::RowPartition part(n, 4);
  mpsim::run(4, [&](mpsim::Comm& comm) {
    const auto local = LocalBlockTridiag::from_shared(sys, part, comm.rank());
    const index_t lo = part.begin(comm.rank());
    const Matrix b_local = la::to_matrix(b.block(lo * m, 0, part.count(comm.rank()) * m, r));
    Matrix x_local;
    const KrylovResult res = bicgstab(comm, local, part, nullptr, b_local, x_local, 400, 1e-9);
    EXPECT_TRUE(res.converged) << "final residual " << res.residual_norms.back();
    EXPECT_LT(btds::relative_residual_distributed(comm, local, x_local, b_local, part), 1e-8);
  });
}

TEST(Bicgstab, ExactPreconditionerConvergesImmediately) {
  const index_t n = 24, m = 2, r = 3;
  const BlockTridiag sys = make_problem(ProblemKind::kConvectionDiffusion, n, m);
  const Matrix b = make_rhs(n, m, r);
  const btds::RowPartition part(n, 3);
  mpsim::run(3, [&](mpsim::Comm& comm) {
    const auto local = LocalBlockTridiag::from_shared(sys, part, comm.rank());
    const auto f = ArdFactorization::factor(comm, local, part);
    const index_t lo = part.begin(comm.rank());
    const Matrix b_local = la::to_matrix(b.block(lo * m, 0, part.count(comm.rank()) * m, r));
    Matrix x_local;
    const KrylovResult res = bicgstab(comm, local, part, &f, b_local, x_local, 10, 1e-11);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.iterations, 2);
  });
}

TEST(Bicgstab, PreconditioningReducesIterations) {
  const index_t n = 48, m = 3;
  const BlockTridiag frozen = make_problem(ProblemKind::kConvectionDiffusion, n, m);
  BlockTridiag op = make_problem(ProblemKind::kConvectionDiffusion, n, m);
  for (index_t i = 0; i < n; ++i) {
    for (index_t d = 0; d < m; ++d) {
      op.diag(i)(d, d) += 0.2 * std::cos(1.1 * static_cast<double>(i));
    }
  }
  const Matrix b = make_rhs(n, m, 1);
  const btds::RowPartition part(n, 4);
  int iters_pre = 0;
  int iters_plain = 0;
  mpsim::run(4, [&](mpsim::Comm& comm) {
    const auto local_op = LocalBlockTridiag::from_shared(op, part, comm.rank());
    const auto local_frozen = LocalBlockTridiag::from_shared(frozen, part, comm.rank());
    const auto f = ArdFactorization::factor(comm, local_frozen, part);
    const index_t lo = part.begin(comm.rank());
    const Matrix b_local = la::to_matrix(b.block(lo * m, 0, part.count(comm.rank()) * m, 1));
    Matrix x1, x2;
    const KrylovResult with_pre = bicgstab(comm, local_op, part, &f, b_local, x1, 400, 1e-9);
    const KrylovResult plain = bicgstab(comm, local_op, part, nullptr, b_local, x2, 400, 1e-9);
    EXPECT_TRUE(with_pre.converged);
    EXPECT_TRUE(plain.converged);
    if (comm.rank() == 0) {
      iters_pre = with_pre.iterations;
      iters_plain = plain.iterations;
    }
  });
  EXPECT_LT(iters_pre, iters_plain);
}

}  // namespace
}  // namespace ardbt::core
