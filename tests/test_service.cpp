#include "src/service/server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/fault/status.hpp"
#include "src/service/fingerprint.hpp"
#include "src/service/loadgen.hpp"

namespace ardbt::service {
namespace {

using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;

mpsim::EngineOptions charged() {
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();
  return engine;
}

FactorCache::Options cache_options(std::size_t byte_budget = 0, int nranks = 2) {
  FactorCache::Options opts;
  opts.nranks = nranks;
  opts.byte_budget = byte_budget;
  opts.session.engine = charged();
  return opts;
}

std::shared_ptr<const btds::BlockTridiag> shared_problem(ProblemKind kind, la::index_t n,
                                                         la::index_t m, std::uint64_t seed) {
  return std::make_shared<const btds::BlockTridiag>(make_problem(kind, n, m, seed));
}

la::Matrix column(const la::Matrix& panel, la::index_t j) {
  la::Matrix col(panel.rows(), 1);
  for (la::index_t i = 0; i < panel.rows(); ++i) col(i, 0) = panel(i, j);
  return col;
}

TEST(Fingerprint, StableAndContentSensitive) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 12, 3, 7);
  const Fingerprint fp = fingerprint(sys);
  // Same content -> same fingerprint, across distinct objects.
  EXPECT_EQ(fp, fingerprint(make_problem(ProblemKind::kDiagDominant, 12, 3, 7)));

  // Any single-entry perturbation must move the fingerprint.
  auto perturbed = make_problem(ProblemKind::kDiagDominant, 12, 3, 7);
  perturbed.diag(5)(1, 2) += 1e-13;
  EXPECT_NE(fp, fingerprint(perturbed));

  // Different seed / kind / shape all separate.
  EXPECT_NE(fp, fingerprint(make_problem(ProblemKind::kDiagDominant, 12, 3, 8)));
  EXPECT_NE(fp, fingerprint(make_problem(ProblemKind::kPoisson2D, 12, 3, 7)));
  EXPECT_NE(fp, fingerprint(make_problem(ProblemKind::kDiagDominant, 13, 3, 7)));

  // The params-space key never collides with the content-space key for
  // the system it describes (domain separation).
  EXPECT_NE(fp, fingerprint_params(ProblemKind::kDiagDominant, 12, 3, 7));
  EXPECT_EQ(fingerprint_params(ProblemKind::kDiagDominant, 12, 3, 7),
            fingerprint_params(ProblemKind::kDiagDominant, 12, 3, 7));
  EXPECT_NE(fingerprint_params(ProblemKind::kDiagDominant, 12, 3, 7),
            fingerprint_params(ProblemKind::kDiagDominant, 12, 3, 8));
}

TEST(Fingerprint, AllPoolMembersDistinct) {
  // A realistic pool (what the load generator registers) must be
  // collision-free: every pairwise fingerprint differs.
  std::set<Fingerprint> seen;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    seen.insert(fingerprint(make_problem(ProblemKind::kDiagDominant, 16, 4, seed)));
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(FactorCache, HitsMissesAndCorrectSolves) {
  FactorCache cache(cache_options());
  const auto sys = shared_problem(ProblemKind::kDiagDominant, 12, 3, 1);
  const Fingerprint fp = fingerprint(*sys);
  int builds = 0;
  const SystemMaker make = [&] {
    ++builds;
    return sys;
  };

  FactorCache::Lease first = cache.acquire(fp, make);
  EXPECT_FALSE(first.hit);
  EXPECT_GT(first.factor_vtime_s, 0.0);
  EXPECT_TRUE(first.session->factored());

  FactorCache::Lease second = cache.acquire(fp, make);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.factor_vtime_s, 0.0);
  EXPECT_EQ(second.session.get(), first.session.get());
  EXPECT_EQ(builds, 1);

  const la::Matrix b = make_rhs(12, 3, 2, 5);
  const la::Matrix x = second.session->solve(b);
  EXPECT_LT(btds::relative_residual(*sys, x, b), 1e-10);

  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_GT(cache.resident_bytes(), 0u);
}

TEST(FactorCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget sized for roughly one entry: the cache must hold each new
  // entry and evict strictly in LRU order.
  FactorCache probe(cache_options());
  probe.acquire(1, [] { return shared_problem(ProblemKind::kDiagDominant, 12, 3, 1); });
  const std::size_t one_entry = probe.resident_bytes();

  FactorCache cache(cache_options(one_entry + 1));
  for (std::uint64_t s = 1; s <= 3; ++s) {
    cache.acquire(s, [s] { return shared_problem(ProblemKind::kDiagDominant, 12, 3, s); });
  }
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains(3));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_LE(cache.resident_bytes(), one_entry + 1);

  // Touch order drives eviction: acquire 1, 2, re-touch 1, insert 3 in a
  // roomier cache -> 2 is the LRU victim.
  FactorCache lru(cache_options(2 * one_entry + 1));
  for (std::uint64_t s : {1ull, 2ull, 1ull, 3ull}) {
    lru.acquire(s, [s] { return shared_problem(ProblemKind::kDiagDominant, 12, 3, s); });
  }
  EXPECT_TRUE(lru.contains(1));
  EXPECT_FALSE(lru.contains(2));
  EXPECT_TRUE(lru.contains(3));

  // The MRU entry is never evicted, even when a single factorization
  // exceeds the whole budget.
  FactorCache tiny(cache_options(1));
  tiny.acquire(7, [] { return shared_problem(ProblemKind::kDiagDominant, 12, 3, 7); });
  EXPECT_EQ(tiny.size(), 1u);
  EXPECT_GT(tiny.resident_bytes(), 1u);
}

TEST(FactorCache, EvictionDuringInflightSolveIsSafe) {
  // The shared-ownership contract: a Lease checked out before eviction
  // keeps the Session (and through it the system) alive and usable.
  FactorCache probe(cache_options());
  probe.acquire(1, [] { return shared_problem(ProblemKind::kDiagDominant, 12, 3, 1); });
  const std::size_t one_entry = probe.resident_bytes();

  FactorCache cache(cache_options(one_entry + 1));
  auto sys = shared_problem(ProblemKind::kDiagDominant, 12, 3, 1);
  const std::weak_ptr<const btds::BlockTridiag> weak = sys;
  FactorCache::Lease lease = cache.acquire(fingerprint(*sys), [&] { return std::move(sys); });

  // Insert another entry: the budget forces the leased entry out.
  cache.acquire(99, [] { return shared_problem(ProblemKind::kDiagDominant, 12, 3, 2); });
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.contains(fingerprint(*weak.lock())));
  EXPECT_FALSE(weak.expired()) << "lease must keep the evicted system alive";

  const la::Matrix b = make_rhs(12, 3, 1, 9);
  const la::Matrix x = lease.session->solve(b);
  EXPECT_LT(btds::relative_residual(*weak.lock(), x, b), 1e-10);

  // Dropping the last lease releases the system.
  lease.session.reset();
  EXPECT_TRUE(weak.expired());
}

TEST(Server, CoalescesWindowIntoOnePanelSolve) {
  FactorCache cache(cache_options());
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.keep_solutions = true;
  Server server(cache, opts);

  const auto sys = shared_problem(ProblemKind::kDiagDominant, 10, 2, 3);
  const Fingerprint fp = fingerprint(*sys);
  server.register_system(fp, [sys] { return sys; });

  const la::Matrix panel = make_rhs(10, 2, 3, 11);
  for (la::index_t j = 0; j < 3; ++j) {
    Request req;
    req.id = static_cast<std::uint64_t>(j);
    req.tenant = static_cast<int>(j);
    req.system = fp;
    req.rhs = column(panel, j);
    req.arrival_s = 1e-4 * static_cast<double>(j);  // all inside one window
    ASSERT_TRUE(server.submit(std::move(req)));
  }
  server.drain();

  ASSERT_EQ(server.completions().size(), 3u);
  EXPECT_EQ(server.stats().batches, 1u);
  EXPECT_EQ(server.stats().batch_cols, 3u);
  for (const Completion& c : server.completions()) {
    EXPECT_EQ(c.batch, 0u);
    EXPECT_DOUBLE_EQ(c.close_s, 1e-3);  // first arrival armed the deadline
    EXPECT_GE(c.finish_s, c.close_s);
    const la::Matrix b = column(panel, static_cast<la::index_t>(c.id));
    EXPECT_LT(btds::relative_residual(*sys, c.x, b), 1e-10);
  }

  // Submitting an unregistered fingerprint is a structured error.
  Request bad;
  bad.system = fp + 1;
  bad.rhs = column(panel, 0);
  bad.arrival_s = 1.0;
  EXPECT_THROW(server.submit(std::move(bad)), fault::InvalidArgumentError);
}

TEST(Server, WindowAndCapSplitBatches) {
  FactorCache cache(cache_options());
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.max_batch_cols = 2;
  Server server(cache, opts);

  const auto sys = shared_problem(ProblemKind::kDiagDominant, 10, 2, 3);
  const Fingerprint fp = fingerprint(*sys);
  server.register_system(fp, [sys] { return sys; });

  // Four same-instant columns with a 2-column cap -> two batches.
  const la::Matrix panel = make_rhs(10, 2, 4, 12);
  for (la::index_t j = 0; j < 4; ++j) {
    Request req;
    req.id = static_cast<std::uint64_t>(j);
    req.system = fp;
    req.rhs = column(panel, j);
    req.arrival_s = 0.0;
    ASSERT_TRUE(server.submit(std::move(req)));
  }
  // A fifth column far outside the window lands in its own batch.
  Request late;
  late.id = 4;
  late.system = fp;
  late.rhs = column(panel, 0);
  late.arrival_s = 1.0;
  ASSERT_TRUE(server.submit(std::move(late)));
  server.drain();

  EXPECT_EQ(server.stats().batches, 3u);
  EXPECT_EQ(server.stats().served, 5u);
  EXPECT_EQ(server.completions().size(), 5u);
}

TEST(Server, TenantQuotaAndFairShare) {
  FactorCache cache(cache_options());
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.tenant_queue_quota = 2;
  opts.tenant_batch_share = 2;
  opts.max_batch_cols = 64;
  Server server(cache, opts);

  const auto sys = shared_problem(ProblemKind::kDiagDominant, 10, 2, 3);
  const Fingerprint fp = fingerprint(*sys);
  server.register_system(fp, [sys] { return sys; });

  const la::Matrix panel = make_rhs(10, 2, 1, 13);
  const auto submit = [&](std::uint64_t id, int tenant) {
    Request req;
    req.id = id;
    req.tenant = tenant;
    req.system = fp;
    req.rhs = column(panel, 0);
    req.arrival_s = 0.0;
    return server.submit(std::move(req));
  };

  // Tenant 0 may queue two columns; the third is rejected. Tenant 1 is
  // unaffected by tenant 0's rejection.
  EXPECT_TRUE(submit(0, 0));
  EXPECT_TRUE(submit(1, 0));
  EXPECT_FALSE(submit(2, 0));
  EXPECT_TRUE(submit(3, 1));
  EXPECT_EQ(server.stats().rejected, 1u);

  server.drain();
  EXPECT_EQ(server.stats().served, 3u);

  // Queue drained -> the tenant may submit again.
  EXPECT_TRUE(submit(4, 0));
  server.drain();
  EXPECT_EQ(server.stats().served, 4u);
}

TEST(Server, RoundRobinFairnessAcrossTenantsInABatch) {
  // One chatty tenant, two quiet ones, per-batch share of one column per
  // tenant: the fairness pass must seat every tenant in the first batch
  // and spill the chatty tenant's surplus into re-armed windows.
  FactorCache cache(cache_options());
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.max_batch_cols = 0;  // window closes batches, not the cap
  opts.tenant_batch_share = 1;
  Server server(cache, opts);

  const auto sys = shared_problem(ProblemKind::kDiagDominant, 10, 2, 3);
  const Fingerprint fp = fingerprint(*sys);
  server.register_system(fp, [sys] { return sys; });

  const la::Matrix panel = make_rhs(10, 2, 1, 14);
  std::uint64_t id = 0;
  const auto submit = [&](int tenant) {
    Request req;
    req.id = id++;
    req.tenant = tenant;
    req.system = fp;
    req.rhs = column(panel, 0);
    req.arrival_s = 0.0;
    ASSERT_TRUE(server.submit(std::move(req)));
  };
  for (int k = 0; k < 4; ++k) submit(0);  // chatty
  submit(1);
  submit(2);
  server.flush_next();  // first window expires

  // First batch: exactly one column per tenant, chatty surplus spilled.
  ASSERT_EQ(server.completions().size(), 3u);
  std::set<int> tenants_in_first;
  for (const Completion& c : server.completions()) {
    EXPECT_EQ(c.batch, 0u);
    tenants_in_first.insert(c.tenant);
  }
  EXPECT_EQ(tenants_in_first, (std::set<int>{0, 1, 2}));

  // The spilled tenant-0 columns drain one per re-armed window.
  server.drain();
  EXPECT_EQ(server.stats().served, 6u);
  EXPECT_EQ(server.stats().batches, 4u);
}

TEST(LoadGen, DeterministicAcrossRunsAndCacheEffective) {
  LoadOptions load;
  load.requests = 192;
  load.clients = 12;
  load.tenants = 3;
  load.pool = 2;
  load.hot = 1;
  load.num_blocks = 16;
  load.block_size = 3;
  load.seed = 5;

  const auto run_once = [&] {
    FactorCache cache(cache_options(0, 2));
    ServerOptions sopts;
    sopts.window_s = 1e-3;
    sopts.max_batch_cols = 16;
    Server server(cache, sopts);
    return run_load(server, load);
  };

  const LoadResult a = run_once();
  const LoadResult b = run_once();
  EXPECT_EQ(a.completed, static_cast<std::uint64_t>(load.requests));
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.p50_s, b.p50_s);
  EXPECT_EQ(a.p99_s, b.p99_s);
  EXPECT_EQ(a.mean_s, b.mean_s);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.hit_rate, b.hit_rate);
  EXPECT_EQ(a.tenant_completed, b.tenant_completed);
  EXPECT_EQ(a.tenant_p99_s, b.tenant_p99_s);

  // The hot/cold mix over a 2-system pool amortizes factorization: the
  // batch-level hit rate must clear the service's 90% bar.
  EXPECT_GT(a.hit_rate, 0.9);
  EXPECT_GT(a.mean_batch_cols, 1.0);
  EXPECT_GT(a.throughput_rps, 0.0);
}

TEST(LoadGen, ThreadCountDoesNotChangeResults) {
  LoadOptions load;
  load.requests = 96;
  load.clients = 8;
  load.tenants = 2;
  load.pool = 2;
  load.hot = 1;
  load.num_blocks = 16;
  load.block_size = 3;
  load.seed = 6;

  const auto run_with_threads = [&](int threads) {
    FactorCache::Options copts = cache_options(0, 2);
    copts.session.engine.threads_per_rank = threads;
    FactorCache cache(copts);
    ServerOptions sopts;
    sopts.window_s = 1e-3;
    Server server(cache, sopts);
    return run_load(server, load);
  };

  const LoadResult t1 = run_with_threads(1);
  const LoadResult t3 = run_with_threads(3);
  EXPECT_EQ(t1.p50_s, t3.p50_s);
  EXPECT_EQ(t1.p99_s, t3.p99_s);
  EXPECT_EQ(t1.mean_s, t3.mean_s);
  EXPECT_EQ(t1.makespan_s, t3.makespan_s);
  EXPECT_EQ(t1.batches, t3.batches);
  EXPECT_EQ(t1.hit_rate, t3.hit_rate);
}

}  // namespace
}  // namespace ardbt::service
