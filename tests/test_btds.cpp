#include "src/btds/block_tridiag.hpp"

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/btds/partition.hpp"
#include "src/btds/spmv.hpp"
#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/lu.hpp"

namespace ardbt::btds {
namespace {

TEST(BlockTridiag, ShapeAccessors) {
  const BlockTridiag t(5, 3);
  EXPECT_EQ(t.num_blocks(), 5);
  EXPECT_EQ(t.block_size(), 3);
  EXPECT_EQ(t.dim(), 15);
}

TEST(BlockTridiag, BlockRowView) {
  Matrix x(6, 2);
  x(2, 1) = 5.0;
  const la::ConstMatrixView row1 = block_row(std::as_const(x), 1, 2);
  EXPECT_EQ(row1(0, 1), 5.0);
  la::MatrixView row0 = block_row(x, 0, 2);
  row0(0, 0) = -1.0;
  EXPECT_EQ(x(0, 0), -1.0);
}

/// Assemble the dense N*M x N*M matrix for cross-checking.
Matrix to_dense(const BlockTridiag& t) {
  const index_t n = t.num_blocks();
  const index_t m = t.block_size();
  Matrix dense(n * m, n * m);
  for (index_t i = 0; i < n; ++i) {
    la::copy(t.diag(i).view(), dense.block(i * m, i * m, m, m));
    if (i > 0) la::copy(t.lower(i).view(), dense.block(i * m, (i - 1) * m, m, m));
    if (i + 1 < n) la::copy(t.upper(i).view(), dense.block(i * m, (i + 1) * m, m, m));
  }
  return dense;
}

TEST(Spmv, ApplyMatchesDense) {
  for (ProblemKind kind : kAllProblemKinds) {
    const BlockTridiag t = make_problem(kind, 6, 3);
    const Matrix x = make_rhs(6, 3, 2);
    const Matrix b_block = apply(t, x);
    const Matrix dense = to_dense(t);
    const Matrix b_dense = la::matmul(dense.view(), x.view());
    for (index_t i = 0; i < b_block.rows(); ++i) {
      for (index_t j = 0; j < b_block.cols(); ++j) {
        EXPECT_NEAR(b_block(i, j), b_dense(i, j), 1e-12) << to_string(kind);
      }
    }
  }
}

TEST(Spmv, ResidualOfExactSolutionIsZero) {
  const BlockTridiag t = make_problem(ProblemKind::kPoisson2D, 5, 2);
  const Matrix x = make_rhs(5, 2, 3);
  const Matrix b = apply(t, x);
  EXPECT_LT(relative_residual(t, x, b), 1e-14);
}

TEST(Spmv, ApplyFlopsPositiveAndScales) {
  EXPECT_GT(apply_flops(10, 4, 2), 0.0);
  EXPECT_GT(apply_flops(20, 4, 2), apply_flops(10, 4, 2));
}

TEST(Generators, AllKindsProduceInvertibleUpperBlocks) {
  for (ProblemKind kind : kAllProblemKinds) {
    const BlockTridiag t = make_problem(kind, 8, 4);
    for (index_t i = 0; i + 1 < 8; ++i) {
      const la::LuFactors f = la::lu_factor(t.upper(i).view());
      EXPECT_TRUE(f.ok()) << to_string(kind) << " row " << i;
    }
  }
}

TEST(Generators, DiagDominantRowsAreDominant) {
  const BlockTridiag t = make_problem(ProblemKind::kDiagDominant, 6, 4, /*seed=*/99);
  for (index_t i = 0; i < 6; ++i) {
    for (index_t r = 0; r < 4; ++r) {
      double off = 0.0;
      for (index_t c = 0; c < 4; ++c) {
        if (c != r) off += std::abs(t.diag(i)(r, c));
        if (i > 0) off += std::abs(t.lower(i)(r, c));
        if (i + 1 < 6) off += std::abs(t.upper(i)(r, c));
      }
      EXPECT_GT(std::abs(t.diag(i)(r, r)), off);
    }
  }
}

TEST(Generators, DeterministicInSeed) {
  const BlockTridiag a = make_problem(ProblemKind::kToeplitz, 4, 3, 5);
  const BlockTridiag b = make_problem(ProblemKind::kToeplitz, 4, 3, 5);
  EXPECT_TRUE(a.diag(2) == b.diag(2));
  EXPECT_TRUE(a.lower(1) == b.lower(1));
  const BlockTridiag c = make_problem(ProblemKind::kToeplitz, 4, 3, 6);
  EXPECT_FALSE(a.diag(2) == c.diag(2));
}

TEST(Generators, ToeplitzRowsRepeat) {
  const BlockTridiag t = make_problem(ProblemKind::kToeplitz, 5, 2);
  EXPECT_TRUE(t.diag(1) == t.diag(3));
  EXPECT_TRUE(t.lower(1) == t.lower(4));
  EXPECT_TRUE(t.upper(0) == t.upper(2));
}

TEST(Generators, PoissonStructure) {
  const BlockTridiag t = make_problem(ProblemKind::kPoisson2D, 3, 3);
  EXPECT_EQ(t.diag(0)(0, 0), 4.0);
  EXPECT_EQ(t.diag(0)(0, 1), -1.0);
  EXPECT_EQ(t.upper(0)(1, 1), -1.0);
  EXPECT_EQ(t.upper(0)(0, 1), 0.0);
}

TEST(Generators, NamesAreStable) {
  EXPECT_EQ(to_string(ProblemKind::kDiagDominant), "diagdom");
  EXPECT_EQ(to_string(ProblemKind::kIllConditioned), "illcond");
}

TEST(Partition, CountsSumToNAndDifferByAtMostOne) {
  for (index_t n : {1, 7, 16, 100}) {
    for (int p : {1, 2, 3, 7, 16}) {
      if (n < p) continue;
      const RowPartition part(n, p);
      index_t total = 0;
      index_t min_count = n;
      index_t max_count = 0;
      for (int r = 0; r < p; ++r) {
        const index_t c = part.count(r);
        total += c;
        min_count = std::min(min_count, c);
        max_count = std::max(max_count, c);
        EXPECT_EQ(part.end(r), part.begin(r) + c);
        if (r > 0) {
          EXPECT_EQ(part.begin(r), part.end(r - 1));
        }
      }
      EXPECT_EQ(total, n);
      EXPECT_LE(max_count - min_count, 1);
    }
  }
}

TEST(Partition, OwnerIsConsistentWithRanges) {
  const RowPartition part(23, 5);
  for (index_t i = 0; i < 23; ++i) {
    const int r = part.owner(i);
    EXPECT_GE(i, part.begin(r));
    EXPECT_LT(i, part.end(r));
  }
}

}  // namespace
}  // namespace ardbt::btds
