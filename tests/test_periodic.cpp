#include "src/core/periodic.hpp"

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/la/blas1.hpp"
#include "src/la/lu.hpp"
#include "src/la/random.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::core {
namespace {

using btds::BlockTridiag;
using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;
using la::index_t;
using la::Matrix;

/// Dense assembly of the periodic operator for reference solves.
Matrix dense_periodic(const BlockTridiag& sys, const Matrix& bl, const Matrix& bu) {
  const index_t n = sys.num_blocks();
  const index_t m = sys.block_size();
  Matrix dense(n * m, n * m);
  for (index_t i = 0; i < n; ++i) {
    la::copy(sys.diag(i).view(), dense.block(i * m, i * m, m, m));
    if (i > 0) la::copy(sys.lower(i).view(), dense.block(i * m, (i - 1) * m, m, m));
    if (i + 1 < n) la::copy(sys.upper(i).view(), dense.block(i * m, (i + 1) * m, m, m));
  }
  // Corners (add, to keep the acyclic assembly untouched).
  for (index_t a = 0; a < m; ++a) {
    for (index_t b = 0; b < m; ++b) {
      dense(a, (n - 1) * m + b) += bl(a, b);
      dense((n - 1) * m + a, b) += bu(a, b);
    }
  }
  return dense;
}

/// Periodic Poisson corners: -I both ways (toroidal line Laplacian).
Matrix minus_identity(index_t m) {
  Matrix c = Matrix::identity(m);
  c.scale(-1.0);
  return c;
}

class PeriodicSweep : public ::testing::TestWithParam<std::tuple<index_t, index_t, int>> {};

TEST_P(PeriodicSweep, MatchesDenseSolve) {
  const auto [n, m, p] = GetParam();
  if (n < p) GTEST_SKIP();
  const BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, n, m);
  const Matrix bl = minus_identity(m);
  const Matrix bu = minus_identity(m);
  const Matrix b = make_rhs(n, m, 3);

  Matrix x(b.rows(), b.cols());
  const btds::RowPartition part(n, p);
  mpsim::run(p, [&](mpsim::Comm& comm) {
    const auto f = PeriodicArdFactorization::factor(comm, sys, bl, bu, part);
    f.solve(comm, b, x);
  });

  const Matrix dense = dense_periodic(sys, bl, bu);
  const la::LuFactors lu = la::lu_factor(dense.view());
  ASSERT_TRUE(lu.ok());
  const Matrix x_ref = la::lu_solve(lu, b.view());
  for (index_t i = 0; i < b.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      EXPECT_NEAR(x(i, j), x_ref(i, j), 1e-9) << "N=" << n << " M=" << m << " P=" << p;
    }
  }
}

std::string periodic_name(const ::testing::TestParamInfo<PeriodicSweep::ParamType>& info) {
  return "N" + std::to_string(std::get<0>(info.param)) + "_M" +
         std::to_string(std::get<1>(info.param)) + "_P" + std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Shapes, PeriodicSweep,
                         ::testing::Combine(::testing::Values<index_t>(3, 8, 33),
                                            ::testing::Values<index_t>(1, 3),
                                            ::testing::Values(1, 2, 3, 4)),
                         periodic_name);

TEST(Periodic, ResidualAgainstPeriodicApply) {
  const index_t n = 40, m = 4;
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, n, m);
  la::Rng rng = la::make_rng(97);
  const Matrix bl = la::random_uniform(m, m, rng, -0.2, 0.2);
  const Matrix bu = la::random_uniform(m, m, rng, -0.2, 0.2);
  const Matrix b = make_rhs(n, m, 5);
  Matrix x(b.rows(), b.cols());
  const btds::RowPartition part(n, 4);
  mpsim::run(4, [&](mpsim::Comm& comm) {
    const auto f = PeriodicArdFactorization::factor(comm, sys, bl, bu, part);
    f.solve(comm, b, x);
  });
  Matrix res = apply_periodic(sys, bl, bu, x);
  la::matrix_axpy(-1.0, b.view(), res.view());
  EXPECT_LT(la::norm_fro(res.view()), 1e-10 * la::norm_fro(b.view()));
}

TEST(Periodic, FactorReusedAcrossSolves) {
  const index_t n = 16, m = 2;
  const BlockTridiag sys = make_problem(ProblemKind::kToeplitz, n, m);
  const Matrix bl = minus_identity(m);
  const Matrix bu = minus_identity(m);
  const Matrix b1 = make_rhs(n, m, 1, 1);
  const Matrix b2 = make_rhs(n, m, 4, 2);
  Matrix x1(b1.rows(), 1);
  Matrix x2(b2.rows(), 4);
  const btds::RowPartition part(n, 2);
  mpsim::run(2, [&](mpsim::Comm& comm) {
    const auto f = PeriodicArdFactorization::factor(comm, sys, bl, bu, part);
    f.solve(comm, b1, x1);
    f.solve(comm, b2, x2);
  });
  Matrix r1 = apply_periodic(sys, bl, bu, x1);
  la::matrix_axpy(-1.0, b1.view(), r1.view());
  Matrix r2 = apply_periodic(sys, bl, bu, x2);
  la::matrix_axpy(-1.0, b2.view(), r2.view());
  EXPECT_LT(la::norm_fro(r1.view()), 1e-11 * la::norm_fro(b1.view()));
  EXPECT_LT(la::norm_fro(r2.view()), 1e-11 * la::norm_fro(b2.view()));
}

TEST(Periodic, RejectsTinySystems) {
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, 2, 2);
  const Matrix corner = Matrix::identity(2);
  const btds::RowPartition part(2, 1);
  mpsim::run(1, [&](mpsim::Comm& comm) {
    EXPECT_THROW(PeriodicArdFactorization::factor(comm, sys, corner, corner, part),
                 std::runtime_error);
  });
}

TEST(Periodic, ZeroCornersReduceToAcyclicSolve) {
  const index_t n = 12, m = 3;
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const Matrix zero(m, m);
  const Matrix b = make_rhs(n, m, 2);
  Matrix x_per(b.rows(), b.cols());
  Matrix x_acyclic(b.rows(), b.cols());
  const btds::RowPartition part(n, 3);
  mpsim::run(3, [&](mpsim::Comm& comm) {
    const auto fp = PeriodicArdFactorization::factor(comm, sys, zero, zero, part);
    fp.solve(comm, b, x_per);
    const auto fa = ArdFactorization::factor(comm, sys, part);
    fa.solve(comm, b, x_acyclic);
  });
  for (index_t i = 0; i < b.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) EXPECT_NEAR(x_per(i, j), x_acyclic(i, j), 1e-12);
  }
}

}  // namespace
}  // namespace ardbt::core
