#include "src/la/gemv.hpp"

#include <gtest/gtest.h>

#include "src/fault/status.hpp"

#include <vector>

#include "src/la/gemm.hpp"
#include "src/la/random.hpp"

namespace ardbt::la {
namespace {

TEST(Gemv, MatchesGemmOnColumnVector) {
  Rng rng = make_rng(31);
  for (index_t m : {1, 3, 17}) {
    for (index_t n : {1, 5, 40}) {
      const Matrix a = random_uniform(m, n, rng);
      const Matrix x = random_uniform(n, 1, rng);
      std::vector<double> xv(static_cast<std::size_t>(n));
      for (index_t i = 0; i < n; ++i) xv[static_cast<std::size_t>(i)] = x(i, 0);
      std::vector<double> y(static_cast<std::size_t>(m), 1.0);

      gemv(2.0, a.view(), xv, -1.0, y);

      Matrix y_ref(m, 1);
      y_ref.fill(1.0);
      gemm(2.0, a.view(), x.view(), -1.0, y_ref.view());
      for (index_t i = 0; i < m; ++i) {
        EXPECT_NEAR(y[static_cast<std::size_t>(i)], y_ref(i, 0), 1e-12);
      }
    }
  }
}

TEST(Gemv, TransposedMatchesExplicitTranspose) {
  Rng rng = make_rng(37);
  const Matrix a = random_uniform(4, 6, rng);
  std::vector<double> x{1.0, -2.0, 0.5, 3.0};
  std::vector<double> y(6, 0.25);
  gemv_t(1.5, a.view(), x, 2.0, y);

  const Matrix at = transposed(a.view());
  std::vector<double> y_ref(6, 0.25);
  gemv(1.5, at.view(), x, 2.0, y_ref);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-13);
}

TEST(Gemv, BetaZero) {
  const Matrix a = Matrix::identity(2);
  std::vector<double> x{3.0, 4.0};
  std::vector<double> y{std::numeric_limits<double>::quiet_NaN(), 0.0};
  gemv(1.0, a.view(), x, 0.0, y);
  // beta=0 convention: y = alpha*A*x + 0*y; our gemv computes alpha*s +
  // beta*y, so a NaN in y would propagate — callers must pass finite y.
  // Verify the finite slot is exact.
  EXPECT_EQ(y[1], 4.0);
}

TEST(Gemv, FlopFormula) { EXPECT_EQ(gemv_flops(3, 4), 24.0); }

// Regression: the dimension checks must stay live under -DNDEBUG.
TEST(Gemv, MismatchedShapesThrow) {
  const Matrix a = Matrix::identity(3);
  std::vector<double> x(2);  // needs 3
  std::vector<double> y(3);
  EXPECT_THROW(gemv(1.0, a.view(), x, 0.0, y), fault::ShapeMismatchError);

  std::vector<double> x_ok(3);
  std::vector<double> y_bad(4);  // needs 3
  EXPECT_THROW(gemv(1.0, a.view(), x_ok, 0.0, y_bad), fault::ShapeMismatchError);
  EXPECT_THROW(gemv_t(1.0, a.view(), x_ok, 0.0, y_bad), fault::ShapeMismatchError);
}

}  // namespace
}  // namespace ardbt::la
