// Runtime stress tests: randomized communication schedules, large
// payloads, heavy oversubscription — the robustness net under every
// solver in the library.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/mpsim/collectives.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::mpsim {
namespace {

/// Every rank sends a seeded schedule of messages to seeded peers; every
/// receiver knows (from the same seeds) exactly what to expect. Exercises
/// out-of-order delivery, interleaved tags, and queue scanning.
TEST(MpsimStress, RandomizedAllPairsSchedule) {
  const int p = 6;
  const int rounds = 25;

  // Schedule[r][k]: (dst, tag, payload_seed) for sender r at step k.
  struct Slot {
    int dst;
    int tag;
    std::uint32_t seed;
  };
  std::vector<std::vector<Slot>> schedule(p);
  std::mt19937 rng(2026);
  for (int r = 0; r < p; ++r) {
    for (int k = 0; k < rounds; ++k) {
      schedule[r].push_back(Slot{static_cast<int>(rng() % p), static_cast<int>(rng() % 4),
                                 static_cast<std::uint32_t>(rng())});
    }
  }

  run(p, [&](Comm& comm) {
    // Send everything first (eager sends never block).
    for (const Slot& s : schedule[static_cast<std::size_t>(comm.rank())]) {
      const double payload[3] = {static_cast<double>(s.seed), static_cast<double>(comm.rank()),
                                 static_cast<double>(s.tag)};
      comm.send(s.dst, s.tag, std::span<const double>(payload, 3));
    }
    // Receive: for each (src, tag) stream, messages arrive in send order.
    for (int src = 0; src < p; ++src) {
      for (int tag = 0; tag < 4; ++tag) {
        for (const Slot& s : schedule[static_cast<std::size_t>(src)]) {
          if (s.dst != comm.rank() || s.tag != tag) continue;
          double got[3];
          comm.recv_into(src, tag, std::span<double>(got, 3));
          EXPECT_EQ(got[0], static_cast<double>(s.seed));
          EXPECT_EQ(got[1], static_cast<double>(src));
          EXPECT_EQ(got[2], static_cast<double>(tag));
        }
      }
    }
  });
}

TEST(MpsimStress, LargePayloadSurvives) {
  const std::size_t n = 1 << 20;  // 8 MB of doubles
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(n);
      for (std::size_t i = 0; i < n; ++i) big[i] = static_cast<double>(i % 1000);
      comm.send(1, 1, std::span<const double>(big));
    } else {
      std::vector<double> got(n);
      comm.recv_into(0, 1, std::span<double>(got));
      EXPECT_EQ(got[0], 0.0);
      EXPECT_EQ(got[999], 999.0);
      EXPECT_EQ(got[n - 1], static_cast<double>((n - 1) % 1000));
    }
  });
}

TEST(MpsimStress, HeavyOversubscriptionCollectives) {
  // 64 ranks on a 2-core host: collectives must still complete and agree.
  const int p = 64;
  const RunReport report = run(p, [&](Comm& comm) {
    std::vector<double> v{1.0};
    allreduce_sum(comm, v);
    EXPECT_EQ(v[0], static_cast<double>(p));
    barrier(comm);
    const std::vector<double> mine{static_cast<double>(comm.rank())};
    const auto prefix = exscan_sum(comm, mine);
    EXPECT_EQ(prefix[0], comm.rank() * (comm.rank() - 1) / 2.0);
  });
  EXPECT_EQ(report.ranks.size(), static_cast<std::size_t>(p));
}

TEST(MpsimStress, ManySmallMessagesFifoPerStream) {
  run(3, [](Comm& comm) {
    const int next = (comm.rank() + 1) % 3;
    const int prev = (comm.rank() + 2) % 3;
    for (int i = 0; i < 500; ++i) comm.send_value(next, 7, i);
    for (int i = 0; i < 500; ++i) EXPECT_EQ(comm.recv_value<int>(prev, 7), i);
  });
}

TEST(MpsimStress, VirtualTimeMonotoneUnderLoad) {
  EngineOptions options;
  options.timing = TimingMode::ChargedFlops;
  options.cost.flop_rate = 1e9;
  run(8, [&](Comm& comm) {
    double last = comm.vtime();
    for (int i = 0; i < 50; ++i) {
      comm.charge_flops(1e6);
      barrier(comm);
      const double now = comm.vtime();
      EXPECT_GE(now, last);
      last = now;
    }
  }, options);
}

}  // namespace
}  // namespace ardbt::mpsim
