// Tests for the performance-attribution layer: critical-path analysis on
// a hand-built trace with a known answer (including the golden JSON
// projection), the partition invariants on a real engine run, bit-exact
// determinism across repeated runs and thread counts, the cost-model
// oracle, and the run_report v2 / bench-history plumbing.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/btds/generators.hpp"
#include "src/core/flops.hpp"
#include "src/core/solver.hpp"
#include "src/mpsim/engine.hpp"
#include "src/obs/attribution.hpp"
#include "src/obs/cost_model.hpp"
#include "src/obs/run_report.hpp"
#include "src/obs/trace.hpp"

namespace {

using namespace ardbt;

obs::TimeSample at(double t) { return {t, t}; }

// Two ranks, one message. Rank 0 computes [0,3], sends (alpha 0.5) at
// [3,3.5], computes [3.5,4]. Rank 1 computes [0,1], waits on the message
// [1,5], computes [5,8]. The critical path is rank 1's tail compute, the
// message in flight [3,5], then rank 0's head compute: 3+2+3 = 8.
void build_two_rank_fixture(obs::Tracer& tracer) {
  tracer.prepare(2);

  obs::RankTrace& r0 = tracer.rank(0);
  r0.complete(obs::SpanKind::kCompute, "compute", at(0.0), at(3.0), -1, 0);
  const std::uint64_t seq = r0.next_send_seq(1);
  r0.complete(obs::SpanKind::kSend, "send", at(3.0), at(3.5), /*peer=*/1, 100, seq);
  r0.complete(obs::SpanKind::kCompute, "compute", at(3.5), at(4.0), -1, 0);
  r0.complete(obs::SpanKind::kPhase, "ph", at(0.0), at(4.0), -1, 0);

  obs::RankTrace& r1 = tracer.rank(1);
  r1.complete(obs::SpanKind::kCompute, "compute", at(0.0), at(1.0), -1, 0);
  r1.complete(obs::SpanKind::kWait, "wait", at(1.0), at(5.0), /*peer=*/0, 100, seq);
  r1.complete(obs::SpanKind::kCompute, "compute", at(5.0), at(8.0), -1, 0);
  r1.complete(obs::SpanKind::kPhase, "ph", at(0.0), at(8.0), -1, 0);
}

TEST(Attribution, SyntheticTwoRankCriticalPath) {
  obs::Tracer tracer;
  build_two_rank_fixture(tracer);
  const obs::Attribution a = obs::analyze(tracer);

  EXPECT_EQ(a.nranks, 2);
  EXPECT_TRUE(a.complete);
  EXPECT_DOUBLE_EQ(a.makespan_s, 8.0);

  ASSERT_EQ(a.ranks.size(), 2u);
  EXPECT_DOUBLE_EQ(a.ranks[0].compute_s, 3.5);
  EXPECT_DOUBLE_EQ(a.ranks[0].send_s, 0.5);
  EXPECT_DOUBLE_EQ(a.ranks[0].wait_s, 0.0);
  EXPECT_DOUBLE_EQ(a.ranks[0].idle_s, 4.0);
  EXPECT_DOUBLE_EQ(a.ranks[1].compute_s, 4.0);
  EXPECT_DOUBLE_EQ(a.ranks[1].wait_s, 4.0);
  EXPECT_DOUBLE_EQ(a.ranks[1].idle_s, 0.0);

  const obs::CriticalPath& cp = a.critical_path;
  EXPECT_DOUBLE_EQ(cp.length_s, 8.0);
  EXPECT_DOUBLE_EQ(cp.compute_s, 6.0);
  EXPECT_DOUBLE_EQ(cp.comm_s, 2.0);  // [send begin 3, wait end 5]
  EXPECT_DOUBLE_EQ(cp.send_s, 0.0);  // the alpha charge sits inside comm
  EXPECT_DOUBLE_EQ(cp.wait_s, 0.0);
  EXPECT_DOUBLE_EQ(cp.unattributed_s, 0.0);
  EXPECT_EQ(cp.hops, 1u);
  EXPECT_EQ(cp.start_rank, 0);
  EXPECT_EQ(cp.end_rank, 1);
  ASSERT_EQ(cp.segments.size(), 3u);  // compute(r1), comm, compute(r0)
  EXPECT_EQ(cp.segments[0].rank, 1);
  EXPECT_EQ(cp.segments[1].from_rank, 0);
  EXPECT_EQ(cp.segments[2].rank, 0);
  ASSERT_EQ(cp.by_phase.count("ph"), 1u);
  EXPECT_DOUBLE_EQ(cp.by_phase.at("ph"), 8.0);

  // Phase stats: spans of 4 and 8 seconds land in log2 buckets 2 and 3,
  // so p50 reads the first bucket's upper bound.
  ASSERT_EQ(a.phases.count("ph"), 1u);
  const obs::PhaseStats& ph = a.phases.at("ph");
  EXPECT_EQ(ph.count, 2u);
  EXPECT_DOUBLE_EQ(ph.total_s, 12.0);
  EXPECT_DOUBLE_EQ(ph.max_s, 8.0);
  EXPECT_DOUBLE_EQ(ph.p50_s, 4.0);
  EXPECT_DOUBLE_EQ(ph.p90_s, 8.0);
  EXPECT_DOUBLE_EQ(ph.p99_s, 8.0);
}

// The JSON projection is part of run_report v2; pin it exactly.
TEST(Attribution, GoldenJson) {
  obs::Tracer tracer;
  build_two_rank_fixture(tracer);
  const std::string expected =
      R"({"nranks":2,"makespan_s":8,"complete":true,"dropped_events":0,)"
      R"("ranks":[{"compute_s":3.5,"send_s":0.5,"wait_s":0,"idle_s":4},)"
      R"({"compute_s":4,"send_s":0,"wait_s":4,"idle_s":0}],)"
      R"("phases":{"ph":{"count":2,"total_s":12,"max_s":8,"p50_s":4,"p90_s":8,"p99_s":8}},)"
      R"("critical_path":{"length_s":8,"compute_s":6,"send_s":0,"comm_s":2,"wait_s":0,)"
      R"("unattributed_s":0,"hops":1,"segments":3,"start_rank":0,"end_rank":1,)"
      R"("by_phase":{"ph":8}}})";
  EXPECT_EQ(obs::to_json(obs::analyze(tracer)).dump(), expected);
}

// Gaps between events become unattributed time; a wait whose seq matches
// no recorded send stays on-rank as wait.
TEST(Attribution, GapAndUnresolvableWait) {
  obs::Tracer tracer;
  tracer.prepare(1);
  obs::RankTrace& rt = tracer.rank(0);
  rt.complete(obs::SpanKind::kCompute, "compute", at(0.0), at(2.0), -1, 0);
  rt.complete(obs::SpanKind::kCompute, "compute", at(3.0), at(5.0), -1, 0);
  rt.complete(obs::SpanKind::kWait, "wait", at(5.0), at(6.0), /*peer=*/0, 0, /*seq=*/7);

  const obs::Attribution a = obs::analyze(tracer);
  const obs::CriticalPath& cp = a.critical_path;
  EXPECT_DOUBLE_EQ(cp.length_s, 6.0);
  EXPECT_DOUBLE_EQ(cp.compute_s, 4.0);
  EXPECT_DOUBLE_EQ(cp.wait_s, 1.0);
  EXPECT_DOUBLE_EQ(cp.unattributed_s, 1.0);  // the [2,3] hole
  EXPECT_EQ(cp.hops, 0u);
  ASSERT_EQ(cp.by_phase.count("(gap)"), 1u);
  EXPECT_DOUBLE_EQ(cp.by_phase.at("(gap)"), 1.0);
  EXPECT_DOUBLE_EQ(a.ranks[0].idle_s, 1.0);
}

TEST(Attribution, EmptyTracerIsBenign) {
  obs::Tracer tracer;
  const obs::Attribution a = obs::analyze(tracer);
  EXPECT_EQ(a.nranks, 0);
  EXPECT_DOUBLE_EQ(a.makespan_s, 0.0);
  EXPECT_TRUE(a.critical_path.segments.empty());
}

// --------------------------------------------- Engine-level invariants

void traced_session(obs::Tracer* tracer, int threads) {
  const la::index_t n = 64;
  const la::index_t m = 4;
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  const auto b = btds::make_rhs(n, m, 4);
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.tracer = tracer;
  engine.threads_per_rank = threads;
  (void)core::solve(core::Method::kArd, sys, b, /*nranks=*/4, {.engine = engine});
}

TEST(Attribution, PartitionsEngineMakespanExactly) {
  obs::Tracer tracer;
  traced_session(&tracer, /*threads=*/1);
  const obs::Attribution a = obs::analyze(tracer);

  ASSERT_EQ(a.nranks, 4);
  EXPECT_GT(a.makespan_s, 0.0);
  const obs::CriticalPath& cp = a.critical_path;
  EXPECT_DOUBLE_EQ(cp.length_s, a.makespan_s);
  const double parts = cp.compute_s + cp.send_s + cp.comm_s + cp.wait_s + cp.unattributed_s;
  EXPECT_NEAR(parts, cp.length_s, 1e-9 * cp.length_s);
  EXPECT_GT(cp.hops, 0u);  // ARD at P=4 must cross ranks

  for (const obs::RankBreakdown& b : a.ranks) {
    EXPECT_NEAR(b.compute_s + b.send_s + b.wait_s + b.idle_s, a.makespan_s,
                1e-9 * a.makespan_s);
  }
  EXPECT_EQ(a.phases.count("driver.factor"), 1u);
  EXPECT_EQ(a.phases.count("driver.solve"), 1u);
}

// A deliberately overflowed ring (tiny capacity against a real engine
// run) must degrade gracefully: attribution flags itself incomplete,
// reports the drop count, and still satisfies the partition invariants
// over the events that survived — never crashes or fabricates time.
TEST(Attribution, OverflowedRingStaysConsistent) {
  obs::TraceOptions options;
  options.ring_capacity = 16;  // orders of magnitude under the real count
  obs::Tracer tracer(options);
  traced_session(&tracer, /*threads=*/1);

  std::uint64_t dropped = 0;
  for (int r = 0; r < tracer.nranks(); ++r) dropped += tracer.rank(r).dropped();
  ASSERT_GT(dropped, 0u) << "fixture no longer overflows; shrink ring_capacity";

  const obs::Attribution a = obs::analyze(tracer);
  EXPECT_FALSE(a.complete);
  EXPECT_EQ(a.dropped_events, dropped);
  ASSERT_EQ(a.nranks, 4);
  EXPECT_GT(a.makespan_s, 0.0);

  const double tol = 1e-9 * a.makespan_s;
  for (const obs::RankBreakdown& b : a.ranks) {
    EXPECT_GE(b.compute_s, -tol);
    EXPECT_GE(b.send_s, -tol);
    EXPECT_GE(b.wait_s, -tol);
    EXPECT_GE(b.idle_s, -tol);
    EXPECT_NEAR(b.compute_s + b.send_s + b.wait_s + b.idle_s, a.makespan_s, tol);
  }
  const obs::CriticalPath& cp = a.critical_path;
  EXPECT_GT(cp.length_s, 0.0);
  EXPECT_LE(cp.length_s, a.makespan_s * (1.0 + 1e-9));
  EXPECT_NEAR(cp.compute_s + cp.send_s + cp.comm_s + cp.wait_s + cp.unattributed_s,
              cp.length_s, tol);
  // The projection must stay serializable and carry the incompleteness.
  const std::string json = obs::to_json(a).dump();
  EXPECT_NE(json.find("\"complete\":false"), std::string::npos);
}

// The whole attribution JSON must be bit-identical across repeated runs
// and across worker-pool sizes: it reads only virtual-time fields.
TEST(Attribution, JsonDeterministicAcrossRunsAndThreads) {
  obs::Tracer t1;
  obs::Tracer t2;
  obs::Tracer t3;
  traced_session(&t1, /*threads=*/1);
  traced_session(&t2, /*threads=*/1);
  traced_session(&t3, /*threads=*/3);
  const std::string j1 = obs::to_json(obs::analyze(t1)).dump();
  EXPECT_EQ(j1, obs::to_json(obs::analyze(t2)).dump());
  EXPECT_EQ(j1, obs::to_json(obs::analyze(t3)).dump());
}

// ------------------------------------------------------------ CostModel

TEST(CostModel, PredictsAlphaBetaGammaSum) {
  obs::CostModel model({/*seconds_per_flop=*/1e-9, /*alpha=*/1e-6, /*beta=*/1e-9});
  const obs::PhaseTerms t{/*flops=*/1e9, /*messages=*/10.0, /*bytes=*/1e6};
  EXPECT_DOUBLE_EQ(model.predict(t), 1.0 + 1e-5 + 1e-3);
}

TEST(CostModel, JudgeFlagsOutsideThresholdBand) {
  obs::CostModel model({/*seconds_per_flop=*/1.0, 0.0, 0.0}, /*flag_threshold=*/2.0);
  const obs::PhaseTerms one_flop{1.0, 0.0, 0.0};  // predicted exactly 1 s

  EXPECT_FALSE(model.judge("ok", one_flop, 1.0).flagged);
  EXPECT_FALSE(model.judge("at-upper", one_flop, 2.0).flagged);   // inclusive band
  EXPECT_FALSE(model.judge("at-lower", one_flop, 0.5).flagged);
  EXPECT_TRUE(model.judge("slow", one_flop, 2.5).flagged);
  EXPECT_TRUE(model.judge("fast", one_flop, 0.4).flagged);

  const obs::CostVerdict v = model.judge("slow", one_flop, 2.5);
  EXPECT_EQ(v.phase, "slow");
  EXPECT_DOUBLE_EQ(v.measured_s, 2.5);
  EXPECT_DOUBLE_EQ(v.predicted_s, 1.0);
  EXPECT_DOUBLE_EQ(v.ratio, 2.5);
}

TEST(CostModel, CalibrateRescalesUniformly) {
  obs::CostModel model({1.0, 1.0, 1.0});
  const obs::PhaseTerms t{1.0, 1.0, 1.0};  // predicted 3 s
  const double scale = model.calibrate(t, /*measured_s=*/6.0);
  EXPECT_DOUBLE_EQ(scale, 2.0);
  EXPECT_DOUBLE_EQ(model.predict(t), 6.0);
  EXPECT_FALSE(model.judge("anchor", t, 6.0).flagged);

  // Zero prediction: calibration is a no-op.
  obs::CostModel empty({0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(empty.calibrate(t, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(empty.predict(t), 0.0);
}

TEST(CostModel, PaperTermsPredictEngineFactorTime) {
  // End to end: the simulator charges exactly the flops/messages/bytes
  // the formulas count, so seeding the oracle with the engine's own
  // constants must land the ARD factor phase within the 2x band.
  const la::index_t n = 64;
  const la::index_t m = 4;
  const int p = 4;
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, n, m);
  const auto b = btds::make_rhs(n, m, 4);
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  const auto res = core::solve(core::Method::kArd, sys, b, p, {.engine = engine});

  obs::CostModel::Constants c;
  c.seconds_per_flop = 1.0 / engine.cost.flop_rate;
  c.alpha = engine.cost.alpha;
  c.beta = engine.cost.beta;
  obs::CostModel oracle(c);
  const obs::CostVerdict v =
      oracle.judge("driver.factor", core::flops::ard_factor_terms(n, m, p), res.factor_vtime);
  EXPECT_GT(v.predicted_s, 0.0);
  EXPECT_FALSE(v.flagged) << "measured/predicted = " << v.ratio;
}

// ------------------------------------------------- run_report v2 plumbing

TEST(RunReport, VersionTwoHeader) {
  EXPECT_EQ(obs::kRunReportVersion, 2);
  const obs::Json doc = obs::RunReportBuilder("test_tool").build();
  const std::string s = doc.dump();
  EXPECT_NE(s.find("\"schema\":\"ardbt.run_report\""), std::string::npos);
  EXPECT_NE(s.find("\"version\":2"), std::string::npos);
}

TEST(RunReport, HistoryAppendsHeaderThenCompactLines) {
  const std::string path = testing::TempDir() + "/ardbt_test_history.jsonl";
  std::remove(path.c_str());

  obs::RunReportBuilder builder("test_tool");
  obs::append_history_line(path, builder.build());
  obs::append_history_line(path, builder.build());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // header + two entries
  EXPECT_NE(lines[0].find("\"schema\":\"ardbt.bench_history\""), std::string::npos);
  EXPECT_EQ(lines[1], lines[2]);  // same document, compact single-line form
  EXPECT_NE(lines[1].find("\"schema\":\"ardbt.run_report\""), std::string::npos);
  EXPECT_EQ(lines[1].find('\n'), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
