#include "src/btds/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/btds/generators.hpp"
#include "src/la/random.hpp"

namespace ardbt::btds {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Io, MatrixRoundTripIsExact) {
  la::Rng rng = la::make_rng(81);
  const Matrix m = la::random_uniform(7, 5, rng, -1e9, 1e9);
  const std::string path = temp_path("matrix.ardbt");
  save_matrix(path, m);
  const Matrix back = load_matrix(path);
  EXPECT_TRUE(m == back);  // bitwise
  std::remove(path.c_str());
}

TEST(Io, EmptyAndSingleElementMatrices) {
  const std::string path = temp_path("tiny.ardbt");
  for (const Matrix& m : {Matrix(0, 0), Matrix(1, 1), Matrix(0, 5)}) {
    save_matrix(path, m);
    const Matrix back = load_matrix(path);
    EXPECT_TRUE(m == back);
  }
  std::remove(path.c_str());
}

TEST(Io, BlockTridiagRoundTripIsExact) {
  const BlockTridiag t = make_problem(ProblemKind::kDiagDominant, 6, 3, /*seed=*/5);
  const std::string path = temp_path("system.ardbt");
  save_block_tridiag(path, t);
  const BlockTridiag back = load_block_tridiag(path);
  ASSERT_EQ(back.num_blocks(), 6);
  ASSERT_EQ(back.block_size(), 3);
  for (la::index_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(back.diag(i) == t.diag(i));
    if (i > 0) {
      EXPECT_TRUE(back.lower(i) == t.lower(i));
    }
    if (i + 1 < 6) {
      EXPECT_TRUE(back.upper(i) == t.upper(i));
    }
  }
  std::remove(path.c_str());
}

TEST(Io, SingleBlockRowSystem) {
  const BlockTridiag t = make_problem(ProblemKind::kToeplitz, 1, 4);
  const std::string path = temp_path("onerow.ardbt");
  save_block_tridiag(path, t);
  const BlockTridiag back = load_block_tridiag(path);
  EXPECT_TRUE(back.diag(0) == t.diag(0));
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(load_matrix("/nonexistent/nowhere.ardbt"), std::runtime_error);
  EXPECT_THROW(load_block_tridiag("/nonexistent/nowhere.ardbt"), std::runtime_error);
}

TEST(Io, BadMagicThrows) {
  const std::string path = temp_path("garbage.ardbt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAFILEATALL_____";
  }
  EXPECT_THROW(load_matrix(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Io, WrongKindMagicThrows) {
  la::Rng rng = la::make_rng(83);
  const Matrix m = la::random_uniform(2, 2, rng);
  const std::string path = temp_path("kind.ardbt");
  save_matrix(path, m);
  EXPECT_THROW(load_block_tridiag(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Io, TruncatedFileThrows) {
  la::Rng rng = la::make_rng(87);
  const Matrix m = la::random_uniform(8, 8, rng);
  const std::string path = temp_path("trunc.ardbt");
  save_matrix(path, m);
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  EXPECT_THROW(load_matrix(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Io, CsvValuesRoundTripThroughParsing) {
  la::Rng rng = la::make_rng(91);
  const Matrix m = la::random_uniform(3, 4, rng);
  const std::string path = temp_path("matrix.csv");
  save_matrix_csv(path, m);
  std::ifstream in(path);
  Matrix back(3, 4);
  std::string cell;
  for (la::index_t i = 0; i < 3; ++i) {
    for (la::index_t j = 0; j < 4; ++j) {
      std::getline(in, cell, j + 1 < 4 ? ',' : '\n');
      back(i, j) = std::stod(cell);
    }
  }
  EXPECT_TRUE(m == back);  // %.17g preserves doubles exactly
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ardbt::btds
