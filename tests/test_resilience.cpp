#include "src/service/resilience.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/fault/plan.hpp"
#include "src/fault/status.hpp"
#include "src/service/fingerprint.hpp"
#include "src/service/loadgen.hpp"
#include "src/service/rng.hpp"
#include "src/service/server.hpp"

namespace ardbt::service {
namespace {

using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;

mpsim::EngineOptions charged() {
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  engine.cost = mpsim::CostModel::cluster2014();
  return engine;
}

FactorCache::Options cache_options(std::size_t byte_budget = 0, int nranks = 2) {
  FactorCache::Options opts;
  opts.nranks = nranks;
  opts.byte_budget = byte_budget;
  opts.session.engine = charged();
  return opts;
}

std::shared_ptr<const btds::BlockTridiag> shared_problem(ProblemKind kind, la::index_t n,
                                                         la::index_t m, std::uint64_t seed) {
  return std::make_shared<const btds::BlockTridiag>(make_problem(kind, n, m, seed));
}

Request make_request(std::uint64_t id, Fingerprint fp, const la::Matrix& rhs, double arrival_s,
                     int tenant = 0) {
  Request req;
  req.id = id;
  req.tenant = tenant;
  req.system = fp;
  req.rhs = rhs;
  req.arrival_s = arrival_s;
  return req;
}

// ---------------------------------------------------------------------------
// RNG goldens: the service layer's only randomness. These constants pin the
// exact stream; any change to rng.hpp breaks byte-identical replays and must
// show up here first.

TEST(Rng, SplitMix64Golden) {
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafull);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454full);
}

TEST(Rng, Uniform01AndJitteredGolden) {
  std::uint64_t state = 0x5eedull;
  EXPECT_DOUBLE_EQ(uniform01(state), 0.038848734697185194);
  EXPECT_DOUBLE_EQ(uniform01(state), 0.33280110873942981);
  EXPECT_DOUBLE_EQ(uniform01(state), 0.36468185637813821);

  state = 0x5eedull;
  EXPECT_DOUBLE_EQ(jittered(state, 2e-3), 0.0010776974693943705);
  EXPECT_DOUBLE_EQ(jittered(state, 2e-3), 0.0016656022174788595);
  EXPECT_DOUBLE_EQ(jittered(state, 2e-3), 0.0017293637127562766);

  // Jitter is bounded to [0.5, 1.5) of the mean by construction.
  state = 123;
  for (int i = 0; i < 256; ++i) {
    const double j = jittered(state, 1.0);
    EXPECT_GE(j, 0.5);
    EXPECT_LT(j, 1.5);
  }
}

// ---------------------------------------------------------------------------
// Transient/permanent classification: exhaustive over every ErrorCode, so a
// new code cannot land without a documented retry policy.

TEST(Classification, EveryErrorCodeIsClassified) {
  using fault::ErrorCode;
  const std::vector<ErrorCode> transient = {
      ErrorCode::kMessageCorrupt,  // detected bit flip: clean on re-run
      ErrorCode::kInjectedCrash,   // injected crash: one-shot specs fire once
      ErrorCode::kDeadline,        // blocked receive timed out: congestion
  };
  const std::vector<ErrorCode> permanent = {
      ErrorCode::kOk,           ErrorCode::kSingularPivot,
      ErrorCode::kNonSpdPivot,  ErrorCode::kBreakdown,
      ErrorCode::kMessageSize,  ErrorCode::kInternal,
      ErrorCode::kShapeMismatch, ErrorCode::kInvalidArgument,
      ErrorCode::kTagCollision,  // a tag claim bug is deterministic
      ErrorCode::kDeadlineInfeasible, ErrorCode::kDeadlineExceeded,
      ErrorCode::kOverload,     ErrorCode::kCircuitOpen,
  };
  for (ErrorCode code : transient) {
    EXPECT_TRUE(fault::is_transient(code)) << fault::to_string(code);
    EXPECT_TRUE(fault::is_transient(fault::Status::error(code, "x"))) << fault::to_string(code);
  }
  for (ErrorCode code : permanent) {
    EXPECT_FALSE(fault::is_transient(code)) << fault::to_string(code);
  }
  // Exhaustive: the two lists cover the enum (kCircuitOpen is last).
  EXPECT_EQ(transient.size() + permanent.size(),
            static_cast<std::size_t>(ErrorCode::kCircuitOpen) + 1);
}

TEST(Classification, NamesAndAdmissionErrors) {
  EXPECT_EQ(to_string(Outcome::kDone), "done");
  EXPECT_EQ(to_string(Outcome::kFailed), "failed");
  EXPECT_EQ(to_string(Outcome::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_EQ(to_string(Admission::kAdmitted), "admitted");
  EXPECT_EQ(to_string(Admission::kRejectedQuota), "rejected-quota");
  EXPECT_EQ(to_string(Admission::kShed), "shed");
  EXPECT_EQ(to_string(Admission::kCircuitOpen), "circuit-open");
  EXPECT_EQ(to_string(Admission::kDeadlineInfeasible), "deadline-infeasible");

  EXPECT_EQ(admission_error(Admission::kAdmitted), fault::ErrorCode::kOk);
  EXPECT_EQ(admission_error(Admission::kRejectedQuota), fault::ErrorCode::kOverload);
  EXPECT_EQ(admission_error(Admission::kShed), fault::ErrorCode::kOverload);
  EXPECT_EQ(admission_error(Admission::kCircuitOpen), fault::ErrorCode::kCircuitOpen);
  EXPECT_EQ(admission_error(Admission::kDeadlineInfeasible),
            fault::ErrorCode::kDeadlineInfeasible);

  EXPECT_EQ(fault::to_string(fault::ErrorCode::kDeadlineInfeasible), "deadline-infeasible");
  EXPECT_EQ(fault::to_string(fault::ErrorCode::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_EQ(fault::to_string(fault::ErrorCode::kOverload), "overload");
  EXPECT_EQ(fault::to_string(fault::ErrorCode::kCircuitOpen), "circuit-open");
  EXPECT_EQ(fault::to_string(fault::AlertKind::kShedStorm), "shed-storm");
  EXPECT_EQ(fault::to_string(fault::AlertKind::kBreakerTrip), "breaker-trip");
}

// ---------------------------------------------------------------------------
// Policy unit tests (pure state machines on the virtual clock).

TEST(CircuitBreakerUnit, TripsHalfOpensAndCloses) {
  CircuitBreaker b(2, 0.1);
  EXPECT_TRUE(b.allow(0.0));
  EXPECT_FALSE(b.on_failure(1.0));  // 1 of 2
  EXPECT_TRUE(b.allow(1.0));
  EXPECT_TRUE(b.on_failure(2.0));   // trips
  EXPECT_TRUE(b.is_open());
  EXPECT_EQ(b.trips(), 1u);
  EXPECT_FALSE(b.allow(2.05));          // still cooling down
  EXPECT_TRUE(b.allow(2.11));           // half-open probe admitted
  EXPECT_TRUE(b.on_failure(2.2));       // half-open failure re-trips at once
  EXPECT_EQ(b.trips(), 2u);
  EXPECT_FALSE(b.allow(2.25));
  EXPECT_TRUE(b.allow(2.35));  // half-open again
  b.on_success();              // probe succeeded: closed
  EXPECT_TRUE(b.allow(2.36));
  EXPECT_FALSE(b.on_failure(3.0));  // consecutive count was reset
  EXPECT_EQ(b.trips(), 2u);

  // A success mid-streak resets the consecutive-failure count.
  CircuitBreaker c(3, 0.1);
  c.on_failure(0.0);
  c.on_failure(0.1);
  c.on_success();
  EXPECT_FALSE(c.on_failure(0.2));
  EXPECT_FALSE(c.on_failure(0.3));

  // Threshold 0 disables the breaker entirely.
  CircuitBreaker off(0, 0.1);
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(off.on_failure(static_cast<double>(i)));
  EXPECT_TRUE(off.allow(100.0));
}

TEST(RetryBudgetUnit, StartsFullAccruesAndSpends) {
  RetryBudget b(0.5, 2.0);
  EXPECT_DOUBLE_EQ(b.tokens(), 2.0);
  EXPECT_TRUE(b.try_spend());
  EXPECT_TRUE(b.try_spend());
  EXPECT_FALSE(b.try_spend());  // empty
  b.on_admit();                 // +0.5 -> 0.5, still below one whole token
  EXPECT_FALSE(b.try_spend());
  b.on_admit();
  EXPECT_TRUE(b.try_spend());
  for (int i = 0; i < 16; ++i) b.on_admit();
  EXPECT_DOUBLE_EQ(b.tokens(), 2.0);  // capped at burst

  RetryBudget zero(0.0, 0.0);
  EXPECT_FALSE(zero.try_spend());
  zero.on_admit();
  EXPECT_FALSE(zero.try_spend());
}

// ---------------------------------------------------------------------------
// Deadlines.

TEST(Deadlines, InfeasibleDeadlineRejectedAtAdmission) {
  FactorCache cache(cache_options());
  ServerOptions opts;
  opts.window_s = 1e-3;
  Server server(cache, opts);

  const auto sys = shared_problem(ProblemKind::kDiagDominant, 10, 2, 3);
  const Fingerprint fp = fingerprint(*sys);
  server.register_system(fp, [sys] { return sys; });
  const la::Matrix rhs = make_rhs(10, 2, 1, 11);

  // No service-time estimate yet: the earliest possible finish is the
  // window close. A deadline inside the window cannot be met.
  Request infeasible = make_request(0, fp, rhs, 0.0);
  infeasible.deadline_s = 5e-4;
  EXPECT_EQ(server.try_submit(std::move(infeasible)), Admission::kDeadlineInfeasible);
  EXPECT_EQ(server.stats().resilience.deadline_infeasible, 1u);
  EXPECT_EQ(server.stats().submitted, 0u);

  Request feasible = make_request(1, fp, rhs, 0.0);
  feasible.deadline_s = 1.0;
  EXPECT_EQ(server.try_submit(std::move(feasible)), Admission::kAdmitted);
  server.drain();
  ASSERT_EQ(server.completions().size(), 1u);
  EXPECT_EQ(server.completions()[0].outcome, Outcome::kDone);
  EXPECT_EQ(server.completions()[0].error, fault::ErrorCode::kOk);
}

TEST(Deadlines, QueuedColumnPastDeadlineIsCancelledAtBatchStart) {
  // Probe run: measure the service time of the expensive system A so the
  // main run can place B's deadline between its admission estimate and
  // the instant A's execution actually frees the executor.
  const auto sys_a = shared_problem(ProblemKind::kDiagDominant, 48, 6, 1);
  const auto sys_b = shared_problem(ProblemKind::kDiagDominant, 10, 2, 2);
  const Fingerprint fp_a = fingerprint(*sys_a);
  const Fingerprint fp_b = fingerprint(*sys_b);
  const la::Matrix rhs_a = make_rhs(48, 6, 1, 21);
  const la::Matrix rhs_b = make_rhs(10, 2, 1, 22);

  // A short window keeps the queueing phase small relative to A's
  // service time, which is what makes the deadline placement below work.
  const double window = 1e-5;
  double service_a = 0.0;
  {
    FactorCache cache(cache_options());
    ServerOptions opts;
    opts.window_s = window;
    Server server(cache, opts);
    server.register_system(fp_a, [sys_a] { return sys_a; });
    ASSERT_TRUE(server.submit(make_request(0, fp_a, rhs_a, 0.0)));
    server.drain();
    ASSERT_EQ(server.completions().size(), 1u);
    service_a = server.completions()[0].finish_s - server.completions()[0].start_s;
  }
  ASSERT_GT(service_a, 2.2e-6) << "system A too cheap for the cancellation window";

  FactorCache cache(cache_options());
  ServerOptions opts;
  opts.window_s = window;
  Server server(cache, opts);
  server.register_system(fp_a, [sys_a] { return sys_a; });
  server.register_system(fp_b, [sys_b] { return sys_b; });

  // A's batch closes at `window` and runs until window + service_a. B
  // arrives at window/10 with a deadline its admission estimate (close at
  // 1.1 * window, idle executor, no estimate yet) still meets — but A's
  // execution pushes B's start past it.
  ASSERT_TRUE(server.submit(make_request(0, fp_a, rhs_a, 0.0)));
  Request late = make_request(1, fp_b, rhs_b, 0.1 * window);
  late.deadline_s = window + 0.5 * service_a;
  EXPECT_EQ(server.try_submit(std::move(late)), Admission::kAdmitted);
  server.drain();

  ASSERT_EQ(server.completions().size(), 2u);
  const Completion& a = server.completions()[0];
  const Completion& b = server.completions()[1];
  EXPECT_EQ(a.id, 0u);
  EXPECT_EQ(a.outcome, Outcome::kDone);
  EXPECT_EQ(b.id, 1u);
  EXPECT_EQ(b.outcome, Outcome::kDeadlineExceeded);
  EXPECT_EQ(b.error, fault::ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(b.batch, Completion::kNoBatch);
  EXPECT_DOUBLE_EQ(b.finish_s, b.start_s);  // never touched the solver
  EXPECT_EQ(server.stats().resilience.deadline_cancelled, 1u);
  // The cancelled column never entered a served batch.
  EXPECT_EQ(server.stats().served, 1u);
}

// ---------------------------------------------------------------------------
// Retries, budget, hedging.

TEST(Retries, TransientFaultIsRetriedAndRecovered) {
  fault::FaultPlan plan;
  plan.crash_before_send(0, 1);  // one-shot: first attempt's factor dies

  FactorCache::Options copts = cache_options();
  copts.session.engine.fault_plan = &plan;
  FactorCache cache(copts);
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.keep_solutions = true;
  opts.resilience.max_retries = 2;
  opts.resilience.retry_backoff_s = 1e-4;
  Server server(cache, opts);

  const auto sys = shared_problem(ProblemKind::kDiagDominant, 12, 3, 5);
  const Fingerprint fp = fingerprint(*sys);
  server.register_system(fp, [sys] { return sys; });
  const la::Matrix rhs = make_rhs(12, 3, 1, 31);
  ASSERT_TRUE(server.submit(make_request(0, fp, rhs, 0.0)));
  server.drain();

  ASSERT_EQ(server.completions().size(), 1u);
  const Completion& c = server.completions()[0];
  EXPECT_EQ(c.outcome, Outcome::kDone);
  EXPECT_EQ(c.error, fault::ErrorCode::kOk);
  EXPECT_EQ(c.attempts, 2);
  EXPECT_FALSE(c.hedged);
  EXPECT_LT(btds::relative_residual(*sys, c.x, rhs), 1e-10);
  EXPECT_EQ(server.stats().resilience.retries, 1u);
  EXPECT_EQ(server.stats().resilience.retries_denied, 0u);
  EXPECT_EQ(server.stats().resilience.failed_cols, 0u);
  // The backoff made the retried batch finish later than close + service.
  EXPECT_GT(c.finish_s, c.close_s);
}

TEST(Retries, DeniedWhenBudgetExhausted) {
  fault::FaultPlan plan;
  plan.crash_before_send(0, 1);

  FactorCache::Options copts = cache_options();
  copts.session.engine.fault_plan = &plan;
  FactorCache cache(copts);
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.resilience.max_retries = 2;
  opts.resilience.retry_budget_ratio = 0.0;
  opts.resilience.retry_budget_burst = 0.0;  // no tokens, ever
  Server server(cache, opts);

  const auto sys = shared_problem(ProblemKind::kDiagDominant, 12, 3, 5);
  const Fingerprint fp = fingerprint(*sys);
  server.register_system(fp, [sys] { return sys; });
  ASSERT_TRUE(server.submit(make_request(0, fp, make_rhs(12, 3, 1, 32), 0.0)));
  server.drain();

  ASSERT_EQ(server.completions().size(), 1u);
  const Completion& c = server.completions()[0];
  EXPECT_EQ(c.outcome, Outcome::kFailed);
  EXPECT_EQ(c.error, fault::ErrorCode::kInjectedCrash);
  EXPECT_EQ(c.attempts, 1);
  EXPECT_EQ(server.stats().resilience.retries, 0u);
  EXPECT_EQ(server.stats().resilience.retries_denied, 1u);
  EXPECT_EQ(server.stats().resilience.failed_cols, 1u);
  EXPECT_EQ(server.stats().resilience.contained_batches, 1u);
}

TEST(Retries, BackoffScheduleMatchesTheJitterStream) {
  // Two one-shot crashes: attempts 1 and 2 fail, attempt 3 succeeds. With
  // no service-time estimate yet, the extra latency is exactly the two
  // jittered backoffs drawn from the documented stream.
  const auto sys = shared_problem(ProblemKind::kDiagDominant, 12, 3, 5);
  const Fingerprint fp = fingerprint(*sys);
  const la::Matrix rhs = make_rhs(12, 3, 1, 33);

  double clean_finish = 0.0;
  {
    FactorCache cache(cache_options());
    ServerOptions opts;
    opts.window_s = 1e-3;
    Server server(cache, opts);
    server.register_system(fp, [sys] { return sys; });
    ASSERT_TRUE(server.submit(make_request(0, fp, rhs, 0.0)));
    server.drain();
    clean_finish = server.completions()[0].finish_s;
  }

  fault::FaultPlan plan;
  plan.crash_before_send(0, 1);
  plan.crash_before_send(0, 2);
  FactorCache::Options copts = cache_options();
  copts.session.engine.fault_plan = &plan;
  FactorCache cache(copts);
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.resilience.max_retries = 3;
  opts.resilience.retry_backoff_s = 1e-3;
  Server server(cache, opts);
  server.register_system(fp, [sys] { return sys; });
  ASSERT_TRUE(server.submit(make_request(0, fp, rhs, 0.0)));
  server.drain();

  ASSERT_EQ(server.completions().size(), 1u);
  const Completion& c = server.completions()[0];
  EXPECT_EQ(c.outcome, Outcome::kDone);
  EXPECT_EQ(c.attempts, 3);
  EXPECT_EQ(server.stats().resilience.retries, 2u);

  // Replay the documented jitter stream: seeded by resilience seed and
  // the first live request id, means 2^(k-1) * backoff.
  std::uint64_t state = opts.resilience.seed ^ (0x9e3779b97f4a7c15ull * (0 + 1));
  const double j1 = jittered(state, 1e-3);
  const double j2 = jittered(state, 2e-3);
  EXPECT_NEAR(c.finish_s, clean_finish + j1 + j2, 1e-12);
}

TEST(Retries, HedgedAttemptOverlapsTheFailedPrimary) {
  // Warm the estimate with a clean batch on system A, then inject a crash
  // into B's factorization. The hedged server charges only the hedge
  // delay for the failed primary; the plain server charges a full failed
  // attempt plus an exponential backoff — strictly slower.
  const auto sys_a = shared_problem(ProblemKind::kDiagDominant, 12, 3, 1);
  const auto sys_b = shared_problem(ProblemKind::kDiagDominant, 12, 3, 2);
  const Fingerprint fp_a = fingerprint(*sys_a);
  const Fingerprint fp_b = fingerprint(*sys_b);
  const la::Matrix rhs = make_rhs(12, 3, 1, 34);

  struct Run {
    double finish_s = 0.0;
    std::uint64_t hedges = 0;
    int attempts = 0;
    bool hedged = false;
  };
  const auto run_with_hedge = [&](bool hedge) {
    fault::FaultPlan plan;  // empty during the warmup batch
    FactorCache::Options copts = cache_options();
    copts.session.engine.fault_plan = &plan;
    FactorCache cache(copts);
    ServerOptions opts;
    opts.window_s = 1e-3;
    opts.resilience.max_retries = 2;
    opts.resilience.retry_backoff_s = 1e-3;
    opts.resilience.hedge = hedge;
    Server server(cache, opts);
    server.register_system(fp_a, [sys_a] { return sys_a; });
    server.register_system(fp_b, [sys_b] { return sys_b; });

    EXPECT_TRUE(server.submit(make_request(0, fp_a, rhs, 0.0)));
    server.drain();  // warmup: sets the service-time estimate

    plan.crash_before_send(0, 1);  // armed only for the next batch
    EXPECT_TRUE(server.submit(make_request(1, fp_b, rhs, 1.0)));
    server.drain();

    Run run;
    run.finish_s = server.completions()[1].finish_s;
    run.attempts = server.completions()[1].attempts;
    run.hedged = server.completions()[1].hedged;
    run.hedges = server.stats().resilience.hedges;
    return run;
  };

  const Run hedged = run_with_hedge(true);
  const Run plain = run_with_hedge(false);
  EXPECT_EQ(hedged.attempts, 2);
  EXPECT_EQ(plain.attempts, 2);
  EXPECT_TRUE(hedged.hedged);
  EXPECT_FALSE(plain.hedged);
  EXPECT_EQ(hedged.hedges, 1u);
  EXPECT_EQ(plain.hedges, 0u);
  EXPECT_LT(hedged.finish_s, plain.finish_s);
}

TEST(Retries, ColdStartHedgeFallsBackToBackoff) {
  // Regression: before the first completion the service-time EWMA has no
  // sample (est_service_s_ == 0), so a hedge delay derived from it was
  // zero — every transient failure in the cold window hedged instantly
  // and for free. A cold server with --hedge but no explicit hedge delay
  // must take the jittered backoff path instead.
  const auto sys = shared_problem(ProblemKind::kDiagDominant, 12, 3, 5);
  const Fingerprint fp = fingerprint(*sys);
  const la::Matrix rhs = make_rhs(12, 3, 1, 35);

  fault::FaultPlan plan;
  plan.crash_before_send(0, 1);  // fails the very first (cold) attempt
  FactorCache::Options copts = cache_options();
  copts.session.engine.fault_plan = &plan;
  FactorCache cache(copts);
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.resilience.max_retries = 2;
  opts.resilience.retry_backoff_s = 1e-3;
  opts.resilience.hedge = true;  // hedge requested, but the estimate is cold
  Server server(cache, opts);
  server.register_system(fp, [sys] { return sys; });
  ASSERT_TRUE(server.submit(make_request(0, fp, rhs, 0.0)));
  server.drain();

  ASSERT_EQ(server.completions().size(), 1u);
  const Completion& c = server.completions()[0];
  EXPECT_EQ(c.outcome, Outcome::kDone);
  EXPECT_EQ(c.attempts, 2);
  // The cold retry must NOT be recorded as a hedge...
  EXPECT_FALSE(c.hedged);
  EXPECT_EQ(server.stats().resilience.hedges, 0u);
  // ...and must pay a real (strictly positive) backoff: the finish time
  // replays the documented jitter stream, never the zero-delay hedge.
  std::uint64_t state = opts.resilience.seed ^ (0x9e3779b97f4a7c15ull * (0 + 1));
  const double j1 = jittered(state, 1e-3);
  EXPECT_GT(j1, 0.0);
  EXPECT_GE(c.finish_s - c.start_s, j1);
}

TEST(Retries, ColdStartExplicitHedgeDelayStillHedges) {
  // Companion: an explicit --hedge-delay is usable from a cold start — the
  // guard only disarms the *derived* (EWMA-based) delay.
  const auto sys = shared_problem(ProblemKind::kDiagDominant, 12, 3, 6);
  const Fingerprint fp = fingerprint(*sys);
  const la::Matrix rhs = make_rhs(12, 3, 1, 36);

  fault::FaultPlan plan;
  plan.crash_before_send(0, 1);
  FactorCache::Options copts = cache_options();
  copts.session.engine.fault_plan = &plan;
  FactorCache cache(copts);
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.resilience.max_retries = 2;
  opts.resilience.retry_backoff_s = 1e-3;
  opts.resilience.hedge = true;
  opts.resilience.hedge_delay_s = 5e-4;
  Server server(cache, opts);
  server.register_system(fp, [sys] { return sys; });
  ASSERT_TRUE(server.submit(make_request(0, fp, rhs, 0.0)));
  server.drain();

  ASSERT_EQ(server.completions().size(), 1u);
  const Completion& c = server.completions()[0];
  EXPECT_EQ(c.outcome, Outcome::kDone);
  EXPECT_TRUE(c.hedged);
  EXPECT_EQ(server.stats().resilience.hedges, 1u);
  EXPECT_GE(c.finish_s - c.start_s, opts.resilience.hedge_delay_s);
}

// ---------------------------------------------------------------------------
// Overload shedding.

TEST(Overload, ShedsOnQueueDepth) {
  FactorCache cache(cache_options());
  ServerOptions opts;
  opts.window_s = 1e-2;
  opts.resilience.shed_queue_cols = 2;
  Server server(cache, opts);

  const auto sys = shared_problem(ProblemKind::kDiagDominant, 10, 2, 3);
  const Fingerprint fp = fingerprint(*sys);
  server.register_system(fp, [sys] { return sys; });
  const la::Matrix rhs = make_rhs(10, 2, 1, 41);

  EXPECT_EQ(server.try_submit(make_request(0, fp, rhs, 0.0)), Admission::kAdmitted);
  EXPECT_EQ(server.try_submit(make_request(1, fp, rhs, 0.0)), Admission::kAdmitted);
  EXPECT_EQ(server.try_submit(make_request(2, fp, rhs, 0.0)), Admission::kShed);
  EXPECT_EQ(server.stats().resilience.shed, 1u);
  server.drain();
  EXPECT_EQ(server.stats().served, 2u);

  // Queue drained: admissions flow again.
  EXPECT_EQ(server.try_submit(make_request(3, fp, rhs, 1.0)), Admission::kAdmitted);
  server.drain();
}

TEST(Overload, ShedsOnExecutorBacklog) {
  FactorCache cache(cache_options());
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.resilience.shed_backlog_s = 1e-6;
  Server server(cache, opts);

  const auto sys = shared_problem(ProblemKind::kDiagDominant, 12, 3, 3);
  const Fingerprint fp = fingerprint(*sys);
  server.register_system(fp, [sys] { return sys; });
  const la::Matrix rhs = make_rhs(12, 3, 1, 42);

  EXPECT_EQ(server.try_submit(make_request(0, fp, rhs, 0.0)), Admission::kAdmitted);
  server.drain();  // executor busy until ~1e-3 + factor + solve

  // An arrival at the close instant observes a backlog of the whole
  // service time — far above the 1 microsecond bound.
  EXPECT_EQ(server.try_submit(make_request(1, fp, rhs, 1e-3)), Admission::kShed);
  EXPECT_EQ(server.stats().resilience.shed, 1u);

  // Once the arrival clock passes the executor's busy horizon the
  // backlog signal clears.
  EXPECT_EQ(server.try_submit(make_request(2, fp, rhs, 1.0)), Admission::kAdmitted);
  server.drain();
  EXPECT_EQ(server.stats().served, 2u);
}

// ---------------------------------------------------------------------------
// Fault containment and the circuit breaker at server level.

TEST(Containment, PermanentFailureFailsOnlyItsBatch) {
  auto bad = make_problem(ProblemKind::kDiagDominant, 12, 3, 7);
  btds::plant_singular_pivot(bad, 0);
  const auto sys_bad = std::make_shared<const btds::BlockTridiag>(std::move(bad));
  const auto sys_good = shared_problem(ProblemKind::kDiagDominant, 12, 3, 8);
  const Fingerprint fp_bad = fingerprint(*sys_bad);
  const Fingerprint fp_good = fingerprint(*sys_good);

  FactorCache cache(cache_options());
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.keep_solutions = true;
  opts.resilience.max_retries = 3;  // permanent: must not be spent
  Server server(cache, opts);
  server.register_system(fp_bad, [sys_bad] { return sys_bad; });
  server.register_system(fp_good, [sys_good] { return sys_good; });

  const la::Matrix rhs = make_rhs(12, 3, 1, 51);
  ASSERT_TRUE(server.submit(make_request(0, fp_bad, rhs, 0.0, /*tenant=*/0)));
  ASSERT_TRUE(server.submit(make_request(1, fp_good, rhs, 0.0, /*tenant=*/1)));
  server.drain();

  ASSERT_EQ(server.completions().size(), 2u);
  const Completion* failed = nullptr;
  const Completion* done = nullptr;
  for (const Completion& c : server.completions()) {
    (c.outcome == Outcome::kFailed ? failed : done) = &c;
  }
  ASSERT_NE(failed, nullptr);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(failed->id, 0u);
  EXPECT_EQ(failed->error, fault::ErrorCode::kSingularPivot);
  EXPECT_EQ(failed->attempts, 1);  // not transient: no retry burned
  EXPECT_EQ(failed->batch, Completion::kNoBatch);
  EXPECT_EQ(done->id, 1u);
  EXPECT_EQ(done->outcome, Outcome::kDone);
  EXPECT_LT(btds::relative_residual(*sys_good, done->x, rhs), 1e-10);

  EXPECT_EQ(server.stats().resilience.contained_batches, 1u);
  EXPECT_EQ(server.stats().resilience.failed_cols, 1u);
  EXPECT_EQ(server.stats().resilience.retries, 0u);

  // The server keeps serving after the contained failure.
  ASSERT_TRUE(server.submit(make_request(2, fp_good, rhs, 1.0)));
  server.drain();
  EXPECT_EQ(server.stats().served, 2u);
}

TEST(Containment, BreakerIsolatesAFailingTenant) {
  auto bad = make_problem(ProblemKind::kDiagDominant, 12, 3, 7);
  btds::plant_singular_pivot(bad, 0);
  const auto sys_bad = std::make_shared<const btds::BlockTridiag>(std::move(bad));
  const auto sys_good = shared_problem(ProblemKind::kDiagDominant, 12, 3, 8);
  const Fingerprint fp_bad = fingerprint(*sys_bad);
  const Fingerprint fp_good = fingerprint(*sys_good);

  FactorCache cache(cache_options());
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.resilience.breaker_failures = 2;
  opts.resilience.breaker_cooldown_s = 0.1;
  Server server(cache, opts);
  server.register_system(fp_bad, [sys_bad] { return sys_bad; });
  server.register_system(fp_good, [sys_good] { return sys_good; });
  const la::Matrix rhs = make_rhs(12, 3, 1, 52);

  // Two consecutive failures trip tenant 0's breaker.
  EXPECT_EQ(server.try_submit(make_request(0, fp_bad, rhs, 0.0)), Admission::kAdmitted);
  EXPECT_EQ(server.try_submit(make_request(1, fp_bad, rhs, 0.01)), Admission::kAdmitted);
  EXPECT_EQ(server.try_submit(make_request(2, fp_bad, rhs, 0.05)), Admission::kCircuitOpen);
  EXPECT_EQ(server.stats().resilience.breaker_trips, 1u);
  EXPECT_EQ(server.stats().resilience.breaker_rejected, 1u);

  // Another tenant is unaffected by tenant 0's open breaker.
  EXPECT_EQ(server.try_submit(make_request(3, fp_good, rhs, 0.06, /*tenant=*/1)),
            Admission::kAdmitted);

  // After the cooldown a half-open probe is admitted; its failure
  // re-trips immediately.
  EXPECT_EQ(server.try_submit(make_request(4, fp_bad, rhs, 0.2)), Admission::kAdmitted);
  EXPECT_EQ(server.try_submit(make_request(5, fp_good, rhs, 0.3)), Admission::kCircuitOpen);
  EXPECT_EQ(server.stats().resilience.breaker_trips, 2u);

  // A successful half-open probe closes the breaker for good.
  EXPECT_EQ(server.try_submit(make_request(6, fp_good, rhs, 0.35)), Admission::kAdmitted);
  EXPECT_EQ(server.try_submit(make_request(7, fp_bad, rhs, 0.5)), Admission::kAdmitted);
  server.drain();

  EXPECT_EQ(server.stats().resilience.breaker_rejected, 2u);
  EXPECT_EQ(server.stats().resilience.breaker_trips, 2u);
  // Terminal states: 4 failed bad columns, 2 served good ones.
  EXPECT_EQ(server.stats().resilience.failed_cols, 4u);
  EXPECT_EQ(server.stats().served, 2u);
}

// ---------------------------------------------------------------------------
// Cache invalidation (satellite: in-flight leases stay safe).

TEST(Invalidation, LeaseSurvivesAndNextAcquireRefactors) {
  FactorCache cache(cache_options());
  const auto sys = shared_problem(ProblemKind::kDiagDominant, 12, 3, 1);
  const Fingerprint fp = fingerprint(*sys);
  int builds = 0;
  const SystemMaker make = [&] {
    ++builds;
    return sys;
  };

  FactorCache::Lease lease = cache.acquire(fp, make);
  EXPECT_EQ(builds, 1);
  EXPECT_TRUE(cache.contains(fp));

  EXPECT_TRUE(cache.invalidate(fp));
  EXPECT_FALSE(cache.contains(fp));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_FALSE(cache.invalidate(fp));  // absent: reported, not counted twice
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // The in-flight lease still owns a working factorization.
  const la::Matrix b = make_rhs(12, 3, 2, 9);
  const la::Matrix x = lease.session->solve(b);
  EXPECT_LT(btds::relative_residual(*sys, x, b), 1e-10);

  // The next acquire is a miss and refactors from scratch.
  FactorCache::Lease again = cache.acquire(fp, make);
  EXPECT_FALSE(again.hit);
  EXPECT_EQ(builds, 2);
  EXPECT_NE(again.session.get(), lease.session.get());
}

TEST(Invalidation, BreakdownFlaggedServeDropsTheEntry) {
  // Force every factorization to flag breakdown (threshold below any real
  // pivot growth) with the refine recovery rung: the batch is *served*
  // degraded, and the suspect entry is dropped so the next request
  // refactors instead of reusing it.
  FactorCache::Options copts = cache_options();
  copts.session.ard.breakdown_growth_threshold = 1e-12;
  copts.session.engine.on_breakdown = fault::BreakdownPolicy::kRefine;
  FactorCache cache(copts);
  ServerOptions opts;
  opts.window_s = 1e-3;
  opts.keep_solutions = true;
  Server server(cache, opts);

  const auto sys = shared_problem(ProblemKind::kDiagDominant, 12, 3, 3);
  const Fingerprint fp = fingerprint(*sys);
  server.register_system(fp, [sys] { return sys; });
  const la::Matrix rhs = make_rhs(12, 3, 1, 61);

  ASSERT_TRUE(server.submit(make_request(0, fp, rhs, 0.0)));
  server.drain();
  ASSERT_EQ(server.completions().size(), 1u);
  const Completion& c = server.completions()[0];
  EXPECT_EQ(c.outcome, Outcome::kDone);
  EXPECT_NE(c.error, fault::ErrorCode::kOk);  // served, but degraded
  EXPECT_LT(btds::relative_residual(*sys, c.x, rhs), 1e-8);
  EXPECT_EQ(server.stats().resilience.degraded_cols, 1u);
  EXPECT_EQ(server.stats().resilience.invalidations, 1u);
  EXPECT_FALSE(cache.contains(fp));

  // Next request refactors (deterministically breaks down again — that is
  // the documented cost of not reusing a suspect factorization).
  ASSERT_TRUE(server.submit(make_request(1, fp, rhs, 1.0)));
  server.drain();
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(server.stats().resilience.invalidations, 2u);
}

// ---------------------------------------------------------------------------
// Load generator: chaos determinism and the terminal-state ledger.

TEST(LoadGenResilience, AccountingBalancesUnderChaosAndThreads) {
  LoadOptions load;
  load.requests = 96;
  load.clients = 8;
  load.tenants = 2;
  load.pool = 2;
  load.hot = 1;
  load.num_blocks = 16;
  load.block_size = 3;
  load.seed = 9;
  load.deadline_s = 8e-3;
  load.max_resubmits = 3;

  const auto run_with_threads = [&](int threads) {
    fault::FaultPlan plan;
    plan.crash_before_send(0, 3);
    plan.flip_bit(1, 5, 13);
    FactorCache::Options copts = cache_options(0, 2);
    copts.session.engine.threads_per_rank = threads;
    copts.session.engine.fault_plan = &plan;
    FactorCache cache(copts);
    ServerOptions sopts;
    sopts.window_s = 1e-3;
    sopts.resilience.max_retries = 2;
    sopts.resilience.breaker_failures = 4;
    sopts.resilience.shed_queue_cols = 48;
    Server server(cache, sopts);
    return run_load(server, load);
  };

  const LoadResult t1 = run_with_threads(1);
  const LoadResult t3 = run_with_threads(3);

  // Exactly one typed terminal state per logical request.
  EXPECT_EQ(t1.completed, t1.issued);
  EXPECT_EQ(t1.done + t1.failed + t1.deadline_exceeded, t1.completed);
  EXPECT_EQ(t1.quota_rejected + t1.shed + t1.breaker_rejected + t1.deadline_infeasible,
            t1.rejected);
  EXPECT_EQ(t1.issued + t1.gave_up, static_cast<std::uint64_t>(load.requests));

  // Byte-identical across worker-thread counts, including every
  // resilience counter and the latency distribution.
  EXPECT_EQ(t1.issued, t3.issued);
  EXPECT_EQ(t1.rejected, t3.rejected);
  EXPECT_EQ(t1.done, t3.done);
  EXPECT_EQ(t1.failed, t3.failed);
  EXPECT_EQ(t1.deadline_exceeded, t3.deadline_exceeded);
  EXPECT_EQ(t1.degraded, t3.degraded);
  EXPECT_EQ(t1.gave_up, t3.gave_up);
  EXPECT_EQ(t1.retries, t3.retries);
  EXPECT_EQ(t1.hedges, t3.hedges);
  EXPECT_EQ(t1.retries_denied, t3.retries_denied);
  EXPECT_EQ(t1.breaker_trips, t3.breaker_trips);
  EXPECT_EQ(t1.invalidations, t3.invalidations);
  EXPECT_EQ(t1.shed, t3.shed);
  EXPECT_EQ(t1.deadline_infeasible, t3.deadline_infeasible);
  EXPECT_EQ(t1.deadline_cancelled, t3.deadline_cancelled);
  EXPECT_EQ(t1.p50_s, t3.p50_s);
  EXPECT_EQ(t1.p99_s, t3.p99_s);
  EXPECT_EQ(t1.makespan_s, t3.makespan_s);
  EXPECT_EQ(t1.goodput_rps, t3.goodput_rps);

  // The injected faults actually exercised the retry path.
  EXPECT_GT(t1.retries + t1.failed, 0u);
}

TEST(LoadGenResilience, ClientsGiveUpUnderSustainedShed) {
  LoadOptions load;
  load.requests = 64;
  load.clients = 16;
  load.tenants = 2;
  load.pool = 1;
  load.hot = 1;
  load.num_blocks = 16;
  load.block_size = 3;
  load.seed = 11;
  load.think_s = 1e-5;  // hammer: far faster than service
  load.retry_backoff_s = 1e-5;
  load.max_resubmits = 1;

  FactorCache cache(cache_options(0, 2));
  ServerOptions sopts;
  sopts.window_s = 1e-3;
  sopts.resilience.shed_queue_cols = 2;
  Server server(cache, sopts);
  const LoadResult r = run_load(server, load);

  EXPECT_GT(r.shed, 0u);
  EXPECT_GT(r.gave_up, 0u);
  EXPECT_EQ(r.completed, r.issued);
  EXPECT_EQ(r.done + r.failed + r.deadline_exceeded, r.completed);
  EXPECT_EQ(r.quota_rejected + r.shed + r.breaker_rejected + r.deadline_infeasible, r.rejected);
  EXPECT_EQ(r.issued + r.gave_up, static_cast<std::uint64_t>(load.requests));
}

}  // namespace
}  // namespace ardbt::service
