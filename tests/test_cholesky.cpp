#include "src/la/cholesky.hpp"

#include <gtest/gtest.h>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/lu.hpp"
#include "src/la/random.hpp"

namespace ardbt::la {
namespace {

/// Random SPD matrix: A = B B^T + n I.
Matrix random_spd(index_t n, Rng& rng) {
  const Matrix b = random_uniform(n, n, rng);
  const Matrix bt = transposed(b.view());
  Matrix a = matmul(b.view(), bt.view());
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(Cholesky, ReconstructsMatrix) {
  Rng rng = make_rng(61);
  for (index_t n : {1, 2, 6, 15}) {
    const Matrix a = random_spd(n, rng);
    const CholeskyFactors f = cholesky_factor(a.view());
    ASSERT_TRUE(f.ok()) << n;
    const Matrix lt = transposed(f.l.view());
    Matrix llt = matmul(f.l.view(), lt.view());
    matrix_axpy(-1.0, a.view(), llt.view());
    EXPECT_LT(norm_fro(llt.view()), 1e-11 * norm_fro(a.view())) << n;
  }
}

TEST(Cholesky, SolveMatchesLu) {
  Rng rng = make_rng(67);
  const Matrix a = random_spd(8, rng);
  const Matrix b = random_uniform(8, 4, rng);
  const CholeskyFactors fc = cholesky_factor(a.view());
  ASSERT_TRUE(fc.ok());
  const Matrix x_chol = cholesky_solve(fc, b.view());
  const LuFactors fl = lu_factor(a.view());
  const Matrix x_lu = lu_solve(fl, b.view());
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 4; ++j) EXPECT_NEAR(x_chol(i, j), x_lu(i, j), 1e-11);
  }
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  const CholeskyFactors f = cholesky_factor(a.view());
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.info, 2);
}

TEST(Cholesky, RejectsZeroMatrix) {
  const Matrix a(3, 3);
  const CholeskyFactors f = cholesky_factor(a.view());
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.info, 1);
}

TEST(Cholesky, OnlyReadsLowerTriangle) {
  Rng rng = make_rng(71);
  Matrix a = random_spd(5, rng);
  Matrix garbled = a;
  for (index_t i = 0; i < 5; ++i) {
    for (index_t j = i + 1; j < 5; ++j) garbled(i, j) = 1e9;  // poison upper
  }
  const CholeskyFactors fa = cholesky_factor(a.view());
  const CholeskyFactors fg = cholesky_factor(garbled.view());
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fg.ok());
  EXPECT_TRUE(fa.l == fg.l);
}

TEST(Cholesky, FlopFormulaIsHalfOfLuOrder) {
  EXPECT_LT(cholesky_factor_flops(32), lu_factor_flops(32));
  EXPECT_NEAR(cholesky_factor_flops(32) / lu_factor_flops(32), 0.5, 1e-9);
}

}  // namespace
}  // namespace ardbt::la
