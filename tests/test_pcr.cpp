#include "src/core/pcr.hpp"

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/btds/thomas.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::core {
namespace {

using btds::BlockTridiag;
using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;
using la::Matrix;

Matrix pcr_solve(const BlockTridiag& sys, const Matrix& b, int p) {
  Matrix x(b.rows(), b.cols());
  const btds::RowPartition part(sys.num_blocks(), p);
  mpsim::run(p, [&](mpsim::Comm& comm) {
    const auto f = PcrFactorization::factor(comm, sys, part);
    f.solve(comm, b, x);
  });
  return x;
}

class PcrSweep : public ::testing::TestWithParam<
                     std::tuple<ProblemKind, la::index_t, la::index_t, int, la::index_t>> {};

TEST_P(PcrSweep, ResidualIsSmall) {
  const auto [kind, n, m, p, r] = GetParam();
  if (n < p) GTEST_SKIP() << "partition requires N >= P";
  const BlockTridiag sys = make_problem(kind, n, m);
  const Matrix b = make_rhs(n, m, r);
  const Matrix x = pcr_solve(sys, b, p);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-9)
      << btds::to_string(kind) << " N=" << n << " M=" << m << " P=" << p << " R=" << r;
}

std::string pcr_name(const ::testing::TestParamInfo<PcrSweep::ParamType>& info) {
  return std::string(btds::to_string(std::get<0>(info.param))) + "_N" +
         std::to_string(std::get<1>(info.param)) + "_M" + std::to_string(std::get<2>(info.param)) +
         "_P" + std::to_string(std::get<3>(info.param)) + "_R" +
         std::to_string(std::get<4>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PcrSweep,
    ::testing::Combine(::testing::Values(ProblemKind::kDiagDominant, ProblemKind::kPoisson2D,
                                         ProblemKind::kToeplitz),
                       ::testing::Values<la::index_t>(1, 2, 3, 17, 32, 65),
                       ::testing::Values<la::index_t>(1, 4),
                       ::testing::Values(1, 2, 3, 4, 7), ::testing::Values<la::index_t>(1, 3)),
    pcr_name);

TEST(Pcr, MatchesThomasExactly) {
  const BlockTridiag sys = make_problem(ProblemKind::kConvectionDiffusion, 40, 3);
  const Matrix b = make_rhs(40, 3, 2);
  const Matrix x_pcr = pcr_solve(sys, b, 4);
  const Matrix x_ref = btds::thomas_solve(sys, b);
  for (la::index_t i = 0; i < b.rows(); ++i) {
    for (la::index_t j = 0; j < b.cols(); ++j) EXPECT_NEAR(x_pcr(i, j), x_ref(i, j), 1e-9);
  }
}

TEST(Pcr, StableOnPoissonAtLargeN) {
  // PCR, like the two-port solver, has no transfer-matrix instability.
  const BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, 1024, 4);
  const Matrix b = make_rhs(1024, 4, 2);
  const Matrix x = pcr_solve(sys, b, 4);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-10);
}

TEST(Pcr, FactorReusedAcrossSolves) {
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, 24, 3);
  const Matrix b1 = make_rhs(24, 3, 2, 1);
  const Matrix b2 = make_rhs(24, 3, 5, 2);
  Matrix x1(b1.rows(), b1.cols());
  Matrix x2(b2.rows(), b2.cols());
  const btds::RowPartition part(24, 3);
  mpsim::run(3, [&](mpsim::Comm& comm) {
    const auto f = PcrFactorization::factor(comm, sys, part);
    EXPECT_GT(f.storage_bytes(), 0u);
    EXPECT_EQ(f.num_levels(), 5);  // ceil(log2 24)
    f.solve(comm, b1, x1);
    f.solve(comm, b2, x2);
  });
  EXPECT_LT(btds::relative_residual(sys, x1, b1), 1e-10);
  EXPECT_LT(btds::relative_residual(sys, x2, b2), 1e-10);
}

TEST(Pcr, FlopFormulasCarryLogNFactor) {
  const double f1 = PcrFactorization::factor_flops(1024, 8, 4);
  const double f2 = PcrFactorization::factor_flops(2048, 8, 4);
  // Doubling N doubles rows AND adds a level: ratio > 2.
  EXPECT_GT(f2 / f1, 2.05);
  EXPECT_GT(PcrFactorization::solve_flops(1024, 8, 16, 4),
            PcrFactorization::solve_flops(1024, 8, 8, 4));
}

TEST(Pcr, SingleRowSystem) {
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, 1, 3);
  const Matrix b = make_rhs(1, 3, 2);
  const Matrix x = pcr_solve(sys, b, 1);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-12);
}

TEST(Pcr, FlopCounterWithinModelFactor) {
  const la::index_t n = 64, m = 8, r = 8;
  const int p = 4;
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const Matrix b = make_rhs(n, m, r);
  Matrix x(b.rows(), b.cols());
  const btds::RowPartition part(n, p);
  const auto report = mpsim::run(p, [&](mpsim::Comm& comm) {
    const auto f = PcrFactorization::factor(comm, sys, part);
    f.solve(comm, b, x);
  });
  const double measured = report.totals().flops_charged;
  const double model = p * (PcrFactorization::factor_flops(n, m, p) +
                            PcrFactorization::solve_flops(n, m, r, p));
  EXPECT_GT(measured, 0.4 * model);
  EXPECT_LT(measured, 1.6 * model);
}

}  // namespace
}  // namespace ardbt::core
