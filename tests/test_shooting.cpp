#include "src/core/shooting.hpp"

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"

namespace ardbt::core {
namespace {

using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;

TEST(Shooting, ExactForTinySystems) {
  for (ProblemKind kind : {ProblemKind::kDiagDominant, ProblemKind::kPoisson2D}) {
    const auto sys = make_problem(kind, 5, 2);
    const auto b = make_rhs(5, 2, 3);
    const auto x = shooting_solve(sys, b);
    EXPECT_LT(btds::relative_residual(sys, x, b), 1e-10) << btds::to_string(kind);
  }
}

TEST(Shooting, InstabilityGrowsGeometricallyWithN) {
  // The point of keeping this solver: interior recovery amplifies the
  // boundary-solve rounding by lambda^i (lambda ~ 3.7 for scalar Poisson).
  const auto residual_at = [&](la::index_t n) {
    const auto sys = make_problem(ProblemKind::kPoisson2D, n, 1);
    const auto b = make_rhs(n, 1, 1);
    return btds::relative_residual(sys, shooting_solve(sys, b), b);
  };
  const double r10 = residual_at(10);
  const double r40 = residual_at(40);
  const double r80 = residual_at(80);
  EXPECT_LT(r10, 1e-9);
  EXPECT_GT(r80, 1e-3);        // effectively garbage
  EXPECT_GT(r80, r40 * 10.0);  // and still growing
}

TEST(Shooting, HandlesMultipleRhsConsistently) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 6, 3);
  const auto b = make_rhs(6, 3, 4);
  const auto x_all = shooting_solve(sys, b);
  // Column 2 solved alone must match column 2 of the batched solve.
  la::Matrix b2(b.rows(), 1);
  for (la::index_t i = 0; i < b.rows(); ++i) b2(i, 0) = b(i, 2);
  const auto x2 = shooting_solve(sys, b2);
  for (la::index_t i = 0; i < b.rows(); ++i) EXPECT_NEAR(x2(i, 0), x_all(i, 2), 1e-9);
}

}  // namespace
}  // namespace ardbt::core
