#include "src/la/blas1.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/la/matrix.hpp"

namespace ardbt::la {
namespace {

TEST(Blas1, Axpy) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{10.0, 20.0, 30.0};
  axpy(2.0, x, y);
  EXPECT_EQ(y[0], 12.0);
  EXPECT_EQ(y[2], 36.0);
}

TEST(Blas1, Scal) {
  std::vector<double> x{1.0, -2.0};
  scal(-3.0, x);
  EXPECT_EQ(x[0], -3.0);
  EXPECT_EQ(x[1], 6.0);
}

TEST(Blas1, Dot) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, 5.0, 6.0};
  EXPECT_EQ(dot(x, y), 32.0);
}

TEST(Blas1, Nrm2Basic) {
  const std::vector<double> x{3.0, 4.0};
  EXPECT_NEAR(nrm2(x), 5.0, 1e-14);
}

TEST(Blas1, Nrm2AvoidsOverflow) {
  const std::vector<double> x{1e200, 1e200};
  EXPECT_NEAR(nrm2(x), std::sqrt(2.0) * 1e200, 1e186);
  EXPECT_TRUE(std::isfinite(nrm2(x)));
}

TEST(Blas1, Nrm2EmptyAndZero) {
  EXPECT_EQ(nrm2(std::span<const double>()), 0.0);
  const std::vector<double> z{0.0, 0.0};
  EXPECT_EQ(nrm2(z), 0.0);
}

TEST(Blas1, Amax) {
  const std::vector<double> x{-7.0, 3.0, 5.0};
  EXPECT_EQ(amax(x), 7.0);
  EXPECT_EQ(amax(std::span<const double>()), 0.0);
}

TEST(Blas1, MatrixNorms) {
  const Matrix a{{1.0, -2.0}, {-3.0, 4.0}};
  EXPECT_NEAR(norm_fro(a.view()), std::sqrt(30.0), 1e-14);
  EXPECT_EQ(norm_inf(a.view()), 7.0);   // max row sum |−3|+|4|
  EXPECT_EQ(norm_one(a.view()), 6.0);   // max col sum |−2|+|4|
  EXPECT_EQ(norm_max(a.view()), 4.0);
}

TEST(Blas1, NormsOfStridedView) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(0, 1) = -5.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  const ConstMatrixView blk = a.block(0, 0, 2, 2);
  EXPECT_EQ(norm_inf(blk), 6.0);
  EXPECT_EQ(norm_max(blk), 5.0);
}

TEST(Blas1, MatrixAxpyAndScal) {
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  Matrix b{{1.0, 2.0}, {3.0, 4.0}};
  matrix_axpy(2.0, a.view(), b.view());
  EXPECT_EQ(b(0, 0), 3.0);
  EXPECT_EQ(b(1, 1), 6.0);
  matrix_scal(0.5, b.view());
  EXPECT_EQ(b(0, 0), 1.5);
}

}  // namespace
}  // namespace ardbt::la
