#include "src/par/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/btds/generators.hpp"
#include "src/btds/thomas.hpp"
#include "src/la/gemm.hpp"
#include "src/la/gemv.hpp"
#include "src/la/random.hpp"

namespace ardbt {
namespace {

using la::index_t;
using la::Matrix;

TEST(ChunkBounds, PartitionsExactlyAndInOrder) {
  for (int nchunks : {1, 2, 3, 7, 16}) {
    for (std::int64_t n : {0, 1, 5, 16, 100, 101}) {
      std::int64_t covered = 0;
      std::int64_t prev_hi = 3;  // begin
      for (int c = 0; c < nchunks; ++c) {
        const auto [lo, hi] = par::Pool::chunk_bounds(3, 3 + n, c, nchunks);
        EXPECT_EQ(lo, prev_hi) << "chunks must tile contiguously";
        EXPECT_LE(lo, hi);
        covered += hi - lo;
        prev_hi = hi;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_hi, 3 + n);
    }
  }
}

TEST(ChunkBounds, IsAPureFunctionOfItsArguments) {
  const auto a = par::Pool::chunk_bounds(0, 97, 2, 5);
  const auto b = par::Pool::chunk_bounds(0, 97, 2, 5);
  EXPECT_EQ(a, b);
}

TEST(Pool, RejectsNonPositiveThreadCount) {
  EXPECT_THROW(par::Pool(0), std::invalid_argument);
  EXPECT_THROW(par::Pool(-3), std::invalid_argument);
}

TEST(Pool, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 2, 4, 8}) {
    par::Pool pool(threads);
    std::vector<int> hits(1000, 0);
    pool.parallel_for(0, 1000, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)] += 1;
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000) << "threads=" << threads;
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(Pool, EmptyRangeRunsNothing) {
  par::Pool pool(4);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::int64_t, std::int64_t) { ran = true; });
  pool.parallel_for(5, 2, [&](std::int64_t, std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Pool, FreeHelperFallsBackToSerialWithoutPool) {
  std::int64_t seen_lo = -1, seen_hi = -1;
  par::parallel_for(nullptr, 2, 9, [&](std::int64_t lo, std::int64_t hi) {
    seen_lo = lo;
    seen_hi = hi;
  });
  EXPECT_EQ(seen_lo, 2);
  EXPECT_EQ(seen_hi, 9);
}

TEST(Pool, PropagatesChunkExceptionsAndStaysUsable) {
  par::Pool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::int64_t lo, std::int64_t) {
                                   if (lo == 0) throw std::runtime_error("chunk failed");
                                 }),
               std::runtime_error);
  // The pool must survive a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::int64_t lo, std::int64_t hi) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(Pool, GemmIsBitIdenticalForAnyPoolSize) {
  la::Rng rng = la::make_rng(11, 0);
  const Matrix a = la::random_uniform(48, 64, rng);
  const Matrix b = la::random_uniform(64, 512, rng);
  Matrix c_ref(48, 512);
  la::gemm(1.0, a.view(), b.view(), 0.0, c_ref.view());
  for (int threads : {1, 2, 8}) {
    par::Pool pool(threads);
    Matrix c(48, 512);
    la::gemm(1.0, a.view(), b.view(), 0.0, c.view(), &pool);
    EXPECT_TRUE(c == c_ref) << "threads=" << threads;
  }
}

TEST(Pool, GemvIsBitIdenticalForAnyPoolSize) {
  la::Rng rng = la::make_rng(12, 0);
  const Matrix a = la::random_uniform(300, 200, rng);
  const Matrix xv = la::random_uniform(200, 1, rng);
  std::vector<double> x(xv.data().begin(), xv.data().end());
  std::vector<double> y_ref(300, 0.5);
  la::gemv(2.0, a.view(), x, 0.25, y_ref);
  for (int threads : {1, 2, 8}) {
    par::Pool pool(threads);
    std::vector<double> y(300, 0.5);
    la::gemv(2.0, a.view(), x, 0.25, y, &pool);
    EXPECT_EQ(y, y_ref) << "threads=" << threads;
  }
}

TEST(Pool, ThomasSolveIsBitIdenticalForAnyPoolSize) {
  const auto sys = btds::make_problem(btds::ProblemKind::kDiagDominant, 24, 6);
  const Matrix b = btds::make_rhs(24, 6, 33, /*seed=*/3);
  const auto f = btds::ThomasFactorization::factor(sys);
  const Matrix x_ref = f.solve(b);
  for (int threads : {1, 2, 8}) {
    par::Pool pool(threads);
    const Matrix x = f.solve(b, &pool);
    EXPECT_TRUE(x == x_ref) << "threads=" << threads;
  }
}

// Stress test for the fork-join handshake; run under -DARDBT_TSAN=ON this
// is the data-race gate for the pool.
TEST(PoolStress, ManySmallJobsFromManyEpochs) {
  par::Pool pool(8);
  std::vector<double> acc(64, 0.0);
  for (int job = 0; job < 500; ++job) {
    pool.parallel_for(0, static_cast<std::int64_t>(acc.size()),
                      [&](std::int64_t lo, std::int64_t hi) {
                        for (std::int64_t i = lo; i < hi; ++i) acc[static_cast<std::size_t>(i)] += 1.0;
                      });
  }
  for (double v : acc) EXPECT_EQ(v, 500.0);
}

}  // namespace
}  // namespace ardbt
