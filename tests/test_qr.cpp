#include "src/la/qr.hpp"

#include <gtest/gtest.h>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/random.hpp"

namespace ardbt::la {
namespace {

TEST(Qr, ReconstructsSquareMatrix) {
  Rng rng = make_rng(41);
  for (index_t n : {1, 2, 5, 12}) {
    const Matrix a = random_uniform(n, n, rng);
    const QrFactors f = qr_factor(a.view());
    // Q R == A.
    Matrix r_upper(n, n);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = i; j < n; ++j) r_upper(i, j) = f.qr(i, j);
    }
    Matrix qr_prod = r_upper;
    apply_q(f, qr_prod.view());
    matrix_axpy(-1.0, a.view(), qr_prod.view());
    EXPECT_LT(norm_fro(qr_prod.view()), 1e-12 * norm_fro(a.view()) + 1e-14) << n;
  }
}

TEST(Qr, QHasOrthonormalColumns) {
  Rng rng = make_rng(43);
  const Matrix a = random_uniform(9, 4, rng);
  const QrFactors f = qr_factor(a.view());
  const Matrix q = qr_q(f);
  EXPECT_EQ(q.rows(), 9);
  EXPECT_EQ(q.cols(), 4);
  const Matrix qt = transposed(q.view());
  Matrix gram = matmul(qt.view(), q.view());
  matrix_axpy(-1.0, Matrix::identity(4).view(), gram.view());
  EXPECT_LT(norm_fro(gram.view()), 1e-12);
}

TEST(Qr, SolvesSquareSystem) {
  Rng rng = make_rng(47);
  const Matrix a = random_diag_dominant(7, rng);
  const Matrix b = random_uniform(7, 3, rng);
  const QrFactors f = qr_factor(a.view());
  const Matrix x = qr_solve(f, b.view());
  Matrix res = matmul(a.view(), x.view());
  matrix_axpy(-1.0, b.view(), res.view());
  EXPECT_LT(norm_fro(res.view()), 1e-11 * norm_fro(b.view()));
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  Rng rng = make_rng(53);
  const Matrix a = random_uniform(10, 3, rng);
  const Matrix b = random_uniform(10, 1, rng);
  const QrFactors f = qr_factor(a.view());
  const Matrix x = qr_solve(f, b.view());
  // The residual must be orthogonal to range(A): A^T (A x - b) = 0.
  Matrix res = matmul(a.view(), x.view());
  matrix_axpy(-1.0, b.view(), res.view());
  const Matrix at = transposed(a.view());
  const Matrix atr = matmul(at.view(), res.view());
  EXPECT_LT(norm_fro(atr.view()), 1e-11);
}

TEST(Qr, HandlesBadlyScaledColumns) {
  // LU without full pivoting struggles here; QR must not.
  Matrix a{{1e-12, 1.0}, {1.0, 1.0}};
  const QrFactors f = qr_factor(a.view());
  const Matrix b{{1.0}, {2.0}};
  const Matrix x = qr_solve(f, b.view());
  Matrix res = matmul(a.view(), x.view());
  matrix_axpy(-1.0, b.view(), res.view());
  EXPECT_LT(norm_fro(res.view()), 1e-12);
}

TEST(Qr, RankDeficientThrowsOnSolve) {
  // A 3-4-5 column pair keeps the arithmetic exact, so R(1,1) is exactly
  // zero and the rank check must fire.
  Matrix a{{3.0, 6.0}, {4.0, 8.0}};
  const QrFactors f = qr_factor(a.view());
  EXPECT_EQ(f.qr(1, 1), 0.0);
  const Matrix b{{1.0}, {1.0}};
  EXPECT_THROW(qr_solve(f, b.view()), std::runtime_error);
}

TEST(Qr, FlopFormula) {
  EXPECT_GT(qr_factor_flops(10, 10), 0.0);
  EXPECT_GT(qr_factor_flops(20, 10), qr_factor_flops(10, 10));
}

}  // namespace
}  // namespace ardbt::la
