#include "src/fault/plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/btds/banded_lu.hpp"
#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/btds/thomas.hpp"
#include "src/core/solver.hpp"
#include "src/fault/status.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt {
namespace {

using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;

mpsim::EngineOptions charged() {
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  return engine;
}

// ---------------------------------------------------------------- taxonomy

TEST(Status, CodesRoundTripAndTransience) {
  EXPECT_EQ(fault::to_string(fault::ErrorCode::kSingularPivot), "singular-pivot");
  EXPECT_EQ(fault::to_string(fault::ErrorCode::kMessageCorrupt), "message-corrupt");
  EXPECT_TRUE(fault::is_transient(fault::ErrorCode::kMessageCorrupt));
  EXPECT_TRUE(fault::is_transient(fault::ErrorCode::kInjectedCrash));
  EXPECT_TRUE(fault::is_transient(fault::ErrorCode::kDeadline));
  EXPECT_FALSE(fault::is_transient(fault::ErrorCode::kSingularPivot));
  EXPECT_FALSE(fault::is_transient(fault::ErrorCode::kBreakdown));
}

TEST(Status, SolveErrorIsARuntimeErrorWithCode) {
  const fault::SingularPivotError e(fault::ErrorCode::kSingularPivot, "here", 3, 1, 42.0);
  EXPECT_EQ(e.code(), fault::ErrorCode::kSingularPivot);
  EXPECT_EQ(e.block_row(), 3);
  EXPECT_EQ(e.pivot_index(), 1);
  EXPECT_DOUBLE_EQ(e.growth(), 42.0);
  // Existing catch sites use std::runtime_error; the taxonomy must slot in.
  const std::runtime_error& base = e;
  EXPECT_NE(std::string(base.what()).find("here"), std::string::npos);
}

TEST(Status, ParseBreakdownPolicy) {
  using fault::BreakdownPolicy;
  EXPECT_EQ(fault::parse_breakdown_policy("failfast"), BreakdownPolicy::kFailFast);
  EXPECT_EQ(fault::parse_breakdown_policy("refine"), BreakdownPolicy::kRefine);
  EXPECT_EQ(fault::parse_breakdown_policy("fallback"), BreakdownPolicy::kFallback);
  EXPECT_FALSE(fault::parse_breakdown_policy("explode").has_value());
  for (auto p : {BreakdownPolicy::kFailFast, BreakdownPolicy::kRefine,
                 BreakdownPolicy::kFallback}) {
    EXPECT_EQ(fault::parse_breakdown_policy(fault::to_string(p)), p);
  }
}

TEST(Status, PivotDiagnosticsTrackExtremesAndGrowth) {
  fault::PivotDiagnostics d;
  d.observe(2.0, 8.0, 0);
  d.observe(0.5, 4.0, 3);
  EXPECT_DOUBLE_EQ(d.growth(), 16.0);
  EXPECT_EQ(d.min_pivot_block_row, 3);

  fault::PivotDiagnostics other;
  other.observe(0.25, 16.0, 7);
  d.merge(other);
  EXPECT_DOUBLE_EQ(d.growth(), 64.0);
  EXPECT_EQ(d.min_pivot_block_row, 7);

  fault::PivotDiagnostics sing;
  sing.singular_info = 5;
  EXPECT_TRUE(std::isinf(sing.growth()));
}

// --------------------------------------------------------------- fault plan

TEST(FaultPlan, RandomIsDeterministicPerSeed) {
  const auto a = fault::FaultPlan::random(123, 4, 8);
  const auto b = fault::FaultPlan::random(123, 4, 8);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.specs()[i].kind, b.specs()[i].kind);
    EXPECT_EQ(a.specs()[i].rank, b.specs()[i].rank);
    EXPECT_EQ(a.specs()[i].nth_send, b.specs()[i].nth_send);
    EXPECT_DOUBLE_EQ(a.specs()[i].seconds, b.specs()[i].seconds);
    // Crash faults only appear when explicitly requested.
    EXPECT_NE(a.specs()[i].kind, fault::FaultKind::kCrash);
  }
}

TEST(FaultPlan, ChecksumDetectsASingleFlippedBit) {
  std::vector<std::byte> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = std::byte(i * 7);
  const std::uint64_t before = fault::checksum(payload);
  payload[13] ^= std::byte{0x10};
  EXPECT_NE(fault::checksum(payload), before);
}

// ---------------------------------------------------- banded-LU fallback

TEST(BandedLu, MatchesDirectSolveOnRandomSystem) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 24, 3, 11);
  const auto b = make_rhs(24, 3, 4, 12);
  const auto x = btds::banded_lu_solve(sys, b);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-12);
}

TEST(BandedLu, SolvesWhereBlockThomasBreaksDown) {
  // A planted exactly-singular diagonal block kills block Thomas (no
  // inter-block pivoting) but is routine for the scalar banded LU with
  // partial pivoting — the whole point of the fallback rung.
  auto sys = btds::make_near_singular(16, 4, 0.0, 5);
  EXPECT_THROW(btds::ThomasFactorization::factor(sys, btds::PivotKind::kLu),
               fault::SingularPivotError);
  const auto b = make_rhs(16, 4, 3, 6);
  const auto x = btds::banded_lu_solve(sys, b);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-10);
}

TEST(BandedLu, ReportsExactSingularity) {
  // Zero matrix: singular beyond repair; must throw, not crash.
  btds::BlockTridiag sys(4, 2);
  EXPECT_THROW(btds::BandedLuFactorization::factor(sys), fault::SingularPivotError);
}

// -------------------------------------------------------------- generators

TEST(Generators, ConditionedSystemShowsPivotGrowth) {
  const auto sys = btds::make_conditioned(16, 3, 1e8, 3);
  const auto f = btds::ThomasFactorization::factor(sys, btds::PivotKind::kLu);
  EXPECT_GT(f.pivot_diagnostics().growth(), 1e4);
  const auto b = make_rhs(16, 3, 2, 4);
  const auto x = btds::banded_lu_solve(sys, b);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-6);
}

TEST(Generators, NearSingularEpsilonControlsPivot) {
  const auto sys = btds::make_near_singular(8, 3, 1e-13, 9);
  const auto f = btds::ThomasFactorization::factor(sys, btds::PivotKind::kLu);
  EXPECT_GT(f.pivot_diagnostics().growth(), 1e10);
}

// ------------------------------------------------------- typed recv errors

TEST(Comm, SizeMismatchedReceiveThrowsMessageSizeError) {
  EXPECT_THROW(
      mpsim::run(2,
                 [](mpsim::Comm& comm) {
                   const double payload[3] = {1.0, 2.0, 3.0};
                   if (comm.rank() == 0) {
                     comm.send(1, 5, std::span<const double>(payload, 3));
                   } else {
                     double out[2];
                     comm.recv_into(0, 5, std::span<double>(out, 2));
                   }
                 },
                 charged()),
      fault::MessageSizeError);
}

// ------------------------------------------------- the degradation ladder

core::Session make_session(const btds::BlockTridiag& sys, fault::BreakdownPolicy policy,
                           fault::FaultPlan* plan = nullptr, int threads = 1) {
  mpsim::EngineOptions engine = charged();
  engine.on_breakdown = policy;
  engine.threads_per_rank = threads;
  if (plan != nullptr) {
    engine.fault_plan = plan;
    engine.recv_timeout_wall = 10.0;
  }
  return core::Session(core::Method::kArd, sys, 4, {.engine = engine});
}

TEST(Ladder, SingularPivotFailsFastByDefault) {
  auto sys = make_problem(ProblemKind::kDiagDominant, 16, 3, 21);
  btds::plant_singular_pivot(sys, 0);
  auto session = make_session(sys, fault::BreakdownPolicy::kFailFast);
  EXPECT_THROW(session.factor(), fault::SingularPivotError);
}

TEST(Ladder, SingularPivotDegradesToExactFallback) {
  auto sys = make_problem(ProblemKind::kDiagDominant, 16, 3, 21);
  btds::plant_singular_pivot(sys, 0);
  const auto b = make_rhs(16, 3, 5, 22);
  auto session = make_session(sys, fault::BreakdownPolicy::kFallback);
  const auto x = session.solve(b);
  EXPECT_TRUE(session.degraded());
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-10);
  ASSERT_EQ(session.outcomes().size(), 2u);
  EXPECT_EQ(session.outcomes()[0].phase, "factor");
  EXPECT_EQ(session.outcomes()[0].action, "fallback");
  EXPECT_EQ(session.outcomes()[0].status.code(), fault::ErrorCode::kSingularPivot);
  EXPECT_EQ(session.outcomes()[1].action, "fallback");
}

TEST(Ladder, BreakdownRefinesUnderRefinePolicy) {
  auto sys = make_problem(ProblemKind::kDiagDominant, 16, 3, 23);
  btds::plant_singular_pivot(sys, 0, 1e-13);  // near-singular: huge growth
  const auto b = make_rhs(16, 3, 5, 24);
  auto session = make_session(sys, fault::BreakdownPolicy::kRefine);
  const auto x = session.solve(b);
  EXPECT_TRUE(session.breakdown());
  EXPECT_FALSE(session.degraded());
  EXPECT_GT(session.pivot_growth(), 1e12);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-10);
  ASSERT_EQ(session.outcomes().size(), 2u);
  EXPECT_EQ(session.outcomes()[1].action, "refine");
}

TEST(Ladder, DeterministicAcrossThreadCounts) {
  auto sys = make_problem(ProblemKind::kDiagDominant, 16, 3, 25);
  btds::plant_singular_pivot(sys, 0);
  const auto b = make_rhs(16, 3, 5, 26);

  auto s1 = make_session(sys, fault::BreakdownPolicy::kFallback, nullptr, 1);
  auto s4 = make_session(sys, fault::BreakdownPolicy::kFallback, nullptr, 4);
  const auto x1 = s1.solve(b);
  const auto x4 = s4.solve(b);
  ASSERT_EQ(x1.size(), x4.size());
  for (la::index_t i = 0; i < x1.rows(); ++i) {
    for (la::index_t j = 0; j < x1.cols(); ++j) {
      ASSERT_EQ(x1(i, j), x4(i, j)) << "at (" << i << "," << j << ")";
    }
  }
  ASSERT_EQ(s1.outcomes().size(), s4.outcomes().size());
  for (std::size_t k = 0; k < s1.outcomes().size(); ++k) {
    EXPECT_EQ(s1.outcomes()[k].action, s4.outcomes()[k].action);
  }
}

// -------------------------------------------------- fault matrix x policy

struct MatrixCase {
  fault::FaultKind kind;
  fault::BreakdownPolicy policy;
  bool expect_throw;  ///< only detectable faults under failfast abort a run
};

class FaultMatrix : public ::testing::TestWithParam<MatrixCase> {};

fault::FaultPlan plan_for(fault::FaultKind kind) {
  fault::FaultPlan plan;
  switch (kind) {
    case fault::FaultKind::kDelay:
      plan.delay_message(1, 2, 5e-3);
      break;
    case fault::FaultKind::kDuplicate:
      plan.duplicate_message(1, 2);
      break;
    case fault::FaultKind::kBitFlip:
      plan.flip_bit(1, 2, 17);
      break;
    case fault::FaultKind::kStraggle:
      plan.straggle(1, 2, 5e-3);
      break;
    case fault::FaultKind::kCrash:
      plan.crash_before_send(1, 2);
      break;
  }
  return plan;
}

TEST_P(FaultMatrix, EveryInjectedFaultIsHandledPerPolicy) {
  const MatrixCase c = GetParam();
  const auto sys = make_problem(ProblemKind::kDiagDominant, 16, 3, 31);
  const auto b = make_rhs(16, 3, 4, 32);
  fault::FaultPlan plan = plan_for(c.kind);
  auto session = make_session(sys, c.policy, &plan);
  if (c.expect_throw) {
    EXPECT_THROW(session.solve(b), fault::SolveError);
  } else {
    const auto x = session.solve(b);
    EXPECT_LT(btds::relative_residual(sys, x, b), 1e-10);
    EXPECT_EQ(plan.injected().size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllPolicies, FaultMatrix,
    ::testing::Values(
        // Benign injections (no data damage) succeed under every policy.
        MatrixCase{fault::FaultKind::kDelay, fault::BreakdownPolicy::kFailFast, false},
        MatrixCase{fault::FaultKind::kDelay, fault::BreakdownPolicy::kFallback, false},
        MatrixCase{fault::FaultKind::kDuplicate, fault::BreakdownPolicy::kFailFast, false},
        MatrixCase{fault::FaultKind::kDuplicate, fault::BreakdownPolicy::kFallback, false},
        MatrixCase{fault::FaultKind::kStraggle, fault::BreakdownPolicy::kFailFast, false},
        MatrixCase{fault::FaultKind::kStraggle, fault::BreakdownPolicy::kFallback, false},
        // Destructive injections abort under failfast, recover by retry
        // under the tolerant policies (the one-shot fault does not refire).
        MatrixCase{fault::FaultKind::kBitFlip, fault::BreakdownPolicy::kFailFast, true},
        MatrixCase{fault::FaultKind::kBitFlip, fault::BreakdownPolicy::kRefine, false},
        MatrixCase{fault::FaultKind::kBitFlip, fault::BreakdownPolicy::kFallback, false},
        MatrixCase{fault::FaultKind::kCrash, fault::BreakdownPolicy::kFailFast, true},
        MatrixCase{fault::FaultKind::kCrash, fault::BreakdownPolicy::kRefine, false},
        MatrixCase{fault::FaultKind::kCrash, fault::BreakdownPolicy::kFallback, false}));

TEST(FaultRecovery, TransientRetryIsLoggedInOutcomes) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 16, 3, 41);
  const auto b = make_rhs(16, 3, 4, 42);
  fault::FaultPlan plan;
  plan.flip_bit(1, 2, 9);
  auto session = make_session(sys, fault::BreakdownPolicy::kFallback, &plan);
  const auto x = session.solve(b);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-10);
  EXPECT_EQ(plan.detected().size(), 1u);
  int retries = 0;
  for (const auto& o : session.outcomes()) retries += o.retries;
  EXPECT_GE(retries, 1);
}

TEST(FaultRecovery, DelayTripsTheVirtualDeadlineMonitor) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 16, 3, 43);
  const auto b = make_rhs(16, 3, 4, 44);
  fault::FaultPlan plan;
  plan.delay_message(1, 2, 5e-3);
  mpsim::EngineOptions engine = charged();
  engine.fault_plan = &plan;
  engine.virtual_deadline = 2e-3;
  core::Session session(core::Method::kArd, sys, 4, {}, engine);
  const auto x = session.solve(b);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-10);
  bool saw_delay_detection = false;
  for (const auto& e : plan.detected()) {
    if (e.kind == fault::FaultKind::kDelay) saw_delay_detection = true;
  }
  EXPECT_TRUE(saw_delay_detection);
}

// ----------------------------------------------------------- zero overhead

TEST(ZeroCost, EmptyPlanLeavesVirtualTimesBitIdentical) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 16, 3, 51);
  const auto b = make_rhs(16, 3, 4, 52);

  auto bare = make_session(sys, fault::BreakdownPolicy::kFailFast);
  const auto x_bare = bare.solve(b);

  fault::FaultPlan empty;  // installed but empty: engine must ignore it
  auto hooked = make_session(sys, fault::BreakdownPolicy::kFailFast, &empty);
  const auto x_hooked = hooked.solve(b);

  EXPECT_EQ(bare.factor_vtime(), hooked.factor_vtime());
  ASSERT_EQ(bare.solve_vtimes().size(), hooked.solve_vtimes().size());
  EXPECT_EQ(bare.solve_vtimes()[0], hooked.solve_vtimes()[0]);
  for (la::index_t i = 0; i < x_bare.rows(); ++i) {
    for (la::index_t j = 0; j < x_bare.cols(); ++j) {
      ASSERT_EQ(x_bare(i, j), x_hooked(i, j));
    }
  }
}

}  // namespace
}  // namespace ardbt
