// Randomized differential testing: many seeded problems, every solver in
// the library cross-checked against block Thomas. Shapes are drawn from a
// seeded generator so failures are reproducible by seed.

#include <gtest/gtest.h>

#include <random>

#include "src/btds/cyclic_reduction.hpp"
#include "src/la/blas1.hpp"
#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/btds/thomas.hpp"
#include "src/core/solver.hpp"

namespace ardbt {
namespace {

using btds::BlockTridiag;
using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;
using la::index_t;
using la::Matrix;

struct FuzzCase {
  ProblemKind kind;
  index_t n, m, r;
  int p;
};

FuzzCase draw_case(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 2654435761ULL + 1);
  const ProblemKind kinds[] = {ProblemKind::kDiagDominant, ProblemKind::kPoisson2D,
                               ProblemKind::kConvectionDiffusion, ProblemKind::kToeplitz};
  FuzzCase c;
  c.kind = kinds[rng() % 4];
  c.n = 1 + static_cast<index_t>(rng() % 48);
  c.m = 1 + static_cast<index_t>(rng() % 6);
  c.r = 1 + static_cast<index_t>(rng() % 5);
  c.p = 1 + static_cast<int>(rng() % 6);
  if (c.n < c.p) c.p = static_cast<int>(c.n);
  return c;
}

class FuzzDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDifferential, AllSolversMatchThomas) {
  const FuzzCase c = draw_case(GetParam());
  SCOPED_TRACE(::testing::Message()
               << "seed=" << GetParam() << " kind=" << btds::to_string(c.kind) << " N=" << c.n
               << " M=" << c.m << " R=" << c.r << " P=" << c.p);

  const BlockTridiag sys = make_problem(c.kind, c.n, c.m, GetParam());
  const Matrix b = make_rhs(c.n, c.m, c.r, GetParam() + 1);
  const Matrix x_ref = btds::thomas_solve(sys, b);
  const double scale = la::norm_max(x_ref.view()) + 1.0;

  const auto check = [&](const Matrix& x, double tol, const char* name) {
    for (index_t i = 0; i < x.rows(); ++i) {
      for (index_t j = 0; j < x.cols(); ++j) {
        ASSERT_NEAR(x(i, j), x_ref(i, j), tol * scale) << name << " at (" << i << "," << j << ")";
      }
    }
  };
  check(core::solve(core::Method::kArd, sys, b, c.p).x, 1e-9, "ard");
  check(core::solve(core::Method::kPcr, sys, b, c.p).x, 1e-9, "pcr");
  check(btds::cyclic_reduction_solve(sys, b), 1e-9, "cyclic reduction");
  // Transfer RD only where its known N-degradation allows a meaningful
  // comparison.
  if (c.n <= 12 || c.m == 1) {
    check(core::solve(core::Method::kTransferRd, sys, b, c.p).x, 1e-5, "transfer rd");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential, ::testing::Range<std::uint64_t>(0, 60),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

}  // namespace
}  // namespace ardbt
