#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/core/ard.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::core {
namespace {

using btds::BlockTridiag;
using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;
using la::index_t;
using la::Matrix;

TEST(Update, NoChangeReproducesSameSolution) {
  const index_t n = 32, m = 3;
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const Matrix b = make_rhs(n, m, 2);
  Matrix x_before(b.rows(), b.cols());
  Matrix x_after(b.rows(), b.cols());
  const btds::RowPartition part(n, 4);
  mpsim::run(4, [&](mpsim::Comm& comm) {
    auto f = ArdFactorization::factor(comm, sys, part);
    f.solve(comm, b, x_before);
    f.update(comm, sys, /*rows_changed=*/false);
    f.solve(comm, b, x_after);
  });
  for (index_t i = 0; i < b.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) EXPECT_EQ(x_before(i, j), x_after(i, j));
  }
}

TEST(Update, TracksMatrixChangeOnOneRank) {
  const index_t n = 32, m = 3;
  const int p = 4;
  BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const Matrix b = make_rhs(n, m, 3);
  Matrix x(b.rows(), b.cols());
  const btds::RowPartition part(n, p);
  const int changed_rank = 2;

  mpsim::run(p, [&](mpsim::Comm& comm) {
    auto f = ArdFactorization::factor(comm, sys, part);
    mpsim::barrier(comm);
    // Rank 2's rows change (a diagonal shift); everyone else's are intact.
    if (comm.rank() == 0) {
      for (index_t i = part.begin(changed_rank); i < part.end(changed_rank); ++i) {
        for (index_t d = 0; d < m; ++d) sys.diag(i)(d, d) += 1.5;
      }
    }
    mpsim::barrier(comm);
    f.update(comm, sys, /*rows_changed=*/comm.rank() == changed_rank);
    f.solve(comm, b, x);
  });
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-12);
}

TEST(Update, UnchangedRanksChargeFewerFlops) {
  const index_t n = 128, m = 8;
  const int p = 4;
  BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, n, m);
  const btds::RowPartition part(n, p);
  double factor_flops_rank1 = 0.0;
  double update_flops_rank1 = 0.0;

  mpsim::run(p, [&](mpsim::Comm& comm) {
    const double f0 = comm.stats().flops_charged;
    auto f = ArdFactorization::factor(comm, sys, part);
    mpsim::barrier(comm);
    const double f1 = comm.stats().flops_charged;
    if (comm.rank() == 0) {
      sys.diag(0)(0, 0) += 0.5;  // only rank 0's rows change
    }
    mpsim::barrier(comm);
    f.update(comm, sys, /*rows_changed=*/comm.rank() == 0);
    mpsim::barrier(comm);
    const double f2 = comm.stats().flops_charged;
    if (comm.rank() == 1) {
      factor_flops_rank1 = f1 - f0;
      update_flops_rank1 = f2 - f1;
    }
  });
  // The unchanged rank skips the unmodified factorization and the 2M-wide
  // corner solve — well over half of its local factor work.
  EXPECT_LT(update_flops_rank1, 0.5 * factor_flops_rank1);
  EXPECT_GT(update_flops_rank1, 0.0);
}

TEST(Update, RepeatedUpdatesStayAccurate) {
  const index_t n = 24, m = 2;
  BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, n, m);
  const btds::RowPartition part(n, 3);
  Matrix x(n * m, 1);

  mpsim::run(3, [&](mpsim::Comm& comm) {
    auto f = ArdFactorization::factor(comm, sys, part);
    for (int round = 0; round < 4; ++round) {
      mpsim::barrier(comm);
      if (comm.rank() == 0) {
        // A creeping diagonal shift on every row (all ranks changed).
        for (index_t i = 0; i < n; ++i) {
          for (index_t d = 0; d < m; ++d) sys.diag(i)(d, d) += 0.25;
        }
      }
      mpsim::barrier(comm);
      f.update(comm, sys, /*rows_changed=*/true);
      const Matrix b = make_rhs(n, m, 1, static_cast<std::uint64_t>(round));
      f.solve(comm, b, x);
      mpsim::barrier(comm);
      if (comm.rank() == 0) {
        EXPECT_LT(btds::relative_residual(sys, x, b), 1e-12) << "round " << round;
      }
      mpsim::barrier(comm);
    }
  });
}

}  // namespace
}  // namespace ardbt::core
