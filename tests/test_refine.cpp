#include "src/core/refine.hpp"

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/la/lu.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::core {
namespace {

using btds::BlockTridiag;
using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;
using la::Matrix;

TEST(Refine, ResidualDecreasesMonotonicallyAndConverges) {
  const BlockTridiag sys = make_problem(ProblemKind::kIllConditioned, 64, 4);
  const Matrix b = make_rhs(64, 4, 3);
  Matrix x(b.rows(), b.cols());
  RefineResult result;
  const btds::RowPartition part(64, 4);
  mpsim::run(4, [&](mpsim::Comm& comm) {
    const auto f = ArdFactorization::factor(comm, sys, part);
    // tol = 0 forces every step so the monotonicity of the recorded
    // residual norms can be checked.
    const RefineResult local = solve_refined(comm, f, sys, part, b, x, /*max_steps=*/3,
                                             /*tol=*/0.0);
    if (comm.rank() == 0) result = local;
  });
  ASSERT_GE(result.residual_norms.size(), 2u);
  for (std::size_t i = 1; i < result.residual_norms.size(); ++i) {
    EXPECT_LE(result.residual_norms[i], result.residual_norms[i - 1] * 1.5);
  }
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-13);
}

TEST(Refine, StopsEarlyWhenAlreadyConverged) {
  const BlockTridiag sys = make_problem(ProblemKind::kDiagDominant, 16, 2);
  const Matrix b = make_rhs(16, 2, 1);
  Matrix x(b.rows(), b.cols());
  RefineResult result;
  const btds::RowPartition part(16, 2);
  mpsim::run(2, [&](mpsim::Comm& comm) {
    const auto f = ArdFactorization::factor(comm, sys, part);
    const RefineResult local =
        solve_refined(comm, f, sys, part, b, x, /*max_steps=*/10, /*tol=*/1e-12);
    if (comm.rank() == 0) result = local;
  });
  // A well-conditioned solve is already at machine precision; refinement
  // must stop immediately rather than run 10 rounds.
  EXPECT_LE(result.steps, 1);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-12);
}

TEST(Refine, WorksOnSingleRank) {
  const BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, 12, 3);
  const Matrix b = make_rhs(12, 3, 2);
  Matrix x(b.rows(), b.cols());
  const btds::RowPartition part(12, 1);
  mpsim::run(1, [&](mpsim::Comm& comm) {
    const auto f = ArdFactorization::factor(comm, sys, part);
    solve_refined(comm, f, sys, part, b, x);
  });
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-13);
}

TEST(ConditionEstimate, MatchesDenseOrderOfMagnitude) {
  const la::index_t n = 12, m = 3;
  const BlockTridiag sys = make_problem(ProblemKind::kPoisson2D, n, m);
  double estimate = 0.0;
  const btds::RowPartition part(n, 3);
  mpsim::run(3, [&](mpsim::Comm& comm) {
    const auto f = ArdFactorization::factor(comm, sys, part);
    const double local = condition_estimate(comm, f, sys, part, /*iters=*/10);
    if (comm.rank() == 0) estimate = local;
  });

  // Dense reference kappa_inf.
  Matrix dense(n * m, n * m);
  for (la::index_t i = 0; i < n; ++i) {
    la::copy(sys.diag(i).view(), dense.block(i * m, i * m, m, m));
    if (i > 0) la::copy(sys.lower(i).view(), dense.block(i * m, (i - 1) * m, m, m));
    if (i + 1 < n) la::copy(sys.upper(i).view(), dense.block(i * m, (i + 1) * m, m, m));
  }
  const double exact = la::condition_inf(dense.view());
  EXPECT_GT(estimate, exact / 30.0);
  EXPECT_LT(estimate, exact * 30.0);
}

TEST(ConditionEstimate, DistinguishesWellFromIllConditioned) {
  double well = 0.0;
  double ill = 0.0;
  for (auto [kind, out] :
       {std::pair{ProblemKind::kDiagDominant, &well}, {ProblemKind::kIllConditioned, &ill}}) {
    const BlockTridiag sys = make_problem(kind, 32, 4);
    const btds::RowPartition part(32, 2);
    mpsim::run(2, [&, kind = kind, out = out](mpsim::Comm& comm) {
      const auto f = ArdFactorization::factor(comm, sys, part);
      const double est = condition_estimate(comm, f, sys, part);
      if (comm.rank() == 0) *out = est;
    });
  }
  EXPECT_GT(ill, well);
}

}  // namespace
}  // namespace ardbt::core
