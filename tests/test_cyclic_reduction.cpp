#include "src/btds/cyclic_reduction.hpp"

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/btds/thomas.hpp"

namespace ardbt::btds {
namespace {

TEST(CyclicReduction, MatchesThomasAcrossSizes) {
  // Sizes chosen to hit every recursion edge: 1, 2, 3, powers of two,
  // one-off-powers, and a generic composite.
  for (index_t n : {1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33, 50}) {
    const BlockTridiag t = make_problem(ProblemKind::kDiagDominant, n, 3);
    const Matrix b = make_rhs(n, 3, 2);
    const Matrix x_bcr = cyclic_reduction_solve(t, b);
    const Matrix x_ref = thomas_solve(t, b);
    for (index_t i = 0; i < x_bcr.rows(); ++i) {
      for (index_t j = 0; j < x_bcr.cols(); ++j) {
        EXPECT_NEAR(x_bcr(i, j), x_ref(i, j), 1e-9) << "N=" << n;
      }
    }
  }
}

TEST(CyclicReduction, SmallResidualOnAllKinds) {
  for (ProblemKind kind : kAllProblemKinds) {
    const BlockTridiag t = make_problem(kind, 24, 4);
    const Matrix b = make_rhs(24, 4, 3);
    const Matrix x = cyclic_reduction_solve(t, b);
    const double tol = kind == ProblemKind::kIllConditioned ? 1e-7 : 1e-10;
    EXPECT_LT(relative_residual(t, x, b), tol) << to_string(kind);
  }
}

TEST(CyclicReduction, ScalarBlocksLargeN) {
  const BlockTridiag t = make_problem(ProblemKind::kPoisson2D, 500, 1);
  const Matrix b = make_rhs(500, 1, 1);
  const Matrix x = cyclic_reduction_solve(t, b);
  EXPECT_LT(relative_residual(t, x, b), 1e-12);
}

TEST(CyclicReduction, ThrowsOnSingularDiagonal) {
  BlockTridiag t(2, 1);
  t.diag(0)(0, 0) = 0.0;
  t.diag(1)(0, 0) = 1.0;
  t.upper(0)(0, 0) = 1.0;
  t.lower(1)(0, 0) = 1.0;
  const Matrix b = make_rhs(2, 1, 1);
  EXPECT_THROW(cyclic_reduction_solve(t, b), std::runtime_error);
}

TEST(CyclicReduction, FlopEstimateScalesLinearlyInN) {
  const double f1 = cyclic_reduction_flops(100, 4, 8);
  const double f2 = cyclic_reduction_flops(200, 4, 8);
  EXPECT_NEAR(f2 / f1, 2.0, 1e-9);
}

}  // namespace
}  // namespace ardbt::btds
