#include "src/core/twoport.hpp"

#include <gtest/gtest.h>

#include "src/btds/generators.hpp"
#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/mpsim/engine.hpp"

namespace ardbt::core {
namespace {

using btds::BlockTridiag;
using btds::ProblemKind;

/// Exact two-port of rows [l..h] (inclusive) by dense inversion.
TwoPort dense_twoport(const BlockTridiag& sys, index_t l, index_t h) {
  const index_t m = sys.block_size();
  const index_t len = h - l + 1;
  Matrix dense(len * m, len * m);
  for (index_t k = 0; k < len; ++k) {
    la::copy(sys.diag(l + k).view(), dense.block(k * m, k * m, m, m));
    if (k > 0) la::copy(sys.lower(l + k).view(), dense.block(k * m, (k - 1) * m, m, m));
    if (k + 1 < len) la::copy(sys.upper(l + k).view(), dense.block(k * m, (k + 1) * m, m, m));
  }
  const Matrix inv = la::inverse(dense.view());
  TwoPort tp;
  tp.P = la::to_matrix(inv.block(0, 0, m, m));
  tp.Q = la::to_matrix(inv.block(0, (len - 1) * m, m, m));
  tp.R = la::to_matrix(inv.block((len - 1) * m, 0, m, m));
  tp.S = la::to_matrix(inv.block((len - 1) * m, (len - 1) * m, m, m));
  tp.a_first = (l > 0) ? sys.lower(l) : Matrix(m, m);
  tp.c_last = (h + 1 < sys.num_blocks()) ? sys.upper(h) : Matrix(m, m);
  return tp;
}

/// Exact vector part of rows [l..h]: first/last blocks of T_seg^{-1} b.
TwoPortVec dense_twoport_vec(const BlockTridiag& sys, const Matrix& b, index_t l, index_t h) {
  const index_t m = sys.block_size();
  const index_t len = h - l + 1;
  Matrix dense(len * m, len * m);
  for (index_t k = 0; k < len; ++k) {
    la::copy(sys.diag(l + k).view(), dense.block(k * m, k * m, m, m));
    if (k > 0) la::copy(sys.lower(l + k).view(), dense.block(k * m, (k - 1) * m, m, m));
    if (k + 1 < len) la::copy(sys.upper(l + k).view(), dense.block(k * m, (k + 1) * m, m, m));
  }
  Matrix bseg = la::to_matrix(b.block(l * m, 0, len * m, b.cols()));
  const la::LuFactors f = la::lu_factor(dense.view());
  la::lu_solve_inplace(f, bseg.view());
  return TwoPortVec{.p = la::to_matrix(bseg.block(0, 0, m, b.cols())),
                    .q = la::to_matrix(bseg.block((len - 1) * m, 0, m, b.cols()))};
}

double tp_diff(const TwoPort& a, const TwoPort& b) {
  auto d = [](const Matrix& x, const Matrix& y) {
    Matrix t = x;
    la::matrix_axpy(-1.0, y.view(), t.view());
    return la::norm_max(t.view());
  };
  return std::max({d(a.P, b.P), d(a.Q, b.Q), d(a.R, b.R), d(a.S, b.S)});
}

double vec_diff(const TwoPortVec& a, const TwoPortVec& b) {
  Matrix dp = a.p;
  la::matrix_axpy(-1.0, b.p.view(), dp.view());
  Matrix dq = a.q;
  la::matrix_axpy(-1.0, b.q.view(), dq.view());
  return std::max(la::norm_max(dp.view()), la::norm_max(dq.view()));
}

TEST(TwoPort, MergeMatchesDenseSchurComplement) {
  for (ProblemKind kind : {ProblemKind::kDiagDominant, ProblemKind::kPoisson2D}) {
    const BlockTridiag sys = btds::make_problem(kind, 9, 3);
    const Matrix b = btds::make_rhs(9, 3, 2);
    mpsim::run(1, [&](mpsim::Comm& comm) {
      // Split [2..7] at several interface positions; all must reproduce
      // the dense two-port of the union.
      const TwoPort whole = dense_twoport(sys, 2, 7);
      const TwoPortVec whole_v = dense_twoport_vec(sys, b, 2, 7);
      for (index_t split : {2, 4, 6}) {
        const TwoPort left = dense_twoport(sys, 2, split);
        const TwoPort right = dense_twoport(sys, split + 1, 7);
        TwoPortCache cache;
        const TwoPort merged = merge_twoport(left, right, cache, comm);
        EXPECT_LT(tp_diff(merged, whole), 1e-10) << btds::to_string(kind) << " split " << split;

        const TwoPortVec lv = dense_twoport_vec(sys, b, 2, split);
        const TwoPortVec rv = dense_twoport_vec(sys, b, split + 1, 7);
        const TwoPortVec mv = merge_twoport_vec(cache, lv, rv, comm);
        EXPECT_LT(vec_diff(mv, whole_v), 1e-10) << btds::to_string(kind) << " split " << split;
      }
    });
  }
}

TEST(TwoPort, MergeIsAssociative) {
  const BlockTridiag sys = btds::make_problem(ProblemKind::kDiagDominant, 12, 2, /*seed=*/3);
  const Matrix b = btds::make_rhs(12, 2, 3);
  mpsim::run(1, [&](mpsim::Comm& comm) {
    // Three adjacent segments of unequal length.
    const TwoPort s1 = dense_twoport(sys, 1, 3);
    const TwoPort s2 = dense_twoport(sys, 4, 4);
    const TwoPort s3 = dense_twoport(sys, 5, 9);
    const TwoPortVec v1 = dense_twoport_vec(sys, b, 1, 3);
    const TwoPortVec v2 = dense_twoport_vec(sys, b, 4, 4);
    const TwoPortVec v3 = dense_twoport_vec(sys, b, 5, 9);

    TwoPortCache c12, c12_3, c23, c1_23;
    const TwoPort left_first = merge_twoport(merge_twoport(s1, s2, c12, comm), s3, c12_3, comm);
    const TwoPort right_first = merge_twoport(s1, merge_twoport(s2, s3, c23, comm), c1_23, comm);
    EXPECT_LT(tp_diff(left_first, right_first), 1e-11);

    const TwoPortVec lv =
        merge_twoport_vec(c12_3, merge_twoport_vec(c12, v1, v2, comm), v3, comm);
    const TwoPortVec rv =
        merge_twoport_vec(c1_23, v1, merge_twoport_vec(c23, v2, v3, comm), comm);
    EXPECT_LT(vec_diff(lv, rv), 1e-11);
  });
}

TEST(TwoPort, SerdeRoundTrip) {
  const BlockTridiag sys = btds::make_problem(ProblemKind::kToeplitz, 6, 3);
  const TwoPort tp = dense_twoport(sys, 1, 4);
  const TwoPortOp::Context ctx{3};
  const auto bytes = TwoPortOp::ser_mat(ctx, tp);
  const TwoPort back = TwoPortOp::des_mat(ctx, bytes);
  EXPECT_LT(tp_diff(tp, back), 0.0 + 1e-300);
  EXPECT_TRUE(tp.a_first == back.a_first);
  EXPECT_TRUE(tp.c_last == back.c_last);

  const Matrix b = btds::make_rhs(6, 3, 4);
  const TwoPortVec v = dense_twoport_vec(sys, b, 1, 4);
  const auto vbytes = TwoPortOp::ser_vec(ctx, v);
  const TwoPortVec vback = TwoPortOp::des_vec(ctx, vbytes);
  EXPECT_EQ(vback.p.cols(), 4);
  EXPECT_LT(vec_diff(v, vback), 1e-300);
}

TEST(TwoPort, SingleRowTwoPortIsInverseDiagonal) {
  const BlockTridiag sys = btds::make_problem(ProblemKind::kDiagDominant, 3, 2);
  const TwoPort tp = dense_twoport(sys, 1, 1);
  const Matrix inv = la::inverse(sys.diag(1).view());
  Matrix d = tp.P;
  la::matrix_axpy(-1.0, inv.view(), d.view());
  EXPECT_LT(la::norm_max(d.view()), 1e-12);
  EXPECT_LT(tp_diff(tp, TwoPort{inv, inv, inv, inv, tp.a_first, tp.c_last}), 1e-12);
}

TEST(TwoPort, ReversedOpSwapsOperands) {
  const BlockTridiag sys = btds::make_problem(ProblemKind::kDiagDominant, 8, 2);
  mpsim::run(1, [&](mpsim::Comm& comm) {
    const TwoPort lo = dense_twoport(sys, 1, 3);   // lower rows
    const TwoPort hi = dense_twoport(sys, 4, 6);   // higher rows
    TwoPortCache c_fwd, c_rev;
    const TwoPort merged_fwd =
        TwoPortOp::merge_mat(TwoPortOp::Context{2}, lo, hi, c_fwd, comm);
    // In a backward scan the "left" operand covers higher rows.
    const TwoPort merged_rev =
        TwoPortOpReversed::merge_mat(TwoPortOp::Context{2}, hi, lo, c_rev, comm);
    EXPECT_LT(tp_diff(merged_fwd, merged_rev), 1e-300);
  });
}

}  // namespace
}  // namespace ardbt::core
