#include "src/core/solver.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/btds/generators.hpp"
#include "src/btds/spmv.hpp"
#include "src/obs/metrics.hpp"

namespace ardbt::core {
namespace {

using btds::make_problem;
using btds::make_rhs;
using btds::ProblemKind;

constexpr Method kAllMethods[] = {Method::kRdBatched, Method::kRdPerRhs, Method::kArd,
                                  Method::kTransferRd, Method::kPcr};

mpsim::EngineOptions charged() {
  mpsim::EngineOptions engine;
  engine.timing = mpsim::TimingMode::ChargedFlops;
  return engine;
}

TEST(Session, MatchesLegacyOneShotExactlyPerMethod) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 16, 3);
  const auto b = make_rhs(16, 3, 5);
  for (Method method : kAllMethods) {
    const DriverResult legacy = solve(method, sys, b, 4, {.engine = charged()});
    Session session(method, sys, 4, {.engine = charged()});
    session.factor();
    const la::Matrix x = session.solve(b);
    EXPECT_TRUE(x == legacy.x) << to_string(method);
  }
}

TEST(Session, FactorOnceThenRepeatedSolves) {
  const auto sys = make_problem(ProblemKind::kPoisson2D, 24, 4);
  const auto b1 = make_rhs(24, 4, 3, 1);
  const auto b2 = make_rhs(24, 4, 7, 2);
  Session session(Method::kArd, sys, 4, {.engine = charged()});
  EXPECT_FALSE(session.factored());
  session.factor();
  EXPECT_TRUE(session.factored());
  EXPECT_GT(session.factor_vtime(), 0.0);
  EXPECT_GT(session.storage_bytes(), 0u);

  const la::Matrix x1 = session.solve(b1);
  const la::Matrix x2 = session.solve(b2);
  ASSERT_EQ(session.solve_vtimes().size(), 2u);
  EXPECT_LT(btds::relative_residual(sys, x1, b1), 1e-10);
  EXPECT_LT(btds::relative_residual(sys, x2, b2), 1e-10);

  // Re-solving the same batch replays only the solve phase and must give
  // the identical answer.
  const la::Matrix x1_again = session.solve(b1);
  EXPECT_TRUE(x1_again == x1);
  // factor() stays idempotent.
  const double fv = session.factor_vtime();
  session.factor();
  EXPECT_EQ(session.factor_vtime(), fv);
}

TEST(Session, AutoFactorsOnFirstSolve) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 12, 2);
  const auto b = make_rhs(12, 2, 4);
  Session session(Method::kPcr, sys, 3, {.engine = charged()});
  const la::Matrix x = session.solve(b);
  EXPECT_TRUE(session.factored());
  EXPECT_GT(session.factor_vtime(), 0.0);
  EXPECT_LT(btds::relative_residual(sys, x, b), 1e-10);
}

TEST(Session, ClassicRdHasNoFactorPhase) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 12, 2);
  const auto b = make_rhs(12, 2, 2);
  for (Method method : {Method::kRdBatched, Method::kRdPerRhs}) {
    Session session(method, sys, 3, {.engine = charged()});
    const la::Matrix x = session.solve(b);
    EXPECT_EQ(session.factor_vtime(), 0.0) << to_string(method);
    EXPECT_GT(session.solve_vtimes().at(0), 0.0) << to_string(method);
    EXPECT_LT(btds::relative_residual(sys, x, b), 1e-9) << to_string(method);
  }
}

TEST(Session, SolutionsAreBitIdenticalAcrossThreadCounts) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 32, 6);
  const auto b = make_rhs(32, 6, 17);
  for (Method method : {Method::kArd, Method::kPcr}) {
    la::Matrix reference;
    for (int threads : {1, 2, 8}) {
      mpsim::EngineOptions engine = charged();
      engine.threads_per_rank = threads;
      Session session(method, sys, 4, {}, engine);
      session.factor();
      const la::Matrix x = session.solve(b);
      if (threads == 1) {
        reference = x;
        EXPECT_LT(btds::relative_residual(sys, x, b), 1e-10) << to_string(method);
      } else {
        EXPECT_TRUE(x == reference) << to_string(method) << " threads=" << threads;
      }
    }
  }
}

TEST(Session, VirtualTimesAreIndependentOfThreadCount) {
  // Flop charges stay on the rank thread, so the modeled clock must not
  // move when workers split the kernels.
  const auto sys = make_problem(ProblemKind::kDiagDominant, 32, 6);
  const auto b = make_rhs(32, 6, 17);
  double ref_factor = 0.0, ref_solve = 0.0, ref_flops = 0.0;
  for (int threads : {1, 2, 8}) {
    mpsim::EngineOptions engine = charged();
    engine.threads_per_rank = threads;
    Session session(Method::kArd, sys, 4, {}, engine);
    session.factor();
    session.solve(b);
    if (threads == 1) {
      ref_factor = session.factor_vtime();
      ref_solve = session.solve_vtimes().at(0);
      ref_flops = session.report().totals().flops_charged;
      EXPECT_GT(ref_factor, 0.0);
      EXPECT_GT(ref_solve, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(session.factor_vtime(), ref_factor) << threads;
      EXPECT_DOUBLE_EQ(session.solve_vtimes().at(0), ref_solve) << threads;
      EXPECT_DOUBLE_EQ(session.report().totals().flops_charged, ref_flops) << threads;
    }
  }
}

TEST(Session, RunsChainOnOneVirtualTimeline) {
  // Each engine run resumes the session clock (vtime_origin), so the
  // report's virtual time keeps growing: factor < factor+solve < ...
  const auto sys = make_problem(ProblemKind::kDiagDominant, 16, 3);
  const auto b = make_rhs(16, 3, 4);
  Session session(Method::kArd, sys, 4, {.engine = charged()});
  session.factor();
  const double after_factor = session.report().max_virtual_time();
  session.solve(b);
  const double after_one = session.report().max_virtual_time();
  session.solve(b);
  const double after_two = session.report().max_virtual_time();
  EXPECT_GT(after_factor, 0.0);
  EXPECT_GT(after_one, after_factor);
  EXPECT_GT(after_two, after_one);
}

TEST(Session, ArdSolveIsArenaSteadyStateAfterFirstSolve) {
  // The zero-allocation contract of the workspace arena: the first
  // solve(B) of a given shape may grow the per-rank arenas, but every
  // further solve of that shape must be satisfied entirely from pooled
  // slabs — the slab_allocs counters stop moving.
  const auto sys = make_problem(ProblemKind::kPoisson2D, 24, 4);
  const auto b = make_rhs(24, 4, 5, 3);
  const int nranks = 4;
  Session session(Method::kArd, sys, nranks, {.engine = charged()});
  session.factor();

  for (int r = 0; r < nranks; ++r) {
    const la::Workspace::Stats after_factor = session.arena_stats_after_factor(r);
    EXPECT_GT(after_factor.slab_allocs, 0u) << r;  // factor used the arena
    EXPECT_EQ(session.arena_stats(r).slab_allocs, after_factor.slab_allocs) << r;
  }

  session.solve(b);  // warm-up: sizes the solve-phase slabs
  std::vector<std::uint64_t> warm(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    warm[static_cast<std::size_t>(r)] = session.arena_stats(r).slab_allocs;
  }

  for (int repeat = 0; repeat < 3; ++repeat) {
    session.solve(b);
    for (int r = 0; r < nranks; ++r) {
      const la::Workspace::Stats s = session.arena_stats(r);
      EXPECT_EQ(s.slab_allocs, warm[static_cast<std::size_t>(r)])
          << "rank " << r << " allocated a new slab on steady-state solve " << repeat;
      EXPECT_GT(s.acquires, 0u) << r;  // arena is actually in use
    }
  }

  // Out-of-range queries are harmless zero stats.
  EXPECT_EQ(session.arena_stats(-1).acquires, 0u);
  EXPECT_EQ(session.arena_stats(nranks).acquires, 0u);

  // The registry export mirrors the per-rank counters. The solve-phase
  // slab count includes the warm-up solve, but is frozen in steady state.
  obs::MetricsRegistry reg;
  session.export_arena_metrics(reg);
  EXPECT_GT(reg.gauge("arena.high_water_bytes").value(), 0.0);
  const double solve_allocs = reg.gauge("arena.solve.slab_allocs").value();
  session.solve(b);
  obs::MetricsRegistry reg2;
  session.export_arena_metrics(reg2);
  EXPECT_EQ(reg2.gauge("arena.solve.slab_allocs").value(), solve_allocs);
}

TEST(Session, RejectsBadShapesAndRankCounts) {
  const auto sys = make_problem(ProblemKind::kDiagDominant, 8, 2);
  // Structured errors (fault:: taxonomy) rather than raw std exceptions,
  // so service-layer callers can dispatch on code().
  EXPECT_THROW(Session(Method::kArd, sys, 0), fault::InvalidArgumentError);
  try {
    Session(Method::kArd, sys, 0);
    FAIL() << "non-positive nranks must throw";
  } catch (const fault::SolveError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kInvalidArgument);
  }
  Session session(Method::kArd, sys, 2);
  const la::Matrix wrong(7, 3);
  EXPECT_THROW(session.solve(wrong), fault::ShapeMismatchError);
  try {
    session.solve(wrong);
    FAIL() << "wrong row count must throw";
  } catch (const fault::ShapeMismatchError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kShapeMismatch);
    EXPECT_EQ(e.got(), 7);
    EXPECT_EQ(e.expected(), 16);
  }
}

TEST(Session, SharedOwnershipKeepsSystemAlive) {
  // The owning constructor: the Session must stay valid after the caller
  // drops its last reference to the system (the FactorCache eviction
  // contract).
  auto sys = std::make_shared<const btds::BlockTridiag>(
      make_problem(ProblemKind::kDiagDominant, 8, 2));
  const la::Matrix b = make_rhs(8, 2, 3);
  Session session(Method::kArd, sys, 2, {.engine = charged()});
  session.factor();
  const std::weak_ptr<const btds::BlockTridiag> weak = sys;
  sys.reset();
  EXPECT_FALSE(weak.expired()) << "session must co-own the system";
  const la::Matrix x = session.solve(b);
  EXPECT_LT(btds::relative_residual(*weak.lock(), x, b), 1e-10);
  EXPECT_THROW(Session(Method::kArd, nullptr, 2), fault::InvalidArgumentError);
}

}  // namespace
}  // namespace ardbt::core
