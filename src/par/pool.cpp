#include "src/par/pool.hpp"

#include <cassert>
#include <stdexcept>

namespace ardbt::par {

Pool::Pool(int threads) : nthreads_(threads) {
  if (threads < 1) throw std::invalid_argument("par::Pool: threads must be >= 1");
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 0; w < threads - 1; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void Pool::set_trace(std::vector<obs::RankTrace*> lanes, NowFn now, void* now_ctx) {
  assert(lanes.empty() || static_cast<int>(lanes.size()) == nthreads_);
  lanes_ = std::move(lanes);
  now_ = now;
  now_ctx_ = now_ctx;
}

std::pair<std::int64_t, std::int64_t> Pool::chunk_bounds(std::int64_t begin, std::int64_t end,
                                                         int chunk, int nchunks) {
  assert(nchunks >= 1 && chunk >= 0 && chunk < nchunks);
  const std::int64_t n = end > begin ? end - begin : 0;
  const std::int64_t lo = begin + n * chunk / nchunks;
  const std::int64_t hi = begin + n * (chunk + 1) / nchunks;
  return {lo, hi};
}

void Pool::run_chunk(const Job& job, int lane) {
  const auto [lo, hi] = chunk_bounds(job.begin, job.end, lane, nthreads_);
  if (lo >= hi) return;
  obs::RankTrace* trace =
      (obs::kTraceCompiledIn && job.traced && lane < static_cast<int>(lanes_.size()))
          ? lanes_[static_cast<std::size_t>(lane)]
          : nullptr;
  if (trace == nullptr) {
    (*job.fn)(lo, hi);
    return;
  }
  // Anchor the worker span on the owning rank's virtual clock: the rank's
  // vtime does not advance during the fork-join region, so wall offsets
  // from the job anchor give lanes their real relative timing.
  const double wall0 = trace->wall_now();
  (*job.fn)(lo, hi);
  const double wall1 = trace->wall_now();
  trace->complete(obs::SpanKind::kCompute, job.name,
                  {job.anchor.vtime + (wall0 - job.anchor.wall), wall0},
                  {job.anchor.vtime + (wall1 - job.anchor.wall), wall1},
                  /*peer=*/-1, /*bytes=*/0);
}

void Pool::worker_main(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    try {
      run_chunk(job, worker + 1);  // lane 0 is the calling thread
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      --unfinished_;
    }
    done_cv_.notify_all();
  }
}

void Pool::parallel_for(std::int64_t begin, std::int64_t end, const ChunkFn& fn,
                        const char* name) {
  if (end <= begin) return;
  if (nthreads_ == 1) {
    fn(begin, end);
    return;
  }
  Job job;
  job.fn = &fn;
  job.begin = begin;
  job.end = end;
  job.name = name;
  if (now_ != nullptr && !lanes_.empty()) {
    job.anchor = now_(now_ctx_);
    job.traced = true;
  }
  {
    std::lock_guard lock(mu_);
    job_ = job;
    ++epoch_;
    unfinished_ = nthreads_ - 1;
  }
  work_cv_.notify_all();

  std::exception_ptr caller_error;
  try {
    run_chunk(job, 0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] { return unfinished_ == 0; });
    if (!error_ && caller_error) error_ = caller_error;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }
}

}  // namespace ardbt::par
