#pragma once

#include <cstdint>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/obs/trace.hpp"

/// \file pool.hpp
/// Fixed-size fork-join worker pool for intra-rank parallelism.
///
/// Each simulated rank may own one Pool; the hot kernels (la::gemm,
/// block-Thomas solves, the PCR level updates) split their independent
/// right-hand-side / column dimension across it. The design constraints,
/// in order:
///
///   1. **Determinism.** parallel_for uses static chunking only: the range
///      is split into `threads()` contiguous chunks with boundaries that
///      are a pure function of (range, chunk index, thread count), and
///      chunk t always runs on lane t. Because every kernel we offload
///      computes each output element with a thread-count-independent
///      sequence of floating-point operations, results are bit-identical
///      for ANY pool size, including no pool at all. There is no work
///      stealing and no atomics-based splitting on purpose.
///   2. **No busy waiting.** Workers block on a condition variable between
///      jobs, so an oversubscribed host (P ranks x T workers on few cores)
///      loses nothing to spinning.
///   3. **Exception safety.** The first exception thrown by any chunk is
///      captured and rethrown on the calling thread after the join.
///
/// Nested parallelism is not supported: a chunk function must not call
/// back into parallel_for on the same pool (kernels therefore never
/// forward the pool into their inner calls).
///
/// Tracing: when the engine wires per-worker obs::RankTrace lanes (one per
/// lane, lane 0 being the calling rank thread's share), every executed
/// chunk is recorded as a compute span, so Chrome traces show worker lanes
/// under each rank track. Worker spans are stamped on the rank's virtual
/// clock by anchoring host wall time at job start: vtime = anchor.vtime +
/// (wall - anchor.wall). See docs/PARALLELISM.md.

namespace ardbt::par {

class Pool {
 public:
  /// Chunk body: half-open index range [begin, end).
  using ChunkFn = std::function<void(std::int64_t, std::int64_t)>;
  /// Clock thunk supplying the virtual/wall anchor at job start
  /// (signature shared with obs::SpanScope).
  using NowFn = obs::TimeSample (*)(void*);

  /// A pool of `threads` lanes: the calling thread plus `threads - 1`
  /// spawned workers. `threads` must be >= 1; a 1-thread pool runs
  /// everything inline and spawns nothing.
  explicit Pool(int threads);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int threads() const { return nthreads_; }

  /// Install per-lane trace sinks (`lanes.size() == threads()`; lane 0 is
  /// the calling thread) and the clock thunk used to anchor worker spans
  /// on the owning rank's virtual clock. Call only between jobs.
  void set_trace(std::vector<obs::RankTrace*> lanes, NowFn now, void* now_ctx);

  /// Run `fn` over [begin, end) split into threads() static contiguous
  /// chunks (chunk t on lane t). Blocks until every chunk finished;
  /// rethrows the first chunk exception. Must be called from the owning
  /// (non-worker) thread; chunks must not touch the pool.
  void parallel_for(std::int64_t begin, std::int64_t end, const ChunkFn& fn,
                    const char* name = "par.for");

  /// Static chunk boundaries: the half-open subrange of [begin, end)
  /// assigned to `chunk` of `nchunks`. Balanced to within one element;
  /// depends only on the arguments (the determinism contract).
  static std::pair<std::int64_t, std::int64_t> chunk_bounds(std::int64_t begin, std::int64_t end,
                                                            int chunk, int nchunks);

 private:
  struct Job {
    const ChunkFn* fn = nullptr;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    const char* name = "par.for";
    obs::TimeSample anchor{};
    bool traced = false;
  };

  void worker_main(int worker);
  void run_chunk(const Job& job, int lane);

  int nthreads_ = 1;
  std::vector<std::thread> workers_;
  std::vector<obs::RankTrace*> lanes_;
  NowFn now_ = nullptr;
  void* now_ctx_ = nullptr;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;  ///< bumped once per job; workers watch it
  int unfinished_ = 0;       ///< workers still running the current job
  bool stop_ = false;
  Job job_;
  std::exception_ptr error_;
};

/// Serial-fallback helper: runs inline when `pool` is null or single-lane.
inline void parallel_for(Pool* pool, std::int64_t begin, std::int64_t end,
                         const Pool::ChunkFn& fn, const char* name = "par.for") {
  if (pool != nullptr && pool->threads() > 1) {
    pool->parallel_for(begin, end, fn, name);
  } else if (end > begin) {
    fn(begin, end);
  }
}

}  // namespace ardbt::par
