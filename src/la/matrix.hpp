#pragma once

#include <cassert>
#include <initializer_list>
#include <span>
#include <vector>

#include "src/la/types.hpp"
#include "src/la/views.hpp"

/// \file matrix.hpp
/// Owning dense row-major matrix of doubles. Deliberately minimal: storage,
/// element access, views, and a handful of constructors/factories. All
/// numerical kernels live in free functions (blas1/gemm/gemv/lu) operating
/// on views, so the same code paths serve owned matrices and sub-blocks.

namespace ardbt::la {

/// Dense row-major `rows x cols` matrix owning its storage.
///
/// Value-semantic (copyable, movable). Elements are zero-initialized on
/// construction so freshly created matrices are valid additively.
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized `rows x cols` matrix.
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), 0.0) {
    assert(rows >= 0 && cols >= 0);
  }

  /// Zero-initialized `rows x cols` matrix recycling `storage`'s
  /// allocation (Workspace pooling): assign() keeps the vector's capacity,
  /// so no heap traffic when it already fits rows*cols.
  Matrix(index_t rows, index_t cols, std::vector<double>&& storage)
      : rows_(rows), cols_(cols), data_(std::move(storage)) {
    assert(rows >= 0 && cols >= 0);
    data_.assign(static_cast<std::size_t>(rows * cols), 0.0);
  }

  /// Construct from nested initializer lists (row major):
  /// `Matrix m{{1,2},{3,4}};`. All rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = static_cast<index_t>(init.size());
    cols_ = rows_ > 0 ? static_cast<index_t>(init.begin()->size()) : 0;
    data_.reserve(static_cast<std::size_t>(rows_ * cols_));
    for (const auto& r : init) {
      assert(static_cast<index_t>(r.size()) == cols_);
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  /// n x n identity matrix.
  static Matrix identity(index_t n) {
    Matrix m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// Matrix with `diag.size()` rows/cols and the given main diagonal.
  static Matrix diagonal(std::span<const double> diag) {
    const auto n = static_cast<index_t>(diag.size());
    Matrix m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = diag[static_cast<std::size_t>(i)];
    return m;
  }

  double& operator()(index_t i, index_t j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  /// Total number of elements.
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Whole-matrix views.
  MatrixView view() { return {data_.data(), rows_, cols_, cols_}; }
  ConstMatrixView view() const { return {data_.data(), rows_, cols_, cols_}; }

  /// Sub-block views (no copy).
  MatrixView block(index_t r0, index_t c0, index_t nr, index_t nc) {
    return view().block(r0, c0, nr, nc);
  }
  ConstMatrixView block(index_t r0, index_t c0, index_t nr, index_t nc) const {
    return view().block(r0, c0, nr, nc);
  }

  /// Set every element to `v`.
  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Multiply every element by `s` in place.
  void scale(double s) {
    for (auto& x : data_) x *= s;
  }

  /// Reshape to zero-filled `rows x cols`, discarding contents.
  void resize(index_t rows, index_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows * cols), 0.0);
  }

  /// Steal the underlying allocation (leaves the matrix empty). Used by
  /// Workspace to return a released matrix's storage to its pool.
  std::vector<double> take_storage() && {
    rows_ = 0;
    cols_ = 0;
    return std::move(data_);
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<double> data_;
};

/// Deep copy of a view into a fresh owning Matrix.
Matrix to_matrix(ConstMatrixView v);

/// Out-of-place transpose.
Matrix transposed(ConstMatrixView a);

/// Copy `src` into `dst` (shapes must match).
void copy(ConstMatrixView src, MatrixView dst);

}  // namespace ardbt::la
