#include "src/la/smallblock/smallblock.hpp"

#include <atomic>
#include <utility>

#include "src/fault/status.hpp"
#include "src/la/gemm.hpp"
#include "src/la/smallblock/kernels.hpp"

namespace ardbt::la::smallblock {

// The single home of the fixed-M instantiations (kernels.hpp declares
// them extern). This file is compiled with the kernel-tuning flags from
// src/la/CMakeLists.txt; keeping one copy of the code means every caller
// — gemm.cpp dispatch, thomas.cpp panels, PCR batches — produces the
// same bits.
#define ARDBT_SMALLBLOCK_INSTANTIATE(M)                                                \
  template void gemm_kernel<M>(double, ConstMatrixView, ConstMatrixView, MatrixView);  \
  template void trsm_lower_unit_kernel<M>(ConstMatrixView, MatrixView);                \
  template void trsm_upper_kernel<M>(ConstMatrixView, MatrixView);                     \
  template void lu_solve_view_kernel<M>(ConstMatrixView, const index_t*, MatrixView);  \
  template void lu_solve_kernel<M>(const LuFactors&, MatrixView);                      \
  template LuInPlaceInfo lu_factor_view_kernel<M>(MatrixView, index_t*);               \
  template LuFactors lu_factor_kernel<M>(Matrix)
ARDBT_SMALLBLOCK_INSTANTIATE(2);
ARDBT_SMALLBLOCK_INSTANTIATE(4);
ARDBT_SMALLBLOCK_INSTANTIATE(8);
ARDBT_SMALLBLOCK_INSTANTIATE(16);
ARDBT_SMALLBLOCK_INSTANTIATE(32);
#undef ARDBT_SMALLBLOCK_INSTANTIATE

namespace {

std::atomic<bool> g_enabled{true};

/// Runtime-extent twin of gemm_kernel for the non-dispatchable fallback
/// inside entry points that have already applied scale_c.
void gemm_kernel_runtime(index_t m, double alpha, ConstMatrixView a, ConstMatrixView b,
                         MatrixView c) {
  const index_t n = c.cols();
  for (index_t i = 0; i < m; ++i) {
    double* ci = c.row_ptr(i);
    const double* ai = a.row_ptr(i);
    for (index_t k = 0; k < m; ++k) {
      const double aik = alpha * ai[k];
      const double* bk = b.row_ptr(k);
      for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

/// Same gate as lu.cpp's require_ok: a singular factorization fails loudly.
void require_ok(const LuFactors& f, const char* where) {
  if (!f.ok()) {
    throw fault::SingularPivotError(fault::ErrorCode::kSingularPivot, where, -1,
                                    static_cast<std::int64_t>(f.info - 1), f.growth);
  }
}

}  // namespace

bool dispatchable(index_t m) { return m == 2 || m == 4 || m == 8 || m == 16 || m == 32; }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void gemm_fixed(index_t m, double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
                MatrixView c) {
  scale_c(beta, c);
  if (alpha == 0.0) return;
  const bool hit = dispatch(m, [&](auto tag) {
    constexpr index_t kM = decltype(tag)::value;
    gemm_kernel<kM>(alpha, a, b, c);
  });
  if (!hit) gemm_kernel_runtime(m, alpha, a, b, c);
}

void trsm_lower_unit_fixed(index_t m, ConstMatrixView lu, MatrixView b) {
  dispatch(m, [&](auto tag) {
    constexpr index_t kM = decltype(tag)::value;
    trsm_lower_unit_kernel<kM>(lu, b);
  });
}

void trsm_upper_fixed(index_t m, ConstMatrixView lu, MatrixView b) {
  dispatch(m, [&](auto tag) {
    constexpr index_t kM = decltype(tag)::value;
    trsm_upper_kernel<kM>(lu, b);
  });
}

LuFactors lu_factor_fixed(Matrix a) {
  LuFactors out;
  const index_t m = a.rows();
  dispatch(m, [&](auto tag) {
    constexpr index_t kM = decltype(tag)::value;
    out = lu_factor_kernel<kM>(std::move(a));
  });
  return out;
}

void lu_solve_fixed(const LuFactors& f, MatrixView b) {
  require_ok(f, "la::lu_solve");
  dispatch(f.n(), [&](auto tag) {
    constexpr index_t kM = decltype(tag)::value;
    lu_solve_kernel<kM>(f, b);
  });
}

LuInPlaceInfo lu_factor_inplace_fixed(index_t m, MatrixView a, index_t* piv) {
  LuInPlaceInfo d;
  dispatch(m, [&](auto tag) {
    constexpr index_t kM = decltype(tag)::value;
    d = lu_factor_view_kernel<kM>(a, piv);
  });
  return d;
}

void lu_solve_inplace_fixed(index_t m, ConstMatrixView lu, const index_t* piv, MatrixView b) {
  dispatch(m, [&](auto tag) {
    constexpr index_t kM = decltype(tag)::value;
    lu_solve_view_kernel<kM>(lu, piv, b);
  });
}

void batched_gemm(index_t m, double alpha, std::span<const GemmItem> items, double beta) {
  if (enabled()) {
    const bool hit = dispatch(m, [&](auto tag) {
      constexpr index_t kM = decltype(tag)::value;
      for (const GemmItem& it : items) {
        scale_c(beta, it.c);
        if (alpha == 0.0) continue;
        gemm_kernel<kM>(alpha, it.a, it.b, it.c);
      }
    });
    if (hit) return;
  }
  for (const GemmItem& it : items) gemm(alpha, it.a, it.b, beta, it.c);
}

void batched_lu_factor(index_t m, std::span<const ConstMatrixView> blocks,
                       std::vector<LuFactors>& out) {
  out.reserve(out.size() + blocks.size());
  if (enabled()) {
    const bool hit = dispatch(m, [&](auto tag) {
      constexpr index_t kM = decltype(tag)::value;
      for (ConstMatrixView blk : blocks) out.push_back(lu_factor_kernel<kM>(to_matrix(blk)));
    });
    if (hit) return;
  }
  for (ConstMatrixView blk : blocks) out.push_back(lu_factor(blk));
}

void batched_lu_solve(index_t m, std::span<const LuSolveItem> items) {
  if (enabled()) {
    const bool hit = dispatch(m, [&](auto tag) {
      constexpr index_t kM = decltype(tag)::value;
      for (const LuSolveItem& it : items) {
        require_ok(*it.f, "la::lu_solve");
        lu_solve_kernel<kM>(*it.f, it.b);
      }
    });
    if (hit) return;
  }
  for (const LuSolveItem& it : items) lu_solve_inplace(*it.f, it.b);
}

}  // namespace ardbt::la::smallblock
