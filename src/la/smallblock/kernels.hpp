#pragma once

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <utility>

#include "src/la/lu.hpp"
#include "src/la/matrix.hpp"
#include "src/la/views.hpp"

/// \file kernels.hpp
/// The fixed-M kernel templates behind smallblock.hpp's entry points,
/// exposed so sweeping call sites (block-Thomas panels, PCR levels) can
/// hoist the M-dispatch out of their per-block loops: dispatch(m, ...)
/// once per segment, then run the templated sweep with zero per-block
/// branching.
///
/// Every template here is a transcription of the corresponding generic
/// loop in gemm.cpp / lu.cpp with the M-extent promoted to a template
/// parameter. The per-element floating-point operation order — including
/// the skip-on-zero multiplier branches — is preserved exactly; any
/// reordering breaks the library-wide bit-identity contract
/// (docs/KERNELS.md).

namespace ardbt::la::smallblock {

/// Invoke `f` with std::integral_constant<index_t, M> when `m` is a
/// dispatchable size; returns false (without calling f) otherwise.
template <typename F>
bool dispatch(index_t m, F&& f) {
  switch (m) {
    case 2:
      f(std::integral_constant<index_t, 2>{});
      return true;
    case 4:
      f(std::integral_constant<index_t, 4>{});
      return true;
    case 8:
      f(std::integral_constant<index_t, 8>{});
      return true;
    case 16:
      f(std::integral_constant<index_t, 16>{});
      return true;
    case 32:
      f(std::integral_constant<index_t, 32>{});
      return true;
    default:
      return false;
  }
}

/// Same beta handling as gemm.cpp's scale_c.
inline void scale_c(double beta, MatrixView c) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    for (index_t i = 0; i < c.rows(); ++i) std::fill(c.row_ptr(i), c.row_ptr(i) + c.cols(), 0.0);
    return;
  }
  for (index_t i = 0; i < c.rows(); ++i) {
    double* ci = c.row_ptr(i);
    for (index_t j = 0; j < c.cols(); ++j) ci[j] *= beta;
  }
}

/// Column-tile widths held in registers by the kernels below. The generic
/// saxpy loops stream each output row from memory M times; these kernels
/// keep a T-column accumulator tile in registers across the whole
/// (unrolled, compile-time-M) k loop and write each element exactly once.
/// The per-element arithmetic is unchanged — the same terms are added in
/// the same k-ascending order — so results stay bit-identical. Tiles
/// shrink 8 -> 4 -> 2 -> 1 so narrow panels (factor-path couplings are
/// only M columns wide) still run register-blocked.
namespace detail {

template <index_t M, index_t T>
inline void gemm_tile(double alpha, const double* ai, ConstMatrixView b, double* ci, index_t j) {
  double acc[T];
  for (index_t t = 0; t < T; ++t) acc[t] = ci[j + t];
  for (index_t k = 0; k < M; ++k) {
    const double aik = alpha * ai[k];
    const double* bk = b.row_ptr(k) + j;
    for (index_t t = 0; t < T; ++t) acc[t] += aik * bk[t];
  }
  for (index_t t = 0; t < T; ++t) ci[j + t] = acc[t];
}

}  // namespace detail

/// C += alpha * A * B with A M x M; same per-element operation order as
/// gemm.cpp's saxpy (i,k,j) loops. Callers apply scale_c / the alpha == 0
/// early-out first.
template <index_t M>
void gemm_kernel(double alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const index_t n = c.cols();
  for (index_t i = 0; i < M; ++i) {
    double* ci = c.row_ptr(i);
    const double* ai = a.row_ptr(i);
    index_t j = 0;
    for (; j + 8 <= n; j += 8) detail::gemm_tile<M, 8>(alpha, ai, b, ci, j);
    if (j + 4 <= n) {
      detail::gemm_tile<M, 4>(alpha, ai, b, ci, j);
      j += 4;
    }
    if (j + 2 <= n) {
      detail::gemm_tile<M, 2>(alpha, ai, b, ci, j);
      j += 2;
    }
    if (j < n) detail::gemm_tile<M, 1>(alpha, ai, b, ci, j);
  }
}

namespace detail {

/// One register tile of forward substitution: row i of B minus the
/// already-final rows k < i, subtracted in k-ascending order with the
/// same skip-on-zero branches as lu.cpp's generic loops.
template <index_t M, index_t T>
inline void trsm_lower_tile(const double* li, index_t i, MatrixView b, double* bi, index_t j) {
  double acc[T];
  for (index_t t = 0; t < T; ++t) acc[t] = bi[j + t];
  for (index_t k = 0; k < i; ++k) {
    const double lik = li[k];
    if (lik == 0.0) continue;
    const double* bk = b.row_ptr(k) + j;
    for (index_t t = 0; t < T; ++t) acc[t] -= lik * bk[t];
  }
  for (index_t t = 0; t < T; ++t) bi[j + t] = acc[t];
}

/// One register tile of backward substitution (rows k > i are final),
/// with the trailing inv_uii scale applied at store time — the same
/// final multiply the generic loop performs in place.
template <index_t M, index_t T>
inline void trsm_upper_tile(const double* ui, index_t i, double inv_uii, MatrixView b, double* bi,
                            index_t j) {
  double acc[T];
  for (index_t t = 0; t < T; ++t) acc[t] = bi[j + t];
  for (index_t k = i + 1; k < M; ++k) {
    const double uik = ui[k];
    if (uik == 0.0) continue;
    const double* bk = b.row_ptr(k) + j;
    for (index_t t = 0; t < T; ++t) acc[t] -= uik * bk[t];
  }
  for (index_t t = 0; t < T; ++t) bi[j + t] = acc[t] * inv_uii;
}

}  // namespace detail

/// B := L^{-1} B with the unit-lower triangle of a packed M x M LU.
template <index_t M>
void trsm_lower_unit_kernel(ConstMatrixView lu, MatrixView b) {
  const index_t n = b.cols();
  for (index_t i = 1; i < M; ++i) {
    double* bi = b.row_ptr(i);
    const double* li = lu.row_ptr(i);
    index_t j = 0;
    for (; j + 8 <= n; j += 8) detail::trsm_lower_tile<M, 8>(li, i, b, bi, j);
    if (j + 4 <= n) {
      detail::trsm_lower_tile<M, 4>(li, i, b, bi, j);
      j += 4;
    }
    if (j + 2 <= n) {
      detail::trsm_lower_tile<M, 2>(li, i, b, bi, j);
      j += 2;
    }
    if (j < n) detail::trsm_lower_tile<M, 1>(li, i, b, bi, j);
  }
}

/// B := U^{-1} B with the upper triangle of a packed M x M LU.
template <index_t M>
void trsm_upper_kernel(ConstMatrixView lu, MatrixView b) {
  const index_t n = b.cols();
  for (index_t i = M - 1; i >= 0; --i) {
    double* bi = b.row_ptr(i);
    const double* ui = lu.row_ptr(i);
    const double inv_uii = 1.0 / ui[i];
    index_t j = 0;
    for (; j + 8 <= n; j += 8) detail::trsm_upper_tile<M, 8>(ui, i, inv_uii, b, bi, j);
    if (j + 4 <= n) {
      detail::trsm_upper_tile<M, 4>(ui, i, inv_uii, b, bi, j);
      j += 4;
    }
    if (j + 2 <= n) {
      detail::trsm_upper_tile<M, 2>(ui, i, inv_uii, b, bi, j);
      j += 2;
    }
    if (j < n) detail::trsm_upper_tile<M, 1>(ui, i, inv_uii, b, bi, j);
  }
}

/// b := P b with a row permutation in caller-owned storage (no FP
/// arithmetic, so no ordering concerns).
inline void apply_permutation_kernel(const index_t* piv, index_t n, MatrixView b) {
  for (index_t k = 0; k < n; ++k) {
    const index_t p = piv[k];
    if (p != k) {
      for (index_t j = 0; j < b.cols(); ++j) std::swap(b(k, j), b(p, j));
    }
  }
}

/// Full getrs with a dispatched M over caller-owned factors: permutation,
/// forward, backward. The caller has already verified the factorization
/// is ok() (lu.cpp's require_ok contract).
template <index_t M>
void lu_solve_view_kernel(ConstMatrixView lu, const index_t* piv, MatrixView b) {
  apply_permutation_kernel(piv, M, b);
  trsm_lower_unit_kernel<M>(lu, b);
  trsm_upper_kernel<M>(lu, b);
}

/// LuFactors-packed convenience over lu_solve_view_kernel.
template <index_t M>
void lu_solve_kernel(const LuFactors& f, MatrixView b) {
  lu_solve_view_kernel<M>(f.lu.view(), f.piv.data(), b);
}

/// getrf with partial pivoting, M x M extents compile-time, factoring the
/// view in place with caller-owned pivots; identical arithmetic, pivot
/// diagnostics, and LAPACK-style zero-pivot completion to la::lu_factor.
template <index_t M>
LuInPlaceInfo lu_factor_view_kernel(MatrixView m, index_t* piv) {
  LuInPlaceInfo d;

  double a_max = 0.0;
  for (index_t i = 0; i < M; ++i) {
    for (index_t j = 0; j < M; ++j) a_max = std::max(a_max, std::abs(m(i, j)));
  }

  for (index_t k = 0; k < M; ++k) {
    index_t p = k;
    double best = std::abs(m(k, k));
    for (index_t i = k + 1; i < M; ++i) {
      const double v = std::abs(m(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    piv[k] = p;
    if (p != k) {
      for (index_t j = 0; j < M; ++j) std::swap(m(k, j), m(p, j));
    }
    const double pivot = m(k, k);
    d.min_pivot_abs = std::min(d.min_pivot_abs, std::abs(pivot));
    d.max_pivot_abs = std::max(d.max_pivot_abs, std::abs(pivot));
    if (pivot == 0.0) {
      if (d.info == 0) d.info = k + 1;
      continue;  // complete the factorization LAPACK-style, like lu_factor
    }
    const double inv_pivot = 1.0 / pivot;
    for (index_t i = k + 1; i < M; ++i) {
      const double lik = m(i, k) * inv_pivot;
      m(i, k) = lik;
      if (lik == 0.0) continue;
      double* mi = m.row_ptr(i);
      const double* mk = m.row_ptr(k);
      for (index_t j = k + 1; j < M; ++j) mi[j] -= lik * mk[j];
    }
  }
  double u_max = 0.0;
  for (index_t i = 0; i < M; ++i) {
    for (index_t j = i; j < M; ++j) u_max = std::max(u_max, std::abs(m(i, j)));
  }
  d.growth = a_max > 0.0 ? u_max / a_max : 1.0;
  return d;
}

/// LuFactors-packed convenience over lu_factor_view_kernel.
template <index_t M>
LuFactors lu_factor_kernel(Matrix a) {
  LuFactors f;
  f.piv.resize(static_cast<std::size_t>(M));
  const LuInPlaceInfo d = lu_factor_view_kernel<M>(a.view(), f.piv.data());
  f.info = d.info;
  f.min_pivot_abs = d.min_pivot_abs;
  f.max_pivot_abs = d.max_pivot_abs;
  f.growth = d.growth;
  f.lu = std::move(a);
  return f;
}

// All call sites share the instantiations defined in smallblock.cpp —
// that one translation unit is compiled with the kernel-tuning flags
// (see src/la/CMakeLists.txt), so every caller gets the same code and
// the same bits regardless of its own TU's options.
#define ARDBT_SMALLBLOCK_EXTERN(M)                                                     \
  extern template void gemm_kernel<M>(double, ConstMatrixView, ConstMatrixView,        \
                                      MatrixView);                                     \
  extern template void trsm_lower_unit_kernel<M>(ConstMatrixView, MatrixView);         \
  extern template void trsm_upper_kernel<M>(ConstMatrixView, MatrixView);              \
  extern template void lu_solve_view_kernel<M>(ConstMatrixView, const index_t*,        \
                                               MatrixView);                            \
  extern template void lu_solve_kernel<M>(const LuFactors&, MatrixView);               \
  extern template LuInPlaceInfo lu_factor_view_kernel<M>(MatrixView, index_t*);        \
  extern template LuFactors lu_factor_kernel<M>(Matrix)
ARDBT_SMALLBLOCK_EXTERN(2);
ARDBT_SMALLBLOCK_EXTERN(4);
ARDBT_SMALLBLOCK_EXTERN(8);
ARDBT_SMALLBLOCK_EXTERN(16);
ARDBT_SMALLBLOCK_EXTERN(32);
#undef ARDBT_SMALLBLOCK_EXTERN

}  // namespace ardbt::la::smallblock
