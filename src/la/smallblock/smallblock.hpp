#pragma once

#include <span>
#include <vector>

#include "src/la/lu.hpp"
#include "src/la/matrix.hpp"
#include "src/la/views.hpp"

/// \file smallblock.hpp
/// Fixed-M register-blocked microkernels for the small-block regime.
///
/// The paper's complexity claim lives entirely in O(M^3) operations on
/// blocks of order M ~ 4..32 — sizes at which the generic cache-tiled
/// GEMM (64x128x256 tiles, gemm.cpp) never engages its blocking and every
/// call pays runtime trip counts, dispatch branches, and per-call
/// temporaries. This layer provides compile-time-dispatched kernels for
/// M in {2, 4, 8, 16, 32}: the i/k loops have constant bounds the
/// compiler fully unrolls and vectorizes, while the right-hand-side width
/// stays a runtime parameter. Shapes outside the set fall back to the
/// generic path.
///
/// **Determinism contract** (docs/KERNELS.md): every kernel here performs
/// the *exact* per-element floating-point operation sequence of the
/// generic path it replaces — same saxpy (i,k,j) accumulation order in
/// GEMM, same elimination and substitution order (including the
/// skip-on-zero multiplier branches) in LU/TRSM. Results are therefore
/// bit-identical to the seed kernels and across par::Pool sizes; the
/// `set_enabled(false)` kill switch below exists purely so benchmarks can
/// time the generic path, never to change results.
///
/// Batched entry points sweep a sequence of equally-shaped blocks with
/// one M-dispatch hoisted out of the loop — block-Thomas sweeps, the PCR
/// level updates, and the two-port merges call once per segment instead
/// of once per block.

namespace ardbt::la::smallblock {

/// True when `m` has a compiled fixed-size kernel (M in {2, 4, 8, 16, 32}).
bool dispatchable(index_t m);

/// Runtime kill switch (default on). Only benchmarks/tests toggle it, to
/// A/B the generic path; solutions are bit-identical either way.
bool enabled();
void set_enabled(bool on);

/// C = alpha * A * B + beta * C with A a dispatchable M x M block and
/// B/C M x n (n runtime). Same contract and accumulation order as
/// la::gemm; callers guarantee a.rows() == a.cols() == dispatchable M.
void gemm_fixed(index_t m, double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
                MatrixView c);

/// Forward substitution with the unit-lower triangle of a packed LU
/// (TRSM, left, lower, unit-diagonal): B := L^{-1} B.
void trsm_lower_unit_fixed(index_t m, ConstMatrixView lu, MatrixView b);

/// Back substitution with the upper triangle of a packed LU (TRSM, left,
/// upper): B := U^{-1} B.
void trsm_upper_fixed(index_t m, ConstMatrixView lu, MatrixView b);

/// Fixed-size counterparts of la::lu_factor / la::lu_solve_inplace.
/// Preconditions: a is a dispatchable M x M block (for solve, f.n() is).
LuFactors lu_factor_fixed(Matrix a);
void lu_solve_fixed(const LuFactors& f, MatrixView b);

/// Fixed-size counterparts of the caller-owned-storage primitives
/// la::lu_factor_inplace / the view overload of la::lu_solve_inplace.
/// Preconditions: m is dispatchable; piv has m entries.
LuInPlaceInfo lu_factor_inplace_fixed(index_t m, MatrixView a, index_t* piv);
void lu_solve_inplace_fixed(index_t m, ConstMatrixView lu, const index_t* piv, MatrixView b);

/// One item of a batched multiply: c = alpha * a * b + beta * c.
struct GemmItem {
  ConstMatrixView a;  ///< M x M
  ConstMatrixView b;  ///< M x n
  MatrixView c;       ///< M x n
};

/// Sweep a sequence of equally-shaped products in index order with a
/// single M-dispatch. Items may be data-dependent (item i reading what
/// item i-1 wrote) — execution order is the index order, so results match
/// per-item la::gemm calls bit for bit. `m` is the (common) block order;
/// non-dispatchable m or a disabled layer falls back to la::gemm per item.
void batched_gemm(index_t m, double alpha, std::span<const GemmItem> items, double beta);

/// Factor every M x M block of `blocks` (in index order, one dispatch),
/// appending to `out`. Identical per-block results to la::lu_factor on
/// each view; callers check ok() / diagnostics exactly as before.
void batched_lu_factor(index_t m, std::span<const ConstMatrixView> blocks,
                       std::vector<LuFactors>& out);

/// One item of a batched triangular solve pair: b := A_i^{-1} b through
/// the item's factorization.
struct LuSolveItem {
  const LuFactors* f;  ///< factored M x M block
  MatrixView b;        ///< M x n right-hand-side panel, solved in place
};

/// Apply a sequence of factored blocks to their panels in index order
/// with a single M-dispatch. Identical per-item results to
/// la::lu_solve_inplace.
void batched_lu_solve(index_t m, std::span<const LuSolveItem> items);

}  // namespace ardbt::la::smallblock
