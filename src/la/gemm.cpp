#include "src/la/gemm.hpp"

#include <algorithm>
#include <cassert>

#include "src/la/shape_check.hpp"
#include "src/la/smallblock/smallblock.hpp"
#include "src/par/pool.hpp"

namespace ardbt::la {
namespace {

// Tile sizes chosen so one (MB x KB) panel of A plus a (KB x NB) panel of B
// fit comfortably in L1/L2 on commodity x86. Not auto-tuned; the library's
// claims are about flop-count ratios, not absolute GEMM throughput.
constexpr index_t kMB = 64;
constexpr index_t kKB = 128;
constexpr index_t kNB = 256;

// Inner kernel: C[i0:i1, j0:j1] += alpha * A[i0:i1, k0:k1] * B[k0:k1, j0:j1]
// using the saxpy (i,k,j) ordering so the j-loop streams along rows of B and
// C and auto-vectorizes.
void block_kernel(double alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c, index_t i0,
                  index_t i1, index_t k0, index_t k1, index_t j0, index_t j1) {
  for (index_t i = i0; i < i1; ++i) {
    double* ci = c.row_ptr(i);
    const double* ai = a.row_ptr(i);
    for (index_t k = k0; k < k1; ++k) {
      const double aik = alpha * ai[k];
      const double* bk = b.row_ptr(k);
      for (index_t j = j0; j < j1; ++j) ci[j] += aik * bk[j];
    }
  }
}

void scale_c(double beta, MatrixView c) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    for (index_t i = 0; i < c.rows(); ++i) std::fill(c.row_ptr(i), c.row_ptr(i) + c.cols(), 0.0);
    return;
  }
  for (index_t i = 0; i < c.rows(); ++i) {
    double* ci = c.row_ptr(i);
    for (index_t j = 0; j < c.cols(); ++j) ci[j] *= beta;
  }
}

}  // namespace

void gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta, MatrixView c,
          par::Pool* pool) {
  detail::check_shape(a.rows() == c.rows(), "la::gemm", "a.rows() == c.rows()", a.rows(),
                      c.rows());
  detail::check_shape(a.cols() == b.rows(), "la::gemm", "a.cols() == b.rows()", a.cols(),
                      b.rows());
  detail::check_shape(b.cols() == c.cols(), "la::gemm", "b.cols() == c.cols()", b.cols(),
                      c.cols());
  assert(a.data() != c.data() && b.data() != c.data() && "gemm output must not alias inputs");

  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = a.cols();

  // Column panels are independent (disjoint C columns, per-element
  // accumulation order untouched), so fan wide multiplies out over the
  // pool. Small products stay on the calling thread: the fork-join
  // handshake would dominate.
  constexpr double kMinParallelFlops = 32.0 * 1024.0;
  if (pool != nullptr && pool->threads() > 1 && n >= 2 &&
      gemm_flops(m, n, k) >= kMinParallelFlops) {
    pool->parallel_for(
        0, n,
        [&](std::int64_t j0, std::int64_t j1) {
          const index_t w = static_cast<index_t>(j1 - j0);
          gemm(alpha, a, b.block(0, static_cast<index_t>(j0), k, w), beta,
               c.block(0, static_cast<index_t>(j0), m, w));
        },
        "la.gemm");
    return;
  }

  // Square small-block left operands — the shape the solvers hammer —
  // take the fixed-M microkernel. Placed after the pool branch so the
  // parallel split is unchanged; results are bit-identical either way
  // (same scale-then-saxpy order per element).
  if (m == k && smallblock::enabled() && smallblock::dispatchable(m)) {
    smallblock::gemm_fixed(m, alpha, a, b, beta, c);
    return;
  }

  scale_c(beta, c);
  if (alpha == 0.0) return;

  // Small problems: skip the blocking control flow entirely.
  if (m <= kMB && n <= kNB && k <= kKB) {
    block_kernel(alpha, a, b, c, 0, m, 0, k, 0, n);
    return;
  }

  for (index_t kk = 0; kk < k; kk += kKB) {
    const index_t k1 = std::min(kk + kKB, k);
    for (index_t ii = 0; ii < m; ii += kMB) {
      const index_t i1 = std::min(ii + kMB, m);
      for (index_t jj = 0; jj < n; jj += kNB) {
        const index_t j1 = std::min(jj + kNB, n);
        block_kernel(alpha, a, b, c, ii, i1, kk, k1, jj, j1);
      }
    }
  }
}

void gemm_naive(double alpha, ConstMatrixView a, ConstMatrixView b, double beta, MatrixView c) {
  detail::check_shape(a.rows() == c.rows(), "la::gemm_naive", "a.rows() == c.rows()", a.rows(),
                      c.rows());
  detail::check_shape(a.cols() == b.rows(), "la::gemm_naive", "a.cols() == b.rows()", a.cols(),
                      b.rows());
  detail::check_shape(b.cols() == c.cols(), "la::gemm_naive", "b.cols() == c.cols()", b.cols(),
                      c.cols());
  for (index_t i = 0; i < c.rows(); ++i) {
    for (index_t j = 0; j < c.cols(); ++j) {
      double s = 0.0;
      for (index_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = alpha * s + beta * c(i, j);
    }
  }
}

Matrix matmul(ConstMatrixView a, ConstMatrixView b) {
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, b, 0.0, c.view());
  return c;
}

}  // namespace ardbt::la
