#include "src/la/workspace.hpp"

#include <algorithm>

namespace ardbt::la {

Matrix Workspace::acquire(index_t rows, index_t cols) {
  ++stats_.acquires;
  const auto need = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  auto it = pool_.lower_bound(need);  // smallest capacity >= need
  if (it == pool_.end()) {
    ++stats_.slab_allocs;
    stats_.slab_bytes += need * sizeof(double);
    loaned_bytes_ += need * sizeof(double);
    stats_.high_water_bytes = std::max(stats_.high_water_bytes, pooled_bytes_ + loaned_bytes_);
    return Matrix(rows, cols);
  }
  std::vector<double> storage = std::move(it->second);
  const std::uint64_t cap_bytes = it->first * sizeof(double);
  pool_.erase(it);
  pooled_bytes_ -= cap_bytes;
  loaned_bytes_ += cap_bytes;
  stats_.high_water_bytes = std::max(stats_.high_water_bytes, pooled_bytes_ + loaned_bytes_);
  return Matrix(rows, cols, std::move(storage));
}

void Workspace::release(Matrix&& m) {
  ++stats_.releases;
  std::vector<double> storage = std::move(m).take_storage();
  const std::size_t cap = storage.capacity();
  if (cap == 0) return;
  const std::uint64_t cap_bytes = cap * sizeof(double);
  // Loan sizes are tracked by capacity, which can grow while on loan
  // (caller resize); clamp so the estimate never underflows.
  loaned_bytes_ -= std::min<std::uint64_t>(loaned_bytes_, cap_bytes);
  pooled_bytes_ += cap_bytes;
  stats_.high_water_bytes = std::max(stats_.high_water_bytes, pooled_bytes_ + loaned_bytes_);
  pool_.emplace(cap, std::move(storage));
}

void Workspace::trim() {
  pool_.clear();
  pooled_bytes_ = 0;
}

}  // namespace ardbt::la
