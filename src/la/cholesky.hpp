#pragma once

#include <limits>

#include "src/fault/status.hpp"
#include "src/la/matrix.hpp"

/// \file cholesky.hpp
/// Cholesky factorization A = L L^T for symmetric positive definite
/// matrices (LAPACK potrf/potrs contract): roughly half the work of LU
/// and unconditionally stable — the fast path for SPD pivot blocks (e.g.
/// symmetric diffusion operators); see ThomasFactorization's pivot option.
/// Solving with a failed factorization throws fault::SingularPivotError
/// (code kNonSpdPivot) — loud in release builds.

namespace ardbt::la {

/// Lower-triangular factor; `info == 0` on success, `info == k+1` when
/// the leading k x k minor is not positive definite.
struct CholeskyFactors {
  Matrix l;  ///< lower triangle holds L; strict upper triangle is zero
  index_t info = 0;
  /// Extreme |L_kk| met so far — (sqrt of) the pivot magnitudes, the
  /// cheap condition proxy breakdown monitoring aggregates.
  double min_pivot_abs = std::numeric_limits<double>::infinity();
  double max_pivot_abs = 0.0;

  bool ok() const { return info == 0; }
  index_t n() const { return l.rows(); }
};

/// Factor a copy of the symmetric matrix `a` (only its lower triangle is
/// read).
CholeskyFactors cholesky_factor(ConstMatrixView a);

/// B := A^{-1} B via two triangular solves.
void cholesky_solve_inplace(const CholeskyFactors& f, MatrixView b);

/// Returns A^{-1} B.
Matrix cholesky_solve(const CholeskyFactors& f, ConstMatrixView b);

/// Flop count (n^3 / 3).
inline double cholesky_factor_flops(index_t n) {
  const double dn = static_cast<double>(n);
  return dn * dn * dn / 3.0;
}

}  // namespace ardbt::la
