#include "src/la/blas1.hpp"

#include <cassert>
#include <cmath>

namespace ardbt::la {

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (auto& v : x) v *= alpha;
}

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double s = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double nrm2(std::span<const double> x) {
  // Scaled accumulation to avoid overflow for large entries.
  double scale = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double a = std::abs(v);
    if (scale < a) {
      ssq = 1.0 + ssq * (scale / a) * (scale / a);
      scale = a;
    } else {
      ssq += (a / scale) * (a / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double amax(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double norm_fro(ConstMatrixView a) {
  double scale = 0.0;
  double ssq = 1.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (double v : a.row(i)) {
      if (v == 0.0) continue;
      const double x = std::abs(v);
      if (scale < x) {
        ssq = 1.0 + ssq * (scale / x) * (scale / x);
        scale = x;
      } else {
        ssq += (x / scale) * (x / scale);
      }
    }
  }
  return scale * std::sqrt(ssq);
}

double norm_inf(ConstMatrixView a) {
  double m = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (double v : a.row(i)) s += std::abs(v);
    m = std::max(m, s);
  }
  return m;
}

double norm_max(ConstMatrixView a) {
  double m = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) m = std::max(m, amax(a.row(i)));
  return m;
}

double norm_one(ConstMatrixView a) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    for (index_t i = 0; i < a.rows(); ++i) s += std::abs(a(i, j));
    m = std::max(m, s);
  }
  return m;
}

void matrix_axpy(double alpha, ConstMatrixView a, MatrixView b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  for (index_t i = 0; i < a.rows(); ++i) axpy(alpha, a.row(i), b.row(i));
}

void matrix_scal(double alpha, MatrixView a) {
  for (index_t i = 0; i < a.rows(); ++i) scal(alpha, a.row(i));
}

}  // namespace ardbt::la
