#pragma once

#include "src/fault/status.hpp"
#include "src/la/matrix.hpp"

/// \file shape_check.hpp
/// Always-on dimension checks for the dense kernel entry points. These
/// used to be bare `assert`s, which compile out under -DNDEBUG (the
/// default RelWithDebInfo build!) and let mismatched views write out of
/// bounds. A failed check raises fault::ShapeMismatchError
/// (ErrorCode::kShapeMismatch); the cost is a handful of predictable
/// integer compares per kernel call, invisible next to the O(M^3) work
/// they guard.

namespace ardbt::la::detail {

/// Throws ShapeMismatchError("<where>: shape mismatch, <relation> violated
/// (got ..., expected ...)") when `ok` is false.
inline void check_shape(bool ok, const char* where, const char* relation, index_t got,
                        index_t expected) {
  if (!ok) [[unlikely]] {
    throw fault::ShapeMismatchError(where, relation, got, expected);
  }
}

}  // namespace ardbt::la::detail
