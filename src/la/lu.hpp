#pragma once

#include <limits>
#include <span>
#include <vector>

#include "src/fault/status.hpp"
#include "src/la/matrix.hpp"

/// \file lu.hpp
/// LU factorization with partial (row) pivoting and multi-right-hand-side
/// solves. Mirrors the LAPACK getrf/getrs contract: `info == 0` on success,
/// `info == k+1` when the k-th pivot is exactly zero (the factorization is
/// still completed). Solving with a singular factorization throws
/// fault::SingularPivotError — a structured, release-mode-loud failure
/// instead of the assert-only (UB under NDEBUG) contract this library
/// used to have.

namespace ardbt::la {

/// Packed LU factorization of a square matrix: `P A = L U` with unit-lower
/// L and upper U stored in `lu`, and `piv[k]` the row swapped with row k at
/// step k.
struct LuFactors {
  Matrix lu;
  std::vector<index_t> piv;
  index_t info = 0;
  /// Extreme pivot magnitudes met during elimination (after row pivoting)
  /// — the cheap condition proxy breakdown monitoring aggregates.
  double min_pivot_abs = std::numeric_limits<double>::infinity();
  double max_pivot_abs = 0.0;
  /// Element growth ||U||_max / ||A||_max, the classic stability monitor
  /// (~1 for well-behaved eliminations, large when pivoting struggled).
  double growth = 1.0;

  /// True when no exactly-zero pivot was met.
  bool ok() const { return info == 0; }
  index_t n() const { return lu.rows(); }
};

/// Diagnostics of an in-place factorization (lu_factor_inplace): the same
/// fields LuFactors carries, for callers that own the LU storage (e.g. a
/// contiguous slab of many small blocks) and only need the numbers back.
struct LuInPlaceInfo {
  index_t info = 0;
  double min_pivot_abs = std::numeric_limits<double>::infinity();
  double max_pivot_abs = 0.0;
  double growth = 1.0;

  bool ok() const { return info == 0; }
};

/// Factor a square matrix (taken by value; moved into the result).
LuFactors lu_factor(Matrix a);

/// Factor a copy of a square view.
LuFactors lu_factor(ConstMatrixView a);

/// Factor a square view in place, writing the row swaps into the
/// caller-owned `piv` (size n). Identical arithmetic and diagnostics to
/// lu_factor — this is the storage-free core the slab-resident callers
/// (block-Thomas factor sweeps) use to avoid one Matrix + pivot vector
/// allocation per block.
LuInPlaceInfo lu_factor_inplace(MatrixView a, std::span<index_t> piv);

/// B := A^{-1} B through caller-owned factors (the in-place counterpart
/// of lu_solve_inplace(const LuFactors&, ...)). The caller is responsible
/// for having checked ok() at factor time.
void lu_solve_inplace(ConstMatrixView lu, std::span<const index_t> piv, MatrixView b);

/// B := A^{-1} B for a factored A; B has n rows and any number of columns.
void lu_solve_inplace(const LuFactors& f, MatrixView b);

/// Returns A^{-1} B without modifying B.
Matrix lu_solve(const LuFactors& f, ConstMatrixView b);

/// Single right-hand side, in place.
void lu_solve_inplace(const LuFactors& f, std::span<double> b);

/// B := A^{-T} B using the same factors (getrs with trans='T'):
/// A^T = U^T L^T P, so solve U^T s = B, L^T t = s, B = P^{-1} t.
void lu_solve_transposed_inplace(const LuFactors& f, MatrixView b);

/// Right division: returns X = B A^{-1} (i.e. solves X A = B) via the
/// transposed system. B has any number of rows and n columns.
Matrix right_divide(ConstMatrixView b, const LuFactors& f);

class Workspace;

/// Workspace-backed right division: the transpose scratch and the result
/// both come from `ws` (result storage returns to the pool when the
/// caller releases it). `ws == nullptr` behaves exactly like the
/// two-argument overload; results are bit-identical either way.
Matrix right_divide(ConstMatrixView b, const LuFactors& f, Workspace* ws);

/// Explicit inverse via LU (test/diagnostic utility; solvers never call it).
Matrix inverse(ConstMatrixView a);

/// Cheap infinity-norm condition estimate via the explicit inverse.
/// Intended for the small (M x M, 2M x 2M) blocks this library handles.
double condition_inf(ConstMatrixView a);

/// Flop counts (LAPACK conventions).
inline double lu_factor_flops(index_t n) {
  const double dn = static_cast<double>(n);
  return 2.0 / 3.0 * dn * dn * dn;
}
inline double lu_solve_flops(index_t n, index_t nrhs) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(nrhs);
}

}  // namespace ardbt::la
