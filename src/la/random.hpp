#pragma once

#include <cstdint>
#include <random>

#include "src/la/matrix.hpp"

/// \file random.hpp
/// Deterministic pseudo-random fills. Every generator takes an explicit
/// engine so tests and benchmarks are reproducible across runs and ranks.

namespace ardbt::la {

/// The library-wide PRNG engine type.
using Rng = std::mt19937_64;

/// Engine seeded from a base seed and a stream id (e.g. block index or MPI
/// rank) so independent streams never share state.
Rng make_rng(std::uint64_t seed, std::uint64_t stream = 0);

/// Fill with i.i.d. uniform values in [lo, hi).
void fill_uniform(MatrixView a, Rng& rng, double lo = -1.0, double hi = 1.0);

/// Fresh rows x cols uniform matrix.
Matrix random_uniform(index_t rows, index_t cols, Rng& rng, double lo = -1.0, double hi = 1.0);

/// Random square matrix made strictly row-diagonally dominant:
/// |a_ii| >= dominance * sum_{j != i} |a_ij| with dominance > 1.
Matrix random_diag_dominant(index_t n, Rng& rng, double dominance = 2.0);

/// Random well-conditioned square matrix: Q-like orthogonalized columns via
/// modified Gram-Schmidt on a uniform fill (condition number close to 1).
Matrix random_orthogonalish(index_t n, Rng& rng);

}  // namespace ardbt::la
