#include "src/la/random.hpp"

#include <cmath>

#include "src/la/blas1.hpp"

namespace ardbt::la {

Rng make_rng(std::uint64_t seed, std::uint64_t stream) {
  // splitmix64-style mixing of (seed, stream) into one 64-bit state.
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return Rng(z);
}

void fill_uniform(MatrixView a, Rng& rng, double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (double& v : a.row(i)) v = dist(rng);
  }
}

Matrix random_uniform(index_t rows, index_t cols, Rng& rng, double lo, double hi) {
  Matrix m(rows, cols);
  fill_uniform(m.view(), rng, lo, hi);
  return m;
}

Matrix random_diag_dominant(index_t n, Rng& rng, double dominance) {
  Matrix m = random_uniform(n, n, rng);
  for (index_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (index_t j = 0; j < n; ++j) {
      if (j != i) off += std::abs(m(i, j));
    }
    const double sign = m(i, i) >= 0.0 ? 1.0 : -1.0;
    m(i, i) = sign * (dominance * off + 1.0);
  }
  return m;
}

Matrix random_orthogonalish(index_t n, Rng& rng) {
  Matrix m = random_uniform(n, n, rng);
  // Modified Gram-Schmidt over columns. Uniform random columns in general
  // position are (numerically) independent for the small n used here.
  for (index_t j = 0; j < n; ++j) {
    for (index_t k = 0; k < j; ++k) {
      double proj = 0.0;
      for (index_t i = 0; i < n; ++i) proj += m(i, j) * m(i, k);
      for (index_t i = 0; i < n; ++i) m(i, j) -= proj * m(i, k);
    }
    double nrm = 0.0;
    for (index_t i = 0; i < n; ++i) nrm += m(i, j) * m(i, j);
    nrm = std::sqrt(nrm);
    if (nrm < 1e-12) {
      // Degenerate draw: replace with a unit basis column.
      for (index_t i = 0; i < n; ++i) m(i, j) = (i == j) ? 1.0 : 0.0;
    } else {
      for (index_t i = 0; i < n; ++i) m(i, j) /= nrm;
    }
  }
  return m;
}

}  // namespace ardbt::la
