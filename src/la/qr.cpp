#include "src/la/qr.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ardbt::la {
namespace {

/// Apply H_k = I - tau v v^T to b (v packed in column k of qr below the
/// diagonal with implicit leading 1).
void apply_reflector(const Matrix& qr, double tau, index_t k, MatrixView b) {
  if (tau == 0.0) return;
  const index_t m = qr.rows();
  for (index_t j = 0; j < b.cols(); ++j) {
    // w = v^T b(:, j)
    double w = b(k, j);
    for (index_t i = k + 1; i < m; ++i) w += qr(i, k) * b(i, j);
    w *= tau;
    b(k, j) -= w;
    for (index_t i = k + 1; i < m; ++i) b(i, j) -= w * qr(i, k);
  }
}

}  // namespace

QrFactors qr_factor(ConstMatrixView a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  assert(m >= n && "qr_factor requires rows >= cols");
  QrFactors f;
  f.qr = to_matrix(a);
  f.tau.assign(static_cast<std::size_t>(n), 0.0);
  Matrix& qr = f.qr;

  for (index_t k = 0; k < n; ++k) {
    // Householder vector for column k below (and including) the diagonal.
    double norm2 = 0.0;
    for (index_t i = k; i < m; ++i) norm2 += qr(i, k) * qr(i, k);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) {
      f.tau[static_cast<std::size_t>(k)] = 0.0;
      continue;
    }
    const double alpha = qr(k, k);
    const double beta = alpha >= 0.0 ? -norm : norm;  // avoid cancellation
    const double v0 = alpha - beta;
    // Normalize so v has implicit leading 1.
    for (index_t i = k + 1; i < m; ++i) qr(i, k) /= v0;
    const double tau = (beta - alpha) / beta;  // = -v0 / beta
    f.tau[static_cast<std::size_t>(k)] = tau;
    qr(k, k) = beta;

    // Update trailing columns: A := H_k A.
    for (index_t j = k + 1; j < n; ++j) {
      double w = qr(k, j);
      for (index_t i = k + 1; i < m; ++i) w += qr(i, k) * qr(i, j);
      w *= tau;
      qr(k, j) -= w;
      for (index_t i = k + 1; i < m; ++i) qr(i, j) -= w * qr(i, k);
    }
  }
  return f;
}

void apply_qt(const QrFactors& f, MatrixView b) {
  assert(b.rows() == f.rows());
  for (index_t k = 0; k < f.cols(); ++k) {
    apply_reflector(f.qr, f.tau[static_cast<std::size_t>(k)], k, b);
  }
}

void apply_q(const QrFactors& f, MatrixView b) {
  assert(b.rows() == f.rows());
  for (index_t k = f.cols() - 1; k >= 0; --k) {
    apply_reflector(f.qr, f.tau[static_cast<std::size_t>(k)], k, b);
  }
}

Matrix qr_solve(const QrFactors& f, ConstMatrixView b) {
  assert(b.rows() == f.rows());
  Matrix work = to_matrix(b);
  apply_qt(f, work.view());

  const index_t n = f.cols();
  Matrix x(n, b.cols());
  for (index_t i = n - 1; i >= 0; --i) {
    const double rii = f.qr(i, i);
    if (rii == 0.0) throw std::runtime_error("qr_solve: rank-deficient R");
    for (index_t j = 0; j < b.cols(); ++j) {
      double s = work(i, j);
      for (index_t k = i + 1; k < n; ++k) s -= f.qr(i, k) * x(k, j);
      x(i, j) = s / rii;
    }
  }
  return x;
}

Matrix qr_q(const QrFactors& f) {
  Matrix q(f.rows(), f.cols());
  for (index_t j = 0; j < f.cols(); ++j) q(j, j) = 1.0;
  apply_q(f, q.view());
  return q;
}

}  // namespace ardbt::la
