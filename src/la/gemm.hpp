#pragma once

#include "src/la/matrix.hpp"
#include "src/la/views.hpp"

/// \file gemm.hpp
/// General dense matrix-matrix multiply. The cache-blocked kernel is the
/// workhorse of the whole library: both the Theta(M^3) transfer-matrix
/// compositions of recursive doubling and the Theta(M^2 R) right-hand-side
/// updates of the accelerated algorithm reduce to calls here.

namespace ardbt::par {
class Pool;
}

namespace ardbt::la {

/// C = alpha * A * B + beta * C. Shapes: A (m x k), B (k x n), C (m x n).
/// C must not alias A or B.
///
/// A non-null `pool` splits the multiply over column panels of B/C, one
/// panel per pool lane. Each output element still sees the exact
/// k-accumulation order of the serial kernel, so the result is
/// bit-identical for any pool size (including none).
void gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta, MatrixView c,
          par::Pool* pool = nullptr);

/// Reference triple-loop implementation (same contract as gemm). Kept for
/// correctness tests and the B-abl-gemm substrate ablation.
void gemm_naive(double alpha, ConstMatrixView a, ConstMatrixView b, double beta, MatrixView c);

/// Convenience: returns A * B as a fresh matrix.
Matrix matmul(ConstMatrixView a, ConstMatrixView b);

/// Flop count of one gemm call (2*m*n*k).
inline double gemm_flops(index_t m, index_t n, index_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
}

}  // namespace ardbt::la
