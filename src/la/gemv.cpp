#include "src/la/gemv.hpp"

#include "src/la/shape_check.hpp"
#include "src/par/pool.hpp"

namespace ardbt::la {

void gemv(double alpha, ConstMatrixView a, std::span<const double> x, double beta,
          std::span<double> y, par::Pool* pool) {
  detail::check_shape(static_cast<index_t>(x.size()) == a.cols(), "la::gemv",
                      "x.size() == a.cols()", static_cast<index_t>(x.size()), a.cols());
  detail::check_shape(static_cast<index_t>(y.size()) == a.rows(), "la::gemv",
                      "y.size() == a.rows()", static_cast<index_t>(y.size()), a.rows());
  constexpr double kMinParallelFlops = 32.0 * 1024.0;
  if (pool != nullptr && pool->threads() > 1 && a.rows() >= 2 &&
      gemv_flops(a.rows(), a.cols()) >= kMinParallelFlops) {
    pool->parallel_for(
        0, a.rows(),
        [&](std::int64_t i0, std::int64_t i1) {
          const index_t h = static_cast<index_t>(i1 - i0);
          gemv(alpha, a.block(static_cast<index_t>(i0), 0, h, a.cols()), x, beta,
               y.subspan(static_cast<std::size_t>(i0), static_cast<std::size_t>(h)));
        },
        "la.gemv");
    return;
  }
  for (index_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_ptr(i);
    double s = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) s += ai[j] * x[static_cast<std::size_t>(j)];
    auto& yi = y[static_cast<std::size_t>(i)];
    yi = alpha * s + beta * yi;
  }
}

void gemv_t(double alpha, ConstMatrixView a, std::span<const double> x, double beta,
            std::span<double> y) {
  detail::check_shape(static_cast<index_t>(x.size()) == a.rows(), "la::gemv_t",
                      "x.size() == a.rows()", static_cast<index_t>(x.size()), a.rows());
  detail::check_shape(static_cast<index_t>(y.size()) == a.cols(), "la::gemv_t",
                      "y.size() == a.cols()", static_cast<index_t>(y.size()), a.cols());
  if (beta != 1.0) {
    for (auto& v : y) v *= beta;
  }
  for (index_t i = 0; i < a.rows(); ++i) {
    const double axi = alpha * x[static_cast<std::size_t>(i)];
    if (axi == 0.0) continue;
    const double* ai = a.row_ptr(i);
    for (index_t j = 0; j < a.cols(); ++j) y[static_cast<std::size_t>(j)] += axi * ai[j];
  }
}

}  // namespace ardbt::la
