#pragma once

#include <cstdint>

/// \file types.hpp
/// Shared scalar/index typedefs for the dense linear-algebra substrate.

namespace ardbt::la {

/// Index type used throughout the library. Signed so that reverse loops and
/// differences are well defined (C++ Core Guidelines ES.100/ES.102).
using index_t = std::int64_t;

}  // namespace ardbt::la
