#include "src/la/lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/la/blas1.hpp"
#include "src/la/shape_check.hpp"
#include "src/la/smallblock/smallblock.hpp"
#include "src/la/workspace.hpp"

namespace ardbt::la {

LuInPlaceInfo lu_factor_inplace(MatrixView m, std::span<index_t> piv) {
  detail::check_shape(m.rows() == m.cols(), "la::lu_factor", "a.rows() == a.cols()", m.rows(),
                      m.cols());
  const index_t n = m.rows();
  detail::check_shape(static_cast<index_t>(piv.size()) == n, "la::lu_factor",
                      "piv.size() == a.rows()", static_cast<index_t>(piv.size()), n);
  if (smallblock::enabled() && smallblock::dispatchable(n)) {
    return smallblock::lu_factor_inplace_fixed(n, m, piv.data());
  }
  LuInPlaceInfo d;

  // ||A||_max before elimination, the growth-factor denominator.
  double a_max = 0.0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) a_max = std::max(a_max, std::abs(m(i, j)));
  }

  for (index_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    index_t p = k;
    double best = std::abs(m(k, k));
    for (index_t i = k + 1; i < n; ++i) {
      const double v = std::abs(m(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    piv[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      for (index_t j = 0; j < n; ++j) std::swap(m(k, j), m(p, j));
    }
    const double pivot = m(k, k);
    d.min_pivot_abs = std::min(d.min_pivot_abs, std::abs(pivot));
    d.max_pivot_abs = std::max(d.max_pivot_abs, std::abs(pivot));
    if (pivot == 0.0) {
      if (d.info == 0) d.info = k + 1;
      continue;  // complete the factorization LAPACK-style
    }
    const double inv_pivot = 1.0 / pivot;
    for (index_t i = k + 1; i < n; ++i) {
      const double lik = m(i, k) * inv_pivot;
      m(i, k) = lik;
      if (lik == 0.0) continue;
      double* mi = m.row_ptr(i);
      const double* mk = m.row_ptr(k);
      for (index_t j = k + 1; j < n; ++j) mi[j] -= lik * mk[j];
    }
  }
  // ||U||_max / ||A||_max over the upper triangle left in place.
  double u_max = 0.0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i; j < n; ++j) u_max = std::max(u_max, std::abs(m(i, j)));
  }
  d.growth = a_max > 0.0 ? u_max / a_max : 1.0;
  return d;
}

LuFactors lu_factor(Matrix a) {
  LuFactors f;
  f.piv.resize(static_cast<std::size_t>(a.rows()));
  const LuInPlaceInfo d = lu_factor_inplace(a.view(), f.piv);
  f.info = d.info;
  f.min_pivot_abs = d.min_pivot_abs;
  f.max_pivot_abs = d.max_pivot_abs;
  f.growth = d.growth;
  f.lu = std::move(a);
  return f;
}

namespace {

/// Shared solve-path gate: a singular factorization must fail loudly in
/// release builds, not memcpy garbage through undefined arithmetic.
void require_ok(const LuFactors& f, const char* where) {
  if (!f.ok()) {
    throw fault::SingularPivotError(fault::ErrorCode::kSingularPivot, where, -1,
                                    static_cast<std::int64_t>(f.info - 1), f.growth);
  }
}

}  // namespace

LuFactors lu_factor(ConstMatrixView a) { return lu_factor(to_matrix(a)); }

void lu_solve_inplace(const LuFactors& f, MatrixView b) {
  require_ok(f, "la::lu_solve");
  lu_solve_inplace(f.lu.view(), f.piv, b);
}

void lu_solve_inplace(ConstMatrixView lu, std::span<const index_t> piv, MatrixView b) {
  const index_t n = lu.rows();
  detail::check_shape(b.rows() == n, "la::lu_solve", "b.rows() == f.n()", b.rows(), n);
  if (smallblock::enabled() && smallblock::dispatchable(n)) {
    smallblock::lu_solve_inplace_fixed(n, lu, piv.data(), b);
    return;
  }

  // Apply the row permutation: b := P b.
  for (index_t k = 0; k < n; ++k) {
    const index_t p = piv[static_cast<std::size_t>(k)];
    if (p != k) {
      for (index_t j = 0; j < b.cols(); ++j) std::swap(b(k, j), b(p, j));
    }
  }
  // Forward substitution with unit-lower L.
  for (index_t i = 1; i < n; ++i) {
    double* bi = b.row_ptr(i);
    const double* li = lu.row_ptr(i);
    for (index_t k = 0; k < i; ++k) {
      const double lik = li[k];
      if (lik == 0.0) continue;
      const double* bk = b.row_ptr(k);
      for (index_t j = 0; j < b.cols(); ++j) bi[j] -= lik * bk[j];
    }
  }
  // Back substitution with U.
  for (index_t i = n - 1; i >= 0; --i) {
    double* bi = b.row_ptr(i);
    const double* ui = lu.row_ptr(i);
    for (index_t k = i + 1; k < n; ++k) {
      const double uik = ui[k];
      if (uik == 0.0) continue;
      const double* bk = b.row_ptr(k);
      for (index_t j = 0; j < b.cols(); ++j) bi[j] -= uik * bk[j];
    }
    const double inv_uii = 1.0 / ui[i];
    for (index_t j = 0; j < b.cols(); ++j) bi[j] *= inv_uii;
  }
}

Matrix lu_solve(const LuFactors& f, ConstMatrixView b) {
  Matrix x = to_matrix(b);
  lu_solve_inplace(f, x.view());
  return x;
}

void lu_solve_inplace(const LuFactors& f, std::span<double> b) {
  MatrixView v(b.data(), static_cast<index_t>(b.size()), 1, 1);
  lu_solve_inplace(f, v);
}

void lu_solve_transposed_inplace(const LuFactors& f, MatrixView b) {
  require_ok(f, "la::lu_solve_transposed");
  const index_t n = f.n();
  detail::check_shape(b.rows() == n, "la::lu_solve_transposed", "b.rows() == f.n()", b.rows(), n);
  const ConstMatrixView lu = f.lu.view();

  // Forward substitution with U^T (lower triangular, diagonal from U).
  for (index_t i = 0; i < n; ++i) {
    double* bi = b.row_ptr(i);
    const double inv_uii = 1.0 / lu(i, i);
    for (index_t j = 0; j < b.cols(); ++j) bi[j] *= inv_uii;
    for (index_t k = i + 1; k < n; ++k) {
      const double uik = lu(i, k);  // (U^T)(k,i)
      if (uik == 0.0) continue;
      double* bk = b.row_ptr(k);
      for (index_t j = 0; j < b.cols(); ++j) bk[j] -= uik * bi[j];
    }
  }
  // Back substitution with L^T (unit upper triangular).
  for (index_t i = n - 1; i >= 0; --i) {
    const double* bi = b.row_ptr(i);
    for (index_t k = 0; k < i; ++k) {
      const double lik = lu(i, k);  // (L^T)(k,i)
      if (lik == 0.0) continue;
      double* bk = b.row_ptr(k);
      for (index_t j = 0; j < b.cols(); ++j) bk[j] -= lik * bi[j];
    }
  }
  // b := P^{-1} b (undo the factorization's swaps in reverse order).
  for (index_t k = n - 1; k >= 0; --k) {
    const index_t p = f.piv[static_cast<std::size_t>(k)];
    if (p != k) {
      for (index_t j = 0; j < b.cols(); ++j) std::swap(b(k, j), b(p, j));
    }
  }
}

Matrix right_divide(ConstMatrixView b, const LuFactors& f) {
  Matrix bt = transposed(b);
  lu_solve_transposed_inplace(f, bt.view());
  return transposed(bt.view());
}

Matrix right_divide(ConstMatrixView b, const LuFactors& f, Workspace* ws) {
  Matrix bt = ws_acquire(ws, b.cols(), b.rows());
  for (index_t i = 0; i < b.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) bt(j, i) = b(i, j);
  }
  lu_solve_transposed_inplace(f, bt.view());
  Matrix x = ws_acquire(ws, b.rows(), b.cols());
  for (index_t i = 0; i < bt.rows(); ++i) {
    for (index_t j = 0; j < bt.cols(); ++j) x(j, i) = bt(i, j);
  }
  ws_release(ws, std::move(bt));
  return x;
}

Matrix inverse(ConstMatrixView a) {
  detail::check_shape(a.rows() == a.cols(), "la::inverse", "a.rows() == a.cols()", a.rows(),
                      a.cols());
  const LuFactors f = lu_factor(a);
  require_ok(f, "la::inverse");
  Matrix inv = Matrix::identity(a.rows());
  lu_solve_inplace(f, inv.view());
  return inv;
}

double condition_inf(ConstMatrixView a) {
  const LuFactors f = lu_factor(a);
  if (!f.ok()) return std::numeric_limits<double>::infinity();
  Matrix inv = Matrix::identity(a.rows());
  lu_solve_inplace(f, inv.view());
  return norm_inf(a) * norm_inf(inv.view());
}

}  // namespace ardbt::la
