#pragma once

#include <span>

#include "src/la/views.hpp"

/// \file gemv.hpp
/// Dense matrix-vector products.

namespace ardbt::par {
class Pool;
}

namespace ardbt::la {

/// y = alpha * A * x + beta * y. Shapes: A (m x n), x (n), y (m).
/// A non-null `pool` splits the row loop over pool lanes (each y_i is an
/// independent dot product, so the result is bit-identical for any pool
/// size).
void gemv(double alpha, ConstMatrixView a, std::span<const double> x, double beta,
          std::span<double> y, par::Pool* pool = nullptr);

/// y = alpha * A^T * x + beta * y. Shapes: A (m x n), x (m), y (n).
/// Always serial: every row accumulates into the same y, so a row split
/// would race (and any fix would reorder the additions).
void gemv_t(double alpha, ConstMatrixView a, std::span<const double> x, double beta,
            std::span<double> y);

/// Flop count of one gemv call (2*m*n).
inline double gemv_flops(index_t m, index_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n);
}

}  // namespace ardbt::la
