#pragma once

#include <span>

#include "src/la/types.hpp"
#include "src/la/views.hpp"

/// \file blas1.hpp
/// Vector-vector kernels and matrix norms. Everything is a free function on
/// spans/views; nothing allocates.

namespace ardbt::la {

/// y += alpha * x (sizes must match).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scal(double alpha, std::span<double> x);

/// Dot product <x, y>.
double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm of a vector.
double nrm2(std::span<const double> x);

/// Max-abs element of a vector (0 for empty).
double amax(std::span<const double> x);

/// Frobenius norm of a matrix view.
double norm_fro(ConstMatrixView a);

/// Infinity norm (max absolute row sum).
double norm_inf(ConstMatrixView a);

/// Max absolute element of a matrix view.
double norm_max(ConstMatrixView a);

/// 1-norm (max absolute column sum).
double norm_one(ConstMatrixView a);

/// B += alpha * A elementwise (shapes must match).
void matrix_axpy(double alpha, ConstMatrixView a, MatrixView b);

/// A *= alpha elementwise.
void matrix_scal(double alpha, MatrixView a);

}  // namespace ardbt::la
