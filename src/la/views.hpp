#pragma once

#include <cassert>
#include <span>

#include "src/la/types.hpp"

/// \file views.hpp
/// Non-owning strided 2-D views over row-major storage. All dense kernels
/// (GEMM, GEMV, LU, ...) operate on these views so that sub-blocks of a
/// larger matrix can be used without copies.

namespace ardbt::la {

/// Mutable view of a `rows x cols` block with leading dimension `ld`
/// (row-major: element (i,j) lives at `ptr[i*ld + j]`, `ld >= cols`).
class MatrixView {
 public:
  MatrixView() = default;

  MatrixView(double* ptr, index_t rows, index_t cols, index_t ld)
      : ptr_(ptr), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= cols);
    assert(rows >= 0 && cols >= 0);
  }

  /// Contiguous view (leading dimension == cols).
  MatrixView(double* ptr, index_t rows, index_t cols)
      : MatrixView(ptr, rows, cols, cols) {}

  double& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return ptr_[i * ld_ + j];
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  double* data() const { return ptr_; }

  /// Pointer to the start of row `i`.
  double* row_ptr(index_t i) const {
    assert(i >= 0 && i < rows_);
    return ptr_ + i * ld_;
  }

  /// Row `i` as a span of `cols()` elements.
  std::span<double> row(index_t i) const { return {row_ptr(i), static_cast<std::size_t>(cols_)}; }

  /// Sub-block view starting at (r0, c0) of shape (nr, nc).
  MatrixView block(index_t r0, index_t c0, index_t nr, index_t nc) const {
    assert(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_);
    return {ptr_ + r0 * ld_ + c0, nr, nc, ld_};
  }

  /// True when rows are stored back to back (no inter-row gap).
  bool contiguous() const { return ld_ == cols_; }

 private:
  double* ptr_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

/// Read-only counterpart of MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;

  ConstMatrixView(const double* ptr, index_t rows, index_t cols, index_t ld)
      : ptr_(ptr), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= cols);
    assert(rows >= 0 && cols >= 0);
  }

  ConstMatrixView(const double* ptr, index_t rows, index_t cols)
      : ConstMatrixView(ptr, rows, cols, cols) {}

  /// Implicit widening from a mutable view (mirrors `span<T>` ->
  /// `span<const T>`).
  ConstMatrixView(MatrixView v)  // NOLINT(google-explicit-constructor)
      : ConstMatrixView(v.data(), v.rows(), v.cols(), v.ld()) {}

  double operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return ptr_[i * ld_ + j];
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  const double* data() const { return ptr_; }

  const double* row_ptr(index_t i) const {
    assert(i >= 0 && i < rows_);
    return ptr_ + i * ld_;
  }

  std::span<const double> row(index_t i) const {
    return {row_ptr(i), static_cast<std::size_t>(cols_)};
  }

  ConstMatrixView block(index_t r0, index_t c0, index_t nr, index_t nc) const {
    assert(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_);
    return {ptr_ + r0 * ld_ + c0, nr, nc, ld_};
  }

  bool contiguous() const { return ld_ == cols_; }

 private:
  const double* ptr_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

}  // namespace ardbt::la
