#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/la/matrix.hpp"

/// \file workspace.hpp
/// Free-list arena for solver scratch matrices.
///
/// The solve path is factor-once / solve-many: after the first call every
/// scratch matrix a rank ever needs (scan operands, boundary panels,
/// `right_divide` transposes) has a known shape, yet the seed code
/// allocated each one fresh per call. A Workspace keeps released storage
/// in a capacity-keyed free list; `acquire(r, c)` hands back a
/// zero-initialized Matrix built on a pooled buffer (`assign` keeps the
/// vector's capacity, so a fitting buffer means zero heap traffic) and
/// `release` returns storage to the pool. In steady state — repeated
/// solves of the same shape — `stats().slab_allocs` stops moving, the
/// property tests/test_session.cpp asserts.
///
/// One Workspace per simulated rank (core::Session owns a vector of
/// them); instances are NOT thread-safe and must not be shared across
/// pool lanes. Stats feed the `obs` metrics registry via
/// core::Session::export_arena_metrics.

namespace ardbt::la {

class Workspace {
 public:
  /// Monotonic counters; snapshot before/after a phase for per-phase use.
  struct Stats {
    std::uint64_t acquires = 0;     ///< total acquire() calls
    std::uint64_t releases = 0;     ///< total release() calls
    std::uint64_t slab_allocs = 0;  ///< acquires no pooled buffer could satisfy
    std::uint64_t slab_bytes = 0;   ///< cumulative bytes of those fresh allocations
    std::uint64_t high_water_bytes = 0;  ///< peak bytes owned (pooled + on loan)
  };

  Workspace() = default;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Zero-initialized rows x cols matrix, reusing the smallest pooled
  /// buffer that fits (heap-allocation-free when one does).
  Matrix acquire(index_t rows, index_t cols);

  /// Return a matrix's storage to the pool for future acquires.
  void release(Matrix&& m);

  const Stats& stats() const { return stats_; }

  /// Buffers currently sitting in the free list.
  std::size_t pooled_buffers() const { return pool_.size(); }

  /// Drop all pooled buffers (stats are kept; they are monotonic).
  void trim();

 private:
  std::multimap<std::size_t, std::vector<double>> pool_;  // capacity -> storage
  Stats stats_;
  std::uint64_t pooled_bytes_ = 0;  ///< bytes of capacity in pool_
  std::uint64_t loaned_bytes_ = 0;  ///< estimated bytes currently on loan
};

/// Null-tolerant helpers so call sites can thread an optional Workspace
/// without branching: no workspace means a plain zero-initialized Matrix
/// (resp. letting the matrix die), which is exactly the seed behavior.
inline Matrix ws_acquire(Workspace* ws, index_t rows, index_t cols) {
  return ws != nullptr ? ws->acquire(rows, cols) : Matrix(rows, cols);
}
inline void ws_release(Workspace* ws, Matrix&& m) {
  if (ws != nullptr) ws->release(std::move(m));
}

}  // namespace ardbt::la
