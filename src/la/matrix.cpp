#include "src/la/matrix.hpp"

#include <algorithm>
#include <cstring>

namespace ardbt::la {

Matrix to_matrix(ConstMatrixView v) {
  Matrix m(v.rows(), v.cols());
  copy(v, m.view());
  return m;
}

Matrix transposed(ConstMatrixView a) {
  Matrix t(a.cols(), a.rows());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

void copy(ConstMatrixView src, MatrixView dst) {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  if (src.contiguous() && dst.contiguous()) {
    std::memcpy(dst.data(), src.data(),
                static_cast<std::size_t>(src.rows() * src.cols()) * sizeof(double));
    return;
  }
  for (index_t i = 0; i < src.rows(); ++i) {
    std::memcpy(dst.row_ptr(i), src.row_ptr(i),
                static_cast<std::size_t>(src.cols()) * sizeof(double));
  }
}

}  // namespace ardbt::la
