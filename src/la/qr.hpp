#pragma once

#include <vector>

#include "src/la/matrix.hpp"

/// \file qr.hpp
/// Householder QR factorization (LAPACK geqrf/ormqr-style) for m x n
/// matrices with m >= n. Used for least-squares solves, orthonormal bases
/// and as a numerically robust alternative to LU on badly scaled square
/// blocks.

namespace ardbt::la {

/// Packed Householder QR: R in the upper triangle of `qr`, reflector v_k
/// (with implicit leading 1) below the diagonal of column k, scaled by
/// tau[k]: H_k = I - tau_k v_k v_k^T, A = H_0 H_1 ... H_{n-1} R.
struct QrFactors {
  Matrix qr;
  std::vector<double> tau;

  index_t rows() const { return qr.rows(); }
  index_t cols() const { return qr.cols(); }
};

/// Factor a copy of `a` (rows >= cols required).
QrFactors qr_factor(ConstMatrixView a);

/// B := Q^T B (apply the adjoint of Q to `rows()` x k block).
void apply_qt(const QrFactors& f, MatrixView b);

/// B := Q B.
void apply_q(const QrFactors& f, MatrixView b);

/// Least-squares / square solve: returns the `cols()` x k X minimizing
/// ||A X - B||_F (exact solve when A is square and nonsingular). Throws
/// std::runtime_error on an exactly rank-deficient R.
Matrix qr_solve(const QrFactors& f, ConstMatrixView b);

/// Explicit thin Q (rows x cols, orthonormal columns).
Matrix qr_q(const QrFactors& f);

/// Flop count of the factorization (2 n^2 (m - n/3)).
inline double qr_factor_flops(index_t m, index_t n) {
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  return 2.0 * dn * dn * (dm - dn / 3.0);
}

}  // namespace ardbt::la
