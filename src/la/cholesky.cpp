#include "src/la/cholesky.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ardbt::la {

CholeskyFactors cholesky_factor(ConstMatrixView a) {
  assert(a.rows() == a.cols());
  const index_t n = a.rows();
  CholeskyFactors f;
  f.l = Matrix(n, n);
  Matrix& l = f.l;

  for (index_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (index_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0) {
      if (f.info == 0) f.info = j + 1;
      return f;
    }
    const double ljj = std::sqrt(diag);
    f.min_pivot_abs = std::min(f.min_pivot_abs, ljj);
    f.max_pivot_abs = std::max(f.max_pivot_abs, ljj);
    l(j, j) = ljj;
    for (index_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (index_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return f;
}

void cholesky_solve_inplace(const CholeskyFactors& f, MatrixView b) {
  if (!f.ok()) {
    const double growth = f.min_pivot_abs > 0.0 && f.max_pivot_abs > 0.0
                              ? f.max_pivot_abs / f.min_pivot_abs
                              : std::numeric_limits<double>::infinity();
    throw fault::SingularPivotError(fault::ErrorCode::kNonSpdPivot, "la::cholesky_solve", -1,
                                    static_cast<std::int64_t>(f.info - 1), growth);
  }
  const index_t n = f.n();
  assert(b.rows() == n);
  const ConstMatrixView l = f.l.view();

  // Forward: L y = b.
  for (index_t i = 0; i < n; ++i) {
    double* bi = b.row_ptr(i);
    for (index_t k = 0; k < i; ++k) {
      const double lik = l(i, k);
      if (lik == 0.0) continue;
      const double* bk = b.row_ptr(k);
      for (index_t j = 0; j < b.cols(); ++j) bi[j] -= lik * bk[j];
    }
    const double inv = 1.0 / l(i, i);
    for (index_t j = 0; j < b.cols(); ++j) bi[j] *= inv;
  }
  // Backward: L^T x = y.
  for (index_t i = n - 1; i >= 0; --i) {
    double* bi = b.row_ptr(i);
    for (index_t k = i + 1; k < n; ++k) {
      const double lki = l(k, i);  // (L^T)(i, k)
      if (lki == 0.0) continue;
      const double* bk = b.row_ptr(k);
      for (index_t j = 0; j < b.cols(); ++j) bi[j] -= lki * bk[j];
    }
    const double inv = 1.0 / l(i, i);
    for (index_t j = 0; j < b.cols(); ++j) bi[j] *= inv;
  }
}

Matrix cholesky_solve(const CholeskyFactors& f, ConstMatrixView b) {
  Matrix x = to_matrix(b);
  cholesky_solve_inplace(f, x.view());
  return x;
}

}  // namespace ardbt::la
