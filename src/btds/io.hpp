#pragma once

#include <string>

#include "src/btds/block_tridiag.hpp"

/// \file io.hpp
/// Persistence for matrices and block tridiagonal systems:
///
/// * a versioned little-endian binary format ("ARDBT1M\n" for matrices,
///   "ARDBT1T\n" for systems) for exact round trips — problem corpora,
///   solver outputs, regression baselines;
/// * CSV export of matrices for plotting.
///
/// All loaders throw std::runtime_error with a descriptive message on a
/// missing file, bad magic, or truncation.

namespace ardbt::btds {

/// Write a matrix (binary, exact).
void save_matrix(const std::string& path, const Matrix& m);

/// Read a matrix written by save_matrix.
Matrix load_matrix(const std::string& path);

/// Write a block tridiagonal system (binary, exact).
void save_block_tridiag(const std::string& path, const BlockTridiag& t);

/// Read a system written by save_block_tridiag.
BlockTridiag load_block_tridiag(const std::string& path);

/// Write a matrix as CSV (one row per line, '%.17g' so values round-trip).
void save_matrix_csv(const std::string& path, const Matrix& m);

}  // namespace ardbt::btds
