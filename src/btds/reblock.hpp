#pragma once

#include "src/btds/block_tridiag.hpp"

/// \file reblock.hpp
/// Adapter from scalar *banded* systems to block tridiagonal form.
///
/// A scalar system with half-bandwidth q (entries T(i, j) = 0 for
/// |i - j| > q) is exactly a block tridiagonal system with block size
/// M = q: group unknowns into consecutive blocks of q; couplings reach at
/// most one block over. This makes every banded system (pentadiagonal,
/// heptadiagonal, ...) solvable by the library's machinery — the standard
/// route for applications whose stencils are wider than three points.
///
/// The scalar dimension is padded up to a multiple of q with identity
/// rows (x_pad = 0), which leaves the original unknowns untouched.

namespace ardbt::btds {

/// Scalar banded matrix in LAPACK-style band storage: `bands` has
/// 2q+1 rows and `dim` columns; `bands(q + d, j)` holds T(j + d, j) for
/// d in [-q, q] (out-of-range entries ignored).
struct BandedMatrix {
  index_t dim = 0;        ///< scalar dimension
  index_t half_bandwidth = 0;  ///< q
  Matrix bands;           ///< (2q+1) x dim band storage

  BandedMatrix() = default;
  BandedMatrix(index_t n, index_t q)
      : dim(n), half_bandwidth(q), bands(2 * q + 1, n) {}

  /// Entry accessor (returns 0 outside the band).
  double at(index_t i, index_t j) const {
    const index_t d = i - j;
    if (d < -half_bandwidth || d > half_bandwidth) return 0.0;
    return bands(half_bandwidth + d, j);
  }
  /// Mutable accessor; (i, j) must lie inside the band.
  double& at(index_t i, index_t j) {
    const index_t d = i - j;
    assert(d >= -half_bandwidth && d <= half_bandwidth);
    return bands(half_bandwidth + d, j);
  }
};

/// Reblock a banded system into block tridiagonal form with M = q.
/// The result has ceil(dim / q) block rows; padded diagonal entries are 1.
BlockTridiag reblock_banded(const BandedMatrix& banded);

/// Expand a scalar right-hand side (dim x R) to the padded block layout
/// (ceil(dim/q)*q x R, zeros in the pad).
Matrix reblock_rhs(const BandedMatrix& banded, const Matrix& b);

/// Extract the original dim rows from a padded block-layout solution.
Matrix unblock_solution(const BandedMatrix& banded, const Matrix& x_blocked);

}  // namespace ardbt::btds
