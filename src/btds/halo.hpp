#pragma once

#include <optional>

#include "src/btds/distributed.hpp"

/// \file halo.hpp
/// Halo exchange and fully distributed operator application.
///
/// Applying a block tridiagonal operator to a row-distributed vector needs
/// each rank's first/last neighbour block rows — the one-deep "halo". With
/// it, residual computation (and therefore iterative refinement and any
/// outer Krylov loop) runs without any rank touching global state: the
/// genuinely message-passing data path, complementing
/// LocalBlockTridiag / scatter_rows / gather_rows.

namespace ardbt::btds {

/// Tags used by the halo helpers.
namespace halo_tags {
inline constexpr int kUp = 44;    ///< row sent to the next (higher) rank
inline constexpr int kDown = 45;  ///< row sent to the previous rank
}  // namespace halo_tags

/// One-deep halo of a row-distributed (nloc*M) x R matrix: the block row
/// just below `lo` and just above `hi-1`, when they exist.
struct Halo {
  std::optional<Matrix> below;  ///< block row lo-1 (absent on the first rank)
  std::optional<Matrix> above;  ///< block row hi   (absent on the last rank)
};

/// Collective. Exchange boundary block rows of `local` with the
/// neighbouring ranks. `local` holds this rank's rows for `part`.
Halo exchange_halo(mpsim::Comm& comm, const Matrix& local, index_t block_size,
                   const RowPartition& part);

/// Collective. b_local := T x_local for the distributed operator: performs
/// the halo exchange internally. Both slices belong to `part`'s layout.
Matrix apply_distributed(mpsim::Comm& comm, const LocalBlockTridiag& sys, const Matrix& x_local,
                         const RowPartition& part);

/// Collective. || B - T X ||_F / ||B||_F over the distributed slices
/// (allreduce of the squared norms). Every rank returns the same value.
double relative_residual_distributed(mpsim::Comm& comm, const LocalBlockTridiag& sys,
                                     const Matrix& x_local, const Matrix& b_local,
                                     const RowPartition& part);

}  // namespace ardbt::btds
