#include "src/btds/io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ardbt::btds {
namespace {

constexpr char kMagicMatrix[8] = {'A', 'R', 'D', 'B', 'T', '1', 'M', '\n'};
constexpr char kMagicTridiag[8] = {'A', 'R', 'D', 'B', 'T', '1', 'T', '\n'};

void write_exact(std::ofstream& out, const void* data, std::size_t bytes,
                 const std::string& path) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("io: write failed: " + path);
}

void read_exact(std::ifstream& in, void* data, std::size_t bytes, const std::string& path) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes)) {
    throw std::runtime_error("io: truncated file: " + path);
  }
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("io: cannot open for writing: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("io: cannot open for reading: " + path);
  return in;
}

void write_matrix_body(std::ofstream& out, const Matrix& m, const std::string& path) {
  const std::int64_t dims[2] = {m.rows(), m.cols()};
  write_exact(out, dims, sizeof(dims), path);
  write_exact(out, m.data().data(), static_cast<std::size_t>(m.size()) * sizeof(double), path);
}

Matrix read_matrix_body(std::ifstream& in, const std::string& path) {
  std::int64_t dims[2];
  read_exact(in, dims, sizeof(dims), path);
  if (dims[0] < 0 || dims[1] < 0) throw std::runtime_error("io: corrupt dimensions: " + path);
  Matrix m(dims[0], dims[1]);
  read_exact(in, m.data().data(), static_cast<std::size_t>(m.size()) * sizeof(double), path);
  return m;
}

void check_magic(std::ifstream& in, const char (&magic)[8], const std::string& path) {
  char got[8];
  read_exact(in, got, sizeof(got), path);
  if (std::memcmp(got, magic, sizeof(got)) != 0) {
    throw std::runtime_error("io: bad magic (wrong format?): " + path);
  }
}

}  // namespace

void save_matrix(const std::string& path, const Matrix& m) {
  std::ofstream out = open_out(path);
  write_exact(out, kMagicMatrix, sizeof(kMagicMatrix), path);
  write_matrix_body(out, m, path);
}

Matrix load_matrix(const std::string& path) {
  std::ifstream in = open_in(path);
  check_magic(in, kMagicMatrix, path);
  return read_matrix_body(in, path);
}

void save_block_tridiag(const std::string& path, const BlockTridiag& t) {
  std::ofstream out = open_out(path);
  write_exact(out, kMagicTridiag, sizeof(kMagicTridiag), path);
  const std::int64_t shape[2] = {t.num_blocks(), t.block_size()};
  write_exact(out, shape, sizeof(shape), path);
  for (index_t i = 0; i < t.num_blocks(); ++i) {
    if (i > 0) write_matrix_body(out, t.lower(i), path);
    write_matrix_body(out, t.diag(i), path);
    if (i + 1 < t.num_blocks()) write_matrix_body(out, t.upper(i), path);
  }
}

BlockTridiag load_block_tridiag(const std::string& path) {
  std::ifstream in = open_in(path);
  check_magic(in, kMagicTridiag, path);
  std::int64_t shape[2];
  read_exact(in, shape, sizeof(shape), path);
  if (shape[0] < 1 || shape[1] < 1) throw std::runtime_error("io: corrupt shape: " + path);
  BlockTridiag t(shape[0], shape[1]);
  for (index_t i = 0; i < t.num_blocks(); ++i) {
    if (i > 0) t.lower(i) = read_matrix_body(in, path);
    t.diag(i) = read_matrix_body(in, path);
    if (i + 1 < t.num_blocks()) t.upper(i) = read_matrix_body(in, path);
  }
  return t;
}

void save_matrix_csv(const std::string& path, const Matrix& m) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) throw std::runtime_error("io: cannot open for writing: " + path);
  for (index_t i = 0; i < m.rows(); ++i) {
    for (index_t j = 0; j < m.cols(); ++j) {
      std::fprintf(out, j + 1 < m.cols() ? "%.17g," : "%.17g\n", m(i, j));
    }
  }
  if (std::fclose(out) != 0) throw std::runtime_error("io: close failed: " + path);
}

}  // namespace ardbt::btds
