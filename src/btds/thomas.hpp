#pragma once

#include <memory>
#include <vector>

#include "src/btds/block_tridiag.hpp"
#include "src/fault/status.hpp"
#include "src/la/cholesky.hpp"
#include "src/la/lu.hpp"

namespace ardbt::par {
class Pool;
}
namespace ardbt::la {
class Workspace;
}

/// \file thomas.hpp
/// Sequential block Thomas algorithm (block LU without inter-block
/// pivoting) — the serial baseline of experiment F5 and the accuracy
/// reference of T3. Split into a factor-once object so its multi-RHS
/// amortization matches the accelerated solver's (factor O(N M^3), each
/// solve O(N M^2 R)).
///
/// Requires the pivot blocks D'_i = D_i - A_i D'_{i-1}^{-1} C_{i-1} to be
/// invertible, which holds for block-diagonally-dominant systems.

namespace ardbt::btds {

/// How the pivot blocks D'_i are factored.
enum class PivotKind {
  kLu,        ///< LU with partial pivoting (default; any invertible pivots)
  kCholesky,  ///< Cholesky — pivots must be SPD (true for SPD systems,
              ///< whose block-LU pivots are Schur complements); ~2x less
              ///< pivot-factor work and unconditionally stable
};

/// Factor-once / solve-many block Thomas factorization.
class ThomasFactorization {
 public:
  /// Factor the system. Keeps a reference-free copy of the off-diagonal
  /// blocks it needs. Throws fault::SingularPivotError (carrying the block
  /// row, scalar pivot index, and pivot growth) on a singular pivot block
  /// (kLu) or a non-SPD pivot block (kCholesky).
  static ThomasFactorization factor(const BlockTridiag& t, PivotKind pivot = PivotKind::kLu);

  /// Pivot extremes accumulated over every factored pivot block — the
  /// cheap breakdown monitor read by the solve drivers.
  const fault::PivotDiagnostics& pivot_diagnostics() const { return diag_; }

  /// Solve for all columns of B; returns X with the same shape.
  ///
  /// A non-null `pool` splits the RHS columns into panels, one per pool
  /// lane, and runs both sweeps independently per panel (the sweeps'
  /// recurrences run along block rows, so columns never couple). Each
  /// column sees the exact serial operation order — the result is
  /// bit-identical for any pool size.
  ///
  /// A non-null `ws` sources the result matrix from the workspace arena
  /// (the caller owns it and may release it back); results are
  /// bit-identical with or without one.
  Matrix solve(const Matrix& b, par::Pool* pool = nullptr, la::Workspace* ws = nullptr) const;

  index_t num_blocks() const { return n_; }
  index_t block_size() const { return m_; }

  /// Flop counts for the cost model / T1. The factor count depends on the
  /// pivot kind (Cholesky halves the pivot-factorization share).
  static double factor_flops(index_t n, index_t m, PivotKind pivot = PivotKind::kLu);
  static double solve_flops(index_t n, index_t m, index_t r);

  /// Bytes of factored state (pivot LU, couplings, sub-diagonal copies).
  std::size_t storage_bytes() const;

 private:
  /// D'_i^{-1} applied to a block, dispatching on the pivot kind.
  void pivot_solve(index_t i, la::MatrixView b) const;

  /// Both sweeps on one column panel of x (pre-initialized with b's
  /// columns). Strided views keep this zero-copy. For dispatchable block
  /// sizes with LU pivots, the fixed-M microkernel sweep below runs
  /// instead — one M-dispatch per panel rather than one per block.
  void solve_panel(la::MatrixView x) const;
  template <index_t M>
  void solve_panel_fixed(la::MatrixView x) const;

  /// Slab-resident LU factor sweep (see the member comments below): the
  /// whole factorization runs in three contiguous slabs with one
  /// M-dispatch and zero per-block allocations.
  template <index_t M>
  void factor_slab(const BlockTridiag& t);

  /// Per-block views that read whichever representation this
  /// factorization was built with.
  la::ConstMatrixView lower_view(index_t i) const;
  la::ConstMatrixView g_view(index_t i) const;
  la::ConstMatrixView pivot_lu_view(index_t i) const;
  const la::index_t* pivot_piv(index_t i) const;

  index_t n_ = 0;
  index_t m_ = 0;
  PivotKind pivot_ = PivotKind::kLu;
  bool slab_ = false;  ///< true when the slab representation is in use
  fault::PivotDiagnostics diag_;
  // Per-block representation (kCholesky always; kLu when the smallblock
  // layer is disabled or M is not dispatchable at factor time).
  std::vector<la::LuFactors> pivot_lu_;          // LU of D'_i (kLu)
  std::vector<la::CholeskyFactors> pivot_chol_;  // Cholesky of D'_i (kCholesky)
  std::vector<Matrix> g_;                        // G_i = D'_i^{-1} C_i, i < N-1
  std::vector<Matrix> lower_;                    // copies of A_i, i >= 1
  // Slab representation (kLu with a dispatchable M and the smallblock
  // layer enabled): the same blocks packed into one contiguous
  // uninitialized allocation (every byte is overwritten by the factor
  // sweep, so zero-filling Matrix storage would be pure overhead at
  // small M) — the sweep runs with zero per-block allocations and the
  // solve sweeps stream sequential memory. Layout: N pivot LUs, then
  // N-1 G_i, then N-1 A_i copies, each an M x M row-major block.
  // Numerical content is bit-identical to the per-block form.
  std::unique_ptr<double[]> slab_store_;  // (3N-2) * M * M doubles
  std::unique_ptr<la::index_t[]> piv_;    // N * M pivot indices
  const double* lu_base(index_t i) const { return slab_store_.get() + i * m_ * m_; }
  const double* g_base(index_t i) const { return lu_base(n_ + i); }
  const double* lower_base(index_t i) const { return g_base(n_ - 1 + i); }
};

/// One-shot convenience: factor + solve.
Matrix thomas_solve(const BlockTridiag& t, const Matrix& b);

}  // namespace ardbt::btds
