#include "src/btds/cyclic_reduction.hpp"

#include "src/fault/status.hpp"
#include <cassert>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/la/gemm.hpp"
#include "src/la/lu.hpp"

namespace ardbt::btds {
namespace {

/// One level of the reduction, expressed on plain block arrays so levels
/// can reuse the same code. `lower[0]` and `upper[n-1]` are unused.
struct Level {
  std::vector<Matrix> lower, diag, upper, rhs;

  index_t n() const { return static_cast<index_t>(diag.size()); }
};

std::vector<Matrix> solve_level(Level lv) {
  const index_t n = lv.n();
  if (n == 1) {
    la::LuFactors lu = la::lu_factor(std::move(lv.diag[0]));
    if (!lu.ok()) {
      throw fault::SingularPivotError(fault::ErrorCode::kSingularPivot,
                                      "btds::cyclic_reduction", -1,
                                      static_cast<std::int64_t>(lu.info - 1), lu.growth);
    }
    la::lu_solve_inplace(lu, lv.rhs[0].view());
    return {std::move(lv.rhs[0])};
  }

  const index_t n_odd = n / 2;
  const auto u = [](index_t i) { return static_cast<std::size_t>(i); };

  // Eliminate even unknowns: for each even e precompute
  //   Hm_e = D_e^{-1} A_e, Hp_e = D_e^{-1} C_e, h_e = D_e^{-1} b_e.
  const index_t n_even = n - n_odd;
  std::vector<Matrix> hm(u(n_even)), hp(u(n_even)), h(u(n_even));
  for (index_t j = 0; j < n_even; ++j) {
    const index_t e = 2 * j;
    la::LuFactors lu = la::lu_factor(std::move(lv.diag[u(e)]));
    if (!lu.ok()) {
      throw fault::SingularPivotError(fault::ErrorCode::kSingularPivot,
                                      "btds::cyclic_reduction", -1,
                                      static_cast<std::int64_t>(lu.info - 1), lu.growth);
    }
    if (e > 0) hm[u(j)] = la::lu_solve(lu, lv.lower[u(e)].view());
    if (e + 1 < n) hp[u(j)] = la::lu_solve(lu, lv.upper[u(e)].view());
    la::lu_solve_inplace(lu, lv.rhs[u(e)].view());
    h[u(j)] = std::move(lv.rhs[u(e)]);
  }

  // Build the half-size system on the odd unknowns.
  Level next;
  next.lower.resize(u(n_odd));
  next.diag.resize(u(n_odd));
  next.upper.resize(u(n_odd));
  next.rhs.resize(u(n_odd));
  for (index_t j = 0; j < n_odd; ++j) {
    const index_t o = 2 * j + 1;
    const index_t jlo = j;      // even neighbor o-1 == 2*j
    const index_t jhi = j + 1;  // even neighbor o+1 == 2*(j+1), if it exists
    const bool has_hi = o + 1 < n;

    Matrix d = std::move(lv.diag[u(o)]);
    la::gemm(-1.0, lv.lower[u(o)].view(), hp[u(jlo)].view(), 1.0, d.view());
    Matrix b = std::move(lv.rhs[u(o)]);
    la::gemm(-1.0, lv.lower[u(o)].view(), h[u(jlo)].view(), 1.0, b.view());
    if (has_hi) {
      la::gemm(-1.0, lv.upper[u(o)].view(), hm[u(jhi)].view(), 1.0, d.view());
      la::gemm(-1.0, lv.upper[u(o)].view(), h[u(jhi)].view(), 1.0, b.view());
    }
    next.diag[u(j)] = std::move(d);
    next.rhs[u(j)] = std::move(b);

    if (j > 0) {
      // A'_j = -A_o * Hm_{o-1}
      Matrix a(hm[u(jlo)].rows(), hm[u(jlo)].cols());
      la::gemm(-1.0, lv.lower[u(o)].view(), hm[u(jlo)].view(), 0.0, a.view());
      next.lower[u(j)] = std::move(a);
    }
    if (has_hi && o + 1 < n - 1) {
      // C'_j = -C_o * Hp_{o+1}
      Matrix c(hp[u(jhi)].rows(), hp[u(jhi)].cols());
      la::gemm(-1.0, lv.upper[u(o)].view(), hp[u(jhi)].view(), 0.0, c.view());
      next.upper[u(j)] = std::move(c);
    }
  }

  const std::vector<Matrix> x_odd = solve_level(std::move(next));

  // Back-substitute evens: x_e = h_e - Hm_e x_{e-1} - Hp_e x_{e+1}.
  std::vector<Matrix> x(u(n));
  for (index_t j = 0; j < n_odd; ++j) x[u(2 * j + 1)] = x_odd[u(j)];
  for (index_t j = 0; j < n_even; ++j) {
    const index_t e = 2 * j;
    Matrix xe = std::move(h[u(j)]);
    if (e > 0) la::gemm(-1.0, hm[u(j)].view(), x[u(e - 1)].view(), 1.0, xe.view());
    if (e + 1 < n) la::gemm(-1.0, hp[u(j)].view(), x[u(e + 1)].view(), 1.0, xe.view());
    x[u(e)] = std::move(xe);
  }
  return x;
}

}  // namespace

Matrix cyclic_reduction_solve(const BlockTridiag& t, const Matrix& b) {
  const index_t n = t.num_blocks();
  const index_t m = t.block_size();
  assert(b.rows() == t.dim());

  Level lv;
  lv.lower.resize(static_cast<std::size_t>(n));
  lv.diag.resize(static_cast<std::size_t>(n));
  lv.upper.resize(static_cast<std::size_t>(n));
  lv.rhs.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    lv.diag[static_cast<std::size_t>(i)] = t.diag(i);
    if (i > 0) lv.lower[static_cast<std::size_t>(i)] = t.lower(i);
    if (i + 1 < n) lv.upper[static_cast<std::size_t>(i)] = t.upper(i);
    lv.rhs[static_cast<std::size_t>(i)] = la::to_matrix(block_row(b, i, m));
  }

  const std::vector<Matrix> blocks = solve_level(std::move(lv));
  Matrix x(b.rows(), b.cols());
  for (index_t i = 0; i < n; ++i) {
    la::copy(blocks[static_cast<std::size_t>(i)].view(), block_row(x, i, m));
  }
  return x;
}

double cyclic_reduction_flops(index_t num_blocks, index_t block_size, index_t num_rhs) {
  // Each level processes ~n/2^l rows, each doing one LU (2/3 m^3), two
  // m-RHS triangular solve pairs (2 m^3 each), ~4 m x m gemms (2 m^3 each)
  // and ~4 m x r gemms; the level sum is geometric with ratio 1/2.
  const double dn = static_cast<double>(num_blocks);
  const double dm = static_cast<double>(block_size);
  const double dr = static_cast<double>(num_rhs);
  return 2.0 * dn * ((2.0 / 3.0 + 2.0 * 2.0 + 4.0 * 2.0) * dm * dm * dm + 10.0 * dm * dm * dr);
}

}  // namespace ardbt::btds
