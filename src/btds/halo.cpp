#include "src/btds/halo.hpp"

#include <cmath>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/mpsim/collectives.hpp"

namespace ardbt::btds {

Halo exchange_halo(mpsim::Comm& comm, const Matrix& local, index_t block_size,
                   const RowPartition& part) {
  const int rank = comm.rank();
  const index_t m = block_size;
  const index_t nloc = part.count(rank);
  const index_t r = local.cols();
  assert(local.rows() == nloc * m);

  // Eager sends first (no deadlock), then receives.
  if (rank + 1 < comm.size()) {
    const Matrix last = la::to_matrix(local.block((nloc - 1) * m, 0, m, r));
    comm.send(rank + 1, halo_tags::kUp, std::span<const double>(last.data()));
  }
  if (rank > 0) {
    const Matrix first = la::to_matrix(local.block(0, 0, m, r));
    comm.send(rank - 1, halo_tags::kDown, std::span<const double>(first.data()));
  }

  Halo halo;
  if (rank > 0) {
    Matrix below(m, r);
    comm.recv_into(rank - 1, halo_tags::kUp, std::span<double>(below.data()));
    halo.below = std::move(below);
  }
  if (rank + 1 < comm.size()) {
    Matrix above(m, r);
    comm.recv_into(rank + 1, halo_tags::kDown, std::span<double>(above.data()));
    halo.above = std::move(above);
  }
  return halo;
}

Matrix apply_distributed(mpsim::Comm& comm, const LocalBlockTridiag& sys, const Matrix& x_local,
                         const RowPartition& part) {
  const index_t m = sys.block_size();
  const index_t lo = sys.lo();
  const index_t hi = sys.hi();
  const index_t nloc = hi - lo;
  const index_t r = x_local.cols();
  assert(x_local.rows() == nloc * m);

  const Halo halo = exchange_halo(comm, x_local, m, part);
  Matrix out(nloc * m, r);
  for (index_t i = lo; i < hi; ++i) {
    const index_t k = i - lo;
    la::MatrixView oi = out.block(k * m, 0, m, r);
    la::gemm(1.0, sys.diag(i).view(), x_local.block(k * m, 0, m, r), 0.0, oi);
    comm.charge_flops(la::gemm_flops(m, r, m));
    if (i > 0) {
      const la::ConstMatrixView left =
          (k > 0) ? x_local.block((k - 1) * m, 0, m, r) : halo.below->view();
      la::gemm(1.0, sys.lower(i).view(), left, 1.0, oi);
      comm.charge_flops(la::gemm_flops(m, r, m));
    }
    if (i + 1 < sys.num_blocks()) {
      const la::ConstMatrixView right =
          (k + 1 < nloc) ? x_local.block((k + 1) * m, 0, m, r) : halo.above->view();
      la::gemm(1.0, sys.upper(i).view(), right, 1.0, oi);
      comm.charge_flops(la::gemm_flops(m, r, m));
    }
  }
  return out;
}

double relative_residual_distributed(mpsim::Comm& comm, const LocalBlockTridiag& sys,
                                     const Matrix& x_local, const Matrix& b_local,
                                     const RowPartition& part) {
  Matrix r_local = apply_distributed(comm, sys, x_local, part);
  la::matrix_scal(-1.0, r_local.view());
  la::matrix_axpy(1.0, b_local.view(), r_local.view());

  double sums[2] = {0.0, 0.0};
  for (index_t i = 0; i < r_local.rows(); ++i) {
    for (double v : r_local.view().row(i)) sums[0] += v * v;
    for (double v : b_local.view().row(i)) sums[1] += v * v;
  }
  mpsim::allreduce_sum(comm, sums);
  const double bn = std::sqrt(sums[1]);
  const double rn = std::sqrt(sums[0]);
  return bn > 0.0 ? rn / bn : rn;
}

}  // namespace ardbt::btds
