#pragma once

#include <vector>

#include "src/btds/block_tridiag.hpp"
#include "src/fault/status.hpp"

/// \file banded_lu.hpp
/// Scalar banded LU with partial pivoting (LAPACK gbtrf/gbtrs contract) on
/// the assembled block tridiagonal matrix — the exact fallback rung of the
/// graceful-degradation ladder (docs/ROBUSTNESS.md). Block Thomas, ARD,
/// RD and PCR all pivot only *within* diagonal blocks, so a singular block
/// pivot breaks them even when the global matrix is perfectly invertible;
/// row pivoting across the full band has no such blind spot. The price is
/// seriality: O(N M) pivot steps of O(M^2) work each, no rank parallelism
/// — which is why it is a fallback, not the default.

namespace ardbt::btds {

/// Factor-once / solve-many banded LU of the assembled (N*M) x (N*M)
/// matrix with bandwidths kl = ku = 2M - 1.
class BandedLuFactorization {
 public:
  /// Assemble the band storage and factor with partial pivoting. Throws
  /// fault::SingularPivotError only if an entire pivot column is zero —
  /// i.e. the global matrix itself is singular.
  static BandedLuFactorization factor(const BlockTridiag& t);

  /// Solve for all columns of B; returns X with the same shape.
  Matrix solve(const Matrix& b) const;

  /// Pivot extremes over all N*M scalar elimination steps.
  const fault::PivotDiagnostics& pivot_diagnostics() const { return diag_; }

  index_t dim() const { return nn_; }
  index_t block_size() const { return m_; }

  /// Flop counts for the cost model (band elimination / band solves).
  static double factor_flops(index_t n, index_t m);
  static double solve_flops(index_t n, index_t m, index_t r);

  /// Bytes of factored band storage.
  std::size_t storage_bytes() const;

 private:
  index_t nn_ = 0;  ///< scalar dimension N*M
  index_t m_ = 0;
  index_t kl_ = 0;  ///< sub-diagonal bandwidth 2M - 1
  index_t ku_ = 0;  ///< super-diagonal bandwidth 2M - 1
  /// Row-window band storage: entry (i, j) lives at ab_(i, j - i + kl_).
  /// Width 2*kl_ + ku_ + 1 leaves room for the fill row swaps push into U.
  Matrix ab_;
  std::vector<index_t> piv_;  ///< pivot row chosen at each step
  fault::PivotDiagnostics diag_;
};

/// One-shot convenience: assemble + factor + solve.
Matrix banded_lu_solve(const BlockTridiag& t, const Matrix& b);

}  // namespace ardbt::btds
