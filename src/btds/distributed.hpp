#pragma once

#include <optional>
#include <vector>

#include "src/btds/block_tridiag.hpp"
#include "src/btds/partition.hpp"
#include "src/mpsim/comm.hpp"

/// \file distributed.hpp
/// True distributed-memory storage of a block tridiagonal system: each
/// rank owns only its partition's block rows. The solvers accept either a
/// shared global BlockTridiag (convenient inside mpsim, where ranks share
/// an address space) or a LocalBlockTridiag built here — the form a real
/// MPI deployment would use. Construction paths:
///
///  * assemble locally (`LocalBlockTridiag(part, rank)` + fill) — the
///    scalable path: no rank ever holds the global matrix;
///  * `scatter(...)` — a root rank holds the global system and ships each
///    rank its slice (one message per rank);
///
/// plus `scatter_rows` / `gather_rows` for right-hand-side and solution
/// matrices with the same layout.

namespace ardbt::btds {

/// Tags used by the distribution helpers.
namespace dist_tags {
inline constexpr int kScatterSys = 40;
inline constexpr int kScatterRows = 41;
}  // namespace dist_tags

/// This rank's block rows of a distributed block tridiagonal matrix.
/// Accessors use GLOBAL block-row indices and assert ownership, so solver
/// code is identical for local and shared storage.
class LocalBlockTridiag {
 public:
  LocalBlockTridiag() = default;

  /// Zero-initialized local slice for rows [part.begin(rank),
  /// part.end(rank)).
  LocalBlockTridiag(index_t num_blocks_global, index_t block_size, const RowPartition& part,
                    int rank);

  /// Root-driven distribution: `global` must be non-null on `root` (and is
  /// ignored elsewhere); every rank receives its slice. Collective.
  static LocalBlockTridiag scatter(mpsim::Comm& comm, const BlockTridiag* global,
                                   index_t num_blocks_global, index_t block_size,
                                   const RowPartition& part, int root = 0);

  /// Copy this rank's slice out of a shared global system (no messages).
  static LocalBlockTridiag from_shared(const BlockTridiag& global, const RowPartition& part,
                                       int rank);

  index_t num_blocks() const { return n_global_; }
  index_t block_size() const { return m_; }
  index_t lo() const { return lo_; }
  index_t hi() const { return hi_; }
  index_t local_rows() const { return hi_ - lo_; }

  /// Blocks by GLOBAL block-row index; `i` must be owned by this rank.
  /// lower(i) requires i >= 1, upper(i) requires i < N-1 (as in
  /// BlockTridiag).
  Matrix& lower(index_t i);
  const Matrix& lower(index_t i) const;
  Matrix& diag(index_t i);
  const Matrix& diag(index_t i) const;
  Matrix& upper(index_t i);
  const Matrix& upper(index_t i) const;

 private:
  std::size_t local_of(index_t i) const {
    assert(i >= lo_ && i < hi_);
    return static_cast<std::size_t>(i - lo_);
  }

  index_t n_global_ = 0;
  index_t m_ = 0;
  index_t lo_ = 0;
  index_t hi_ = 0;
  std::vector<Matrix> lower_, diag_, upper_;
};

/// Scatter the block rows of a global (N*M) x R matrix: returns this
/// rank's (nloc*M) x R slice. `global` significant at root only.
/// Collective; R is broadcast from the root's matrix.
Matrix scatter_rows(mpsim::Comm& comm, const Matrix* global, index_t block_size,
                    const RowPartition& part, int root = 0);

/// Gather per-rank (nloc*M) x R slices into the root's global matrix
/// (resized there); other ranks' `global` is untouched. Collective.
void gather_rows(mpsim::Comm& comm, const Matrix& local, Matrix* global, index_t block_size,
                 const RowPartition& part, int root = 0);

}  // namespace ardbt::btds
