#pragma once

#include <cassert>

#include "src/la/types.hpp"

/// \file partition.hpp
/// Contiguous row-block distribution of N block rows over P ranks, the
/// layout both distributed solvers use. Remainder rows go to the lowest
/// ranks so counts differ by at most one.

namespace ardbt::btds {

/// Maps block-row indices to ranks and back.
class RowPartition {
 public:
  RowPartition(la::index_t num_blocks, int nranks)
      : n_(num_blocks), p_(static_cast<la::index_t>(nranks)) {
    assert(num_blocks >= 0 && nranks >= 1);
  }

  la::index_t num_blocks() const { return n_; }
  int nranks() const { return static_cast<int>(p_); }

  /// First block row owned by `rank`.
  la::index_t begin(int rank) const {
    const la::index_t r = rank;
    const la::index_t base = n_ / p_;
    const la::index_t rem = n_ % p_;
    return r * base + (r < rem ? r : rem);
  }

  /// One past the last block row owned by `rank`.
  la::index_t end(int rank) const { return begin(rank + 1); }

  /// Number of block rows owned by `rank`.
  la::index_t count(int rank) const { return end(rank) - begin(rank); }

  /// Rank owning block row `i`.
  int owner(la::index_t i) const {
    assert(i >= 0 && i < n_);
    const la::index_t base = n_ / p_;
    const la::index_t rem = n_ % p_;
    const la::index_t big = (base + 1) * rem;  // rows held by the first `rem` ranks
    if (i < big) return static_cast<int>(i / (base + 1));
    return static_cast<int>(rem + (i - big) / base);
  }

 private:
  la::index_t n_ = 0;
  la::index_t p_ = 1;
};

}  // namespace ardbt::btds
