#pragma once

#include "src/btds/block_tridiag.hpp"

/// \file cyclic_reduction.hpp
/// Sequential block cyclic reduction (BCR) — the second baseline solver
/// (experiments F5, T3). Eliminates even-indexed block unknowns level by
/// level (log2 N levels), recursing on the half-size system of odd
/// unknowns, then back-substitutes. Like block Thomas it needs invertible
/// diagonal blocks at every level, which block diagonal dominance
/// guarantees.

namespace ardbt::btds {

/// Solve T X = B by block cyclic reduction. X has the shape of B.
/// Throws std::runtime_error on a singular diagonal block at any level.
Matrix cyclic_reduction_solve(const BlockTridiag& t, const Matrix& b);

/// Approximate flop count (factor + solve; leading order).
double cyclic_reduction_flops(index_t num_blocks, index_t block_size, index_t num_rhs);

}  // namespace ardbt::btds
