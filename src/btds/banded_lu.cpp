#include "src/btds/banded_lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace ardbt::btds {

BandedLuFactorization BandedLuFactorization::factor(const BlockTridiag& t) {
  const index_t n = t.num_blocks();
  const index_t m = t.block_size();
  BandedLuFactorization f;
  f.nn_ = n * m;
  f.m_ = m;
  f.kl_ = 2 * m - 1;
  f.ku_ = 2 * m - 1;
  const index_t kl = f.kl_;
  const index_t ku = f.ku_;
  const index_t nn = f.nn_;
  f.ab_ = Matrix(nn, 2 * kl + ku + 1);
  f.piv_.resize(static_cast<std::size_t>(nn));
  Matrix& ab = f.ab_;

  // Assemble: scalar row i = I*m + r of block row I touches the columns of
  // blocks I-1, I, I+1.
  double a_max = 0.0;
  for (index_t bi = 0; bi < n; ++bi) {
    for (index_t r = 0; r < m; ++r) {
      const index_t i = bi * m + r;
      const auto put = [&](const Matrix& blk, index_t bj) {
        for (index_t c = 0; c < m; ++c) {
          const index_t j = bj * m + c;
          const double v = blk(r, c);
          ab(i, j - i + kl) = v;
          a_max = std::max(a_max, std::abs(v));
        }
      };
      if (bi > 0) put(t.lower(bi), bi - 1);
      put(t.diag(bi), bi);
      if (bi + 1 < n) put(t.upper(bi), bi + 1);
    }
  }

  // Elimination with partial pivoting; multipliers overwrite the
  // sub-diagonal window entries and stay unswapped (gbtrf convention), so
  // the solve applies the swaps interleaved with the forward sweep.
  double u_max = 0.0;
  for (index_t k = 0; k < nn; ++k) {
    const index_t ilast = std::min(nn - 1, k + kl);
    index_t p = k;
    double pmag = std::abs(ab(k, kl));
    for (index_t i = k + 1; i <= ilast; ++i) {
      const double mag = std::abs(ab(i, k - i + kl));
      if (mag > pmag) {
        pmag = mag;
        p = i;
      }
    }
    if (pmag == 0.0) {
      f.diag_.singular_info = static_cast<int>(k + 1);
      throw fault::SingularPivotError(fault::ErrorCode::kSingularPivot, "btds::banded_lu_factor",
                                      k / m, k, f.diag_.growth());
    }
    f.piv_[static_cast<std::size_t>(k)] = p;
    const index_t jlast = std::min(nn - 1, k + ku + kl);
    if (p != k) {
      for (index_t j = k; j <= jlast; ++j) {
        std::swap(ab(k, j - k + kl), ab(p, j - p + kl));
      }
    }
    f.diag_.observe(pmag, pmag, k / m);
    const double pivot = ab(k, kl);
    for (index_t j = k; j <= jlast; ++j) u_max = std::max(u_max, std::abs(ab(k, j - k + kl)));
    for (index_t i = k + 1; i <= ilast; ++i) {
      const double l = ab(i, k - i + kl) / pivot;
      ab(i, k - i + kl) = l;
      if (l == 0.0) continue;
      for (index_t j = k + 1; j <= jlast; ++j) {
        ab(i, j - i + kl) -= l * ab(k, j - k + kl);
      }
    }
  }
  if (a_max > 0.0) {
    // Element growth ||U||_max / ||A||_max — the classic stability proxy.
    f.diag_.max_pivot_abs = std::max(f.diag_.max_pivot_abs, u_max);
  }
  return f;
}

Matrix BandedLuFactorization::solve(const Matrix& b) const {
  assert(b.rows() == nn_);
  const index_t nn = nn_;
  const index_t kl = kl_;
  const index_t ku = ku_;
  const index_t w = b.cols();
  Matrix x = b;

  // Forward: apply the row swaps and L in elimination order.
  for (index_t k = 0; k < nn; ++k) {
    const index_t p = piv_[static_cast<std::size_t>(k)];
    if (p != k) {
      for (index_t c = 0; c < w; ++c) std::swap(x(k, c), x(p, c));
    }
    const index_t ilast = std::min(nn - 1, k + kl);
    for (index_t i = k + 1; i <= ilast; ++i) {
      const double l = ab_(i, k - i + kl);
      if (l == 0.0) continue;
      for (index_t c = 0; c < w; ++c) x(i, c) -= l * x(k, c);
    }
  }
  // Backward: U x = y.
  for (index_t k = nn - 1; k >= 0; --k) {
    const double inv = 1.0 / ab_(k, kl);
    for (index_t c = 0; c < w; ++c) x(k, c) *= inv;
    const index_t ifirst = std::max<index_t>(0, k - ku - kl);
    for (index_t i = ifirst; i < k; ++i) {
      const double u = ab_(i, k - i + kl);
      if (u == 0.0) continue;
      for (index_t c = 0; c < w; ++c) x(i, c) -= u * x(k, c);
    }
  }
  return x;
}

double BandedLuFactorization::factor_flops(index_t n, index_t m) {
  // Per step: kl multiplier rows, each updating ku + kl columns.
  const double nn = static_cast<double>(n) * static_cast<double>(m);
  const double kl = 2.0 * static_cast<double>(m) - 1.0;
  return nn * 2.0 * kl * (2.0 * kl);
}

double BandedLuFactorization::solve_flops(index_t n, index_t m, index_t r) {
  // Per step and RHS: kl forward updates plus ku + kl backward updates.
  const double nn = static_cast<double>(n) * static_cast<double>(m);
  const double kl = 2.0 * static_cast<double>(m) - 1.0;
  return nn * 2.0 * (3.0 * kl) * static_cast<double>(r);
}

std::size_t BandedLuFactorization::storage_bytes() const {
  return static_cast<std::size_t>(ab_.size()) * sizeof(double) +
         piv_.size() * sizeof(index_t);
}

Matrix banded_lu_solve(const BlockTridiag& t, const Matrix& b) {
  return BandedLuFactorization::factor(t).solve(b);
}

}  // namespace ardbt::btds
