#include "src/btds/generators.hpp"

#include <cmath>

#include "src/la/random.hpp"

namespace ardbt::btds {
namespace {

/// Boost the diagonal of D_i so each scalar row of [A_i | D_i | C_i] is
/// strictly dominated by its diagonal entry times `dominance`.
void make_block_row_dominant(BlockTridiag& t, index_t i, double dominance) {
  const index_t m = t.block_size();
  Matrix& d = t.diag(i);
  for (index_t r = 0; r < m; ++r) {
    double off = 0.0;
    if (i > 0) {
      for (index_t c = 0; c < m; ++c) off += std::abs(t.lower(i)(r, c));
    }
    if (i + 1 < t.num_blocks()) {
      for (index_t c = 0; c < m; ++c) off += std::abs(t.upper(i)(r, c));
    }
    for (index_t c = 0; c < m; ++c) {
      if (c != r) off += std::abs(d(r, c));
    }
    const double sign = d(r, r) >= 0.0 ? 1.0 : -1.0;
    d(r, r) = sign * (dominance * off + 1.0);
  }
}

BlockTridiag random_blocks(index_t n, index_t m, std::uint64_t seed, double dominance) {
  BlockTridiag t(n, m);
  for (index_t i = 0; i < n; ++i) {
    la::Rng rng = la::make_rng(seed, static_cast<std::uint64_t>(i));
    if (i > 0) la::fill_uniform(t.lower(i).view(), rng);
    la::fill_uniform(t.diag(i).view(), rng);
    // Super-diagonal blocks must be invertible for recursive doubling;
    // orthogonal-ish blocks keep their condition number near 1.
    if (i + 1 < n) t.upper(i) = la::random_orthogonalish(m, rng);
    make_block_row_dominant(t, i, dominance);
  }
  return t;
}

BlockTridiag poisson2d(index_t n, index_t m, double drift) {
  BlockTridiag t(n, m);
  for (index_t i = 0; i < n; ++i) {
    Matrix& d = t.diag(i);
    for (index_t r = 0; r < m; ++r) {
      d(r, r) = 4.0;
      if (r > 0) d(r, r - 1) = -1.0 - drift;
      if (r + 1 < m) d(r, r + 1) = -1.0 + drift;
    }
    if (i > 0) {
      Matrix& a = t.lower(i);
      for (index_t r = 0; r < m; ++r) a(r, r) = -1.0 - drift;
    }
    if (i + 1 < n) {
      Matrix& c = t.upper(i);
      for (index_t r = 0; r < m; ++r) c(r, r) = -1.0 + drift;
    }
  }
  return t;
}

BlockTridiag toeplitz(index_t n, index_t m, std::uint64_t seed) {
  la::Rng rng = la::make_rng(seed, 0);
  Matrix a = la::random_uniform(m, m, rng, -0.4, 0.4);
  Matrix c = la::random_orthogonalish(m, rng);
  for (index_t r = 0; r < m; ++r) {
    for (index_t cidx = 0; cidx < m; ++cidx) c(r, cidx) *= 0.4;
  }
  Matrix d = la::random_diag_dominant(m, rng, /*dominance=*/1.0);
  // Extra diagonal boost covering the off-diagonal block mass.
  for (index_t r = 0; r < m; ++r) {
    double off = 0.0;
    for (index_t cidx = 0; cidx < m; ++cidx) off += std::abs(a(r, cidx)) + std::abs(c(r, cidx));
    d(r, r) += (d(r, r) >= 0.0 ? 1.0 : -1.0) * 2.0 * off;
  }
  BlockTridiag t(n, m);
  for (index_t i = 0; i < n; ++i) {
    t.diag(i) = d;
    if (i > 0) t.lower(i) = a;
    if (i + 1 < n) t.upper(i) = c;
  }
  return t;
}

}  // namespace

std::string_view to_string(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::kDiagDominant:
      return "diagdom";
    case ProblemKind::kPoisson2D:
      return "poisson2d";
    case ProblemKind::kConvectionDiffusion:
      return "convdiff";
    case ProblemKind::kToeplitz:
      return "toeplitz";
    case ProblemKind::kIllConditioned:
      return "illcond";
  }
  return "unknown";
}

BlockTridiag make_problem(ProblemKind kind, index_t num_blocks, index_t block_size,
                          std::uint64_t seed) {
  switch (kind) {
    case ProblemKind::kDiagDominant:
      return random_blocks(num_blocks, block_size, seed, /*dominance=*/2.0);
    case ProblemKind::kPoisson2D:
      return poisson2d(num_blocks, block_size, /*drift=*/0.0);
    case ProblemKind::kConvectionDiffusion:
      return poisson2d(num_blocks, block_size, /*drift=*/0.5);
    case ProblemKind::kToeplitz:
      return toeplitz(num_blocks, block_size, seed);
    case ProblemKind::kIllConditioned:
      return random_blocks(num_blocks, block_size, seed, /*dominance=*/1.02);
  }
  return BlockTridiag(num_blocks, block_size);
}

Matrix make_rhs(index_t num_blocks, index_t block_size, index_t num_rhs, std::uint64_t seed) {
  la::Rng rng = la::make_rng(seed, 1);
  return la::random_uniform(num_blocks * block_size, num_rhs, rng);
}

BlockTridiag make_conditioned(index_t num_blocks, index_t block_size, double condition,
                              std::uint64_t seed) {
  BlockTridiag t = random_blocks(num_blocks, block_size, seed, /*dominance=*/2.0);
  // Row-scale whole block rows on a geometric ramp: equation i shrinks by
  // condition^{-i/(N-1)}, so pivot magnitudes (and the growth monitor's
  // max/min ratio) span ~`condition` while dominance is preserved.
  const double span = static_cast<double>(num_blocks > 1 ? num_blocks - 1 : 1);
  for (index_t i = 0; i < num_blocks; ++i) {
    const double w = std::pow(condition, -static_cast<double>(i) / span);
    const auto scale = [&](Matrix& blk) {
      for (index_t r = 0; r < block_size; ++r) {
        for (index_t c = 0; c < block_size; ++c) blk(r, c) *= w;
      }
    };
    if (i > 0) scale(t.lower(i));
    scale(t.diag(i));
    if (i + 1 < num_blocks) scale(t.upper(i));
  }
  return t;
}

BlockTridiag make_near_singular(index_t num_blocks, index_t block_size, double epsilon,
                                std::uint64_t seed) {
  BlockTridiag t = random_blocks(num_blocks, block_size, seed, /*dominance=*/2.0);
  plant_singular_pivot(t, 0, epsilon);
  return t;
}

void plant_singular_pivot(BlockTridiag& t, index_t block_row, double epsilon) {
  const index_t m = t.block_size();
  Matrix& d = t.diag(block_row);
  for (index_t r = 0; r < m; ++r) {
    for (index_t c = 0; c < m; ++c) d(r, c) = r == c ? 1.0 : 0.0;
  }
  d(m - 1, m - 1) = epsilon;
}

}  // namespace ardbt::btds
