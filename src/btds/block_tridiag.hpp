#pragma once

#include <cassert>
#include <vector>

#include "src/la/matrix.hpp"

/// \file block_tridiag.hpp
/// Storage for block tridiagonal systems
///
///   | D_0 C_0                    | |x_0|   |b_0|
///   | A_1 D_1 C_1                | |x_1|   |b_1|
///   |      ...                   | |...| = |...|
///   |          A_{N-1} D_{N-1}   | |x_N-1| |b_N-1|
///
/// with N block rows of square blocks of order M. `lower(0)` and
/// `upper(N-1)` do not exist and must not be touched. Right-hand sides and
/// solutions with R columns are stored as dense (N*M) x R matrices; block
/// row i of such a matrix is rows [i*M, (i+1)*M).

namespace ardbt::btds {

using la::index_t;
using la::Matrix;

/// Owning block tridiagonal matrix.
class BlockTridiag {
 public:
  BlockTridiag() = default;

  /// N zero blocks of order M on each diagonal.
  BlockTridiag(index_t num_blocks, index_t block_size)
      : n_(num_blocks),
        m_(block_size),
        lower_(static_cast<std::size_t>(num_blocks), Matrix(block_size, block_size)),
        diag_(static_cast<std::size_t>(num_blocks), Matrix(block_size, block_size)),
        upper_(static_cast<std::size_t>(num_blocks), Matrix(block_size, block_size)) {
    assert(num_blocks >= 1 && block_size >= 1);
  }

  /// Number of block rows N.
  index_t num_blocks() const { return n_; }
  /// Block order M.
  index_t block_size() const { return m_; }
  /// Scalar dimension N*M.
  index_t dim() const { return n_ * m_; }

  /// Sub-diagonal block A_i, valid for 1 <= i < N.
  Matrix& lower(index_t i) {
    assert(i >= 1 && i < n_);
    return lower_[static_cast<std::size_t>(i)];
  }
  const Matrix& lower(index_t i) const {
    assert(i >= 1 && i < n_);
    return lower_[static_cast<std::size_t>(i)];
  }

  /// Diagonal block D_i, valid for 0 <= i < N.
  Matrix& diag(index_t i) {
    assert(i >= 0 && i < n_);
    return diag_[static_cast<std::size_t>(i)];
  }
  const Matrix& diag(index_t i) const {
    assert(i >= 0 && i < n_);
    return diag_[static_cast<std::size_t>(i)];
  }

  /// Super-diagonal block C_i, valid for 0 <= i < N-1.
  Matrix& upper(index_t i) {
    assert(i >= 0 && i < n_ - 1);
    return upper_[static_cast<std::size_t>(i)];
  }
  const Matrix& upper(index_t i) const {
    assert(i >= 0 && i < n_ - 1);
    return upper_[static_cast<std::size_t>(i)];
  }

 private:
  index_t n_ = 0;
  index_t m_ = 0;
  std::vector<Matrix> lower_;
  std::vector<Matrix> diag_;
  std::vector<Matrix> upper_;
};

/// Mutable view of block row i of an (N*M) x R right-hand-side/solution
/// matrix.
inline la::MatrixView block_row(Matrix& x, index_t i, index_t m) {
  return x.block(i * m, 0, m, x.cols());
}
inline la::ConstMatrixView block_row(const Matrix& x, index_t i, index_t m) {
  return x.block(i * m, 0, m, x.cols());
}

}  // namespace ardbt::btds
