#include "src/btds/distributed.hpp"

#include <cstring>

#include "src/mpsim/collectives.hpp"

namespace ardbt::btds {
namespace {

void append_matrix(std::vector<std::byte>& buffer, const Matrix& m) {
  const std::size_t old = buffer.size();
  const std::size_t bytes = static_cast<std::size_t>(m.size()) * sizeof(double);
  buffer.resize(old + bytes);
  std::memcpy(buffer.data() + old, m.data().data(), bytes);
}

void take_matrix(std::span<const std::byte>& cursor, Matrix& out) {
  const std::size_t bytes = static_cast<std::size_t>(out.size()) * sizeof(double);
  assert(cursor.size() >= bytes);
  std::memcpy(out.data().data(), cursor.data(), bytes);
  cursor = cursor.subspan(bytes);
}

}  // namespace

LocalBlockTridiag::LocalBlockTridiag(index_t num_blocks_global, index_t block_size,
                                     const RowPartition& part, int rank)
    : n_global_(num_blocks_global),
      m_(block_size),
      lo_(part.begin(rank)),
      hi_(part.end(rank)) {
  const auto nloc = static_cast<std::size_t>(hi_ - lo_);
  lower_.assign(nloc, Matrix(m_, m_));
  diag_.assign(nloc, Matrix(m_, m_));
  upper_.assign(nloc, Matrix(m_, m_));
}

Matrix& LocalBlockTridiag::lower(index_t i) {
  assert(i >= 1);
  return lower_[local_of(i)];
}
const Matrix& LocalBlockTridiag::lower(index_t i) const {
  assert(i >= 1);
  return lower_[local_of(i)];
}
Matrix& LocalBlockTridiag::diag(index_t i) { return diag_[local_of(i)]; }
const Matrix& LocalBlockTridiag::diag(index_t i) const { return diag_[local_of(i)]; }
Matrix& LocalBlockTridiag::upper(index_t i) {
  assert(i + 1 < n_global_);
  return upper_[local_of(i)];
}
const Matrix& LocalBlockTridiag::upper(index_t i) const {
  assert(i + 1 < n_global_);
  return upper_[local_of(i)];
}

LocalBlockTridiag LocalBlockTridiag::scatter(mpsim::Comm& comm, const BlockTridiag* global,
                                             index_t num_blocks_global, index_t block_size,
                                             const RowPartition& part, int root) {
  LocalBlockTridiag local(num_blocks_global, block_size, part, comm.rank());
  const index_t n = num_blocks_global;

  if (comm.rank() == root) {
    assert(global != nullptr && global->num_blocks() == n &&
           global->block_size() == block_size);
    for (int peer = 0; peer < comm.size(); ++peer) {
      if (peer == root) continue;
      std::vector<std::byte> buffer;
      for (index_t i = part.begin(peer); i < part.end(peer); ++i) {
        if (i > 0) append_matrix(buffer, global->lower(i));
        append_matrix(buffer, global->diag(i));
        if (i + 1 < n) append_matrix(buffer, global->upper(i));
      }
      comm.send_bytes(peer, dist_tags::kScatterSys, buffer);
    }
    for (index_t i = local.lo_; i < local.hi_; ++i) {
      if (i > 0) local.lower(i) = global->lower(i);
      local.diag(i) = global->diag(i);
      if (i + 1 < n) local.upper(i) = global->upper(i);
    }
  } else {
    const std::vector<std::byte> raw = comm.recv_bytes(root, dist_tags::kScatterSys);
    std::span<const std::byte> cursor(raw);
    for (index_t i = local.lo_; i < local.hi_; ++i) {
      if (i > 0) take_matrix(cursor, local.lower(i));
      take_matrix(cursor, local.diag(i));
      if (i + 1 < n) take_matrix(cursor, local.upper(i));
    }
    assert(cursor.empty());
  }
  return local;
}

LocalBlockTridiag LocalBlockTridiag::from_shared(const BlockTridiag& global,
                                                 const RowPartition& part, int rank) {
  LocalBlockTridiag local(global.num_blocks(), global.block_size(), part, rank);
  for (index_t i = local.lo_; i < local.hi_; ++i) {
    if (i > 0) local.lower(i) = global.lower(i);
    local.diag(i) = global.diag(i);
    if (i + 1 < global.num_blocks()) local.upper(i) = global.upper(i);
  }
  return local;
}

Matrix scatter_rows(mpsim::Comm& comm, const Matrix* global, index_t block_size,
                    const RowPartition& part, int root) {
  // Broadcast the column count so non-root ranks can size their slices.
  double r_bcast[1] = {comm.rank() == root ? static_cast<double>(global->cols()) : 0.0};
  mpsim::bcast(comm, r_bcast, root);
  const auto r = static_cast<index_t>(r_bcast[0]);

  const index_t nloc = part.count(comm.rank());
  Matrix local(nloc * block_size, r);
  if (comm.rank() == root) {
    assert(global != nullptr && global->rows() == part.num_blocks() * block_size);
    for (int peer = 0; peer < comm.size(); ++peer) {
      if (peer == root) continue;
      const index_t rows = part.count(peer) * block_size;
      const Matrix slice =
          la::to_matrix(global->block(part.begin(peer) * block_size, 0, rows, r));
      comm.send(peer, dist_tags::kScatterRows, std::span<const double>(slice.data()));
    }
    la::copy(global->block(part.begin(root) * block_size, 0, nloc * block_size, r),
             local.view());
  } else {
    comm.recv_into(root, dist_tags::kScatterRows, std::span<double>(local.data()));
  }
  return local;
}

void gather_rows(mpsim::Comm& comm, const Matrix& local, Matrix* global, index_t block_size,
                 const RowPartition& part, int root) {
  const index_t r = local.cols();
  if (comm.rank() == root) {
    assert(global != nullptr);
    global->resize(part.num_blocks() * block_size, r);
    la::copy(local.view(),
             global->block(part.begin(root) * block_size, 0, local.rows(), r));
    for (int peer = 0; peer < comm.size(); ++peer) {
      if (peer == root) continue;
      const index_t rows = part.count(peer) * block_size;
      la::MatrixView dst = global->block(part.begin(peer) * block_size, 0, rows, r);
      Matrix buf(rows, r);
      comm.recv_into(peer, dist_tags::kScatterRows, std::span<double>(buf.data()));
      la::copy(buf.view(), dst);
    }
  } else {
    comm.send(root, dist_tags::kScatterRows, std::span<const double>(local.data()));
  }
}

}  // namespace ardbt::btds
