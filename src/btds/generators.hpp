#pragma once

#include <cstdint>
#include <string_view>

#include "src/btds/block_tridiag.hpp"

/// \file generators.hpp
/// Synthetic problem generators standing in for the application matrices
/// of the paper's testbed (see DESIGN.md, substitutions table). Every
/// generator is deterministic in (parameters, seed) and, except for the
/// ill-conditioned dial, produces block-diagonally-dominant systems with
/// invertible super-diagonal blocks — the classical assumptions of
/// recursive doubling.

namespace ardbt::btds {

/// Problem families used by tests, examples and benchmarks.
enum class ProblemKind {
  /// Random blocks; diagonal block boosted until each scalar row of the
  /// block row [A_i D_i C_i] is strictly diagonally dominant.
  kDiagDominant,
  /// 2-D Poisson, line (x-sweep) ordering: D = tridiag(-1, 4, -1) of order
  /// M, A = C = -I. The canonical PDE source of block tridiagonal systems.
  kPoisson2D,
  /// Upwinded convection-diffusion: Poisson plus an asymmetric convection
  /// term of strength `drift` (fixed internally).
  kConvectionDiffusion,
  /// Block Toeplitz: one random well-conditioned triple (A, D, C) repeated
  /// on every block row.
  kToeplitz,
  /// Dominance dialed down close to 1: stresses the stability of prefix
  /// products (used by the scaling-policy ablation and accuracy table).
  kIllConditioned,
};

/// Short stable name for reports ("diagdom", "poisson2d", ...).
std::string_view to_string(ProblemKind kind);

/// All kinds, for parameterized tests.
inline constexpr ProblemKind kAllProblemKinds[] = {
    ProblemKind::kDiagDominant, ProblemKind::kPoisson2D, ProblemKind::kConvectionDiffusion,
    ProblemKind::kToeplitz, ProblemKind::kIllConditioned,
};

/// Build an N x N block system of block order M.
BlockTridiag make_problem(ProblemKind kind, index_t num_blocks, index_t block_size,
                          std::uint64_t seed = 42);

/// Dense (N*M) x R right-hand-side matrix with uniform entries.
Matrix make_rhs(index_t num_blocks, index_t block_size, index_t num_rhs, std::uint64_t seed = 7);

/// Robustness-stress generators (not part of ProblemKind on purpose:
/// parameterized tests iterate kAllProblemKinds and expect every kind to
/// be solvable by every method, which these deliberately are not).

/// Dominant random system whose block rows are geometrically scaled so the
/// pivot magnitudes span roughly `condition` (>= 1): a dial for driving
/// the pivot-growth monitor without making any pivot exactly singular.
BlockTridiag make_conditioned(index_t num_blocks, index_t block_size, double condition,
                              std::uint64_t seed = 42);

/// Dominant random system with an `epsilon`-singular pivot planted in the
/// first diagonal block: block-pivot methods (Thomas/ARD/RD/PCR) break on
/// it while the global matrix stays invertible through the off-diagonal
/// coupling — exactly the case the banded-LU fallback exists for.
BlockTridiag make_near_singular(index_t num_blocks, index_t block_size, double epsilon,
                                std::uint64_t seed = 42);

/// Overwrite D_{block_row} with identity except entry (M-1, M-1) =
/// `epsilon` (0 = exactly singular block pivot). The global matrix stays
/// invertible as long as that scalar row couples to a neighbor block.
void plant_singular_pivot(BlockTridiag& t, index_t block_row, double epsilon = 0.0);

}  // namespace ardbt::btds
