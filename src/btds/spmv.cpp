#include "src/btds/spmv.hpp"

#include <cassert>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"

namespace ardbt::btds {

Matrix apply(const BlockTridiag& t, const Matrix& x) {
  const index_t n = t.num_blocks();
  const index_t m = t.block_size();
  assert(x.rows() == t.dim());
  Matrix b(x.rows(), x.cols());
  for (index_t i = 0; i < n; ++i) {
    la::MatrixView bi = block_row(b, i, m);
    la::gemm(1.0, t.diag(i).view(), block_row(x, i, m), 0.0, bi);
    if (i > 0) la::gemm(1.0, t.lower(i).view(), block_row(x, i - 1, m), 1.0, bi);
    if (i + 1 < n) la::gemm(1.0, t.upper(i).view(), block_row(x, i + 1, m), 1.0, bi);
  }
  return b;
}

double residual_fro(const BlockTridiag& t, const Matrix& x, const Matrix& b) {
  Matrix r = apply(t, x);
  la::matrix_axpy(-1.0, b.view(), r.view());
  return la::norm_fro(r.view());
}

double relative_residual(const BlockTridiag& t, const Matrix& x, const Matrix& b) {
  const double bn = la::norm_fro(b.view());
  const double rn = residual_fro(t, x, b);
  return bn > 0.0 ? rn / bn : rn;
}

double apply_flops(index_t num_blocks, index_t block_size, index_t num_rhs) {
  const double per_gemm = la::gemm_flops(block_size, num_rhs, block_size);
  return (3.0 * static_cast<double>(num_blocks) - 2.0) * per_gemm;
}

}  // namespace ardbt::btds
