#include "src/btds/reblock.hpp"

namespace ardbt::btds {

BlockTridiag reblock_banded(const BandedMatrix& banded) {
  const index_t q = banded.half_bandwidth;
  assert(q >= 1 && banded.dim >= 1);
  const index_t n_blocks = (banded.dim + q - 1) / q;
  const index_t padded = n_blocks * q;

  BlockTridiag t(n_blocks, q);
  for (index_t i = 0; i < padded; ++i) {
    for (index_t j = std::max<index_t>(0, i - q); j <= std::min(padded - 1, i + q); ++j) {
      double v;
      if (i < banded.dim && j < banded.dim) {
        v = banded.at(i, j);
      } else {
        v = (i == j) ? 1.0 : 0.0;  // identity pad
      }
      if (v == 0.0) continue;
      const index_t bi = i / q;
      const index_t bj = j / q;
      const index_t ri = i % q;
      const index_t rj = j % q;
      if (bi == bj) {
        t.diag(bi)(ri, rj) = v;
      } else if (bj + 1 == bi) {
        t.lower(bi)(ri, rj) = v;
      } else {
        assert(bi + 1 == bj && "entry outside the block tridiagonal range");
        t.upper(bi)(ri, rj) = v;
      }
    }
  }
  return t;
}

Matrix reblock_rhs(const BandedMatrix& banded, const Matrix& b) {
  const index_t q = banded.half_bandwidth;
  assert(b.rows() == banded.dim);
  const index_t n_blocks = (banded.dim + q - 1) / q;
  Matrix out(n_blocks * q, b.cols());
  la::copy(b.view(), out.block(0, 0, banded.dim, b.cols()));
  return out;
}

Matrix unblock_solution(const BandedMatrix& banded, const Matrix& x_blocked) {
  assert(x_blocked.rows() >= banded.dim);
  return la::to_matrix(x_blocked.block(0, 0, banded.dim, x_blocked.cols()));
}

}  // namespace ardbt::btds
