#pragma once

#include "src/btds/block_tridiag.hpp"

/// \file spmv.hpp
/// Block tridiagonal matrix application and residual checks — the ground
/// truth every solver in the library is verified against.

namespace ardbt::btds {

/// Returns T * X for X of shape (N*M) x R.
Matrix apply(const BlockTridiag& t, const Matrix& x);

/// Frobenius norm of (B - T X).
double residual_fro(const BlockTridiag& t, const Matrix& x, const Matrix& b);

/// ||B - T X||_F / ||B||_F, the solver acceptance metric used throughout
/// tests and the accuracy table (T3).
double relative_residual(const BlockTridiag& t, const Matrix& x, const Matrix& b);

/// Flops of one application (three block gemms per row, minus boundaries).
double apply_flops(index_t num_blocks, index_t block_size, index_t num_rhs);

}  // namespace ardbt::btds
