#include "src/btds/thomas.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/par/pool.hpp"

namespace ardbt::btds {

void ThomasFactorization::pivot_solve(index_t i, la::MatrixView b) const {
  if (pivot_ == PivotKind::kLu) {
    la::lu_solve_inplace(pivot_lu_[static_cast<std::size_t>(i)], b);
  } else {
    la::cholesky_solve_inplace(pivot_chol_[static_cast<std::size_t>(i)], b);
  }
}

ThomasFactorization ThomasFactorization::factor(const BlockTridiag& t, PivotKind pivot_kind) {
  const index_t n = t.num_blocks();
  const index_t m = t.block_size();
  ThomasFactorization f;
  f.n_ = n;
  f.m_ = m;
  f.pivot_ = pivot_kind;
  f.g_.reserve(static_cast<std::size_t>(n - 1));
  f.lower_.reserve(static_cast<std::size_t>(n - 1));

  Matrix pivot = t.diag(0);  // D'_0 = D_0
  for (index_t i = 0; i < n; ++i) {
    if (pivot_kind == PivotKind::kLu) {
      la::LuFactors lu = la::lu_factor(std::move(pivot));
      if (!lu.ok()) {
        throw fault::SingularPivotError(fault::ErrorCode::kSingularPivot, "btds::thomas_factor",
                                        i, static_cast<std::int64_t>(lu.info - 1), lu.growth);
      }
      f.diag_.observe(lu.min_pivot_abs, lu.max_pivot_abs, i);
      f.pivot_lu_.push_back(std::move(lu));
    } else {
      la::CholeskyFactors chol = la::cholesky_factor(pivot.view());
      if (!chol.ok()) {
        const double growth = chol.min_pivot_abs > 0.0 && chol.max_pivot_abs > 0.0
                                  ? chol.max_pivot_abs / chol.min_pivot_abs
                                  : std::numeric_limits<double>::infinity();
        throw fault::SingularPivotError(fault::ErrorCode::kNonSpdPivot, "btds::thomas_factor",
                                        i, static_cast<std::int64_t>(chol.info - 1), growth);
      }
      f.diag_.observe(chol.min_pivot_abs, chol.max_pivot_abs, i);
      f.pivot_chol_.push_back(std::move(chol));
    }
    if (i + 1 < n) {
      // G_i = D'_i^{-1} C_i, then D'_{i+1} = D_{i+1} - A_{i+1} G_i.
      Matrix g = la::to_matrix(t.upper(i).view());
      f.pivot_solve(i, g.view());
      pivot = t.diag(i + 1);
      la::gemm(-1.0, t.lower(i + 1).view(), g.view(), 1.0, pivot.view());
      f.g_.push_back(std::move(g));
      f.lower_.push_back(t.lower(i + 1));
    }
  }
  return f;
}

void ThomasFactorization::solve_panel(la::MatrixView x) const {
  const index_t n = n_;
  const index_t m = m_;
  const index_t w = x.cols();

  // Forward sweep: y_i = b_i - A_i z_{i-1}, z_i = D'_i^{-1} y_i.
  // z is accumulated directly in x.
  for (index_t i = 0; i < n; ++i) {
    la::MatrixView xi = x.block(i * m, 0, m, w);
    if (i > 0) {
      la::gemm(-1.0, lower_[static_cast<std::size_t>(i - 1)].view(),
               x.block((i - 1) * m, 0, m, w), 1.0, xi);
    }
    pivot_solve(i, xi);
  }
  // Backward sweep: x_i = z_i - G_i x_{i+1}.
  for (index_t i = n - 2; i >= 0; --i) {
    la::MatrixView xi = x.block(i * m, 0, m, w);
    la::gemm(-1.0, g_[static_cast<std::size_t>(i)].view(), x.block((i + 1) * m, 0, m, w), 1.0,
             xi);
  }
}

Matrix ThomasFactorization::solve(const Matrix& b, par::Pool* pool) const {
  assert(b.rows() == n_ * m_);
  Matrix x = b;
  if (pool != nullptr && pool->threads() > 1 && b.cols() >= 2) {
    // Column panels are independent; strided views make each panel solve
    // zero-copy, and per-column operation order matches the serial path.
    pool->parallel_for(
        0, b.cols(),
        [&](std::int64_t c0, std::int64_t c1) {
          solve_panel(x.view().block(0, static_cast<index_t>(c0), x.rows(),
                                     static_cast<index_t>(c1 - c0)));
        },
        "thomas.solve");
  } else {
    solve_panel(x.view());
  }
  return x;
}

double ThomasFactorization::factor_flops(index_t n, index_t m, PivotKind pivot) {
  // Per interior row: one pivot factorization (2/3 m^3 for LU, 1/3 m^3
  // for Cholesky), one m-RHS solve (2 m^3), one gemm (2 m^3).
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  const double pivot_share = pivot == PivotKind::kLu ? 2.0 / 3.0 : 1.0 / 3.0;
  return dn * (pivot_share + 2.0 + 2.0) * dm * dm * dm;
}

double ThomasFactorization::solve_flops(index_t n, index_t m, index_t r) {
  // Per row: one gemm forward, one LU solve, one gemm backward.
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  const double dr = static_cast<double>(r);
  return dn * 6.0 * dm * dm * dr;
}

std::size_t ThomasFactorization::storage_bytes() const {
  std::size_t doubles = 0;
  for (const auto& lu : pivot_lu_) doubles += static_cast<std::size_t>(lu.lu.size());
  for (const auto& ch : pivot_chol_) doubles += static_cast<std::size_t>(ch.l.size());
  for (const auto& g : g_) doubles += static_cast<std::size_t>(g.size());
  for (const auto& a : lower_) doubles += static_cast<std::size_t>(a.size());
  return doubles * sizeof(double);
}

Matrix thomas_solve(const BlockTridiag& t, const Matrix& b) {
  return ThomasFactorization::factor(t).solve(b);
}

}  // namespace ardbt::btds
