#include "src/btds/thomas.hpp"

#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/smallblock/kernels.hpp"
#include "src/la/smallblock/smallblock.hpp"
#include "src/la/workspace.hpp"
#include "src/par/pool.hpp"

namespace ardbt::btds {

void ThomasFactorization::pivot_solve(index_t i, la::MatrixView b) const {
  if (pivot_ == PivotKind::kLu) {
    if (slab_) {
      la::lu_solve_inplace(pivot_lu_view(i), {pivot_piv(i), static_cast<std::size_t>(m_)}, b);
    } else {
      la::lu_solve_inplace(pivot_lu_[static_cast<std::size_t>(i)], b);
    }
  } else {
    la::cholesky_solve_inplace(pivot_chol_[static_cast<std::size_t>(i)], b);
  }
}

la::ConstMatrixView ThomasFactorization::lower_view(index_t i) const {
  return slab_ ? la::ConstMatrixView(lower_base(i), m_, m_)
               : lower_[static_cast<std::size_t>(i)].view();
}

la::ConstMatrixView ThomasFactorization::g_view(index_t i) const {
  return slab_ ? la::ConstMatrixView(g_base(i), m_, m_) : g_[static_cast<std::size_t>(i)].view();
}

la::ConstMatrixView ThomasFactorization::pivot_lu_view(index_t i) const {
  return slab_ ? la::ConstMatrixView(lu_base(i), m_, m_)
               : pivot_lu_[static_cast<std::size_t>(i)].lu.view();
}

const la::index_t* ThomasFactorization::pivot_piv(index_t i) const {
  return slab_ ? piv_.get() + i * m_ : pivot_lu_[static_cast<std::size_t>(i)].piv.data();
}

template <index_t M>
void ThomasFactorization::factor_slab(const BlockTridiag& t) {
  namespace sb = la::smallblock;
  const index_t n = n_;
  constexpr std::size_t kBlock = static_cast<std::size_t>(M) * M;
  slab_ = true;
  // Deliberately uninitialized (make_unique_for_overwrite): the sweep
  // writes every entry — couplings and diagonals are memcpy'd into their
  // final slots before the in-place factorization touches them, so
  // zero-filling here would only add a full pass over the slab.
  slab_store_ = std::make_unique_for_overwrite<double[]>(static_cast<std::size_t>(3 * n - 2) *
                                                         kBlock);
  piv_ = std::make_unique_for_overwrite<la::index_t[]>(static_cast<std::size_t>(n) * M);

  // Compile-time-sized block copy: the source Matrix and the slab slot
  // are both contiguous, and a constant byte count lets the compiler
  // expand the memcpy inline instead of an out-of-line call per block.
  const auto copy_block = [](double* dst, la::ConstMatrixView src) {
    std::memcpy(dst, src.data(), kBlock * sizeof(double));
  };

  // The same recurrence as the per-block path in factor() below, with
  // every block a view into the contiguous slab: the pivot LU factors in
  // place (no Matrix or pivot-vector allocation per block) and the
  // couplings are copied once into their final location. Arithmetic and
  // operation order match the per-block path exactly, so factors — and
  // later solves — are bit-identical across representations.
  copy_block(slab_store_.get(), t.diag(0).view());
  for (index_t i = 0; i < n; ++i) {
    la::MatrixView lui(slab_store_.get() + static_cast<std::size_t>(i) * kBlock, M, M);
    la::index_t* piv = piv_.get() + i * M;
    const la::LuInPlaceInfo d = sb::lu_factor_view_kernel<M>(lui, piv);
    if (!d.ok()) {
      throw fault::SingularPivotError(fault::ErrorCode::kSingularPivot, "btds::thomas_factor", i,
                                      static_cast<std::int64_t>(d.info - 1), d.growth);
    }
    diag_.observe(d.min_pivot_abs, d.max_pivot_abs, i);
    if (i + 1 < n) {
      la::MatrixView gi(const_cast<double*>(g_base(i)), M, M);
      copy_block(gi.data(), t.upper(i).view());
      sb::lu_solve_view_kernel<M>(lui, piv, gi);
      la::MatrixView ai(const_cast<double*>(lower_base(i)), M, M);
      copy_block(ai.data(), t.lower(i + 1).view());
      la::MatrixView next(slab_store_.get() + static_cast<std::size_t>(i + 1) * kBlock, M, M);
      copy_block(next.data(), t.diag(i + 1).view());
      sb::gemm_kernel<M>(-1.0, ai, gi, next);
    }
  }
}

ThomasFactorization ThomasFactorization::factor(const BlockTridiag& t, PivotKind pivot_kind) {
  const index_t n = t.num_blocks();
  const index_t m = t.block_size();
  ThomasFactorization f;
  f.n_ = n;
  f.m_ = m;
  f.pivot_ = pivot_kind;
  if (pivot_kind == PivotKind::kLu && la::smallblock::enabled() &&
      la::smallblock::dispatchable(m)) {
    la::smallblock::dispatch(m, [&](auto tag) {
      constexpr index_t kM = decltype(tag)::value;
      f.factor_slab<kM>(t);
    });
    return f;
  }
  f.g_.reserve(static_cast<std::size_t>(n - 1));
  f.lower_.reserve(static_cast<std::size_t>(n - 1));

  Matrix pivot = t.diag(0);  // D'_0 = D_0
  for (index_t i = 0; i < n; ++i) {
    if (pivot_kind == PivotKind::kLu) {
      la::LuFactors lu = la::lu_factor(std::move(pivot));
      if (!lu.ok()) {
        throw fault::SingularPivotError(fault::ErrorCode::kSingularPivot, "btds::thomas_factor",
                                        i, static_cast<std::int64_t>(lu.info - 1), lu.growth);
      }
      f.diag_.observe(lu.min_pivot_abs, lu.max_pivot_abs, i);
      f.pivot_lu_.push_back(std::move(lu));
    } else {
      la::CholeskyFactors chol = la::cholesky_factor(pivot.view());
      if (!chol.ok()) {
        const double growth = chol.min_pivot_abs > 0.0 && chol.max_pivot_abs > 0.0
                                  ? chol.max_pivot_abs / chol.min_pivot_abs
                                  : std::numeric_limits<double>::infinity();
        throw fault::SingularPivotError(fault::ErrorCode::kNonSpdPivot, "btds::thomas_factor",
                                        i, static_cast<std::int64_t>(chol.info - 1), growth);
      }
      f.diag_.observe(chol.min_pivot_abs, chol.max_pivot_abs, i);
      f.pivot_chol_.push_back(std::move(chol));
    }
    if (i + 1 < n) {
      // G_i = D'_i^{-1} C_i, then D'_{i+1} = D_{i+1} - A_{i+1} G_i.
      Matrix g = la::to_matrix(t.upper(i).view());
      f.pivot_solve(i, g.view());
      pivot = t.diag(i + 1);
      la::gemm(-1.0, t.lower(i + 1).view(), g.view(), 1.0, pivot.view());
      f.g_.push_back(std::move(g));
      f.lower_.push_back(t.lower(i + 1));
    }
  }
  return f;
}

template <index_t M>
void ThomasFactorization::solve_panel_fixed(la::MatrixView x) const {
  const index_t n = n_;
  const index_t w = x.cols();
  namespace sb = la::smallblock;

  // Same sweeps as solve_panel with the per-block M-dispatch hoisted out
  // of the loops: each gemm here has beta == 1 (scale_c is a no-op) and
  // every pivot LU was verified ok() at factor time, so the kernels can
  // run back to back. Per-element operation order matches the generic
  // path exactly — results are bit-identical.
  for (index_t i = 0; i < n; ++i) {
    la::MatrixView xi = x.block(i * M, 0, M, w);
    if (i > 0) {
      sb::gemm_kernel<M>(-1.0, lower_view(i - 1), x.block((i - 1) * M, 0, M, w), xi);
    }
    sb::lu_solve_view_kernel<M>(pivot_lu_view(i), pivot_piv(i), xi);
  }
  for (index_t i = n - 2; i >= 0; --i) {
    la::MatrixView xi = x.block(i * M, 0, M, w);
    sb::gemm_kernel<M>(-1.0, g_view(i), x.block((i + 1) * M, 0, M, w), xi);
  }
}

void ThomasFactorization::solve_panel(la::MatrixView x) const {
  const index_t n = n_;
  const index_t m = m_;
  const index_t w = x.cols();

  if (pivot_ == PivotKind::kLu && la::smallblock::enabled() &&
      la::smallblock::dispatchable(m)) {
    la::smallblock::dispatch(m, [&](auto tag) {
      constexpr index_t kM = decltype(tag)::value;
      solve_panel_fixed<kM>(x);
    });
    return;
  }

  // Forward sweep: y_i = b_i - A_i z_{i-1}, z_i = D'_i^{-1} y_i.
  // z is accumulated directly in x.
  for (index_t i = 0; i < n; ++i) {
    la::MatrixView xi = x.block(i * m, 0, m, w);
    if (i > 0) {
      la::gemm(-1.0, lower_view(i - 1), x.block((i - 1) * m, 0, m, w), 1.0, xi);
    }
    pivot_solve(i, xi);
  }
  // Backward sweep: x_i = z_i - G_i x_{i+1}.
  for (index_t i = n - 2; i >= 0; --i) {
    la::gemm(-1.0, g_view(i), x.block((i + 1) * m, 0, m, w), 1.0, x.block(i * m, 0, m, w));
  }
}

Matrix ThomasFactorization::solve(const Matrix& b, par::Pool* pool, la::Workspace* ws) const {
  assert(b.rows() == n_ * m_);
  Matrix x = la::ws_acquire(ws, b.rows(), b.cols());
  la::copy(b.view(), x.view());
  if (pool != nullptr && pool->threads() > 1 && b.cols() >= 2) {
    // Column panels are independent; strided views make each panel solve
    // zero-copy, and per-column operation order matches the serial path.
    pool->parallel_for(
        0, b.cols(),
        [&](std::int64_t c0, std::int64_t c1) {
          solve_panel(x.view().block(0, static_cast<index_t>(c0), x.rows(),
                                     static_cast<index_t>(c1 - c0)));
        },
        "thomas.solve");
  } else {
    solve_panel(x.view());
  }
  return x;
}

double ThomasFactorization::factor_flops(index_t n, index_t m, PivotKind pivot) {
  // Per interior row: one pivot factorization (2/3 m^3 for LU, 1/3 m^3
  // for Cholesky), one m-RHS solve (2 m^3), one gemm (2 m^3).
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  const double pivot_share = pivot == PivotKind::kLu ? 2.0 / 3.0 : 1.0 / 3.0;
  return dn * (pivot_share + 2.0 + 2.0) * dm * dm * dm;
}

double ThomasFactorization::solve_flops(index_t n, index_t m, index_t r) {
  // Per row: one gemm forward, one LU solve, one gemm backward.
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  const double dr = static_cast<double>(r);
  return dn * 6.0 * dm * dm * dr;
}

std::size_t ThomasFactorization::storage_bytes() const {
  std::size_t doubles = 0;
  for (const auto& lu : pivot_lu_) doubles += static_cast<std::size_t>(lu.lu.size());
  for (const auto& ch : pivot_chol_) doubles += static_cast<std::size_t>(ch.l.size());
  for (const auto& g : g_) doubles += static_cast<std::size_t>(g.size());
  for (const auto& a : lower_) doubles += static_cast<std::size_t>(a.size());
  if (slab_) {
    const std::size_t block = static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_);
    doubles += static_cast<std::size_t>(3 * n_ - 2) * block;
    return doubles * sizeof(double) +
           static_cast<std::size_t>(n_ * m_) * sizeof(la::index_t);
  }
  return doubles * sizeof(double);
}

Matrix thomas_solve(const BlockTridiag& t, const Matrix& b) {
  return ThomasFactorization::factor(t).solve(b);
}

}  // namespace ardbt::btds
