#include "src/core/periodic.hpp"

#include <cassert>
#include <stdexcept>

#include "src/btds/spmv.hpp"
#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/mpsim/collectives.hpp"

namespace ardbt::core {
namespace {

using la::index_t;
using la::Matrix;

/// Broadcast the first block row (from the first rank) and the last block
/// row (from the last rank) of a row-distributed local slice; returns the
/// stacked 2M x R matrix [y_first; y_last] on every rank.
Matrix gather_edge_rows(mpsim::Comm& comm, const Matrix& local, index_t m) {
  const index_t r = local.cols();
  Matrix edges(2 * m, r);
  // First block row lives on rank 0.
  if (comm.rank() == 0) la::copy(local.block(0, 0, m, r), edges.block(0, 0, m, r));
  {
    la::MatrixView first = edges.block(0, 0, m, r);
    // bcast works on contiguous spans; the block view is contiguous in
    // rows but strided against `edges`, so stage through a buffer.
    Matrix buf = la::to_matrix(first);
    mpsim::bcast(comm, buf.data(), /*root=*/0);
    la::copy(buf.view(), first);
  }
  const int last = comm.size() - 1;
  if (comm.rank() == last) {
    la::copy(local.block(local.rows() - m, 0, m, r), edges.block(m, 0, m, r));
  }
  {
    la::MatrixView second = edges.block(m, 0, m, r);
    Matrix buf = la::to_matrix(second);
    mpsim::bcast(comm, buf.data(), /*root=*/last);
    la::copy(buf.view(), second);
  }
  return edges;
}

}  // namespace

PeriodicArdFactorization PeriodicArdFactorization::factor(
    mpsim::Comm& comm, const btds::BlockTridiag& sys, const la::Matrix& corner_lower,
    const la::Matrix& corner_upper, const btds::RowPartition& part, const ArdOptions& opts) {
  const index_t n = sys.num_blocks();
  const index_t m = sys.block_size();
  if (n < 3) throw std::runtime_error("periodic ARD: N >= 3 required");
  assert(corner_lower.rows() == m && corner_lower.cols() == m);
  assert(corner_upper.rows() == m && corner_upper.cols() == m);

  PeriodicArdFactorization f;
  f.rank_ = comm.rank();
  f.nranks_ = comm.size();
  f.n_ = n;
  f.m_ = m;
  f.lo_ = part.begin(comm.rank());
  f.hi_ = part.end(comm.rank());
  f.base_ = ArdFactorization::factor(comm, sys, part, opts);

  // U = E W: row-block 0 = [0 | B_0], row-block N-1 = [C_N | 0]; build
  // this rank's rows and solve T X = U for the local slice of T^{-1} U.
  const index_t nloc = f.hi_ - f.lo_;
  Matrix u_local(nloc * m, 2 * m);
  if (f.lo_ == 0) la::copy(corner_lower.view(), u_local.block(0, m, m, m));
  if (f.hi_ == n) la::copy(corner_upper.view(), u_local.block((nloc - 1) * m, 0, m, m));
  f.tu_local_ = f.base_.solve_local(comm, u_local);

  // Capacitance K = I + F^T T^{-1} U (2M x 2M), same on every rank.
  const Matrix edges = gather_edge_rows(comm, f.tu_local_, m);
  Matrix k = Matrix::identity(2 * m);
  la::matrix_axpy(1.0, edges.view(), k.view());
  f.cap_lu_ = la::lu_factor(std::move(k));
  comm.charge_flops(la::lu_factor_flops(2 * m));
  if (!f.cap_lu_.ok()) {
    throw std::runtime_error("periodic ARD: singular capacitance matrix");
  }
  return f;
}

void PeriodicArdFactorization::solve(mpsim::Comm& comm, const la::Matrix& b,
                                     la::Matrix& x) const {
  const index_t m = m_;
  const index_t nloc = hi_ - lo_;
  const index_t r = b.cols();
  assert(b.rows() == n_ * m && x.rows() == b.rows() && x.cols() == r);

  // y = T^{-1} b (local slice).
  Matrix b_local(nloc * m, r);
  la::copy(b.block(lo_ * m, 0, nloc * m, r), b_local.view());
  Matrix y = base_.solve_local(comm, b_local);

  // z = F^T y, w = K^{-1} z (small; every rank solves its own copy).
  Matrix z = gather_edge_rows(comm, y, m);
  la::lu_solve_inplace(cap_lu_, z.view());
  comm.charge_flops(la::lu_solve_flops(2 * m, r));

  // x = y - (T^{-1} U) w on this rank's rows.
  la::gemm(-1.0, tu_local_.view(), z.view(), 1.0, y.view());
  comm.charge_flops(la::gemm_flops(nloc * m, r, 2 * m));
  la::copy(y.view(), x.block(lo_ * m, 0, nloc * m, r));
}

la::Matrix apply_periodic(const btds::BlockTridiag& sys, const la::Matrix& corner_lower,
                          const la::Matrix& corner_upper, const la::Matrix& x) {
  const index_t n = sys.num_blocks();
  const index_t m = sys.block_size();
  Matrix b = btds::apply(sys, x);
  la::MatrixView first = b.block(0, 0, m, x.cols());
  la::gemm(1.0, corner_lower.view(), x.block((n - 1) * m, 0, m, x.cols()), 1.0, first);
  la::MatrixView last = b.block((n - 1) * m, 0, m, x.cols());
  la::gemm(1.0, corner_upper.view(), x.block(0, 0, m, x.cols()), 1.0, last);
  return b;
}

}  // namespace ardbt::core
