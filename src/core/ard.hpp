#pragma once

#include <optional>
#include <vector>

#include "src/btds/block_tridiag.hpp"
#include "src/btds/distributed.hpp"
#include "src/btds/partition.hpp"
#include "src/btds/thomas.hpp"
#include "src/core/scan.hpp"
#include "src/core/twoport.hpp"
#include "src/mpsim/comm.hpp"

/// \file ard.hpp
/// The accelerated recursive doubling (ARD) solver — the library's
/// production implementation of the paper's contribution (S. Seal,
/// IPDPS 2014).
///
/// ARD splits a recursive-doubling solve into a right-hand-side-independent
/// *factor* phase, run once per matrix, and a cheap *solve* phase, run once
/// per right-hand-side batch:
///
///   factor — O(M^3 (N/P + log P)) work, O(M^2 (N/P + log P)) memory:
///     1. block-Thomas factorization of this rank's row segment;
///     2. the segment's two-port reduction (corner blocks of its inverse,
///        via a 2M-column local solve);
///     3. forward and backward hypercube prefix scans over two-ports
///        (CachedScan<TwoPortOp>, log P rounds of O(M^3) merges, caching
///        the per-round matrices);
///     4. the prefix scans deliver exact boundary relations
///            x_{lo-1} = -S_pre C_{lo-1} x_lo     + q_pre(b)
///            x_hi     = -P_suf A_hi     x_{hi-1} + p_suf(b),
///        whose matrix parts fold into this rank's first/last diagonal
///        blocks; the modified segment is Thomas-factored as well.
///
///   solve — O(M^2 R (N/P + log P)) for R right-hand sides:
///     one local solve for the segment's (p, q), a vector-only replay of
///     both scans (cached matrices, M x R exchanges), right-hand-side
///     boundary corrections, and one local solve of the modified segment.
///
/// Classic RD re-runs the factor phase on every solve; amortized over R
/// right-hand sides ARD is therefore ~R/(1 + c R/M) times faster — the
/// abstract's O(R) improvement (experiment F1).
///
/// All entry points are SPMD-collective: every rank calls with the same
/// global arguments; rank r reads/writes only the block rows its
/// partition assigns. Ranks share the address space (mpsim), so global
/// inputs are passed by const reference and each rank writes disjoint row
/// ranges of the output.

namespace ardbt::core {

/// Tag space used by the production solver.
namespace ard_tags {
inline constexpr int kFwdFactor = 70;
inline constexpr int kBwdFactor = 71;
inline constexpr int kFwdSolve = 72;
inline constexpr int kBwdSolve = 73;
}  // namespace ard_tags

/// Latency-hiding pipeline knobs (docs/PARALLELISM.md, "Latency-hiding
/// pipeline"). Everything defaults off: the default path is byte-identical
/// — solutions AND virtual times — to the pre-pipeline solver, so all
/// committed baselines stay valid and the pipeline is a pure opt-in.
struct PipelineOptions {
  /// Overlap scan communication with compute. In the solve phase, RHS
  /// panels are pipelined: the rank-local reduction of panel k+1 runs
  /// while panel k's vector-part scan replay is in flight, the forward
  /// and backward replays of one panel are round-interleaved, and each
  /// round merges the half its next send depends on first so the message
  /// is on the wire during the rest of the merge. In the factor phase the
  /// two scans are round-interleaved the same way. Solutions are
  /// bit-identical on/off and for any chunk size or --threads; only
  /// virtual waits shrink.
  bool overlap = false;
  /// Columns per RHS panel in solve(B); 0 = one panel with all R columns.
  /// Meaningful overlap needs at least two panels (chunk_cols < R); see
  /// docs/PARALLELISM.md for sizing guidance.
  la::index_t chunk_cols = 0;
  /// Two-level hierarchical scan: split this rank's segment into `lanes`
  /// sub-segments factored/reduced independently (par::Pool runs them in
  /// parallel) and chained into the rank two-port locally, so the wall
  /// clock of the O(M^3 N/P) local reduction drops while the cross-rank
  /// scan keeps its log P rounds and wire protocol. 1 = flat.
  /// Hierarchical solutions are numerically equivalent but NOT
  /// bit-identical to the flat elimination order (it is a different —
  /// equally stable — bracketing of the same prefix), and they are still
  /// bit-identical across --threads/chunk/overlap for a fixed `lanes`.
  int lanes = 1;
};

/// Solver knobs.
struct ArdOptions {
  /// Consumed by the transfer-matrix ablation (see transfer_rd.hpp) when
  /// driven through the same options; the two-port solver needs no
  /// rescaling.
  bool rescale = true;
  /// Pivot factorization of the local segments. kCholesky halves the
  /// pivot-factor work and is unconditionally stable, but requires an SPD
  /// system (symmetric with A_{i+1} = C_i^T); the boundary-modified
  /// segment is then a Schur complement of the global SPD matrix, hence
  /// SPD as well.
  btds::PivotKind pivot = btds::PivotKind::kLu;
  /// Pivot-growth ratio (diagnostics().growth()) above which a completed
  /// factorization is considered broken down: its solutions are accepted
  /// or repaired per the driver's BreakdownPolicy. The monitor itself only
  /// compares pivot magnitudes already computed — it never charges flops,
  /// so modeled virtual times are unchanged by any threshold.
  double breakdown_growth_threshold = 1e12;
  /// Latency-hiding pipeline (overlap / RHS chunking / hierarchical scan).
  PipelineOptions pipeline{};
};

/// Factor-once / solve-many distributed factorization.
class ArdFactorization {
 public:
  ArdFactorization() = default;

  /// Collective. Factor the system (phase 1). Throws std::runtime_error
  /// on singular segment or interface pivots (system not block-LU
  /// factorizable; cannot happen for block-diagonally-dominant input).
  ///
  /// A non-null `ws` is this rank's workspace arena: every solve-phase
  /// temporary (boundary panels, scan replay vectors, right-divide
  /// transposes) is drawn from and returned to it, making repeated
  /// solve() calls allocation-free once the arena is warm. The arena must
  /// outlive the factorization, is used only by this rank's thread, and
  /// never changes results (bit-identical with or without one).
  static ArdFactorization factor(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                                 const btds::RowPartition& part, const ArdOptions& opts = {},
                                 la::Workspace* ws = nullptr);

  /// Collective. Factor from truly distributed storage — each rank reads
  /// only the block rows it owns (see btds/distributed.hpp). This is the
  /// path a real MPI deployment uses; the shared-global overload above is
  /// a convenience for in-process runs.
  static ArdFactorization factor(mpsim::Comm& comm, const btds::LocalBlockTridiag& sys,
                                 const btds::RowPartition& part, const ArdOptions& opts = {},
                                 la::Workspace* ws = nullptr);

  /// Collective. Solve for all columns of `b` (phase 2); writes this
  /// rank's block rows of `x`. `b` and `x` are global (N*M) x R matrices;
  /// `x` must be preallocated with the shape of `b`.
  void solve(mpsim::Comm& comm, const la::Matrix& b, la::Matrix& x) const;

  /// Collective. Local-slice variant: `b_local` holds only this rank's
  /// (nloc*M) x R rows (e.g. from btds::scatter_rows); the matching slice
  /// of the solution is returned.
  la::Matrix solve_local(mpsim::Comm& comm, const la::Matrix& b_local) const;

  /// Collective. Cheap refactorization after the matrix changed on *some*
  /// ranks. Pass `rows_changed = true` on ranks whose block rows differ
  /// from what was factored; those redo the full local phase, unchanged
  /// ranks reuse their segment factorization and two-port (~80% of the
  /// local work) and only replay the O(M^3 log P) scans plus one segment
  /// factorization. The partition must be unchanged.
  void update(mpsim::Comm& comm, const btds::BlockTridiag& sys, bool rows_changed);
  void update(mpsim::Comm& comm, const btds::LocalBlockTridiag& sys, bool rows_changed);

  la::index_t num_blocks() const { return n_; }
  la::index_t block_size() const { return m_; }
  la::index_t local_rows() const { return hi_ - lo_; }

  /// Approximate bytes of factored state held by this rank (T1's memory
  /// column): two segment factorizations plus the scan caches.
  std::size_t storage_bytes() const;

  /// Merged pivot extremes of this rank's two segment factorizations —
  /// the breakdown monitor the drivers compare against
  /// ArdOptions::breakdown_growth_threshold.
  fault::PivotDiagnostics diagnostics() const {
    if (!lanes_.empty()) {
      fault::PivotDiagnostics d = lanes_.front().unmodified.pivot_diagnostics();
      for (const Lane& ln : lanes_) {
        d.merge(ln.unmodified.pivot_diagnostics());
        d.merge(ln.modified.pivot_diagnostics());
      }
      return d;
    }
    fault::PivotDiagnostics d = unmodified_.pivot_diagnostics();
    d.merge(modified_.pivot_diagnostics());
    return d;
  }

 private:
  /// Storage-agnostic implementation pieces (defined in ard.cpp; the
  /// public overloads instantiate them there). The factor phase splits
  /// into a purely local part (segment factorization + two-port, the
  /// O(M^3 N/P) term) and a global part (scans + boundary-modified
  /// factorization) so `update` can skip the former on unchanged ranks.
  template <typename SysView>
  static ArdFactorization factor_impl(mpsim::Comm& comm, const SysView& sys,
                                      const btds::RowPartition& part, const ArdOptions& opts,
                                      la::Workspace* ws);
  template <typename SysView>
  void local_phase(mpsim::Comm& comm, const SysView& sys);
  template <typename SysView>
  void global_phase(mpsim::Comm& comm, const SysView& sys);
  template <typename SysView>
  void local_phase_lanes(mpsim::Comm& comm, const SysView& sys);
  template <typename SysView>
  void global_phase_lanes(mpsim::Comm& comm, const SysView& sys);

  /// Legacy serial solve path — byte-identical (solutions and virtual
  /// times) to the pre-pipeline solver; taken when every pipeline knob is
  /// at its default.
  la::Matrix solve_local_flat(mpsim::Comm& comm, const la::Matrix& b_local) const;
  /// Panel-pipelined / hierarchical solve path.
  la::Matrix solve_local_panels(mpsim::Comm& comm, const la::Matrix& b_local) const;

  /// Two-level scan active (PipelineOptions::lanes clamped to the local
  /// segment produced more than one sub-segment).
  bool hierarchical() const { return lanes_.size() > 1; }

  /// One sub-segment of the two-level hierarchical scan.
  struct Lane {
    la::index_t lo = 0, hi = 0;  ///< block-row range within this segment
    btds::ThomasFactorization unmodified;
    btds::ThomasFactorization modified;  ///< with lane-boundary-folded corners
    TwoPort tp;
    la::Matrix a_first;  ///< A of the lane's first global row (zero on row 0)
    la::Matrix c_last;   ///< C of the lane's last global row (zero on row N-1)
  };

  int rank_ = 0;
  ArdOptions opts_{};
  la::Workspace* ws_ = nullptr;  // per-rank scratch arena (not owned; may be null)
  la::index_t n_ = 0;   // global block rows
  la::index_t m_ = 0;   // block size
  la::index_t lo_ = 0;  // first local block row
  la::index_t hi_ = 0;  // one past last local block row

  btds::ThomasFactorization unmodified_;  // T_loc (for two-port vector parts)
  btds::ThomasFactorization modified_;    // T_loc with boundary-folded corners
  TwoPort tp_;                            // this segment's two-port (kept for update())
  la::Matrix a_lo_;                       // A_{lo} (zero on rank owning row 0)
  la::Matrix c_hi_;                       // C_{hi-1} (zero on rank owning row N-1)
  CachedScan<TwoPortOp> fwd_;
  CachedScan<TwoPortOpReversed> bwd_;

  /// Hierarchical-scan state (empty when lanes == 1). The local prefix /
  /// suffix chains are merged once at factor time; solve replays them with
  /// the cached merge matrices, exactly like the cross-rank scans.
  std::vector<Lane> lanes_;
  std::vector<TwoPort> fpre_;  ///< fpre_[i]: two-port of lanes [0, i), i >= 1
  std::vector<TwoPort> bsuf_;  ///< bsuf_[i]: two-port of lanes [i, L), i >= 1
  std::vector<TwoPortCache> fchain_cache_;    ///< [i]: merge(fpre_[i], lane i)
  std::vector<TwoPortCache> bchain_cache_;    ///< [i]: merge(lane i, bsuf_[i+1])
  std::vector<TwoPortCache> pre_mix_cache_;   ///< [i]: merge(cross-rank pre, fpre_[i])
  std::vector<TwoPortCache> suf_mix_cache_;   ///< [i]: merge(bsuf_[i+1], cross-rank suf)
};

}  // namespace ardbt::core
