#pragma once

#include <optional>

#include "src/btds/block_tridiag.hpp"
#include "src/btds/distributed.hpp"
#include "src/btds/partition.hpp"
#include "src/btds/thomas.hpp"
#include "src/core/scan.hpp"
#include "src/core/twoport.hpp"
#include "src/mpsim/comm.hpp"

/// \file ard.hpp
/// The accelerated recursive doubling (ARD) solver — the library's
/// production implementation of the paper's contribution (S. Seal,
/// IPDPS 2014).
///
/// ARD splits a recursive-doubling solve into a right-hand-side-independent
/// *factor* phase, run once per matrix, and a cheap *solve* phase, run once
/// per right-hand-side batch:
///
///   factor — O(M^3 (N/P + log P)) work, O(M^2 (N/P + log P)) memory:
///     1. block-Thomas factorization of this rank's row segment;
///     2. the segment's two-port reduction (corner blocks of its inverse,
///        via a 2M-column local solve);
///     3. forward and backward hypercube prefix scans over two-ports
///        (CachedScan<TwoPortOp>, log P rounds of O(M^3) merges, caching
///        the per-round matrices);
///     4. the prefix scans deliver exact boundary relations
///            x_{lo-1} = -S_pre C_{lo-1} x_lo     + q_pre(b)
///            x_hi     = -P_suf A_hi     x_{hi-1} + p_suf(b),
///        whose matrix parts fold into this rank's first/last diagonal
///        blocks; the modified segment is Thomas-factored as well.
///
///   solve — O(M^2 R (N/P + log P)) for R right-hand sides:
///     one local solve for the segment's (p, q), a vector-only replay of
///     both scans (cached matrices, M x R exchanges), right-hand-side
///     boundary corrections, and one local solve of the modified segment.
///
/// Classic RD re-runs the factor phase on every solve; amortized over R
/// right-hand sides ARD is therefore ~R/(1 + c R/M) times faster — the
/// abstract's O(R) improvement (experiment F1).
///
/// All entry points are SPMD-collective: every rank calls with the same
/// global arguments; rank r reads/writes only the block rows its
/// partition assigns. Ranks share the address space (mpsim), so global
/// inputs are passed by const reference and each rank writes disjoint row
/// ranges of the output.

namespace ardbt::core {

/// Tag space used by the production solver.
namespace ard_tags {
inline constexpr int kFwdFactor = 70;
inline constexpr int kBwdFactor = 71;
inline constexpr int kFwdSolve = 72;
inline constexpr int kBwdSolve = 73;
}  // namespace ard_tags

/// Solver knobs.
struct ArdOptions {
  /// Consumed by the transfer-matrix ablation (see transfer_rd.hpp) when
  /// driven through the same options; the two-port solver needs no
  /// rescaling.
  bool rescale = true;
  /// Pivot factorization of the local segments. kCholesky halves the
  /// pivot-factor work and is unconditionally stable, but requires an SPD
  /// system (symmetric with A_{i+1} = C_i^T); the boundary-modified
  /// segment is then a Schur complement of the global SPD matrix, hence
  /// SPD as well.
  btds::PivotKind pivot = btds::PivotKind::kLu;
  /// Pivot-growth ratio (diagnostics().growth()) above which a completed
  /// factorization is considered broken down: its solutions are accepted
  /// or repaired per the driver's BreakdownPolicy. The monitor itself only
  /// compares pivot magnitudes already computed — it never charges flops,
  /// so modeled virtual times are unchanged by any threshold.
  double breakdown_growth_threshold = 1e12;
};

/// Factor-once / solve-many distributed factorization.
class ArdFactorization {
 public:
  ArdFactorization() = default;

  /// Collective. Factor the system (phase 1). Throws std::runtime_error
  /// on singular segment or interface pivots (system not block-LU
  /// factorizable; cannot happen for block-diagonally-dominant input).
  ///
  /// A non-null `ws` is this rank's workspace arena: every solve-phase
  /// temporary (boundary panels, scan replay vectors, right-divide
  /// transposes) is drawn from and returned to it, making repeated
  /// solve() calls allocation-free once the arena is warm. The arena must
  /// outlive the factorization, is used only by this rank's thread, and
  /// never changes results (bit-identical with or without one).
  static ArdFactorization factor(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                                 const btds::RowPartition& part, const ArdOptions& opts = {},
                                 la::Workspace* ws = nullptr);

  /// Collective. Factor from truly distributed storage — each rank reads
  /// only the block rows it owns (see btds/distributed.hpp). This is the
  /// path a real MPI deployment uses; the shared-global overload above is
  /// a convenience for in-process runs.
  static ArdFactorization factor(mpsim::Comm& comm, const btds::LocalBlockTridiag& sys,
                                 const btds::RowPartition& part, const ArdOptions& opts = {},
                                 la::Workspace* ws = nullptr);

  /// Collective. Solve for all columns of `b` (phase 2); writes this
  /// rank's block rows of `x`. `b` and `x` are global (N*M) x R matrices;
  /// `x` must be preallocated with the shape of `b`.
  void solve(mpsim::Comm& comm, const la::Matrix& b, la::Matrix& x) const;

  /// Collective. Local-slice variant: `b_local` holds only this rank's
  /// (nloc*M) x R rows (e.g. from btds::scatter_rows); the matching slice
  /// of the solution is returned.
  la::Matrix solve_local(mpsim::Comm& comm, const la::Matrix& b_local) const;

  /// Collective. Cheap refactorization after the matrix changed on *some*
  /// ranks. Pass `rows_changed = true` on ranks whose block rows differ
  /// from what was factored; those redo the full local phase, unchanged
  /// ranks reuse their segment factorization and two-port (~80% of the
  /// local work) and only replay the O(M^3 log P) scans plus one segment
  /// factorization. The partition must be unchanged.
  void update(mpsim::Comm& comm, const btds::BlockTridiag& sys, bool rows_changed);
  void update(mpsim::Comm& comm, const btds::LocalBlockTridiag& sys, bool rows_changed);

  la::index_t num_blocks() const { return n_; }
  la::index_t block_size() const { return m_; }
  la::index_t local_rows() const { return hi_ - lo_; }

  /// Approximate bytes of factored state held by this rank (T1's memory
  /// column): two segment factorizations plus the scan caches.
  std::size_t storage_bytes() const;

  /// Merged pivot extremes of this rank's two segment factorizations —
  /// the breakdown monitor the drivers compare against
  /// ArdOptions::breakdown_growth_threshold.
  fault::PivotDiagnostics diagnostics() const {
    fault::PivotDiagnostics d = unmodified_.pivot_diagnostics();
    d.merge(modified_.pivot_diagnostics());
    return d;
  }

 private:
  /// Storage-agnostic implementation pieces (defined in ard.cpp; the
  /// public overloads instantiate them there). The factor phase splits
  /// into a purely local part (segment factorization + two-port, the
  /// O(M^3 N/P) term) and a global part (scans + boundary-modified
  /// factorization) so `update` can skip the former on unchanged ranks.
  template <typename SysView>
  static ArdFactorization factor_impl(mpsim::Comm& comm, const SysView& sys,
                                      const btds::RowPartition& part, const ArdOptions& opts,
                                      la::Workspace* ws);
  template <typename SysView>
  void local_phase(mpsim::Comm& comm, const SysView& sys);
  template <typename SysView>
  void global_phase(mpsim::Comm& comm, const SysView& sys);

  int rank_ = 0;
  ArdOptions opts_{};
  la::Workspace* ws_ = nullptr;  // per-rank scratch arena (not owned; may be null)
  la::index_t n_ = 0;   // global block rows
  la::index_t m_ = 0;   // block size
  la::index_t lo_ = 0;  // first local block row
  la::index_t hi_ = 0;  // one past last local block row

  btds::ThomasFactorization unmodified_;  // T_loc (for two-port vector parts)
  btds::ThomasFactorization modified_;    // T_loc with boundary-folded corners
  TwoPort tp_;                            // this segment's two-port (kept for update())
  la::Matrix a_lo_;                       // A_{lo} (zero on rank owning row 0)
  la::Matrix c_hi_;                       // C_{hi-1} (zero on rank owning row N-1)
  CachedScan<TwoPortOp> fwd_;
  CachedScan<TwoPortOpReversed> bwd_;
};

}  // namespace ardbt::core
