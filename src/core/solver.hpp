#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/btds/banded_lu.hpp"
#include "src/btds/block_tridiag.hpp"
#include "src/btds/partition.hpp"
#include "src/core/ard.hpp"
#include "src/core/pcr.hpp"
#include "src/core/transfer_rd.hpp"
#include "src/fault/status.hpp"
#include "src/la/workspace.hpp"
#include "src/mpsim/engine.hpp"
#include "src/obs/live/telemetry.hpp"

namespace ardbt::obs {
class MetricsRegistry;
}

/// \file solver.hpp
/// Driver API: an explicit factor/solve `Session` plus one-shot
/// conveniences built on it.
///
/// A Session owns the engine configuration, the row partition, and the
/// per-rank factored state of one system. `factor()` runs the
/// right-hand-side-independent phase once; every `solve(B)` afterwards
/// replays only the O(M^2 R) work — the incremental right-hand-side
/// arrival pattern (time stepping) that motivates the accelerated
/// algorithm. Each call spins up one engine run; the virtual clock is
/// threaded across runs (EngineOptions::vtime_origin) so a session's
/// trace reads as one seamless timeline: factor, then solve, then solve…
///
/// Intra-rank parallelism: set EngineOptions::threads_per_rank > 1 and
/// every rank's solve kernels fan RHS-column panels out over a par::Pool.
/// Charged flops stay on the rank thread, so modeled virtual times — and
/// the solutions themselves — are bit-identical for any thread count.
///
/// Benchmarks and advanced users drive the rank-level API
/// (ard.hpp / rd.hpp / pcr.hpp) inside their own engine runs.

namespace ardbt::core {

/// Which distributed algorithm to run.
enum class Method {
  kRdBatched,   ///< classic recursive doubling, one batched pass
  kRdPerRhs,    ///< classic recursive doubling, one pass per right-hand side
  kArd,         ///< accelerated: factor once, solve once
  kTransferRd,  ///< transfer-matrix ablation (numerically unstable at large N)
  kPcr,         ///< parallel cyclic reduction (factor/solve split), the
                ///< classic O(M^3 (N/P) log N) competitor
};

/// Short stable name ("rd", "rd-per-rhs", "ard").
std::string_view to_string(Method method);

/// Everything a Session needs besides the system itself, collapsed into
/// one designated-initializer-friendly aggregate:
///
///     core::Session s(method, sys, p,
///                     {.ard = {...}, .engine = {.timing = ...}});
///
/// Replaces the (ArdOptions, EngineOptions, Telemetry) parameter triple
/// previously threaded through Session, core::solve and ard_session; the
/// old signatures survive as thin wrappers (see below) but new code —
/// and everything in-tree — uses this form. A default SessionConfig{} is
/// byte-for-byte the old default behaviour.
struct SessionConfig {
  ArdOptions ard{};               ///< algorithm options (tolerances, ladder)
  mpsim::EngineOptions engine{};  ///< cost model, timing mode, threads, faults
  /// Live telemetry bundle; a default (inert) handle costs one pointer
  /// test per run. Installed via Session::set_telemetry at construction.
  obs::live::Telemetry telemetry{};
};

/// One entry of the session's robustness log: what happened during a
/// factor or solve phase and what the driver did about it. An untroubled
/// phase records {status ok, action "ok"}; a degraded one records the
/// triggering error and the recovery rung taken.
struct SolveOutcome {
  std::string phase;     ///< "factor" or "solve"
  fault::Status status;  ///< error that triggered recovery (ok when none)
  /// "ok" | "failfast" | "refine" | "fallback" — the ladder rung used.
  std::string action = "ok";
  int retries = 0;       ///< engine re-runs spent on transient faults
  int refine_steps = 0;  ///< iterative-refinement corrections applied
  double residual = -1.0;      ///< relative residual, when the driver computed it
  double pivot_growth = 0.0;   ///< monitor reading at this phase (0 = none)
  std::string detail;          ///< free-form context for the run report
};

/// Factor/solve driver for one system. Not thread-safe; one engine run is
/// in flight at a time.
///
/// Lifetime contract (the one place it is documented): a Session never
/// copies the system. The reference-taking constructors *borrow* `sys` —
/// the caller guarantees it outlives the session and stays unmodified
/// between factor() and the last solve(); this is the right form for
/// stack-scoped callers (benches, tests, the CLI). The shared_ptr
/// constructor *shares ownership* — the session keeps the system alive by
/// itself, so it can sit in a cache and be evicted/destroyed in any order
/// relative to the code that built it; this is the form service::
/// FactorCache uses. Internally both paths store one
/// shared_ptr<const BlockTridiag> (the borrow is a non-owning alias), so
/// every downstream code path is identical.
class Session {
 public:
  /// Borrows `sys` (see the lifetime contract above). Throws
  /// fault::InvalidArgumentError on a non-positive rank count.
  Session(Method method, const btds::BlockTridiag& sys, int nranks, SessionConfig config = {});

  /// Shares ownership of `sys` (see the lifetime contract above). Throws
  /// fault::InvalidArgumentError on a null system or non-positive rank
  /// count.
  Session(Method method, std::shared_ptr<const btds::BlockTridiag> sys, int nranks,
          SessionConfig config = {});

  /// Deprecated: prefer the SessionConfig form. Thin wrapper kept for
  /// out-of-tree callers of the pre-service API; borrows `sys` like the
  /// primary reference constructor.
  Session(Method method, const btds::BlockTridiag& sys, int nranks, const ArdOptions& opts,
          const mpsim::EngineOptions& engine = {});

  /// Run the right-hand-side-independent phase. Idempotent: repeated
  /// calls after a successful factor are no-ops. The classic RD methods
  /// have no separable factor phase — for them this only marks the
  /// session factored (factor_vtime() stays 0; each solve redoes the
  /// full pass, which is exactly the cost the accelerated methods avoid).
  void factor();

  /// Solve T X = B for all columns of `b`; auto-factors on first use.
  /// Appends the batch's modeled seconds to solve_vtimes().
  la::Matrix solve(const la::Matrix& b);

  bool factored() const { return factored_; }
  Method method() const { return method_; }
  int nranks() const { return nranks_; }

  /// Modeled seconds of the factor run (0 until factored; 0 forever for
  /// the classic RD methods).
  double factor_vtime() const { return factor_vtime_; }
  /// Modeled seconds of each solve batch, in call order.
  const std::vector<double>& solve_vtimes() const { return solve_vtimes_; }
  /// Bytes of factored state on rank 0 (0 for methods without one).
  std::size_t storage_bytes() const { return storage_bytes_; }

  /// Arena statistics of rank `r`'s workspace (populated for Method::kArd
  /// once factored; all-zero otherwise). Steady-state contract: after the
  /// first solve(B) of a given shape, further solves of that shape add
  /// zero slab_allocs — every scratch matrix recycles through the arena.
  la::Workspace::Stats arena_stats(int r) const;
  /// The same counters snapshotted right after factor() — the factor
  /// phase's share; solve-phase deltas are arena_stats() minus this.
  la::Workspace::Stats arena_stats_after_factor(int r) const;
  /// Export per-phase arena gauges ("arena.rank.R.*", "arena.factor.*",
  /// "arena.solve.slab_allocs", aggregate high-water marks) into `reg`.
  void export_arena_metrics(obs::MetricsRegistry& reg) const;

  /// Export modeled phase latencies into `reg`: the factor run into
  /// "latency.session.factor_s" (when one ran) and every solve batch into
  /// "latency.session.solve_s" — the p50/p99 source for the service-layer
  /// view of a long-lived session. Virtual-clock values: deterministic
  /// under ChargedFlops.
  void export_latency_metrics(obs::MetricsRegistry& reg) const;

  /// Engine counters accumulated over every run so far (virtual-clock
  /// fields reflect the session timeline, counters sum across runs).
  const mpsim::RunReport& report() const { return report_; }

  /// Install live telemetry (see obs/live/telemetry.hpp). After every
  /// engine run the session records the phase span and metric deltas on
  /// the recorder's driver channel, refreshes the registry, runs the
  /// straggler/deadline/arena watchdogs, and ticks the snapshotter on the
  /// virtual clock; the degradation ladder emits structured log records;
  /// on a SolveError or breakdown a postmortem bundle is written to
  /// telemetry.postmortem_path (overwritten per incident). A default
  /// Telemetry{} (or none) costs one test per run and leaves solutions
  /// and vtimes bit-identical.
  void set_telemetry(const obs::live::Telemetry& telemetry);
  const obs::live::Telemetry& telemetry() const { return telemetry_; }

  /// Robustness log, one entry per factor/solve phase (see SolveOutcome).
  const std::vector<SolveOutcome>& outcomes() const { return outcomes_; }
  /// Latest ladder entry, or nullptr before any phase ran. Service-layer
  /// callers read it to attach the triggering status and recovery rung of
  /// a degraded solve to the Completion they hand back.
  const SolveOutcome* last_outcome() const {
    return outcomes_.empty() ? nullptr : &outcomes_.back();
  }
  /// True once the session runs on the exact banded-LU fallback.
  bool degraded() const { return degraded_; }
  /// True when the breakdown monitor flagged the fast factorization
  /// (solves are refined or escalated per the policy).
  bool breakdown() const { return breakdown_; }
  /// Largest pivot-growth reading the monitor produced (0 until factored;
  /// methods without a monitor stay 0).
  double pivot_growth() const { return pivot_growth_; }

 private:
  mpsim::RunReport run_engine(const char* phase, const mpsim::RankFn& fn);
  void fold_report(const mpsim::RunReport& run);
  /// Telemetry fan-out after a successful engine run: driver-channel
  /// span + metric deltas, registry refresh, watchdogs, snapshot tick.
  void after_run(const char* phase, const mpsim::RunReport& run, double t0);
  /// Structured log record for a ladder outcome (info when untroubled,
  /// warn when a recovery rung was taken).
  void log_outcome(const SolveOutcome& outcome);
  /// Write the postmortem bundle (no-op without a postmortem_path). The
  /// code classifies the incident; its stable name becomes the reason.
  void dump_postmortem(const char* phase, fault::ErrorCode code, const std::string& message);
  /// Factor the banded-LU fallback (rank 0, inside an engine run) if not
  /// already cached.
  void ensure_fallback();
  /// Solve with the cached fallback factorization (rank 0, engine run).
  la::Matrix fallback_solve(const la::Matrix& b);

  Method method_;
  /// Always set. Owning when constructed from a shared_ptr; a non-owning
  /// alias (empty control block) when constructed from a reference.
  std::shared_ptr<const btds::BlockTridiag> sys_;
  int nranks_;
  ArdOptions opts_;
  mpsim::EngineOptions engine_;
  btds::RowPartition part_;
  obs::live::Telemetry telemetry_;

  bool factored_ = false;
  double vtime_cursor_ = 0.0;  ///< virtual-time origin of the next run
  double factor_vtime_ = 0.0;
  std::vector<double> solve_vtimes_;
  std::size_t storage_bytes_ = 0;
  mpsim::RunReport report_;
  bool have_report_ = false;

  // Robustness state (see docs/ROBUSTNESS.md).
  std::vector<SolveOutcome> outcomes_;
  bool degraded_ = false;   ///< solves go through the banded-LU fallback
  bool breakdown_ = false;  ///< monitor flagged the fast factorization
  double pivot_growth_ = 0.0;
  int last_retries_ = 0;  ///< transient-fault retries of the latest run
  std::uint64_t arena_allocs_prev_ = 0;  ///< slab allocs at the last telemetry check
  bool arena_warm_ = false;  ///< a solve has run; the arena should be steady
  double last_phase_vtime_ = 0.0;  ///< rank-0 phase seconds of the latest helper run
  std::unique_ptr<btds::BandedLuFactorization> fallback_;

  // Per-rank factored state (indexed by rank; only the active method's
  // vector is populated).
  std::vector<ArdFactorization> ard_;
  std::vector<PcrFactorization> pcr_;
  std::vector<TransferRdFactorization> trd_;

  // Per-rank scratch arenas (kArd): ard_[r] keeps a pointer to ws_[r], so
  // the vector is sized exactly once, in factor(). Each arena is touched
  // only by its rank's engine thread.
  std::vector<la::Workspace> ws_;
  std::vector<la::Workspace::Stats> ws_after_factor_;
};

/// Result of a one-shot driver call.
struct DriverResult {
  la::Matrix x;                ///< solution, shape of b
  mpsim::RunReport report;     ///< engine counters
  double factor_vtime = 0.0;   ///< modeled seconds in the factor phase
  double solve_vtime = 0.0;    ///< modeled seconds in the solve phase(s)
  std::vector<SolveOutcome> outcomes;  ///< robustness log of the session
};

/// One-shot convenience: Session(method, ...), factor, one solve. A
/// non-empty config.telemetry handle is installed on the session first
/// (see Session::set_telemetry); the default inert handle costs nothing.
DriverResult solve(Method method, const btds::BlockTridiag& sys, const la::Matrix& b, int nranks,
                   const SessionConfig& config = {});

/// Deprecated: prefer the SessionConfig form above.
DriverResult solve(Method method, const btds::BlockTridiag& sys, const la::Matrix& b, int nranks,
                   const ArdOptions& opts, const mpsim::EngineOptions& engine = {},
                   const obs::live::Telemetry& telemetry = {});

/// Result of an ARD session (factor once, many solve batches).
struct SessionResult {
  std::vector<la::Matrix> x;        ///< one solution per batch
  mpsim::RunReport report;          ///< engine counters
  double factor_vtime = 0.0;        ///< modeled factor seconds
  std::vector<double> solve_vtimes; ///< modeled seconds per batch
  std::size_t storage_bytes = 0;    ///< factored state on rank 0
};

/// One-shot convenience over Session: factor once, then solve every batch
/// in order. Throws fault::InvalidArgumentError on a null batch. A
/// non-empty config.telemetry handle is installed on the session first.
SessionResult ard_session(const btds::BlockTridiag& sys,
                          const std::vector<const la::Matrix*>& batches, int nranks,
                          const SessionConfig& config = {});

/// Deprecated: prefer the SessionConfig form above.
SessionResult ard_session(const btds::BlockTridiag& sys,
                          const std::vector<const la::Matrix*>& batches, int nranks,
                          const ArdOptions& opts, const mpsim::EngineOptions& engine = {},
                          const obs::live::Telemetry& telemetry = {});

}  // namespace ardbt::core
