#pragma once

#include <vector>

#include "src/btds/block_tridiag.hpp"
#include "src/btds/partition.hpp"
#include "src/core/ard.hpp"
#include "src/core/pcr.hpp"
#include "src/core/transfer_rd.hpp"
#include "src/mpsim/engine.hpp"

/// \file solver.hpp
/// Driver API: an explicit factor/solve `Session` plus one-shot
/// conveniences built on it.
///
/// A Session owns the engine configuration, the row partition, and the
/// per-rank factored state of one system. `factor()` runs the
/// right-hand-side-independent phase once; every `solve(B)` afterwards
/// replays only the O(M^2 R) work — the incremental right-hand-side
/// arrival pattern (time stepping) that motivates the accelerated
/// algorithm. Each call spins up one engine run; the virtual clock is
/// threaded across runs (EngineOptions::vtime_origin) so a session's
/// trace reads as one seamless timeline: factor, then solve, then solve…
///
/// Intra-rank parallelism: set EngineOptions::threads_per_rank > 1 and
/// every rank's solve kernels fan RHS-column panels out over a par::Pool.
/// Charged flops stay on the rank thread, so modeled virtual times — and
/// the solutions themselves — are bit-identical for any thread count.
///
/// Benchmarks and advanced users drive the rank-level API
/// (ard.hpp / rd.hpp / pcr.hpp) inside their own engine runs.

namespace ardbt::core {

/// Which distributed algorithm to run.
enum class Method {
  kRdBatched,   ///< classic recursive doubling, one batched pass
  kRdPerRhs,    ///< classic recursive doubling, one pass per right-hand side
  kArd,         ///< accelerated: factor once, solve once
  kTransferRd,  ///< transfer-matrix ablation (numerically unstable at large N)
  kPcr,         ///< parallel cyclic reduction (factor/solve split), the
                ///< classic O(M^3 (N/P) log N) competitor
};

/// Short stable name ("rd", "rd-per-rhs", "ard").
std::string_view to_string(Method method);

/// Factor/solve driver for one system. Not thread-safe; one engine run is
/// in flight at a time.
class Session {
 public:
  /// Binds the session to `sys` (held by reference — it must outlive the
  /// session and stay unmodified between factor() and the last solve()).
  /// Throws std::invalid_argument on a non-positive rank count.
  Session(Method method, const btds::BlockTridiag& sys, int nranks,
          const ArdOptions& opts = {}, const mpsim::EngineOptions& engine = {});

  /// Run the right-hand-side-independent phase. Idempotent: repeated
  /// calls after a successful factor are no-ops. The classic RD methods
  /// have no separable factor phase — for them this only marks the
  /// session factored (factor_vtime() stays 0; each solve redoes the
  /// full pass, which is exactly the cost the accelerated methods avoid).
  void factor();

  /// Solve T X = B for all columns of `b`; auto-factors on first use.
  /// Appends the batch's modeled seconds to solve_vtimes().
  la::Matrix solve(const la::Matrix& b);

  bool factored() const { return factored_; }
  Method method() const { return method_; }
  int nranks() const { return nranks_; }

  /// Modeled seconds of the factor run (0 until factored; 0 forever for
  /// the classic RD methods).
  double factor_vtime() const { return factor_vtime_; }
  /// Modeled seconds of each solve batch, in call order.
  const std::vector<double>& solve_vtimes() const { return solve_vtimes_; }
  /// Bytes of factored state on rank 0 (0 for methods without one).
  std::size_t storage_bytes() const { return storage_bytes_; }

  /// Engine counters accumulated over every run so far (virtual-clock
  /// fields reflect the session timeline, counters sum across runs).
  const mpsim::RunReport& report() const { return report_; }

 private:
  mpsim::RunReport run_engine(const mpsim::RankFn& fn);
  void fold_report(const mpsim::RunReport& run);

  Method method_;
  const btds::BlockTridiag* sys_;
  int nranks_;
  ArdOptions opts_;
  mpsim::EngineOptions engine_;
  btds::RowPartition part_;

  bool factored_ = false;
  double vtime_cursor_ = 0.0;  ///< virtual-time origin of the next run
  double factor_vtime_ = 0.0;
  std::vector<double> solve_vtimes_;
  std::size_t storage_bytes_ = 0;
  mpsim::RunReport report_;
  bool have_report_ = false;

  // Per-rank factored state (indexed by rank; only the active method's
  // vector is populated).
  std::vector<ArdFactorization> ard_;
  std::vector<PcrFactorization> pcr_;
  std::vector<TransferRdFactorization> trd_;
};

/// Result of a one-shot driver call.
struct DriverResult {
  la::Matrix x;                ///< solution, shape of b
  mpsim::RunReport report;     ///< engine counters
  double factor_vtime = 0.0;   ///< modeled seconds in the factor phase
  double solve_vtime = 0.0;    ///< modeled seconds in the solve phase(s)
};

/// One-shot convenience: Session(method, ...), factor, one solve.
DriverResult solve(Method method, const btds::BlockTridiag& sys, const la::Matrix& b, int nranks,
                   const ArdOptions& opts = {}, const mpsim::EngineOptions& engine = {});

/// Result of an ARD session (factor once, many solve batches).
struct SessionResult {
  std::vector<la::Matrix> x;        ///< one solution per batch
  mpsim::RunReport report;          ///< engine counters
  double factor_vtime = 0.0;        ///< modeled factor seconds
  std::vector<double> solve_vtimes; ///< modeled seconds per batch
  std::size_t storage_bytes = 0;    ///< factored state on rank 0
};

/// One-shot convenience over Session: factor once, then solve every batch
/// in order. Throws std::invalid_argument on a null batch.
SessionResult ard_session(const btds::BlockTridiag& sys,
                          const std::vector<const la::Matrix*>& batches, int nranks,
                          const ArdOptions& opts = {}, const mpsim::EngineOptions& engine = {});

}  // namespace ardbt::core
