#pragma once

#include <vector>

#include "src/btds/block_tridiag.hpp"
#include "src/core/ard.hpp"
#include "src/mpsim/engine.hpp"

/// \file solver.hpp
/// One-call driver API: spins up a P-rank engine run, executes a solver
/// SPMD, and returns the solution with phase timings. This is the entry
/// point the examples use; benchmarks and advanced users drive the
/// rank-level API (ard.hpp / rd.hpp) inside their own engine runs.

namespace ardbt::core {

/// Which distributed algorithm to run.
enum class Method {
  kRdBatched,   ///< classic recursive doubling, one batched pass
  kRdPerRhs,    ///< classic recursive doubling, one pass per right-hand side
  kArd,         ///< accelerated: factor once, solve once
  kTransferRd,  ///< transfer-matrix ablation (numerically unstable at large N)
  kPcr,         ///< parallel cyclic reduction (factor/solve split), the
                ///< classic O(M^3 (N/P) log N) competitor
};

/// Short stable name ("rd", "rd-per-rhs", "ard").
std::string_view to_string(Method method);

/// Result of a driver call.
struct DriverResult {
  la::Matrix x;                ///< solution, shape of b
  mpsim::RunReport report;     ///< engine counters
  double factor_vtime = 0.0;   ///< modeled seconds in the factor phase
  double solve_vtime = 0.0;    ///< modeled seconds in the solve phase(s)
};

/// Solve T X = B on `nranks` simulated ranks with the given method.
DriverResult solve(Method method, const btds::BlockTridiag& sys, const la::Matrix& b, int nranks,
                   const ArdOptions& opts = {}, const mpsim::EngineOptions& engine = {});

/// Result of an ARD session (factor once, many solve batches).
struct SessionResult {
  std::vector<la::Matrix> x;        ///< one solution per batch
  mpsim::RunReport report;          ///< engine counters
  double factor_vtime = 0.0;        ///< modeled factor seconds
  std::vector<double> solve_vtimes; ///< modeled seconds per batch
  std::size_t storage_bytes = 0;    ///< factored state on rank 0
};

/// Factor once, then solve every batch in order — the incremental
/// right-hand-side arrival pattern (time stepping) that motivates ARD.
SessionResult ard_session(const btds::BlockTridiag& sys,
                          const std::vector<const la::Matrix*>& batches, int nranks,
                          const ArdOptions& opts = {}, const mpsim::EngineOptions& engine = {});

}  // namespace ardbt::core
