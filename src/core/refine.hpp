#pragma once

#include <vector>

#include "src/core/ard.hpp"

/// \file refine.hpp
/// Accuracy utilities on top of a factorization:
///
/// * iterative refinement — each step computes the true residual
///   r = B - T X (distributed apply, O(M^2 R N/P)) and applies one ARD
///   solve as the correction. Because an ARD solve is so much cheaper than
///   the factorization, refinement is nearly free relative to factoring
///   and drives the residual to machine precision even on the
///   ill-conditioned dial;
/// * a randomized condition estimate — power iteration on T^{-1} via
///   repeated solves, times ||T||_inf, giving an order-of-magnitude
///   kappa_inf(T) without forming anything dense.

namespace ardbt::core {

/// Tags used by the refinement/estimation collectives.
namespace refine_tags {
inline constexpr int kNorm = 96;
}

/// Outcome of solve_refined.
struct RefineResult {
  int steps = 0;                       ///< correction steps performed
  std::vector<double> residual_norms;  ///< ||B - T X||_F before each step and after the last
};

/// Collective. Solve T X = B with `f`, then apply up to `max_steps` rounds
/// of iterative refinement, stopping early when the residual norm drops
/// below `tol * ||B||_F`. Writes this rank's rows of `x`.
RefineResult solve_refined(mpsim::Comm& comm, const ArdFactorization& f,
                           const btds::BlockTridiag& sys, const btds::RowPartition& part,
                           const la::Matrix& b, la::Matrix& x, int max_steps = 3,
                           double tol = 1e-14);

/// Collective. Fully distributed variant: operator, right-hand side and
/// solution live as row slices; residuals are computed via halo exchange
/// (btds/halo.hpp). Returns the refined local solution slice — no rank
/// ever touches global state.
RefineResult solve_refined_local(mpsim::Comm& comm, const ArdFactorization& f,
                                 const btds::LocalBlockTridiag& sys,
                                 const btds::RowPartition& part, const la::Matrix& b_local,
                                 la::Matrix& x_local, int max_steps = 3, double tol = 1e-14);

/// Collective. Randomized estimate of kappa_inf(T) ~ ||T||_inf *
/// ||T^{-1}||, the latter from `iters` rounds of normalized power
/// iteration on T^{-1} (each round is one solve). An order-of-magnitude
/// diagnostic, not a certified bound.
double condition_estimate(mpsim::Comm& comm, const ArdFactorization& f,
                          const btds::BlockTridiag& sys, const btds::RowPartition& part,
                          int iters = 6, std::uint64_t seed = 12345);

}  // namespace ardbt::core
