#pragma once

#include "src/core/scan.hpp"
#include "src/la/lu.hpp"
#include "src/la/matrix.hpp"
#include "src/la/workspace.hpp"

/// \file twoport.hpp
/// The stable prefix operator of the production solver: Schur-complement
/// "two-port" reduction of a contiguous block-row segment.
///
/// For a segment of rows [l..h], eliminating its interior exactly yields
///
///   x_l = -P A_l x_{l-1} - Q C_h x_{h+1} + p
///   x_h = -R A_l x_{l-1} - S C_h x_{h+1} + q
///
/// where P, Q, R, S are the corner blocks of the segment's own inverse
/// (first/last block rows and columns) and (p, q) are the corresponding
/// blocks of T_seg^{-1} b_seg. Two adjacent segments merge by eliminating
/// the two interface unknowns — an associative O(M^3) operation, so the
/// cross-rank combination is a parallel prefix (recursive doubling).
///
/// Why this operator and not raw transfer matrices: for block-diagonally-
/// dominant systems every block of a two-port is bounded (norms of corner
/// blocks of inverses decay with distance), and the interface system
/// K = I - P_R A S_L C is a small perturbation of the identity — merges
/// are unconditionally well-conditioned. The transfer-matrix prefix, by
/// contrast, loses one digit per ~(lambda_1/lambda_M) growth ratio of its
/// modes (see transfer_rd.hpp, kept as an ablation). Both are "recursive
/// doubling" in the paper's sense — prefix computations with
/// O(M^3 (N/P + log P)) work — but only this one survives N in the
/// thousands.
///
/// Right-hand-side separation (the ARD acceleration): the merge of
/// (P,Q,R,S) is RHS-independent; the merge of (p, q) only needs four
/// cached M x M combinations:
///   X1 = Q_L C K^{-1},  X2 = R_R A,  X3 = S_L C K^{-1},  X4 = P_R A,
///   t  = p_R - X4 q_L,
///   p' = p_L - X1 t,    q' = q_R - X2 (q_L - X3 t).

namespace ardbt::core {

using la::index_t;
using la::Matrix;

/// RHS-independent part of a segment's boundary reduction.
struct TwoPort {
  Matrix P, Q, R, S;  ///< corner blocks of T_seg^{-1} (each M x M)
  Matrix a_first;     ///< A of the segment's first row (zero on row 0)
  Matrix c_last;      ///< C of the segment's last row (zero on row N-1)
};

/// RHS-dependent part: first/last blocks of T_seg^{-1} b_seg.
struct TwoPortVec {
  Matrix p, q;  ///< each M x R
};

/// Cached matrices of one merge event (see file comment).
struct TwoPortCache {
  Matrix x1, x2, x3, x4;
};

/// Merge two adjacent segments' matrix parts (`left` covers lower rows),
/// filling `cache` for later vector merges. Throws on a singular
/// interface system (cannot happen for block-diagonally-dominant input).
/// A non-null `ws` sources the merge temporaries (and the cached
/// right-division results) from the workspace arena.
TwoPort merge_twoport(const TwoPort& left, const TwoPort& right, TwoPortCache& cache,
                      mpsim::Comm& comm, la::Workspace* ws = nullptr);

/// Merge the vector parts of the same (left, right) pair. With a `ws` the
/// scratch and the result both come from the arena (the caller recycles
/// the result when consumed); results are bit-identical either way.
TwoPortVec merge_twoport_vec(const TwoPortCache& cache, const TwoPortVec& left,
                             const TwoPortVec& right, mpsim::Comm& comm,
                             la::Workspace* ws = nullptr);

/// CachedScan policy running the two-port prefix.
struct TwoPortOp {
  struct Context {
    index_t m = 0;                 ///< block size
    la::Workspace* ws = nullptr;   ///< arena for merge scratch / replay vectors
  };
  using Mat = TwoPort;
  using Vec = TwoPortVec;
  using Cache = TwoPortCache;

  static Mat merge_mat(const Context& ctx, const Mat& left, const Mat& right, Cache& cache,
                       mpsim::Comm& comm) {
    return merge_twoport(left, right, cache, comm, ctx.ws);
  }
  static Vec merge_vec(const Context& ctx, const Cache& cache, const Vec& left, const Vec& right,
                       mpsim::Comm& comm) {
    return merge_twoport_vec(cache, left, right, comm, ctx.ws);
  }
  /// CachedScan recycle hook: consumed replay vectors return their
  /// storage to the arena (no-op without one).
  static void recycle_vec(const Context& ctx, Vec&& v) {
    la::ws_release(ctx.ws, std::move(v.p));
    la::ws_release(ctx.ws, std::move(v.q));
  }
  static std::vector<std::byte> ser_mat(const Context& ctx, const Mat& m);
  static Mat des_mat(const Context& ctx, std::span<const std::byte> bytes);
  static std::vector<std::byte> ser_vec(const Context& ctx, const Vec& v);
  static Vec des_vec(const Context& ctx, std::span<const std::byte> bytes);
};

/// CachedScan policy for the *backward* two-port prefix: in a backward
/// scan "lower sequence position" means *higher* block rows, so the
/// row-space roles of the operands are swapped before merging.
struct TwoPortOpReversed : TwoPortOp {
  static Mat merge_mat(const Context& ctx, const Mat& left, const Mat& right, Cache& cache,
                       mpsim::Comm& comm) {
    return merge_twoport(right, left, cache, comm, ctx.ws);
  }
  static Vec merge_vec(const Context& ctx, const Cache& cache, const Vec& left, const Vec& right,
                       mpsim::Comm& comm) {
    return merge_twoport_vec(cache, right, left, comm, ctx.ws);
  }
};

}  // namespace ardbt::core
