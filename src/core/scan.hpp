#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "src/mpsim/collectives.hpp"
#include "src/mpsim/comm.hpp"

/// \file scan.hpp
/// Generic factor-once / replay-many cross-rank exclusive scan — the
/// mechanism behind the accelerated solver's O(R) win.
///
/// Many parallel solver recurrences combine with an associative operator
/// whose state splits into a *matrix part* (Theta(M^3) to merge,
/// independent of the right-hand sides) and a *vector part* (Theta(M^2 R)
/// to merge). CachedScan runs the hypercube exscan once over matrix parts,
/// recording per merge event exactly what later vector merges need; every
/// subsequent solve replays the same schedule exchanging only vector
/// parts.
///
/// The operator is supplied as a policy type:
///
///   struct Op {
///     struct Context { ... };              // shapes etc., both phases
///     using Mat = ...;                     // matrix part of the state
///     using Vec = ...;                     // vector part of the state
///     struct Cache { ... };                // per-merge-event cache
///     // Merge matrix parts; `left` covers lower sequence positions.
///     static Mat merge_mat(const Context&, const Mat& left, const Mat& right,
///                          Cache& cache, mpsim::Comm&);
///     // Merge vector parts of the same (left, right) pair.
///     static Vec merge_vec(const Context&, const Cache&, const Vec& left,
///                          const Vec& right, mpsim::Comm&);
///     static std::vector<std::byte> ser_mat(const Context&, const Mat&);
///     static Mat des_mat(const Context&, std::span<const std::byte>);
///     static std::vector<std::byte> ser_vec(const Context&, const Vec&);
///     // des_vec must infer the RHS width from the byte count — solves
///     // with different widths replay the same factored scan.
///     static Vec des_vec(const Context&, std::span<const std::byte>);
///     // Optional: reclaim a consumed vector part (e.g. return arena
///     // storage). Called by solve() the moment a Vec's value is dead.
///     static void recycle_vec(const Context&, Vec&&);
///   };
///
/// Direction::kBackward runs the scan over reversed rank order (for
/// sweeps that flow from the last block row to the first).

namespace ardbt::core {

enum class ScanDirection { kForward, kBackward };

template <typename Op>
class CachedScan {
 public:
  using Context = typename Op::Context;
  using Mat = typename Op::Mat;
  using Vec = typename Op::Vec;
  using Cache = typename Op::Cache;

  CachedScan() = default;

  /// Phase A: exscan over matrix parts. `seg` is this rank's segment
  /// total. Collective; `tag` must be unique per in-flight scan.
  static CachedScan factor(mpsim::Comm& comm, ScanDirection dir, Context ctx, Mat seg, int tag) {
    ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase,
                     dir == ScanDirection::kForward ? "scan.factor.fwd" : "scan.factor.bwd");
    CachedScan scan;
    scan.dir_ = dir;
    scan.ctx_ = ctx;
    const int size = comm.size();
    const int seq = seq_of(comm.rank(), size, dir);

    Mat partial = std::move(seg);
    std::optional<Mat> result;

    for (const mpsim::ScanStep& step : mpsim::exscan_schedule(seq, size)) {
      Round round;
      round.partner = rank_of(step.partner, size, dir);
      round.partner_is_lower = step.partner_is_lower;

      comm.send_bytes(round.partner, tag, Op::ser_mat(ctx, partial));
      const auto raw = comm.recv_bytes(round.partner, tag);
      Mat tmp = Op::des_mat(ctx, raw);

      if (step.partner_is_lower) {
        round.result_was_set = result.has_value();
        if (result) {
          round.cache_result.emplace();
          result = Op::merge_mat(ctx, tmp, *result, *round.cache_result, comm);
        }
        Mat merged = Op::merge_mat(ctx, tmp, partial, round.cache_partial, comm);
        partial = std::move(merged);
        if (!round.result_was_set) result = std::move(tmp);
      } else {
        partial = Op::merge_mat(ctx, partial, tmp, round.cache_partial, comm);
      }
      scan.rounds_.push_back(std::move(round));
    }
    scan.has_result_ = result.has_value();
    if (result) scan.result_mat_ = std::move(*result);
    return scan;
  }

  /// Phase B: replay with this rank's segment vector part. Returns the
  /// exclusive-prefix vector part for this rank, or nullopt on the
  /// sequence-first rank (which has no incoming prefix). Collective.
  std::optional<Vec> solve(mpsim::Comm& comm, Vec seg_vec, int tag) const {
    ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase,
                     dir_ == ScanDirection::kForward ? "scan.replay.fwd" : "scan.replay.bwd");
    Vec partial = std::move(seg_vec);
    std::optional<Vec> result;

    for (const Round& round : rounds_) {
      comm.send_bytes(round.partner, tag, Op::ser_vec(ctx_, partial));
      const auto raw = comm.recv_bytes(round.partner, tag);
      Vec tmp = Op::des_vec(ctx_, raw);

      if (round.partner_is_lower) {
        if (round.result_was_set) {
          Vec prev = std::move(*result);
          result = Op::merge_vec(ctx_, *round.cache_result, tmp, prev, comm);
          recycle(std::move(prev));
        }
        Vec merged = Op::merge_vec(ctx_, round.cache_partial, tmp, partial, comm);
        recycle(std::move(partial));
        partial = std::move(merged);
        if (!round.result_was_set) {
          result = std::move(tmp);
        } else {
          recycle(std::move(tmp));
        }
      } else {
        Vec merged = Op::merge_vec(ctx_, round.cache_partial, partial, tmp, comm);
        recycle(std::move(partial));
        recycle(std::move(tmp));
        partial = std::move(merged);
      }
    }
    recycle(std::move(partial));
    return result;
  }

  /// Whether this rank has a non-trivial exclusive prefix (false only for
  /// the sequence-first rank).
  bool has_incoming() const { return has_result_; }

  /// Matrix part of the exclusive prefix (valid when has_incoming()).
  const Mat& incoming_mat() const { return result_mat_; }

  const Context& context() const { return ctx_; }
  ScanDirection direction() const { return dir_; }
  std::size_t num_rounds() const { return rounds_.size(); }

 private:
  /// Hand a dead Vec back to the policy if it wants it (arena reuse);
  /// policies without a recycle_vec hook compile to a plain destructor.
  void recycle(Vec&& v) const {
    if constexpr (requires { Op::recycle_vec(ctx_, std::move(v)); }) {
      Op::recycle_vec(ctx_, std::move(v));
    }
  }

  struct Round {
    int partner = -1;
    bool partner_is_lower = false;
    bool result_was_set = false;
    Cache cache_partial{};
    std::optional<Cache> cache_result;
  };

  static int seq_of(int rank, int size, ScanDirection dir) {
    return dir == ScanDirection::kForward ? rank : size - 1 - rank;
  }
  static int rank_of(int seq, int size, ScanDirection dir) {
    return dir == ScanDirection::kForward ? seq : size - 1 - seq;
  }

  ScanDirection dir_ = ScanDirection::kForward;
  Context ctx_{};
  bool has_result_ = false;
  Mat result_mat_{};
  std::vector<Round> rounds_;
};

}  // namespace ardbt::core
