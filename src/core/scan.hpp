#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "src/mpsim/collectives.hpp"
#include "src/mpsim/comm.hpp"

/// \file scan.hpp
/// Generic factor-once / replay-many cross-rank exclusive scan — the
/// mechanism behind the accelerated solver's O(R) win.
///
/// Many parallel solver recurrences combine with an associative operator
/// whose state splits into a *matrix part* (Theta(M^3) to merge,
/// independent of the right-hand sides) and a *vector part* (Theta(M^2 R)
/// to merge). CachedScan runs the hypercube exscan once over matrix parts,
/// recording per merge event exactly what later vector merges need; every
/// subsequent solve replays the same schedule exchanging only vector
/// parts.
///
/// The operator is supplied as a policy type:
///
///   struct Op {
///     struct Context { ... };              // shapes etc., both phases
///     using Mat = ...;                     // matrix part of the state
///     using Vec = ...;                     // vector part of the state
///     struct Cache { ... };                // per-merge-event cache
///     // Merge matrix parts; `left` covers lower sequence positions.
///     static Mat merge_mat(const Context&, const Mat& left, const Mat& right,
///                          Cache& cache, mpsim::Comm&);
///     // Merge vector parts of the same (left, right) pair.
///     static Vec merge_vec(const Context&, const Cache&, const Vec& left,
///                          const Vec& right, mpsim::Comm&);
///     static std::vector<std::byte> ser_mat(const Context&, const Mat&);
///     static Mat des_mat(const Context&, std::span<const std::byte>);
///     static std::vector<std::byte> ser_vec(const Context&, const Vec&);
///     // des_vec must infer the RHS width from the byte count — solves
///     // with different widths replay the same factored scan.
///     static Vec des_vec(const Context&, std::span<const std::byte>);
///     // Optional: reclaim a consumed vector part (e.g. return arena
///     // storage). Called by solve() the moment a Vec's value is dead.
///     static void recycle_vec(const Context&, Vec&&);
///   };
///
/// Direction::kBackward runs the scan over reversed rank order (for
/// sweeps that flow from the last block row to the first).

namespace ardbt::core {

enum class ScanDirection { kForward, kBackward };

template <typename Op>
class CachedScan {
 public:
  using Context = typename Op::Context;
  using Mat = typename Op::Mat;
  using Vec = typename Op::Vec;
  using Cache = typename Op::Cache;

  CachedScan() = default;

  /// Phase A: exscan over matrix parts. `seg` is this rank's segment
  /// total. Collective. `tag` must be unique per in-flight scan — enforced
  /// through the rank's tag registry: a collision throws
  /// fault::TagCollisionError instead of silently cross-matching messages.
  static CachedScan factor(mpsim::Comm& comm, ScanDirection dir, Context ctx, Mat seg, int tag) {
    ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase,
                     dir == ScanDirection::kForward ? "scan.factor.fwd" : "scan.factor.bwd");
    mpsim::TagGuard guard(comm, tag);
    CachedScan scan;
    scan.dir_ = dir;
    scan.ctx_ = ctx;
    const int size = comm.size();
    const int seq = seq_of(comm.rank(), size, dir);

    Mat partial = std::move(seg);
    std::optional<Mat> result;

    for (const mpsim::ScanStep& step : mpsim::exscan_schedule(seq, size)) {
      Round round;
      round.partner = rank_of(step.partner, size, dir);
      round.partner_is_lower = step.partner_is_lower;

      comm.send_bytes(round.partner, tag, Op::ser_mat(ctx, partial));
      const auto raw = comm.recv_bytes(round.partner, tag);
      Mat tmp = Op::des_mat(ctx, raw);

      if (step.partner_is_lower) {
        round.result_was_set = result.has_value();
        if (result) {
          round.cache_result.emplace();
          result = Op::merge_mat(ctx, tmp, *result, *round.cache_result, comm);
        }
        Mat merged = Op::merge_mat(ctx, tmp, partial, round.cache_partial, comm);
        partial = std::move(merged);
        if (!round.result_was_set) result = std::move(tmp);
      } else {
        partial = Op::merge_mat(ctx, partial, tmp, round.cache_partial, comm);
      }
      scan.rounds_.push_back(std::move(round));
    }
    scan.has_result_ = result.has_value();
    if (result) scan.result_mat_ = std::move(*result);
    return scan;
  }

  /// Phase B: replay with this rank's segment vector part. Returns the
  /// exclusive-prefix vector part for this rank, or nullopt on the
  /// sequence-first rank (which has no incoming prefix). Collective.
  std::optional<Vec> solve(mpsim::Comm& comm, Vec seg_vec, int tag) const {
    ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase,
                     dir_ == ScanDirection::kForward ? "scan.replay.fwd" : "scan.replay.bwd");
    mpsim::TagGuard guard(comm, tag);
    Vec partial = std::move(seg_vec);
    std::optional<Vec> result;

    for (const Round& round : rounds_) {
      comm.send_bytes(round.partner, tag, Op::ser_vec(ctx_, partial));
      const auto raw = comm.recv_bytes(round.partner, tag);
      Vec tmp = Op::des_vec(ctx_, raw);

      if (round.partner_is_lower) {
        if (round.result_was_set) {
          Vec prev = std::move(*result);
          result = Op::merge_vec(ctx_, *round.cache_result, tmp, prev, comm);
          recycle(std::move(prev));
        }
        Vec merged = Op::merge_vec(ctx_, round.cache_partial, tmp, partial, comm);
        recycle(std::move(partial));
        partial = std::move(merged);
        if (!round.result_was_set) {
          result = std::move(tmp);
        } else {
          recycle(std::move(tmp));
        }
      } else {
        Vec merged = Op::merge_vec(ctx_, round.cache_partial, partial, tmp, comm);
        recycle(std::move(partial));
        recycle(std::move(tmp));
        partial = std::move(merged);
      }
    }
    recycle(std::move(partial));
    return result;
  }

  /// Stepwise replay of the factored schedule — the latency-hiding
  /// primitive behind pipelined panel solves. One Replay is one in-flight
  /// scan: construct it with the segment vector part, `begin()` posts the
  /// round-0 send, and each `finish_round()` receives one round, merges
  /// the half the *next* send depends on first, puts that send on the wire,
  /// and only then folds the exclusive-prefix half — so the next message
  /// is in flight while the rest of the round's compute (and anything else
  /// the caller interleaves between rounds) runs. The merge operands are
  /// identical to the batch solve()'s, so results are bit-identical; only
  /// virtual waits shrink. The tag is held in the rank's registry for the
  /// lifetime of the Replay (collision = fault::TagCollisionError).
  class Replay {
   public:
    Replay() = default;

    /// Registers `tag`; does NOT communicate yet — call begin().
    Replay(const CachedScan& scan, mpsim::Comm& comm, Vec seg_vec, int tag)
        : scan_(&scan), tag_(tag), guard_(comm, tag), partial_(std::move(seg_vec)) {}

    /// Post the round-0 send (collective with the peer Replays driving the
    /// same factored scan). Deferring this to an explicit call lets an
    /// unpipelined driver reproduce the serial schedule exactly.
    void begin(mpsim::Comm& comm) { post_send(comm); }

    bool done() const { return scan_ == nullptr || finished_ == scan_->rounds_.size(); }

    /// True when the next round's message is already visible on the
    /// virtual clock (never consumes it). Deterministic under ChargedFlops
    /// timing — see Comm::recv_ready — so schedulers may branch on it.
    bool ready(mpsim::Comm& comm) const {
      return !done() && comm.recv_ready(scan_->rounds_[finished_].partner, tag_);
    }

    /// Receive one round and run its merges, next-send-first.
    void finish_round(mpsim::Comm& comm) {
      assert(scan_ != nullptr && sent_ > finished_ && finished_ < scan_->rounds_.size());
      const Round& round = scan_->rounds_[finished_];
      const auto raw = comm.recv_bytes(round.partner, tag_);
      Vec tmp = Op::des_vec(scan_->ctx_, raw);
      if (round.partner_is_lower) {
        // The next round's outgoing partial needs only the partial merge —
        // do it first and post the send, then fold the exclusive prefix
        // while that message is in flight. Same operand pairs as the batch
        // path, so the values (and the replayed caches) are identical.
        Vec merged = Op::merge_vec(scan_->ctx_, round.cache_partial, tmp, partial_, comm);
        scan_->recycle(std::move(partial_));
        partial_ = std::move(merged);
        ++finished_;
        post_send(comm);
        if (round.result_was_set) {
          Vec prev = std::move(*result_);
          result_ = Op::merge_vec(scan_->ctx_, *round.cache_result, tmp, prev, comm);
          scan_->recycle(std::move(prev));
          scan_->recycle(std::move(tmp));
        } else {
          result_ = std::move(tmp);
        }
      } else {
        Vec merged = Op::merge_vec(scan_->ctx_, round.cache_partial, partial_, tmp, comm);
        scan_->recycle(std::move(partial_));
        scan_->recycle(std::move(tmp));
        partial_ = std::move(merged);
        ++finished_;
        post_send(comm);
      }
    }

    /// All rounds done: recycle the final partial, release the tag, and
    /// hand back the exclusive-prefix vector part (nullopt on the
    /// sequence-first rank).
    std::optional<Vec> take_result() && {
      assert(done());
      if (scan_ != nullptr) scan_->recycle(std::move(partial_));
      guard_.release();
      return std::move(result_);
    }

   private:
    void post_send(mpsim::Comm& comm) {
      if (sent_ < scan_->rounds_.size() && sent_ <= finished_) {
        comm.send_bytes(scan_->rounds_[sent_].partner, tag_,
                        Op::ser_vec(scan_->ctx_, partial_));
        ++sent_;
      }
    }

    const CachedScan* scan_ = nullptr;
    int tag_ = -1;
    mpsim::TagGuard guard_;
    Vec partial_{};
    std::optional<Vec> result_;
    std::size_t sent_ = 0;
    std::size_t finished_ = 0;
  };

  /// Stepwise factor — the matrix-part counterpart of Replay, used to run
  /// two scans (forward and backward) round-interleaved so each one's
  /// merge compute hides the other's in-flight message. Construction posts
  /// the round-0 send immediately; finish() seals the CachedScan.
  class Factoring {
   public:
    Factoring(mpsim::Comm& comm, ScanDirection dir, Context ctx, Mat seg, int tag)
        : tag_(tag), guard_(comm, tag), partial_(std::move(seg)) {
      scan_.dir_ = dir;
      scan_.ctx_ = ctx;
      const int size = comm.size();
      const int seq = seq_of(comm.rank(), size, dir);
      for (const mpsim::ScanStep& step : mpsim::exscan_schedule(seq, size)) {
        Round round;
        round.partner = rank_of(step.partner, size, dir);
        round.partner_is_lower = step.partner_is_lower;
        scan_.rounds_.push_back(std::move(round));
      }
      post_send(comm);
    }

    bool done() const { return finished_ == scan_.rounds_.size(); }

    bool ready(mpsim::Comm& comm) const {
      return !done() && comm.recv_ready(scan_.rounds_[finished_].partner, tag_);
    }

    /// Receive one round; merge next-send-first exactly as Replay does.
    void finish_round(mpsim::Comm& comm) {
      assert(sent_ > finished_ && finished_ < scan_.rounds_.size());
      Round& round = scan_.rounds_[finished_];
      const auto raw = comm.recv_bytes(round.partner, tag_);
      Mat tmp = Op::des_mat(scan_.ctx_, raw);
      if (round.partner_is_lower) {
        round.result_was_set = result_.has_value();
        Mat merged = Op::merge_mat(scan_.ctx_, tmp, partial_, round.cache_partial, comm);
        partial_ = std::move(merged);
        ++finished_;
        post_send(comm);
        if (round.result_was_set) {
          round.cache_result.emplace();
          Mat prev = std::move(*result_);
          result_ = Op::merge_mat(scan_.ctx_, tmp, prev, *round.cache_result, comm);
        } else {
          result_ = std::move(tmp);
        }
      } else {
        partial_ = Op::merge_mat(scan_.ctx_, partial_, tmp, round.cache_partial, comm);
        ++finished_;
        post_send(comm);
      }
    }

    /// Seal and return the factored scan; releases the tag.
    CachedScan finish() && {
      assert(done());
      scan_.has_result_ = result_.has_value();
      if (result_) scan_.result_mat_ = std::move(*result_);
      guard_.release();
      return std::move(scan_);
    }

   private:
    void post_send(mpsim::Comm& comm) {
      if (sent_ < scan_.rounds_.size() && sent_ <= finished_) {
        comm.send_bytes(scan_.rounds_[sent_].partner, tag_,
                        Op::ser_mat(scan_.ctx_, partial_));
        ++sent_;
      }
    }

    int tag_ = -1;
    mpsim::TagGuard guard_;
    CachedScan scan_;
    Mat partial_{};
    std::optional<Mat> result_;
    std::size_t sent_ = 0;
    std::size_t finished_ = 0;
  };

  /// Whether this rank has a non-trivial exclusive prefix (false only for
  /// the sequence-first rank).
  bool has_incoming() const { return has_result_; }

  /// Matrix part of the exclusive prefix (valid when has_incoming()).
  const Mat& incoming_mat() const { return result_mat_; }

  const Context& context() const { return ctx_; }
  ScanDirection direction() const { return dir_; }
  std::size_t num_rounds() const { return rounds_.size(); }

 private:
  /// Hand a dead Vec back to the policy if it wants it (arena reuse);
  /// policies without a recycle_vec hook compile to a plain destructor.
  void recycle(Vec&& v) const {
    if constexpr (requires { Op::recycle_vec(ctx_, std::move(v)); }) {
      Op::recycle_vec(ctx_, std::move(v));
    }
  }

  struct Round {
    int partner = -1;
    bool partner_is_lower = false;
    bool result_was_set = false;
    Cache cache_partial{};
    std::optional<Cache> cache_result;
  };

  static int seq_of(int rank, int size, ScanDirection dir) {
    return dir == ScanDirection::kForward ? rank : size - 1 - rank;
  }
  static int rank_of(int seq, int size, ScanDirection dir) {
    return dir == ScanDirection::kForward ? seq : size - 1 - seq;
  }

  ScanDirection dir_ = ScanDirection::kForward;
  Context ctx_{};
  bool has_result_ = false;
  Mat result_mat_{};
  std::vector<Round> rounds_;
};

}  // namespace ardbt::core
