#pragma once

#include <vector>

#include "src/btds/block_tridiag.hpp"
#include "src/btds/partition.hpp"
#include "src/core/ops_affine.hpp"
#include "src/core/scan.hpp"
#include "src/la/lu.hpp"
#include "src/mpsim/comm.hpp"

/// \file transfer_rd.hpp
/// Recursive doubling over raw 2M x 2M *transfer matrices* — the textbook
/// block generalization of Stone's algorithm, kept as a numerical-accuracy
/// ablation (experiments T3 and B-abl-scaling).
///
/// The block-LU pivots follow the matrix Riccati recurrence
/// U_i = D_i - A_i U_{i-1}^{-1} C_{i-1}, linearized by the homogeneous
/// pair [Z; Y] and the transfer matrices of transfer.hpp; the triangular
/// sweeps are affine recurrences parallelized with CachedScan<AffineOp>.
/// The factor/solve split mirrors ArdFactorization exactly, so this class
/// demonstrates the *same* O(R) acceleration — only the prefix operator
/// differs.
///
/// Why it is an ablation and not the production solver: recovering
/// U = C Z Y^{-1} loses accuracy at the rate the pair's columns align
/// with the most dominant mode, about (lambda_1 / lambda_M)^i after i
/// rows — harmless for scalar systems (M = 1, a single growing mode),
/// fatal for block systems with spread block spectra (for 2-D Poisson
/// blocks, roughly one decimal digit lost every three block rows). The
/// production solver (ard.hpp) replaces the transfer operator with the
/// boundary-reduced two-port operator, whose merges stay well-conditioned
/// at any N. Both are prefix computations with identical complexity.

namespace ardbt::core {

/// Tag space used by this solver.
namespace transfer_tags {
inline constexpr int kBoundaryU = 81;
inline constexpr int kFwdFactor = 82;
inline constexpr int kBwdFactor = 83;
inline constexpr int kFwdSolve = 84;
inline constexpr int kBwdSolve = 85;
}  // namespace transfer_tags

/// Knobs for the transfer-matrix solver.
struct TransferRdOptions {
  /// Power-of-two renormalization of prefix products — required to keep
  /// intermediates finite for N beyond a few dozen rows; disable only to
  /// demonstrate overflow (part of the scaling ablation).
  bool rescale = true;
};

/// Factor-once / solve-many transfer-matrix recursive doubling.
class TransferRdFactorization {
 public:
  TransferRdFactorization() = default;

  /// Collective. Throws std::runtime_error on singular pivots or pair
  /// denominators (the latter is the instability manifesting).
  static TransferRdFactorization factor(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                                        const btds::RowPartition& part,
                                        const TransferRdOptions& opts = {});

  /// Collective. Writes this rank's block rows of `x` (preallocated).
  void solve(mpsim::Comm& comm, const la::Matrix& b, la::Matrix& x) const;

  la::index_t num_blocks() const { return n_; }
  la::index_t block_size() const { return m_; }

 private:
  int rank_ = 0;
  la::index_t n_ = 0;
  la::index_t m_ = 0;
  la::index_t lo_ = 0;
  la::index_t hi_ = 0;

  std::vector<la::LuFactors> u_lu_;  // LU(U_i) per local row
  std::vector<la::Matrix> phi_;      // Phi_i = A_i U_{i-1}^{-1} (zero on row 0)
  std::vector<la::Matrix> g_;        // G_i = U_i^{-1} C_i (zero on row N-1)
  CachedScan<AffineOp> fwd_;
  CachedScan<AffineOp> bwd_;
};

}  // namespace ardbt::core
