#pragma once

#include "src/core/flops.hpp"
#include "src/mpsim/costmodel.hpp"

/// \file perfmodel.hpp
/// Analytic runtime predictions: flops at a calibrated rate plus alpha-beta
/// communication. Used to (a) sanity-check the virtual-time engine on
/// strong-scaling curves (F2) and (b) extrapolate beyond the host's core
/// count, standing in for the paper's cluster (DESIGN.md substitutions).

namespace ardbt::core {

/// Machine-parameterized closed-form model of the solvers.
class PerfModel {
 public:
  explicit PerfModel(mpsim::CostModel machine) : machine_(machine) {}

  const mpsim::CostModel& machine() const { return machine_; }

  /// Seconds for the ARD factor phase.
  double ard_factor_seconds(la::index_t n, la::index_t m, int p) const {
    return flops::ard_factor(n, m, p) / machine_.flop_rate +
           flops::ard_factor_messages(p) * machine_.alpha +
           flops::ard_factor_bytes(m, p) * machine_.beta;
  }

  /// Seconds for one ARD solve of R right-hand sides.
  double ard_solve_seconds(la::index_t n, la::index_t m, la::index_t r, int p) const {
    return flops::ard_solve(n, m, r, p) / machine_.flop_rate +
           flops::ard_solve_messages(p) * machine_.alpha +
           flops::ard_solve_bytes(m, r, p) * machine_.beta;
  }

  /// Seconds for classic RD with all R right-hand sides batched.
  double rd_batched_seconds(la::index_t n, la::index_t m, la::index_t r, int p) const {
    return ard_factor_seconds(n, m, p) + ard_solve_seconds(n, m, r, p);
  }

  /// Seconds for classic RD run once per right-hand side.
  double rd_per_rhs_seconds(la::index_t n, la::index_t m, la::index_t r, int p) const {
    return static_cast<double>(r) * (ard_factor_seconds(n, m, p) + ard_solve_seconds(n, m, 1, p));
  }

  /// Seconds for the sequential block Thomas baseline (factor + R-column
  /// solve; always P = 1).
  double thomas_seconds(la::index_t n, la::index_t m, la::index_t r) const;

  /// Measure this host's effective flop rate with a short dense-kernel
  /// loop at a representative block size, returning a CostModel whose
  /// flop_rate matches the host (alpha/beta taken from `base`).
  static mpsim::CostModel calibrate(mpsim::CostModel base, la::index_t block_size = 32);

 private:
  mpsim::CostModel machine_;
};

}  // namespace ardbt::core
