#include "src/core/rd.hpp"

#include <cassert>

namespace ardbt::core {

void rd_solve(mpsim::Comm& comm, const btds::BlockTridiag& sys, const btds::RowPartition& part,
              const la::Matrix& b, la::Matrix& x, const ArdOptions& opts) {
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "rd.solve");
  const ArdFactorization f = ArdFactorization::factor(comm, sys, part, opts);
  f.solve(comm, b, x);
}

void rd_solve_per_rhs(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                      const btds::RowPartition& part, const la::Matrix& b, la::Matrix& x,
                      const ArdOptions& opts) {
  assert(x.rows() == b.rows() && x.cols() == b.cols());
  const la::index_t rows = b.rows();
  const la::index_t lo = part.begin(comm.rank()) * sys.block_size();
  const la::index_t hi = part.end(comm.rank()) * sys.block_size();

  la::Matrix bj(rows, 1);
  la::Matrix xj(rows, 1);
  for (la::index_t j = 0; j < b.cols(); ++j) {
    for (la::index_t i = lo; i < hi; ++i) bj(i, 0) = b(i, j);
    rd_solve(comm, sys, part, bj, xj, opts);
    for (la::index_t i = lo; i < hi; ++i) x(i, j) = xj(i, 0);
  }
}

}  // namespace ardbt::core
