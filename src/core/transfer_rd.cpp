#include "src/core/transfer_rd.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "src/core/serde.hpp"
#include "src/core/transfer.hpp"
#include "src/la/gemm.hpp"

namespace ardbt::core {
namespace {

using la::ConstMatrixView;
using la::gemm_flops;
using la::lu_solve_flops;
using la::Matrix;
using la::MatrixView;

la::MatrixView local_block(Matrix& buf, la::index_t k, la::index_t m) {
  return buf.block(k * m, 0, m, buf.cols());
}
la::ConstMatrixView local_block(const Matrix& buf, la::index_t k, la::index_t m) {
  return buf.block(k * m, 0, m, buf.cols());
}

}  // namespace

TransferRdFactorization TransferRdFactorization::factor(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                                          const btds::RowPartition& part,
                                          const TransferRdOptions& opts) {
  TransferRdFactorization f;
  f.rank_ = comm.rank();
  f.n_ = sys.num_blocks();
  f.m_ = sys.block_size();
  f.lo_ = part.begin(comm.rank());
  f.hi_ = part.end(comm.rank());
  assert(part.nranks() == comm.size());
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "transfer_rd.factor");
  if (f.hi_ - f.lo_ < 1) {
    throw std::runtime_error("transfer RD: every rank needs at least one block row (N >= P)");
  }

  const la::index_t m = f.m_;
  const la::index_t two_m = 2 * m;
  const la::index_t nloc = f.hi_ - f.lo_;
  const auto uz = [](la::index_t k) { return static_cast<std::size_t>(k); };

  // --- 1. Element transfer matrices and the local segment prefix product.
  std::vector<Matrix> thetas(uz(nloc));
  Matrix seg = Matrix::identity(two_m);
  for (la::index_t k = 0; k < nloc; ++k) {
    const la::index_t i = f.lo_ + k;
    const Matrix* a = (i > 0) ? &sys.lower(i) : nullptr;
    la::LuFactors c_lu;
    const bool has_c = i + 1 < f.n_;
    if (has_c) {
      c_lu = la::lu_factor(sys.upper(i).view());
      if (!c_lu.ok()) {
        throw std::runtime_error("transfer RD: singular super-diagonal block C_" + std::to_string(i));
      }
      comm.charge_flops(la::lu_factor_flops(m) + lu_solve_flops(m, a ? 2 * m : m));
    }
    thetas[uz(k)] = build_theta(sys.diag(i), a, has_c ? &c_lu : nullptr);

    Matrix next(two_m, two_m);
    la::gemm(1.0, thetas[uz(k)].view(), seg.view(), 0.0, next.view());
    comm.charge_flops(gemm_flops(two_m, two_m, two_m));
    seg = std::move(next);
    if (opts.rescale) rescale_pow2(seg.view());
  }

  // --- 2. Hypercube exscan of the segment products (the log P term).
  auto op = [&](const Matrix& left, const Matrix& right) {
    Matrix out(two_m, two_m);
    la::gemm(1.0, right.view(), left.view(), 0.0, out.view());
    comm.charge_flops(gemm_flops(two_m, two_m, two_m));
    if (opts.rescale) rescale_pow2(out.view());
    return out;
  };
  auto ser = [](const Matrix& mat) { return ser_matrix(mat); };
  auto des = [two_m](std::span<const std::byte> bytes) {
    return des_matrix(bytes, two_m, two_m);
  };
  std::optional<Matrix> incoming = mpsim::exscan(comm, std::move(seg), op, ser, des);

  // Entry pair [Z; Y] at the segment boundary: the global initial pair is
  // [I; 0], so the entry pair is the first M columns of the incoming
  // prefix matrix (identity for rank 0).
  Matrix pair(two_m, m);
  if (incoming) {
    la::copy(incoming->block(0, 0, two_m, m), pair.view());
  } else {
    for (la::index_t i = 0; i < m; ++i) pair(i, i) = 1.0;
  }

  // --- 3. Propagate the pair, recover pivots U_i, build per-row caches.
  f.u_lu_.resize(uz(nloc));
  f.phi_.resize(uz(nloc));
  f.g_.resize(uz(nloc));
  Matrix u_last(m, m);  // kept for the boundary exchange
  for (la::index_t k = 0; k < nloc; ++k) {
    const la::index_t i = f.lo_ + k;
    Matrix next(two_m, m);
    la::gemm(1.0, thetas[uz(k)].view(), pair.view(), 0.0, next.view());
    comm.charge_flops(gemm_flops(two_m, m, two_m));
    pair = std::move(next);
    if (opts.rescale) rescale_pow2(pair.view());

    const ConstMatrixView z = pair.block(0, 0, m, m);
    const ConstMatrixView y = pair.block(m, 0, m, m);
    la::LuFactors y_lu = la::lu_factor(y);
    comm.charge_flops(la::lu_factor_flops(m));
    if (!y_lu.ok()) {
      throw std::runtime_error("transfer RD: singular pair denominator at block row " + std::to_string(i));
    }
    // U_i = C_i Z_i Y_i^{-1} (ghost C = I on the last row).
    Matrix v;
    if (i + 1 < f.n_) {
      v = la::matmul(sys.upper(i).view(), z);
      comm.charge_flops(gemm_flops(m, m, m));
    } else {
      v = la::to_matrix(z);
    }
    Matrix u = la::right_divide(v.view(), y_lu);
    comm.charge_flops(lu_solve_flops(m, m));

    f.u_lu_[uz(k)] = la::lu_factor(u.view());
    comm.charge_flops(la::lu_factor_flops(m));
    if (!f.u_lu_[uz(k)].ok()) {
      throw std::runtime_error("transfer RD: singular block-LU pivot at block row " + std::to_string(i));
    }
    if (i + 1 < f.n_) {
      f.g_[uz(k)] = la::lu_solve(f.u_lu_[uz(k)], sys.upper(i).view());
      comm.charge_flops(lu_solve_flops(m, m));
    } else {
      f.g_[uz(k)] = Matrix(m, m);  // G_{N-1} = 0
    }
    if (k == nloc - 1) u_last = std::move(u);
  }

  // Boundary exchange: rank r+1 needs U_{hi_r - 1} for its first Phi.
  if (f.rank_ + 1 < comm.size()) {
    comm.send_bytes(f.rank_ + 1, transfer_tags::kBoundaryU, ser_matrix(u_last));
  }
  la::LuFactors prev_u_lu;
  if (f.rank_ > 0) {
    const auto raw = comm.recv_bytes(f.rank_ - 1, transfer_tags::kBoundaryU);
    prev_u_lu = la::lu_factor(des_matrix(raw, m, m));
    comm.charge_flops(la::lu_factor_flops(m));
    if (!prev_u_lu.ok()) throw std::runtime_error("transfer RD: singular boundary pivot");
  }
  for (la::index_t k = 0; k < nloc; ++k) {
    const la::index_t i = f.lo_ + k;
    if (i == 0) {
      f.phi_[uz(k)] = Matrix(m, m);  // Phi_0 = 0
    } else {
      const la::LuFactors& ulu = (k == 0) ? prev_u_lu : f.u_lu_[uz(k - 1)];
      f.phi_[uz(k)] = la::right_divide(sys.lower(i).view(), ulu);
      comm.charge_flops(lu_solve_flops(m, m));
    }
  }

  // --- 4. Matrix half of the forward / backward affine scans.
  Matrix fseg = Matrix::identity(m);
  for (la::index_t k = 0; k < nloc; ++k) {
    Matrix next(m, m);
    la::gemm(-1.0, f.phi_[uz(k)].view(), fseg.view(), 0.0, next.view());
    comm.charge_flops(gemm_flops(m, m, m));
    fseg = std::move(next);
  }
  f.fwd_ = CachedScan<AffineOp>::factor(comm, ScanDirection::kForward, AffineOp::Context{m},
                                        std::move(fseg), transfer_tags::kFwdFactor);

  Matrix bseg = Matrix::identity(m);
  for (la::index_t k = nloc - 1; k >= 0; --k) {
    Matrix next(m, m);
    la::gemm(-1.0, f.g_[uz(k)].view(), bseg.view(), 0.0, next.view());
    comm.charge_flops(gemm_flops(m, m, m));
    bseg = std::move(next);
  }
  f.bwd_ = CachedScan<AffineOp>::factor(comm, ScanDirection::kBackward, AffineOp::Context{m},
                                        std::move(bseg), transfer_tags::kBwdFactor);
  return f;
}

void TransferRdFactorization::solve(mpsim::Comm& comm, const la::Matrix& b, la::Matrix& x) const {
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "transfer_rd.solve");
  const la::index_t m = m_;
  const la::index_t nloc = hi_ - lo_;
  const la::index_t r = b.cols();
  assert(b.rows() == n_ * m_ && x.rows() == b.rows() && x.cols() == r);
  const auto uz = [](la::index_t k) { return static_cast<std::size_t>(k); };

  // Forward sweep, pass 1 (zero entry value): w_k = b_i - Phi_i w_{k-1}.
  Matrix w(nloc * m, r);
  for (la::index_t k = 0; k < nloc; ++k) {
    const la::index_t i = lo_ + k;
    MatrixView wk = local_block(w, k, m);
    la::copy(btds::block_row(b, i, m), wk);
    if (k > 0) {
      la::gemm(-1.0, phi_[uz(k)].view(), local_block(std::as_const(w), k - 1, m), 1.0, wk);
      comm.charge_flops(gemm_flops(m, r, m));
    }
  }
  // Cross-rank replay; incoming y at the segment entry.
  const std::optional<Matrix> y_in_opt =
      fwd_.solve(comm, la::to_matrix(local_block(std::as_const(w), nloc - 1, m)),
                 transfer_tags::kFwdSolve);
  const Matrix y_in = y_in_opt ? *y_in_opt : Matrix(m, r);  // y_{-1} = 0
  // Pass 2 with the true entry value (the recurrence must read the
  // previous y, so the diagonal solves run in a separate loop below).
  for (la::index_t k = 0; k < nloc; ++k) {
    const la::index_t i = lo_ + k;
    MatrixView wk = local_block(w, k, m);
    la::copy(btds::block_row(b, i, m), wk);
    const ConstMatrixView prev =
        (k == 0) ? y_in.view() : local_block(std::as_const(w), k - 1, m);
    la::gemm(-1.0, phi_[uz(k)].view(), prev, 1.0, wk);
    comm.charge_flops(gemm_flops(m, r, m));
  }
  // Diagonal solves z = U^{-1} y, in place.
  for (la::index_t k = 0; k < nloc; ++k) {
    la::lu_solve_inplace(u_lu_[uz(k)], local_block(w, k, m));
    comm.charge_flops(lu_solve_flops(m, r));
  }

  // Backward sweep, pass 1 (zero entry from below): s_k = z_k - G_i s_{k+1}.
  Matrix s(nloc * m, r);
  for (la::index_t k = nloc - 1; k >= 0; --k) {
    MatrixView sk = local_block(s, k, m);
    la::copy(local_block(std::as_const(w), k, m), sk);
    if (k < nloc - 1) {
      la::gemm(-1.0, g_[uz(k)].view(), local_block(std::as_const(s), k + 1, m), 1.0, sk);
      comm.charge_flops(gemm_flops(m, r, m));
    }
  }
  const std::optional<Matrix> x_in_opt = bwd_.solve(
      comm, la::to_matrix(local_block(std::as_const(s), 0, m)), transfer_tags::kBwdSolve);
  const Matrix x_in = x_in_opt ? *x_in_opt : Matrix(m, r);  // x_N = 0
  // Pass 2: x_i = z_i - G_i x_{i+1}, writing straight into the output.
  for (la::index_t k = nloc - 1; k >= 0; --k) {
    const la::index_t i = lo_ + k;
    MatrixView xi = btds::block_row(x, i, m);
    la::copy(local_block(std::as_const(w), k, m), xi);
    const ConstMatrixView below = (k == nloc - 1) ? x_in.view() : btds::block_row(x, i + 1, m);
    la::gemm(-1.0, g_[uz(k)].view(), below, 1.0, xi);
    comm.charge_flops(gemm_flops(m, r, m));
  }
}

}  // namespace ardbt::core
