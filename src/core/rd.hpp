#pragma once

#include "src/core/ard.hpp"

/// \file rd.hpp
/// Classic recursive doubling — the baseline the accelerated algorithm is
/// measured against. Classic RD has no notion of a persistent
/// factorization: every solve re-runs the full Theta(M^3 (N/P + log P))
/// transfer-matrix prefix. Internally it executes the same phases as ARD
/// (that is precisely the point: ARD does not change the arithmetic of a
/// single solve, it removes its repetition), so correctness is shared and
/// benchmarks compare pure algorithmic policy:
///
///   rd_solve          — one factor + one batched solve (RD given all R
///                       right-hand sides up front);
///   rd_solve_per_rhs  — R separate single-RHS recursive-doubling solves,
///                       the natural baseline when right-hand sides arrive
///                       one at a time (time stepping, iterative methods);
///                       the paper's O(R) claim is against this.

namespace ardbt::core {

/// Collective. Solve T X = B by classic recursive doubling with all
/// right-hand sides batched into one pass. Writes this rank's block rows
/// of `x` (preallocated, shape of `b`).
void rd_solve(mpsim::Comm& comm, const btds::BlockTridiag& sys, const btds::RowPartition& part,
              const la::Matrix& b, la::Matrix& x, const ArdOptions& opts = {});

/// Collective. Solve T X = B as R independent single-RHS recursive
/// doubling solves (factor phase repeated R times).
void rd_solve_per_rhs(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                      const btds::RowPartition& part, const la::Matrix& b, la::Matrix& x,
                      const ArdOptions& opts = {});

}  // namespace ardbt::core
