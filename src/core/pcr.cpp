#include "src/core/pcr.hpp"

#include <algorithm>
#include <cmath>
#include <cassert>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/smallblock/smallblock.hpp"
#include "src/par/pool.hpp"

namespace ardbt::core {
namespace {

using btds::RowPartition;
using la::index_t;
using la::Matrix;

/// Presence pattern of the level-entry couplings (see header): at step s,
/// row j still couples downward iff j >= s and upward iff j + s <= N-1.
bool has_a(index_t j, index_t s) { return j >= s; }
bool has_c(index_t j, index_t s, index_t n) { return j + s <= n - 1; }

/// Global rows owned by [lo, hi) that the rank owning [plo, phi) needs at
/// step s (its -s and +s shifted windows, clipped to the domain). The two
/// windows can only overlap inside [plo, phi) itself, so no duplicates.
std::vector<index_t> rows_for_window(index_t plo, index_t phi, index_t s, index_t lo, index_t hi,
                                     index_t n) {
  std::vector<index_t> rows;
  const auto add = [&](index_t a, index_t b) {
    a = std::max({a, lo, index_t{0}});
    b = std::min({b, hi, n});
    for (index_t i = a; i < b; ++i) rows.push_back(i);
  };
  add(plo - s, phi - s);
  add(plo + s, phi + s);
  return rows;
}

/// One deterministic message per (sender, receiver) pair: the sender packs
/// `bytes_for_row` for every row the receiver's windows cover; the
/// receiver unpacks with the identical row list derived from the
/// partition.
template <typename PackFn, typename UnpackFn>
void exchange_rows(mpsim::Comm& comm, const RowPartition& part, index_t s, index_t n, int tag,
                   PackFn&& pack, UnpackFn&& unpack) {
  const int p = comm.size();
  const int me = comm.rank();
  const index_t lo = part.begin(me);
  const index_t hi = part.end(me);

  for (int peer = 0; peer < p; ++peer) {
    if (peer == me) continue;
    const auto rows = rows_for_window(part.begin(peer), part.end(peer), s, lo, hi, n);
    if (rows.empty()) continue;
    std::vector<std::byte> buffer;
    for (index_t i : rows) pack(i, buffer);
    comm.send_bytes(peer, tag, buffer);
  }
  for (int peer = 0; peer < p; ++peer) {
    if (peer == me) continue;
    const auto rows = rows_for_window(lo, hi, s, part.begin(peer), part.end(peer), n);
    if (rows.empty()) continue;
    const std::vector<std::byte> raw = comm.recv_bytes(peer, tag);
    std::span<const std::byte> cursor(raw);
    for (index_t i : rows) unpack(i, cursor);
    assert(cursor.empty());
  }
}

void append_matrix(std::vector<std::byte>& buffer, const Matrix& m) {
  const std::size_t old = buffer.size();
  buffer.resize(old + static_cast<std::size_t>(m.size()) * sizeof(double));
  std::memcpy(buffer.data() + old, m.data().data(),
              static_cast<std::size_t>(m.size()) * sizeof(double));
}

Matrix take_matrix(std::span<const std::byte>& cursor, index_t rows, index_t cols) {
  Matrix m(rows, cols);
  const std::size_t bytes = static_cast<std::size_t>(m.size()) * sizeof(double);
  assert(cursor.size() >= bytes);
  std::memcpy(m.data().data(), cursor.data(), bytes);
  cursor = cursor.subspan(bytes);
  return m;
}

}  // namespace

template <typename SysView>
PcrFactorization PcrFactorization::factor_impl(mpsim::Comm& comm, const SysView& sys,
                                               const RowPartition& part) {
  PcrFactorization f;
  f.n_ = sys.num_blocks();
  f.m_ = sys.block_size();
  f.lo_ = part.begin(comm.rank());
  f.hi_ = part.end(comm.rank());
  f.part_ = part;
  const index_t n = f.n_;
  const index_t m = f.m_;
  const index_t nloc = f.hi_ - f.lo_;
  if (nloc < 1) throw std::runtime_error("PCR: every rank needs at least one block row");
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "pcr.factor");
  const auto uz = [](index_t k) { return static_cast<std::size_t>(k); };

  // Working copies of this rank's current-level blocks.
  std::vector<Matrix> a_cur(uz(nloc)), d_cur(uz(nloc)), c_cur(uz(nloc));
  for (index_t k = 0; k < nloc; ++k) {
    const index_t i = f.lo_ + k;
    d_cur[uz(k)] = sys.diag(i);
    if (i > 0) a_cur[uz(k)] = sys.lower(i);
    if (i + 1 < n) c_cur[uz(k)] = sys.upper(i);
  }

  namespace sb = la::smallblock;
  for (index_t s = 1; s < n; s *= 2) {
    Level level;
    level.step = s;
    level.rows.resize(uz(nloc));

    // Factor every current diagonal in one batched sweep, then fold the
    // per-row bookkeeping (flop charges, breakdown check, pivot stats) in
    // the seed's row order: identical totals within the same compute
    // region, identical first failure.
    std::vector<la::ConstMatrixView> d_views;
    d_views.reserve(uz(nloc));
    for (index_t k = 0; k < nloc; ++k) d_views.push_back(d_cur[uz(k)].view());
    std::vector<la::LuFactors> lus;
    sb::batched_lu_factor(m, d_views, lus);
    for (index_t k = 0; k < nloc; ++k) {
      const index_t j = f.lo_ + k;
      la::LuFactors& lu = lus[uz(k)];
      comm.charge_flops(la::lu_factor_flops(m));
      if (!lu.ok()) {
        throw fault::SingularPivotError(fault::ErrorCode::kSingularPivot,
                                        "core::pcr_factor(step " + std::to_string(s) + ")", j,
                                        static_cast<std::int64_t>(lu.info - 1), lu.growth);
      }
      f.diag_.observe(lu.min_pivot_abs, lu.max_pivot_abs, j);
      level.rows[uz(k)] =
          RowCache{.d_lu = std::move(lu), .a = a_cur[uz(k)], .c = c_cur[uz(k)]};
    }

    // Local half-updates ha = D^{-1} A, hc = D^{-1} C, solved as one
    // batch against the just-cached level LUs.
    std::vector<Matrix> ha(uz(nloc)), hc(uz(nloc));
    std::vector<sb::LuSolveItem> half_items;
    half_items.reserve(2 * uz(nloc));
    double nsolves = 0.0;
    for (index_t k = 0; k < nloc; ++k) {
      const index_t j = f.lo_ + k;
      const la::LuFactors& lu = level.rows[uz(k)].d_lu;
      if (has_a(j, s)) {
        ha[uz(k)] = la::to_matrix(a_cur[uz(k)].view());
        half_items.push_back({&lu, ha[uz(k)].view()});
        nsolves += 1.0;
      }
      if (has_c(j, s, n)) {
        hc[uz(k)] = la::to_matrix(c_cur[uz(k)].view());
        half_items.push_back({&lu, hc[uz(k)].view()});
        nsolves += 1.0;
      }
    }
    sb::batched_lu_solve(m, half_items);
    comm.charge_flops(nsolves * la::lu_solve_flops(m, m));

    // Fetch remote neighbours' half-updates.
    std::map<index_t, std::pair<Matrix, Matrix>> remote;  // j -> (ha_j, hc_j)
    exchange_rows(
        comm, part, s, n, pcr_tags::kFactor,
        [&](index_t j, std::vector<std::byte>& buffer) {
          const index_t k = j - f.lo_;
          if (has_a(j, s)) append_matrix(buffer, ha[uz(k)]);
          if (has_c(j, s, n)) append_matrix(buffer, hc[uz(k)]);
        },
        [&](index_t j, std::span<const std::byte>& cursor) {
          std::pair<Matrix, Matrix> entry;
          if (has_a(j, s)) entry.first = take_matrix(cursor, m, m);
          if (has_c(j, s, n)) entry.second = take_matrix(cursor, m, m);
          remote.emplace(j, std::move(entry));
        });

    const auto get_ha = [&](index_t j) -> const Matrix& {
      if (j >= f.lo_ && j < f.hi_) return ha[uz(j - f.lo_)];
      return remote.at(j).first;
    };
    const auto get_hc = [&](index_t j) -> const Matrix& {
      if (j >= f.lo_ && j < f.hi_) return hc[uz(j - f.lo_)];
      return remote.at(j).second;
    };

    // Level update (reads the cached level-entry coefficients), swept as
    // two batched gemm families: the beta=1 diagonal updates and the
    // beta=0 off-diagonal rebuilds. Every item writes its own output
    // except one row's two diagonal updates, which stay in the seed's
    // a-then-c order — per-element operation order is unchanged.
    std::vector<Matrix> d_new(uz(nloc)), a_new(uz(nloc)), c_new(uz(nloc));
    std::vector<sb::GemmItem> d_items, off_items;
    double ngemms = 0.0;
    for (index_t k = 0; k < nloc; ++k) {
      const index_t i = f.lo_ + k;
      const RowCache& row = level.rows[uz(k)];
      d_new[uz(k)] = d_cur[uz(k)];
      if (has_a(i, s)) {
        d_items.push_back({row.a.view(), get_hc(i - s).view(), d_new[uz(k)].view()});
        ngemms += 1.0;
        if (has_a(i, 2 * s)) {
          a_new[uz(k)] = Matrix(m, m);
          off_items.push_back({row.a.view(), get_ha(i - s).view(), a_new[uz(k)].view()});
          ngemms += 1.0;
        }
      }
      if (has_c(i, s, n)) {
        d_items.push_back({row.c.view(), get_ha(i + s).view(), d_new[uz(k)].view()});
        ngemms += 1.0;
        if (has_c(i, 2 * s, n)) {
          c_new[uz(k)] = Matrix(m, m);
          off_items.push_back({row.c.view(), get_hc(i + s).view(), c_new[uz(k)].view()});
          ngemms += 1.0;
        }
      }
    }
    sb::batched_gemm(m, -1.0, d_items, 1.0);
    sb::batched_gemm(m, -1.0, off_items, 0.0);
    comm.charge_flops(ngemms * la::gemm_flops(m, m, m));
    for (index_t k = 0; k < nloc; ++k) {
      d_cur[uz(k)] = std::move(d_new[uz(k)]);
      a_cur[uz(k)] = std::move(a_new[uz(k)]);
      c_cur[uz(k)] = std::move(c_new[uz(k)]);
    }
    f.levels_.push_back(std::move(level));
  }

  // Fully decoupled: factor the final diagonals in one batched sweep.
  std::vector<la::ConstMatrixView> final_views;
  final_views.reserve(uz(nloc));
  for (index_t k = 0; k < nloc; ++k) final_views.push_back(d_cur[uz(k)].view());
  sb::batched_lu_factor(m, final_views, f.final_lu_);
  for (index_t k = 0; k < nloc; ++k) {
    comm.charge_flops(la::lu_factor_flops(m));
    const la::LuFactors& lu = f.final_lu_[uz(k)];
    if (!lu.ok()) {
      throw fault::SingularPivotError(fault::ErrorCode::kSingularPivot,
                                      "core::pcr_factor(decoupled)", f.lo_ + k,
                                      static_cast<std::int64_t>(lu.info - 1), lu.growth);
    }
    f.diag_.observe(lu.min_pivot_abs, lu.max_pivot_abs, f.lo_ + k);
  }
  return f;
}

PcrFactorization PcrFactorization::factor(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                                          const RowPartition& part) {
  return factor_impl(comm, sys, part);
}

PcrFactorization PcrFactorization::factor(mpsim::Comm& comm, const btds::LocalBlockTridiag& sys,
                                          const RowPartition& part) {
  return factor_impl(comm, sys, part);
}

void PcrFactorization::solve(mpsim::Comm& comm, const la::Matrix& b, la::Matrix& x) const {
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "pcr.solve");
  const index_t n = n_;
  const index_t m = m_;
  const index_t nloc = hi_ - lo_;
  const index_t r = b.cols();
  assert(b.rows() == n * m && x.rows() == b.rows() && x.cols() == r);
  const auto uz = [](index_t k) { return static_cast<std::size_t>(k); };

  Matrix b_cur(nloc * m, r);
  la::copy(b.block(lo_ * m, 0, nloc * m, r), b_cur.view());

  // RHS columns never couple in PCR's solve recurrences, so each level's
  // block-row loops run per column panel, one panel per pool lane. Flop
  // charges are hoisted out of the parallel regions onto the rank thread:
  // totals (and hence the virtual clock) are independent of the pool size.
  par::Pool* pool = comm.pool();

  for (const Level& level : levels_) {
    const index_t s = level.step;
    // h_j = D_j^{-1} b_j with the cached level LU.
    Matrix h(nloc * m, r);
    par::parallel_for(
        pool, 0, r,
        [&](std::int64_t c0, std::int64_t c1) {
          const index_t w = static_cast<index_t>(c1 - c0);
          for (index_t k = 0; k < nloc; ++k) {
            la::MatrixView hk = h.block(k * m, static_cast<index_t>(c0), m, w);
            la::copy(b_cur.block(k * m, static_cast<index_t>(c0), m, w), hk);
            la::lu_solve_inplace(level.rows[uz(k)].d_lu, hk);
          }
        },
        "pcr.h");
    comm.charge_flops(static_cast<double>(nloc) * la::lu_solve_flops(m, r));
    std::map<index_t, Matrix> remote;
    exchange_rows(
        comm, part_, s, n, pcr_tags::kSolve,
        [&](index_t j, std::vector<std::byte>& buffer) {
          append_matrix(buffer, la::to_matrix(h.block((j - lo_) * m, 0, m, r)));
        },
        [&](index_t j, std::span<const std::byte>& cursor) {
          remote.emplace(j, take_matrix(cursor, m, r));
        });
    const auto get_h = [&](index_t j) -> la::ConstMatrixView {
      if (j >= lo_ && j < hi_) return h.block((j - lo_) * m, 0, m, r);
      return remote.at(j).view();
    };

    double ngemms = 0.0;
    for (index_t k = 0; k < nloc; ++k) {
      const index_t i = lo_ + k;
      if (has_a(i, s)) ngemms += 1.0;
      if (has_c(i, s, n)) ngemms += 1.0;
    }
    par::parallel_for(
        pool, 0, r,
        [&](std::int64_t c0, std::int64_t c1) {
          const index_t w = static_cast<index_t>(c1 - c0);
          for (index_t k = 0; k < nloc; ++k) {
            const index_t i = lo_ + k;
            la::MatrixView bk = b_cur.block(k * m, static_cast<index_t>(c0), m, w);
            if (has_a(i, s)) {
              la::gemm(-1.0, level.rows[uz(k)].a.view(),
                       get_h(i - s).block(0, static_cast<index_t>(c0), m, w), 1.0, bk);
            }
            if (has_c(i, s, n)) {
              la::gemm(-1.0, level.rows[uz(k)].c.view(),
                       get_h(i + s).block(0, static_cast<index_t>(c0), m, w), 1.0, bk);
            }
          }
        },
        "pcr.update");
    comm.charge_flops(ngemms * la::gemm_flops(m, r, m));
  }

  par::parallel_for(
      pool, 0, r,
      [&](std::int64_t c0, std::int64_t c1) {
        const index_t w = static_cast<index_t>(c1 - c0);
        for (index_t k = 0; k < nloc; ++k) {
          la::MatrixView xk = x.block((lo_ + k) * m, static_cast<index_t>(c0), m, w);
          la::copy(b_cur.block(k * m, static_cast<index_t>(c0), m, w), xk);
          la::lu_solve_inplace(final_lu_[uz(k)], xk);
        }
      },
      "pcr.final");
  comm.charge_flops(static_cast<double>(nloc) * la::lu_solve_flops(m, r));
}

std::size_t PcrFactorization::storage_bytes() const {
  std::size_t doubles = 0;
  for (const Level& level : levels_) {
    for (const RowCache& row : level.rows) {
      doubles += static_cast<std::size_t>(row.d_lu.lu.size() + row.a.size() + row.c.size());
    }
  }
  for (const auto& lu : final_lu_) doubles += static_cast<std::size_t>(lu.lu.size());
  return doubles * sizeof(double);
}

double PcrFactorization::factor_flops(index_t n, index_t m, int p) {
  // Per row per level: one LU (2/3), two M-RHS solves (4), up to four
  // gemms (8) => ~12.7 M^3; ceil(log2 N) levels.
  const double m3 = static_cast<double>(m) * static_cast<double>(m) * static_cast<double>(m);
  double levels = 0;
  for (index_t s = 1; s < n; s *= 2) levels += 1;
  return std::ceil(static_cast<double>(n) / p) * (2.0 / 3.0 + 4.0 + 8.0) * m3 * levels;
}

double PcrFactorization::solve_flops(index_t n, index_t m, index_t r, int p) {
  // Per row per level: one solve (2 M^2 R) + two gemms (4 M^2 R), plus the
  // final decoupled solves.
  const double m2r = static_cast<double>(m) * static_cast<double>(m) * static_cast<double>(r);
  double levels = 0;
  for (index_t s = 1; s < n; s *= 2) levels += 1;
  return std::ceil(static_cast<double>(n) / p) * m2r * (6.0 * levels + 2.0);
}

}  // namespace ardbt::core
