#pragma once

#include <cmath>

#include "src/la/types.hpp"
#include "src/obs/cost_model.hpp"

/// \file flops.hpp
/// Closed-form work and communication counts mirroring the kernels the
/// solvers actually call (experiment T1). All counts are the *per-rank
/// critical path*: local terms use ceil(N/P) rows, cross-rank terms use
/// ceil(log2 P) hypercube rounds. Cross-checked against the runtime flop
/// counters (Comm::charge_flops) in tests.

namespace ardbt::core::flops {

using la::index_t;

/// ceil(log2 p), the hypercube round count (0 for p = 1).
inline double log2_rounds(int p) {
  double rounds = 0;
  for (int v = 1; v < p; v <<= 1) rounds += 1;
  return rounds;
}

/// ceil(N/P), local rows on the busiest rank.
inline double rows_per_rank(index_t n, int p) {
  return std::ceil(static_cast<double>(n) / static_cast<double>(p));
}

/// ARD factor phase flops (phase 1). The breakdown mirrors
/// ArdFactorization::factor (the two-port formulation):
///   per row : two block-Thomas factorizations (2 x 14/3 M^3) plus the
///             2M-column corner solve (12 M^3) ~ 21.3 M^3
///   per round: two scans x <= 2 two-port merges, each merge ~13 gemms +
///             LU + two right-divides ~ 31 M^3  =>  <= 124 M^3
inline double ard_factor(index_t n, index_t m, int p) {
  const double m3 = static_cast<double>(m) * static_cast<double>(m) * static_cast<double>(m);
  const double per_row = (2.0 * 14.0 / 3.0 + 12.0) * m3;
  const double per_round = 2.0 * 2.0 * 31.0 * m3;
  return rows_per_rank(n, p) * per_row + log2_rounds(p) * per_round;
}

/// ARD solve phase flops (phase 2) for R right-hand sides: two local
/// Thomas solves (12 M^2 R per row; only one when P = 1, where the
/// segment-vector pass is skipped) plus <= 2 scans x 2 merges x 4 gemms
/// per round (32 M^2 R) and the two boundary corrections.
inline double ard_solve(index_t n, index_t m, index_t r, int p) {
  const double m2r = static_cast<double>(m) * static_cast<double>(m) * static_cast<double>(r);
  const double per_row = (p == 1 ? 6.0 : 12.0) * m2r;
  return rows_per_rank(n, p) * per_row + log2_rounds(p) * 32.0 * m2r + 4.0 * m2r;
}

/// Classic RD, all R right-hand sides batched into one pass.
inline double rd_batched(index_t n, index_t m, index_t r, int p) {
  return ard_factor(n, m, p) + ard_solve(n, m, r, p);
}

/// Classic RD applied once per right-hand side (the paper's baseline).
inline double rd_per_rhs(index_t n, index_t m, index_t r, int p) {
  return static_cast<double>(r) * (ard_factor(n, m, p) + ard_solve(n, m, 1, p));
}

/// ARD amortized over R right-hand sides (one factor + one batched solve).
inline double ard_amortized(index_t n, index_t m, index_t r, int p) {
  return ard_factor(n, m, p) + ard_solve(n, m, r, p);
}

/// Predicted ARD-over-RD speedup for R right-hand sides (the F1 curve):
/// approaches R for small R and saturates near factor/solve-per-rhs ~ 4M.
inline double predicted_speedup(index_t n, index_t m, index_t r, int p) {
  return rd_per_rhs(n, m, r, p) / ard_amortized(n, m, r, p);
}

/// Factor-phase bytes sent per rank: two scans exchanging a six-matrix
/// two-port (6 M^2 doubles) per round.
inline double ard_factor_bytes(index_t m, int p) {
  const double m2 = static_cast<double>(m) * static_cast<double>(m);
  return 8.0 * log2_rounds(p) * 2.0 * 6.0 * m2;
}

/// Solve-phase bytes sent per rank for R right-hand sides: two scans
/// exchanging a (p, q) pair (2 M R doubles) per round.
inline double ard_solve_bytes(index_t m, index_t r, int p) {
  return 8.0 * log2_rounds(p) * 2.0 * 2.0 * static_cast<double>(m) * static_cast<double>(r);
}

/// Factor-phase message count per rank (two scans, one send per round).
inline double ard_factor_messages(int p) { return 2.0 * log2_rounds(p); }

/// Solve-phase message count per rank.
inline double ard_solve_messages(int p) { return 2.0 * log2_rounds(p); }

/// Workload terms of the ARD factor phase for the cost-model oracle
/// (obs::CostModel::predict / judge): the same counts as ard_factor /
/// ard_factor_messages / ard_factor_bytes, bundled.
inline obs::PhaseTerms ard_factor_terms(index_t n, index_t m, int p) {
  return {ard_factor(n, m, p), ard_factor_messages(p), ard_factor_bytes(m, p)};
}

/// Workload terms of one ARD solve batch with R right-hand sides.
inline obs::PhaseTerms ard_solve_terms(index_t n, index_t m, index_t r, int p) {
  return {ard_solve(n, m, r, p), ard_solve_messages(p), ard_solve_bytes(m, r, p)};
}

/// Classic batched RD does factor-equivalent and solve-equivalent work in
/// one pass: the sum of both phases' terms.
inline obs::PhaseTerms rd_batched_terms(index_t n, index_t m, index_t r, int p) {
  const obs::PhaseTerms f = ard_factor_terms(n, m, p);
  const obs::PhaseTerms s = ard_solve_terms(n, m, r, p);
  return {f.flops + s.flops, f.messages + s.messages, f.bytes + s.bytes};
}

/// Per-RHS RD repeats the full pass once per right-hand side.
inline obs::PhaseTerms rd_per_rhs_terms(index_t n, index_t m, index_t r, int p) {
  const obs::PhaseTerms one = rd_batched_terms(n, m, 1, p);
  const double rr = static_cast<double>(r);
  return {rr * one.flops, rr * one.messages, rr * one.bytes};
}

}  // namespace ardbt::core::flops
