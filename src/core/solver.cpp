#include "src/core/solver.hpp"

#include <cassert>
#include <stdexcept>

#include "src/core/pcr.hpp"
#include "src/core/rd.hpp"
#include "src/core/transfer_rd.hpp"
#include "src/mpsim/collectives.hpp"

namespace ardbt::core {

std::string_view to_string(Method method) {
  switch (method) {
    case Method::kRdBatched:
      return "rd";
    case Method::kRdPerRhs:
      return "rd-per-rhs";
    case Method::kArd:
      return "ard";
    case Method::kTransferRd:
      return "transfer-rd";
    case Method::kPcr:
      return "pcr";
  }
  return "unknown";
}

DriverResult solve(Method method, const btds::BlockTridiag& sys, const la::Matrix& b, int nranks,
                   const ArdOptions& opts, const mpsim::EngineOptions& engine) {
  DriverResult result;
  result.x.resize(b.rows(), b.cols());
  const btds::RowPartition part(sys.num_blocks(), nranks);

  result.report = mpsim::run(
      nranks,
      [&](mpsim::Comm& comm) {
        mpsim::barrier(comm);
        const double t0 = comm.vtime();
        switch (method) {
          case Method::kRdBatched: {
            ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "driver.solve");
            rd_solve(comm, sys, part, b, result.x, opts);
            break;
          }
          case Method::kRdPerRhs: {
            ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "driver.solve");
            rd_solve_per_rhs(comm, sys, part, b, result.x, opts);
            break;
          }
          case Method::kArd: {
            auto factor_span = comm.trace_scope(obs::SpanKind::kPhase, "driver.factor");
            const ArdFactorization f = ArdFactorization::factor(comm, sys, part, opts);
            mpsim::barrier(comm);
            factor_span.close();
            if (comm.rank() == 0) result.factor_vtime = comm.vtime() - t0;
            const double t1 = comm.vtime();
            auto solve_span = comm.trace_scope(obs::SpanKind::kPhase, "driver.solve");
            f.solve(comm, b, result.x);
            mpsim::barrier(comm);
            solve_span.close();
            if (comm.rank() == 0) result.solve_vtime = comm.vtime() - t1;
            return;
          }
          case Method::kPcr: {
            auto factor_span = comm.trace_scope(obs::SpanKind::kPhase, "driver.factor");
            const PcrFactorization f = PcrFactorization::factor(comm, sys, part);
            mpsim::barrier(comm);
            factor_span.close();
            if (comm.rank() == 0) result.factor_vtime = comm.vtime() - t0;
            const double t1 = comm.vtime();
            auto solve_span = comm.trace_scope(obs::SpanKind::kPhase, "driver.solve");
            f.solve(comm, b, result.x);
            mpsim::barrier(comm);
            solve_span.close();
            if (comm.rank() == 0) result.solve_vtime = comm.vtime() - t1;
            return;
          }
          case Method::kTransferRd: {
            const TransferRdOptions topts{.rescale = opts.rescale};
            auto factor_span = comm.trace_scope(obs::SpanKind::kPhase, "driver.factor");
            const TransferRdFactorization f =
                TransferRdFactorization::factor(comm, sys, part, topts);
            mpsim::barrier(comm);
            factor_span.close();
            if (comm.rank() == 0) result.factor_vtime = comm.vtime() - t0;
            const double t1 = comm.vtime();
            auto solve_span = comm.trace_scope(obs::SpanKind::kPhase, "driver.solve");
            f.solve(comm, b, result.x);
            mpsim::barrier(comm);
            solve_span.close();
            if (comm.rank() == 0) result.solve_vtime = comm.vtime() - t1;
            return;
          }
        }
        mpsim::barrier(comm);
        if (comm.rank() == 0) result.solve_vtime = comm.vtime() - t0;
      },
      engine);
  return result;
}

SessionResult ard_session(const btds::BlockTridiag& sys,
                          const std::vector<const la::Matrix*>& batches, int nranks,
                          const ArdOptions& opts, const mpsim::EngineOptions& engine) {
  SessionResult result;
  result.x.reserve(batches.size());
  for (const la::Matrix* batch : batches) {
    if (batch == nullptr) throw std::invalid_argument("ard_session: null batch");
    result.x.emplace_back(batch->rows(), batch->cols());
  }
  result.solve_vtimes.assign(batches.size(), 0.0);
  const btds::RowPartition part(sys.num_blocks(), nranks);

  result.report = mpsim::run(
      nranks,
      [&](mpsim::Comm& comm) {
        mpsim::barrier(comm);
        const double t0 = comm.vtime();
        auto factor_span = comm.trace_scope(obs::SpanKind::kPhase, "driver.factor");
        const ArdFactorization f = ArdFactorization::factor(comm, sys, part, opts);
        mpsim::barrier(comm);
        factor_span.close();
        if (comm.rank() == 0) {
          result.factor_vtime = comm.vtime() - t0;
          result.storage_bytes = f.storage_bytes();
        }
        for (std::size_t s = 0; s < batches.size(); ++s) {
          const double t1 = comm.vtime();
          auto solve_span = comm.trace_scope(obs::SpanKind::kPhase, "driver.solve");
          f.solve(comm, *batches[s], result.x[s]);
          mpsim::barrier(comm);
          solve_span.close();
          if (comm.rank() == 0) result.solve_vtimes[s] = comm.vtime() - t1;
        }
      },
      engine);
  return result;
}

}  // namespace ardbt::core
