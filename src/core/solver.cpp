#include "src/core/solver.hpp"

#include <cassert>
#include <stdexcept>

#include "src/core/rd.hpp"
#include "src/mpsim/collectives.hpp"

namespace ardbt::core {

std::string_view to_string(Method method) {
  switch (method) {
    case Method::kRdBatched:
      return "rd";
    case Method::kRdPerRhs:
      return "rd-per-rhs";
    case Method::kArd:
      return "ard";
    case Method::kTransferRd:
      return "transfer-rd";
    case Method::kPcr:
      return "pcr";
  }
  return "unknown";
}

Session::Session(Method method, const btds::BlockTridiag& sys, int nranks,
                 const ArdOptions& opts, const mpsim::EngineOptions& engine)
    : method_(method),
      sys_(&sys),
      nranks_(nranks),
      opts_(opts),
      engine_(engine),
      part_(sys.num_blocks(), nranks) {
  if (nranks <= 0) throw std::invalid_argument("Session: nranks must be positive");
}

void Session::fold_report(const mpsim::RunReport& run) {
  if (!have_report_) {
    report_ = run;
    have_report_ = true;
    return;
  }
  assert(run.ranks.size() == report_.ranks.size());
  for (std::size_t r = 0; r < run.ranks.size(); ++r) {
    mpsim::RankStats& acc = report_.ranks[r];
    const mpsim::RankStats& s = run.ranks[r];
    acc.msgs_sent += s.msgs_sent;
    acc.bytes_sent += s.bytes_sent;
    acc.msgs_received += s.msgs_received;
    acc.bytes_received += s.bytes_received;
    acc.flops_charged += s.flops_charged;
    acc.cpu_seconds += s.cpu_seconds;
    // Each run's clock starts at the session's cursor, so the latest
    // final value IS the cumulative session time; waits restart at zero
    // per run and therefore sum.
    acc.virtual_time = s.virtual_time;
    acc.virtual_wait += s.virtual_wait;
  }
  report_.wall_seconds += run.wall_seconds;
}

mpsim::RunReport Session::run_engine(const mpsim::RankFn& fn) {
  engine_.vtime_origin = vtime_cursor_;
  mpsim::RunReport run = mpsim::run(nranks_, fn, engine_);
  vtime_cursor_ = run.max_virtual_time();
  fold_report(run);
  return run;
}

void Session::factor() {
  if (factored_) return;
  switch (method_) {
    case Method::kRdBatched:
    case Method::kRdPerRhs:
      // Classic RD has no right-hand-side-independent phase to hoist;
      // every solve runs the full pass.
      factored_ = true;
      return;
    case Method::kArd:
      ard_.resize(static_cast<std::size_t>(nranks_));
      break;
    case Method::kPcr:
      pcr_.resize(static_cast<std::size_t>(nranks_));
      break;
    case Method::kTransferRd:
      trd_.resize(static_cast<std::size_t>(nranks_));
      break;
  }
  double vtime = 0.0;
  std::size_t bytes = 0;
  run_engine([&](mpsim::Comm& comm) {
    mpsim::barrier(comm);
    const double t0 = comm.vtime();
    auto span = comm.trace_scope(obs::SpanKind::kPhase, "driver.factor");
    const std::size_t r = static_cast<std::size_t>(comm.rank());
    switch (method_) {
      case Method::kArd:
        ard_[r] = ArdFactorization::factor(comm, *sys_, part_, opts_);
        break;
      case Method::kPcr:
        pcr_[r] = PcrFactorization::factor(comm, *sys_, part_);
        break;
      case Method::kTransferRd: {
        const TransferRdOptions topts{.rescale = opts_.rescale};
        trd_[r] = TransferRdFactorization::factor(comm, *sys_, part_, topts);
        break;
      }
      default:
        break;
    }
    mpsim::barrier(comm);
    span.close();
    if (comm.rank() == 0) {
      vtime = comm.vtime() - t0;
      if (method_ == Method::kArd) bytes = ard_[r].storage_bytes();
      if (method_ == Method::kPcr) bytes = pcr_[r].storage_bytes();
    }
  });
  factor_vtime_ = vtime;
  storage_bytes_ = bytes;
  factored_ = true;
}

la::Matrix Session::solve(const la::Matrix& b) {
  if (b.rows() != sys_->num_blocks() * sys_->block_size()) {
    throw std::invalid_argument("Session::solve: b has wrong row count");
  }
  factor();
  la::Matrix x(b.rows(), b.cols());
  double vtime = 0.0;
  run_engine([&](mpsim::Comm& comm) {
    mpsim::barrier(comm);
    const double t0 = comm.vtime();
    auto span = comm.trace_scope(obs::SpanKind::kPhase, "driver.solve");
    const std::size_t r = static_cast<std::size_t>(comm.rank());
    switch (method_) {
      case Method::kRdBatched:
        rd_solve(comm, *sys_, part_, b, x, opts_);
        break;
      case Method::kRdPerRhs:
        rd_solve_per_rhs(comm, *sys_, part_, b, x, opts_);
        break;
      case Method::kArd:
        ard_[r].solve(comm, b, x);
        break;
      case Method::kPcr:
        pcr_[r].solve(comm, b, x);
        break;
      case Method::kTransferRd:
        trd_[r].solve(comm, b, x);
        break;
    }
    mpsim::barrier(comm);
    span.close();
    if (comm.rank() == 0) vtime = comm.vtime() - t0;
  });
  solve_vtimes_.push_back(vtime);
  return x;
}

DriverResult solve(Method method, const btds::BlockTridiag& sys, const la::Matrix& b, int nranks,
                   const ArdOptions& opts, const mpsim::EngineOptions& engine) {
  Session session(method, sys, nranks, opts, engine);
  session.factor();
  DriverResult result;
  result.x = session.solve(b);
  result.report = session.report();
  result.factor_vtime = session.factor_vtime();
  result.solve_vtime = session.solve_vtimes().back();
  return result;
}

SessionResult ard_session(const btds::BlockTridiag& sys,
                          const std::vector<const la::Matrix*>& batches, int nranks,
                          const ArdOptions& opts, const mpsim::EngineOptions& engine) {
  for (const la::Matrix* batch : batches) {
    if (batch == nullptr) throw std::invalid_argument("ard_session: null batch");
  }
  Session session(Method::kArd, sys, nranks, opts, engine);
  session.factor();
  SessionResult result;
  result.x.reserve(batches.size());
  for (const la::Matrix* batch : batches) result.x.push_back(session.solve(*batch));
  result.report = session.report();
  result.factor_vtime = session.factor_vtime();
  result.solve_vtimes = session.solve_vtimes();
  result.storage_bytes = session.storage_bytes();
  return result;
}

}  // namespace ardbt::core
