#include "src/core/solver.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/btds/spmv.hpp"
#include "src/core/rd.hpp"
#include "src/core/refine.hpp"
#include "src/mpsim/collectives.hpp"
#include "src/mpsim/obs_bridge.hpp"
#include "src/obs/live/postmortem.hpp"
#include "src/obs/metrics.hpp"

namespace ardbt::core {

namespace {
/// A breakdown-flagged solve whose refined residual still exceeds this is
/// escalated to the banded-LU fallback under BreakdownPolicy::kFallback.
constexpr double kFallbackResidualTol = 1e-10;
}  // namespace

std::string_view to_string(Method method) {
  switch (method) {
    case Method::kRdBatched:
      return "rd";
    case Method::kRdPerRhs:
      return "rd-per-rhs";
    case Method::kArd:
      return "ard";
    case Method::kTransferRd:
      return "transfer-rd";
    case Method::kPcr:
      return "pcr";
  }
  return "unknown";
}

namespace {
/// Preconditions checked before any member construction (RowPartition
/// asserts on malformed input, so validation cannot wait for the body).
std::shared_ptr<const btds::BlockTridiag> checked_system(
    std::shared_ptr<const btds::BlockTridiag> sys, int nranks) {
  if (sys == nullptr) {
    throw fault::InvalidArgumentError("core::Session", "system must not be null");
  }
  if (nranks <= 0) {
    throw fault::InvalidArgumentError("core::Session", "nranks must be positive");
  }
  return sys;
}

/// Non-owning alias: shares no control block, so the Session borrows
/// exactly as the reference constructors document.
std::shared_ptr<const btds::BlockTridiag> borrow(const btds::BlockTridiag& sys) {
  return std::shared_ptr<const btds::BlockTridiag>(std::shared_ptr<const btds::BlockTridiag>(),
                                                   &sys);
}
}  // namespace

Session::Session(Method method, std::shared_ptr<const btds::BlockTridiag> sys, int nranks,
                 SessionConfig config)
    : method_(method),
      sys_(checked_system(std::move(sys), nranks)),
      nranks_(nranks),
      opts_(config.ard),
      engine_(config.engine),
      part_(sys_->num_blocks(), nranks) {
  if (config.telemetry.any()) set_telemetry(config.telemetry);
}

Session::Session(Method method, const btds::BlockTridiag& sys, int nranks, SessionConfig config)
    : Session(method, borrow(sys), nranks, std::move(config)) {}

Session::Session(Method method, const btds::BlockTridiag& sys, int nranks, const ArdOptions& opts,
                 const mpsim::EngineOptions& engine)
    : Session(method, borrow(sys), nranks, SessionConfig{.ard = opts, .engine = engine}) {}

void Session::fold_report(const mpsim::RunReport& run) {
  if (!have_report_) {
    report_ = run;
    have_report_ = true;
    return;
  }
  assert(run.ranks.size() == report_.ranks.size());
  for (std::size_t r = 0; r < run.ranks.size(); ++r) {
    mpsim::RankStats& acc = report_.ranks[r];
    const mpsim::RankStats& s = run.ranks[r];
    acc.msgs_sent += s.msgs_sent;
    acc.bytes_sent += s.bytes_sent;
    acc.msgs_received += s.msgs_received;
    acc.bytes_received += s.bytes_received;
    acc.flops_charged += s.flops_charged;
    acc.cpu_seconds += s.cpu_seconds;
    // Each run's clock starts at the session's cursor, so the latest
    // final value IS the cumulative session time; waits restart at zero
    // per run and therefore sum.
    acc.virtual_time = s.virtual_time;
    acc.virtual_wait += s.virtual_wait;
  }
  report_.wall_seconds += run.wall_seconds;
}

void Session::set_telemetry(const obs::live::Telemetry& telemetry) {
  telemetry_ = telemetry;
  // The engine wires per-rank recorder channels exactly like tracer
  // buffers; a null/disabled recorder keeps every tap one pointer test.
  engine_.recorder = telemetry_.recorder;
}

void Session::after_run(const char* phase, const mpsim::RunReport& run, double t0) {
  if (telemetry_.recorder != nullptr && telemetry_.recorder->enabled()) {
    obs::live::RecorderChannel& driver = telemetry_.recorder->driver();
    driver.record_span(phase, vtime_cursor_, vtime_cursor_ - t0);
    const mpsim::RankStats totals = run.totals();
    driver.record_metric("mpsim.msgs_sent", vtime_cursor_, static_cast<double>(totals.msgs_sent));
    driver.record_metric("mpsim.bytes_sent", vtime_cursor_,
                         static_cast<double>(totals.bytes_sent));
    driver.record_metric("mpsim.flops_charged", vtime_cursor_, totals.flops_charged);
    if (totals.deadline_misses > 0) {
      driver.record_metric("mpsim.deadline_misses", vtime_cursor_,
                           static_cast<double>(totals.deadline_misses));
    }
  }
  if (telemetry_.metrics != nullptr) {
    // Per-run deltas accumulate counters correctly; gauges land on the
    // latest value — exactly what the snapshot stream should show.
    mpsim::export_metrics(run, *telemetry_.metrics);
    export_arena_metrics(*telemetry_.metrics);
    if (telemetry_.recorder != nullptr) {
      mpsim::export_metrics(*telemetry_.recorder, *telemetry_.metrics);
    }
  }
  if (telemetry_.watchdogs != nullptr) {
    std::vector<obs::live::RankSample> samples;
    samples.reserve(run.ranks.size());
    for (std::size_t r = 0; r < run.ranks.size(); ++r) {
      const mpsim::RankStats& s = run.ranks[r];
      obs::live::RankSample sample;
      sample.rank = static_cast<int>(r);
      sample.virtual_time = s.virtual_time - t0;  // this run's share, not the session total
      sample.virtual_wait = s.virtual_wait;
      sample.deadline_misses = s.deadline_misses;
      samples.push_back(sample);
    }
    telemetry_.watchdogs->check_ranks(samples, vtime_cursor_);
    // Steady-state arena contract: after the first solve of a shape,
    // further solves must recycle every scratch matrix. Fresh slab
    // allocations past warmup are a leak-shaped signal.
    std::uint64_t arena_allocs = 0;
    for (const la::Workspace& w : ws_) {
      arena_allocs += static_cast<std::uint64_t>(w.stats().slab_allocs);
    }
    if (std::string_view(phase) == "driver.solve") {
      if (arena_warm_ && arena_allocs > arena_allocs_prev_) {
        telemetry_.watchdogs->check_arena_growth("session", arena_allocs - arena_allocs_prev_,
                                                 vtime_cursor_);
      }
      arena_warm_ = true;
    }
    arena_allocs_prev_ = arena_allocs;
  }
  if (telemetry_.snapshotter != nullptr) telemetry_.snapshotter->tick(vtime_cursor_);
}

void Session::log_outcome(const SolveOutcome& outcome) {
  if (telemetry_.log == nullptr) return;
  obs::Json fields = obs::Json::object();
  fields.set("action", outcome.action);
  fields.set("status", std::string(fault::to_string(outcome.status.code())));
  if (outcome.retries > 0) fields.set("retries", outcome.retries);
  if (outcome.refine_steps > 0) fields.set("refine_steps", outcome.refine_steps);
  if (outcome.residual >= 0.0) fields.set("residual", outcome.residual);
  if (outcome.pivot_growth > 0.0) fields.set("pivot_growth", outcome.pivot_growth);
  const std::string site = "session." + outcome.phase;
  const std::string msg = outcome.action == "ok"
                              ? outcome.phase + " completed"
                              : outcome.phase + " took ladder rung '" + outcome.action + "'" +
                                    (outcome.detail.empty() ? "" : ": " + outcome.detail);
  if (outcome.action == "ok") {
    telemetry_.log->info(site, msg, vtime_cursor_, std::move(fields));
  } else {
    telemetry_.log->warn(site, msg, vtime_cursor_, std::move(fields));
  }
}

void Session::dump_postmortem(const char* phase, fault::ErrorCode code,
                              const std::string& message) {
  const std::string_view reason = fault::to_string(code);
  if (telemetry_.recorder != nullptr) {
    telemetry_.recorder->note_anomaly(code == fault::ErrorCode::kBreakdown ? "breakdown" : "error",
                                      vtime_cursor_, message);
  }
  if (telemetry_.log != nullptr) {
    obs::Json fields = obs::Json::object();
    fields.set("reason", std::string(reason));
    fields.set("phase", phase);
    if (!telemetry_.postmortem_path.empty()) fields.set("path", telemetry_.postmortem_path);
    telemetry_.log->error("session.postmortem", message, vtime_cursor_, std::move(fields));
  }
  if (telemetry_.postmortem_path.empty()) return;
  obs::live::PostmortemInfo info;
  info.reason = std::string(reason);
  info.phase = phase;
  info.message = message;
  info.vtime_s = vtime_cursor_;
  obs::Json extra = obs::Json::object();
  extra.set("method", std::string(to_string(method_)));
  extra.set("nranks", nranks_);
  extra.set("degraded", degraded_);
  extra.set("breakdown", breakdown_);
  extra.set("pivot_growth", pivot_growth_);
  if (have_report_) {
    const mpsim::RankStats totals = report_.totals();
    obs::Json faults = obs::Json::object();
    faults.set("faults_injected", totals.faults_injected);
    faults.set("faults_detected", totals.faults_detected);
    faults.set("deadline_misses", totals.deadline_misses);
    extra.set("fault_counters", std::move(faults));
  }
  obs::Json ladder = obs::Json::array();
  for (const SolveOutcome& o : outcomes_) {
    obs::Json oj = obs::Json::object();
    oj.set("phase", o.phase);
    oj.set("action", o.action);
    oj.set("status", std::string(fault::to_string(o.status.code())));
    if (o.retries > 0) oj.set("retries", o.retries);
    if (o.residual >= 0.0) oj.set("residual", o.residual);
    ladder.push(std::move(oj));
  }
  extra.set("ladder", std::move(ladder));
  obs::live::write_postmortem(telemetry_.postmortem_path, info, telemetry_.recorder,
                              telemetry_.metrics, std::move(extra));
}

mpsim::RunReport Session::run_engine(const char* phase, const mpsim::RankFn& fn) {
  // Transient faults (corrupted message, injected crash, missed deadline)
  // are retried as whole engine runs: the FaultPlan's one-shot specs stay
  // fired, so the retry sees a clean wire. Failed attempts never advance
  // the session timeline or its counters — only the successful run is
  // charged (vtime_cursor_/fold_report move on success alone).
  last_retries_ = 0;
  const double t0 = vtime_cursor_;
  for (;;) {
    engine_.vtime_origin = vtime_cursor_;
    try {
      mpsim::RunReport run = mpsim::run(nranks_, fn, engine_);
      vtime_cursor_ = run.max_virtual_time();
      fold_report(run);
      after_run(phase, run, t0);
      return run;
    } catch (const fault::SolveError& e) {
      const bool retryable = engine_.on_breakdown != fault::BreakdownPolicy::kFailFast &&
                             fault::is_transient(e.status()) &&
                             last_retries_ < engine_.max_fault_retries;
      if (!retryable) {
        dump_postmortem(phase, e.code(), e.what());
        throw;
      }
      ++last_retries_;
      if (telemetry_.log != nullptr) {
        obs::Json fields = obs::Json::object();
        fields.set("status", std::string(fault::to_string(e.code())));
        fields.set("attempt", last_retries_);
        telemetry_.log->warn("session.retry",
                             std::string("transient fault, re-running engine: ") + e.what(),
                             vtime_cursor_, std::move(fields));
      }
    }
  }
}

void Session::ensure_fallback() {
  if (fallback_) return;
  const la::index_t n = sys_->num_blocks();
  const la::index_t m = sys_->block_size();
  double vtime = 0.0;
  run_engine("driver.fallback_factor", [&](mpsim::Comm& comm) {
    mpsim::barrier(comm);
    const double t0 = comm.vtime();
    auto span = comm.trace_scope(obs::SpanKind::kPhase, "driver.fallback_factor");
    if (comm.rank() == 0) {
      fallback_ = std::make_unique<btds::BandedLuFactorization>(
          btds::BandedLuFactorization::factor(*sys_));
      comm.charge_flops(btds::BandedLuFactorization::factor_flops(n, m));
    }
    mpsim::barrier(comm);
    span.close();
    if (comm.rank() == 0) vtime = comm.vtime() - t0;
  });
  factor_vtime_ += vtime;
  if (fallback_->storage_bytes() > storage_bytes_) storage_bytes_ = fallback_->storage_bytes();
}

la::Matrix Session::fallback_solve(const la::Matrix& b) {
  assert(fallback_ != nullptr);
  la::Matrix x(b.rows(), b.cols());
  double vtime = 0.0;
  run_engine("driver.fallback_solve", [&](mpsim::Comm& comm) {
    mpsim::barrier(comm);
    const double t0 = comm.vtime();
    auto span = comm.trace_scope(obs::SpanKind::kPhase, "driver.fallback_solve");
    if (comm.rank() == 0) {
      x = fallback_->solve(b);
      comm.charge_flops(btds::BandedLuFactorization::solve_flops(sys_->num_blocks(),
                                                                 sys_->block_size(), b.cols()));
    }
    mpsim::barrier(comm);
    span.close();
    if (comm.rank() == 0) vtime = comm.vtime() - t0;
  });
  last_phase_vtime_ = vtime;
  return x;
}

void Session::factor() {
  if (factored_) return;
  switch (method_) {
    case Method::kRdBatched:
    case Method::kRdPerRhs:
      // Classic RD has no right-hand-side-independent phase to hoist;
      // every solve runs the full pass.
      factored_ = true;
      return;
    case Method::kArd:
      ard_.resize(static_cast<std::size_t>(nranks_));
      ws_.resize(static_cast<std::size_t>(nranks_));
      break;
    case Method::kPcr:
      pcr_.resize(static_cast<std::size_t>(nranks_));
      break;
    case Method::kTransferRd:
      trd_.resize(static_cast<std::size_t>(nranks_));
      break;
  }
  const fault::BreakdownPolicy policy = engine_.on_breakdown;
  double vtime = 0.0;
  std::size_t bytes = 0;
  std::vector<double> growths(static_cast<std::size_t>(nranks_), 0.0);
  try {
    run_engine("driver.factor", [&](mpsim::Comm& comm) {
      mpsim::barrier(comm);
      const double t0 = comm.vtime();
      auto span = comm.trace_scope(obs::SpanKind::kPhase, "driver.factor");
      const std::size_t r = static_cast<std::size_t>(comm.rank());
      switch (method_) {
        case Method::kArd:
          ard_[r] = ArdFactorization::factor(comm, *sys_, part_, opts_, &ws_[r]);
          growths[r] = ard_[r].diagnostics().growth();
          break;
        case Method::kPcr:
          pcr_[r] = PcrFactorization::factor(comm, *sys_, part_);
          growths[r] = pcr_[r].pivot_diagnostics().growth();
          break;
        case Method::kTransferRd: {
          const TransferRdOptions topts{.rescale = opts_.rescale};
          trd_[r] = TransferRdFactorization::factor(comm, *sys_, part_, topts);
          break;
        }
        default:
          break;
      }
      mpsim::barrier(comm);
      span.close();
      if (comm.rank() == 0) {
        vtime = comm.vtime() - t0;
        if (method_ == Method::kArd) bytes = ard_[r].storage_bytes();
        if (method_ == Method::kPcr) bytes = pcr_[r].storage_bytes();
      }
    });
  } catch (const fault::SingularPivotError& e) {
    // A singular block pivot breaks every block-pivot method; the exact
    // banded fallback pivots across the whole band and survives whenever
    // the global matrix is invertible.
    SolveOutcome outcome{.phase = "factor", .status = e.status(), .retries = last_retries_};
    if (policy == fault::BreakdownPolicy::kFailFast) {
      outcome.action = "failfast";
      log_outcome(outcome);
      outcomes_.push_back(std::move(outcome));
      throw;
    }
    ensure_fallback();
    degraded_ = true;
    outcome.action = "fallback";
    outcome.detail = "banded-LU fallback factored; session degraded to the exact path";
    log_outcome(outcome);
    outcomes_.push_back(std::move(outcome));
    factored_ = true;
    return;
  }
  ws_after_factor_.clear();
  for (const la::Workspace& w : ws_) ws_after_factor_.push_back(w.stats());
  pivot_growth_ = *std::max_element(growths.begin(), growths.end());
  SolveOutcome outcome{.phase = "factor",
                       .retries = last_retries_,
                       .pivot_growth = pivot_growth_};
  if (pivot_growth_ > opts_.breakdown_growth_threshold) {
    const std::string message = "pivot growth " + std::to_string(pivot_growth_) +
                                " exceeds breakdown threshold " +
                                std::to_string(opts_.breakdown_growth_threshold);
    if (policy == fault::BreakdownPolicy::kFailFast) {
      outcome.status = fault::Status::error(fault::ErrorCode::kBreakdown, message);
      outcome.action = "failfast";
      log_outcome(outcome);
      outcomes_.push_back(std::move(outcome));
      dump_postmortem("driver.factor", fault::ErrorCode::kBreakdown, message);
      throw fault::BreakdownError("core::Session::factor", pivot_growth_,
                                  opts_.breakdown_growth_threshold);
    }
    breakdown_ = true;
    outcome.status = fault::Status::error(fault::ErrorCode::kBreakdown, message);
    outcome.action = policy == fault::BreakdownPolicy::kRefine ? "refine" : "fallback";
    outcome.detail = "breakdown flagged; solves take the recovery rung";
    dump_postmortem("driver.factor", fault::ErrorCode::kBreakdown, message);
  }
  log_outcome(outcome);
  outcomes_.push_back(std::move(outcome));
  factor_vtime_ = vtime;
  storage_bytes_ = bytes;
  factored_ = true;
}

la::Workspace::Stats Session::arena_stats(int r) const {
  const auto idx = static_cast<std::size_t>(r);
  return idx < ws_.size() ? ws_[idx].stats() : la::Workspace::Stats{};
}

la::Workspace::Stats Session::arena_stats_after_factor(int r) const {
  const auto idx = static_cast<std::size_t>(r);
  return idx < ws_after_factor_.size() ? ws_after_factor_[idx] : la::Workspace::Stats{};
}

void Session::export_arena_metrics(obs::MetricsRegistry& reg) const {
  if (ws_.empty()) return;
  double factor_hw = 0.0, hw = 0.0, slab_bytes = 0.0, factor_slabs = 0.0, slabs = 0.0;
  for (std::size_t r = 0; r < ws_.size(); ++r) {
    const la::Workspace::Stats now = ws_[r].stats();
    const la::Workspace::Stats after = arena_stats_after_factor(static_cast<int>(r));
    const std::string prefix = "arena.rank." + std::to_string(r) + ".";
    reg.gauge(prefix + "high_water_bytes").set(static_cast<double>(now.high_water_bytes));
    reg.gauge(prefix + "slab_bytes").set(static_cast<double>(now.slab_bytes));
    reg.gauge(prefix + "slab_allocs").set(static_cast<double>(now.slab_allocs));
    reg.gauge(prefix + "solve_slab_allocs")
        .set(static_cast<double>(now.slab_allocs - after.slab_allocs));
    factor_hw = std::max(factor_hw, static_cast<double>(after.high_water_bytes));
    hw = std::max(hw, static_cast<double>(now.high_water_bytes));
    slab_bytes += static_cast<double>(now.slab_bytes);
    factor_slabs += static_cast<double>(after.slab_allocs);
    slabs += static_cast<double>(now.slab_allocs);
  }
  reg.gauge("arena.factor.high_water_bytes").set(factor_hw);
  reg.gauge("arena.factor.slab_allocs").set(factor_slabs);
  reg.gauge("arena.high_water_bytes").set(hw);
  reg.gauge("arena.slab_bytes").set(slab_bytes);
  reg.gauge("arena.slab_allocs").set(slabs);
  reg.gauge("arena.solve.slab_allocs").set(slabs - factor_slabs);
}

void Session::export_latency_metrics(obs::MetricsRegistry& reg) const {
  if (factor_vtime_ > 0.0) reg.latency("latency.session.factor_s").observe(factor_vtime_);
  if (!solve_vtimes_.empty()) {
    obs::LatencyHistogram& h = reg.latency("latency.session.solve_s");
    for (double s : solve_vtimes_) h.observe(s);
  }
}

la::Matrix Session::solve(const la::Matrix& b) {
  if (b.rows() != sys_->num_blocks() * sys_->block_size()) {
    throw fault::ShapeMismatchError("core::Session::solve", "b.rows() == num_blocks*block_size",
                                    b.rows(), sys_->num_blocks() * sys_->block_size());
  }
  factor();
  const fault::BreakdownPolicy policy = engine_.on_breakdown;

  // Breakdown on a method without a refinement rung (refinement corrects
  // through an ArdFactorization) escalates straight to the exact path.
  if (!degraded_ && breakdown_ && method_ != Method::kArd &&
      policy != fault::BreakdownPolicy::kFailFast) {
    ensure_fallback();
    degraded_ = true;
  }
  if (degraded_) {
    la::Matrix x = fallback_solve(b);
    solve_vtimes_.push_back(last_phase_vtime_);
    SolveOutcome outcome{.phase = "solve",
                         .action = "fallback",
                         .retries = last_retries_,
                         .residual = btds::relative_residual(*sys_, x, b),
                         .pivot_growth = pivot_growth_};
    log_outcome(outcome);
    outcomes_.push_back(std::move(outcome));
    return x;
  }

  // Ladder rung 2: a breakdown-flagged ARD factorization is kept, but
  // every solve adds iterative refinement (each step one residual apply
  // plus one cheap ARD solve) to recover the lost accuracy.
  const bool refine_path =
      breakdown_ && method_ == Method::kArd && policy != fault::BreakdownPolicy::kFailFast;
  la::Matrix x(b.rows(), b.cols());
  int refine_steps = 0;
  double vtime = 0.0;
  run_engine("driver.solve", [&](mpsim::Comm& comm) {
    mpsim::barrier(comm);
    const double t0 = comm.vtime();
    auto span = comm.trace_scope(obs::SpanKind::kPhase, "driver.solve");
    const std::size_t r = static_cast<std::size_t>(comm.rank());
    if (refine_path) {
      const RefineResult rr = solve_refined(comm, ard_[r], *sys_, part_, b, x);
      if (comm.rank() == 0) refine_steps = rr.steps;
    } else {
      switch (method_) {
        case Method::kRdBatched:
          rd_solve(comm, *sys_, part_, b, x, opts_);
          break;
        case Method::kRdPerRhs:
          rd_solve_per_rhs(comm, *sys_, part_, b, x, opts_);
          break;
        case Method::kArd:
          ard_[r].solve(comm, b, x);
          break;
        case Method::kPcr:
          pcr_[r].solve(comm, b, x);
          break;
        case Method::kTransferRd:
          trd_[r].solve(comm, b, x);
          break;
      }
    }
    mpsim::barrier(comm);
    span.close();
    if (comm.rank() == 0) vtime = comm.vtime() - t0;
  });

  SolveOutcome outcome{.phase = "solve",
                       .action = refine_path ? "refine" : "ok",
                       .retries = last_retries_,
                       .refine_steps = refine_steps,
                       .pivot_growth = pivot_growth_};
  if (refine_path) {
    outcome.residual = btds::relative_residual(*sys_, x, b);
    if (policy == fault::BreakdownPolicy::kFallback &&
        outcome.residual > kFallbackResidualTol) {
      // Ladder rung 3: refinement did not converge — redo this batch (and
      // route every later one) through the exact banded path.
      const std::string message = "refined residual " + std::to_string(outcome.residual) +
                                  " above fallback tolerance";
      outcome.status = fault::Status::error(fault::ErrorCode::kBreakdown, message);
      dump_postmortem("driver.solve", fault::ErrorCode::kBreakdown, message);
      ensure_fallback();
      degraded_ = true;
      x = fallback_solve(b);
      vtime += last_phase_vtime_;
      outcome.action = "fallback";
      outcome.retries += last_retries_;
      outcome.residual = btds::relative_residual(*sys_, x, b);
    }
  }
  solve_vtimes_.push_back(vtime);
  log_outcome(outcome);
  outcomes_.push_back(std::move(outcome));
  return x;
}

DriverResult solve(Method method, const btds::BlockTridiag& sys, const la::Matrix& b, int nranks,
                   const SessionConfig& config) {
  Session session(method, sys, nranks, config);
  session.factor();
  DriverResult result;
  result.x = session.solve(b);
  result.report = session.report();
  result.factor_vtime = session.factor_vtime();
  result.solve_vtime = session.solve_vtimes().back();
  result.outcomes = session.outcomes();
  return result;
}

DriverResult solve(Method method, const btds::BlockTridiag& sys, const la::Matrix& b, int nranks,
                   const ArdOptions& opts, const mpsim::EngineOptions& engine,
                   const obs::live::Telemetry& telemetry) {
  return solve(method, sys, b, nranks,
               SessionConfig{.ard = opts, .engine = engine, .telemetry = telemetry});
}

SessionResult ard_session(const btds::BlockTridiag& sys,
                          const std::vector<const la::Matrix*>& batches, int nranks,
                          const SessionConfig& config) {
  for (const la::Matrix* batch : batches) {
    if (batch == nullptr) {
      throw fault::InvalidArgumentError("core::ard_session", "null batch pointer");
    }
  }
  Session session(Method::kArd, sys, nranks, config);
  session.factor();
  SessionResult result;
  result.x.reserve(batches.size());
  for (const la::Matrix* batch : batches) result.x.push_back(session.solve(*batch));
  result.report = session.report();
  result.factor_vtime = session.factor_vtime();
  result.solve_vtimes = session.solve_vtimes();
  result.storage_bytes = session.storage_bytes();
  return result;
}

SessionResult ard_session(const btds::BlockTridiag& sys,
                          const std::vector<const la::Matrix*>& batches, int nranks,
                          const ArdOptions& opts, const mpsim::EngineOptions& engine,
                          const obs::live::Telemetry& telemetry) {
  return ard_session(sys, batches, nranks,
                     SessionConfig{.ard = opts, .engine = engine, .telemetry = telemetry});
}

}  // namespace ardbt::core
