#pragma once

#include "src/core/scan.hpp"
#include "src/core/serde.hpp"
#include "src/la/gemm.hpp"

/// \file ops_affine.hpp
/// CachedScan operator for first-order affine recurrences
///     v_i = F_i v_{i-1} + g_i.
/// A segment's state is (F, g) with F the product of its element matrices
/// and g its output from a zero entry value. Composition (left covering
/// earlier elements) is
///     F = F_r F_l,   g = F_r g_l + g_r,
/// so the vector merge only needs the right operand's matrix — that is
/// the whole per-event cache. Used by the transfer-matrix recursive
/// doubling solver's triangular sweeps (transfer_rd.hpp).

namespace ardbt::core {

struct AffineOp {
  struct Context {
    la::index_t m = 0;  ///< matrix order (block size)
  };
  using Mat = la::Matrix;  // m x m
  using Vec = la::Matrix;  // m x r

  struct Cache {
    la::Matrix f_right;
  };

  static Mat merge_mat(const Context& ctx, const Mat& left, const Mat& right, Cache& cache,
                       mpsim::Comm& comm) {
    Mat out(ctx.m, ctx.m);
    la::gemm(1.0, right.view(), left.view(), 0.0, out.view());
    comm.charge_flops(la::gemm_flops(ctx.m, ctx.m, ctx.m));
    cache.f_right = right;
    return out;
  }

  static Vec merge_vec(const Context& ctx, const Cache& cache, const Vec& left, const Vec& right,
                       mpsim::Comm& comm) {
    Vec out = right;
    la::gemm(1.0, cache.f_right.view(), left.view(), 1.0, out.view());
    comm.charge_flops(la::gemm_flops(ctx.m, left.cols(), ctx.m));
    return out;
  }

  static std::vector<std::byte> ser_mat(const Context&, const Mat& m) { return ser_matrix(m); }
  static Mat des_mat(const Context& ctx, std::span<const std::byte> bytes) {
    return des_matrix(bytes, ctx.m, ctx.m);
  }
  static std::vector<std::byte> ser_vec(const Context&, const Vec& v) { return ser_matrix(v); }
  static Vec des_vec(const Context& ctx, std::span<const std::byte> bytes) {
    const auto r = static_cast<la::index_t>(bytes.size() / sizeof(double)) / ctx.m;
    return des_matrix(bytes, ctx.m, r);
  }
};

}  // namespace ardbt::core
