#include "src/core/shooting.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/lu.hpp"

namespace ardbt::core {
namespace {

using la::index_t;
using la::Matrix;

/// Homogeneous affine prefix [S V; 0 c]: the represented (projective) map
/// is u -> (S u + V) / c. Rescaling all three jointly leaves it unchanged.
struct AffinePrefix {
  Matrix s;  // 2M x 2M
  Matrix v;  // 2M x R
  double c = 1.0;

  void rescale() {
    double mx = std::max(la::norm_max(s.view()), la::norm_max(v.view()));
    mx = std::max(mx, std::abs(c));
    if (mx == 0.0 || !std::isfinite(mx)) return;
    const int k = std::ilogb(mx) + 1;
    if (k == 0) return;
    const double f = std::ldexp(1.0, -k);
    s.scale(f);
    v.scale(f);
    c *= f;
  }
};

}  // namespace

la::Matrix shooting_solve(const btds::BlockTridiag& sys, const la::Matrix& b) {
  const index_t n = sys.num_blocks();
  const index_t m = sys.block_size();
  const index_t r = b.cols();
  assert(b.rows() == sys.dim());

  AffinePrefix p{.s = Matrix::identity(2 * m), .v = Matrix(2 * m, r), .c = 1.0};
  std::vector<la::LuFactors> c_lus(static_cast<std::size_t>(n - 1));

  for (index_t i = 0; i < n; ++i) {
    // Solve C_i [Wd | Wa | Wb] = [D_i | A_i | b_i] in one pass.
    const bool has_a = i > 0;
    const bool has_c = i + 1 < n;
    Matrix rhs(m, (has_a ? 2 * m : m) + r);
    la::copy(sys.diag(i).view(), rhs.block(0, 0, m, m));
    if (has_a) la::copy(sys.lower(i).view(), rhs.block(0, m, m, m));
    la::copy(btds::block_row(b, i, m), rhs.block(0, has_a ? 2 * m : m, m, r));
    if (has_c) {
      la::LuFactors c_lu = la::lu_factor(sys.upper(i).view());
      if (!c_lu.ok()) throw std::runtime_error("shooting: singular super-diagonal block");
      la::lu_solve_inplace(c_lu, rhs.view());
      c_lus[static_cast<std::size_t>(i)] = std::move(c_lu);
    }

    // T_i = [ -Wd  -Wa  Wb ;  I 0 0 ; 0 0 1 ].
    Matrix ts(2 * m, 2 * m);
    Matrix tv(2 * m, r);
    for (index_t row = 0; row < m; ++row) {
      for (index_t col = 0; col < m; ++col) ts(row, col) = -rhs(row, col);
      if (has_a) {
        for (index_t col = 0; col < m; ++col) ts(row, m + col) = -rhs(row, m + col);
      }
      for (index_t col = 0; col < r; ++col) tv(row, col) = rhs(row, (has_a ? 2 * m : m) + col);
      ts(m + row, row) = 1.0;
    }

    // Compose: prefix := T_i o prefix.
    AffinePrefix next{.s = Matrix(2 * m, 2 * m), .v = Matrix(2 * m, r), .c = p.c};
    la::gemm(1.0, ts.view(), p.s.view(), 0.0, next.s.view());
    la::gemm(1.0, ts.view(), p.v.view(), 0.0, next.v.view());
    la::matrix_axpy(p.c, tv.view(), next.v.view());
    p = std::move(next);
    p.rescale();
  }

  // Boundary: [x_N; x_{N-1}] proportional to p applied to [x_0; 0; 1];
  // the ghost condition x_N = 0 gives S11 X0 = -V_top.
  la::LuFactors s11 = la::lu_factor(p.s.block(0, 0, m, m));
  if (!s11.ok()) throw std::runtime_error("shooting: singular boundary operator");
  Matrix x0 = la::to_matrix(p.v.block(0, 0, m, r));
  la::matrix_scal(-1.0, x0.view());
  la::lu_solve_inplace(s11, x0.view());

  // Forward recovery (the unstable shooting recurrence):
  // x_{i+1} = -C_i^{-1}(D_i x_i + A_i x_{i-1} - b_i).
  Matrix x(b.rows(), r);
  la::copy(x0.view(), btds::block_row(x, 0, m));
  for (index_t i = 0; i + 1 < n; ++i) {
    Matrix t(m, r);
    la::gemm(1.0, sys.diag(i).view(), btds::block_row(std::as_const(x), i, m), 0.0, t.view());
    if (i > 0) {
      la::gemm(1.0, sys.lower(i).view(), btds::block_row(std::as_const(x), i - 1, m), 1.0,
               t.view());
    }
    la::matrix_axpy(-1.0, btds::block_row(b, i, m), t.view());
    la::matrix_scal(-1.0, t.view());
    la::lu_solve_inplace(c_lus[static_cast<std::size_t>(i)], t.view());
    la::copy(t.view(), btds::block_row(x, i + 1, m));
  }
  return x;
}

}  // namespace ardbt::core
