#include "src/core/krylov.hpp"

#include <cassert>
#include <cmath>

#include "src/la/blas1.hpp"
#include "src/mpsim/collectives.hpp"

namespace ardbt::core {
namespace {

using la::index_t;
using la::Matrix;

/// Column-wise dot products <a_j, b_j> over the distributed slices: one
/// allreduce of R doubles.
std::vector<double> column_dots(mpsim::Comm& comm, const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  std::vector<double> dots(static_cast<std::size_t>(a.cols()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      dots[static_cast<std::size_t>(j)] += a(i, j) * b(i, j);
    }
  }
  mpsim::allreduce_sum(comm, dots);
  return dots;
}

/// a(:, j) += s[j] * b(:, j) column-wise.
void columns_axpy(const std::vector<double>& s, const Matrix& b, Matrix& a) {
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      a(i, j) += s[static_cast<std::size_t>(j)] * b(i, j);
    }
  }
}

}  // namespace

KrylovResult pcg(mpsim::Comm& comm, const btds::LocalBlockTridiag& op,
                 const btds::RowPartition& part, const ArdFactorization* precond,
                 const la::Matrix& b_local, la::Matrix& x_local, int max_iters, double tol) {
  const index_t rows = b_local.rows();
  const index_t r = b_local.cols();
  if (x_local.rows() != rows || x_local.cols() != r) x_local.resize(rows, r);

  KrylovResult result;
  const auto b_norm2 = column_dots(comm, b_local, b_local);

  // r0 = b - A x0.
  Matrix residual = btds::apply_distributed(comm, op, x_local, part);
  la::matrix_scal(-1.0, residual.view());
  la::matrix_axpy(1.0, b_local.view(), residual.view());

  // z = M^{-1} r, p = z.
  Matrix z = precond ? precond->solve_local(comm, residual) : residual;
  Matrix p = z;
  std::vector<double> rz = column_dots(comm, residual, z);

  const auto max_rel = [&](const std::vector<double>& r2) {
    double mx = 0.0;
    for (std::size_t j = 0; j < r2.size(); ++j) {
      const double denom = b_norm2[j] > 0.0 ? b_norm2[j] : 1.0;
      mx = std::max(mx, std::sqrt(std::max(r2[j], 0.0) / denom));
    }
    return mx;
  };

  for (int it = 0; it < max_iters; ++it) {
    const auto r2 = column_dots(comm, residual, residual);
    result.residual_norms.push_back(max_rel(r2));
    if (result.residual_norms.back() <= tol) {
      result.converged = true;
      break;
    }

    const Matrix ap = btds::apply_distributed(comm, op, p, part);
    const auto pap = column_dots(comm, p, ap);
    std::vector<double> alpha(static_cast<std::size_t>(r));
    std::vector<double> neg_alpha(static_cast<std::size_t>(r));
    for (std::size_t j = 0; j < alpha.size(); ++j) {
      alpha[j] = pap[j] != 0.0 ? rz[j] / pap[j] : 0.0;
      neg_alpha[j] = -alpha[j];
    }
    columns_axpy(alpha, p, x_local);
    columns_axpy(neg_alpha, ap, residual);

    z = precond ? precond->solve_local(comm, residual) : residual;
    const auto rz_new = column_dots(comm, residual, z);
    std::vector<double> beta(static_cast<std::size_t>(r));
    for (std::size_t j = 0; j < beta.size(); ++j) {
      beta[j] = rz[j] != 0.0 ? rz_new[j] / rz[j] : 0.0;
    }
    rz = rz_new;
    // p = z + beta p (column-wise).
    for (index_t i = 0; i < rows; ++i) {
      for (index_t j = 0; j < r; ++j) {
        p(i, j) = z(i, j) + beta[static_cast<std::size_t>(j)] * p(i, j);
      }
    }
    ++result.iterations;
  }

  // Exact final residual (the recurrence can drift).
  Matrix final_res = btds::apply_distributed(comm, op, x_local, part);
  la::matrix_scal(-1.0, final_res.view());
  la::matrix_axpy(1.0, b_local.view(), final_res.view());
  const auto fr2 = column_dots(comm, final_res, final_res);
  if (!result.residual_norms.empty() || true) result.residual_norms.push_back(max_rel(fr2));
  result.converged = result.residual_norms.back() <= tol;
  return result;
}

KrylovResult bicgstab(mpsim::Comm& comm, const btds::LocalBlockTridiag& op,
                      const btds::RowPartition& part, const ArdFactorization* precond,
                      const la::Matrix& b_local, la::Matrix& x_local, int max_iters,
                      double tol) {
  const index_t rows = b_local.rows();
  const index_t r = b_local.cols();
  const auto ur = static_cast<std::size_t>(r);
  if (x_local.rows() != rows || x_local.cols() != r) x_local.resize(rows, r);

  KrylovResult result;
  const auto b_norm2 = column_dots(comm, b_local, b_local);
  const auto max_rel = [&](const std::vector<double>& r2) {
    double mx = 0.0;
    for (std::size_t j = 0; j < r2.size(); ++j) {
      const double denom = b_norm2[j] > 0.0 ? b_norm2[j] : 1.0;
      mx = std::max(mx, std::sqrt(std::max(r2[j], 0.0) / denom));
    }
    return mx;
  };

  // r = b - A x; rhat = r (shadow residual).
  Matrix residual = btds::apply_distributed(comm, op, x_local, part);
  la::matrix_scal(-1.0, residual.view());
  la::matrix_axpy(1.0, b_local.view(), residual.view());
  const Matrix rhat = residual;

  std::vector<double> rho(ur, 1.0), alpha(ur, 1.0), omega(ur, 1.0);
  Matrix v(rows, r), p(rows, r);

  for (int it = 0; it < max_iters; ++it) {
    const auto r2 = column_dots(comm, residual, residual);
    result.residual_norms.push_back(max_rel(r2));
    if (result.residual_norms.back() <= tol) {
      result.converged = true;
      break;
    }

    const auto rho_new = column_dots(comm, rhat, residual);
    for (index_t i = 0; i < rows; ++i) {
      for (index_t j = 0; j < r; ++j) {
        const auto uj = static_cast<std::size_t>(j);
        const double beta =
            (rho[uj] != 0.0 && omega[uj] != 0.0) ? (rho_new[uj] / rho[uj]) * (alpha[uj] / omega[uj])
                                                 : 0.0;
        p(i, j) = residual(i, j) + beta * (p(i, j) - omega[uj] * v(i, j));
      }
    }
    rho = rho_new;

    const Matrix p_hat = precond ? precond->solve_local(comm, p) : p;
    v = btds::apply_distributed(comm, op, p_hat, part);
    const auto rhat_v = column_dots(comm, rhat, v);
    for (std::size_t j = 0; j < ur; ++j) alpha[j] = rhat_v[j] != 0.0 ? rho[j] / rhat_v[j] : 0.0;

    Matrix s = residual;
    for (index_t i = 0; i < rows; ++i) {
      for (index_t j = 0; j < r; ++j) s(i, j) -= alpha[static_cast<std::size_t>(j)] * v(i, j);
    }

    const Matrix s_hat = precond ? precond->solve_local(comm, s) : s;
    const Matrix t = btds::apply_distributed(comm, op, s_hat, part);
    const auto ts = column_dots(comm, t, s);
    const auto tt = column_dots(comm, t, t);
    for (std::size_t j = 0; j < ur; ++j) omega[j] = tt[j] != 0.0 ? ts[j] / tt[j] : 0.0;

    for (index_t i = 0; i < rows; ++i) {
      for (index_t j = 0; j < r; ++j) {
        const auto uj = static_cast<std::size_t>(j);
        x_local(i, j) += alpha[uj] * p_hat(i, j) + omega[uj] * s_hat(i, j);
        residual(i, j) = s(i, j) - omega[uj] * t(i, j);
      }
    }
    ++result.iterations;
  }

  // Exact final residual.
  Matrix final_res = btds::apply_distributed(comm, op, x_local, part);
  la::matrix_scal(-1.0, final_res.view());
  la::matrix_axpy(1.0, b_local.view(), final_res.view());
  const auto fr2 = column_dots(comm, final_res, final_res);
  result.residual_norms.push_back(max_rel(fr2));
  result.converged = result.residual_norms.back() <= tol;
  return result;
}

}  // namespace ardbt::core
