#include "src/core/refine.hpp"

#include <cassert>
#include <cmath>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/btds/halo.hpp"
#include "src/la/random.hpp"
#include "src/mpsim/collectives.hpp"

namespace ardbt::core {
namespace {

using la::index_t;
using la::Matrix;

/// out_rows := (T x)[lo..hi) — this rank's rows of the operator applied to
/// the (fully populated) global x.
void apply_local(const btds::BlockTridiag& sys, const Matrix& x, index_t lo, index_t hi,
                 Matrix& out, mpsim::Comm& comm) {
  const index_t m = sys.block_size();
  const index_t r = x.cols();
  for (index_t i = lo; i < hi; ++i) {
    la::MatrixView oi = out.block((i - lo) * m, 0, m, r);
    la::gemm(1.0, sys.diag(i).view(), btds::block_row(x, i, m), 0.0, oi);
    comm.charge_flops(la::gemm_flops(m, r, m));
    if (i > 0) {
      la::gemm(1.0, sys.lower(i).view(), btds::block_row(x, i - 1, m), 1.0, oi);
      comm.charge_flops(la::gemm_flops(m, r, m));
    }
    if (i + 1 < sys.num_blocks()) {
      la::gemm(1.0, sys.upper(i).view(), btds::block_row(x, i + 1, m), 1.0, oi);
      comm.charge_flops(la::gemm_flops(m, r, m));
    }
  }
}

/// Frobenius norm over all ranks of a quantity whose local part is given
/// by `local_sumsq` (allreduce of one double).
double global_norm(mpsim::Comm& comm, double local_sumsq) {
  double v[1] = {local_sumsq};
  mpsim::allreduce_sum(comm, v);
  return std::sqrt(v[0]);
}

double sumsq(la::ConstMatrixView v) {
  double s = 0.0;
  for (index_t i = 0; i < v.rows(); ++i) {
    for (double x : v.row(i)) s += x * x;
  }
  return s;
}

}  // namespace

RefineResult solve_refined(mpsim::Comm& comm, const ArdFactorization& f,
                           const btds::BlockTridiag& sys, const btds::RowPartition& part,
                           const la::Matrix& b, la::Matrix& x, int max_steps, double tol) {
  const index_t m = sys.block_size();
  const index_t lo = part.begin(comm.rank());
  const index_t hi = part.end(comm.rank());
  const index_t nloc = hi - lo;
  const index_t r = b.cols();

  RefineResult result;
  const double b_norm =
      global_norm(comm, sumsq(b.block(lo * m, 0, nloc * m, r)));

  f.solve(comm, b, x);
  mpsim::barrier(comm);  // every rank's rows of x are ready for the apply

  // Rank-local full-shape buffers: only this rank's rows are ever touched,
  // which is all ArdFactorization::solve reads/writes.
  Matrix residual_full(b.rows(), r);
  Matrix correction_full(b.rows(), r);
  Matrix tx_local(nloc * m, r);

  for (int step = 0; step <= max_steps; ++step) {
    apply_local(sys, x, lo, hi, tx_local, comm);
    la::MatrixView res_local = residual_full.block(lo * m, 0, nloc * m, r);
    la::copy(b.block(lo * m, 0, nloc * m, r), res_local);
    la::matrix_axpy(-1.0, tx_local.view(), res_local);
    const double res_norm = global_norm(comm, sumsq(res_local));
    result.residual_norms.push_back(res_norm);
    if (step == max_steps || res_norm <= tol * b_norm) break;

    f.solve(comm, residual_full, correction_full);
    la::matrix_axpy(1.0, correction_full.block(lo * m, 0, nloc * m, r),
                    x.block(lo * m, 0, nloc * m, r));
    mpsim::barrier(comm);  // updated x visible before the next apply
    ++result.steps;
  }
  return result;
}

RefineResult solve_refined_local(mpsim::Comm& comm, const ArdFactorization& f,
                                 const btds::LocalBlockTridiag& sys,
                                 const btds::RowPartition& part, const la::Matrix& b_local,
                                 la::Matrix& x_local, int max_steps, double tol) {
  RefineResult result;
  const double b_norm = global_norm(comm, sumsq(b_local.view()));

  x_local = f.solve_local(comm, b_local);

  for (int step = 0; step <= max_steps; ++step) {
    Matrix residual = btds::apply_distributed(comm, sys, x_local, part);
    la::matrix_scal(-1.0, residual.view());
    la::matrix_axpy(1.0, b_local.view(), residual.view());
    const double res_norm = global_norm(comm, sumsq(residual.view()));
    result.residual_norms.push_back(res_norm);
    if (step == max_steps || res_norm <= tol * b_norm) break;

    const Matrix correction = f.solve_local(comm, residual);
    la::matrix_axpy(1.0, correction.view(), x_local.view());
    ++result.steps;
  }
  return result;
}

double condition_estimate(mpsim::Comm& comm, const ArdFactorization& f,
                          const btds::BlockTridiag& sys, const btds::RowPartition& part,
                          int iters, std::uint64_t seed) {
  const index_t m = sys.block_size();
  const index_t lo = part.begin(comm.rank());
  const index_t hi = part.end(comm.rank());
  const index_t nloc = hi - lo;

  // ||T||_inf from local row sums.
  double local_max[1] = {0.0};
  for (index_t i = lo; i < hi; ++i) {
    for (index_t row = 0; row < m; ++row) {
      double s = 0.0;
      for (index_t c = 0; c < m; ++c) {
        s += std::abs(sys.diag(i)(row, c));
        if (i > 0) s += std::abs(sys.lower(i)(row, c));
        if (i + 1 < sys.num_blocks()) s += std::abs(sys.upper(i)(row, c));
      }
      local_max[0] = std::max(local_max[0], s);
    }
  }
  mpsim::allreduce_max(comm, local_max);
  const double t_norm = local_max[0];

  // Power iteration on T^{-1}: each rank fills its rows of v by global row
  // index, so the global vector is well defined without communication.
  Matrix v(sys.dim(), 1);
  Matrix y(sys.dim(), 1);
  for (index_t i = lo * m; i < hi * m; ++i) {
    la::Rng rng = la::make_rng(seed, static_cast<std::uint64_t>(i));
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    v(i, 0) = dist(rng);
  }
  double inv_norm = 0.0;
  for (int it = 0; it < iters; ++it) {
    const double vn = global_norm(comm, sumsq(v.block(lo * m, 0, nloc * m, 1)));
    for (index_t i = lo * m; i < hi * m; ++i) v(i, 0) /= vn;
    f.solve(comm, v, y);
    inv_norm = global_norm(comm, sumsq(y.block(lo * m, 0, nloc * m, 1)));
    std::swap(v, y);
    mpsim::barrier(comm);  // swap is rank-local state; keep rounds aligned
  }
  return t_norm * inv_norm;
}

}  // namespace ardbt::core
