#include "src/core/ard.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/workspace.hpp"
#include "src/par/pool.hpp"

namespace ardbt::core {
namespace {

using btds::BlockTridiag;
using btds::ThomasFactorization;
using la::Matrix;

/// Copy this rank's block rows out of a global (N*M) x R matrix.
Matrix extract_local(const Matrix& global, la::index_t lo, la::index_t nloc, la::index_t m,
                     la::Workspace* ws) {
  Matrix local = la::ws_acquire(ws, nloc * m, global.cols());
  la::copy(global.block(lo * m, 0, nloc * m, global.cols()), local.view());
  return local;
}

/// Copy this rank's rows of `sys` into a standalone segment system.
template <typename SysView>
BlockTridiag copy_segment(const SysView& sys, la::index_t lo, la::index_t nloc, la::index_t m) {
  BlockTridiag tloc(nloc, m);
  for (la::index_t k = 0; k < nloc; ++k) {
    tloc.diag(k) = sys.diag(lo + k);
    if (k > 0) tloc.lower(k) = sys.lower(lo + k);
    if (k + 1 < nloc) tloc.upper(k) = sys.upper(lo + k);
  }
  return tloc;
}

}  // namespace

template <typename SysView>
void ArdFactorization::local_phase(mpsim::Comm& comm, const SysView& sys) {
  if (opts_.pipeline.lanes > 1 && hi_ - lo_ >= 2) {
    local_phase_lanes(comm, sys);
    return;
  }
  lanes_.clear();
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.factor.local");
  const la::index_t m = m_;
  const la::index_t nloc = hi_ - lo_;

  // --- 1. Local segment copy and its block-Thomas factorization.
  const BlockTridiag tloc = copy_segment(sys, lo_, nloc, m);
  unmodified_ = ThomasFactorization::factor(tloc, opts_.pivot);
  comm.charge_flops(ThomasFactorization::factor_flops(nloc, m, opts_.pivot));

  // --- 2. Two-port corner blocks via a 2M-column local solve: columns
  // [0, M) carry the unit load on the first block row, columns [M, 2M)
  // on the last, so the corners of the solution are the corner blocks of
  // T_loc^{-1}.
  Matrix e = la::ws_acquire(ws_, nloc * m, 2 * m);
  for (la::index_t i = 0; i < m; ++i) {
    e(i, i) = 1.0;
    e((nloc - 1) * m + i, m + i) = 1.0;
  }
  Matrix w = unmodified_.solve(e, comm.pool(), ws_);
  comm.charge_flops(ThomasFactorization::solve_flops(nloc, m, 2 * m));

  tp_.P = la::to_matrix(w.block(0, 0, m, m));
  tp_.Q = la::to_matrix(w.block(0, m, m, m));
  tp_.R = la::to_matrix(w.block((nloc - 1) * m, 0, m, m));
  tp_.S = la::to_matrix(w.block((nloc - 1) * m, m, m, m));
  tp_.a_first = (lo_ > 0) ? sys.lower(lo_) : Matrix(m, m);
  tp_.c_last = (hi_ < n_) ? sys.upper(hi_ - 1) : Matrix(m, m);
  a_lo_ = tp_.a_first;
  c_hi_ = tp_.c_last;
  la::ws_release(ws_, std::move(e));
  la::ws_release(ws_, std::move(w));
}

template <typename SysView>
void ArdFactorization::global_phase(mpsim::Comm& comm, const SysView& sys) {
  if (hierarchical()) {
    global_phase_lanes(comm, sys);
    return;
  }
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.factor.global");
  const la::index_t m = m_;
  const la::index_t nloc = hi_ - lo_;

  // --- 3. Forward and backward two-port prefix scans (the log P term).
  if (opts_.pipeline.overlap && comm.size() > 1) {
    // Round-interleaved: both scans keep a message in flight while the
    // other's O(M^3) merges run, and within each round the partial merge
    // (which the next send depends on) runs before the prefix merge.
    // Operand pairs are identical to the serial schedule, so the factored
    // caches — and every later solve — are bit-identical.
    typename CachedScan<TwoPortOp>::Factoring ff(comm, ScanDirection::kForward,
                                                 TwoPortOp::Context{m, ws_}, tp_,
                                                 ard_tags::kFwdFactor);
    typename CachedScan<TwoPortOpReversed>::Factoring fb(comm, ScanDirection::kBackward,
                                                         TwoPortOp::Context{m, ws_}, tp_,
                                                         ard_tags::kBwdFactor);
    while (!ff.done() || !fb.done()) {
      if (!ff.done() && (fb.done() || ff.ready(comm) || !fb.ready(comm))) {
        ff.finish_round(comm);
      } else {
        fb.finish_round(comm);
      }
    }
    fwd_ = std::move(ff).finish();
    bwd_ = std::move(fb).finish();
  } else {
    fwd_ = CachedScan<TwoPortOp>::factor(comm, ScanDirection::kForward,
                                         TwoPortOp::Context{m, ws_}, tp_, ard_tags::kFwdFactor);
    bwd_ = CachedScan<TwoPortOpReversed>::factor(
        comm, ScanDirection::kBackward, TwoPortOp::Context{m, ws_}, tp_, ard_tags::kBwdFactor);
  }

  // --- 4. Fold the boundary relations into the segment's corner diagonal
  // blocks and factor the modified segment:
  //   D'_lo     = D_lo     - A_lo S_pre C_{lo-1}
  //   D'_{hi-1} = D_{hi-1} - C_{hi-1} P_suf A_hi
  BlockTridiag tloc = copy_segment(sys, lo_, nloc, m);
  if (fwd_.has_incoming()) {
    const TwoPort& pre = fwd_.incoming_mat();
    Matrix as = la::ws_acquire(ws_, m, m);
    la::gemm(1.0, a_lo_.view(), pre.S.view(), 0.0, as.view());
    la::gemm(-1.0, as.view(), pre.c_last.view(), 1.0, tloc.diag(0).view());
    la::ws_release(ws_, std::move(as));
    comm.charge_flops(2.0 * la::gemm_flops(m, m, m));
  }
  if (bwd_.has_incoming()) {
    const TwoPort& suf = bwd_.incoming_mat();
    Matrix cp = la::ws_acquire(ws_, m, m);
    la::gemm(1.0, c_hi_.view(), suf.P.view(), 0.0, cp.view());
    la::gemm(-1.0, cp.view(), suf.a_first.view(), 1.0, tloc.diag(nloc - 1).view());
    la::ws_release(ws_, std::move(cp));
    comm.charge_flops(2.0 * la::gemm_flops(m, m, m));
  }
  modified_ = ThomasFactorization::factor(tloc, opts_.pivot);
  comm.charge_flops(ThomasFactorization::factor_flops(nloc, m, opts_.pivot));
}

template <typename SysView>
void ArdFactorization::local_phase_lanes(mpsim::Comm& comm, const SysView& sys) {
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.factor.local");
  const la::index_t m = m_;
  const la::index_t nloc = hi_ - lo_;
  const int L = static_cast<int>(
      std::min<la::index_t>(static_cast<la::index_t>(opts_.pipeline.lanes), nloc));

  // --- 1+2 (two-level). Split the segment into L sub-segments ("lanes"),
  // factor each and compute its two-port independently — par::Pool runs
  // the lanes in parallel (the flop charge stays on the rank thread, so
  // ChargedFlops virtual times do not depend on --threads).
  lanes_.clear();
  lanes_.resize(static_cast<std::size_t>(L));
  double lane_flops = 0.0;
  for (int li = 0; li < L; ++li) {
    const auto [b, e] = par::Pool::chunk_bounds(0, nloc, li, L);
    lanes_[static_cast<std::size_t>(li)].lo = b;
    lanes_[static_cast<std::size_t>(li)].hi = e;
    lane_flops += ThomasFactorization::factor_flops(e - b, m, opts_.pivot) +
                  ThomasFactorization::solve_flops(e - b, m, 2 * m);
  }
  par::parallel_for(
      comm.pool(), 0, L,
      [&](std::int64_t lb, std::int64_t le) {
        for (std::int64_t li = lb; li < le; ++li) {
          Lane& ln = lanes_[static_cast<std::size_t>(li)];
          const la::index_t rows = ln.hi - ln.lo;
          const BlockTridiag tl = copy_segment(sys, lo_ + ln.lo, rows, m);
          ln.unmodified = ThomasFactorization::factor(tl, opts_.pivot);
          Matrix e(rows * m, 2 * m);
          for (la::index_t i = 0; i < m; ++i) {
            e(i, i) = 1.0;
            e((rows - 1) * m + i, m + i) = 1.0;
          }
          const Matrix w = ln.unmodified.solve(e, nullptr, nullptr);
          ln.tp.P = la::to_matrix(w.block(0, 0, m, m));
          ln.tp.Q = la::to_matrix(w.block(0, m, m, m));
          ln.tp.R = la::to_matrix(w.block((rows - 1) * m, 0, m, m));
          ln.tp.S = la::to_matrix(w.block((rows - 1) * m, m, m, m));
          const la::index_t gfirst = lo_ + ln.lo;
          const la::index_t glast = lo_ + ln.hi - 1;
          ln.tp.a_first = (gfirst > 0) ? sys.lower(gfirst) : Matrix(m, m);
          ln.tp.c_last = (glast + 1 < n_) ? sys.upper(glast) : Matrix(m, m);
          ln.a_first = ln.tp.a_first;
          ln.c_last = ln.tp.c_last;
        }
      },
      "ard.lane.factor");
  comm.charge_flops(lane_flops);

  // Chain the lane two-ports into the rank two-port (serial, deterministic
  // association), caching every merge so solve can replay the chains with
  // vector parts. fpre_[i] covers lanes [0, i); bsuf_[i] covers [i, L).
  fpre_.assign(static_cast<std::size_t>(L), TwoPort{});
  bsuf_.assign(static_cast<std::size_t>(L), TwoPort{});
  fchain_cache_.assign(static_cast<std::size_t>(L), TwoPortCache{});
  bchain_cache_.assign(static_cast<std::size_t>(L), TwoPortCache{});
  TwoPort cur = lanes_[0].tp;
  for (int i = 1; i < L; ++i) {
    fpre_[static_cast<std::size_t>(i)] = std::move(cur);
    cur = merge_twoport(fpre_[static_cast<std::size_t>(i)],
                        lanes_[static_cast<std::size_t>(i)].tp,
                        fchain_cache_[static_cast<std::size_t>(i)], comm, ws_);
  }
  tp_ = std::move(cur);
  TwoPort scur = lanes_[static_cast<std::size_t>(L - 1)].tp;
  for (int i = L - 2; i >= 1; --i) {
    bsuf_[static_cast<std::size_t>(i + 1)] = std::move(scur);
    scur = merge_twoport(lanes_[static_cast<std::size_t>(i)].tp,
                         bsuf_[static_cast<std::size_t>(i + 1)],
                         bchain_cache_[static_cast<std::size_t>(i)], comm, ws_);
  }
  bsuf_[1] = std::move(scur);

  a_lo_ = lanes_.front().a_first;
  c_hi_ = lanes_.back().c_last;
}

template <typename SysView>
void ArdFactorization::global_phase_lanes(mpsim::Comm& comm, const SysView& sys) {
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.factor.global");
  const la::index_t m = m_;
  const int L = static_cast<int>(lanes_.size());

  // --- 3. Cross-rank scans over the *rank* two-port: same wire protocol
  // and round count as the flat algorithm — the hierarchy only changed how
  // the rank two-port was produced.
  if (opts_.pipeline.overlap && comm.size() > 1) {
    typename CachedScan<TwoPortOp>::Factoring ff(comm, ScanDirection::kForward,
                                                 TwoPortOp::Context{m, ws_}, tp_,
                                                 ard_tags::kFwdFactor);
    typename CachedScan<TwoPortOpReversed>::Factoring fb(comm, ScanDirection::kBackward,
                                                         TwoPortOp::Context{m, ws_}, tp_,
                                                         ard_tags::kBwdFactor);
    while (!ff.done() || !fb.done()) {
      if (!ff.done() && (fb.done() || ff.ready(comm) || !fb.ready(comm))) {
        ff.finish_round(comm);
      } else {
        fb.finish_round(comm);
      }
    }
    fwd_ = std::move(ff).finish();
    bwd_ = std::move(fb).finish();
  } else {
    fwd_ = CachedScan<TwoPortOp>::factor(comm, ScanDirection::kForward,
                                         TwoPortOp::Context{m, ws_}, tp_, ard_tags::kFwdFactor);
    bwd_ = CachedScan<TwoPortOpReversed>::factor(
        comm, ScanDirection::kBackward, TwoPortOp::Context{m, ws_}, tp_, ard_tags::kBwdFactor);
  }

  // --- 4 (two-level). Each lane folds its *effective* boundary relations:
  // the prefix covering every row before the lane is (cross-rank prefix)
  // merged with (local lanes [0, i)), and symmetrically for the suffix.
  // The mix merges are cached so solve can replay them per panel.
  pre_mix_cache_.assign(static_cast<std::size_t>(L), TwoPortCache{});
  suf_mix_cache_.assign(static_cast<std::size_t>(L), TwoPortCache{});
  std::vector<BlockTridiag> mods;
  mods.reserve(static_cast<std::size_t>(L));
  double lane_flops = 0.0;
  for (int i = 0; i < L; ++i) {
    Lane& ln = lanes_[static_cast<std::size_t>(i)];
    const la::index_t rows = ln.hi - ln.lo;
    BlockTridiag t = copy_segment(sys, lo_ + ln.lo, rows, m);

    const TwoPort* pre = nullptr;
    TwoPort pre_mix;
    if (fwd_.has_incoming()) {
      if (i == 0) {
        pre = &fwd_.incoming_mat();
      } else {
        pre_mix = merge_twoport(fwd_.incoming_mat(), fpre_[static_cast<std::size_t>(i)],
                                pre_mix_cache_[static_cast<std::size_t>(i)], comm, ws_);
        pre = &pre_mix;
      }
    } else if (i > 0) {
      pre = &fpre_[static_cast<std::size_t>(i)];
    }
    if (pre != nullptr) {
      Matrix as = la::ws_acquire(ws_, m, m);
      la::gemm(1.0, ln.a_first.view(), pre->S.view(), 0.0, as.view());
      la::gemm(-1.0, as.view(), pre->c_last.view(), 1.0, t.diag(0).view());
      la::ws_release(ws_, std::move(as));
      comm.charge_flops(2.0 * la::gemm_flops(m, m, m));
    }

    const TwoPort* suf = nullptr;
    TwoPort suf_mix;
    if (bwd_.has_incoming()) {
      if (i == L - 1) {
        suf = &bwd_.incoming_mat();
      } else {
        suf_mix = merge_twoport(bsuf_[static_cast<std::size_t>(i + 1)], bwd_.incoming_mat(),
                                suf_mix_cache_[static_cast<std::size_t>(i)], comm, ws_);
        suf = &suf_mix;
      }
    } else if (i + 1 < L) {
      suf = &bsuf_[static_cast<std::size_t>(i + 1)];
    }
    if (suf != nullptr) {
      Matrix cp = la::ws_acquire(ws_, m, m);
      la::gemm(1.0, ln.c_last.view(), suf->P.view(), 0.0, cp.view());
      la::gemm(-1.0, cp.view(), suf->a_first.view(), 1.0, t.diag(rows - 1).view());
      la::ws_release(ws_, std::move(cp));
      comm.charge_flops(2.0 * la::gemm_flops(m, m, m));
    }

    mods.push_back(std::move(t));
    lane_flops += ThomasFactorization::factor_flops(rows, m, opts_.pivot);
  }
  par::parallel_for(
      comm.pool(), 0, L,
      [&](std::int64_t lb, std::int64_t le) {
        for (std::int64_t li = lb; li < le; ++li) {
          lanes_[static_cast<std::size_t>(li)].modified =
              ThomasFactorization::factor(mods[static_cast<std::size_t>(li)], opts_.pivot);
        }
      },
      "ard.lane.refactor");
  comm.charge_flops(lane_flops);
}

template <typename SysView>
ArdFactorization ArdFactorization::factor_impl(mpsim::Comm& comm, const SysView& sys,
                                               const btds::RowPartition& part,
                                               const ArdOptions& opts, la::Workspace* ws) {
  ArdFactorization f;
  f.rank_ = comm.rank();
  f.opts_ = opts;
  f.ws_ = ws;
  f.n_ = sys.num_blocks();
  f.m_ = sys.block_size();
  f.lo_ = part.begin(comm.rank());
  f.hi_ = part.end(comm.rank());
  assert(part.nranks() == comm.size());
  if (f.hi_ - f.lo_ < 1) {
    throw std::runtime_error("ARD: every rank needs at least one block row (N >= P)");
  }
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.factor");
  f.local_phase(comm, sys);
  f.global_phase(comm, sys);
  if constexpr (obs::kTraceCompiledIn) {
    // Breakdown marks make suspect factorizations visible in traces even
    // when the driver's policy accepts them; pure comparisons, no flops.
    if (comm.trace() != nullptr &&
        f.diagnostics().growth() > opts.breakdown_growth_threshold) {
      comm.trace()->instant(obs::SpanKind::kMark, "ard.breakdown", comm.now_sample(), -1, 0);
    }
  }
  return f;
}

ArdFactorization ArdFactorization::factor(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                                          const btds::RowPartition& part, const ArdOptions& opts,
                                          la::Workspace* ws) {
  return factor_impl(comm, sys, part, opts, ws);
}

ArdFactorization ArdFactorization::factor(mpsim::Comm& comm,
                                          const btds::LocalBlockTridiag& sys,
                                          const btds::RowPartition& part, const ArdOptions& opts,
                                          la::Workspace* ws) {
  assert(part.begin(comm.rank()) == sys.lo() && part.end(comm.rank()) == sys.hi());
  return factor_impl(comm, sys, part, opts, ws);
}

void ArdFactorization::update(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                              bool rows_changed) {
  if (rows_changed) local_phase(comm, sys);
  global_phase(comm, sys);
}

void ArdFactorization::update(mpsim::Comm& comm, const btds::LocalBlockTridiag& sys,
                              bool rows_changed) {
  if (rows_changed) local_phase(comm, sys);
  global_phase(comm, sys);
}

void ArdFactorization::solve(mpsim::Comm& comm, const la::Matrix& b, la::Matrix& x) const {
  const la::index_t m = m_;
  const la::index_t nloc = hi_ - lo_;
  const la::index_t r = b.cols();
  assert(b.rows() == n_ * m_ && x.rows() == b.rows() && x.cols() == r);
  Matrix b_local = extract_local(b, lo_, nloc, m, ws_);
  Matrix xloc = solve_local(comm, b_local);
  la::copy(xloc.view(), x.block(lo_ * m, 0, nloc * m, r));
  la::ws_release(ws_, std::move(b_local));
  la::ws_release(ws_, std::move(xloc));
}

la::Matrix ArdFactorization::solve_local(mpsim::Comm& comm, const la::Matrix& b_local) const {
  // Dispatch on the global options only, never on hierarchical():
  // lane construction is rank-local (a rank needs >= 2 block rows), so on
  // an uneven partition some ranks may have no lanes while others do. The
  // flat path replays with the fixed kFwdSolve/kBwdSolve tags, the panels
  // path with dynamic per-panel tags — a mixed fleet would wait on tags
  // its scan partner never sends. solve_local_panels degenerates
  // correctly to the single-lane segment when this rank built no lanes.
  const PipelineOptions& pl = opts_.pipeline;
  if (pl.lanes <= 1 && !pl.overlap && pl.chunk_cols <= 0) {
    return solve_local_flat(comm, b_local);
  }
  return solve_local_panels(comm, b_local);
}

la::Matrix ArdFactorization::solve_local_flat(mpsim::Comm& comm,
                                              const la::Matrix& b_local) const {
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.solve");
  const la::index_t m = m_;
  const la::index_t nloc = hi_ - lo_;
  const la::index_t r = b_local.cols();
  assert(b_local.rows() == nloc * m);

  Matrix bloc = la::ws_acquire(ws_, b_local.rows(), b_local.cols());
  la::copy(b_local.view(), bloc.view());
  par::Pool* pool = comm.pool();

  if (comm.size() > 1) {
    // Segment vector two-port: first/last blocks of T_loc^{-1} b_loc.
    Matrix t = unmodified_.solve(bloc, pool, ws_);
    comm.charge_flops(ThomasFactorization::solve_flops(nloc, m, r));
    TwoPortVec v{.p = la::ws_acquire(ws_, m, r), .q = la::ws_acquire(ws_, m, r)};
    la::copy(t.block(0, 0, m, r), v.p.view());
    la::copy(t.block((nloc - 1) * m, 0, m, r), v.q.view());
    la::ws_release(ws_, std::move(t));

    // The forward replay consumes its own copy of v (the seed path passed
    // v by value); the backward replay consumes v itself.
    TwoPortVec v_fwd{.p = la::ws_acquire(ws_, m, r), .q = la::ws_acquire(ws_, m, r)};
    la::copy(v.p.view(), v_fwd.p.view());
    la::copy(v.q.view(), v_fwd.q.view());
    std::optional<TwoPortVec> pre = fwd_.solve(comm, std::move(v_fwd), ard_tags::kFwdSolve);
    std::optional<TwoPortVec> suf = bwd_.solve(comm, std::move(v), ard_tags::kBwdSolve);

    // Boundary corrections: b'_lo -= A_lo q_pre, b'_{hi-1} -= C_{hi-1} p_suf.
    if (pre) {
      la::gemm(-1.0, a_lo_.view(), pre->q.view(), 1.0, bloc.block(0, 0, m, r), pool);
      comm.charge_flops(la::gemm_flops(m, r, m));
      TwoPortOp::recycle_vec(TwoPortOp::Context{m, ws_}, std::move(*pre));
    }
    if (suf) {
      la::gemm(-1.0, c_hi_.view(), suf->p.view(), 1.0, bloc.block((nloc - 1) * m, 0, m, r),
               pool);
      comm.charge_flops(la::gemm_flops(m, r, m));
      TwoPortOp::recycle_vec(TwoPortOp::Context{m, ws_}, std::move(*suf));
    }
  }

  Matrix xloc = modified_.solve(bloc, pool, ws_);
  comm.charge_flops(ThomasFactorization::solve_flops(nloc, m, r));
  la::ws_release(ws_, std::move(bloc));
  return xloc;
}

la::Matrix ArdFactorization::solve_local_panels(mpsim::Comm& comm,
                                                const la::Matrix& b_local) const {
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.solve");
  const la::index_t m = m_;
  const la::index_t nloc = hi_ - lo_;
  const la::index_t r = b_local.cols();
  assert(b_local.rows() == nloc * m);
  par::Pool* pool = comm.pool();
  const TwoPortOp::Context ctx{m, ws_};
  const int L = static_cast<int>(lanes_.size());
  const bool dist = comm.size() > 1;
  const bool overlap = opts_.pipeline.overlap;

  Matrix xloc = la::ws_acquire(ws_, nloc * m, r);

  // RHS panels. chunk_cols == 0 (or >= R) degenerates to one panel, which
  // still exercises the round-interleaved replay when overlap is on.
  const la::index_t chunk = (opts_.pipeline.chunk_cols > 0 && opts_.pipeline.chunk_cols < r)
                                ? opts_.pipeline.chunk_cols
                                : r;
  struct Panel {
    la::index_t col0 = 0, cols = 0;
    Matrix bloc;
    typename CachedScan<TwoPortOp>::Replay fwd;
    typename CachedScan<TwoPortOpReversed>::Replay bwd;
    // Hierarchical per-panel vector parts (see local_phase_lanes):
    std::vector<TwoPortVec> lv;   ///< lane segment vecs
    std::vector<TwoPortVec> lpv;  ///< [i]: local prefix of lanes [0, i), i >= 1
    std::vector<TwoPortVec> lsv;  ///< [i]: local suffix of lanes [i, L), i >= 1
  };
  std::vector<Panel> panels;
  for (la::index_t c0 = 0; c0 < r; c0 += chunk) {
    Panel p;
    p.col0 = c0;
    p.cols = std::min(chunk, r - c0);
    panels.push_back(std::move(p));
  }

  const auto clone_vec = [&](const TwoPortVec& v) {
    TwoPortVec c{.p = la::ws_acquire(ws_, v.p.rows(), v.p.cols()),
                 .q = la::ws_acquire(ws_, v.q.rows(), v.q.cols())};
    la::copy(v.p.view(), c.p.view());
    la::copy(v.q.view(), c.q.view());
    return c;
  };

  /// Per-lane unmodified solves (pool-parallel) plus the serial replay of
  /// the factored lane chains; returns the whole segment's vector part.
  const auto local_reduce_lanes = [&](Panel& p) {
    p.lv.assign(static_cast<std::size_t>(L), TwoPortVec{});
    double flops = 0.0;
    par::parallel_for(
        pool, 0, L,
        [&](std::int64_t lb, std::int64_t le) {
          for (std::int64_t li = lb; li < le; ++li) {
            const Lane& ln = lanes_[static_cast<std::size_t>(li)];
            const la::index_t rows = ln.hi - ln.lo;
            const Matrix bl = la::to_matrix(p.bloc.block(ln.lo * m, 0, rows * m, p.cols));
            const Matrix t = ln.unmodified.solve(bl, nullptr, nullptr);
            TwoPortVec& v = p.lv[static_cast<std::size_t>(li)];
            v.p = la::to_matrix(t.block(0, 0, m, p.cols));
            v.q = la::to_matrix(t.block((rows - 1) * m, 0, m, p.cols));
          }
        },
        "ard.lane.reduce");
    for (const Lane& ln : lanes_) {
      flops += ThomasFactorization::solve_flops(ln.hi - ln.lo, m, p.cols);
    }
    comm.charge_flops(flops);

    p.lpv.assign(static_cast<std::size_t>(L), TwoPortVec{});
    p.lsv.assign(static_cast<std::size_t>(L), TwoPortVec{});
    for (int i = 1; i < L; ++i) {
      p.lpv[static_cast<std::size_t>(i)] =
          (i == 1) ? clone_vec(p.lv[0])
                   : merge_twoport_vec(fchain_cache_[static_cast<std::size_t>(i - 1)],
                                       p.lpv[static_cast<std::size_t>(i - 1)],
                                       p.lv[static_cast<std::size_t>(i - 1)], comm, ws_);
    }
    for (int i = L - 1; i >= 1; --i) {
      p.lsv[static_cast<std::size_t>(i)] =
          (i == L - 1) ? clone_vec(p.lv[static_cast<std::size_t>(L - 1)])
                       : merge_twoport_vec(bchain_cache_[static_cast<std::size_t>(i)],
                                           p.lv[static_cast<std::size_t>(i)],
                                           p.lsv[static_cast<std::size_t>(i + 1)], comm, ws_);
    }
    return merge_twoport_vec(fchain_cache_[static_cast<std::size_t>(L - 1)],
                             p.lpv[static_cast<std::size_t>(L - 1)],
                             p.lv[static_cast<std::size_t>(L - 1)], comm, ws_);
  };

  /// A-step: copy the panel, run its rank-local reduction, and (overlap
  /// mode) put both round-0 sends on the wire. No receives — so a rank may
  /// run this for panel k+1 while panel k's replies are still in flight.
  const auto start_panel = [&](Panel& p) {
    p.bloc = la::ws_acquire(ws_, nloc * m, p.cols);
    la::copy(b_local.block(0, p.col0, nloc * m, p.cols), p.bloc.view());
    if (!dist && L <= 1) return;
    TwoPortVec v;
    if (L > 1) {
      v = local_reduce_lanes(p);
      if (!dist) {
        TwoPortOp::recycle_vec(ctx, std::move(v));
        return;
      }
    } else {
      Matrix t = unmodified_.solve(p.bloc, pool, ws_);
      comm.charge_flops(ThomasFactorization::solve_flops(nloc, m, p.cols));
      v = TwoPortVec{.p = la::ws_acquire(ws_, m, p.cols), .q = la::ws_acquire(ws_, m, p.cols)};
      la::copy(t.block(0, 0, m, p.cols), v.p.view());
      la::copy(t.block((nloc - 1) * m, 0, m, p.cols), v.q.view());
      la::ws_release(ws_, std::move(t));
    }
    // Dynamic tags: one pair per in-flight panel, registry-enforced. The
    // schedule is SPMD-symmetric, so every rank picks the same pair.
    TwoPortVec v_fwd = clone_vec(v);
    const int ftag = comm.next_tag();
    p.fwd = typename CachedScan<TwoPortOp>::Replay(fwd_, comm, std::move(v_fwd), ftag);
    const int btag = comm.next_tag();
    p.bwd = typename CachedScan<TwoPortOpReversed>::Replay(bwd_, comm, std::move(v), btag);
    if (overlap) {
      p.fwd.begin(comm);
      p.bwd.begin(comm);
    }
  };

  /// B-step: run the panel's replays to completion. Overlap mode
  /// round-interleaves the two scans, finishing whichever round's message
  /// is already visible on the virtual clock; off mode reproduces the
  /// serial forward-then-backward schedule exactly.
  const auto drain_panel = [&](Panel& p) {
    if (!dist) return;
    if (overlap) {
      while (!p.fwd.done() || !p.bwd.done()) {
        if (!p.fwd.done() && (p.bwd.done() || p.fwd.ready(comm) || !p.bwd.ready(comm))) {
          p.fwd.finish_round(comm);
        } else {
          p.bwd.finish_round(comm);
        }
      }
    } else {
      p.fwd.begin(comm);
      while (!p.fwd.done()) p.fwd.finish_round(comm);
      p.bwd.begin(comm);
      while (!p.bwd.done()) p.bwd.finish_round(comm);
    }
  };

  /// Hierarchical C-step: per lane, merge the effective boundary vector
  /// parts (cross-rank ⊕ local chains, replaying the factor-time mix
  /// caches), apply the corrections, and solve the modified lanes.
  const auto finish_lanes = [&](Panel& p, std::optional<TwoPortVec> pre_opt,
                                std::optional<TwoPortVec> suf_opt) {
    for (int i = 0; i < L; ++i) {
      const Lane& ln = lanes_[static_cast<std::size_t>(i)];
      const TwoPortVec* pre = nullptr;
      TwoPortVec pre_own;
      bool owns_pre = false;
      if (pre_opt) {
        if (i == 0) {
          pre = &*pre_opt;
        } else {
          pre_own = merge_twoport_vec(pre_mix_cache_[static_cast<std::size_t>(i)], *pre_opt,
                                      p.lpv[static_cast<std::size_t>(i)], comm, ws_);
          pre = &pre_own;
          owns_pre = true;
        }
      } else if (i > 0) {
        pre = &p.lpv[static_cast<std::size_t>(i)];
      }
      if (pre != nullptr) {
        la::gemm(-1.0, ln.a_first.view(), pre->q.view(), 1.0,
                 p.bloc.block(ln.lo * m, 0, m, p.cols), pool);
        comm.charge_flops(la::gemm_flops(m, p.cols, m));
      }
      if (owns_pre) TwoPortOp::recycle_vec(ctx, std::move(pre_own));

      const TwoPortVec* suf = nullptr;
      TwoPortVec suf_own;
      bool owns_suf = false;
      if (suf_opt) {
        if (i == L - 1) {
          suf = &*suf_opt;
        } else {
          suf_own = merge_twoport_vec(suf_mix_cache_[static_cast<std::size_t>(i)],
                                      p.lsv[static_cast<std::size_t>(i + 1)], *suf_opt, comm,
                                      ws_);
          suf = &suf_own;
          owns_suf = true;
        }
      } else if (i + 1 < L) {
        suf = &p.lsv[static_cast<std::size_t>(i + 1)];
      }
      if (suf != nullptr) {
        la::gemm(-1.0, ln.c_last.view(), suf->p.view(), 1.0,
                 p.bloc.block((ln.hi - 1) * m, 0, m, p.cols), pool);
        comm.charge_flops(la::gemm_flops(m, p.cols, m));
      }
      if (owns_suf) TwoPortOp::recycle_vec(ctx, std::move(suf_own));
    }
    if (pre_opt) TwoPortOp::recycle_vec(ctx, std::move(*pre_opt));
    if (suf_opt) TwoPortOp::recycle_vec(ctx, std::move(*suf_opt));

    double flops = 0.0;
    par::parallel_for(
        pool, 0, L,
        [&](std::int64_t lb, std::int64_t le) {
          for (std::int64_t li = lb; li < le; ++li) {
            const Lane& ln = lanes_[static_cast<std::size_t>(li)];
            const la::index_t rows = ln.hi - ln.lo;
            const Matrix bl = la::to_matrix(p.bloc.block(ln.lo * m, 0, rows * m, p.cols));
            const Matrix xl = ln.modified.solve(bl, nullptr, nullptr);
            la::copy(xl.view(), xloc.block(ln.lo * m, p.col0, rows * m, p.cols));
          }
        },
        "ard.lane.backsolve");
    for (const Lane& ln : lanes_) {
      flops += ThomasFactorization::solve_flops(ln.hi - ln.lo, m, p.cols);
    }
    comm.charge_flops(flops);

    for (int i = 1; i < L; ++i) {
      TwoPortOp::recycle_vec(ctx, std::move(p.lpv[static_cast<std::size_t>(i)]));
      TwoPortOp::recycle_vec(ctx, std::move(p.lsv[static_cast<std::size_t>(i)]));
    }
    p.lv.clear();
    p.lpv.clear();
    p.lsv.clear();
  };

  /// C-step: harvest the replays, apply boundary corrections, back-solve
  /// the modified segment, and write the panel's slice of the result.
  const auto finish_panel = [&](Panel& p) {
    std::optional<TwoPortVec> pre;
    std::optional<TwoPortVec> suf;
    if (dist) {
      pre = std::move(p.fwd).take_result();
      suf = std::move(p.bwd).take_result();
    }
    if (L > 1) {
      finish_lanes(p, std::move(pre), std::move(suf));
    } else {
      if (pre) {
        la::gemm(-1.0, a_lo_.view(), pre->q.view(), 1.0, p.bloc.block(0, 0, m, p.cols), pool);
        comm.charge_flops(la::gemm_flops(m, p.cols, m));
        TwoPortOp::recycle_vec(ctx, std::move(*pre));
      }
      if (suf) {
        la::gemm(-1.0, c_hi_.view(), suf->p.view(), 1.0,
                 p.bloc.block((nloc - 1) * m, 0, m, p.cols), pool);
        comm.charge_flops(la::gemm_flops(m, p.cols, m));
        TwoPortOp::recycle_vec(ctx, std::move(*suf));
      }
      Matrix xp = modified_.solve(p.bloc, pool, ws_);
      comm.charge_flops(ThomasFactorization::solve_flops(nloc, m, p.cols));
      la::copy(xp.view(), xloc.block(0, p.col0, nloc * m, p.cols));
      la::ws_release(ws_, std::move(xp));
    }
    la::ws_release(ws_, std::move(p.bloc));
  };

  if (overlap && panels.size() > 1) {
    // Software pipeline: panel k+1's A-step (local reduction + round-0
    // sends, no receives) runs while panel k's replies are in flight, so
    // its compute is what the receiver's clock advances on instead of
    // charged waits.
    start_panel(panels[0]);
    for (std::size_t k = 0; k < panels.size(); ++k) {
      if (k + 1 < panels.size()) start_panel(panels[k + 1]);
      drain_panel(panels[k]);
      finish_panel(panels[k]);
    }
  } else {
    for (Panel& p : panels) {
      start_panel(p);
      drain_panel(p);
      finish_panel(p);
    }
  }
  return xloc;
}

std::size_t ArdFactorization::storage_bytes() const {
  const auto scan_cache = [&](std::size_t rounds) {
    // Up to two merge events per round, four M x M matrices each.
    return rounds * 2 * 4 * static_cast<std::size_t>(m_ * m_) * sizeof(double);
  };
  const auto tp_bytes = static_cast<std::size_t>(tp_.P.size() + tp_.Q.size() + tp_.R.size() +
                                                 tp_.S.size() + tp_.a_first.size() +
                                                 tp_.c_last.size()) *
                        sizeof(double);
  const auto mat_bytes = [](const la::Matrix& a) {
    return static_cast<std::size_t>(a.size()) * sizeof(double);
  };
  const auto tp_size = [&](const TwoPort& t) {
    return mat_bytes(t.P) + mat_bytes(t.Q) + mat_bytes(t.R) + mat_bytes(t.S) +
           mat_bytes(t.a_first) + mat_bytes(t.c_last);
  };
  const auto cache_size = [&](const TwoPortCache& c) {
    return mat_bytes(c.x1) + mat_bytes(c.x2) + mat_bytes(c.x3) + mat_bytes(c.x4);
  };
  if (hierarchical()) {
    // Lane factorizations replace the two flat segment factorizations.
    // Everything the solve replay retains — lane two-ports, the fpre_/
    // bsuf_ prefix/suffix chains, and the chain/mix merge caches — is
    // summed at its actual size so budget-based admission sees the same
    // fidelity as the flat path.
    std::size_t lane_bytes = 0;
    for (const Lane& ln : lanes_) {
      lane_bytes += ln.unmodified.storage_bytes() + ln.modified.storage_bytes() +
                    tp_size(ln.tp) + mat_bytes(ln.a_first) + mat_bytes(ln.c_last);
    }
    for (const TwoPort& t : fpre_) lane_bytes += tp_size(t);
    for (const TwoPort& t : bsuf_) lane_bytes += tp_size(t);
    for (const TwoPortCache& c : fchain_cache_) lane_bytes += cache_size(c);
    for (const TwoPortCache& c : bchain_cache_) lane_bytes += cache_size(c);
    for (const TwoPortCache& c : pre_mix_cache_) lane_bytes += cache_size(c);
    for (const TwoPortCache& c : suf_mix_cache_) lane_bytes += cache_size(c);
    return lane_bytes + scan_cache(fwd_.num_rounds()) + scan_cache(bwd_.num_rounds()) +
           tp_bytes + static_cast<std::size_t>(a_lo_.size() + c_hi_.size()) * sizeof(double);
  }
  return unmodified_.storage_bytes() + modified_.storage_bytes() +
         scan_cache(fwd_.num_rounds()) + scan_cache(bwd_.num_rounds()) + tp_bytes +
         static_cast<std::size_t>(a_lo_.size() + c_hi_.size()) * sizeof(double);
}

}  // namespace ardbt::core
