#include "src/core/ard.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"
#include "src/la/workspace.hpp"
#include "src/par/pool.hpp"

namespace ardbt::core {
namespace {

using btds::BlockTridiag;
using btds::ThomasFactorization;
using la::Matrix;

/// Copy this rank's block rows out of a global (N*M) x R matrix.
Matrix extract_local(const Matrix& global, la::index_t lo, la::index_t nloc, la::index_t m,
                     la::Workspace* ws) {
  Matrix local = la::ws_acquire(ws, nloc * m, global.cols());
  la::copy(global.block(lo * m, 0, nloc * m, global.cols()), local.view());
  return local;
}

/// Copy this rank's rows of `sys` into a standalone segment system.
template <typename SysView>
BlockTridiag copy_segment(const SysView& sys, la::index_t lo, la::index_t nloc, la::index_t m) {
  BlockTridiag tloc(nloc, m);
  for (la::index_t k = 0; k < nloc; ++k) {
    tloc.diag(k) = sys.diag(lo + k);
    if (k > 0) tloc.lower(k) = sys.lower(lo + k);
    if (k + 1 < nloc) tloc.upper(k) = sys.upper(lo + k);
  }
  return tloc;
}

}  // namespace

template <typename SysView>
void ArdFactorization::local_phase(mpsim::Comm& comm, const SysView& sys) {
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.factor.local");
  const la::index_t m = m_;
  const la::index_t nloc = hi_ - lo_;

  // --- 1. Local segment copy and its block-Thomas factorization.
  const BlockTridiag tloc = copy_segment(sys, lo_, nloc, m);
  unmodified_ = ThomasFactorization::factor(tloc, opts_.pivot);
  comm.charge_flops(ThomasFactorization::factor_flops(nloc, m, opts_.pivot));

  // --- 2. Two-port corner blocks via a 2M-column local solve: columns
  // [0, M) carry the unit load on the first block row, columns [M, 2M)
  // on the last, so the corners of the solution are the corner blocks of
  // T_loc^{-1}.
  Matrix e = la::ws_acquire(ws_, nloc * m, 2 * m);
  for (la::index_t i = 0; i < m; ++i) {
    e(i, i) = 1.0;
    e((nloc - 1) * m + i, m + i) = 1.0;
  }
  Matrix w = unmodified_.solve(e, comm.pool(), ws_);
  comm.charge_flops(ThomasFactorization::solve_flops(nloc, m, 2 * m));

  tp_.P = la::to_matrix(w.block(0, 0, m, m));
  tp_.Q = la::to_matrix(w.block(0, m, m, m));
  tp_.R = la::to_matrix(w.block((nloc - 1) * m, 0, m, m));
  tp_.S = la::to_matrix(w.block((nloc - 1) * m, m, m, m));
  tp_.a_first = (lo_ > 0) ? sys.lower(lo_) : Matrix(m, m);
  tp_.c_last = (hi_ < n_) ? sys.upper(hi_ - 1) : Matrix(m, m);
  a_lo_ = tp_.a_first;
  c_hi_ = tp_.c_last;
  la::ws_release(ws_, std::move(e));
  la::ws_release(ws_, std::move(w));
}

template <typename SysView>
void ArdFactorization::global_phase(mpsim::Comm& comm, const SysView& sys) {
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.factor.global");
  const la::index_t m = m_;
  const la::index_t nloc = hi_ - lo_;

  // --- 3. Forward and backward two-port prefix scans (the log P term).
  fwd_ = CachedScan<TwoPortOp>::factor(comm, ScanDirection::kForward, TwoPortOp::Context{m, ws_},
                                       tp_, ard_tags::kFwdFactor);
  bwd_ = CachedScan<TwoPortOpReversed>::factor(
      comm, ScanDirection::kBackward, TwoPortOp::Context{m, ws_}, tp_, ard_tags::kBwdFactor);

  // --- 4. Fold the boundary relations into the segment's corner diagonal
  // blocks and factor the modified segment:
  //   D'_lo     = D_lo     - A_lo S_pre C_{lo-1}
  //   D'_{hi-1} = D_{hi-1} - C_{hi-1} P_suf A_hi
  BlockTridiag tloc = copy_segment(sys, lo_, nloc, m);
  if (fwd_.has_incoming()) {
    const TwoPort& pre = fwd_.incoming_mat();
    Matrix as = la::ws_acquire(ws_, m, m);
    la::gemm(1.0, a_lo_.view(), pre.S.view(), 0.0, as.view());
    la::gemm(-1.0, as.view(), pre.c_last.view(), 1.0, tloc.diag(0).view());
    la::ws_release(ws_, std::move(as));
    comm.charge_flops(2.0 * la::gemm_flops(m, m, m));
  }
  if (bwd_.has_incoming()) {
    const TwoPort& suf = bwd_.incoming_mat();
    Matrix cp = la::ws_acquire(ws_, m, m);
    la::gemm(1.0, c_hi_.view(), suf.P.view(), 0.0, cp.view());
    la::gemm(-1.0, cp.view(), suf.a_first.view(), 1.0, tloc.diag(nloc - 1).view());
    la::ws_release(ws_, std::move(cp));
    comm.charge_flops(2.0 * la::gemm_flops(m, m, m));
  }
  modified_ = ThomasFactorization::factor(tloc, opts_.pivot);
  comm.charge_flops(ThomasFactorization::factor_flops(nloc, m, opts_.pivot));
}

template <typename SysView>
ArdFactorization ArdFactorization::factor_impl(mpsim::Comm& comm, const SysView& sys,
                                               const btds::RowPartition& part,
                                               const ArdOptions& opts, la::Workspace* ws) {
  ArdFactorization f;
  f.rank_ = comm.rank();
  f.opts_ = opts;
  f.ws_ = ws;
  f.n_ = sys.num_blocks();
  f.m_ = sys.block_size();
  f.lo_ = part.begin(comm.rank());
  f.hi_ = part.end(comm.rank());
  assert(part.nranks() == comm.size());
  if (f.hi_ - f.lo_ < 1) {
    throw std::runtime_error("ARD: every rank needs at least one block row (N >= P)");
  }
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.factor");
  f.local_phase(comm, sys);
  f.global_phase(comm, sys);
  if constexpr (obs::kTraceCompiledIn) {
    // Breakdown marks make suspect factorizations visible in traces even
    // when the driver's policy accepts them; pure comparisons, no flops.
    if (comm.trace() != nullptr &&
        f.diagnostics().growth() > opts.breakdown_growth_threshold) {
      comm.trace()->instant(obs::SpanKind::kMark, "ard.breakdown", comm.now_sample(), -1, 0);
    }
  }
  return f;
}

ArdFactorization ArdFactorization::factor(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                                          const btds::RowPartition& part, const ArdOptions& opts,
                                          la::Workspace* ws) {
  return factor_impl(comm, sys, part, opts, ws);
}

ArdFactorization ArdFactorization::factor(mpsim::Comm& comm,
                                          const btds::LocalBlockTridiag& sys,
                                          const btds::RowPartition& part, const ArdOptions& opts,
                                          la::Workspace* ws) {
  assert(part.begin(comm.rank()) == sys.lo() && part.end(comm.rank()) == sys.hi());
  return factor_impl(comm, sys, part, opts, ws);
}

void ArdFactorization::update(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                              bool rows_changed) {
  if (rows_changed) local_phase(comm, sys);
  global_phase(comm, sys);
}

void ArdFactorization::update(mpsim::Comm& comm, const btds::LocalBlockTridiag& sys,
                              bool rows_changed) {
  if (rows_changed) local_phase(comm, sys);
  global_phase(comm, sys);
}

void ArdFactorization::solve(mpsim::Comm& comm, const la::Matrix& b, la::Matrix& x) const {
  const la::index_t m = m_;
  const la::index_t nloc = hi_ - lo_;
  const la::index_t r = b.cols();
  assert(b.rows() == n_ * m_ && x.rows() == b.rows() && x.cols() == r);
  Matrix b_local = extract_local(b, lo_, nloc, m, ws_);
  Matrix xloc = solve_local(comm, b_local);
  la::copy(xloc.view(), x.block(lo_ * m, 0, nloc * m, r));
  la::ws_release(ws_, std::move(b_local));
  la::ws_release(ws_, std::move(xloc));
}

la::Matrix ArdFactorization::solve_local(mpsim::Comm& comm, const la::Matrix& b_local) const {
  ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.solve");
  const la::index_t m = m_;
  const la::index_t nloc = hi_ - lo_;
  const la::index_t r = b_local.cols();
  assert(b_local.rows() == nloc * m);

  Matrix bloc = la::ws_acquire(ws_, b_local.rows(), b_local.cols());
  la::copy(b_local.view(), bloc.view());
  par::Pool* pool = comm.pool();

  if (comm.size() > 1) {
    // Segment vector two-port: first/last blocks of T_loc^{-1} b_loc.
    Matrix t = unmodified_.solve(bloc, pool, ws_);
    comm.charge_flops(ThomasFactorization::solve_flops(nloc, m, r));
    TwoPortVec v{.p = la::ws_acquire(ws_, m, r), .q = la::ws_acquire(ws_, m, r)};
    la::copy(t.block(0, 0, m, r), v.p.view());
    la::copy(t.block((nloc - 1) * m, 0, m, r), v.q.view());
    la::ws_release(ws_, std::move(t));

    // The forward replay consumes its own copy of v (the seed path passed
    // v by value); the backward replay consumes v itself.
    TwoPortVec v_fwd{.p = la::ws_acquire(ws_, m, r), .q = la::ws_acquire(ws_, m, r)};
    la::copy(v.p.view(), v_fwd.p.view());
    la::copy(v.q.view(), v_fwd.q.view());
    std::optional<TwoPortVec> pre = fwd_.solve(comm, std::move(v_fwd), ard_tags::kFwdSolve);
    std::optional<TwoPortVec> suf = bwd_.solve(comm, std::move(v), ard_tags::kBwdSolve);

    // Boundary corrections: b'_lo -= A_lo q_pre, b'_{hi-1} -= C_{hi-1} p_suf.
    if (pre) {
      la::gemm(-1.0, a_lo_.view(), pre->q.view(), 1.0, bloc.block(0, 0, m, r), pool);
      comm.charge_flops(la::gemm_flops(m, r, m));
      TwoPortOp::recycle_vec(TwoPortOp::Context{m, ws_}, std::move(*pre));
    }
    if (suf) {
      la::gemm(-1.0, c_hi_.view(), suf->p.view(), 1.0, bloc.block((nloc - 1) * m, 0, m, r),
               pool);
      comm.charge_flops(la::gemm_flops(m, r, m));
      TwoPortOp::recycle_vec(TwoPortOp::Context{m, ws_}, std::move(*suf));
    }
  }

  Matrix xloc = modified_.solve(bloc, pool, ws_);
  comm.charge_flops(ThomasFactorization::solve_flops(nloc, m, r));
  la::ws_release(ws_, std::move(bloc));
  return xloc;
}

std::size_t ArdFactorization::storage_bytes() const {
  const auto scan_cache = [&](std::size_t rounds) {
    // Up to two merge events per round, four M x M matrices each.
    return rounds * 2 * 4 * static_cast<std::size_t>(m_ * m_) * sizeof(double);
  };
  const auto tp_bytes = static_cast<std::size_t>(tp_.P.size() + tp_.Q.size() + tp_.R.size() +
                                                 tp_.S.size() + tp_.a_first.size() +
                                                 tp_.c_last.size()) *
                        sizeof(double);
  return unmodified_.storage_bytes() + modified_.storage_bytes() +
         scan_cache(fwd_.num_rounds()) + scan_cache(bwd_.num_rounds()) + tp_bytes +
         static_cast<std::size_t>(a_lo_.size() + c_hi_.size()) * sizeof(double);
}

}  // namespace ardbt::core
