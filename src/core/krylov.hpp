#pragma once

#include <vector>

#include "src/btds/halo.hpp"
#include "src/core/ard.hpp"

/// \file krylov.hpp
/// Distributed preconditioned conjugate gradients (PCG) with an ARD
/// factorization as the preconditioner.
///
/// The motivating pattern: the *true* operator is SPD block tridiagonal
/// with, say, time-varying coefficients; factoring it every step is
/// wasteful. Freeze a nearby matrix, factor it once with ARD, and run a
/// few PCG iterations per step — every iteration is one halo-exchange
/// apply (O(M^2 R N/P)) plus one ARD solve (O(M^2 R (N/P + log P))),
/// exactly the multi-right-hand-side regime the paper targets. With the
/// exact operator as its own preconditioner PCG converges in one
/// iteration (a test pins this).
///
/// Right-hand sides are treated as independent columns: dot products and
/// step lengths are computed per column (one allreduce of R values per
/// reduction), so a whole batch converges together.

namespace ardbt::core {

/// Outcome of a Krylov solve.
struct KrylovResult {
  int iterations = 0;
  bool converged = false;
  /// max-over-columns relative residual after each iteration (monitored
  /// from the recurrence; the final entry is recomputed exactly).
  std::vector<double> residual_norms;
};

/// Collective. Solve `op` X = B by PCG on the distributed slices.
///
/// `op` must be SPD. `precond` may be null (plain CG) or an ARD
/// factorization of an SPD matrix near `op`. `x_local` is used as the
/// initial guess if its shape matches `b_local` (otherwise it is resized
/// to zeros). Converges when every column's relative residual drops below
/// `tol`.
KrylovResult pcg(mpsim::Comm& comm, const btds::LocalBlockTridiag& op,
                 const btds::RowPartition& part, const ArdFactorization* precond,
                 const la::Matrix& b_local, la::Matrix& x_local, int max_iters = 100,
                 double tol = 1e-10);

/// Collective. Preconditioned BiCGStab (van der Vorst) for general
/// (nonsymmetric) operators, same conventions as pcg. Each iteration
/// costs two halo applies and two preconditioner solves.
KrylovResult bicgstab(mpsim::Comm& comm, const btds::LocalBlockTridiag& op,
                      const btds::RowPartition& part, const ArdFactorization* precond,
                      const la::Matrix& b_local, la::Matrix& x_local, int max_iters = 100,
                      double tol = 1e-10);

}  // namespace ardbt::core
