#pragma once

#include "src/la/lu.hpp"
#include "src/la/matrix.hpp"

/// \file transfer.hpp
/// Transfer-matrix algebra of recursive doubling.
///
/// Block LU of a block tridiagonal matrix obeys the matrix Riccati
/// recurrence
///     U_0 = D_0,   U_i = D_i - A_i U_{i-1}^{-1} C_{i-1},
/// which in the normalized variable H_i = C_i^{-1} U_i (with the ghost
/// convention C_{N-1} := I) becomes the left matrix Moebius map
///     H_i = C_i^{-1} D_i - C_i^{-1} A_i H_{i-1}^{-1}.
/// Writing H_i = Z_i Y_i^{-1} linearizes it: the homogeneous pair
/// [Z_i; Y_i] evolves by 2M x 2M transfer matrices
///     Theta_i = | C_i^{-1} D_i   -C_i^{-1} A_i |
///               |      I               0       |
/// with initial pair [Z_{-1}; Y_{-1}] = [I; 0]. Prefix products of the
/// Theta_i are therefore exactly what recursive doubling parallelizes, and
/// because H is recovered as a *ratio*, the exponentially growing modes of
/// the prefix cancel — this is what makes the formulation stable where the
/// naive solution-space ("shooting") prefix is not (see shooting.hpp).
///
/// Prefix products are renormalized by powers of two (exact in floating
/// point); the pair is projective, so the discarded scale is irrelevant.

namespace ardbt::core {

using la::index_t;
using la::Matrix;

/// Assemble Theta_i from C_i^{-1}-solved blocks. `a` may be null for the
/// first block row (no sub-diagonal). `c_lu` must be the LU factors of
/// C_i, or null for the last block row (ghost C = I).
Matrix build_theta(const Matrix& d, const Matrix* a, const la::LuFactors* c_lu);

/// Rescale `m` in place by a power of two so its largest magnitude lands
/// in [1/2, 1). No-op for zero or non-finite-free matrices; the discarded
/// scale is fine because callers only use projective ratios. Returns the
/// applied exponent (for diagnostics).
int rescale_pow2(la::MatrixView m);

/// Combined rescale of the stacked pair [Z; Y] held as one 2M x M matrix.
inline int rescale_pair(la::MatrixView zy) { return rescale_pow2(zy); }

}  // namespace ardbt::core
