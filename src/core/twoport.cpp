#include "src/core/twoport.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/core/serde.hpp"
#include "src/la/blas1.hpp"
#include "src/la/gemm.hpp"

namespace ardbt::core {
namespace {

/// Pack a list of equally sized matrices by stacking their rows.
std::vector<std::byte> pack(std::initializer_list<const Matrix*> mats) {
  std::size_t total = 0;
  for (const Matrix* m : mats) total += static_cast<std::size_t>(m->size()) * sizeof(double);
  std::vector<std::byte> bytes;
  bytes.reserve(total);
  for (const Matrix* m : mats) {
    const auto chunk = ser_matrix(*m);
    bytes.insert(bytes.end(), chunk.begin(), chunk.end());
  }
  return bytes;
}

Matrix unpack_one(std::span<const std::byte>& bytes, index_t rows, index_t cols) {
  const std::size_t n = static_cast<std::size_t>(rows * cols) * sizeof(double);
  Matrix m = des_matrix(bytes.first(n), rows, cols);
  bytes = bytes.subspan(n);
  return m;
}

/// unpack_one into an arena-backed matrix (replay path: one fresh Matrix
/// per round per rank would otherwise defeat the allocation-free solve).
Matrix unpack_one_ws(la::Workspace* ws, std::span<const std::byte>& bytes, index_t rows,
                     index_t cols) {
  if (ws == nullptr) return unpack_one(bytes, rows, cols);
  const std::size_t n = static_cast<std::size_t>(rows * cols) * sizeof(double);
  Matrix m = ws->acquire(rows, cols);
  std::memcpy(m.data().data(), bytes.data(), n);
  bytes = bytes.subspan(n);
  return m;
}

}  // namespace

TwoPort merge_twoport(const TwoPort& left, const TwoPort& right, TwoPortCache& cache,
                      mpsim::Comm& comm, la::Workspace* ws) {
  const index_t m = left.P.rows();
  assert(right.P.rows() == m);
  const Matrix& a = right.a_first;  // coupling of the interface rows
  const Matrix& c = left.c_last;
  double flops = 0.0;

  // X4 = P_R a, X2 = R_R a.
  cache.x4 = la::ws_acquire(ws, m, m);
  la::gemm(1.0, right.P.view(), a.view(), 0.0, cache.x4.view());
  cache.x2 = la::ws_acquire(ws, m, m);
  la::gemm(1.0, right.R.view(), a.view(), 0.0, cache.x2.view());
  // Interface system K = I - X4 (S_L c).
  Matrix slc = la::ws_acquire(ws, m, m);
  la::gemm(1.0, left.S.view(), c.view(), 0.0, slc.view());
  Matrix k = Matrix::identity(m);
  la::gemm(-1.0, cache.x4.view(), slc.view(), 1.0, k.view());
  flops += 4.0 * la::gemm_flops(m, m, m);
  la::LuFactors k_lu = la::lu_factor(std::move(k));
  flops += la::lu_factor_flops(m);
  if (!k_lu.ok()) {
    throw fault::SingularPivotError(fault::ErrorCode::kSingularPivot, "core::twoport_merge", -1,
                                    static_cast<std::int64_t>(k_lu.info - 1), k_lu.growth);
  }

  // X1 = (Q_L c) K^{-1}, X3 = (S_L c) K^{-1} (right divisions).
  Matrix qlc = la::ws_acquire(ws, m, m);
  la::gemm(1.0, left.Q.view(), c.view(), 0.0, qlc.view());
  cache.x1 = la::right_divide(qlc.view(), k_lu, ws);
  cache.x3 = la::right_divide(slc.view(), k_lu, ws);
  la::ws_release(ws, std::move(qlc));
  la::ws_release(ws, std::move(slc));
  flops += la::gemm_flops(m, m, m) + 2.0 * la::lu_solve_flops(m, m);

  TwoPort out;
  out.a_first = left.a_first;
  out.c_last = right.c_last;

  // P' = P_L + X1 X4 R_L.
  Matrix x1x4 = la::ws_acquire(ws, m, m);
  la::gemm(1.0, cache.x1.view(), cache.x4.view(), 0.0, x1x4.view());
  out.P = left.P;
  la::gemm(1.0, x1x4.view(), left.R.view(), 1.0, out.P.view());
  la::ws_release(ws, std::move(x1x4));
  // Q' = -X1 Q_R.
  out.Q = Matrix(m, m);
  la::gemm(-1.0, cache.x1.view(), right.Q.view(), 0.0, out.Q.view());
  // R' = -X2 (I + X3 X4) R_L.
  Matrix inner = Matrix::identity(m);
  la::gemm(1.0, cache.x3.view(), cache.x4.view(), 1.0, inner.view());
  Matrix inner_rl = la::ws_acquire(ws, m, m);
  la::gemm(1.0, inner.view(), left.R.view(), 0.0, inner_rl.view());
  out.R = Matrix(m, m);
  la::gemm(-1.0, cache.x2.view(), inner_rl.view(), 0.0, out.R.view());
  la::ws_release(ws, std::move(inner_rl));
  // S' = S_R + X2 X3 Q_R.
  Matrix x2x3 = la::ws_acquire(ws, m, m);
  la::gemm(1.0, cache.x2.view(), cache.x3.view(), 0.0, x2x3.view());
  out.S = right.S;
  la::gemm(1.0, x2x3.view(), right.Q.view(), 1.0, out.S.view());
  la::ws_release(ws, std::move(x2x3));
  flops += 8.0 * la::gemm_flops(m, m, m);

  comm.charge_flops(flops);
  return out;
}

TwoPortVec merge_twoport_vec(const TwoPortCache& cache, const TwoPortVec& left,
                             const TwoPortVec& right, mpsim::Comm& comm, la::Workspace* ws) {
  const index_t m = cache.x1.rows();
  const index_t r = left.p.cols();
  assert(right.p.cols() == r);

  // t = p_R - X4 q_L.
  Matrix t = la::ws_acquire(ws, m, r);
  la::copy(right.p.view(), t.view());
  la::gemm(-1.0, cache.x4.view(), left.q.view(), 1.0, t.view());

  TwoPortVec out;
  // p' = p_L - X1 t.
  out.p = la::ws_acquire(ws, m, r);
  la::copy(left.p.view(), out.p.view());
  la::gemm(-1.0, cache.x1.view(), t.view(), 1.0, out.p.view());
  // q' = q_R - X2 (q_L - X3 t).
  Matrix inner = la::ws_acquire(ws, m, r);
  la::copy(left.q.view(), inner.view());
  la::gemm(-1.0, cache.x3.view(), t.view(), 1.0, inner.view());
  out.q = la::ws_acquire(ws, m, r);
  la::copy(right.q.view(), out.q.view());
  la::gemm(-1.0, cache.x2.view(), inner.view(), 1.0, out.q.view());
  la::ws_release(ws, std::move(t));
  la::ws_release(ws, std::move(inner));

  comm.charge_flops(4.0 * la::gemm_flops(m, r, m));
  return out;
}

std::vector<std::byte> TwoPortOp::ser_mat(const Context&, const Mat& m) {
  return pack({&m.P, &m.Q, &m.R, &m.S, &m.a_first, &m.c_last});
}

TwoPortOp::Mat TwoPortOp::des_mat(const Context& ctx, std::span<const std::byte> bytes) {
  TwoPort out;
  out.P = unpack_one(bytes, ctx.m, ctx.m);
  out.Q = unpack_one(bytes, ctx.m, ctx.m);
  out.R = unpack_one(bytes, ctx.m, ctx.m);
  out.S = unpack_one(bytes, ctx.m, ctx.m);
  out.a_first = unpack_one(bytes, ctx.m, ctx.m);
  out.c_last = unpack_one(bytes, ctx.m, ctx.m);
  assert(bytes.empty());
  return out;
}

std::vector<std::byte> TwoPortOp::ser_vec(const Context&, const Vec& v) {
  return pack({&v.p, &v.q});
}

TwoPortOp::Vec TwoPortOp::des_vec(const Context& ctx, std::span<const std::byte> bytes) {
  const auto r = static_cast<index_t>(bytes.size() / sizeof(double)) / (2 * ctx.m);
  TwoPortVec out;
  out.p = unpack_one_ws(ctx.ws, bytes, ctx.m, r);
  out.q = unpack_one_ws(ctx.ws, bytes, ctx.m, r);
  assert(bytes.empty());
  return out;
}

}  // namespace ardbt::core
