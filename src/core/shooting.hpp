#pragma once

#include "src/btds/block_tridiag.hpp"

/// \file shooting.hpp
/// The *naive* solution-space recursive-doubling formulation, kept as a
/// stability ablation (bench B-abl-scaling / accuracy table T3).
///
/// Rewriting row i directly on the solution,
///     x_{i+1} = -C_i^{-1} D_i x_i - C_i^{-1} A_i x_{i-1} + C_i^{-1} b_i,
/// gives an affine prefix on states u_i = [x_{i+1}; x_i]: one prefix
/// product to the end, an M x M boundary solve for x_0 (enforcing the
/// ghost condition x_N = 0), then forward recovery of every x_i — a
/// shooting method. The transfer matrices have spectral radius > 1 for
/// diagonally dominant systems, so recovery amplifies the O(eps) error in
/// x_0 by lambda^i: the method loses all accuracy beyond N of a few tens.
/// This is exactly why production recursive doubling runs on the block-LU
/// recurrences (see transfer.hpp) — the ratio formulation the library's
/// real solvers use.

namespace ardbt::core {

/// Solve by the shooting prefix (sequential; the instability is
/// P-independent). Returns X. Power-of-two rescaling of the homogeneous
/// prefix keeps intermediates finite, but cannot fix the lambda^i error
/// amplification — expect garbage for large N; that is the point.
la::Matrix shooting_solve(const btds::BlockTridiag& sys, const la::Matrix& b);

}  // namespace ardbt::core
