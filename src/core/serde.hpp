#pragma once

#include <cassert>
#include <cstring>
#include <span>
#include <vector>

#include "src/la/matrix.hpp"

/// \file serde.hpp
/// Raw wire format for matrices of known shape: the payload is just the
/// row-major doubles; both sides agree on dimensions out of band (they
/// always do in the solvers — every exchanged operator has a fixed shape).

namespace ardbt::core {

/// Matrix -> bytes (row-major doubles, no header).
inline std::vector<std::byte> ser_matrix(const la::Matrix& m) {
  std::vector<std::byte> bytes(static_cast<std::size_t>(m.size()) * sizeof(double));
  std::memcpy(bytes.data(), m.data().data(), bytes.size());
  return bytes;
}

/// Bytes -> matrix of shape (rows, cols); sizes must match exactly.
inline la::Matrix des_matrix(std::span<const std::byte> bytes, la::index_t rows,
                             la::index_t cols) {
  la::Matrix m(rows, cols);
  assert(bytes.size() == static_cast<std::size_t>(m.size()) * sizeof(double));
  std::memcpy(m.data().data(), bytes.data(), bytes.size());
  return m;
}

}  // namespace ardbt::core
