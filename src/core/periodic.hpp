#pragma once

#include "src/core/ard.hpp"

/// \file periodic.hpp
/// Periodic (cyclic) block tridiagonal systems — block tridiagonal plus
/// corner blocks coupling the first and last block rows:
///
///   | D_0 C_0              B_0    | B_0 = corner_lower(0, N-1)
///   | A_1 D_1 C_1                 |
///   |      ...                    |
///   | C_N          A_{N-1} D_{N-1}| C_N = corner_upper(N-1, 0)
///
/// the form periodic boundary conditions produce (cyclic ADI lines,
/// toroidal geometries). Solved by the Woodbury identity on top of the
/// ARD factorization of the acyclic part T:
///
///   T_p = T + U F^T,   U = E W (nonzero only in the first/last block
///   rows), F = [e_first | e_last],
///   T_p^{-1} = T^{-1} - (T^{-1} U) (I + F^T T^{-1} U)^{-1} F^T T^{-1}.
///
/// The factor phase computes T^{-1} U (one 2M-column ARD solve, each rank
/// keeping its row slice) and the LU of the 2M x 2M capacitance matrix —
/// all right-hand-side independent, so the accelerated factor/solve split
/// carries over: each periodic solve is one ARD solve plus O(M^2 R) of
/// correction and two M x R broadcasts.

namespace ardbt::core {

/// Tags used by the periodic solver.
namespace periodic_tags {
inline constexpr int kFirstRow = 98;
inline constexpr int kLastRow = 99;
}  // namespace periodic_tags

/// Factor-once / solve-many periodic solver. Requires N >= 3 so the
/// corner couplings are distinct from the tridiagonal ones.
class PeriodicArdFactorization {
 public:
  PeriodicArdFactorization() = default;

  /// Collective. `sys` is the acyclic part; `corner_lower` couples row 0
  /// to row N-1 (the B_0 block), `corner_upper` couples row N-1 to row 0
  /// (the C_N block). Throws std::runtime_error on singular pivots or a
  /// singular capacitance matrix.
  static PeriodicArdFactorization factor(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                                         const la::Matrix& corner_lower,
                                         const la::Matrix& corner_upper,
                                         const btds::RowPartition& part,
                                         const ArdOptions& opts = {});

  /// Collective. Solve the periodic system for all columns of `b`;
  /// writes this rank's block rows of `x` (global shapes, as
  /// ArdFactorization::solve).
  void solve(mpsim::Comm& comm, const la::Matrix& b, la::Matrix& x) const;

  la::index_t num_blocks() const { return n_; }
  la::index_t block_size() const { return m_; }

 private:
  int rank_ = 0;
  int nranks_ = 1;
  la::index_t n_ = 0;
  la::index_t m_ = 0;
  la::index_t lo_ = 0;
  la::index_t hi_ = 0;

  ArdFactorization base_;   // factorization of the acyclic part
  la::Matrix tu_local_;     // this rank's rows of T^{-1} U  (nloc*M x 2M)
  la::LuFactors cap_lu_;    // LU of I + F^T T^{-1} U        (2M x 2M)
};

/// Apply the periodic operator (acyclic part + corners) — ground truth
/// for tests and residual checks.
la::Matrix apply_periodic(const btds::BlockTridiag& sys, const la::Matrix& corner_lower,
                          const la::Matrix& corner_upper, const la::Matrix& x);

}  // namespace ardbt::core
