#include "src/core/transfer.hpp"

#include <cassert>
#include <cmath>

#include "src/la/blas1.hpp"

namespace ardbt::core {

Matrix build_theta(const Matrix& d, const Matrix* a, const la::LuFactors* c_lu) {
  const index_t m = d.rows();
  assert(d.cols() == m);
  assert(!a || (a->rows() == m && a->cols() == m));

  // Solve C [Wd | Wa] = [D | A] in one pass (2M right-hand sides).
  Matrix rhs(m, a ? 2 * m : m);
  la::copy(d.view(), rhs.block(0, 0, m, m));
  if (a) la::copy(a->view(), rhs.block(0, m, m, m));
  if (c_lu) la::lu_solve_inplace(*c_lu, rhs.view());

  Matrix theta(2 * m, 2 * m);
  la::copy(rhs.block(0, 0, m, m), theta.block(0, 0, m, m));
  if (a) {
    la::MatrixView tr = theta.block(0, m, m, m);
    la::copy(rhs.block(0, m, m, m), tr);
    la::matrix_scal(-1.0, tr);
  }
  for (index_t i = 0; i < m; ++i) theta(m + i, i) = 1.0;
  return theta;
}

int rescale_pow2(la::MatrixView m) {
  const double mx = la::norm_max(m);
  if (mx == 0.0 || !std::isfinite(mx)) return 0;
  const int k = std::ilogb(mx) + 1;  // 2^{k-1} <= mx < 2^k
  if (k == 0) return 0;
  const double s = std::ldexp(1.0, -k);
  la::matrix_scal(s, m);
  return -k;
}

}  // namespace ardbt::core
