#pragma once

#include <vector>

#include "src/btds/block_tridiag.hpp"
#include "src/btds/distributed.hpp"
#include "src/btds/partition.hpp"
#include "src/la/lu.hpp"
#include "src/mpsim/comm.hpp"

/// \file pcr.hpp
/// Distributed parallel cyclic reduction (PCR) — the classic parallel
/// competitor of recursive doubling, with the paper's acceleration idea
/// applied to it as an extension.
///
/// PCR reduces every block row simultaneously: at level l (step s = 2^l)
/// row i eliminates its couplings to rows i -+ s using
///
///   D'_i = D_i - A_i D_{i-s}^{-1} C_{i-s} - C_i D_{i+s}^{-1} A_{i+s}
///   A'_i = -A_i D_{i-s}^{-1} A_{i-s}
///   C'_i = -C_i D_{i+s}^{-1} C_{i+s}
///   b'_i = b_i - A_i D_{i-s}^{-1} b_{i-s} - C_i D_{i+s}^{-1} b_{i+s}
///
/// (out-of-range neighbours drop out). After ceil(log2 N) levels every row
/// decouples: D_i x_i = b_i. Unlike recursive doubling, the *total* work
/// carries a log N factor — O(M^3 (N/P) log N) — which is why RD-family
/// methods win for N >> P; PCR's appeal is its lack of a serial
/// substitution phase and its uniform structure.
///
/// The acceleration (same split as ARD): everything except the b-updates
/// is right-hand-side independent. PcrFactorization caches, per level and
/// local row, LU(D_i) and the entering coefficients (A_i, C_i); a solve
/// then replays only the O(M^2 R) b-recurrences — O(M^2 R (N/P) log N)
/// per batch, with the per-level neighbour exchanges carrying M x R
/// blocks instead of matrix pairs. Note the memory cost: PCR must cache
/// *every level* (O(M^2 (N/P) log N) per rank), where ARD caches a single
/// level plus log P scan rounds.
///
/// Row-range communication: at level s this rank needs rows
/// [lo-s, hi-s) and [lo+s, hi+s) (clipped, minus its own); owners send
/// them in one deterministic message per (sender, receiver) pair per
/// level, both sides deriving the row list from the partition alone.

namespace ardbt::core {

/// Tag space used by the PCR solver.
namespace pcr_tags {
inline constexpr int kFactor = 90;
inline constexpr int kSolve = 91;
}  // namespace pcr_tags

/// Factor-once / solve-many distributed parallel cyclic reduction.
class PcrFactorization {
 public:
  PcrFactorization() = default;

  /// Collective. Throws fault::SingularPivotError on a singular diagonal
  /// block at any level (cannot happen for block-diagonally-dominant
  /// input).
  static PcrFactorization factor(mpsim::Comm& comm, const btds::BlockTridiag& sys,
                                 const btds::RowPartition& part);

  /// Collective. Factor from truly distributed storage (each rank reads
  /// only its own block rows).
  static PcrFactorization factor(mpsim::Comm& comm, const btds::LocalBlockTridiag& sys,
                                 const btds::RowPartition& part);

  /// Collective. Writes this rank's block rows of `x` (preallocated,
  /// shape of the global (N*M) x R matrix `b`).
  void solve(mpsim::Comm& comm, const la::Matrix& b, la::Matrix& x) const;

  la::index_t num_blocks() const { return n_; }
  la::index_t block_size() const { return m_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }

  /// Bytes of factored state held by this rank (grows with log N).
  std::size_t storage_bytes() const;

  /// Pivot extremes over every per-level diagonal factorization on this
  /// rank — the cheap breakdown monitor read by the solve drivers.
  const fault::PivotDiagnostics& pivot_diagnostics() const { return diag_; }

  /// Closed-form flop counts (T1-style; per-rank critical path).
  static double factor_flops(la::index_t n, la::index_t m, int p);
  static double solve_flops(la::index_t n, la::index_t m, la::index_t r, int p);

 private:
  template <typename SysView>
  static PcrFactorization factor_impl(mpsim::Comm& comm, const SysView& sys,
                                      const btds::RowPartition& part);

  struct RowCache {
    la::LuFactors d_lu;  // LU of D_i entering this level
    la::Matrix a, c;     // coefficients entering this level (empty if absent)
  };
  struct Level {
    la::index_t step = 0;
    std::vector<RowCache> rows;  // one per local row
  };

  la::index_t n_ = 0;
  la::index_t m_ = 0;
  la::index_t lo_ = 0;
  la::index_t hi_ = 0;
  btds::RowPartition part_{1, 1};
  std::vector<Level> levels_;
  std::vector<la::LuFactors> final_lu_;  // fully decoupled diagonals
  fault::PivotDiagnostics diag_;
};

}  // namespace ardbt::core
