#include "src/core/perfmodel.hpp"

#include <chrono>

#include "src/la/gemm.hpp"
#include "src/la/random.hpp"

namespace ardbt::core {

double PerfModel::thomas_seconds(la::index_t n, la::index_t m, la::index_t r) const {
  const double dn = static_cast<double>(n);
  const double dm = static_cast<double>(m);
  const double dr = static_cast<double>(r);
  const double factor = dn * (2.0 / 3.0 + 2.0 + 2.0) * dm * dm * dm;
  const double solve = dn * 6.0 * dm * dm * dr;
  return (factor + solve) / machine_.flop_rate;
}

mpsim::CostModel PerfModel::calibrate(mpsim::CostModel base, la::index_t block_size) {
  const la::index_t m = 2 * block_size;  // transfer matrices are 2M x 2M
  la::Rng rng = la::make_rng(1234);
  const la::Matrix a = la::random_uniform(m, m, rng);
  const la::Matrix b = la::random_uniform(m, m, rng);
  la::Matrix c(m, m);

  // Warm up, then time enough repetitions for a stable estimate.
  la::gemm(1.0, a.view(), b.view(), 0.0, c.view());
  const int reps = 20;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) la::gemm(1.0, a.view(), b.view(), 1.0, c.view());
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const double flops = reps * la::gemm_flops(m, m, m);

  base.flop_rate = flops / seconds;
  base.name += "+calibrated";
  return base;
}

}  // namespace ardbt::core
