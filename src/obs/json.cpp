#include "src/obs/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ardbt::obs {

Json& Json::set(std::string key, Json value) {
  assert(kind_ == Kind::kObject && "Json::set on non-object");
  for (auto& [k, v] : items_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  items_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  assert(kind_ == Kind::kArray && "Json::push on non-array");
  items_.emplace_back(std::string(), std::move(value));
  return *this;
}

void Json::write_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::write_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; emit null so consumers fail loudly, not parse
    // garbage.
    out += "null";
    return;
  }
  char buf[32];
  // Shortest round-trippable decimal: try increasing precision.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      write_number(out, num_);
      break;
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Kind::kUint: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    }
    case Kind::kString:
      write_escaped(out, str_);
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        items_[i].second.write(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        write_escaped(out, items_[i].first);
        out += indent > 0 ? ": " : ":";
        items_[i].second.write(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

void write_json_file(const std::string& path, const Json& value, int indent) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("obs: cannot open '" + path + "' for writing");
  const std::string text = value.dump(indent);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fputc('\n', f) != EOF;
  if (std::fclose(f) != 0 || !ok) {
    throw std::runtime_error("obs: short write to '" + path + "'");
  }
}

}  // namespace ardbt::obs
