#pragma once

#include <string>
#include <vector>

#include "src/obs/json.hpp"

/// \file cost_model.hpp
/// Cost-model oracle: predicts per-phase virtual time from the paper's
/// alpha-beta-gamma terms and judges measured phases against it.
///
/// The paper's argument is that ARD wins when measured time tracks
/// O(M^3 (N/P + log P)) — this class makes that check executable. A
/// phase's workload is summarized as PhaseTerms (flops, messages, payload
/// bytes); the predicted time is the classic
///
///   T = flops * seconds_per_flop + messages * alpha + bytes * beta
///
/// with constants either taken from the simulator's mpsim::CostModel (the
/// virtual clock charges exactly these terms, so ratios near 1 mean "the
/// implementation does the work the formula says, no more") or calibrated
/// from one measured phase via calibrate(). judge() flags phases whose
/// measured/predicted ratio drifts past a threshold — the structured
/// warning surfaced in run_report v2.
///
/// obs stays below core in the layering, so this header knows nothing
/// about block sizes: core/flops.hpp provides the helpers that build
/// PhaseTerms from (M, N, P, R).

namespace ardbt::obs {

/// Workload summary for one phase: what the paper's formulas count.
struct PhaseTerms {
  double flops = 0.0;
  double messages = 0.0;
  double bytes = 0.0;
};

/// Measured-vs-predicted result for one phase.
struct CostVerdict {
  std::string phase;
  double measured_s = 0.0;
  double predicted_s = 0.0;
  double ratio = 0.0;  ///< measured / predicted (0 when predicted == 0)
  bool flagged = false;
};

class CostModel {
 public:
  /// Machine constants of the predicted platform.
  struct Constants {
    double seconds_per_flop = 0.0;
    double alpha = 0.0;  ///< per-message latency, seconds
    double beta = 0.0;   ///< per-byte transfer time, seconds
  };

  CostModel() = default;
  explicit CostModel(Constants c, double flag_threshold = 2.0)
      : constants_(c), threshold_(flag_threshold) {}

  const Constants& constants() const { return constants_; }
  double threshold() const { return threshold_; }

  /// T = flops/rate + messages*alpha + bytes*beta.
  double predict(const PhaseTerms& t) const {
    return t.flops * constants_.seconds_per_flop + t.messages * constants_.alpha +
           t.bytes * constants_.beta;
  }

  /// One-run calibration: uniformly rescale the constants so the model
  /// reproduces `measured_s` for `terms` exactly. With constants from the
  /// simulator's own cost model the scale lands at 1 when the
  /// implementation performs exactly the predicted work; a scale far from
  /// 1 means the formula miscounts. No-op when the prediction is zero.
  /// Returns the scale applied.
  double calibrate(const PhaseTerms& terms, double measured_s);

  /// Compare a measured phase against its prediction; flagged when
  /// ratio > threshold or ratio < 1/threshold (with a nonzero prediction).
  CostVerdict judge(const std::string& phase, const PhaseTerms& terms, double measured_s) const;

  /// {"constants": {...}, "threshold", "calibration_scale",
  ///  "phases": [{"phase","measured_s","predicted_s","ratio","flagged"}]}.
  Json to_json(const std::vector<CostVerdict>& verdicts) const;

 private:
  Constants constants_;
  double threshold_ = 2.0;
  double calibration_scale_ = 1.0;
};

}  // namespace ardbt::obs
