#include "src/obs/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "src/obs/metrics.hpp"

namespace ardbt::obs {

namespace {

bool advances_clock(SpanKind k) {
  return k == SpanKind::kSend || k == SpanKind::kWait || k == SpanKind::kCompute;
}

/// Innermost phase span on `phases` (one rank's kPhase events) containing
/// [begin, end]; "(no phase)" when none does.
const char* innermost_phase(const std::vector<TraceEvent>& phases, double begin, double end,
                            double eps) {
  const char* best = "(no phase)";
  int best_depth = -1;
  for (const TraceEvent& p : phases) {
    if (p.vtime_begin <= begin + eps && p.vtime_end >= end - eps &&
        static_cast<int>(p.depth) > best_depth) {
      best_depth = static_cast<int>(p.depth);
      best = p.name;
    }
  }
  return best;
}

}  // namespace

Attribution analyze(const Tracer& tracer) {
  Attribution out;
  out.nranks = tracer.nranks();
  if (out.nranks == 0) return out;

  // Snapshot per-rank streams once; split clock-advancing events from
  // phase spans (phases overlap the former, they don't add time).
  std::vector<std::vector<TraceEvent>> atomic(static_cast<std::size_t>(out.nranks));
  std::vector<std::vector<TraceEvent>> phase_spans(static_cast<std::size_t>(out.nranks));
  bool any_event = false;
  for (int r = 0; r < out.nranks; ++r) {
    const RankTrace& rt = tracer.rank(r);
    out.dropped_events += rt.dropped();
    for (const TraceEvent& e : rt.events()) {
      if (advances_clock(e.kind)) {
        atomic[static_cast<std::size_t>(r)].push_back(e);
      } else if (e.kind == SpanKind::kPhase) {
        phase_spans[static_cast<std::size_t>(r)].push_back(e);
      }
      if (!any_event || e.vtime_begin < out.t_begin_s) out.t_begin_s = e.vtime_begin;
      if (!any_event || e.vtime_end > out.t_end_s) out.t_end_s = e.vtime_end;
      any_event = true;
    }
  }
  out.complete = out.dropped_events == 0;
  if (!any_event) return out;
  out.makespan_s = out.t_end_s - out.t_begin_s;
  const double eps = 1e-12 * std::max(1.0, std::abs(out.t_end_s));

  // Per-rank breakdown: event sums, remainder of the makespan is idle.
  out.ranks.assign(static_cast<std::size_t>(out.nranks), RankBreakdown{});
  for (int r = 0; r < out.nranks; ++r) {
    RankBreakdown& b = out.ranks[static_cast<std::size_t>(r)];
    for (const TraceEvent& e : atomic[static_cast<std::size_t>(r)]) {
      const double dur = e.vtime_end - e.vtime_begin;
      switch (e.kind) {
        case SpanKind::kCompute: b.compute_s += dur; break;
        case SpanKind::kSend: b.send_s += dur; break;
        case SpanKind::kWait: b.wait_s += dur; break;
        default: break;
      }
    }
    b.idle_s = std::max(0.0, out.makespan_s - (b.compute_s + b.send_s + b.wait_s));
  }

  // Per-phase latency stats via the deterministic log2 histogram.
  {
    std::map<std::string, LatencyHistogram> hists;
    for (int r = 0; r < out.nranks; ++r) {
      for (const TraceEvent& p : phase_spans[static_cast<std::size_t>(r)]) {
        hists[p.name].observe(p.vtime_end - p.vtime_begin);
      }
    }
    for (const auto& [name, h] : hists) {
      PhaseStats s;
      s.count = h.total_count();
      s.total_s = h.sum();
      s.max_s = h.max();
      s.p50_s = h.percentile(0.50);
      s.p90_s = h.percentile(0.90);
      s.p99_s = h.percentile(0.99);
      out.phases.emplace(name, s);
    }
  }

  // Index sends by (sender, dst, seq) -> position in the sender's atomic
  // stream, for the cross-rank jumps.
  std::map<std::tuple<int, int, std::uint64_t>, std::size_t> send_at;
  for (int r = 0; r < out.nranks; ++r) {
    const auto& evs = atomic[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < evs.size(); ++i) {
      if (evs[i].kind == SpanKind::kSend && evs[i].seq != 0) {
        send_at[{r, evs[i].peer, evs[i].seq}] = i;
      }
    }
  }

  // Backward walk. idx[r] = last not-yet-consumed event in rank r's
  // stream; walking by index (not just by time) guarantees progress even
  // through zero-duration events (e.g. alpha == 0 cost models).
  CriticalPath& cp = out.critical_path;
  cp.length_s = out.makespan_s;
  std::vector<std::ptrdiff_t> idx(static_cast<std::size_t>(out.nranks));
  int cur = 0;
  for (int r = 0; r < out.nranks; ++r) {
    const auto& evs = atomic[static_cast<std::size_t>(r)];
    idx[static_cast<std::size_t>(r)] = static_cast<std::ptrdiff_t>(evs.size()) - 1;
    if (!evs.empty() && (atomic[static_cast<std::size_t>(cur)].empty() ||
                         evs.back().vtime_end >
                             atomic[static_cast<std::size_t>(cur)].back().vtime_end)) {
      cur = r;
    }
  }
  cp.end_rank = cur;
  double frontier = out.t_end_s;

  auto attribute = [&](int rank, SpanKind kind, const char* name, double begin, double end,
                       std::uint64_t seq, int from_rank, double* sum, const char* phase_override) {
    const double dur = end - begin;
    if (dur <= 0.0) return;
    *sum += dur;
    const char* phase =
        phase_override != nullptr
            ? phase_override
            : innermost_phase(phase_spans[static_cast<std::size_t>(rank)], begin, end, eps);
    cp.by_phase[phase] += dur;
    cp.segments.push_back({rank, kind, name, begin, end, seq, from_rank});
  };

  while (frontier > out.t_begin_s + eps) {
    auto& evs = atomic[static_cast<std::size_t>(cur)];
    std::ptrdiff_t& i = idx[static_cast<std::size_t>(cur)];
    while (i >= 0 && evs[static_cast<std::size_t>(i)].vtime_end > frontier + eps) --i;
    if (i < 0) {
      // Nothing earlier on this rank: the remainder is an uncovered gap.
      attribute(cur, SpanKind::kMark, "(gap)", out.t_begin_s, frontier, 0, -1,
                &cp.unattributed_s, "(gap)");
      frontier = out.t_begin_s;
      break;
    }
    const TraceEvent e = evs[static_cast<std::size_t>(i)];
    if (e.vtime_end < frontier - eps) {
      // Idle stretch on this rank between e and whatever ran at frontier.
      attribute(cur, SpanKind::kMark, "(gap)", e.vtime_end, frontier, 0, -1,
                &cp.unattributed_s, "(gap)");
      frontier = e.vtime_end;
      continue;
    }
    if (e.kind == SpanKind::kWait && e.seq != 0) {
      const auto it = send_at.find({e.peer, cur, e.seq});
      if (it != send_at.end() &&
          static_cast<std::ptrdiff_t>(it->second) <= idx[static_cast<std::size_t>(e.peer)]) {
        // Message in flight: [send begin, wait end] on the receiver's
        // account, then resume the walk on the sender just before its send.
        const TraceEvent& s =
            atomic[static_cast<std::size_t>(e.peer)][it->second];
        attribute(cur, SpanKind::kWait, "comm", std::max(s.vtime_begin, out.t_begin_s), frontier,
                  e.seq, e.peer, &cp.comm_s, nullptr);
        i -= 1;
        idx[static_cast<std::size_t>(e.peer)] = static_cast<std::ptrdiff_t>(it->second) - 1;
        cur = e.peer;
        frontier = s.vtime_begin;
        cp.hops += 1;
        continue;
      }
    }
    // On-rank event: compute, send (alpha charge), or an unresolvable wait.
    double* sum = &cp.wait_s;
    if (e.kind == SpanKind::kCompute) sum = &cp.compute_s;
    if (e.kind == SpanKind::kSend) sum = &cp.send_s;
    attribute(cur, e.kind, e.name, std::max(e.vtime_begin, out.t_begin_s), frontier, e.seq, -1,
              sum, nullptr);
    frontier = e.vtime_begin;
    i -= 1;
  }
  cp.start_rank = cur;
  return out;
}

Json to_json(const Attribution& a) {
  Json out = Json::object();
  out.set("nranks", a.nranks);
  out.set("makespan_s", a.makespan_s);
  out.set("complete", a.complete);
  out.set("dropped_events", a.dropped_events);

  Json ranks = Json::array();
  for (const RankBreakdown& b : a.ranks) {
    Json r = Json::object();
    r.set("compute_s", b.compute_s);
    r.set("send_s", b.send_s);
    r.set("wait_s", b.wait_s);
    r.set("idle_s", b.idle_s);
    ranks.push(std::move(r));
  }
  out.set("ranks", std::move(ranks));

  Json phases = Json::object();
  for (const auto& [name, s] : a.phases) {
    Json p = Json::object();
    p.set("count", s.count);
    p.set("total_s", s.total_s);
    p.set("max_s", s.max_s);
    p.set("p50_s", s.p50_s);
    p.set("p90_s", s.p90_s);
    p.set("p99_s", s.p99_s);
    phases.set(name, std::move(p));
  }
  out.set("phases", std::move(phases));

  const CriticalPath& cp = a.critical_path;
  Json c = Json::object();
  c.set("length_s", cp.length_s);
  c.set("compute_s", cp.compute_s);
  c.set("send_s", cp.send_s);
  c.set("comm_s", cp.comm_s);
  c.set("wait_s", cp.wait_s);
  c.set("unattributed_s", cp.unattributed_s);
  c.set("hops", cp.hops);
  c.set("segments", static_cast<std::uint64_t>(cp.segments.size()));
  c.set("start_rank", cp.start_rank);
  c.set("end_rank", cp.end_rank);
  Json by_phase = Json::object();
  for (const auto& [name, s] : cp.by_phase) by_phase.set(name, s);
  c.set("by_phase", std::move(by_phase));
  out.set("critical_path", std::move(c));
  return out;
}

}  // namespace ardbt::obs
