#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

/// \file trace.hpp
/// Per-rank event tracer for the virtual-time simulator.
///
/// Each simulated rank owns a `RankTrace`: a fixed-capacity ring buffer of
/// typed spans (send / recv / wait / compute / phase) stamped with both
/// the rank's virtual clock and host wall time. Recording is lock-free
/// with respect to peer ranks (each rank writes only its own buffer) and
/// cheap enough to leave on: one bounds check plus a struct store per
/// event, and nothing at all when no tracer is installed.
///
/// Instrumentation points open spans with the RAII macro
///
///   ARDBT_TRACE_SPAN(comm, obs::SpanKind::kPhase, "ard.factor");
///
/// which expands to `comm.trace_scope(...)` — a no-op returning an empty
/// scope when tracing is off. Two kill switches:
///   * runtime — no Tracer in EngineOptions (or Tracer::set_enabled(false))
///     leaves the hot path with a single null-pointer test;
///   * compile time — defining ARDBT_OBS_DISABLED (CMake option
///     ARDBT_DISABLE_OBS) compiles every hook out entirely.
///
/// Span names must be string literals (or otherwise outlive the tracer):
/// events store the pointer, not a copy, so recording never allocates.
///
/// Under TimingMode::ChargedFlops the virtual-time fields of the event
/// stream are fully deterministic: two identical runs produce identical
/// streams (wall-time fields differ — they exist so real elapsed time can
/// be compared against the model).

namespace ardbt::obs {

#ifdef ARDBT_OBS_DISABLED
inline constexpr bool kTraceCompiledIn = false;
#else
inline constexpr bool kTraceCompiledIn = true;
#endif

/// Typed span/event categories, mirroring what the simulator models.
enum class SpanKind : std::uint8_t {
  kSend,     ///< eager send (duration = sender-side latency charge)
  kRecv,     ///< message delivery (instant; payload bytes in `bytes`)
  kWait,     ///< blocked on a message not yet available (virtual wait)
  kCompute,  ///< local arithmetic (charged flops or measured CPU)
  kPhase,    ///< algorithm phase opened via ARDBT_TRACE_SPAN
  kMark,     ///< instant user marker
};

/// Stable lowercase name ("send", "recv", ...).
const char* to_string(SpanKind kind);

/// One recorded span. `vtime_*` are on the rank's virtual clock,
/// `wall_*` are host seconds since the tracer epoch. Instant events have
/// equal begin/end times.
struct TraceEvent {
  const char* name = "";  ///< static string; see file comment
  double vtime_begin = 0.0;
  double vtime_end = 0.0;
  double wall_begin = 0.0;
  double wall_end = 0.0;
  double value = 0.0;  ///< kind-specific magnitude (flops for kCompute)
  std::uint64_t bytes = 0;
  /// Message sequence number linking a send to the wait/recv that consumed
  /// it: per-(sender, destination) counters start at 1 and persist across
  /// engine runs, so (sender rank, seq) identifies one message for the
  /// whole tracer lifetime. 0 means "no dependency edge" (compute, phase,
  /// untraced messages).
  std::uint64_t seq = 0;
  std::int32_t peer = -1;  ///< partner rank for send/recv/wait, else -1
  SpanKind kind = SpanKind::kMark;
  std::uint8_t depth = 0;  ///< phase-span nesting depth at record time
};

/// Tracer knobs.
struct TraceOptions {
  /// Ring capacity in events per rank; the oldest events are dropped
  /// (and counted) once exceeded.
  std::size_t ring_capacity = 1 << 16;
};

/// Virtual + wall timestamp pair handed to the recorder by the clock
/// owner (mpsim::Comm).
struct TimeSample {
  double vtime = 0.0;
  double wall = 0.0;
};

class Tracer;

/// Event ring plus per-rank tallies for one simulated rank. Only the
/// owning rank thread may record; readers must wait for the run to end.
class RankTrace {
 public:
  /// Identifier of an open span (index into the open-span stack).
  using SpanHandle = std::uint32_t;

  /// Open a phase span; pair with end_span (the SpanScope RAII wrapper
  /// does this). Nesting must be properly bracketed.
  SpanHandle begin_span(SpanKind kind, const char* name, TimeSample t);
  void end_span(SpanHandle handle, TimeSample t);

  /// Record a completed span in one call (send/wait instrumentation).
  /// `seq` carries the message dependency edge (see TraceEvent::seq).
  void complete(SpanKind kind, const char* name, TimeSample begin, TimeSample end, int peer,
                std::uint64_t bytes, std::uint64_t seq = 0);

  /// Record an instant event (recv delivery, user markers).
  void instant(SpanKind kind, const char* name, TimeSample t, int peer, std::uint64_t bytes,
               std::uint64_t seq = 0);

  /// Next send sequence number toward rank `dst` (1, 2, 3, ... per
  /// destination, monotone for the lifetime of this RankTrace — i.e.
  /// across engine runs of a multi-run session).
  std::uint64_t next_send_seq(int dst);

  /// Record compute advancing the clock from `begin` to `end` for `flops`
  /// operations. Adjacent compute events (end == next begin, same nesting
  /// depth) coalesce into one span so per-block-row flop charges don't
  /// flood the ring.
  void add_compute(TimeSample begin, TimeSample end, double flops);

  /// Attribute sent payload bytes to the innermost open phase span (or
  /// "(no phase)") and to the message-size histogram.
  void tally_sent(std::uint64_t bytes);

  int rank() const { return rank_; }
  /// Owning tracer's wall clock (seconds since the tracer epoch).
  double wall_now() const;
  /// Events in ring order (oldest first). Valid after the run finished.
  std::vector<TraceEvent> events() const;
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total_recorded() const { return recorded_; }

  /// Payload bytes sent per enclosing phase-span name.
  const std::map<std::string, std::uint64_t>& bytes_by_phase() const { return bytes_by_phase_; }
  /// Message-size histogram: bucket k counts sends with
  /// 2^(k-1) < bytes <= 2^k (bucket 0 counts empty sends).
  const std::vector<std::uint64_t>& message_size_log2() const { return msg_size_log2_; }

 private:
  friend class Tracer;
  RankTrace(int rank, const Tracer* owner, std::size_t capacity);

  void push(TraceEvent e);

  int rank_ = -1;
  const Tracer* owner_ = nullptr;
  std::size_t capacity_ = 0;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next slot to overwrite once full
  std::uint64_t dropped_ = 0;
  std::uint64_t recorded_ = 0;
  std::vector<TraceEvent> open_;  ///< stack of in-progress phase spans
  std::map<std::string, std::uint64_t> bytes_by_phase_;
  std::vector<std::uint64_t> msg_size_log2_;
  std::vector<std::uint64_t> send_seq_;  ///< per-destination counters, lazily sized
};

/// Owns one RankTrace per simulated rank for an engine run. Install via
/// EngineOptions::tracer; the engine calls prepare(nranks) and hands each
/// Comm its rank's buffer. A Tracer may be reused across runs — events
/// append (each run's virtual clock restarts at zero; see the `run`
/// counter stamped by prepare()).
class Tracer {
 public:
  explicit Tracer(TraceOptions options = {});

  /// Runtime kill switch: a disabled tracer records nothing even when
  /// installed. Flip only between runs.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Size the per-rank buffers (engine-called before threads start).
  /// Existing rank buffers are kept so multi-run sessions accumulate.
  void prepare(int nranks);

  /// Size per-worker lane buffers for intra-rank pools (engine-called
  /// when EngineOptions::threads_per_rank > 1): `workers_per_rank` lanes
  /// under each of `nranks` ranks, lane 0 being the rank thread's own
  /// share of pool jobs. Lanes accumulate across runs like rank buffers;
  /// changing the per-rank worker count between runs resets them.
  void prepare_workers(int nranks, int workers_per_rank);

  int nranks() const { return static_cast<int>(ranks_.size()); }
  RankTrace& rank(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }
  const RankTrace& rank(int r) const { return *ranks_.at(static_cast<std::size_t>(r)); }

  /// Worker lanes prepared per rank (0 when no pool ran under tracing).
  int workers_per_rank() const { return workers_per_rank_; }
  RankTrace& worker(int r, int w) {
    return *workers_.at(static_cast<std::size_t>(r * workers_per_rank_ + w));
  }
  const RankTrace& worker(int r, int w) const {
    return *workers_.at(static_cast<std::size_t>(r * workers_per_rank_ + w));
  }

  /// Host seconds since tracer construction (the wall epoch all wall_*
  /// fields are relative to).
  double wall_now() const;

  const TraceOptions& options() const { return options_; }

 private:
  TraceOptions options_;
  bool enabled_ = true;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<RankTrace>> ranks_;
  int workers_per_rank_ = 0;
  std::vector<std::unique_ptr<RankTrace>> workers_;  ///< rank-major, w minor
};

/// RAII span: records begin on construction, end on destruction, via a
/// caller-supplied clock thunk (so obs stays independent of mpsim).
class SpanScope {
 public:
  using NowFn = TimeSample (*)(void* ctx);

  /// Empty (disabled) scope.
  SpanScope() = default;

  SpanScope(RankTrace* trace, SpanKind kind, const char* name, NowFn now, void* ctx)
      : trace_(trace), now_(now), ctx_(ctx) {
    if (trace_ != nullptr) handle_ = trace_->begin_span(kind, name, now_(ctx_));
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  SpanScope(SpanScope&& o) noexcept
      : trace_(o.trace_), now_(o.now_), ctx_(o.ctx_), handle_(o.handle_) {
    o.trace_ = nullptr;
  }
  SpanScope& operator=(SpanScope&& o) noexcept {
    if (this != &o) {
      close();
      trace_ = o.trace_;
      now_ = o.now_;
      ctx_ = o.ctx_;
      handle_ = o.handle_;
      o.trace_ = nullptr;
    }
    return *this;
  }

  ~SpanScope() { close(); }

  /// Close early (idempotent).
  void close() {
    if (trace_ == nullptr) return;
    trace_->end_span(handle_, now_(ctx_));
    trace_ = nullptr;
  }

  bool active() const { return trace_ != nullptr; }

 private:
  RankTrace* trace_ = nullptr;
  NowFn now_ = nullptr;
  void* ctx_ = nullptr;
  RankTrace::SpanHandle handle_ = 0;
};

}  // namespace ardbt::obs

// RAII phase-span macro. `comm` is any object with a
// `trace_scope(SpanKind, const char*)` method (mpsim::Comm); `name` must
// be a string literal.
#define ARDBT_OBS_CONCAT_IMPL(a, b) a##b
#define ARDBT_OBS_CONCAT(a, b) ARDBT_OBS_CONCAT_IMPL(a, b)
#ifdef ARDBT_OBS_DISABLED
#define ARDBT_TRACE_SPAN(comm, kind, name) \
  do {                                     \
  } while (0)
#else
#define ARDBT_TRACE_SPAN(comm, kind, name)                                      \
  const ::ardbt::obs::SpanScope ARDBT_OBS_CONCAT(ardbt_trace_span_, __LINE__) = \
      (comm).trace_scope(kind, name)
#endif
