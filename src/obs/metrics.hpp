#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

/// \file metrics.hpp
/// Named counters / gauges / histograms for run-level observability.
///
/// The registry is the machine-readable aggregation point between the
/// simulator's per-rank counters (mpsim::RankStats stays the lock-free
/// hot-path aggregate; export_metrics() in mpsim/obs_bridge.hpp projects
/// it into the registry after a run) and the structured run report every
/// bench binary and the CLI can emit. Metric creation takes a lock;
/// updating an existing metric is lock-free (atomics would be overkill —
/// metrics are populated post-run, from one thread).
///
/// Naming convention: dotted lowercase paths, unit suffix where
/// meaningful — "mpsim.bytes_sent", "mpsim.rank.3.wait_fraction",
/// "ard.factor.vtime_seconds".

namespace ardbt::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(double v) { value_ += v; }
  void add(std::uint64_t v) { value_ += static_cast<double>(v); }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Point-in-time value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Power-of-two bucketed histogram (bucket k counts samples with
/// 2^(k-1) < x <= 2^k; bucket 0 counts x <= 1). Suits message sizes and
/// span durations, which spread over decades.
class Histogram {
 public:
  Histogram() : buckets_(64, 0) {}

  void observe(double x);
  /// Merge pre-bucketed counts (e.g. RankTrace::message_size_log2()).
  void merge_log2(const std::vector<std::uint64_t>& buckets);

  std::uint64_t total_count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Log2-bucketed histogram for latencies: bucket e (a signed exponent in
/// [kMinExp, kMaxExp]) counts samples with 2^(e-1) < x <= 2^e, so
/// sub-second durations land in negative-exponent buckets instead of all
/// collapsing into Histogram's bucket 0. Non-positive samples go to a
/// dedicated zero bucket; sub-2^kMinExp and beyond-2^kMaxExp samples clamp
/// to the edge buckets (min/max stay exact). Percentiles are the
/// nearest-rank bucket upper bound capped at the exact max — a purely
/// count-based estimate, so identical sample multisets give bit-identical
/// p50/p90/p99 regardless of observation order or thread count.
class LatencyHistogram {
 public:
  static constexpr int kMinExp = -64;
  static constexpr int kMaxExp = 64;

  void observe(double x);

  std::uint64_t total_count() const { return count_; }
  std::uint64_t zero_count() const { return zero_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// Nearest-rank percentile for q in (0, 1]; 0 when empty.
  double percentile(double q) const;

  /// Occupied buckets as (signed exponent, count) pairs, ascending; the
  /// zero bucket is reported separately (zero_count()).
  std::vector<std::pair<int, std::uint64_t>> nonzero_buckets() const;

  /// {"count", "sum", "min", "max", "p50", "p90", "p99",
  ///  "log2_buckets": {"<exp>": count, ...}} (zero bucket under key "zero").
  Json to_json() const;

 private:
  static constexpr std::size_t kBuckets = static_cast<std::size_t>(kMaxExp - kMinExp + 1);
  std::vector<std::uint64_t> buckets_;  ///< lazily sized to kBuckets
  std::uint64_t zero_ = 0;              ///< samples with x <= 0
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name -> metric registry with a stable JSON snapshot.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  LatencyHistogram& latency(const std::string& name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///  "latencies": {...}} with keys sorted by name; empty sections are
  /// omitted.
  Json to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies_;
};

/// Deterministic projection of a MetricsRegistry::to_json() snapshot:
/// drops every metric whose name mentions wall/cpu/panel time (host-clock
/// values vary run to run; everything else is virtual-clock or count
/// data, bit-identical under charged timing for any thread count). Used
/// by the CLI `--metrics` sentinel block and the live snapshot stream.
Json deterministic_metrics(const Json& snapshot);

}  // namespace ardbt::obs
