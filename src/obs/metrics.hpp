#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

/// \file metrics.hpp
/// Named counters / gauges / histograms for run-level observability.
///
/// The registry is the machine-readable aggregation point between the
/// simulator's per-rank counters (mpsim::RankStats stays the lock-free
/// hot-path aggregate; export_metrics() in mpsim/obs_bridge.hpp projects
/// it into the registry after a run) and the structured run report every
/// bench binary and the CLI can emit. Metric creation takes a lock;
/// updating an existing metric is lock-free (atomics would be overkill —
/// metrics are populated post-run, from one thread).
///
/// Naming convention: dotted lowercase paths, unit suffix where
/// meaningful — "mpsim.bytes_sent", "mpsim.rank.3.wait_fraction",
/// "ard.factor.vtime_seconds".

namespace ardbt::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(double v) { value_ += v; }
  void add(std::uint64_t v) { value_ += static_cast<double>(v); }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Point-in-time value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Power-of-two bucketed histogram (bucket k counts samples with
/// 2^(k-1) < x <= 2^k; bucket 0 counts x <= 1). Suits message sizes and
/// span durations, which spread over decades.
class Histogram {
 public:
  Histogram() : buckets_(64, 0) {}

  void observe(double x);
  /// Merge pre-bucketed counts (e.g. RankTrace::message_size_log2()).
  void merge_log2(const std::vector<std::uint64_t>& buckets);

  std::uint64_t total_count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Name -> metric registry with a stable JSON snapshot.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// sorted by name; empty sections are omitted.
  Json to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ardbt::obs
