#pragma once

#include <string>

#include "src/obs/json.hpp"

/// \file run_report.hpp
/// The stable machine-readable run-report schema ("ardbt.run_report",
/// version 1) shared by the CLI and every experiment binary, so
/// downstream tooling (plot scripts, CI trend checks) parses one format
/// no matter which binary produced it.
///
/// Document layout:
///
///   {
///     "schema":  "ardbt.run_report",
///     "version": 1,
///     "tool":    "<binary name>",
///     "config":  { ... flags / problem shape ... },
///     ... tool-specific sections added via set_section():
///     "timing":  { "factor_vtime_s": ..., "solve_vtime_s": ...,
///                  "wall_s": ..., "max_virtual_time_s": ... },
///     "totals":  { RankStats sums/maxima },
///     "ranks":   [ per-rank RankStats ],
///     "metrics": { MetricsRegistry snapshot },
///     "tables":  { "<name>": [ {col: cell, ...}, ... ] }
///   }
///
/// Section order is insertion order; producers should emit config first.
/// Consumers must ignore unknown keys (additive evolution only; breaking
/// changes bump "version").

namespace ardbt::obs {

inline constexpr const char* kRunReportSchema = "ardbt.run_report";
inline constexpr int kRunReportVersion = 1;

/// Incremental builder for a run report.
class RunReportBuilder {
 public:
  explicit RunReportBuilder(std::string tool);

  /// Add one "config" entry (problem shape, flag values).
  RunReportBuilder& config(const std::string& key, Json value);

  /// Add/replace a top-level section.
  RunReportBuilder& set_section(const std::string& key, Json value);

  /// Finished document (schema/version/tool/config first, then sections
  /// in insertion order).
  Json build() const;

  /// build() + write_json_file.
  void write(const std::string& path, int indent = 1) const;

 private:
  std::string tool_;
  Json config_ = Json::object();
  Json sections_ = Json::object();
};

}  // namespace ardbt::obs
