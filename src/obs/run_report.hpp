#pragma once

#include <string>

#include "src/obs/json.hpp"

/// \file run_report.hpp
/// The stable machine-readable run-report schema ("ardbt.run_report",
/// version 2) shared by the CLI and every experiment binary, so
/// downstream tooling (plot scripts, CI trend checks) parses one format
/// no matter which binary produced it.
///
/// Document layout:
///
///   {
///     "schema":  "ardbt.run_report",
///     "version": 2,
///     "tool":    "<binary name>",
///     "config":  { ... flags / problem shape ... },
///     ... tool-specific sections added via set_section():
///     "timing":  { "factor_vtime_s": ..., "solve_vtime_s": ...,
///                  "wall_s": ..., "max_virtual_time_s": ... },
///     "totals":  { RankStats sums/maxima },
///     "ranks":   [ per-rank RankStats ],
///     "metrics": { MetricsRegistry snapshot; v2 adds a "latencies"
///                  section with p50/p90/p99/max per histogram },
///     "attribution": { obs::to_json(Attribution): critical path,
///                  per-rank compute/send/wait/idle, per-phase
///                  percentiles },
///     "cost_model": { CostModel::to_json: constants + per-phase
///                  measured-vs-predicted verdicts },
///     "tables":  { "<name>": [ {col: cell, ...}, ... ] }
///   }
///
/// Section order is insertion order; producers should emit config first.
/// Consumers must ignore unknown keys (additive evolution only; breaking
/// changes bump "version"). v1 -> v2: added optional "attribution",
/// "cost_model", and metrics "latencies" sections; no v1 key changed
/// meaning, so v1 consumers keep working.
///
/// Bench history files ("ardbt.bench_history") are JSON Lines: a header
/// line {"schema": "ardbt.bench_history", "version": 1} followed by one
/// compact run_report document per line, appended per run via
/// append_history_line() — append-only so the perf trajectory accumulates
/// datapoints instead of overwriting them (tools/perf_gate.py compares
/// the latest entry against a fresh run).

namespace ardbt::obs {

inline constexpr const char* kRunReportSchema = "ardbt.run_report";
inline constexpr int kRunReportVersion = 2;

inline constexpr const char* kBenchHistorySchema = "ardbt.bench_history";
inline constexpr int kBenchHistoryVersion = 1;

/// Append `entry` as one compact line to the JSONL history at `path`,
/// writing the schema header line first when the file is missing or
/// empty. Throws std::runtime_error on I/O failure.
void append_history_line(const std::string& path, const Json& entry);

/// Incremental builder for a run report.
class RunReportBuilder {
 public:
  explicit RunReportBuilder(std::string tool);

  /// Add one "config" entry (problem shape, flag values).
  RunReportBuilder& config(const std::string& key, Json value);

  /// Add/replace a top-level section.
  RunReportBuilder& set_section(const std::string& key, Json value);

  /// Finished document (schema/version/tool/config first, then sections
  /// in insertion order).
  Json build() const;

  /// build() + write_json_file.
  void write(const std::string& path, int indent = 1) const;

 private:
  std::string tool_;
  Json config_ = Json::object();
  Json sections_ = Json::object();
};

}  // namespace ardbt::obs
