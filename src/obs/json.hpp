#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file json.hpp
/// Minimal JSON document builder + serializer for the observability
/// exporters (Chrome traces, run reports, metrics snapshots). Write-only
/// by design: the repo never needs to parse JSON, only emit it with a
/// stable field order, so objects preserve insertion order and `dump`
/// is deterministic for identical inputs (golden-testable).

namespace ardbt::obs {

/// One JSON value: null, bool, number, string, array, or object.
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  Json(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(std::string_view s) : kind_(Kind::kString), str_(s) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Object member insertion; preserves insertion order, overwrites an
  /// existing key in place. Returns *this for chaining.
  Json& set(std::string key, Json value);

  /// Array element append.
  Json& push(Json value);

  std::size_t size() const { return items_.size(); }

  /// Members (objects) or elements (arrays; keys empty), insertion order.
  const std::vector<std::pair<std::string, Json>>& items() const { return items_; }

  /// Serialize. `indent == 0` emits the compact single-line form; a
  /// positive indent pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

 private:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kInt, kUint, kString, kArray, kObject };

  void write(std::string& out, int indent, int depth) const;
  static void write_escaped(std::string& out, std::string_view s);
  static void write_number(std::string& out, double v);

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  std::string str_;
  /// Array elements (key empty) or object members, in insertion order.
  std::vector<std::pair<std::string, Json>> items_;
};

/// Write `value.dump(indent)` to `path`, throwing std::runtime_error on
/// I/O failure.
void write_json_file(const std::string& path, const Json& value, int indent = 1);

}  // namespace ardbt::obs
