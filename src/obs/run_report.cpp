#include "src/obs/run_report.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace ardbt::obs {

void append_history_line(const std::string& path, const Json& entry) {
  bool need_header = false;
  {
    std::ifstream probe(path, std::ios::binary);
    need_header = !probe.good() || probe.peek() == std::ifstream::traits_type::eof();
  }
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("append_history_line: cannot open " + path);
  if (need_header) {
    Json header = Json::object();
    header.set("schema", kBenchHistorySchema);
    header.set("version", kBenchHistoryVersion);
    out << header.dump(0) << '\n';
  }
  out << entry.dump(0) << '\n';
  if (!out) throw std::runtime_error("append_history_line: write failed for " + path);
}

RunReportBuilder::RunReportBuilder(std::string tool) : tool_(std::move(tool)) {}

RunReportBuilder& RunReportBuilder::config(const std::string& key, Json value) {
  config_.set(key, std::move(value));
  return *this;
}

RunReportBuilder& RunReportBuilder::set_section(const std::string& key, Json value) {
  sections_.set(key, std::move(value));
  return *this;
}

Json RunReportBuilder::build() const {
  Json doc = Json::object();
  doc.set("schema", kRunReportSchema);
  doc.set("version", kRunReportVersion);
  doc.set("tool", tool_);
  doc.set("config", config_);
  for (const auto& [key, value] : sections_.items()) doc.set(key, value);
  return doc;
}

void RunReportBuilder::write(const std::string& path, int indent) const {
  write_json_file(path, build(), indent);
}

}  // namespace ardbt::obs
