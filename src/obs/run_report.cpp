#include "src/obs/run_report.hpp"

#include <utility>

namespace ardbt::obs {

RunReportBuilder::RunReportBuilder(std::string tool) : tool_(std::move(tool)) {}

RunReportBuilder& RunReportBuilder::config(const std::string& key, Json value) {
  config_.set(key, std::move(value));
  return *this;
}

RunReportBuilder& RunReportBuilder::set_section(const std::string& key, Json value) {
  sections_.set(key, std::move(value));
  return *this;
}

Json RunReportBuilder::build() const {
  Json doc = Json::object();
  doc.set("schema", kRunReportSchema);
  doc.set("version", kRunReportVersion);
  doc.set("tool", tool_);
  doc.set("config", config_);
  for (const auto& [key, value] : sections_.items()) doc.set(key, value);
  return doc;
}

void RunReportBuilder::write(const std::string& path, int indent) const {
  write_json_file(path, build(), indent);
}

}  // namespace ardbt::obs
