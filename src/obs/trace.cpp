#include "src/obs/trace.hpp"

#include <cassert>

namespace ardbt::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSend:
      return "send";
    case SpanKind::kRecv:
      return "recv";
    case SpanKind::kWait:
      return "wait";
    case SpanKind::kCompute:
      return "compute";
    case SpanKind::kPhase:
      return "phase";
    case SpanKind::kMark:
      return "mark";
  }
  return "unknown";
}

RankTrace::RankTrace(int rank, const Tracer* owner, std::size_t capacity)
    : rank_(rank), owner_(owner), capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
  msg_size_log2_.assign(64, 0);
}

void RankTrace::push(TraceEvent e) {
  e.depth = static_cast<std::uint8_t>(open_.size());
  recorded_ += 1;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  dropped_ += 1;
}

double RankTrace::wall_now() const { return owner_->wall_now(); }

RankTrace::SpanHandle RankTrace::begin_span(SpanKind kind, const char* name, TimeSample t) {
  TraceEvent e;
  e.kind = kind;
  e.name = name;
  e.vtime_begin = t.vtime;
  e.wall_begin = t.wall;
  e.depth = static_cast<std::uint8_t>(open_.size());
  open_.push_back(e);
  return static_cast<SpanHandle>(open_.size() - 1);
}

void RankTrace::end_span(SpanHandle handle, TimeSample t) {
  assert(handle + 1 == open_.size() && "trace spans must close innermost-first");
  (void)handle;
  TraceEvent e = open_.back();
  open_.pop_back();
  e.vtime_end = t.vtime;
  e.wall_end = t.wall;
  push(e);
}

void RankTrace::complete(SpanKind kind, const char* name, TimeSample begin, TimeSample end,
                         int peer, std::uint64_t bytes, std::uint64_t seq) {
  TraceEvent e;
  e.kind = kind;
  e.name = name;
  e.vtime_begin = begin.vtime;
  e.vtime_end = end.vtime;
  e.wall_begin = begin.wall;
  e.wall_end = end.wall;
  e.peer = peer;
  e.bytes = bytes;
  e.seq = seq;
  push(e);
}

void RankTrace::instant(SpanKind kind, const char* name, TimeSample t, int peer,
                        std::uint64_t bytes, std::uint64_t seq) {
  complete(kind, name, t, t, peer, bytes, seq);
}

std::uint64_t RankTrace::next_send_seq(int dst) {
  const std::size_t d = static_cast<std::size_t>(dst < 0 ? 0 : dst);
  if (send_seq_.size() <= d) send_seq_.resize(d + 1, 0);
  return ++send_seq_[d];
}

void RankTrace::add_compute(TimeSample begin, TimeSample end, double flops) {
  // Coalesce with the most recent event when it is a contiguous compute
  // span at the same nesting depth; per-block-row charges then collapse
  // into one span per phase region.
  if (!ring_.empty()) {
    TraceEvent& last = ring_[(head_ + ring_.size() - 1) % ring_.size()];
    if (last.kind == SpanKind::kCompute && last.vtime_end == begin.vtime &&
        last.depth == static_cast<std::uint8_t>(open_.size())) {
      last.vtime_end = end.vtime;
      last.wall_end = end.wall;
      last.value += flops;
      return;
    }
  }
  TraceEvent e;
  e.kind = SpanKind::kCompute;
  e.name = "compute";
  e.vtime_begin = begin.vtime;
  e.vtime_end = end.vtime;
  e.wall_begin = begin.wall;
  e.wall_end = end.wall;
  e.value = flops;
  push(e);
}

void RankTrace::tally_sent(std::uint64_t bytes) {
  const char* phase = open_.empty() ? "(no phase)" : open_.back().name;
  bytes_by_phase_[phase] += bytes;
  std::size_t bucket = 0;
  while (bucket + 1 < msg_size_log2_.size() && (std::uint64_t{1} << bucket) < bytes) ++bucket;
  msg_size_log2_[bucket] += 1;
}

std::vector<TraceEvent> RankTrace::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
  }
  return out;
}

Tracer::Tracer(TraceOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

void Tracer::prepare(int nranks) {
  for (int r = static_cast<int>(ranks_.size()); r < nranks; ++r) {
    ranks_.emplace_back(new RankTrace(r, this, options_.ring_capacity));
  }
}

void Tracer::prepare_workers(int nranks, int workers_per_rank) {
  if (workers_per_rank_ != workers_per_rank) {
    workers_.clear();
    workers_per_rank_ = workers_per_rank;
  }
  const std::size_t want = static_cast<std::size_t>(nranks) *
                           static_cast<std::size_t>(workers_per_rank);
  for (std::size_t i = workers_.size(); i < want; ++i) {
    const int r = static_cast<int>(i) / workers_per_rank;
    workers_.emplace_back(new RankTrace(r, this, options_.ring_capacity));
  }
}

double Tracer::wall_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

}  // namespace ardbt::obs
