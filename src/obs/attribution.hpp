#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/trace.hpp"

/// \file attribution.hpp
/// Performance attribution over a finished Tracer: the span dependency
/// graph (send -> wait edges via TraceEvent::seq), the virtual-clock
/// critical path through it, per-rank compute/send/wait/idle breakdowns,
/// and per-phase latency percentiles.
///
/// The critical path is computed by a backward walk on the virtual clock:
/// start at the rank whose last clock-advancing event ends latest, and
/// repeatedly consume the event that ends at the current time frontier.
/// A wait whose seq matches a send on the peer rank jumps the walk across
/// ranks — the interval [send begin, wait end] is one message in flight
/// (alpha + beta*bytes + injected delay) and is attributed as `comm`; a
/// wait with no resolvable producer stays on-rank as `wait`. Intervals no
/// event covers (a rank idle before its first event of a region) are
/// `unattributed`. The walk terminates at the earliest event time, so
/// `length_s == makespan_s` and the component sums partition it exactly.
///
/// Everything here is derived from virtual-time fields only, which under
/// TimingMode::ChargedFlops are bit-identical across repeated runs and
/// `--threads` values — so the attribution (and its JSON) is golden-
/// testable. analyze() assumes the per-rank event streams are monotone in
/// virtual time, which holds for a single engine run and for multi-run
/// Sessions (they chain vtime_origin); reusing one Tracer across
/// *unchained* runs restarts the clock and breaks that assumption.

namespace ardbt::obs {

/// Where one simulated rank's virtual time went, in seconds on the
/// virtual clock. `idle_s` is the remainder of the makespan not covered
/// by the rank's own events — time after the rank finished (or before it
/// started) while the slowest rank was still working.
struct RankBreakdown {
  double compute_s = 0.0;
  double send_s = 0.0;
  double wait_s = 0.0;
  double idle_s = 0.0;
};

/// Aggregate latency statistics for one phase-span name across all ranks.
/// Percentiles are nearest-rank log2-bucket estimates (LatencyHistogram),
/// deterministic for identical sample multisets.
struct PhaseStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
  double max_s = 0.0;
  double p50_s = 0.0;
  double p90_s = 0.0;
  double p99_s = 0.0;
};

/// One hop of the critical path, in walk (reverse-time) order.
struct CriticalPathSegment {
  int rank = -1;           ///< rank the segment is attributed to
  SpanKind kind = SpanKind::kMark;
  const char* name = "";   ///< event name ("send", "compute", ...) or "(gap)"
  double begin_s = 0.0;
  double end_s = 0.0;
  std::uint64_t seq = 0;   ///< message seq for comm segments, else 0
  int from_rank = -1;      ///< sender rank for comm segments, else -1
};

/// The virtual-clock critical path. `length_s` equals the makespan and is
/// partitioned exactly into compute + send + comm + wait + unattributed.
struct CriticalPath {
  double length_s = 0.0;
  double compute_s = 0.0;
  double send_s = 0.0;        ///< sender-side alpha charges on the path
  double comm_s = 0.0;        ///< cross-rank message-in-flight intervals
  double wait_s = 0.0;        ///< waits with no resolvable producer edge
  double unattributed_s = 0.0;
  std::uint64_t hops = 0;     ///< cross-rank jumps taken
  int start_rank = -1;        ///< rank where the path begins (earliest end)
  int end_rank = -1;          ///< rank whose final event ends the makespan
  /// Path time per innermost enclosing phase-span name ("(no phase)" when
  /// outside any span, "(gap)" for unattributed intervals).
  std::map<std::string, double> by_phase;
  std::vector<CriticalPathSegment> segments;  ///< reverse-time order
};

/// Full attribution result for one Tracer.
struct Attribution {
  int nranks = 0;
  double t_begin_s = 0.0;   ///< earliest event begin across ranks
  double t_end_s = 0.0;     ///< latest event end across ranks
  double makespan_s = 0.0;  ///< t_end_s - t_begin_s
  /// False when any rank's ring dropped events — sums and the critical
  /// path are then lower bounds, not exact.
  bool complete = true;
  std::uint64_t dropped_events = 0;
  std::vector<RankBreakdown> ranks;
  std::map<std::string, PhaseStats> phases;
  CriticalPath critical_path;
};

/// Analyze a finished run. Reads rank streams only (worker lanes are
/// wall-anchored and nondeterministic); safe to call repeatedly.
Attribution analyze(const Tracer& tracer);

/// Deterministic JSON projection: {"makespan_s", "complete", "ranks":
/// [{"compute_s",...}], "phases": {name: {"count","total_s","max_s",
/// "p50_s","p90_s","p99_s"}}, "critical_path": {"length_s","compute_s",
/// "send_s","comm_s","wait_s","unattributed_s","hops","segments",
/// "start_rank","end_rank","by_phase"}}. Segments are summarized by
/// count, not dumped.
Json to_json(const Attribution& a);

}  // namespace ardbt::obs
