#include "src/obs/live/postmortem.hpp"

namespace ardbt::obs::live {

Json build_postmortem(const PostmortemInfo& info, const FlightRecorder* recorder,
                      const MetricsRegistry* metrics, Json extra,
                      std::size_t recorder_last_n) {
  Json j = Json::object();
  j.set("schema", kPostmortemSchema);
  j.set("version", kPostmortemVersion);
  j.set("reason", info.reason);
  j.set("phase", info.phase);
  j.set("message", info.message);
  j.set("t_s", info.vtime_s);
  if (recorder != nullptr) j.set("recorder", recorder->to_json(recorder_last_n));
  if (metrics != nullptr) j.set("metrics", deterministic_metrics(metrics->to_json()));
  if (extra.is_object() || extra.is_array()) j.set("extra", std::move(extra));
  return j;
}

void write_postmortem(const std::string& path, const PostmortemInfo& info,
                      const FlightRecorder* recorder, const MetricsRegistry* metrics,
                      Json extra, std::size_t recorder_last_n) {
  write_json_file(path,
                  build_postmortem(info, recorder, metrics, std::move(extra), recorder_last_n));
}

}  // namespace ardbt::obs::live
