#pragma once

#include <cstdint>

#include "src/obs/live/sink.hpp"
#include "src/obs/metrics.hpp"

/// \file snapshot.hpp
/// Periodic metric-registry snapshots on a virtual-clock cadence, emitted
/// as an append-only JSONL time series — the time axis a service-layer
/// dashboard (p50/p99 latency over time, throughput, arena pressure)
/// consumes while the process is still running.
///
/// Stream layout (JSONL, shares a sink with the structured log):
///
///   {"schema":"ardbt.metrics_snapshot","version":1}   <- header, first emit
///   {"type":"snapshot","n":0,"t_s":0.004,"metrics":{...}}
///   {"type":"snapshot","n":1,"t_s":0.012,"metrics":{...}}
///
/// The cadence runs on the *virtual* clock: tick(t) emits a snapshot when
/// `t` has crossed the next period boundary since the last emission (one
/// snapshot per crossing — an idle gap of many periods yields one
/// snapshot, not a backlog, so a stalled workload cannot flood the
/// stream). period_s == 0 snapshots on every tick. Metric values are
/// filtered through deterministic_metrics() by default, so under charged
/// timing the stream is bit-identical across runs and thread counts.
///
/// Driver-thread only, like all live emitters.

namespace ardbt::obs::live {

inline constexpr const char* kSnapshotSchema = "ardbt.metrics_snapshot";
inline constexpr int kSnapshotVersion = 1;

struct SnapshotOptions {
  double period_s = 0.0;  ///< virtual seconds between snapshots (0 = every tick)
  /// Keep host-clock metrics (wall/cpu/panel) in the stream. Off by
  /// default: they vary run to run and would break bit-stability.
  bool include_nondeterministic = false;
  bool header = true;  ///< emit the {"schema","version"} header line
};

class Snapshotter {
 public:
  /// The sink and registry are not owned and must outlive the snapshotter.
  Snapshotter(LineSink* sink, const MetricsRegistry* registry, SnapshotOptions options = {});

  /// Emit a snapshot if `vtime_s` crossed the cadence boundary. Returns
  /// true when a snapshot was written.
  bool tick(double vtime_s);

  /// Emit unconditionally (final snapshot at shutdown).
  void force(double vtime_s);

  std::uint64_t snapshots_written() const { return written_; }
  double next_due_s() const { return next_due_; }

 private:
  void emit(double vtime_s);

  LineSink* sink_;
  const MetricsRegistry* registry_;
  SnapshotOptions options_;
  bool header_written_ = false;
  double next_due_ = 0.0;
  std::uint64_t written_ = 0;
};

}  // namespace ardbt::obs::live
