#include "src/obs/live/recorder.hpp"

#include <algorithm>

namespace ardbt::obs::live {

RecorderChannel::RecorderChannel(FlightRecorder* owner, int channel, std::size_t capacity)
    : owner_(owner), channel_(channel), capacity_(capacity) {
  ring_.reserve(capacity_);
}

void RecorderChannel::record(const char* kind, const char* name, double vtime, double value) {
  if (!owner_->enabled_) return;
  RecorderEvent e;
  e.vtime = vtime;
  e.value = value;
  e.kind = kind;
  e.name = name;
  e.channel = channel_;
  e.index = recorded_++;
  // Head sampling is driver-only: rank channels are written concurrently
  // by engine threads and must never touch the shared head store.
  if (channel_ < 0 && kind[0] == 's') owner_->offer_head(e);
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<RecorderEvent> RecorderChannel::events() const {
  std::vector<RecorderEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

FlightRecorder::FlightRecorder(RecorderOptions options)
    : options_(options),
      driver_(new RecorderChannel(this, -1, options.capacity)) {}

void FlightRecorder::prepare(int nranks) {
  for (int r = static_cast<int>(ranks_.size()); r < nranks; ++r) {
    ranks_.emplace_back(new RecorderChannel(this, r, options_.capacity));
  }
}

RecorderChannel* FlightRecorder::channel(int rank) {
  if (!enabled_) return nullptr;
  const auto idx = static_cast<std::size_t>(rank);
  return idx < ranks_.size() ? ranks_[idx].get() : nullptr;
}

void FlightRecorder::offer_head(const RecorderEvent& e) {
  auto it = head_.find(e.name);
  if (it == head_.end()) {
    if (head_.size() >= options_.max_head_phases || options_.head_per_phase == 0) return;
    it = head_.emplace(e.name, std::vector<RecorderEvent>()).first;
    it->second.reserve(options_.head_per_phase);
  }
  if (it->second.size() < options_.head_per_phase) it->second.push_back(e);
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::uint64_t n = driver_->total_recorded();
  for (const auto& c : ranks_) n += c->total_recorded();
  return n;
}

std::uint64_t FlightRecorder::total_dropped() const {
  std::uint64_t n = driver_->dropped();
  for (const auto& c : ranks_) n += c->dropped();
  return n;
}

std::vector<RecorderEvent> FlightRecorder::recent(std::size_t n) const {
  std::vector<RecorderEvent> all = driver_->events();
  for (const auto& c : ranks_) {
    const std::vector<RecorderEvent> ce = c->events();
    all.insert(all.end(), ce.begin(), ce.end());
  }
  std::sort(all.begin(), all.end(), [](const RecorderEvent& a, const RecorderEvent& b) {
    if (a.vtime != b.vtime) return a.vtime < b.vtime;
    if (a.channel != b.channel) return a.channel < b.channel;
    return a.index < b.index;
  });
  if (all.size() > n) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
  return all;
}

void FlightRecorder::note_anomaly(const char* kind, double vtime, std::string detail) {
  if (!enabled_) return;
  ++anomalies_noted_;
  AnomalySnapshot snap;
  snap.kind = kind;
  snap.vtime = vtime;
  snap.detail = std::move(detail);
  snap.ordinal = anomalies_noted_;
  snap.tail = recent(options_.tail_keep);
  if (options_.max_anomalies == 0) return;
  if (anomalies_.size() >= options_.max_anomalies) {
    anomalies_.erase(anomalies_.begin());  // oldest evicted; burst stays bounded
  }
  anomalies_.push_back(std::move(snap));
}

std::size_t FlightRecorder::max_resident_events() const {
  return (ranks_.size() + 1) * options_.capacity +
         options_.max_head_phases * options_.head_per_phase +
         options_.max_anomalies * options_.tail_keep;
}

Json to_json(const RecorderEvent& e) {
  Json j = Json::object();
  j.set("t_s", e.vtime);
  j.set("kind", e.kind);
  j.set("name", e.name);
  j.set("value", e.value);
  j.set("ch", e.channel);
  j.set("i", e.index);
  return j;
}

Json FlightRecorder::to_json(std::size_t last_n) const {
  Json j = Json::object();
  j.set("enabled", enabled_);
  j.set("recorded", total_recorded());
  j.set("dropped", total_dropped());
  j.set("anomalies_noted", anomalies_noted_);
  Json events = Json::array();
  for (const RecorderEvent& e : recent(last_n)) events.push(live::to_json(e));
  j.set("events", std::move(events));
  Json head = Json::object();
  for (const auto& [phase, samples] : head_) {
    Json arr = Json::array();
    for (const RecorderEvent& e : samples) arr.push(live::to_json(e));
    head.set(phase, std::move(arr));
  }
  j.set("head", std::move(head));
  Json anomalies = Json::array();
  for (const AnomalySnapshot& a : anomalies_) {
    Json aj = Json::object();
    aj.set("kind", a.kind);
    aj.set("t_s", a.vtime);
    if (!a.detail.empty()) aj.set("detail", a.detail);
    aj.set("ordinal", a.ordinal);
    Json tail = Json::array();
    for (const RecorderEvent& e : a.tail) tail.push(live::to_json(e));
    aj.set("tail", std::move(tail));
    anomalies.push(std::move(aj));
  }
  j.set("anomalies", std::move(anomalies));
  return j;
}

}  // namespace ardbt::obs::live
