#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// \file sink.hpp
/// Line-oriented output sinks for the live-telemetry subsystem. Every
/// emitter in src/obs/live (structured log, metric snapshot stream)
/// renders one self-contained JSON document per line and hands it to a
/// LineSink — so the same record can go to a JSONL file (`--live-out`),
/// stderr, or an in-memory buffer in tests without the emitters knowing.
///
/// Sinks are not thread-safe; all live emitters run on the driver thread
/// (the engine's rank threads never write a sink directly — they feed the
/// FlightRecorder's per-rank channels instead, see recorder.hpp).

namespace ardbt::obs::live {

/// One JSONL output destination.
class LineSink {
 public:
  virtual ~LineSink() = default;
  /// Write one complete JSON document (no trailing newline in `line`).
  virtual void write_line(std::string_view line) = 0;
  virtual void flush() {}
};

/// Appends lines to a file opened at construction (truncating).
/// Throws std::runtime_error when the file cannot be opened.
class FileSink : public LineSink {
 public:
  explicit FileSink(const std::string& path) : file_(std::fopen(path.c_str(), "w")) {
    if (file_ == nullptr) throw std::runtime_error("FileSink: cannot open " + path);
  }
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;
  ~FileSink() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  void write_line(std::string_view line) override {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
  }
  void flush() override { std::fflush(file_); }

 private:
  std::FILE* file_ = nullptr;
};

/// Writes lines to stderr (structured warnings on a terminal).
class StderrSink : public LineSink {
 public:
  void write_line(std::string_view line) override {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fputc('\n', stderr);
  }
};

/// Collects lines in memory (tests, postmortem assembly).
class MemorySink : public LineSink {
 public:
  void write_line(std::string_view line) override { lines_.emplace_back(line); }
  const std::vector<std::string>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

 private:
  std::vector<std::string> lines_;
};

/// Swallows everything (telemetry attached for its counters/recorder
/// only, e.g. `--postmortem` without `--live-out`).
class NullSink : public LineSink {
 public:
  void write_line(std::string_view) override {}
};

/// Fan-out to several sinks (file + stderr). Does not own its targets.
class TeeSink : public LineSink {
 public:
  explicit TeeSink(std::vector<LineSink*> sinks) : sinks_(std::move(sinks)) {}

  void write_line(std::string_view line) override {
    for (LineSink* s : sinks_) s->write_line(line);
  }
  void flush() override {
    for (LineSink* s : sinks_) s->flush();
  }

 private:
  std::vector<LineSink*> sinks_;
};

}  // namespace ardbt::obs::live
