#pragma once

#include <string>

#include "src/obs/json.hpp"
#include "src/obs/live/recorder.hpp"
#include "src/obs/metrics.hpp"

/// \file postmortem.hpp
/// Postmortem bundles: when a run dies (SolveError) or detects breakdown,
/// everything an incident review needs is frozen into one JSON document —
/// what failed, the flight recorder's recent events and anomaly
/// snapshots, a final metric snapshot, and caller-supplied context (the
/// degradation-ladder outcome, fault counters). One file per incident, so
/// a crashed service run leaves evidence even though the process never
/// reached its end-of-run report.
///
/// Schema "ardbt.postmortem" version 1:
///
///   {"schema":"ardbt.postmortem","version":1,
///    "reason":"breakdown","phase":"factor","message":"...","t_s":0.12,
///    "recorder":{...FlightRecorder::to_json()...},
///    "metrics":{...deterministic snapshot...},
///    "extra":{...caller context...}}
///
/// Recorder/metrics/extra sections are omitted when absent, never null.

namespace ardbt::obs::live {

inline constexpr const char* kPostmortemSchema = "ardbt.postmortem";
inline constexpr int kPostmortemVersion = 1;

/// What failed, from the catch site.
struct PostmortemInfo {
  std::string reason;   ///< stable failure name (fault::to_string(code), "breakdown")
  std::string phase;    ///< pipeline phase ("factor", "solve")
  std::string message;  ///< human-readable error text
  double vtime_s = 0.0; ///< virtual clock at capture
};

/// Assemble the bundle. `recorder` contributes its last `recorder_last_n`
/// events plus head samples and anomaly snapshots; `metrics` a
/// deterministic registry snapshot; `extra` arbitrary caller context.
/// All pointers optional.
Json build_postmortem(const PostmortemInfo& info, const FlightRecorder* recorder,
                      const MetricsRegistry* metrics, Json extra = Json(),
                      std::size_t recorder_last_n = 256);

/// build_postmortem() + write_json_file(path). Throws on I/O failure.
void write_postmortem(const std::string& path, const PostmortemInfo& info,
                      const FlightRecorder* recorder, const MetricsRegistry* metrics,
                      Json extra = Json(), std::size_t recorder_last_n = 256);

}  // namespace ardbt::obs::live
