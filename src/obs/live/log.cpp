#include "src/obs/live/log.hpp"

namespace ardbt::obs::live {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

Log::Log(LineSink* sink, LogOptions options) : sink_(sink), options_(options) {}

void Log::ensure_header() {
  if (header_written_ || !options_.header) {
    header_written_ = true;
    return;
  }
  Json header = Json::object();
  header.set("schema", kLogSchema);
  header.set("version", kLogVersion);
  sink_->write_line(header.dump(0));
  header_written_ = true;
}

bool Log::write(LogLevel level, std::string_view site, std::string_view message, double t_s,
                Json fields) {
  if (sink_ == nullptr || level < options_.min_level) return false;
  auto& [count_written, count_suppressed] = sites_[{std::string(site), level}];
  if (count_written >= options_.max_per_site) {
    ++count_suppressed;
    ++suppressed_total_;
    return false;
  }
  ++count_written;
  ensure_header();
  Json record = Json::object();
  record.set("type", "log");
  record.set("n", next_seq_++);
  if (t_s >= 0.0) record.set("t_s", t_s);
  record.set("level", to_string(level));
  record.set("site", site);
  record.set("msg", message);
  if (fields.is_object() && fields.size() > 0) record.set("fields", std::move(fields));
  sink_->write_line(record.dump(0));
  ++written_;
  return true;
}

void Log::flush_suppressed() {
  // sites_ is an ordered map, so the summary order is deterministic.
  for (auto& [key, counts] : sites_) {
    auto& [site, level] = key;
    auto& [count_written, count_suppressed] = counts;
    if (count_suppressed == 0) continue;
    ensure_header();
    Json record = Json::object();
    record.set("type", "log");
    record.set("n", next_seq_++);
    record.set("level", "warn");
    record.set("site", "log.suppressed");
    record.set("msg", "rate limit suppressed records");
    Json fields = Json::object();
    fields.set("site", site);
    fields.set("level", to_string(level));
    fields.set("count", count_suppressed);
    record.set("fields", std::move(fields));
    sink_->write_line(record.dump(0));
    ++written_;
    // Reset so repeated flushes stay idempotent; keep count_written so the
    // rate limit itself stays in force.
    count_suppressed = 0;
  }
}

void Log::close() {
  if (sink_ == nullptr) return;
  flush_suppressed();
  sink_->flush();
}

}  // namespace ardbt::obs::live
