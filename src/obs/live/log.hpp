#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "src/obs/json.hpp"
#include "src/obs/live/sink.hpp"

/// \file log.hpp
/// Structured, leveled, rate-limited logging for long-running solver
/// processes: typed key-value records rendered as one JSON document per
/// line ("ardbt.log" version 1) to a pluggable LineSink.
///
/// Stream layout (JSONL):
///
///   {"schema":"ardbt.log","version":1}            <- header, first write
///   {"type":"log","n":0,"t_s":0.0123,"level":"info",
///    "site":"session.factor","msg":"...","fields":{...}}
///   ...
///   {"type":"log","n":7,"level":"warn","site":"log.suppressed",
///    "msg":"...","fields":{"site":...,"level":...,"count":...}}
///
/// Determinism contract: records carry the *virtual* clock (`t_s`, passed
/// by the caller) and a monotone sequence number — never wall time — so a
/// charged-flops run writes a bit-identical stream on every execution and
/// for any `--threads` value (tools/check_logs.py asserts this).
///
/// Rate limiting is per (site, level): after `max_per_site` records from
/// one site at one level the rest are counted, not written, and
/// `flush_suppressed()` (called by close()) emits one deterministic
/// summary record per suppressed (site, level) so a flood can never grow
/// the stream or hide its own existence.
///
/// Single-writer: all logging happens on the driver thread. Engine rank
/// threads must not log (they feed the FlightRecorder instead).

namespace ardbt::obs::live {

inline constexpr const char* kLogSchema = "ardbt.log";
inline constexpr int kLogVersion = 1;

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

/// Stable lowercase name ("debug", "info", "warn", "error").
std::string_view to_string(LogLevel level);

struct LogOptions {
  LogLevel min_level = LogLevel::kInfo;  ///< records below this are dropped
  /// Records per (site, level) before suppression kicks in.
  std::uint64_t max_per_site = 128;
  /// Emit the {"schema","version"} header line on first write.
  bool header = true;
};

/// Leveled key-value logger writing JSONL to a LineSink. The sink is not
/// owned and must outlive the Log.
class Log {
 public:
  explicit Log(LineSink* sink, LogOptions options = {});

  /// Emit one record. `site` identifies the instrumentation point
  /// ("session.solve", "watchdog.straggler") and is the rate-limit key
  /// together with `level`; `t_s` is the caller's virtual-clock seconds
  /// (negative = omit); `fields` is an optional JSON object of typed
  /// context. Returns true when the record was written (not filtered or
  /// suppressed).
  bool write(LogLevel level, std::string_view site, std::string_view message, double t_s = -1.0,
             Json fields = Json());

  bool debug(std::string_view site, std::string_view message, double t_s = -1.0,
             Json fields = Json()) {
    return write(LogLevel::kDebug, site, message, t_s, std::move(fields));
  }
  bool info(std::string_view site, std::string_view message, double t_s = -1.0,
            Json fields = Json()) {
    return write(LogLevel::kInfo, site, message, t_s, std::move(fields));
  }
  bool warn(std::string_view site, std::string_view message, double t_s = -1.0,
            Json fields = Json()) {
    return write(LogLevel::kWarn, site, message, t_s, std::move(fields));
  }
  bool error(std::string_view site, std::string_view message, double t_s = -1.0,
             Json fields = Json()) {
    return write(LogLevel::kError, site, message, t_s, std::move(fields));
  }

  /// Emit one summary record per suppressed (site, level), in sorted
  /// order, and reset the suppression counters. Idempotent when nothing
  /// was suppressed.
  void flush_suppressed();

  /// flush_suppressed() + sink flush. Safe to call more than once.
  void close();

  std::uint64_t records_written() const { return written_; }
  std::uint64_t records_suppressed() const { return suppressed_total_; }

 private:
  void ensure_header();

  LineSink* sink_;
  LogOptions options_;
  bool header_written_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t written_ = 0;
  std::uint64_t suppressed_total_ = 0;
  /// (site, level) -> {written, suppressed} counts.
  std::map<std::pair<std::string, LogLevel>, std::pair<std::uint64_t, std::uint64_t>> sites_;
};

}  // namespace ardbt::obs::live
