#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

/// \file recorder.hpp
/// Always-on, bounded flight recorder: a black box a long-running solver
/// process can keep writing forever in O(configured capacity) memory and
/// dump when something goes wrong.
///
/// The existing Tracer is a *full* recorder — every event of every run,
/// accumulated across Session-chained runs — which is the right tool for
/// post-mortem attribution of one run but grows without bound under a
/// service workload of 1e2..1e4 chained solve(B) calls. The FlightRecorder
/// inverts the trade-off: it keeps only
///
///   * a recent-events ring per channel (one channel per simulated rank,
///     fed by mpsim::Comm's anomaly taps, plus a driver channel fed by
///     core::Session's phase/metric hooks) — the tail;
///   * the first `head_per_phase` span events of each distinct phase name
///     (head sampling: the steady state of a phase is its first few
///     occurrences; later repeats add no information) — the head;
///   * up to `max_anomalies` anomaly snapshots, each freezing the last
///     `tail_keep` ring events at the moment note_anomaly() was called
///     (deadline miss, breakdown, cost-model drift) — tail retention.
///
/// Total memory is bounded by
///   nchannels * capacity + max_head_phases * head_per_phase
///     + max_anomalies * (tail_keep + 1)
/// events, forever, regardless of how many runs are chained.
///
/// Zero-cost contract (mirrors the tracer / fault plan): with no recorder
/// installed — or a disabled one — every tap in mpsim::Comm and
/// core::Session is a single pointer test, and recording never touches
/// the virtual clock, so solutions and vtimes are bit-identical with the
/// recorder compiled in, installed, enabled, or absent.
///
/// Threading: channel(r) is written only by rank r's engine thread during
/// a run; the driver channel, note_anomaly(), and all readers
/// (recent()/to_json()) must run on the driver thread with no engine run
/// in flight — the same single-writer contract as RankTrace.
///
/// Event names must be string literals (events store the pointer;
/// recording never allocates after prepare()).

namespace ardbt::obs::live {

struct RecorderOptions {
  std::size_t capacity = 1024;      ///< ring slots per channel (0 = tail off)
  std::size_t head_per_phase = 4;   ///< span events kept per distinct phase name
  std::size_t max_head_phases = 64; ///< distinct phase names tracked by the head store
  std::size_t tail_keep = 64;       ///< ring events frozen per anomaly snapshot
  std::size_t max_anomalies = 8;    ///< anomaly snapshots retained (oldest evicted)
};

/// One recorded event. `vtime` is the writer's virtual clock; `kind` is a
/// small vocabulary ("span", "metric", "mark"); `value` is kind-specific
/// (span duration seconds, metric delta, mark magnitude).
struct RecorderEvent {
  double vtime = 0.0;
  double value = 0.0;
  const char* kind = "";
  const char* name = "";
  int channel = -1;         ///< -1 driver, otherwise rank index
  std::uint64_t index = 0;  ///< per-channel admission counter (monotone)
};

class FlightRecorder;

/// Single-writer bounded event ring. Obtained from FlightRecorder;
/// never constructed directly.
class RecorderChannel {
 public:
  /// Record one event (see RecorderEvent). O(1), no allocation.
  void record(const char* kind, const char* name, double vtime, double value = 0.0);

  /// Record a completed span of `name` ending at `vtime_end` with the
  /// given duration; participates in head sampling.
  void record_span(const char* name, double vtime_end, double duration_s) {
    record("span", name, vtime_end, duration_s);
  }
  /// Record a metric delta (counter increment, gauge movement).
  void record_metric(const char* name, double vtime, double delta) {
    record("metric", name, vtime, delta);
  }
  /// Record an instant marker (fault detected, deadline miss).
  void record_mark(const char* name, double vtime, double value = 0.0) {
    record("mark", name, vtime, value);
  }

  std::uint64_t total_recorded() const { return recorded_; }
  /// Events overwritten (ring) or never stored (capacity 0).
  std::uint64_t dropped() const { return dropped_; }
  /// Ring contents, oldest first.
  std::vector<RecorderEvent> events() const;

 private:
  friend class FlightRecorder;
  RecorderChannel(FlightRecorder* owner, int channel, std::size_t capacity);

  FlightRecorder* owner_;
  int channel_;
  std::size_t capacity_;
  std::vector<RecorderEvent> ring_;
  std::size_t head_ = 0;  ///< next slot to overwrite once full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// One frozen anomaly snapshot.
struct AnomalySnapshot {
  const char* kind = "";  ///< "deadline", "breakdown", "cost-model", ...
  double vtime = 0.0;
  std::string detail;
  std::uint64_t ordinal = 0;            ///< anomaly count at capture time
  std::vector<RecorderEvent> tail;      ///< last tail_keep events, merged, oldest first
};

class FlightRecorder {
 public:
  explicit FlightRecorder(RecorderOptions options = {});

  /// Runtime kill switch. A disabled recorder hands out null channels and
  /// ignores every call — flip only between engine runs.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  const RecorderOptions& options() const { return options_; }

  /// Size the per-rank channels (engine-called before threads start).
  /// Existing channels are kept so chained runs accumulate into the same
  /// bounded rings.
  void prepare(int nranks);

  int nranks() const { return static_cast<int>(ranks_.size()); }
  /// Rank channel, or null when disabled (the caller's one pointer test).
  RecorderChannel* channel(int rank);
  /// Driver-side channel (Session phases, metric deltas). Always valid;
  /// records are dropped while disabled.
  RecorderChannel& driver() { return *driver_; }

  /// Freeze the last `tail_keep` events (all channels merged by vtime)
  /// into an anomaly snapshot. Driver thread only, between runs.
  void note_anomaly(const char* kind, double vtime, std::string detail = "");

  std::uint64_t total_recorded() const;
  std::uint64_t total_dropped() const;
  std::uint64_t anomalies_noted() const { return anomalies_noted_; }
  const std::vector<AnomalySnapshot>& anomalies() const { return anomalies_; }
  /// Head-sampled span events, grouped by phase name (sorted).
  const std::map<std::string, std::vector<RecorderEvent>>& head_samples() const {
    return head_;
  }

  /// Last `n` events across all channels, merged by (vtime, channel,
  /// index), oldest first.
  std::vector<RecorderEvent> recent(std::size_t n) const;

  /// Hard bound on events this recorder can ever hold (for tests).
  std::size_t max_resident_events() const;

  /// {"enabled","recorded","dropped","anomalies_noted",
  ///  "events":[last-n, oldest first],"head":{phase:[...]},
  ///  "anomalies":[{kind,t_s,detail,ordinal,tail:[...]}]}.
  Json to_json(std::size_t last_n = 256) const;

 private:
  friend class RecorderChannel;
  /// Head-sampling admission: called by channels for span events.
  void offer_head(const RecorderEvent& e);

  RecorderOptions options_;
  bool enabled_ = true;
  std::unique_ptr<RecorderChannel> driver_;
  std::vector<std::unique_ptr<RecorderChannel>> ranks_;
  std::map<std::string, std::vector<RecorderEvent>> head_;
  std::vector<AnomalySnapshot> anomalies_;
  std::uint64_t anomalies_noted_ = 0;
};

/// Deterministic JSON for one event: {"t_s","kind","name","value","ch","i"}.
Json to_json(const RecorderEvent& e);

}  // namespace ardbt::obs::live
