#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/status.hpp"
#include "src/obs/cost_model.hpp"
#include "src/obs/live/log.hpp"
#include "src/obs/live/recorder.hpp"
#include "src/obs/metrics.hpp"

/// \file watchdog.hpp
/// Online SLO watchdogs: detectors that run *during* a service workload
/// (between chained Session runs, on the virtual clock) and turn raw
/// telemetry into actionable alerts — a structured log record, a
/// `watchdog.*` counter, and a flight-recorder anomaly snapshot per
/// finding — instead of waiting for a post-run report nobody reads until
/// the incident review.
///
/// Alerts are advisory: a watchdog never throws and never perturbs the
/// solve (it reads samples the run already produced). The alert taxonomy
/// (fault::AlertKind) lives in the fault layer so every layer shares one
/// vocabulary.
///
/// Layering: obs sits below mpsim, so the rank detector takes neutral
/// RankSample rows, not mpsim::RunReport — core::Session projects its
/// report into samples (one extra copy of four numbers per rank).
///
/// All sinks are optional; a null Log / registry / recorder simply skips
/// that output. Driver thread only.

namespace ardbt::obs::live {

/// Per-rank telemetry row for check_ranks(), projected from the engine's
/// per-rank stats by the caller.
struct RankSample {
  int rank = 0;
  double virtual_time = 0.0;            ///< rank's final virtual clock, seconds
  double virtual_wait = 0.0;            ///< virtual seconds blocked in receives
  std::uint64_t deadline_misses = 0;    ///< receives that exceeded their deadline
};

struct WatchdogOptions {
  /// A rank is a straggler when its wait fraction exceeds
  /// `straggler_factor` times the fleet median wait fraction...
  double straggler_factor = 2.0;
  /// ...and is also above this absolute floor (a fleet of uniformly tiny
  /// waits has no straggler no matter the ratio).
  double straggler_min_wait_fraction = 0.25;
  /// Arena alert when high_watermark / capacity reaches this fraction.
  double arena_fraction = 0.9;
  /// Shed-storm alert when shed / offered columns reaches this fraction.
  double shed_storm_fraction = 0.1;
};

/// One raised alert (also what lands in the log record's fields).
struct Alert {
  fault::AlertKind kind = fault::AlertKind::kStraggler;
  double vtime = 0.0;
  std::string message;
};

class Watchdogs {
 public:
  /// All outputs optional and non-owned: `log` receives one warn record
  /// per alert, `metrics` the `watchdog.*` counters, `recorder` one
  /// anomaly snapshot per alert.
  Watchdogs(WatchdogOptions options, Log* log, MetricsRegistry* metrics,
            FlightRecorder* recorder);

  /// Straggler + deadline detector over one run's rank samples. Returns
  /// the number of alerts raised.
  std::size_t check_ranks(const std::vector<RankSample>& samples, double vtime_s);

  /// Arena-pressure detector against a configured budget. `name` labels
  /// the arena ("factor", "solve").
  std::size_t check_arena(const char* name, std::size_t high_watermark_bytes,
                          std::size_t capacity_bytes, double vtime_s);

  /// Steady-state violation detector for grow-on-demand arenas (no fixed
  /// capacity): after warmup, a solve should recycle every scratch matrix
  /// — `grown_allocs` fresh slab allocations mean the arena is still
  /// growing (a leak-shaped signal under a chained-solve workload).
  std::size_t check_arena_growth(const char* name, std::uint64_t grown_allocs, double vtime_s);

  /// Cost-model drift detector over judged phase verdicts (one alert per
  /// flagged verdict).
  std::size_t check_cost(const std::vector<CostVerdict>& verdicts, double vtime_s);

  /// Trace/recorder ring overflow detector (`dropped` events lost).
  std::size_t check_trace_drops(std::uint64_t dropped, double vtime_s);

  /// Service-resilience detector over one load run's admission and
  /// breaker counters: raises kShedStorm when the shed share of offered
  /// columns reaches `shed_storm_fraction` (admission is actively
  /// refusing a large slice of traffic — capacity, not a blip) and one
  /// kBreakerTrip per tenant breaker trip observed.
  std::size_t check_service(std::uint64_t offered, std::uint64_t shed,
                            std::uint64_t breaker_trips, double vtime_s);

  std::uint64_t alerts_raised() const { return alerts_raised_; }
  /// Alerts raised so far, oldest first (bounded by kMaxKeptAlerts).
  const std::vector<Alert>& alerts() const { return alerts_; }

 private:
  static constexpr std::size_t kMaxKeptAlerts = 64;

  void raise(fault::AlertKind kind, double vtime_s, std::string message, Json fields);

  WatchdogOptions options_;
  Log* log_;
  MetricsRegistry* metrics_;
  FlightRecorder* recorder_;
  std::uint64_t alerts_raised_ = 0;
  std::vector<Alert> alerts_;
};

}  // namespace ardbt::obs::live
