#include "src/obs/live/snapshot.hpp"

#include <cmath>

namespace ardbt::obs::live {

Snapshotter::Snapshotter(LineSink* sink, const MetricsRegistry* registry, SnapshotOptions options)
    : sink_(sink), registry_(registry), options_(options) {}

bool Snapshotter::tick(double vtime_s) {
  if (sink_ == nullptr || registry_ == nullptr) return false;
  if (vtime_s < next_due_) return false;
  emit(vtime_s);
  // One snapshot per crossing: skip ahead past vtime_s so an idle gap of
  // many periods yields one snapshot, not a backlog.
  if (options_.period_s > 0.0) {
    next_due_ = (std::floor(vtime_s / options_.period_s) + 1.0) * options_.period_s;
  } else {
    next_due_ = vtime_s;  // every tick; strictly-later ticks always emit
  }
  return true;
}

void Snapshotter::force(double vtime_s) {
  if (sink_ == nullptr || registry_ == nullptr) return;
  emit(vtime_s);
}

void Snapshotter::emit(double vtime_s) {
  if (options_.header && !header_written_) {
    Json header = Json::object();
    header.set("schema", kSnapshotSchema);
    header.set("version", kSnapshotVersion);
    sink_->write_line(header.dump(0));
  }
  header_written_ = true;
  Json record = Json::object();
  record.set("type", "snapshot");
  record.set("n", written_);
  record.set("t_s", vtime_s);
  const Json all = registry_->to_json();
  record.set("metrics", options_.include_nondeterministic ? all : deterministic_metrics(all));
  sink_->write_line(record.dump(0));
  ++written_;
}

}  // namespace ardbt::obs::live
