#pragma once

#include <memory>
#include <string>

#include "src/obs/live/log.hpp"
#include "src/obs/live/recorder.hpp"
#include "src/obs/live/sink.hpp"
#include "src/obs/live/snapshot.hpp"
#include "src/obs/live/watchdog.hpp"
#include "src/obs/metrics.hpp"

/// \file telemetry.hpp
/// The live-telemetry bundle: the handle core::Session consumes, plus a
/// convenience owner (LiveTelemetry) that assembles the whole chain —
/// file sink, structured log, flight recorder, snapshotter, watchdogs —
/// from one options struct, for the CLI and benches.
///
/// Every pointer in Telemetry is optional and non-owned; a default
/// Telemetry{} is fully inert and costs the instrumented code one pointer
/// test per hook (the zero-cost contract).

namespace ardbt::obs::live {

/// Non-owning view over the live-telemetry components a Session uses.
struct Telemetry {
  Log* log = nullptr;                 ///< structured log records
  FlightRecorder* recorder = nullptr; ///< bounded span/metric/anomaly recorder
  Snapshotter* snapshotter = nullptr; ///< periodic metric snapshots
  Watchdogs* watchdogs = nullptr;     ///< online SLO detectors
  MetricsRegistry* metrics = nullptr; ///< registry fed between runs
  std::string postmortem_path;        ///< dump bundle here on failure ("" = off)

  bool any() const {
    return log != nullptr || recorder != nullptr || snapshotter != nullptr ||
           watchdogs != nullptr || metrics != nullptr || !postmortem_path.empty();
  }
};

/// Owner that builds the standard chain: one LineSink (file path or an
/// in-memory sink for tests) shared by the log and the snapshot stream,
/// plus recorder and watchdogs, all wired to one MetricsRegistry.
class LiveTelemetry {
 public:
  struct Options {
    /// JSONL output path shared by log + snapshots; "" = in-memory sink
    /// (retrievable via memory_lines()), "-" = stderr.
    std::string live_path;
    LogOptions log;
    RecorderOptions recorder;
    SnapshotOptions snapshot;
    WatchdogOptions watchdog;
    std::string postmortem_path;  ///< "" = no postmortem dumps
  };

  /// `metrics` is not owned and must outlive this object.
  LiveTelemetry(Options options, MetricsRegistry* metrics)
      : options_(std::move(options)), metrics_(metrics) {
    if (options_.live_path.empty()) {
      sink_ = std::make_unique<MemorySink>();
    } else if (options_.live_path == "-") {
      sink_ = std::make_unique<StderrSink>();
    } else {
      sink_ = std::make_unique<FileSink>(options_.live_path);
    }
    log_ = std::make_unique<Log>(sink_.get(), options_.log);
    recorder_ = std::make_unique<FlightRecorder>(options_.recorder);
    snapshotter_ = std::make_unique<Snapshotter>(sink_.get(), metrics_, options_.snapshot);
    watchdogs_ = std::make_unique<Watchdogs>(options_.watchdog, log_.get(), metrics_,
                                             recorder_.get());
  }

  /// The handle to install on a Session. Valid while *this lives.
  Telemetry handle() {
    Telemetry t;
    t.log = log_.get();
    t.recorder = recorder_.get();
    t.snapshotter = snapshotter_.get();
    t.watchdogs = watchdogs_.get();
    t.metrics = metrics_;
    t.postmortem_path = options_.postmortem_path;
    return t;
  }

  Log& log() { return *log_; }
  FlightRecorder& recorder() { return *recorder_; }
  Snapshotter& snapshotter() { return *snapshotter_; }
  Watchdogs& watchdogs() { return *watchdogs_; }
  LineSink& sink() { return *sink_; }

  /// Lines captured so far when live_path was "" (in-memory sink).
  const std::vector<std::string>* memory_lines() const {
    const auto* mem = dynamic_cast<const MemorySink*>(sink_.get());
    return mem != nullptr ? &mem->lines() : nullptr;
  }

  /// Flush suppressed-log summaries and the sink. Safe to call twice.
  void close() {
    log_->close();
    sink_->flush();
  }

 private:
  Options options_;
  MetricsRegistry* metrics_;
  std::unique_ptr<LineSink> sink_;
  std::unique_ptr<Log> log_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<Snapshotter> snapshotter_;
  std::unique_ptr<Watchdogs> watchdogs_;
};

}  // namespace ardbt::obs::live
