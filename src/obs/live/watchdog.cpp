#include "src/obs/live/watchdog.hpp"

#include <algorithm>
#include <cstdio>

namespace ardbt::obs::live {
namespace {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Watchdogs::Watchdogs(WatchdogOptions options, Log* log, MetricsRegistry* metrics,
                     FlightRecorder* recorder)
    : options_(options), log_(log), metrics_(metrics), recorder_(recorder) {}

void Watchdogs::raise(fault::AlertKind kind, double vtime_s, std::string message, Json fields) {
  ++alerts_raised_;
  const std::string name(fault::to_string(kind));
  if (metrics_ != nullptr) {
    metrics_->counter("watchdog.alerts").add(std::uint64_t{1});
    metrics_->counter("watchdog." + name).add(std::uint64_t{1});
  }
  if (log_ != nullptr) {
    fields.set("alert", name);
    log_->warn("watchdog." + name, message, vtime_s, std::move(fields));
  }
  if (recorder_ != nullptr) {
    // AlertKind names are static storage; safe to hand the recorder.
    recorder_->note_anomaly(fault::to_string(kind).data(), vtime_s, message);
  }
  if (alerts_.size() < kMaxKeptAlerts) {
    alerts_.push_back(Alert{kind, vtime_s, std::move(message)});
  }
}

std::size_t Watchdogs::check_ranks(const std::vector<RankSample>& samples, double vtime_s) {
  std::size_t raised = 0;
  if (samples.empty()) return raised;

  std::vector<double> fractions;
  fractions.reserve(samples.size());
  for (const RankSample& s : samples) {
    fractions.push_back(s.virtual_time > 0.0 ? s.virtual_wait / s.virtual_time : 0.0);
  }
  std::vector<double> sorted = fractions;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];

  std::uint64_t total_misses = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const RankSample& s = samples[i];
    total_misses += s.deadline_misses;
    const double frac = fractions[i];
    if (frac >= options_.straggler_min_wait_fraction &&
        frac > options_.straggler_factor * median) {
      Json fields = Json::object();
      fields.set("rank", s.rank);
      fields.set("wait_fraction", frac);
      fields.set("median_wait_fraction", median);
      raise(fault::AlertKind::kStraggler, vtime_s,
            "rank " + std::to_string(s.rank) + " wait fraction " + format_double(frac) +
                " vs fleet median " + format_double(median),
            std::move(fields));
      ++raised;
    }
  }
  if (total_misses > 0) {
    Json fields = Json::object();
    fields.set("deadline_misses", total_misses);
    raise(fault::AlertKind::kDeadlineMiss, vtime_s,
          std::to_string(total_misses) + " receive deadline miss(es) during the run",
          std::move(fields));
    ++raised;
  }
  return raised;
}

std::size_t Watchdogs::check_arena(const char* name, std::size_t high_watermark_bytes,
                                   std::size_t capacity_bytes, double vtime_s) {
  if (capacity_bytes == 0) return 0;
  const double frac =
      static_cast<double>(high_watermark_bytes) / static_cast<double>(capacity_bytes);
  if (frac < options_.arena_fraction) return 0;
  Json fields = Json::object();
  fields.set("arena", name);
  fields.set("high_watermark_bytes", static_cast<std::uint64_t>(high_watermark_bytes));
  fields.set("capacity_bytes", static_cast<std::uint64_t>(capacity_bytes));
  fields.set("fraction", frac);
  raise(fault::AlertKind::kArenaPressure, vtime_s,
        std::string("arena '") + name + "' high watermark at " + format_double(100.0 * frac) +
            "% of capacity",
        std::move(fields));
  return 1;
}

std::size_t Watchdogs::check_arena_growth(const char* name, std::uint64_t grown_allocs,
                                          double vtime_s) {
  if (grown_allocs == 0) return 0;
  Json fields = Json::object();
  fields.set("arena", name);
  fields.set("grown_allocs", grown_allocs);
  raise(fault::AlertKind::kArenaPressure, vtime_s,
        std::string("arena '") + name + "' grew by " + std::to_string(grown_allocs) +
            " slab allocation(s) after steady state",
        std::move(fields));
  return 1;
}

std::size_t Watchdogs::check_cost(const std::vector<CostVerdict>& verdicts, double vtime_s) {
  std::size_t raised = 0;
  for (const CostVerdict& v : verdicts) {
    if (!v.flagged) continue;
    Json fields = Json::object();
    fields.set("phase", v.phase);
    fields.set("measured_s", v.measured_s);
    fields.set("predicted_s", v.predicted_s);
    fields.set("ratio", v.ratio);
    raise(fault::AlertKind::kCostModelDrift, vtime_s,
          "phase '" + v.phase + "' measured/predicted ratio " + format_double(v.ratio) +
              " outside threshold",
          std::move(fields));
    ++raised;
  }
  return raised;
}

std::size_t Watchdogs::check_service(std::uint64_t offered, std::uint64_t shed,
                                     std::uint64_t breaker_trips, double vtime_s) {
  std::size_t raised = 0;
  if (offered > 0 && shed > 0) {
    const double frac = static_cast<double>(shed) / static_cast<double>(offered);
    if (frac >= options_.shed_storm_fraction) {
      Json fields = Json::object();
      fields.set("offered", offered);
      fields.set("shed", shed);
      fields.set("fraction", frac);
      raise(fault::AlertKind::kShedStorm, vtime_s,
            "admission shed " + format_double(100.0 * frac) + "% of offered columns",
            std::move(fields));
      ++raised;
    }
  }
  for (std::uint64_t i = 0; i < breaker_trips; ++i) {
    Json fields = Json::object();
    fields.set("trip", i + 1);
    fields.set("trips_total", breaker_trips);
    raise(fault::AlertKind::kBreakerTrip, vtime_s,
          "tenant circuit breaker trip " + std::to_string(i + 1) + " of " +
              std::to_string(breaker_trips),
          std::move(fields));
    ++raised;
  }
  return raised;
}

std::size_t Watchdogs::check_trace_drops(std::uint64_t dropped, double vtime_s) {
  if (dropped == 0) return 0;
  Json fields = Json::object();
  fields.set("dropped_events", dropped);
  raise(fault::AlertKind::kTraceDrop, vtime_s,
        std::to_string(dropped) + " trace event(s) dropped by bounded rings", std::move(fields));
  return 1;
}

}  // namespace ardbt::obs::live
