#include "src/obs/cost_model.hpp"

namespace ardbt::obs {

double CostModel::calibrate(const PhaseTerms& terms, double measured_s) {
  const double predicted = predict(terms);
  if (predicted <= 0.0 || measured_s <= 0.0) return 1.0;
  const double scale = measured_s / predicted;
  constants_.seconds_per_flop *= scale;
  constants_.alpha *= scale;
  constants_.beta *= scale;
  calibration_scale_ *= scale;
  return scale;
}

CostVerdict CostModel::judge(const std::string& phase, const PhaseTerms& terms,
                             double measured_s) const {
  CostVerdict v;
  v.phase = phase;
  v.measured_s = measured_s;
  v.predicted_s = predict(terms);
  if (v.predicted_s > 0.0) {
    v.ratio = measured_s / v.predicted_s;
    v.flagged = v.ratio > threshold_ || v.ratio < 1.0 / threshold_;
  }
  return v;
}

Json CostModel::to_json(const std::vector<CostVerdict>& verdicts) const {
  Json out = Json::object();
  Json constants = Json::object();
  constants.set("seconds_per_flop", constants_.seconds_per_flop);
  constants.set("alpha_s", constants_.alpha);
  constants.set("beta_s_per_byte", constants_.beta);
  out.set("constants", std::move(constants));
  out.set("threshold", threshold_);
  out.set("calibration_scale", calibration_scale_);
  Json phases = Json::array();
  for (const CostVerdict& v : verdicts) {
    Json p = Json::object();
    p.set("phase", v.phase);
    p.set("measured_s", v.measured_s);
    p.set("predicted_s", v.predicted_s);
    p.set("ratio", v.ratio);
    p.set("flagged", v.flagged);
    phases.push(std::move(p));
  }
  out.set("phases", std::move(phases));
  return out;
}

}  // namespace ardbt::obs
