#pragma once

#include <string>

#include "src/obs/json.hpp"
#include "src/obs/trace.hpp"

/// \file chrome_trace.hpp
/// Chrome trace-event JSON exporter. The produced file loads directly in
/// chrome://tracing and https://ui.perfetto.dev: one track (tid) per
/// simulated rank, the timeline in *virtual* microseconds, so the viewer
/// shows the modeled parallel execution — phase bars, per-message sends,
/// and the wait gaps the paper's overlap arguments are about.
///
/// Mapping: pid 0 "ardbt mpsim", tid r = rank r; phase/compute/send/wait
/// spans become complete ("X") events, recv/mark become instants ("i");
/// categories carry the SpanKind so tracks can be filtered by kind.
/// args hold bytes / peer / flops / wall-clock timestamps.

namespace ardbt::obs {

/// Build the trace document: {"traceEvents": [...], ...}.
Json chrome_trace_json(const Tracer& tracer);

/// Serialize straight to a file (compact form; traces get large).
void write_chrome_trace(const std::string& path, const Tracer& tracer);

}  // namespace ardbt::obs
