#include "src/obs/chrome_trace.hpp"

namespace ardbt::obs {
namespace {

constexpr double kUsPerSecond = 1e6;

Json event_json(const TraceEvent& e, int tid) {
  Json j = Json::object();
  j.set("name", e.name);
  j.set("cat", to_string(e.kind));
  const bool instant = e.vtime_end <= e.vtime_begin &&
                       (e.kind == SpanKind::kRecv || e.kind == SpanKind::kMark);
  j.set("ph", instant ? "i" : "X");
  j.set("ts", e.vtime_begin * kUsPerSecond);
  if (!instant) j.set("dur", (e.vtime_end - e.vtime_begin) * kUsPerSecond);
  if (instant) j.set("s", "t");  // thread-scoped instant
  j.set("pid", 0);
  j.set("tid", tid);
  Json args = Json::object();
  if (e.peer >= 0) args.set("peer", static_cast<std::int64_t>(e.peer));
  if (e.bytes > 0) args.set("bytes", e.bytes);
  if (e.seq > 0) args.set("seq", e.seq);  // send->recv dependency edge
  if (e.kind == SpanKind::kCompute) args.set("flops", e.value);
  args.set("wall_begin_s", e.wall_begin);
  args.set("wall_end_s", e.wall_end);
  j.set("args", std::move(args));
  return j;
}

}  // namespace

Json chrome_trace_json(const Tracer& tracer) {
  Json events = Json::array();
  // Process + thread naming metadata so viewers label tracks "rank r".
  {
    Json meta = Json::object();
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    Json args = Json::object();
    args.set("name", "ardbt mpsim (virtual clock)");
    meta.set("args", std::move(args));
    events.push(std::move(meta));
  }
  // tid layout: stride W+1 per rank (W = pool worker lanes). The rank
  // track sits at r*(W+1), its worker lanes right below it. With no pool
  // (W == 0) this collapses to tid == rank.
  const int workers = tracer.workers_per_rank();
  const int stride = workers + 1;
  const auto thread_meta = [&events](int tid, const std::string& name) {
    Json meta = Json::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", tid);
    Json args = Json::object();
    args.set("name", name);
    meta.set("args", std::move(args));
    events.push(std::move(meta));
  };
  for (int r = 0; r < tracer.nranks(); ++r) {
    thread_meta(r * stride, "rank " + std::to_string(r));
    for (int w = 0; w < workers; ++w) {
      thread_meta(r * stride + 1 + w,
                  "rank " + std::to_string(r) + " / worker " + std::to_string(w));
    }
  }
  std::uint64_t dropped = 0;
  for (int r = 0; r < tracer.nranks(); ++r) {
    const RankTrace& rt = tracer.rank(r);
    dropped += rt.dropped();
    for (const TraceEvent& e : rt.events()) events.push(event_json(e, r * stride));
    for (int w = 0; w < workers; ++w) {
      const RankTrace& wt = tracer.worker(r, w);
      dropped += wt.dropped();
      for (const TraceEvent& e : wt.events()) events.push(event_json(e, r * stride + 1 + w));
    }
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  Json other = Json::object();
  other.set("clock", "virtual");
  other.set("dropped_events", dropped);
  doc.set("otherData", std::move(other));
  return doc;
}

void write_chrome_trace(const std::string& path, const Tracer& tracer) {
  write_json_file(path, chrome_trace_json(tracer), /*indent=*/0);
}

}  // namespace ardbt::obs
