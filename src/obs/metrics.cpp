#include "src/obs/metrics.hpp"

namespace ardbt::obs {

void Histogram::observe(double x) {
  std::size_t bucket = 0;
  while (bucket + 1 < buckets_.size() && static_cast<double>(std::uint64_t{1} << bucket) < x) {
    ++bucket;
  }
  buckets_[bucket] += 1;
  count_ += 1;
  sum_ += x;
}

void Histogram::merge_log2(const std::vector<std::uint64_t>& buckets) {
  for (std::size_t k = 0; k < buckets.size() && k < buckets_.size(); ++k) {
    buckets_[k] += buckets[k];
    count_ += buckets[k];
    // Attribute the bucket upper bound to the sum (the exact sample values
    // are gone); good enough for mean-order summaries.
    sum_ += static_cast<double>(buckets[k]) * static_cast<double>(std::uint64_t{1} << (k < 63 ? k : 63));
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Json MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  Json out = Json::object();
  if (!counters_.empty()) {
    Json section = Json::object();
    for (const auto& [name, c] : counters_) section.set(name, c->value());
    out.set("counters", std::move(section));
  }
  if (!gauges_.empty()) {
    Json section = Json::object();
    for (const auto& [name, g] : gauges_) section.set(name, g->value());
    out.set("gauges", std::move(section));
  }
  if (!histograms_.empty()) {
    Json section = Json::object();
    for (const auto& [name, h] : histograms_) {
      Json entry = Json::object();
      entry.set("count", h->total_count());
      entry.set("sum", h->sum());
      // Emit only non-empty buckets as {"log2_upper": count}.
      Json buckets = Json::object();
      for (std::size_t k = 0; k < h->buckets().size(); ++k) {
        if (h->buckets()[k] != 0) buckets.set(std::to_string(k), h->buckets()[k]);
      }
      entry.set("log2_buckets", std::move(buckets));
      section.set(name, std::move(entry));
    }
    out.set("histograms", std::move(section));
  }
  return out;
}

}  // namespace ardbt::obs
