#include "src/obs/metrics.hpp"

#include <cmath>

namespace ardbt::obs {

void Histogram::observe(double x) {
  std::size_t bucket = 0;
  while (bucket + 1 < buckets_.size() && static_cast<double>(std::uint64_t{1} << bucket) < x) {
    ++bucket;
  }
  buckets_[bucket] += 1;
  count_ += 1;
  sum_ += x;
}

void Histogram::merge_log2(const std::vector<std::uint64_t>& buckets) {
  for (std::size_t k = 0; k < buckets.size() && k < buckets_.size(); ++k) {
    buckets_[k] += buckets[k];
    count_ += buckets[k];
    // Attribute the bucket upper bound to the sum (the exact sample values
    // are gone); good enough for mean-order summaries.
    sum_ += static_cast<double>(buckets[k]) * static_cast<double>(std::uint64_t{1} << (k < 63 ? k : 63));
  }
}

void LatencyHistogram::observe(double x) {
  if (std::isnan(x)) return;  // undefined latencies carry no information
  count_ += 1;
  if (x <= 0.0) {
    zero_ += 1;
    if (count_ == 1) min_ = max_ = 0.0;
    min_ = std::min(min_, 0.0);
    // sum unchanged (x may be -0.0); negative durations are a caller bug
    // but must not poison the percentiles.
    return;
  }
  sum_ += x;
  if (count_ == 1 || (count_ - zero_) == 1) {
    // First positive sample; fold in any earlier zeros via min_.
    min_ = zero_ > 0 ? 0.0 : x;
    max_ = x;
  }
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  // frexp gives x = f * 2^e with f in [0.5, 1): e-1 is the exponent with
  // 2^(e-2) < x <= 2^(e-1) except at exact powers of two, where x == 2^(e-1).
  int e = 0;
  const double f = std::frexp(x, &e);
  int exp = (f == 0.5) ? e - 1 : e;  // smallest exp with x <= 2^exp
  if (std::isinf(x)) exp = kMaxExp;
  exp = std::max(kMinExp, std::min(kMaxExp, exp));
  if (buckets_.empty()) buckets_.assign(kBuckets, 0);
  buckets_[static_cast<std::size_t>(exp - kMinExp)] += 1;
}

double LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::max(0.0, std::min(1.0, q));
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = zero_;
  if (rank <= seen) return 0.0;
  for (std::size_t k = 0; k < buckets_.size(); ++k) {
    seen += buckets_[k];
    if (rank <= seen) {
      const double upper = std::ldexp(1.0, static_cast<int>(k) + kMinExp);
      return std::min(upper, max_);
    }
  }
  return max_;
}

std::vector<std::pair<int, std::uint64_t>> LatencyHistogram::nonzero_buckets() const {
  std::vector<std::pair<int, std::uint64_t>> out;
  for (std::size_t k = 0; k < buckets_.size(); ++k) {
    if (buckets_[k] != 0) out.emplace_back(static_cast<int>(k) + kMinExp, buckets_[k]);
  }
  return out;
}

Json LatencyHistogram::to_json() const {
  Json j = Json::object();
  j.set("count", count_);
  j.set("sum", sum_);
  j.set("min", min());
  j.set("max", max());
  j.set("p50", percentile(0.50));
  j.set("p90", percentile(0.90));
  j.set("p99", percentile(0.99));
  Json buckets = Json::object();
  if (zero_ != 0) buckets.set("zero", zero_);
  for (const auto& [exp, n] : nonzero_buckets()) buckets.set(std::to_string(exp), n);
  j.set("log2_buckets", std::move(buckets));
  return j;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::latency(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = latencies_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

Json MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  Json out = Json::object();
  if (!counters_.empty()) {
    Json section = Json::object();
    for (const auto& [name, c] : counters_) section.set(name, c->value());
    out.set("counters", std::move(section));
  }
  if (!gauges_.empty()) {
    Json section = Json::object();
    for (const auto& [name, g] : gauges_) section.set(name, g->value());
    out.set("gauges", std::move(section));
  }
  if (!histograms_.empty()) {
    Json section = Json::object();
    for (const auto& [name, h] : histograms_) {
      Json entry = Json::object();
      entry.set("count", h->total_count());
      entry.set("sum", h->sum());
      // Emit only non-empty buckets as {"log2_upper": count}.
      Json buckets = Json::object();
      for (std::size_t k = 0; k < h->buckets().size(); ++k) {
        if (h->buckets()[k] != 0) buckets.set(std::to_string(k), h->buckets()[k]);
      }
      entry.set("log2_buckets", std::move(buckets));
      section.set(name, std::move(entry));
    }
    out.set("histograms", std::move(section));
  }
  if (!latencies_.empty()) {
    Json section = Json::object();
    for (const auto& [name, h] : latencies_) section.set(name, h->to_json());
    out.set("latencies", std::move(section));
  }
  return out;
}

Json deterministic_metrics(const Json& snapshot) {
  const auto keep = [](const std::string& name) {
    return name.find("wall") == std::string::npos && name.find("cpu") == std::string::npos &&
           name.find("panel") == std::string::npos;
  };
  Json out = Json::object();
  for (const auto& [section, body] : snapshot.items()) {
    Json filtered = Json::object();
    for (const auto& [name, value] : body.items()) {
      if (keep(name)) filtered.set(name, value);
    }
    if (filtered.size() > 0) out.set(section, std::move(filtered));
  }
  return out;
}

}  // namespace ardbt::obs
